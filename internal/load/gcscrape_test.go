package load

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

func TestGCScraperWindows(t *testing.T) {
	var sum atomic.Uint64 // milli-seconds of cumulative pause
	var count atomic.Uint64
	var fail atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		if fail.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, "# HELP smiler_runtime_gc_pause_seconds ...\n")
		fmt.Fprintf(w, "smiler_runtime_gc_pause_seconds_summary 99\n") // prefix trap
		fmt.Fprintf(w, "smiler_runtime_gc_pause_seconds_sum %g\n", float64(sum.Load())/1000)
		fmt.Fprintf(w, "smiler_runtime_gc_pause_seconds_count %d\n", count.Load())
		fmt.Fprintf(w, "smiler_runtime_heap_live_bytes %d\n", 1<<20)
		fmt.Fprintf(w, "smiler_runtime_heap_goal_bytes %d\n", 2<<20)
	}))
	defer ts.Close()

	g := newGCScraper()

	// First reading seeds the baseline: no window yet.
	sum.Store(100)
	count.Store(2)
	if _, err, ok := g.window(ts.URL); err != nil || ok {
		t.Fatalf("seed reading: err=%v ok=%v, want nil false", err, ok)
	}

	// Second reading yields the delta, plus the heap gauges as read.
	sum.Store(150)
	count.Store(3)
	gw, err, ok := g.window(ts.URL)
	if err != nil || !ok {
		t.Fatalf("window: err=%v ok=%v", err, ok)
	}
	if gw.GCPauseS < 0.0499 || gw.GCPauseS > 0.0501 || gw.GCPauses != 1 {
		t.Fatalf("delta = %gs/%d pauses, want 0.05s/1", gw.GCPauseS, gw.GCPauses)
	}
	if gw.HeapLiveBytes != 1<<20 || gw.HeapGoalBytes != 2<<20 {
		t.Fatalf("heap gauges = %d/%d, want %d/%d", gw.HeapLiveBytes, gw.HeapGoalBytes, 1<<20, 2<<20)
	}

	// A failed scrape reports the error and drops the baseline, so the
	// next success seeds again instead of smearing two windows into one.
	fail.Store(true)
	if _, err, ok := g.window(ts.URL); err == nil || !ok {
		t.Fatalf("failed scrape: err=%v ok=%v, want error true", err, ok)
	}
	fail.Store(false)
	sum.Store(400)
	count.Store(9)
	if _, err, ok := g.window(ts.URL); err != nil || ok {
		t.Fatalf("post-failure reading must re-seed: err=%v ok=%v", err, ok)
	}
	sum.Store(410)
	count.Store(10)
	gw, err, ok = g.window(ts.URL)
	if err != nil || !ok || gw.GCPauses != 1 || gw.GCPauseS > 0.0101 {
		t.Fatalf("post-reseed delta = %gs/%d (err=%v ok=%v), want 0.01s/1", gw.GCPauseS, gw.GCPauses, err, ok)
	}

	// A counter reset (target restart) clamps to zero, not negative.
	sum.Store(5)
	count.Store(0)
	gw, _, _ = g.window(ts.URL)
	if gw.GCPauseS < 0 || gw.GCPauses != 0 {
		t.Fatalf("reset delta = %gs/%d, want clamped to 0", gw.GCPauseS, gw.GCPauses)
	}
}

func TestMetricValue(t *testing.T) {
	if _, ok := metricValue("smiler_runtime_gc_pause_seconds_summary 9", "smiler_runtime_gc_pause_seconds_sum"); ok {
		t.Fatal("prefix of a longer name must not match")
	}
	v, ok := metricValue("smiler_runtime_gc_pause_seconds_sum 0.25", "smiler_runtime_gc_pause_seconds_sum")
	if !ok || v != 0.25 {
		t.Fatalf("metricValue = %g, %v", v, ok)
	}
	if _, ok := metricValue("smiler_runtime_gc_pause_seconds_sum x", "smiler_runtime_gc_pause_seconds_sum"); ok {
		t.Fatal("non-numeric value must not parse")
	}
}
