package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"smiler/internal/fault"
	"smiler/internal/obs"
)

// prober watches every peer's GET /readyz and declares a peer down
// after ProbeFailures consecutive failures (a single dropped probe
// must not trigger a failover). A down peer flips back to up on the
// first successful probe. Self is always up.
type prober struct {
	n *Node

	mu    sync.RWMutex
	state map[string]*peerHealth

	stop chan struct{}
	wg   sync.WaitGroup
}

// peerHealth is one peer's probe state.
type peerHealth struct {
	up       bool
	failures int       // consecutive failures
	lastErr  string    // last probe failure, for /cluster/health
	lastOK   time.Time // last successful probe
}

// PeerHealth is the wire shape of one peer's state on GET
// /cluster/health.
type PeerHealth struct {
	Peer     string    `json:"peer"`
	URL      string    `json:"url"`
	Up       bool      `json:"up"`
	Failures int       `json:"consecutive_failures"`
	LastOK   time.Time `json:"last_ok,omitempty"`
	LastErr  string    `json:"last_error,omitempty"`
}

func newProber(n *Node) *prober {
	p := &prober{
		n:     n,
		state: make(map[string]*peerHealth),
		stop:  make(chan struct{}),
	}
	return p
}

// syncPeers reconciles the probe table with a new membership view.
// New peers start up — a map install must not make the cluster look
// failed before the first probe round — and removed peers drop out.
func (p *prober) syncPeers(ids []string) {
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for id := range p.state {
		if !want[id] {
			delete(p.state, id)
		}
	}
	for id := range want {
		if p.state[id] == nil {
			p.state[id] = &peerHealth{up: true}
		}
	}
}

func (p *prober) start() {
	p.wg.Add(1)
	go p.loop()
}

func (p *prober) close() {
	close(p.stop)
	p.wg.Wait()
}

func (p *prober) loop() {
	defer p.wg.Done()
	t := time.NewTicker(p.n.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.probeAll()
		}
	}
}

func (p *prober) probeAll() {
	var wg sync.WaitGroup
	for _, id := range p.n.peerIDs() {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.record(id, p.probe(id))
		}()
	}
	wg.Wait()
}

// probe hits the peer's readiness endpoint once. Any transport error
// or non-200 (a recovering node answers 503) counts as a failure:
// not-ready nodes must not own sensors. The one exception is a
// draining peer — it answers 503 {"status":"draining"} but is alive
// and still serving the sensors it has not yet handed off, so marking
// it down would failover its entire share mid-drain.
func (p *prober) probe(id string) error {
	if err := checkPeerFault(fault.PointClusterProbe, id); err != nil {
		return err
	}
	member, ok := p.n.member(id)
	if !ok {
		return nil
	}
	req, err := http.NewRequest(http.MethodGet, member.URL+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := p.n.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		var body struct {
			Status string `json:"status"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1024)).Decode(&body) == nil && body.Status == "draining" {
			return nil
		}
	}
	return &probeStatusError{status: resp.StatusCode}
}

type probeStatusError struct{ status int }

func (e *probeStatusError) Error() string {
	return "readyz answered HTTP " + http.StatusText(e.status)
}

func (p *prober) record(id string, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.state[id]
	if st == nil {
		return
	}
	if err == nil {
		st.failures = 0
		st.lastErr = ""
		st.lastOK = time.Now()
		if !st.up {
			p.n.sys.Events().Record(obs.Event{
				Type: "peer_up", Detail: "peer " + id + " recovered",
			})
			if p.n.log != nil {
				p.n.log.Info("cluster peer up", "peer", id)
			}
		}
		st.up = true
		return
	}
	st.failures++
	st.lastErr = err.Error()
	if st.up && st.failures >= p.n.cfg.ProbeFailures {
		st.up = false
		p.n.m.failovers.Inc()
		p.n.sys.Events().Record(obs.Event{
			Type: "failover", Severity: obs.SevError,
			Detail: "peer " + id + " down after " + err.Error(),
		})
		if p.n.log != nil {
			p.n.log.Warn("cluster peer down", "peer", id, "failures", st.failures, "err", err)
		}
	}
}

// isUp reports the peer's probe state; self and unknown ids are up
// (unknown ids cannot be routed to anyway).
func (p *prober) isUp(id string) bool {
	if id == p.n.cfg.Self {
		return true
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	st, ok := p.state[id]
	return !ok || st.up
}

// snapshot reports every peer's state for GET /cluster/health.
func (p *prober) snapshot() []PeerHealth {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]PeerHealth, 0, len(p.state))
	for _, id := range p.n.peerIDs() {
		st := p.state[id]
		if st == nil {
			continue
		}
		member, _ := p.n.member(id)
		out = append(out, PeerHealth{
			Peer: id, URL: member.URL, Up: st.up,
			Failures: st.failures, LastOK: st.lastOK, LastErr: st.lastErr,
		})
	}
	return out
}
