package smiler

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := smallConfig()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rng := rand.New(rand.NewSource(1))
	all := noisySeasonal(rng, 460, 10, 100)
	if err := sys.AddSensor("a", all[:400]); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddSensor("b", noisySeasonal(rng, 400, 3, 0)); err != nil {
		t.Fatal(err)
	}
	// Run some steps so the ensemble weights drift away from uniform.
	for i := 400; i < 430; i++ {
		if _, err := sys.Predict("a", 1); err != nil {
			t.Fatal(err)
		}
		if err := sys.Observe("a", all[i]); err != nil {
			t.Fatal(err)
		}
	}
	wantWeights, err := sys.EnsembleWeights("a")
	if err != nil {
		t.Fatal(err)
	}
	wantForecast, err := sys.Predict("a", 1)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := sys.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}

	restored, err := Load(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()

	ids := restored.Sensors()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("restored sensors = %v", ids)
	}
	gotWeights, err := restored.EnsembleWeights("a")
	if err != nil {
		t.Fatal(err)
	}
	// Restore must be bit-exact, not merely close: the normalizer
	// reinstates frozen stats and ImportState must not renormalize
	// already-normalized weights, so a recovered system forecasts
	// identically to the live one it was checkpointed from.
	for kd, w := range wantWeights {
		if gotWeights[kd] != w {
			t.Fatalf("weight %v: %v vs %v", kd, gotWeights[kd], w)
		}
	}
	gotForecast, err := restored.Predict("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if gotForecast.Mean != wantForecast.Mean {
		t.Fatalf("restored forecast %v, want %v", gotForecast.Mean, wantForecast.Mean)
	}
	if gotForecast.Variance != wantForecast.Variance {
		t.Fatalf("restored variance %v, want %v", gotForecast.Variance, wantForecast.Variance)
	}
	// Streaming must keep working on the restored system (raw units).
	if err := restored.Observe("a", all[430]); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointWALCoverRoundTrip: the cover saved with a checkpoint
// must come back on load, and plain SaveFile must yield a nil cover
// (as must checkpoints written before the field existed — gob decodes
// the absent field as nil).
func TestCheckpointWALCoverRoundTrip(t *testing.T) {
	cfg := smallConfig()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rng := rand.New(rand.NewSource(2))
	if err := sys.AddSensor("a", noisySeasonal(rng, 400, 10, 100)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	withCover := dir + "/cover.gob"
	cover := map[int]uint64{0: 17, 1: 0, 2: 131}
	if err := sys.SaveFileWithCover(withCover, cover); err != nil {
		t.Fatal(err)
	}
	restored, got, err := LoadFileWithCover(withCover, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if len(got) != len(cover) {
		t.Fatalf("cover = %v, want %v", got, cover)
	}
	for shard, seq := range cover {
		if got[shard] != seq {
			t.Fatalf("cover[%d] = %d, want %d", shard, got[shard], seq)
		}
	}

	plain := dir + "/plain.gob"
	if err := sys.SaveFile(plain); err != nil {
		t.Fatal(err)
	}
	restored2, got2, err := LoadFileWithCover(plain, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restored2.Close()
	if got2 != nil {
		t.Fatalf("plain SaveFile produced cover %v, want nil", got2)
	}
}

func TestCheckpointGPHyperSurvives(t *testing.T) {
	cfg := smallConfig()
	cfg.Predictor = PredictorGP
	cfg.EKV = []int{4}
	cfg.ELV = []int{16}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rng := rand.New(rand.NewSource(2))
	all := noisySeasonal(rng, 420, 5, 20)
	if err := sys.AddSensor("s", all[:400]); err != nil {
		t.Fatal(err)
	}
	// Train the GP warm-start state.
	for i := 400; i < 405; i++ {
		if _, err := sys.Predict("s", 1); err != nil {
			t.Fatal(err)
		}
		if err := sys.Observe("s", all[i]); err != nil {
			t.Fatal(err)
		}
	}
	f1, err := sys.Predict("s", 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	f2, err := restored.Predict("s", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-started optimization from the same hyperparameters on the
	// same kNN set must land on the same prediction.
	if math.Abs(f1.Mean-f2.Mean) > 1e-6 {
		t.Fatalf("restored GP forecast %v, want %v", f2.Mean, f1.Mean)
	}
}

func TestCheckpointErrors(t *testing.T) {
	cfg := smallConfig()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if err := sys.AddSensor("s", noisySeasonal(rng, 400, 1, 0)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Normalization mismatch is rejected.
	badCfg := cfg
	badCfg.Normalize = false
	if _, err := Load(bytes.NewReader(buf.Bytes()), badCfg); err == nil {
		t.Fatal("normalization mismatch should fail")
	}
	// Garbage payload is rejected.
	if _, err := Load(bytes.NewReader([]byte("not a checkpoint")), cfg); err == nil {
		t.Fatal("garbage payload should fail")
	}
	// Saving a closed system fails.
	sys.Close()
	if err := sys.SaveTo(&buf); err == nil {
		t.Fatal("SaveTo after Close should fail")
	}
}

// TestCheckpointTruncatedAndCorrupt is the regression test for the
// load path: truncated bytes at every prefix length and a flipped byte
// anywhere must produce a clean, descriptive error — never a panic and
// never a silently partial system.
func TestCheckpointTruncatedAndCorrupt(t *testing.T) {
	cfg := smallConfig()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rng := rand.New(rand.NewSource(4))
	if err := sys.AddSensor("s", noisySeasonal(rng, 400, 2, 5)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Every truncation point fails cleanly (sampled stride to keep the
	// test fast, plus the boundary cases around the 12-byte envelope).
	cuts := []int{0, 1, 7, 8, 11, 12, 13, len(full) - 1}
	for n := 16; n < len(full); n += 97 {
		cuts = append(cuts, n)
	}
	for _, n := range cuts {
		_, err := Load(bytes.NewReader(full[:n]), cfg)
		if err == nil {
			t.Fatalf("truncation at %d/%d loaded successfully", n, len(full))
		}
	}
	// Every corrupted byte position fails cleanly too.
	for pos := 0; pos < len(full); pos += 131 {
		bad := append([]byte(nil), full...)
		bad[pos] ^= 0x5a
		if _, err := Load(bytes.NewReader(bad), cfg); err == nil {
			t.Fatalf("flipped byte at %d loaded successfully", pos)
		}
	}
	// And the pristine bytes still load.
	restored, err := Load(bytes.NewReader(full), cfg)
	if err != nil {
		t.Fatal(err)
	}
	restored.Close()
}

// TestSaveFileAtomic exercises the crash-atomic file checkpoint: a
// save over an existing checkpoint either fully replaces it or leaves
// it untouched, and LoadFile round-trips.
func TestSaveFileAtomic(t *testing.T) {
	cfg := smallConfig()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rng := rand.New(rand.NewSource(5))
	if err := sys.AddSensor("s", noisySeasonal(rng, 400, 1, 0)); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/state.ckpt"
	if err := sys.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadFile(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Sensors(); len(got) != 1 || got[0] != "s" {
		t.Fatalf("restored sensors = %v", got)
	}
	restored.Close()
	// Overwrite keeps working (rename over an existing file).
	if err := sys.Observe("s", 1.5); err != nil {
		t.Fatal(err)
	}
	if err := sys.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSensorCheckpointRoundTrip: a single-sensor envelope written by
// SaveSensorTo and merged back by RestoreSensorsFrom must be bit-exact
// and must replace an existing (diverged) copy of the sensor — the
// contract the cluster migration/resync path relies on.
func TestSensorCheckpointRoundTrip(t *testing.T) {
	cfg := smallConfig()
	src, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	rng := rand.New(rand.NewSource(7))
	all := noisySeasonal(rng, 460, 10, 100)
	if err := src.AddSensor("a", all[:400]); err != nil {
		t.Fatal(err)
	}
	if err := src.AddSensor("other", noisySeasonal(rng, 400, 3, 0)); err != nil {
		t.Fatal(err)
	}
	for i := 400; i < 430; i++ {
		if _, err := src.Predict("a", 1); err != nil {
			t.Fatal(err)
		}
		if err := src.Observe("a", all[i]); err != nil {
			t.Fatal(err)
		}
	}
	want, err := src.Predict("a", 2)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := src.SaveSensorTo(&buf, "a"); err != nil {
		t.Fatal(err)
	}
	if err := src.SaveSensorTo(&bytes.Buffer{}, "nope"); err == nil {
		t.Fatal("want error for unknown sensor")
	}

	// Target holds a diverged copy of "a" (shorter history) plus its own
	// sensor; restore must replace the former and keep the latter.
	dst, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.AddSensor("a", all[:390]); err != nil {
		t.Fatal(err)
	}
	if err := dst.AddSensor("mine", noisySeasonal(rng, 400, 5, 50)); err != nil {
		t.Fatal(err)
	}
	ids, err := dst.RestoreSensorsFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "a" {
		t.Fatalf("restored ids = %v", ids)
	}
	got, err := dst.Predict("a", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mean != want.Mean || got.Variance != want.Variance {
		t.Fatalf("restored forecast (%v, %v), want (%v, %v)",
			got.Mean, got.Variance, want.Mean, want.Variance)
	}
	if !dst.HasSensor("mine") {
		t.Fatal("unrelated sensor lost during restore")
	}
	if n, _ := dst.HistoryLen("a"); n != 430 {
		t.Fatalf("restored history len %d, want 430", n)
	}
}
