package main

import (
	"math"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"smiler"
	"smiler/internal/server"
)

// startRun boots the real server loop in a goroutine and waits for the
// listener, returning the bound address and the exit channel.
func startRun(t *testing.T, o options) (string, chan error) {
	t.Helper()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	o.onReady = func(addr string) { ready <- addr }
	go func() { done <- run(o) }()
	select {
	case addr := <-ready:
		return addr, done
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}
	return "", nil
}

// stopRun SIGTERMs the process (after letting signal.Notify arm) and
// waits for the loop to exit cleanly.
func stopRun(t *testing.T, done chan error) {
	t.Helper()
	time.Sleep(500 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestRunWALLifecycle drives WAL durability through the real server
// loop across two process lifetimes: the first run journals every
// accepted event with no checkpoint configured, so on restart the WAL
// is the only durable copy; the second run must recover the full
// state from replay alone, serve /readyz 200, and fold everything
// into a post-recovery checkpoint.
func TestRunWALLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("signal-driven lifecycle test")
	}
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	ckpt := filepath.Join(dir, "state.gob")
	base := options{
		addr:         "127.0.0.1:0",
		predictor:    "ar",
		devices:      1,
		shards:       2,
		backpressure: "block",
		logLevel:     "error",
		walDir:       walDir,
		fsync:        "always",
		fallback:     "none",
	}

	// First lifetime: WAL only, no checkpoint.
	addr, done := startRun(t, base)
	cl, err := server.NewClient("http://"+addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	const histLen, observed = 300, 7
	hist := make([]float64, histLen)
	for i := range hist {
		hist[i] = 10 + 3*math.Sin(2*math.Pi*float64(i)/24)
	}
	if err := cl.AddSensor("s", hist); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < observed; i++ {
		if err := cl.Observe("s", hist[i]); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get("http://" + addr + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200 on a recovered server", resp.StatusCode)
	}
	stopRun(t, done)

	// Second lifetime: same WAL dir plus a checkpoint path. Startup
	// must rebuild the sensor purely from WAL replay and then cover it
	// with a post-recovery checkpoint.
	withCkpt := base
	withCkpt.checkpoint = ckpt
	addr, done = startRun(t, withCkpt)
	cl, err = server.NewClient("http://"+addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := cl.Sensors()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "s" {
		t.Fatalf("recovered sensors = %v, want [s]", ids)
	}
	if _, err := cl.Forecast("s", 1); err != nil {
		t.Fatalf("forecast after WAL recovery: %v", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("post-recovery checkpoint not written: %v", err)
	}
	stopRun(t, done)

	// The final checkpoint must hold the initial history plus every
	// journaled observation.
	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	restored, err := smiler.Load(f, smiler.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	n, err := restored.HistoryLen("s")
	if err != nil {
		t.Fatal(err)
	}
	if n != histLen+observed {
		t.Fatalf("restored history %d points, want %d (WAL lost observations)", n, histLen+observed)
	}
}
