package smiler

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// TestSoakRandomOperations drives a System through a long random
// sequence of API operations (add/remove/predict/multi-predict/observe
// /missing-reading/checkpoint-roundtrip) and checks the global
// invariants after every step: device accounting balances, forecasts
// stay finite with positive variance, ensemble weights stay a
// probability distribution, and a checkpoint round-trip preserves the
// sensor set.
func TestSoakRandomOperations(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	cfg := smallConfig()
	cfg.Devices = 2
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	rng := rand.New(rand.NewSource(99))
	streams := map[string][]float64{} // remaining unobserved values
	nextID := 0

	checkInvariants := func() {
		t.Helper()
		used, total := sys.DeviceUsage()
		if used < 0 || used > total {
			t.Fatalf("device accounting broken: %d/%d", used, total)
		}
		if len(sys.Sensors()) == 0 && used != 0 {
			t.Fatalf("no sensors but %d device bytes in use", used)
		}
		for _, id := range sys.Sensors() {
			w, err := sys.EnsembleWeights(id)
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			for _, v := range w {
				if v < 0 {
					t.Fatalf("sensor %s: negative weight %v", id, v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Fatalf("sensor %s: weights sum to %v", id, sum)
			}
		}
	}

	for step := 0; step < 300; step++ {
		ids := sys.Sensors()
		op := rng.Intn(10)
		switch {
		case op == 0 || len(ids) == 0: // add a sensor
			if len(ids) >= 6 {
				break
			}
			id := string(rune('A' + nextID%26))
			nextID++
			if _, dup := streams[id]; dup {
				break
			}
			scale := 1 + rng.Float64()*20
			offset := rng.NormFloat64() * 50
			series := noisySeasonal(rng, 400+rng.Intn(200), scale, offset)
			warm := 350
			if err := sys.AddSensor(id, series[:warm]); err != nil {
				t.Fatalf("step %d add %s: %v", step, id, err)
			}
			streams[id] = series[warm:]

		case op == 1 && len(ids) > 1: // remove a sensor
			id := ids[rng.Intn(len(ids))]
			if err := sys.RemoveSensor(id); err != nil {
				t.Fatalf("step %d remove %s: %v", step, id, err)
			}
			delete(streams, id)

		case op <= 4: // single-horizon forecast
			id := ids[rng.Intn(len(ids))]
			f, err := sys.Predict(id, 1+rng.Intn(5))
			if err != nil {
				t.Fatalf("step %d predict %s: %v", step, id, err)
			}
			if math.IsNaN(f.Mean) || math.IsInf(f.Mean, 0) || f.Variance <= 0 {
				t.Fatalf("step %d: malformed forecast %+v", step, f)
			}

		case op == 5: // multi-horizon forecast
			id := ids[rng.Intn(len(ids))]
			fs, err := sys.PredictHorizons(id, []int{1, 2, 4})
			if err != nil {
				t.Fatalf("step %d multi %s: %v", step, id, err)
			}
			for h, f := range fs {
				if f.Variance <= 0 {
					t.Fatalf("step %d h=%d: variance %v", step, h, f.Variance)
				}
			}

		case op <= 8: // observe (occasionally a missing reading)
			id := ids[rng.Intn(len(ids))]
			rest := streams[id]
			if len(rest) == 0 {
				break
			}
			v := rest[0]
			if rng.Intn(12) == 0 {
				v = math.NaN()
			}
			if err := sys.Observe(id, v); err != nil {
				t.Fatalf("step %d observe %s: %v", step, id, err)
			}
			streams[id] = rest[1:]

		default: // checkpoint round trip
			var buf bytes.Buffer
			if err := sys.SaveTo(&buf); err != nil {
				t.Fatalf("step %d save: %v", step, err)
			}
			restored, err := Load(&buf, cfg)
			if err != nil {
				t.Fatalf("step %d load: %v", step, err)
			}
			a, b := sys.Sensors(), restored.Sensors()
			if len(a) != len(b) {
				restored.Close()
				t.Fatalf("step %d: sensor count %d vs %d after restore", step, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					restored.Close()
					t.Fatalf("step %d: sensor %q vs %q after restore", step, a[i], b[i])
				}
			}
			restored.Close()
		}
		checkInvariants()
	}
}
