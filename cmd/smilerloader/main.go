// Command smilerloader is the production load generator and soak
// harness for smiler-server: it synthesizes a large sensor population
// from the deterministic corpus streams (internal/datasets), drives
// one node or a whole cluster over HTTP with a configurable
// observe:forecast mix and arrival process, and reports what a client
// actually experienced — per-op p50/p99/p999 latency, throughput,
// error and degraded rates — judged against declared SLOs.
//
// Usage:
//
//	# closed-loop: 16 workers back-to-back against one node
//	smilerloader -targets http://localhost:8080 -sensors 1000 -duration 60s
//
//	# open-loop Poisson at 500 ops/s, 10:1 observe:forecast, SLO-gated
//	smilerloader -targets http://localhost:8080 -sensors 100000 \
//	    -arrival poisson -rate 500 -mix 10:1 -ramp 10s -duration 120s \
//	    -slo 'observe.p99<=50ms,forecast.p99<=500ms,error_rate<=0.001' \
//	    -out BENCH_cluster.json
//
//	# bursty soak against a 3-node cluster
//	smilerloader -targets http://n1:8080,http://n2:8080,http://n3:8080 \
//	    -arrival bursty -rate 300 -burst-factor 4 -duration 30m
//
// Setup registers the sensors (HTTP 409 counts as already-present, so
// reruns are idempotent; -skip-setup skips the phase entirely). The
// steady phase is the measurement window: SLOs are judged on it, and
// the report lands as machine-readable JSON (-out). Exit codes: 0
// success, 1 operational failure, 2 SLO violation — so a CI job or a
// capacity sweep can gate on the loader directly. See docs/LOADER.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"smiler/internal/datasets"
	"smiler/internal/load"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smilerloader:", err)
	}
	os.Exit(code)
}

// run parses flags and executes the load run; split from main for
// tests. Returns the process exit code.
func run(args []string, out *os.File) (int, error) {
	fs := flag.NewFlagSet("smilerloader", flag.ContinueOnError)
	var (
		targets   = fs.String("targets", "http://localhost:8080", "comma-separated node base URLs")
		sensors   = fs.Int("sensors", 1000, "distinct sensors in the population")
		kindFlag  = fs.String("kind", "road", "synthetic corpus: road|mall|net")
		seed      = fs.Int64("seed", 1, "workload seed (streams, mix draws)")
		history   = fs.Int("history", 128, "bootstrap history length per sensor")
		prefix    = fs.String("prefix", "load", "sensor id prefix")
		mix       = fs.String("mix", "10:1", "observe:forecast weight ratio")
		horizons  = fs.String("horizons", "1", `forecast horizon distribution: "1", "1,3,6", or "1:8,3:1"`)
		arrival   = fs.String("arrival", "closed", "arrival process: closed|poisson|bursty")
		rate      = fs.Float64("rate", 0, "open-loop target ops/s (poisson|bursty)")
		conc      = fs.Int("concurrency", 16, "workers (closed-loop) / max in-flight (open-loop)")
		burstF    = fs.Float64("burst-factor", 4, "bursty: rate multiplier during bursts")
		burstP    = fs.Duration("burst-period", 10*time.Second, "bursty: burst cycle period")
		burstD    = fs.Float64("burst-duty", 0.2, "bursty: fraction of the period spent bursting")
		ramp      = fs.Duration("ramp", 0, "linear ramp-up window before the steady phase")
		duration  = fs.Duration("duration", 30*time.Second, "steady (measurement) phase length; a soak is a long duration")
		sloFlag   = fs.String("slo", "", `objectives judged on the steady phase, e.g. "observe.p99<=50ms,forecast.p999<=2s,error_rate<=0.001"`)
		setupConc = fs.Int("setup-concurrency", 32, "parallel sensor registrations during setup")
		skipSetup = fs.Bool("skip-setup", false, "assume sensors are already registered")
		teardown  = fs.Bool("teardown", false, "remove the sensor population after the run")
		progress  = fs.Duration("progress", 5*time.Second, "progress line period (0 = quiet)")
		retries   = fs.Int("retries", 1, "client attempts per op (1 = no retries; >1 honors server Retry-After)")
		outPath   = fs.String("out", "BENCH_cluster.json", "report file (empty = don't write)")
	)
	if err := fs.Parse(args); err != nil {
		return 1, nil // flag package already printed the message
	}

	kind, err := parseKind(*kindFlag)
	if err != nil {
		return 1, err
	}
	obsW, fcW, err := load.ParseMix(*mix)
	if err != nil {
		return 1, err
	}
	hs, err := load.ParseHorizons(*horizons)
	if err != nil {
		return 1, err
	}
	arr, err := load.ParseArrival(*arrival)
	if err != nil {
		return 1, err
	}
	slos, err := load.ParseSLOs(*sloFlag)
	if err != nil {
		return 1, err
	}

	cfg := load.Config{
		Targets:          splitTargets(*targets),
		Sensors:          *sensors,
		Kind:             kind,
		Seed:             *seed,
		History:          *history,
		Prefix:           *prefix,
		ObserveWeight:    obsW,
		ForecastWeight:   fcW,
		Horizons:         hs,
		Arrival:          arr,
		Rate:             *rate,
		Concurrency:      *conc,
		BurstFactor:      *burstF,
		BurstPeriod:      *burstP,
		BurstDuty:        *burstD,
		Ramp:             *ramp,
		Duration:         *duration,
		SLOs:             slos,
		SetupConcurrency: *setupConc,
		SkipSetup:        *skipSetup,
		Teardown:         *teardown,
		ProgressEvery:    *progress,
		Progress:         out,
		RetryAttempts:    *retries,
	}
	ldr, err := load.New(cfg)
	if err != nil {
		return 1, err
	}

	// SIGINT/SIGTERM ends the run early but still writes the report —
	// the soak-interrupt path.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if !*skipSetup {
		if _, err := ldr.Setup(ctx); err != nil {
			return 1, err
		}
	}
	report, runErr := ldr.Run(ctx)
	if *teardown {
		// Teardown under a fresh context: the run context may already be
		// canceled by the interrupt that ended the soak.
		tctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		if err := ldr.Teardown(tctx); err != nil {
			fmt.Fprintln(os.Stderr, "smilerloader: teardown:", err)
		}
		cancel()
	}
	if report != nil {
		printSummary(out, report)
		if *outPath != "" {
			if err := report.WriteFile(*outPath); err != nil {
				return 1, err
			}
			fmt.Fprintf(out, "report written to %s\n", *outPath)
		}
	}
	if runErr != nil {
		return 1, fmt.Errorf("run ended early: %w", runErr)
	}
	if report.Violations > 0 {
		return 2, fmt.Errorf("%d SLO violation(s)", report.Violations)
	}
	return 0, nil
}

func parseKind(s string) (datasets.Kind, error) {
	switch strings.ToLower(s) {
	case "road":
		return datasets.Road, nil
	case "mall":
		return datasets.Mall, nil
	case "net":
		return datasets.Net, nil
	}
	return 0, fmt.Errorf("unknown corpus kind %q (road|mall|net)", s)
}

func splitTargets(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, strings.TrimSuffix(t, "/"))
		}
	}
	return out
}

// printSummary renders the human-facing tail of the run.
func printSummary(out *os.File, r *load.Report) {
	fmt.Fprintf(out, "\n== %s → %s (%.1fs) — %d distinct sensors driven ==\n",
		r.Started.Format(time.TimeOnly), r.Finished.Format(time.TimeOnly),
		r.Finished.Sub(r.Started).Seconds(), r.DistinctSensors)
	for _, name := range []string{"ramp", "steady"} {
		p, ok := r.Phases[name]
		if !ok {
			continue
		}
		fmt.Fprintf(out, "%s (%.1fs): %.1f op/s", name, p.DurationS, p.Total.Throughput)
		if p.Shed > 0 {
			fmt.Fprintf(out, " [%d shed by loader]", p.Shed)
		}
		fmt.Fprintln(out)
		for _, op := range []string{"observe", "forecast"} {
			s, ok := p.Ops[op]
			if !ok {
				continue
			}
			fmt.Fprintf(out,
				"  %-8s n=%-8d %8.1f/s  p50=%-8s p99=%-8s p999=%-8s err=%d (%.3g%%) degraded=%d (%.3g%%)\n",
				op, s.Count, s.Throughput,
				fmtMs(s.P50Ms), fmtMs(s.P99Ms), fmtMs(s.P999Ms),
				s.Errors, s.ErrorRate*100, s.Degraded, s.DegradedRate*100)
		}
	}
	for _, sr := range r.SLOs {
		status := "OK  "
		switch {
		case sr.Skipped:
			status = "SKIP"
		case !sr.OK:
			status = "FAIL"
		}
		fmt.Fprintf(out, "SLO %s %-32s actual=%.6g bound=%.6g\n", status, sr.Expr, sr.Actual, sr.Bound)
	}
}

func fmtMs(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.2fs", v/1000)
	case v >= 10:
		return fmt.Sprintf("%.0fms", v)
	default:
		return fmt.Sprintf("%.2gms", v)
	}
}
