package gpusim

import (
	"math"
	"testing"
)

func TestProfileBreakdown(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LaunchOverheadCycles = 100
	cfg.SMs = 1
	cfg.ClockHz = 1
	cfg.GlobalCyclesPerWord = 4
	d := MustNewDevice(cfg)
	err := d.Launch(2, func(b *Block) error {
		b.Compute(10)
		b.GlobalAccess(3)
		b.SharedAccess(7)
		b.Diverge(2, 3)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	p := d.Profile()
	if p.ComputeCycles != 20 { // 2 blocks × 10
		t.Fatalf("compute = %v", p.ComputeCycles)
	}
	if p.GlobalCycles != 24 { // 2 × 3 × 4
		t.Fatalf("global = %v", p.GlobalCycles)
	}
	if p.SharedCycles != 14 {
		t.Fatalf("shared = %v", p.SharedCycles)
	}
	if p.DivergeCycles != 10 {
		t.Fatalf("diverge = %v", p.DivergeCycles)
	}
	if p.LaunchCycles != 100 {
		t.Fatalf("launch = %v", p.LaunchCycles)
	}
	if p.Launches != 1 || p.Blocks != 2 {
		t.Fatalf("counters = %+v", p)
	}
	// The category breakdown must account for exactly the total time.
	if math.Abs(p.TotalCycles()-d.SimSeconds()) > 1e-9 { // SMs=1, clock=1
		t.Fatalf("breakdown %v != total %v", p.TotalCycles(), d.SimSeconds())
	}
	d.ResetTimer()
	if d.Profile().TotalCycles() != 0 {
		t.Fatal("ResetTimer must clear the profile")
	}
}

func TestProfileParallelComputeCountsAsCompute(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LaunchOverheadCycles = 0
	cfg.CoresPerSM = 8
	d := MustNewDevice(cfg)
	if err := d.Launch(1, func(b *Block) error {
		b.ParallelCompute(16, 5) // 2 waves × 5
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := d.Profile().ComputeCycles; got != 10 {
		t.Fatalf("compute = %v, want 10", got)
	}
}
