package fault

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedCheckIsNoOp(t *testing.T) {
	Disarm()
	if err := Check("anything"); err != nil {
		t.Fatalf("disarmed Check returned %v", err)
	}
	data := []byte{1, 2, 3}
	Corrupt("anything", data)
	if data[0] != 1 || data[1] != 2 || data[2] != 3 {
		t.Fatalf("disarmed Corrupt mutated data: %v", data)
	}
}

func TestErrorRuleAfter(t *testing.T) {
	in := NewInjector(1)
	in.Set("p", Rule{Kind: KindError, After: 3})
	Arm(in)
	t.Cleanup(Disarm)
	for i := 1; i <= 2; i++ {
		if err := Check("p"); err != nil {
			t.Fatalf("check %d fired early: %v", i, err)
		}
	}
	err := Check("p")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("check 3 = %v, want ErrInjected", err)
	}
	if err := Check("p"); err == nil {
		t.Fatal("After rules without Once keep firing; check 4 succeeded")
	}
	if got := in.Fired("p"); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
	if got := in.Checks("p"); got != 4 {
		t.Fatalf("Checks = %d, want 4", got)
	}
}

func TestOnceRuleFiresExactlyOnce(t *testing.T) {
	in := NewInjector(1)
	in.Set("p", Rule{Kind: KindError, After: 2, Once: true})
	Arm(in)
	t.Cleanup(Disarm)
	var fired int
	for i := 0; i < 10; i++ {
		if Check("p") != nil {
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("Once rule fired %d times", fired)
	}
}

func TestCustomError(t *testing.T) {
	sentinel := errors.New("boom")
	in := NewInjector(1)
	in.Set("p", Rule{Kind: KindError, After: 1, Err: sentinel})
	Arm(in)
	t.Cleanup(Disarm)
	if err := Check("p"); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestProbabilisticDeterminism(t *testing.T) {
	run := func() []bool {
		in := NewInjector(42)
		in.Set("p", Rule{Kind: KindError, Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.check("p") != nil
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at check %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("Prob 0.5 fired %d/%d times", fired, len(a))
	}
}

func TestPanicRule(t *testing.T) {
	in := NewInjector(1)
	in.Set("p", Rule{Kind: KindPanic, After: 1})
	Arm(in)
	t.Cleanup(Disarm)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = Check("p")
}

func TestLatencyRule(t *testing.T) {
	in := NewInjector(1)
	in.Set("p", Rule{Kind: KindLatency, After: 1, Latency: 10 * time.Millisecond})
	Arm(in)
	t.Cleanup(Disarm)
	start := time.Now()
	if err := Check("p"); err != nil {
		t.Fatalf("latency rule returned error %v", err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("latency rule slept only %v", elapsed)
	}
}

func TestCorruptFlipsOneByte(t *testing.T) {
	in := NewInjector(7)
	in.Set("p", Rule{Kind: KindCorrupt, After: 1})
	Arm(in)
	t.Cleanup(Disarm)
	data := make([]byte, 32)
	Corrupt("p", data)
	flipped := 0
	for _, b := range data {
		if b != 0 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Fatalf("corrupt flipped %d bytes, want 1", flipped)
	}
}

func TestClear(t *testing.T) {
	in := NewInjector(1)
	in.Set("p", Rule{Kind: KindError, After: 1})
	in.Clear("p")
	Arm(in)
	t.Cleanup(Disarm)
	if err := Check("p"); err != nil {
		t.Fatalf("cleared rule fired: %v", err)
	}
}
