package gp

import (
	"fmt"

	"smiler/internal/mat"
	"smiler/internal/memsys"
)

// Column holds the shared state of one Prediction-Step ensemble column
// (all cells with the same item-query length d): the kNN training pairs
// materialized once at the column's largest k, the query segment, and
// the pairwise squared-distance (Gram-base) matrix computed once and
// reused by every cell of the column. Hyper.Cov only rescales the
// squared distances, so sharing them is exact for every cell regardless
// of per-cell hyperparameters — cells with smaller k simply read the
// leading principal block.
type Column struct {
	x0 []float64
	x  [][]float64
	y  []float64
	sq *mat.Dense // ‖x_i−x_j‖², n×n
}

// NewColumn validates and wraps a column's training data, computing the
// Gram-base matrix once. Slices are retained, not copied.
func NewColumn(x0 []float64, x [][]float64, y []float64) (*Column, error) {
	if len(x) == 0 || len(y) == 0 {
		return nil, ErrNoData
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("%w: %d inputs vs %d targets", ErrDims, len(x), len(y))
	}
	dim := len(x[0])
	if len(x0) != dim {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDimInput, len(x0), dim)
	}
	for i, xi := range x {
		if len(xi) != dim {
			return nil, fmt.Errorf("%w: row %d has %d features, want %d", ErrDims, i, len(xi), dim)
		}
	}
	n := len(x)
	// Pooled and zeroed on Get; only the off-diagonal entries are
	// written below (the diagonal is implicitly zero, as before).
	sq := mat.GetDense(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := sqDist(x[i], x[j])
			sq.Set(i, j, v)
			sq.Set(j, i, v)
		}
	}
	statColumns.Add(1)
	return &Column{x0: x0, x: x, y: y, sq: sq}, nil
}

// Release returns the column's pooled Gram base to memsys. Idempotent;
// the column (and any trainSets derived from it) must not be used
// afterwards. Optional — an unreleased column is ordinary garbage.
func (c *Column) Release() {
	if c != nil {
		c.sq.Release()
	}
}

// Len returns the number of training pairs (the column's largest k).
func (c *Column) Len() int { return len(c.y) }

// X0 returns the column's query segment (a view, not a copy).
func (c *Column) X0() []float64 { return c.x0 }

// XY returns prefix views of the leading k training pairs.
func (c *Column) XY(k int) ([][]float64, []float64) {
	return c.x[:k], c.y[:k]
}

// set wraps the leading k pairs as a trainSet backed by the shared
// Gram base.
func (c *Column) set(k int) trainSet {
	return trainSet{x: c.x[:k], y: c.y[:k], r2: func(i, j int) float64 { return c.sq.At(i, j) }}
}

// checkK validates a prefix size against the column.
func (c *Column) checkK(k int) error {
	if k <= 0 || k > len(c.y) {
		return fmt.Errorf("%w: k=%d outside column of %d pairs", ErrDims, k, len(c.y))
	}
	return nil
}

// Fit conditions a GP on the leading k pairs, reusing the column's
// Gram base. The result is bit-identical to Fit on the same prefix.
func (c *Column) Fit(k int, hp Hyper) (*Model, error) {
	if err := c.checkK(k); err != nil {
		return nil, err
	}
	if err := hp.Validate(); err != nil {
		return nil, err
	}
	return fitSet(c.set(k), hp)
}

// Optimize maximizes the LOO objective on the leading k pairs exactly
// like the package-level Optimize, but with every objective evaluation
// reading squared distances from the shared Gram base.
func (c *Column) Optimize(k int, init Hyper, maxIter int) (OptimizeResult, error) {
	if err := c.checkK(k); err != nil {
		return OptimizeResult{}, err
	}
	if err := init.Validate(); err != nil {
		return OptimizeResult{}, err
	}
	if maxIter < 0 {
		return OptimizeResult{}, fmt.Errorf("gp: negative maxIter %d", maxIter)
	}
	res, err := ascend(c.set(k), init, maxIter, looValueGrad)
	statOptimizeEvals.Add(uint64(res.Evals))
	return res, err
}

// OptimizeML is Column.Optimize for the marginal-likelihood objective.
func (c *Column) OptimizeML(k int, init Hyper, maxIter int) (OptimizeResult, error) {
	if err := c.checkK(k); err != nil {
		return OptimizeResult{}, err
	}
	if err := init.Validate(); err != nil {
		return OptimizeResult{}, err
	}
	if maxIter < 0 {
		return OptimizeResult{}, fmt.Errorf("gp: negative maxIter %d", maxIter)
	}
	res, err := ascend(c.set(k), init, maxIter, mlValueGrad)
	statOptimizeEvals.Add(uint64(res.Evals))
	return res, err
}

// SharedFactor is the column's full covariance factored once under a
// single shared hyperparameter set. Because a leading submatrix of a
// Cholesky factor is exactly the factor of the leading submatrix,
// smaller-k cells condition by copying the leading principal block of
// L instead of refactorizing — exact under the shared Θ.
type SharedFactor struct {
	col   *Column
	hyper Hyper
	full  *Model
}

// Factor fits the column's full training set under hp (walking the
// usual jitter ladder) and returns the shared factorization.
func (c *Column) Factor(hp Hyper) (*SharedFactor, error) {
	m, err := c.Fit(c.Len(), hp)
	if err != nil {
		return nil, err
	}
	return &SharedFactor{col: c, hyper: hp, full: m}, nil
}

// Hyper returns the shared hyperparameters.
func (sf *SharedFactor) Hyper() Hyper { return sf.hyper }

// Release returns the full model's pooled state. Models obtained from
// ModelAt at the full column size alias sf.full — releasing either
// releases both (idempotently); models from smaller k are independent
// and carry their own Release.
func (sf *SharedFactor) Release() {
	if sf != nil {
		sf.full.Release()
	}
}

// ModelAt returns the GP conditioned on the leading k pairs under the
// shared hyperparameters, reusing the leading k×k block of the full
// Cholesky factor. k equal to the column size returns the full model.
func (sf *SharedFactor) ModelAt(k int) (*Model, error) {
	if err := sf.col.checkK(k); err != nil {
		return nil, err
	}
	if k == sf.col.Len() {
		return sf.full, nil
	}
	ch, err := sf.full.chol.GetPrefix(k)
	if err != nil {
		return nil, err
	}
	alpha := memsys.GetFloats(k)
	if err := ch.SolveVecTo(alpha, sf.col.y[:k]); err != nil {
		memsys.PutFloats(alpha)
		ch.Release()
		return nil, fmt.Errorf("%w: %v", ErrCondition, err)
	}
	statPrefixReuses.Add(1)
	return &Model{
		x:      sf.col.x[:k],
		y:      sf.col.y[:k],
		hyper:  sf.hyper,
		dim:    len(sf.col.x0),
		chol:   ch,
		alpha:  alpha,
		jitter: sf.full.jitter,
	}, nil
}
