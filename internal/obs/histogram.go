package obs

import (
	"math"
	"sync/atomic"
)

// DefBuckets are the default latency buckets in seconds: 100µs to ~10s
// in roughly ×2.5 steps — wide enough for both the sub-millisecond AR
// path and multi-second GP fits on large kNN sets.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket distribution with atomic counts: one
// cumulative-style bucket per upper bound plus an implicit +Inf
// bucket, an observation count and a running sum. Observe is lock-free
// (one atomic add per call plus one for count and a CAS for the sum);
// quantiles are estimated by linear interpolation inside the bucket
// that holds the requested rank, which is the standard fixed-bucket
// estimator Prometheus applies server-side — here it is also served
// locally so /debug and tests can read p50/p90/p99 without a scraper.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1, non-cumulative per bucket
	count  atomic.Uint64
	sumBit atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram builds a histogram over the given ascending bucket
// upper bounds (nil or empty takes DefBuckets). Bounds are copied.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBit.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBit.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveN records the value n times in one shot — the bulk path for
// bridging cumulative runtime histograms, where one sampling interval
// can carry thousands of scheduler-latency events.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if h == nil || n == 0 || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(n)
	h.count.Add(n)
	for {
		old := h.sumBit.Load()
		next := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sumBit.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBit.Load())
}

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// snapshot reads the per-bucket counts once (not a transaction, like
// every Prometheus scrape).
func (h *Histogram) snapshot() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q < 1) of the observed
// distribution by linear interpolation within the bucket holding the
// q·count-th observation. The lowest bucket interpolates from 0; an
// estimate landing in the +Inf bucket is clamped to the largest finite
// bound. Returns NaN when empty or q is out of range.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || q <= 0 || q >= 1 {
		return math.NaN()
	}
	counts := h.snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i == len(h.bounds) {
			// +Inf bucket: no upper bound to interpolate toward.
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSnapshot is a point-in-time JSON-friendly view served by
// debug endpoints.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot returns count, sum and the three headline quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}
