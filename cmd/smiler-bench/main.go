// Command smiler-bench regenerates the paper's evaluation tables and
// figures on the synthetic corpora.
//
// Usage:
//
//	smiler-bench -exp fig7            # one experiment
//	smiler-bench -exp all -scale small
//	smiler-bench -exp fig9 -dataset ROAD -hs 1,5,15,30
//
// Experiments: table3, fig7, fig8, fig9, fig10, fig11, table4, fig12,
// fig13, ablation, all. Scales: small (seconds), medium (minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"smiler/internal/bench"
	"smiler/internal/gpusim"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table3|fig7|fig8|fig9|fig10|fig11|table4|fig12|fig13|ablation|distance|downsample|profile|all")
		scale   = flag.String("scale", "small", "corpus scale: small|medium")
		dataset = flag.String("dataset", "", "restrict to one dataset (ROAD|MALL|NET)")
		steps   = flag.Int("steps", 0, "override continuous steps for search experiments")
		ksFlag  = flag.String("ks", "16,32,64,128", "comma-separated k values for fig7")
		hsFlag  = flag.String("hs", "1,5,10,15,20,25,30", "comma-separated horizons for accuracy experiments")

		sensors   = flag.Int("sensors", 0, "override number of distinct sensors per dataset")
		days      = flag.Int("days", 0, "override days of data per sensor")
		warm      = flag.Int("warm", 0, "override warm (history) prefix length")
		testSteps = flag.Int("teststeps", 0, "override continuous test steps for accuracy experiments")
		outDir    = flag.String("out", "", "also write plottable .tsv series into this directory")
	)
	flag.Parse()
	ov := override{sensors: *sensors, days: *days, warm: *warm, testSteps: *testSteps, outDir: *outDir}
	if err := run(*exp, *scale, *dataset, *steps, *ksFlag, *hsFlag, ov); err != nil {
		fmt.Fprintln(os.Stderr, "smiler-bench:", err)
		os.Exit(1)
	}
}

// override carries optional spec overrides from flags (0 = keep).
type override struct {
	sensors, days, warm, testSteps int
	outDir                         string
}

// saveSeries writes a TSV series when -out is set.
func (o override) saveSeries(dataset, name string, header []string, rows [][]string) error {
	if o.outDir == "" {
		return nil
	}
	path := filepath.Join(o.outDir, fmt.Sprintf("%s_%s.tsv", strings.ToLower(dataset), name))
	if err := bench.SaveTSV(path, header, rows); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n\n", path)
	return nil
}

func (o override) apply(spec bench.DatasetSpec) bench.DatasetSpec {
	if o.sensors > 0 {
		spec.Gen.Sensors = o.sensors
		spec.Gen.Duplicates = 0
	}
	if o.days > 0 {
		spec.Gen.Days = o.days
	}
	if o.warm > 0 {
		spec.Warm = o.warm
	}
	if o.testSteps > 0 {
		spec.TestSteps = o.testSteps
	}
	return spec
}

func run(exp, scaleName, dataset string, steps int, ksFlag, hsFlag string, ov override) error {
	var sc bench.Scale
	switch scaleName {
	case "small":
		sc = bench.ScaleSmall
	case "medium":
		sc = bench.ScaleMedium
	default:
		return fmt.Errorf("unknown scale %q", scaleName)
	}
	ks, err := parseInts(ksFlag)
	if err != nil {
		return fmt.Errorf("bad -ks: %w", err)
	}
	hs, err := parseInts(hsFlag)
	if err != nil {
		return fmt.Errorf("bad -hs: %w", err)
	}
	if steps == 0 {
		steps = 10
		if sc == bench.ScaleMedium {
			steps = 100
		}
	}

	var corpora []*bench.Corpus
	for _, spec := range bench.Suite(sc) {
		if dataset != "" && !strings.EqualFold(dataset, spec.Name) {
			continue
		}
		spec = ov.apply(spec)
		c, err := bench.Load(spec)
		if err != nil {
			return fmt.Errorf("load %s: %w", spec.Name, err)
		}
		corpora = append(corpora, c)
	}
	if len(corpora) == 0 {
		return fmt.Errorf("no datasets selected (dataset=%q)", dataset)
	}

	want := func(name string) bool { return exp == "all" || exp == name }
	ran := false

	for _, c := range corpora {
		fmt.Printf("=== dataset %s: %d sensors, %d points each, warm %d ===\n\n",
			c.Spec.Name, len(c.Series), len(c.Series[0]), c.Spec.Warm)

		if want("table3") {
			ran = true
			rows, err := bench.RunTable3(c, steps)
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatTable3(rows))
			h3, r3 := bench.Table3TSV(rows)
			if err := ov.saveSeries(c.Spec.Name, "table3", h3, r3); err != nil {
				return err
			}
		}
		if want("fig7") {
			ran = true
			methods := []bench.SearchMethod{
				bench.MethodSMiLerIdx, bench.MethodSMiLerDir,
				bench.MethodFastGPUScan, bench.MethodGPUScan, bench.MethodFastCPUScan,
			}
			rows, err := bench.RunFig7(c, ks, steps, methods)
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatFig7(rows))
			h7, r7 := bench.Fig7TSV(rows)
			if err := ov.saveSeries(c.Spec.Name, "fig7", h7, r7); err != nil {
				return err
			}
		}
		if want("fig8") {
			ran = true
			rows, err := bench.RunFig8(c, steps)
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatFig8(rows))
		}
		if want("fig9") {
			ran = true
			rows, timings, err := bench.RunAccuracy(c, bench.OfflineMethods(), hs)
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatAccuracy("Fig. 9 — offline learning models", rows))
			fmt.Println(bench.FormatTable4(timings))
			h9, r9 := bench.AccuracyTSV(rows)
			if err := ov.saveSeries(c.Spec.Name, "fig9", h9, r9); err != nil {
				return err
			}
		}
		if want("fig10") {
			ran = true
			rows, timings, err := bench.RunAccuracy(c, bench.OnlineMethods(), hs)
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatAccuracy("Fig. 10 — online learning models", rows))
			fmt.Println(bench.FormatTable4(timings))
			h10, r10 := bench.AccuracyTSV(rows)
			if err := ov.saveSeries(c.Spec.Name, "fig10", h10, r10); err != nil {
				return err
			}
		}
		if want("fig11") {
			ran = true
			rows, _, err := bench.RunAccuracy(c, bench.AblationMethods(), hs)
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatAccuracy("Fig. 11 — adaptive auto-tuning ablation", rows))
			h11, r11 := bench.AccuracyTSV(rows)
			if err := ov.saveSeries(c.Spec.Name, "fig11", h11, r11); err != nil {
				return err
			}
		}
		if want("table4") {
			ran = true
			_, timings, err := bench.RunAccuracy(c, bench.AllMethods(), []int{1})
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatTable4(timings))
		}
		if want("fig12") {
			ran = true
			rows, err := bench.RunFig12Time(c, steps)
			if err != nil {
				return err
			}
			per, maxS, err := bench.Fig12Capacity(c, gpusim.DefaultConfig())
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatFig12(rows, per, maxS))
		}
		if want("fig13") {
			ran = true
			rows, err := bench.RunFig13(c, []int{4, 8, 16, 32, 64, 128})
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatFig13(rows))
			h13, r13 := bench.Fig13TSV(rows)
			if err := ov.saveSeries(c.Spec.Name, "fig13", h13, r13); err != nil {
				return err
			}
		}
		if want("ablation") {
			ran = true
			reuse, rebuild, err := bench.AblationContinuousReuse(c, steps)
			if err != nil {
				return err
			}
			fmt.Printf("Ablation — continuous window-level reuse (Remark 1), %d steps:\n", steps)
			fmt.Printf("  incremental Advance: %.4fs   rebuild-from-scratch: %.4fs   speedup: %.1f×\n\n",
				reuse, rebuild, rebuild/reuse)
		}
		if want("distance") {
			ran = true
			rows, err := bench.RunDistanceMeasureAblation(c, steps, 32, 64, 1)
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatDistanceAblation(rows))
		}
		if want("profile") {
			ran = true
			rows, err := bench.RunSearchProfile(c, steps, 32)
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatSearchProfile(rows))
		}
		if want("downsample") {
			ran = true
			rows, err := bench.RunDownsampleTradeoff(c, []float64{1.0, 0.5, 0.25, 0.1}, steps)
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatDownsample(rows))
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
