package index

import (
	"context"
	"errors"
	"fmt"
	"math"

	"smiler/internal/gpusim"
)

// SearchRange answers the ε-range variant of the Suffix search: for
// every item query length in ELV it returns ALL historical segments
// within DTW distance eps (squared-cost convention, like every
// distance in this package), considering only candidates whose
// h-step-ahead label exists. Range search is the classic DualMatch
// workload; on the SMiLer Index it reuses the same group-level lower
// bounds — the filter threshold is simply eps itself, no k-th-NN
// bootstrap needed. Results are sorted ascending by distance.
func (ix *Index) SearchRange(eps float64, h int) ([]ItemResult, error) {
	return ix.SearchRangeCtx(context.Background(), eps, h)
}

// SearchRangeCtx is SearchRange with a context, with the same deadline
// semantics as SearchCtx. A progressive range result is the subset of
// in-range segments found before the deadline; Stats() reports the
// fraction of candidates verified and the probability the subset is
// already complete.
func (ix *Index) SearchRangeCtx(ctx context.Context, eps float64, h int) ([]ItemResult, error) {
	if ix.closed {
		return nil, errors.New("index: closed")
	}
	if eps < 0 || math.IsNaN(eps) {
		return nil, fmt.Errorf("index: invalid range radius %v", eps)
	}
	if h <= 0 {
		return nil, fmt.Errorf("index: horizon h=%d must be positive", h)
	}
	ix.stats = SearchStats{}
	lbs, err := ix.groupLevelLowerBounds(ctx, h)
	if err != nil {
		return nil, err
	}
	defer releaseBounds(lbs)
	// The filter threshold is eps itself, and eps is also an exact
	// early-abandon cutoff: a candidate abandoned at eps has true
	// distance > eps and is outside the range by definition.
	results := make([]ItemResult, len(ix.p.ELV))
	n := len(ix.c)
	tasks := make([]*verifyTask, len(ix.p.ELV))
	defer releaseTaskDists(tasks)
	var launch []*verifyTask
	for i, d := range ix.p.ELV {
		results[i] = ItemResult{D: d}
		if len(lbs[i]) == 0 {
			continue
		}
		query := ix.c[n-d:]
		t := &verifyTask{d: d, query: query, lbs: lbs[i], tau: eps, cutoff: ix.abandonCutoff(eps), rangeMode: true}
		tasks[i] = t
		launch = append(launch, t)
	}
	if err := ix.runVerify(ctx, launch, 0); err != nil {
		return nil, err
	}
	ix.finishQuality(launch)
	for i := range ix.p.ELV {
		t := tasks[i]
		if t == nil {
			continue
		}
		ix.stats.Unfiltered += t.unfiltered
		if i < len(ix.stats.PerItem) {
			ix.stats.PerItem[i].Unfiltered = t.unfiltered
		}
		dists := t.dists
		var sel []gpusim.KSelectResult
		if err := ix.dev.Launch(1, func(blk *gpusim.Block) error {
			// Range selection: keep everything within eps; reuse the
			// k-selection kernel with k = candidate count, then trim.
			sel = gpusim.KSelectBlock(blk, dists, len(dists))
			return nil
		}); err != nil {
			return nil, err
		}
		for _, s := range sel {
			if s.Value > eps {
				break // sorted ascending: nothing further qualifies
			}
			results[i].Neighbors = append(results[i].Neighbors, Neighbor{T: s.Index, Dist: s.Value})
		}
	}
	return results, nil
}

// CountRange reports, per ELV entry, how many historical segments lie
// within DTW distance eps of the current suffix — a cheap density
// probe (how much support would a semi-lazy model have right now?).
func (ix *Index) CountRange(eps float64, h int) (map[int]int, error) {
	res, err := ix.SearchRange(eps, h)
	if err != nil {
		return nil, err
	}
	out := make(map[int]int, len(res))
	for _, r := range res {
		out[r.D] = len(r.Neighbors)
	}
	return out, nil
}
