package cluster_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"smiler/internal/cluster"
	"smiler/internal/obs"
	"smiler/internal/server"
)

// traceWithID scans a node's /debug/trace/{sensor} answer for a trace
// carrying the distributed trace id. Returns nil when absent (or when
// the node does not know the sensor yet).
func traceWithID(t *testing.T, baseURL, sensor, traceID string) *obs.Trace {
	t.Helper()
	resp, err := http.Get(baseURL + "/debug/trace/" + sensor)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var traces []*obs.Trace
	if err := jsonDecode(resp.Body, &traces); err != nil {
		t.Fatal(err)
	}
	for _, tr := range traces {
		if tr.TraceID == traceID {
			return tr
		}
	}
	return nil
}

func spanNames(tr *obs.Trace) []string {
	names := make([]string, 0, len(tr.Spans))
	for _, sp := range tr.Spans {
		names = append(names, sp.Name)
	}
	return names
}

func hasSpan(tr *obs.Trace, name string) bool {
	for _, sp := range tr.Spans {
		if sp.Name == name {
			return true
		}
	}
	return false
}

// TestClusterTracePropagation: a forecast entering through a non-owner
// is one distributed trace. The entry node's hop trace shows the
// forward span with the owner's phase spans inlined; the owner's
// prediction trace carries the same trace id at hop 1.
func TestClusterTracePropagation(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	const sensor = "trace-sensor"
	hist := seasonal(rand.New(rand.NewSource(21)), 420)

	owner := ownerOf(t, nodes, sensor)
	entry := nonOwnerOf(t, nodes, sensor)
	cl, err := server.NewClient(entry.ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.AddSensor(sensor, hist[:400]); err != nil {
		t.Fatal(err)
	}
	if !owner.sys.HasSensor(sensor) {
		t.Fatal("registration did not reach the owner")
	}

	// Forecast through the entry node; the response echoes the minted
	// trace context.
	resp, err := http.Get(entry.ts.URL + "/sensors/" + sensor + "/forecast?h=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded forecast: HTTP %d", resp.StatusCode)
	}
	header := resp.Header.Get(obs.TraceHeader)
	tc, ok := obs.ParseTraceContext(header)
	if !ok {
		t.Fatalf("response %s header %q did not parse", obs.TraceHeader, header)
	}
	if tc.Hop != 0 {
		t.Fatalf("entry-minted trace hop = %d, want 0 (%q)", tc.Hop, header)
	}

	// Entry node: a hop trace with the forward span, owner spans inlined.
	var entryTr *obs.Trace
	waitFor(t, 5*time.Second, "forward hop trace on the entry node", func() bool {
		entryTr = traceWithID(t, entry.ts.URL, sensor, tc.ID)
		return entryTr != nil
	})
	if !hasSpan(entryTr, "forward") {
		t.Fatalf("entry trace has no forward span: %v", spanNames(entryTr))
	}
	if entryTr.Node != entry.id {
		t.Fatalf("entry trace node = %q, want %q", entryTr.Node, entry.id)
	}
	// The owner answered with a span summary, so the entry trace holds
	// more than the forward span alone: the owner's phases are inlined.
	if len(entryTr.Spans) < 2 {
		t.Fatalf("owner spans not inlined on the entry trace: %v", spanNames(entryTr))
	}

	// Owner node: its own prediction trace under the same trace id,
	// one hop downstream of the entry.
	var ownerTr *obs.Trace
	waitFor(t, 5*time.Second, "prediction trace on the owner node", func() bool {
		ownerTr = traceWithID(t, owner.ts.URL, sensor, tc.ID)
		return ownerTr != nil
	})
	if ownerTr.Hop != 1 {
		t.Fatalf("owner trace hop = %d, want 1", ownerTr.Hop)
	}
	if ownerTr.Node != owner.id {
		t.Fatalf("owner trace node = %q, want %q", ownerTr.Node, owner.id)
	}
	if len(ownerTr.Spans) == 0 {
		t.Fatal("owner trace has no phase spans")
	}
}

// eventsOf pulls a node's flight-recorder ring.
func eventsOf(t *testing.T, baseURL string) []obs.Event {
	t.Helper()
	resp, err := http.Get(baseURL + "/debug/events")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var er server.EventsResponse
	if err := jsonDecode(resp.Body, &er); err != nil {
		t.Fatal(err)
	}
	return er.Events
}

func hasEvent(evs []obs.Event, typ string, match func(obs.Event) bool) bool {
	for _, ev := range evs {
		if ev.Type == typ && (match == nil || match(ev)) {
			return true
		}
	}
	return false
}

// TestClusterEventsMigrationAndFailover: the flight recorder captures
// the cluster's control-plane incidents — a migration cutover on the
// old owner, the ownership override on its peers, and a failover when
// a member dies.
func TestClusterEventsMigrationAndFailover(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	const sensor = "events-sensor"
	hist := seasonal(rand.New(rand.NewSource(22)), 420)

	owner := ownerOf(t, nodes, sensor)
	target := nonOwnerOf(t, nodes, sensor)
	cl, err := server.NewClient(owner.ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.AddSensor(sensor, hist[:400]); err != nil {
		t.Fatal(err)
	}

	// Migrate the sensor; the cutover must land in the old owner's ring.
	body, err := json.Marshal(cluster.MigrateRequest{Sensor: sensor, Target: target.id})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(owner.ts.URL+"/cluster/migrate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate: HTTP %d", resp.StatusCode)
	}
	evs := eventsOf(t, owner.ts.URL)
	if !hasEvent(evs, "migration_cutover", func(ev obs.Event) bool {
		return ev.Sensor == sensor && strings.Contains(ev.Detail, target.id)
	}) {
		t.Fatalf("old owner has no migration_cutover event: %+v", evs)
	}
	waitFor(t, 5*time.Second, "migration_assign on the new owner", func() bool {
		return hasEvent(eventsOf(t, target.ts.URL), "migration_assign", func(ev obs.Event) bool {
			return ev.Sensor == sensor
		})
	})

	// Kill a member; within the probe window the survivors record the
	// failover at error severity.
	var victim *testNode
	for _, tn := range nodes {
		if tn != owner && tn != target {
			victim = tn
		}
	}
	victim.ts.Close()
	waitFor(t, 5*time.Second, "failover event on a survivor", func() bool {
		return hasEvent(eventsOf(t, owner.ts.URL), "failover", func(ev obs.Event) bool {
			return strings.Contains(ev.Detail, victim.id) && ev.Severity == obs.SevError
		})
	})
}
