package index

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"smiler/internal/dtw"
	"smiler/internal/gpusim"
)

// SearchMulti answers the Suffix kNN Search for several horizons in a
// single pass. The horizon only changes the label-validity mask
// (candidates must satisfy t ≤ |C| − d − h), so the group-level lower
// bounds are produced once and each candidate segment's DTW is
// verified at most once, no matter how many horizons ask for it. The
// result maps each horizon to its per-item-query kNN sets, each
// identical to what Search(k, h) would return.
func (ix *Index) SearchMulti(k int, hs []int) (map[int][]ItemResult, error) {
	if ix.closed {
		return nil, errors.New("index: closed")
	}
	if k <= 0 {
		return nil, fmt.Errorf("index: k=%d must be positive", k)
	}
	if len(hs) == 0 {
		return nil, errors.New("index: empty horizon list")
	}
	sorted := append([]int(nil), hs...)
	sort.Ints(sorted)
	if sorted[0] <= 0 {
		return nil, fmt.Errorf("index: horizon %d must be positive", sorted[0])
	}
	ix.stats = SearchStats{}

	// Lower bounds once, with the smallest horizon's (largest) mask.
	hMin := sorted[0]
	lbs, err := ix.groupLevelLowerBounds(hMin)
	if err != nil {
		return nil, err
	}

	out := make(map[int][]ItemResult, len(sorted))
	for _, h := range sorted {
		out[h] = make([]ItemResult, len(ix.p.ELV))
	}

	n := len(ix.c)
	for i, d := range ix.p.ELV {
		query := ix.c[n-d:]
		dists, err := ix.verifyMulti(d, query, lbs[i], k, sorted)
		if err != nil {
			return nil, err
		}
		for _, h := range sorted {
			maxT := n - d - h
			if maxT >= len(dists) {
				maxT = len(dists) - 1
			}
			var neighbors []Neighbor
			if maxT >= 0 {
				neighbors, err = ix.selectKRange(dists[:maxT+1], k)
				if err != nil {
					return nil, err
				}
			}
			out[h][i] = ItemResult{D: d, Neighbors: neighbors}
			if h == hMin {
				prev := make([]int, len(neighbors))
				for j, nb := range neighbors {
					prev[j] = nb.T
				}
				ix.prevNN[d] = prev
			}
		}
	}
	return out, nil
}

// verifyMulti computes exact DTW distances for the union over horizons
// of the candidates that must be verified: for each horizon an exact
// threshold τ_h is derived on its candidate range, and a candidate is
// verified when any horizon's filter keeps it. Extra verified
// candidates can only improve the selections (never miss a true
// neighbour), so every per-horizon result stays exact.
func (ix *Index) verifyMulti(d int, query []float64, lbs []float64, k int, hs []int) ([]float64, error) {
	nPos := len(lbs)
	inf := math.Inf(1)
	dists := make([]float64, nPos)
	for t := range dists {
		dists[t] = inf
	}
	if nPos == 0 {
		return dists, nil
	}
	n := len(ix.c)

	// Per-horizon thresholds on their own ranges.
	need := make([]bool, nPos)
	for _, h := range hs {
		maxT := n - d - h
		if maxT >= nPos {
			maxT = nPos - 1
		}
		if maxT < 0 {
			continue
		}
		tau, err := ix.threshold(d, query, lbs[:maxT+1], k)
		if err != nil {
			return nil, err
		}
		for t := 0; t <= maxT; t++ {
			if lbs[t] <= tau {
				need[t] = true
			}
		}
	}

	rho := ix.p.Rho
	wallStart := time.Now()
	defer func() { ix.stats.VerifyWallSeconds += time.Since(wallStart).Seconds() }()
	before := ix.dev.SimSeconds()
	grid := (nPos + verifyChunk - 1) / verifyChunk
	counts := make([]int, grid)
	err := ix.dev.Launch(grid, func(blk *gpusim.Block) error {
		lo := blk.ID * verifyChunk
		hi := lo + verifyChunk
		if hi > nPos {
			hi = nPos
		}
		cnt := 0
		for t := lo; t < hi; t++ {
			blk.GlobalAccess(1)
			if need[t] {
				cnt++
			}
		}
		counts[blk.ID] = cnt
		if cnt == 0 {
			return nil
		}
		if err := chargeVerifyBlock(blk, d, rho, cnt); err != nil {
			return err
		}
		scratch := dtw.NewCompressedScratch(rho)
		for t := lo; t < hi; t++ {
			if !need[t] {
				continue
			}
			dist, err := dtw.DistanceCompressed(query, ix.c[t:t+d], rho, scratch)
			if err != nil {
				return err
			}
			dists[t] = dist
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	ix.stats.VerifySimSeconds += ix.dev.SimSeconds() - before
	for _, c := range counts {
		ix.stats.Unfiltered += c
	}
	return dists, nil
}

// selectKRange selects the k nearest among the verified candidates in
// the given range, honouring MinSeparation like selectK.
func (ix *Index) selectKRange(dists []float64, k int) ([]Neighbor, error) {
	return ix.selectK(dists, k)
}
