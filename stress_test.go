package smiler

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// stressCfg keeps the per-operation cost low so the stress tests
// drive many operations in a short wall-clock window.
func stressCfg() Config {
	cfg := DefaultConfig()
	cfg.Rho = 3
	cfg.Omega = 8
	cfg.ELV = []int{16, 24}
	cfg.EKV = []int{4}
	cfg.Predictor = PredictorAR
	return cfg
}

func stressHistory(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = 20 + 5*math.Sin(2*math.Pi*float64(i)/24) + rng.NormFloat64()*0.2
	}
	return out
}

// tolerable reports whether an error is an expected casualty of the
// add/remove churn (the sensor vanished between pick and call), as
// opposed to a correctness bug.
func tolerable(err error) bool {
	return err == nil ||
		strings.Contains(err.Error(), "unknown sensor") ||
		strings.Contains(err.Error(), "already registered") ||
		// Sensor removed between lookup and use: the call raced the
		// churner and lost, which is fine.
		strings.Contains(err.Error(), "index: closed")
}

// TestConcurrentSystemStress hammers one System from many goroutines
// mixing Observe, Predict, PredictAll, ObserveAll, AddSensor and
// RemoveSensor. Run with -race it is the concurrency safety net for
// the public API; without -race it still catches deadlocks and map
// corruption.
func TestConcurrentSystemStress(t *testing.T) {
	sys, err := New(stressCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// Stable sensors that always exist, plus churned ones that come
	// and go mid-flight.
	const stable, iters = 4, 120
	for i := 0; i < stable; i++ {
		if err := sys.AddSensor(fmt.Sprintf("stable-%d", i), stressHistory(int64(i), 200)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	fail := func(op string, err error) {
		select {
		case errs <- fmt.Errorf("%s: %w", op, err):
		default:
		}
	}

	// Observers: one per stable sensor keeps per-sensor ordering a
	// non-issue; the point here is cross-sensor interleaving.
	for i := 0; i < stable; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("stable-%d", i)
			vals := stressHistory(int64(100+i), iters)
			for _, v := range vals {
				if err := sys.Observe(id, v); err != nil {
					fail("observe", err)
					return
				}
			}
		}(i)
	}
	// Predictors hammer reads across all sensors, including churned
	// ones that may vanish mid-call.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("stable-%d", i%stable)
				if i%3 == g%3 {
					id = fmt.Sprintf("churn-%d", i%2)
				}
				if _, err := sys.Predict(id, 1+i%3); !tolerable(err) {
					fail("predict", err)
					return
				}
			}
		}(g)
	}
	// Bulk paths exercise the bounded worker pools under churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/6; i++ {
			if _, err := sys.PredictAll(1); !tolerable(err) {
				fail("predictAll", err)
				return
			}
			batch := make(map[string]float64, stable)
			for s := 0; s < stable; s++ {
				batch[fmt.Sprintf("stable-%d", s)] = 20 + float64(i%5)
			}
			if err := sys.ObserveAll(batch); !tolerable(err) {
				fail("observeAll", err)
				return
			}
		}
	}()
	// Churner: adds and removes sensors while everything else runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			id := fmt.Sprintf("churn-%d", i%2)
			if err := sys.AddSensor(id, stressHistory(int64(200+i), 200)); !tolerable(err) {
				fail("add", err)
				return
			}
			sys.HasSensor(id)
			if err := sys.RemoveSensor(id); !tolerable(err) {
				fail("remove", err)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The stable sensors must have absorbed every observation.
	for i := 0; i < stable; i++ {
		id := fmt.Sprintf("stable-%d", i)
		n, err := sys.HistoryLen(id)
		if err != nil {
			t.Fatal(err)
		}
		if n < 200+iters { // initial + per-sensor observer stream
			t.Errorf("%s: history %d, want ≥ %d", id, n, 200+iters)
		}
	}
}
