package datasets

import (
	"math"
	"testing"
)

func TestStreamDeterministicPerSensor(t *testing.T) {
	for _, kind := range []Kind{Road, Mall, Net} {
		a, err := NewStream(kind, 42, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewStream(kind, 42, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			if av, bv := a.Next(), b.Next(); av != bv {
				t.Fatalf("%v: stream not deterministic at %d: %v vs %v", kind, i, av, bv)
			}
		}
		if a.Pos() != 1000 {
			t.Fatalf("Pos = %d, want 1000", a.Pos())
		}
	}
}

func TestStreamDistinctSensorsDiffer(t *testing.T) {
	a, _ := NewStream(Road, 1, 0)
	b, _ := NewStream(Road, 1, 1)
	c, _ := NewStream(Road, 2, 0)
	av, bv, cv := a.Take(200), b.Take(200), c.Take(200)
	sameAB, sameAC := true, true
	for i := range av {
		if av[i] != bv[i] {
			sameAB = false
		}
		if av[i] != cv[i] {
			sameAC = false
		}
	}
	if sameAB {
		t.Fatal("adjacent sensor indices must produce distinct streams")
	}
	if sameAC {
		t.Fatal("different seeds must produce distinct streams")
	}
}

func TestStreamTakeThenNextContinues(t *testing.T) {
	// Take(n) then Next must equal a fresh stream read linearly: the
	// loader bootstraps history with Take and then streams observations
	// as a continuation of the same series.
	a, _ := NewStream(Net, 9, 3)
	b, _ := NewStream(Net, 9, 3)
	hist := a.Take(128)
	lin := b.Take(130)
	for i := range hist {
		if hist[i] != lin[i] {
			t.Fatalf("Take diverges at %d", i)
		}
	}
	if a.Next() != lin[128] || a.Next() != lin[129] {
		t.Fatal("Next after Take must continue the same series")
	}
}

func TestStreamValuesShapedLikeCorpus(t *testing.T) {
	// Spot-check the stream steppers inherit the corpus invariants.
	road, _ := NewStream(Road, 3, 11)
	for i := 0; i < 2*Road.SamplesPerDay(); i++ {
		v := road.Next()
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("road occupancy %v out of [0,1]", v)
		}
	}
	net, _ := NewStream(Net, 3, 11)
	for i := 0; i < 2*Net.SamplesPerDay(); i++ {
		if v := net.Next(); v <= 0 {
			t.Fatalf("non-positive traffic %v", v)
		}
	}
	mall, _ := NewStream(Mall, 3, 11)
	for i := 0; i < 2*Mall.SamplesPerDay(); i++ {
		if v := mall.Next(); v < 0 {
			t.Fatalf("negative availability %v", v)
		}
	}
}

func TestStreamRejectsBadArgs(t *testing.T) {
	if _, err := NewStream(Kind(9), 1, 0); err == nil {
		t.Fatal("unknown kind must error")
	}
	if _, err := NewStream(Road, 1, -1); err == nil {
		t.Fatal("negative index must error")
	}
}
