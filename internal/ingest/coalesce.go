package ingest

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"smiler"
)

// maxCachedHorizons bounds the per-sensor forecast cache: a sensor's
// entry holds at most this many distinct horizons between two
// observations. Beyond that, extra horizons are simply recomputed.
const maxCachedHorizons = 16

// flightKey identifies one deduplicable forecast computation.
type flightKey struct {
	id string
	h  int
}

// flight is one in-progress forecast computation; followers block on
// done and read f/err afterwards.
type flight struct {
	done  chan struct{}
	stale bool // an observation landed while the computation ran
	f     smiler.Forecast
	err   error
}

// coalescer is the read-side of the pipeline: a single-flight layer
// plus a small per-sensor forecast cache keyed (sensor, horizon),
// invalidated by that sensor's next observation. A thundering herd of
// identical forecast requests costs one kNN search + GP fit.
type coalescer struct {
	sys System

	mu      sync.Mutex
	cache   map[string]map[int]smiler.Forecast
	flights map[flightKey]*flight

	hits          atomic.Uint64
	waits         atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
	panics        atomic.Uint64
}

func newCoalescer(sys System) *coalescer {
	return &coalescer{
		sys:     sys,
		cache:   make(map[string]map[int]smiler.Forecast),
		flights: make(map[flightKey]*flight),
	}
}

// forecast returns the (id, h) forecast, serving it from the cache
// when the sensor has not been observed since it was computed, and
// otherwise computing it at most once no matter how many callers ask
// concurrently. ctx carries request-scoped values (the distributed
// trace context) into the computation this caller starts; followers
// piggyback on the leader's flight and its ctx.
func (c *coalescer) forecast(ctx context.Context, id string, h int) (smiler.Forecast, error) {
	key := flightKey{id: id, h: h}
	c.mu.Lock()
	if f, ok := c.cache[id][h]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return f, nil
	}
	if fl, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.waits.Add(1)
		<-fl.done
		return fl.f, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[key] = fl
	c.mu.Unlock()

	c.misses.Add(1)
	f, err := c.safePredict(ctx, id, h)

	c.mu.Lock()
	delete(c.flights, key)
	fl.f, fl.err = f, err
	// Cache only clean, full-pipeline, exact successes: if an
	// observation was applied while we computed, the result describes
	// the pre-observation state; a degraded (fallback) answer must not
	// shadow the real pipeline once it recovers; and a progressive
	// (deadline-truncated) answer is a product of its moment's load —
	// caching it would pin a lower-quality forecast on followers who
	// might have gotten an exact one, so every non-exact request gets a
	// fresh chance.
	if err == nil && !fl.stale && !f.Degraded && cacheableQuality(f.Quality) {
		byH := c.cache[id]
		if byH == nil {
			byH = make(map[int]smiler.Forecast)
			c.cache[id] = byH
		}
		if len(byH) < maxCachedHorizons {
			byH[h] = f
		}
	}
	c.mu.Unlock()
	close(fl.done)
	return f, err
}

// cacheableQuality reports whether a forecast's quality rung may enter
// the cache: only exact answers (the empty tag covers systems and test
// fakes predating the quality ladder).
func cacheableQuality(q string) bool { return q == "" || q == "exact" }

// ctxPredictor is the optional context-aware prediction capability:
// *smiler.System implements it, test fakes need not.
type ctxPredictor interface {
	PredictCtx(ctx context.Context, id string, h int) (smiler.Forecast, error)
}

// safePredict runs the system's Predict with a panic guard: a panic
// inside the prediction pipeline fails this flight (all coalesced
// followers see the error) instead of killing the process.
func (c *coalescer) safePredict(ctx context.Context, id string, h int) (f smiler.Forecast, err error) {
	defer func() {
		if r := recover(); r != nil {
			c.panics.Add(1)
			f, err = smiler.Forecast{}, fmt.Errorf("ingest: recovered panic in forecast: %v", r)
		}
	}()
	if p, ok := c.sys.(ctxPredictor); ok && ctx != nil {
		return p.PredictCtx(ctx, id, h)
	}
	return c.sys.Predict(id, h)
}

// invalidate flushes the sensor's cached forecasts and marks its
// in-flight computations stale. Called by shard workers after each
// applied observation and by the server when a sensor is removed.
func (c *coalescer) invalidate(id string) {
	c.mu.Lock()
	if _, ok := c.cache[id]; ok {
		delete(c.cache, id)
		c.invalidations.Add(1)
	}
	for key, fl := range c.flights {
		if key.id == id {
			fl.stale = true
		}
	}
	c.mu.Unlock()
}

func (c *coalescer) stats() CoalesceStats {
	c.mu.Lock()
	size := 0
	for _, byH := range c.cache {
		size += len(byH)
	}
	c.mu.Unlock()
	return CoalesceStats{
		CacheHits:      c.hits.Load(),
		CoalescedWaits: c.waits.Load(),
		Misses:         c.misses.Load(),
		Invalidations:  c.invalidations.Load(),
		CacheSize:      size,
		Panics:         c.panics.Load(),
	}
}
