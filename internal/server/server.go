// Package server exposes a SMiLer system as an HTTP/JSON service —
// the deployment shape the paper targets (many sensors streaming
// observations, applications pulling forecasts in real time). Writes
// and single-horizon reads are routed through internal/ingest: a
// sharded, micro-batching ingestion pipeline with per-sensor ordering
// and single-flight forecast coalescing.
//
// Routes:
//
//	GET    /healthz                 liveness probe (200 while the process runs)
//	GET    /readyz                  readiness probe (503 while recovering
//	                                from the WAL at startup or draining on
//	                                SIGTERM)
//	GET    /stats                   device memory + sensor count
//	GET    /metrics                 Prometheus text exposition (prediction
//	                                phase histograms, kNN pruning counters,
//	                                ingest/coalesce counters, HTTP metrics)
//	GET    /debug/trace/{sensor}    last-N prediction traces (per-phase
//	                                spans + kNN stats) as JSON; ?n=k
//	GET    /pipeline/stats          ingestion pipeline counters (per-shard
//	                                queue depth / processed / dropped /
//	                                batching, forecast-coalescing hits)
//	POST   /observations            {"observations":[{"id":"...","value":x},...]}
//	                                multi-sensor bulk ingest with per-item
//	                                outcomes
//	GET    /sensors                 list sensor ids
//	POST   /sensors                 {"id": "...", "history": [...]}
//	DELETE /sensors/{id}            remove a sensor
//	GET    /sensors/{id}/forecast?h=1[&z=1.96]
//	POST   /sensors/{id}/observe    {"value": 1.23}  (or {"values": [...]})
//	POST   /sensors/{id}/readings   {"readings":[{"at":"RFC3339","value":x},...]}
//	                                (requires NewWithInterval; irregular readings
//	                                are regularized onto the fixed sample grid)
//	GET    /sensors/{id}/forecasts?hs=1,3,6  multi-horizon ladder
//	GET    /sensors/{id}/ensemble   auto-tuning weights
//
// Observations accepted by the pipeline are applied asynchronously
// (in per-sensor order); a full queue surfaces as HTTP 503 under the
// Error backpressure policy, or as a "dropped" count under
// DropNewest. All bodies and responses are JSON. Errors are
// {"error": "..."} with an appropriate status code.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smiler"
	"smiler/internal/ingest"
	"smiler/internal/memsys"
	"smiler/internal/obs"
	"smiler/internal/timeseries"
)

// Version identifies the serving build; it is reported by GET
// /healthz and the smiler_build_info metric so orchestrators and
// cluster peers can tell what they are probing.
const Version = "0.5.0"

// GateFunc intercepts requests between the observability middleware
// and the local route table. The cluster layer installs one to check
// sensor ownership and forward misrouted requests to their owner;
// next serves the request locally (through the idempotency layer and
// the mux).
type GateFunc func(w http.ResponseWriter, r *http.Request, next http.Handler)

// Server is an http.Handler serving one SMiLer system behind an
// ingestion pipeline.
type Server struct {
	sys  *smiler.System
	pipe *ingest.Pipeline
	mux  *http.ServeMux
	// handler is the mux wrapped in the observability middleware,
	// built once at construction.
	handler http.Handler

	// gate, when set, sees every request before local routing — the
	// cluster ownership middleware hook.
	gate atomic.Pointer[GateFunc]
	// idem replays remembered responses to retried keyed mutations.
	idem *idemCache
	// nodeID tags /healthz and build info in cluster deployments.
	nodeID string

	// log, when non-nil, receives one structured line per request
	// (method, path, status, latency, request ID).
	log *slog.Logger
	// reqPrefix + reqSeq mint process-unique request IDs.
	reqPrefix string
	reqSeq    atomic.Uint64

	// addMu serializes sensor registration so duplicate-id races
	// surface as clean 409s rather than interleaved errors.
	addMu sync.Mutex

	// routes holds the handlers mounted via Handle, behind one level of
	// indirection: the mux maps each pattern to a dispatcher that reads
	// this table, so remounting a pattern (a cluster node restarting on
	// the same Server) swaps the entry instead of panicking the mux on
	// a duplicate registration.
	routesMu sync.RWMutex
	routes   map[string]http.HandlerFunc

	// interval, when positive, enables the timestamped-readings
	// endpoint: raw (time, value) readings are regularized onto a
	// fixed grid of this period before entering the system
	// (timeseries.Regularizer).
	interval time.Duration
	regMu    sync.Mutex
	regs     map[string]*timeseries.Regularizer

	// ready/draining drive GET /readyz: a server replaying its WAL at
	// startup is alive (healthz 200) but not ready (readyz 503), and a
	// server draining on SIGTERM flips back to not-ready so load
	// balancers stop routing to it before the listener closes.
	ready    atomic.Bool
	draining atomic.Bool

	// journal, when set, records sensor registrations and removals
	// durably (the WAL) so they survive a crash between checkpoints.
	journal SensorJournal
}

// SensorJournal persists sensor lifecycle events. A journal failure is
// logged and counted but does not fail the request: availability over
// durability, consistent with the observation journal.
type SensorJournal interface {
	AppendAddSensor(id string, history []float64) error
	AppendRemoveSensor(id string) error
}

// Options configures optional server behaviour.
type Options struct {
	// Interval, when positive, enables POST /sensors/{id}/readings
	// (see NewWithInterval).
	Interval time.Duration
	// Pipeline configures the ingestion pipeline (zero values take
	// ingest defaults: GOMAXPROCS shards, queue 256, Block policy).
	Pipeline ingest.Config
	// Logger, when set, enables structured access logging: one line
	// per request with method, path, status, latency and request ID.
	// Nil disables the log line (request IDs and metrics still flow).
	Logger *slog.Logger
	// StartNotReady makes GET /readyz answer 503 until SetReady is
	// called — the recovery window where the WAL is still replaying.
	StartNotReady bool
	// SensorJournal, when set, receives sensor add/remove events for
	// durable logging.
	SensorJournal SensorJournal
	// NodeID, when set, is reported by GET /healthz and in the
	// smiler_build_info metric — the cluster node's identity.
	NodeID string
}

// New wraps a system behind a default-configured ingestion pipeline.
// The caller retains ownership of sys (and is responsible for its
// Close); call Server.Close to drain the pipeline at shutdown.
func New(sys *smiler.System) (*Server, error) {
	return NewWithOptions(sys, Options{})
}

// NewWithInterval additionally enables POST /sensors/{id}/readings:
// irregular timestamped readings are linearly re-interpolated onto a
// grid with the given sample interval (the paper's fixed-sample-rate
// assumption, Section 3.1), and each finalized grid sample is fed to
// Observe.
func NewWithInterval(sys *smiler.System, interval time.Duration) (*Server, error) {
	return NewWithOptions(sys, Options{Interval: interval})
}

// NewWithOptions builds a server with explicit pipeline and readings
// configuration.
func NewWithOptions(sys *smiler.System, opts Options) (*Server, error) {
	if sys == nil {
		return nil, errors.New("server: nil system")
	}
	if opts.Interval < 0 {
		return nil, fmt.Errorf("server: negative sample interval %v", opts.Interval)
	}
	// Route recovered shard-worker panics into the flight recorder on
	// their way to the embedder's error hook.
	if ring := sys.Events(); ring != nil {
		inner := opts.Pipeline.OnError
		opts.Pipeline.OnError = func(o ingest.Observation, err error) {
			if err != nil && strings.Contains(err.Error(), "recovered panic") {
				ring.Record(obs.Event{
					Type:     "panic_recovered",
					Severity: obs.SevError,
					Sensor:   o.Sensor,
					Detail:   err.Error(),
				})
			}
			if inner != nil {
				inner(o, err)
			}
		}
	}
	pipe, err := ingest.New(sys, opts.Pipeline)
	if err != nil {
		return nil, err
	}
	s := &Server{
		sys:       sys,
		pipe:      pipe,
		mux:       http.NewServeMux(),
		log:       opts.Logger,
		reqPrefix: strconv.FormatInt(time.Now().UnixNano(), 36),
		interval:  opts.Interval,
		regs:      make(map[string]*timeseries.Regularizer),
		journal:   opts.SensorJournal,
		idem:      newIdemCache(),
		nodeID:    opts.NodeID,
		routes:    make(map[string]http.HandlerFunc),
	}
	s.ready.Store(!opts.StartNotReady)
	// Flight-recorder events carry the node identity once it is known.
	if opts.NodeID != "" {
		sys.Events().SetNode(opts.NodeID)
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/trace/", s.handleTrace)
	s.mux.HandleFunc("/debug/events", s.handleEvents)
	s.mux.HandleFunc("/pipeline/stats", s.handlePipelineStats)
	s.mux.HandleFunc("/observations", s.handleObservations)
	s.mux.HandleFunc("/sensors", s.handleSensors)
	s.mux.HandleFunc("/sensors/", s.handleSensor)
	s.handler = s.withObservability(http.HandlerFunc(s.dispatch))
	pipe.RegisterMetrics(sys.Metrics())
	if reg := sys.Metrics(); reg != nil {
		labels := []obs.Label{obs.L("version", Version), obs.L("go", runtime.Version())}
		if s.nodeID != "" {
			labels = append(labels, obs.L("node", s.nodeID))
		}
		reg.Info("smiler_build_info", "Build and node identity (value is always 1).", labels...)
	}
	return s, nil
}

// dispatch routes one request: through the installed gate (cluster
// ownership middleware) when present, then the idempotency layer, then
// the route table.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request) {
	if g := s.gate.Load(); g != nil {
		(*g)(w, r, http.HandlerFunc(s.serveLocal))
		return
	}
	s.serveLocal(w, r)
}

// serveLocal handles the request on this node.
func (s *Server) serveLocal(w http.ResponseWriter, r *http.Request) {
	s.idem.serve(w, r, s.mux)
}

// ServeIdempotent runs next under the idempotency layer — the same
// response-replay cache serveLocal uses. The cluster gate intercepts
// some request paths before local routing (bulk observations) and
// routes them through here so keyed retries still dedupe.
func (s *Server) ServeIdempotent(w http.ResponseWriter, r *http.Request, next http.Handler) {
	s.idem.serve(w, r, next)
}

// SetGate installs (or clears, with nil) the ownership gate. Install
// before the listener starts serving; the gate itself must be safe for
// concurrent use.
func (s *Server) SetGate(g GateFunc) {
	if g == nil {
		s.gate.Store(nil)
		return
	}
	s.gate.Store(&g)
}

// Handle mounts an extra route on the server's mux — the cluster layer
// adds its /cluster/* endpoints here so they flow through the same
// observability middleware as the API. Remounting a pattern replaces
// the previous handler (a cluster node restarting on the same Server
// re-registers its routes).
func (s *Server) Handle(pattern string, h http.HandlerFunc) {
	s.routesMu.Lock()
	_, mounted := s.routes[pattern]
	s.routes[pattern] = h
	s.routesMu.Unlock()
	if mounted {
		return
	}
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		s.routesMu.RLock()
		cur := s.routes[pattern]
		s.routesMu.RUnlock()
		if cur == nil {
			http.NotFound(w, r)
			return
		}
		cur(w, r)
	})
}

// Close drains the ingestion pipeline: every accepted observation is
// applied to the system before Close returns. Call it after the HTTP
// listener has stopped and before checkpointing, so no accepted
// observation is lost at shutdown.
func (s *Server) Close() error { return s.pipe.Close() }

// Pipeline exposes the ingestion pipeline (stats, manual drains).
func (s *Server) Pipeline() *ingest.Pipeline { return s.pipe }

// SetReady flips /readyz to 200 — recovery (checkpoint load + WAL
// replay) is complete and the server can take traffic.
func (s *Server) SetReady() { s.ready.Store(true) }

// SetDraining flips /readyz to 503 ahead of shutdown so load balancers
// drain this instance while in-flight requests finish.
func (s *Server) SetDraining() { s.draining.Store(true) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// --- payloads ---

// AddSensorRequest registers a sensor.
type AddSensorRequest struct {
	ID      string    `json:"id"`
	History []float64 `json:"history"`
}

// ObserveRequest streams one or more observations.
type ObserveRequest struct {
	Value  *float64  `json:"value,omitempty"`
	Values []float64 `json:"values,omitempty"`
}

// ForecastResponse is a forecast with its central interval. Degraded
// marks a fallback answer (the full pipeline failed or missed its
// deadline and the configured baseline answered instead) — still HTTP
// 200, because the client got a usable forecast.
type ForecastResponse struct {
	ID             string  `json:"id"`
	Horizon        int     `json:"horizon"`
	Mean           float64 `json:"mean"`
	Variance       float64 `json:"variance"`
	StdDev         float64 `json:"stddev"`
	Lo             float64 `json:"lo"`
	Hi             float64 `json:"hi"`
	Z              float64 `json:"z"`
	Degraded       bool    `json:"degraded,omitempty"`
	DegradedReason string  `json:"degraded_reason,omitempty"`
	// Quality is the forecast's rung on the quality ladder ("exact",
	// "progressive", "fallback"); empty from systems predating the
	// ladder.
	Quality string `json:"quality,omitempty"`
	// QualityEstimate is the probability the served neighbour sets
	// equal the exact ones (1 for exact, 0 for fallback).
	QualityEstimate float64 `json:"quality_estimate,omitempty"`
}

// MakeForecastResponse assembles the wire shape from a Forecast — the
// cluster layer uses it when a promoted replica answers directly (and
// then overrides the Degraded fields).
func MakeForecastResponse(id string, h int, f smiler.Forecast, z float64) ForecastResponse {
	return forecastResponse(id, h, f, z)
}

// forecastResponse assembles the wire shape from a Forecast.
func forecastResponse(id string, h int, f smiler.Forecast, z float64) ForecastResponse {
	lo, hi := f.Interval(z)
	return ForecastResponse{
		ID: id, Horizon: h, Mean: f.Mean, Variance: f.Variance,
		StdDev: f.StdDev(), Lo: lo, Hi: hi, Z: z,
		Degraded: f.Degraded, DegradedReason: f.DegradedReason,
		Quality: f.Quality, QualityEstimate: f.QualityEstimate,
	}
}

// StatsResponse summarizes the system.
type StatsResponse struct {
	Sensors     int        `json:"sensors"`
	DeviceUsed  int64      `json:"device_used_bytes"`
	DeviceTotal int64      `json:"device_total_bytes"`
	Devices     [][2]int64 `json:"devices"`
}

// EnsembleCell reports one auto-tuning cell.
type EnsembleCell struct {
	K      int     `json:"k"`
	D      int     `json:"d"`
	Weight float64 `json:"weight"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// --- handlers ---

// HealthzResponse is the GET /healthz body: pure liveness plus enough
// identity (build version, Go runtime, cluster node id) for a prober
// or orchestrator to tell what answered. Distinct from /readyz: a
// recovering or draining process is healthy but not ready.
type HealthzResponse struct {
	Status  string `json:"status"`
	Version string `json:"version"`
	Go      string `json:"go"`
	Node    string `json:"node,omitempty"`
	// LastGCPauseMs and EventsHighWater summarize the node's runtime
	// health cheaply (the loader's SLO gate flags GC-degraded nodes
	// from the probe body without a full /metrics scrape). Both are 0
	// with metrics disabled.
	LastGCPauseMs   float64 `json:"last_gc_pause_ms,omitempty"`
	EventsHighWater uint64  `json:"events_high_water,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	writeJSON(w, http.StatusOK, HealthzResponse{
		Status:          "ok",
		Version:         Version,
		Go:              runtime.Version(),
		Node:            s.nodeID,
		LastGCPauseMs:   s.sys.Runtime().Stats().LastGCPauseMs,
		EventsHighWater: s.sys.Events().LastSeq(),
	})
}

// handleReadyz is the readiness probe: distinct from /healthz
// (liveness) — a recovering or draining process is alive but must not
// receive traffic.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case !s.ready.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "recovering"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	used, total := s.sys.DeviceUsage()
	writeJSON(w, http.StatusOK, StatsResponse{
		Sensors:     len(s.sys.Sensors()),
		DeviceUsed:  used,
		DeviceTotal: total,
		Devices:     s.sys.DeviceUsagePer(),
	})
}

func (s *Server) handlePipelineStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	writeJSON(w, http.StatusOK, s.pipe.Stats())
}

// BulkObserveRequest is a multi-sensor batch of observations.
type BulkObserveRequest struct {
	Observations []ingest.Observation `json:"observations"`
}

// handleObservations is the bulk ingest endpoint: one POST carries
// observations for many sensors, each routed to its shard. Per-item
// failures (unknown sensor, full queue under the Error policy) are
// reported in the response instead of failing the batch.
func (s *Server) handleObservations(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	var req BulkObserveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Observations) == 0 {
		writeError(w, http.StatusBadRequest, "no observations")
		return
	}
	writeJSON(w, http.StatusOK, s.pipe.ObserveBulk(req.Observations))
}

func (s *Server) handleSensors(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.sys.Sensors())
	case http.MethodPost:
		var req AddSensorRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if req.ID == "" {
			writeError(w, http.StatusBadRequest, "missing sensor id")
			return
		}
		s.addMu.Lock()
		// Journal before apply, like the observation path, so a crash
		// between the two cannot leave an applied-but-unjournaled event.
		// The duplicate pre-check keeps a rejected re-registration out of
		// the journal entirely (addMu serializes registrations, so the
		// check cannot race another add).
		journaled := false
		if s.journal != nil {
			if s.sys.HasSensor(req.ID) {
				s.addMu.Unlock()
				writeError(w, http.StatusConflict,
					fmt.Sprintf("smiler: sensor %q already registered", req.ID))
				return
			}
			if jerr := s.journal.AppendAddSensor(req.ID, req.History); jerr != nil {
				if s.log != nil {
					s.log.Warn("sensor journal failed", "sensor", req.ID, "err", jerr)
				}
			} else {
				journaled = true
			}
		}
		err := s.sys.AddSensor(req.ID, req.History)
		if err != nil && journaled {
			// The registration was journaled but rejected (bad history,
			// closed system): append a compensating removal so replay
			// cannot resurrect it. Safe because the pre-check above proved
			// no sensor with this id existed before the journaled add.
			if cerr := s.journal.AppendRemoveSensor(req.ID); cerr != nil && s.log != nil {
				s.log.Warn("sensor journal compensation failed", "sensor", req.ID, "err", cerr)
			}
		}
		s.addMu.Unlock()
		if err != nil {
			status := http.StatusBadRequest
			if strings.Contains(err.Error(), "already registered") {
				status = http.StatusConflict
			}
			writeError(w, status, err.Error())
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"id": req.ID})
	default:
		methodNotAllowed(w)
	}
}

// handleSensor routes /sensors/{id}[/verb].
func (s *Server) handleSensor(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/sensors/")
	parts := strings.SplitN(rest, "/", 2)
	id := parts[0]
	if id == "" {
		writeError(w, http.StatusBadRequest, "missing sensor id")
		return
	}
	verb := ""
	if len(parts) == 2 {
		verb = parts[1]
	}
	switch {
	case verb == "" && r.Method == http.MethodDelete:
		s.deleteSensor(w, id)
	case verb == "forecast" && r.Method == http.MethodGet:
		s.forecast(w, r, id)
	case verb == "forecasts" && r.Method == http.MethodGet:
		s.forecastMulti(w, r, id)
	case verb == "observe" && r.Method == http.MethodPost:
		s.observe(w, r, id)
	case verb == "readings" && r.Method == http.MethodPost:
		s.readings(w, r, id)
	case verb == "ensemble" && r.Method == http.MethodGet:
		s.ensemble(w, id)
	default:
		methodNotAllowed(w)
	}
}

func (s *Server) deleteSensor(w http.ResponseWriter, id string) {
	// Journal before apply (see handleSensors). The pre-check keeps
	// removals of unknown sensors out of the journal; if two concurrent
	// deletes both pass it, both are journaled, one apply fails with
	// not-found, and replay skips the second removal as unknown — the
	// recovered state still matches.
	if s.journal != nil {
		if !s.sys.HasSensor(id) {
			writeError(w, http.StatusNotFound, fmt.Sprintf("smiler: unknown sensor %q", id))
			return
		}
		if jerr := s.journal.AppendRemoveSensor(id); jerr != nil && s.log != nil {
			s.log.Warn("sensor journal failed", "sensor", id, "err", jerr)
		}
	}
	if err := s.sys.RemoveSensor(id); err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	s.pipe.Invalidate(id) // drop any cached forecasts for the dead sensor
	s.regMu.Lock()
	delete(s.regs, id)
	s.regMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"id": id})
}

func (s *Server) forecast(w http.ResponseWriter, r *http.Request, id string) {
	h := 1
	if v := r.URL.Query().Get("h"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid horizon %q", v))
			return
		}
		h = parsed
	}
	z := 1.96
	if v := r.URL.Query().Get("z"); v != "" {
		parsed, err := strconv.ParseFloat(v, 64)
		if err != nil || parsed <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid z %q", v))
			return
		}
		z = parsed
	}
	// Single-horizon forecasts go through the coalescing layer: a
	// thundering herd of identical requests costs one kNN+GP run.
	// WithoutCancel keeps the flight's lifetime decoupled from this
	// request (coalesced followers must not die with the leader) while
	// still carrying the trace context into the prediction.
	f, err := s.pipe.ForecastCtx(context.WithoutCancel(r.Context()), id, h)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	s.setSpanSummary(w, r, id)
	writeJSON(w, http.StatusOK, forecastResponse(id, h, f, z))
}

// forecastMulti serves a ladder of horizons from one shared kNN
// search: GET /sensors/{id}/forecasts?hs=1,3,6[&z=1.96].
func (s *Server) forecastMulti(w http.ResponseWriter, r *http.Request, id string) {
	hsParam := r.URL.Query().Get("hs")
	if hsParam == "" {
		writeError(w, http.StatusBadRequest, "missing hs parameter")
		return
	}
	var hs []int
	for _, part := range strings.Split(hsParam, ",") {
		h, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || h <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid horizon %q", part))
			return
		}
		hs = append(hs, h)
	}
	z := 1.96
	if v := r.URL.Query().Get("z"); v != "" {
		parsed, err := strconv.ParseFloat(v, 64)
		if err != nil || parsed <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid z %q", v))
			return
		}
		z = parsed
	}
	// The request's context carries the client disconnect (and any
	// proxy deadline) into the pipeline's phase-boundary checks.
	fs, err := s.sys.PredictHorizonsCtx(r.Context(), id, hs)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	s.setSpanSummary(w, r, id)
	out := make([]ForecastResponse, 0, len(hs))
	for _, h := range hs {
		out = append(out, forecastResponse(id, h, fs[h], z))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) observe(w http.ResponseWriter, r *http.Request, id string) {
	var req ObserveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	var values []float64
	if req.Value != nil {
		values = append(values, *req.Value)
	}
	values = append(values, req.Values...)
	if len(values) == 0 {
		writeError(w, http.StatusBadRequest, "no values to observe")
		return
	}
	// Enqueue into the sharded pipeline: the observations are applied
	// asynchronously, in order, by the sensor's shard worker.
	accepted, dropped := 0, 0
	for i, v := range values {
		ok, err := s.pipe.Observe(id, v)
		switch {
		case ok:
			accepted++
		case err == nil: // DropNewest shed it
			dropped++
		default:
			writeError(w, statusFor(err), fmt.Sprintf("value %d: %s", i, err))
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]int{"observed": accepted, "dropped": dropped})
}

// ReadingsRequest carries raw timestamped readings.
type ReadingsRequest struct {
	Readings []Reading `json:"readings"`
}

// Reading is one raw sensor reading.
type Reading struct {
	At    time.Time `json:"at"`
	Value float64   `json:"value"`
}

// readings regularizes irregular timestamped readings onto the
// configured grid and observes each finalized sample.
func (s *Server) readings(w http.ResponseWriter, r *http.Request, id string) {
	if s.interval <= 0 {
		writeError(w, http.StatusNotImplemented,
			"timestamped readings need a server sample interval (NewWithInterval)")
		return
	}
	var req ReadingsRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Readings) == 0 {
		writeError(w, http.StatusBadRequest, "no readings")
		return
	}
	s.regMu.Lock()
	reg, ok := s.regs[id]
	if !ok {
		var err error
		reg, err = timeseries.NewRegularizer(req.Readings[0].At, s.interval)
		if err != nil {
			s.regMu.Unlock()
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		s.regs[id] = reg
	}
	s.regMu.Unlock()

	observed := 0
	for i, rd := range req.Readings {
		samples, err := reg.Add(rd.At, rd.Value)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("reading %d: %s", i, err))
			return
		}
		for _, v := range samples {
			// Finalized grid samples enter through the pipeline like
			// every other observation (ordering per sensor holds: the
			// regularizer emits them in grid order here).
			ok, err := s.pipe.Observe(id, v)
			if err != nil {
				writeError(w, statusFor(err), err.Error())
				return
			}
			if ok {
				observed++
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]int{
		"observed": observed,
		"pending":  reg.Pending(),
	})
}

func (s *Server) ensemble(w http.ResponseWriter, id string) {
	weights, err := s.sys.EnsembleWeights(id)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	cells := make([]EnsembleCell, 0, len(weights))
	for kd, wgt := range weights {
		cells = append(cells, EnsembleCell{K: kd[0], D: kd[1], Weight: wgt})
	}
	// Deterministic order for clients and tests.
	for i := 1; i < len(cells); i++ {
		for j := i; j > 0 && less(cells[j], cells[j-1]); j-- {
			cells[j], cells[j-1] = cells[j-1], cells[j]
		}
	}
	writeJSON(w, http.StatusOK, cells)
}

func less(a, b EnsembleCell) bool {
	if a.K != b.K {
		return a.K < b.K
	}
	return a.D < b.D
}

// --- helpers ---

func statusFor(err error) int {
	switch {
	case errors.Is(err, ingest.ErrQueueFull), errors.Is(err, ingest.ErrClosed):
		// Transient overload / shutdown: the client should retry.
		return http.StatusServiceUnavailable
	case strings.Contains(err.Error(), "unknown sensor"):
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return false
	}
	return true
}

// sliceWriter appends into a caller-provided buffer (typically a
// pooled memsys slab), so JSON responses are staged without a fresh
// heap buffer per request.
type sliceWriter struct{ b []byte }

func (sw *sliceWriter) Write(p []byte) (int, error) {
	sw.b = append(sw.b, p...)
	return len(p), nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	slab := memsys.GetBytes(4096)
	sw := &sliceWriter{b: slab[:0]}
	if err := json.NewEncoder(sw).Encode(v); err != nil {
		memsys.PutBytes(slab)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(sw.b)
	// Return the original slab whether or not the encoder outgrew it;
	// a grown copy just falls to the GC.
	memsys.PutBytes(slab)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

func methodNotAllowed(w http.ResponseWriter) {
	writeError(w, http.StatusMethodNotAllowed, "method not allowed")
}
