package tsdist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSeries(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	v := 0.0
	for i := range out {
		v += rng.NormFloat64() * 0.5
		out[i] = v
	}
	return out
}

func TestEuclidean(t *testing.T) {
	got, err := Euclidean([]float64{1, 2}, []float64{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 8 {
		t.Fatalf("Euclidean = %v, want 8", got)
	}
	if _, err := Euclidean(nil, nil); err == nil {
		t.Fatal("empty should fail")
	}
	if _, err := Euclidean([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestLCSS(t *testing.T) {
	q := []float64{1, 2, 3, 4}
	// Identical: distance 0.
	d, err := LCSS(q, q, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("LCSS(q,q) = %v", d)
	}
	// Nothing matches: distance 1.
	far := []float64{100, 200, 300, 400}
	d, err = LCSS(q, far, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("LCSS disjoint = %v", d)
	}
	// Half matches within the window.
	half := []float64{1, 2, 300, 400}
	d, err = LCSS(q, half, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0.5 {
		t.Fatalf("LCSS half = %v", d)
	}
	if _, err := LCSS(q, q, -1, 2); err == nil {
		t.Fatal("negative eps should fail")
	}
	if _, err := LCSS(q, q, 0.1, -1); err == nil {
		t.Fatal("negative rho should fail")
	}
}

func TestERP(t *testing.T) {
	q := []float64{1, 2, 3}
	d, err := ERP(q, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("ERP(q,q) = %v", d)
	}
	// Pure pointwise differences when alignment is trivial.
	d, err = ERP([]float64{1, 1}, []float64{2, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Fatalf("ERP = %v, want 2", d)
	}
	if _, err := ERP(nil, nil, 0); err == nil {
		t.Fatal("empty should fail")
	}
}

func TestEDR(t *testing.T) {
	q := []float64{1, 2, 3, 4}
	d, err := EDR(q, q, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("EDR(q,q) = %v", d)
	}
	// One substitution out of four points.
	c := []float64{1, 2, 99, 4}
	d, err = EDR(q, c, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0.25 {
		t.Fatalf("EDR one edit = %v", d)
	}
	if _, err := EDR(q, q, -1); err == nil {
		t.Fatal("negative eps should fail")
	}
}

func TestFuncAdapters(t *testing.T) {
	q := []float64{1, 2, 3}
	c := []float64{1, 2, 4}
	for name, f := range map[string]Func{
		"euclid": EuclideanFunc(),
		"lcss":   LCSSFunc(0.5, 1),
		"erp":    ERPFunc(0),
		"edr":    EDRFunc(0.5),
	} {
		d, err := f(q, c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d < 0 || math.IsNaN(d) {
			t.Fatalf("%s: distance %v", name, d)
		}
		self, err := f(q, q)
		if err != nil || self != 0 {
			t.Fatalf("%s: self distance %v err=%v", name, self, err)
		}
	}
}

// Property: all measures are symmetric and non-negative with zero
// self-distance.
func TestQuickMeasureAxioms(t *testing.T) {
	funcs := map[string]Func{
		"euclid": EuclideanFunc(),
		"lcss":   LCSSFunc(0.3, 3),
		"erp":    ERPFunc(0),
		"edr":    EDRFunc(0.3),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		q := randSeries(rng, n)
		c := randSeries(rng, n)
		for _, fn := range funcs {
			ab, err := fn(q, c)
			if err != nil || ab < 0 || math.IsNaN(ab) {
				return false
			}
			ba, err := fn(c, q)
			if err != nil || math.Abs(ab-ba) > 1e-9*(1+ab) {
				return false
			}
			self, err := fn(q, q)
			if err != nil || self != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: ERP with gap 0 satisfies the triangle inequality (it is a
// metric, unlike DTW — the trade-off the paper accepts for DTW's
// accuracy).
func TestQuickERPTriangle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		a := randSeries(rng, n)
		b := randSeries(rng, n)
		c := randSeries(rng, n)
		ab, err := ERP(a, b, 0)
		if err != nil {
			return false
		}
		bc, err := ERP(b, c, 0)
		if err != nil {
			return false
		}
		ac, err := ERP(a, c, 0)
		if err != nil {
			return false
		}
		return ac <= ab+bc+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Euclidean upper-bounds banded DTW conceptually (it is the
// ρ=0 case) — here we just check a shifted pattern: LCSS/EDR tolerate
// a one-step shift better than Euclidean does.
func TestShiftRobustness(t *testing.T) {
	n := 40
	base := make([]float64, n)
	shifted := make([]float64, n)
	for i := range base {
		base[i] = math.Sin(float64(i) / 3)
		shifted[i] = math.Sin(float64(i-1) / 3)
	}
	eu, err := Euclidean(base, shifted)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := LCSS(base, shifted, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	// LCSS should see the shifted series as nearly identical while
	// Euclidean accumulates real error.
	if lc > 0.2 {
		t.Fatalf("LCSS should absorb the shift, got %v", lc)
	}
	if eu < 0.5 {
		t.Fatalf("Euclidean should penalize the shift, got %v", eu)
	}
}
