package timeseries

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2026, 7, 5, 0, 0, 0, 0, time.UTC)

func TestNewRegularizerValidation(t *testing.T) {
	if _, err := NewRegularizer(t0, 0); err == nil {
		t.Fatal("zero interval should fail")
	}
	if _, err := NewRegularizer(t0, -time.Second); err == nil {
		t.Fatal("negative interval should fail")
	}
}

func TestRegularizerExactGridReadings(t *testing.T) {
	r, err := NewRegularizer(t0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	var all []float64
	for i := 0; i < 5; i++ {
		out, err := r.Add(t0.Add(time.Duration(i)*time.Minute), float64(i))
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, out...)
	}
	// Readings exactly on the grid emit themselves.
	want := []float64{0, 1, 2, 3, 4}
	if len(all) != len(want) {
		t.Fatalf("emitted %v", all)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("sample %d = %v, want %v", i, all[i], want[i])
		}
	}
	if r.Emitted() != 5 {
		t.Fatalf("Emitted = %d", r.Emitted())
	}
}

func TestRegularizerInterpolatesOffGridReadings(t *testing.T) {
	r, err := NewRegularizer(t0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Readings at -: 30s→0, 90s→2: the 60s grid instant is midway.
	if _, err := r.Add(t0.Add(30*time.Second), 0); err != nil {
		t.Fatal(err)
	}
	// First grid instant (0s) is not final until a reading ≥ 0s
	// exists... the 30s reading already is ≥ 0s, so instant 0 uses it.
	out, err := r.Add(t0.Add(90*time.Second), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Instant 0s: nearest right reading 30s → value 0 (no left anchor).
	// Instant 60s: between 30s(0) and 90s(2) → 1.
	if len(out) != 1 || math.Abs(out[0]-1) > 1e-12 {
		t.Fatalf("out = %v", out)
	}
	if r.Emitted() != 2 {
		t.Fatalf("Emitted = %d", r.Emitted())
	}
}

func TestRegularizerStaleAndNaN(t *testing.T) {
	r, err := NewRegularizer(t0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add(t0.Add(2*time.Minute), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add(t0.Add(-time.Hour), 1); !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v, want ErrStale", err)
	}
	if _, err := r.Add(t0.Add(3*time.Minute), math.NaN()); err == nil {
		t.Fatal("NaN should fail")
	}
}

func TestRegularizerGapJump(t *testing.T) {
	r, err := NewRegularizer(t0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add(t0, 10); err != nil {
		t.Fatal(err)
	}
	// Jump 4 intervals: intermediate instants interpolate the ramp.
	out, err := r.Add(t0.Add(4*time.Minute), 18)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{12, 14, 16, 18}
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-9 {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
	if r.Pending() > 1 {
		t.Fatalf("pending = %d readings retained needlessly", r.Pending())
	}
}

// Property: for any in-order reading sequence, the number of emitted
// samples equals the number of grid instants covered by the last
// reading, and all samples lie within the readings' value range.
func TestQuickRegularizerCoverage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, err := NewRegularizer(t0, time.Minute)
		if err != nil {
			return false
		}
		at := t0
		lo, hi := math.Inf(1), math.Inf(-1)
		var emitted int
		for i := 0; i < 30; i++ {
			at = at.Add(time.Duration(1+rng.Intn(150)) * time.Second)
			v := rng.NormFloat64() * 10
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			out, err := r.Add(at, v)
			if err != nil {
				return false
			}
			for _, s := range out {
				if s < lo-1e-9 || s > hi+1e-9 {
					return false
				}
			}
			emitted += len(out)
		}
		wantInstants := int(at.Sub(t0)/time.Minute) + 1
		return emitted == wantInstants && emitted == r.Emitted()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
