// Package obs is the observability substrate of the SMiLer serving
// system: a dependency-free metrics registry (atomic counters, gauges
// and fixed-bucket latency histograms with quantile estimation),
// Prometheus text exposition, and a lightweight per-query prediction
// trace that records one span per pipeline phase (index search,
// lower-bound compute, DTW verification, GP fit per ensemble cell,
// mixing) plus the kNN effectiveness stats the index already tracks.
//
// Everything is safe for concurrent use. Instruments are nil-safe: a
// nil *Counter / *Gauge / *Histogram / *Registry / *Trace accepts the
// full API as a no-op, so instrumented hot paths carry no branches and
// a disabled system pays only a nil check — the "no-op sink" the
// overhead benchmarks compare against.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (name="value" in the exposition).
type Label struct {
	Name  string
	Value string
}

// L builds a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Kind enumerates the metric families the registry serves.
type Kind int

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n (negative n is ignored: counters
// are monotonic).
func (c *Counter) Add(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(uint64(n))
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the value (CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// family is one metric name: a help string, a kind, and every labeled
// child plus lazy collector callbacks registered under the name.
type family struct {
	name string
	help string
	kind Kind

	mu       sync.Mutex
	children map[string]*child // keyed by canonical label signature
	order    []string          // insertion order of signatures
}

// child is one (name, labels) instrument.
type child struct {
	labels []Label

	counter *Counter
	gauge   *Gauge
	hist    *Histogram

	// fn, when set, is a lazy collector: the value is read at scrape
	// time (bridging pre-existing atomic counters costs nothing on the
	// hot path).
	fn func() float64
}

// Registry is a concurrent collection of metric families. The zero
// value is NOT ready; use NewRegistry. A nil *Registry hands out nil
// instruments, making every recording site a no-op.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	names    []string // insertion order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// signature canonicalizes a label set (sorted by name).
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// familyFor returns (creating if needed) the family with the given
// name, panicking on a kind conflict — mixing kinds under one name is
// a programming error that would corrupt the exposition.
func (r *Registry) familyFor(name, help string, kind Kind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, children: make(map[string]*child)}
		r.families[name] = f
		r.names = append(r.names, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	return f
}

// childFor returns (creating via mk) the labeled child of f.
func (f *family) childFor(labels []Label, mk func() *child) *child {
	sig := signature(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[sig]
	if !ok {
		c = mk()
		c.labels = append([]Label(nil), labels...)
		f.children[sig] = c
		f.order = append(f.order, sig)
	}
	return c
}

// Counter returns the counter with the given name and labels, creating
// it on first use. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	f := r.familyFor(name, help, KindCounter)
	c := f.childFor(labels, func() *child { return &child{counter: &Counter{}} })
	return c.counter
}

// Gauge returns the gauge with the given name and labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	f := r.familyFor(name, help, KindGauge)
	c := f.childFor(labels, func() *child { return &child{gauge: &Gauge{}} })
	return c.gauge
}

// Histogram returns the histogram with the given name, labels and
// bucket upper bounds (nil buckets take DefBuckets). Bounds must match
// across children of one family; the first registration wins.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	f := r.familyFor(name, help, KindHistogram)
	c := f.childFor(labels, func() *child { return &child{hist: NewHistogram(buckets)} })
	return c.hist
}

// CounterFunc registers a lazy counter read at scrape time — the
// bridge for subsystems that already maintain their own atomics
// (ingest shard counters, GP fit stats). fn must be monotonic.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	f := r.familyFor(name, help, KindCounter)
	f.childFor(labels, func() *child { return &child{fn: fn} })
}

// GaugeFunc registers a lazy gauge read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	f := r.familyFor(name, help, KindGauge)
	f.childFor(labels, func() *child { return &child{fn: fn} })
}

// Info registers an info-style gauge pinned at 1 whose labels carry
// the interesting values — the Prometheus build_info/node_info idiom
// (e.g. smiler_build_info{version="0.5.0",go="go1.22"} 1). Calling it
// again with the same labels is a no-op.
func (r *Registry) Info(name, help string, labels ...Label) {
	if r == nil {
		return
	}
	r.Gauge(name, help, labels...).Set(1)
}
