package server

import (
	"bytes"
	"net/http"
	"sync"
	"time"
)

// Idempotency headers. A client that wants a mutation (POST/DELETE) to
// be safely retryable attaches a unique IdempotencyKeyHeader; the
// server remembers the first response under that key for a bounded
// window and replays it to duplicates, so a retry after a lost
// response cannot double-apply an observation or registration. The
// cluster forwarder propagates the key, so deduplication holds across
// the node that applies the request, not just the node that received
// it. Replayed responses carry IdempotentReplayHeader: 1.
const (
	IdempotencyKeyHeader   = "X-Smiler-Idempotency-Key"
	IdempotentReplayHeader = "X-Smiler-Idempotent-Replay"
)

const (
	// idemMaxEntries bounds the dedupe window by count (FIFO eviction).
	idemMaxEntries = 4096
	// idemTTL bounds the dedupe window by age: a key older than this is
	// forgotten — retries arrive within seconds, not minutes.
	idemTTL = 2 * time.Minute
	// idemMaxBody bounds a cached response body; larger responses are
	// served but not cached (their requests re-execute on retry).
	idemMaxBody = 64 << 10
)

// idemEntry is one remembered (or in-flight) keyed mutation.
type idemEntry struct {
	done        chan struct{} // closed once the first execution finished
	at          time.Time
	status      int
	contentType string
	body        []byte
	cached      bool // false: execution finished but was not cacheable (5xx)
}

// idemCache is the response-replay table behind the idempotency
// middleware. In-flight duplicates coalesce (the follower waits for
// the leader's response), finished ones replay from the cache.
type idemCache struct {
	mu      sync.Mutex
	entries map[string]*idemEntry
	order   []string // insertion order for FIFO + TTL eviction
}

func newIdemCache() *idemCache {
	return &idemCache{entries: make(map[string]*idemEntry)}
}

// idemRecorder captures the handler's response so it can be both sent
// and cached.
type idemRecorder struct {
	http.ResponseWriter
	status int
	buf    bytes.Buffer
	over   bool // body exceeded idemMaxBody: serve but don't cache
}

func (r *idemRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *idemRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	if !r.over {
		if r.buf.Len()+len(b) <= idemMaxBody {
			r.buf.Write(b)
		} else {
			r.over = true
			r.buf.Reset()
		}
	}
	return r.ResponseWriter.Write(b)
}

// serve runs next under the idempotency contract: mutations carrying a
// key execute at most once per key within the dedupe window;
// duplicates get the remembered response. Requests without a key (and
// all GETs) pass straight through.
func (c *idemCache) serve(w http.ResponseWriter, r *http.Request, next http.Handler) {
	key := r.Header.Get(IdempotencyKeyHeader)
	if key == "" || (r.Method != http.MethodPost && r.Method != http.MethodDelete) {
		next.ServeHTTP(w, r)
		return
	}
	for {
		c.mu.Lock()
		c.evictLocked()
		e, ok := c.entries[key]
		if !ok {
			e = &idemEntry{done: make(chan struct{}), at: time.Now()}
			c.entries[key] = e
			c.order = append(c.order, key)
			c.mu.Unlock()
			c.run(w, r, next, key, e)
			return
		}
		c.mu.Unlock()
		<-e.done
		if !e.cached {
			// The first execution was not cacheable (a 5xx that may not
			// have applied): this retry re-executes. The entry was already
			// removed, so the next loop iteration becomes the leader.
			continue
		}
		if e.contentType != "" {
			w.Header().Set("Content-Type", e.contentType)
		}
		w.Header().Set(IdempotentReplayHeader, "1")
		w.WriteHeader(e.status)
		_, _ = w.Write(e.body)
		return
	}
}

// run executes the leader request and records its response.
func (c *idemCache) run(w http.ResponseWriter, r *http.Request, next http.Handler, key string, e *idemEntry) {
	rec := &idemRecorder{ResponseWriter: w}
	next.ServeHTTP(rec, r)
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	c.mu.Lock()
	// Transient failures (5xx) are not remembered: the mutation did not
	// take effect (overload shed, shutdown), so the retry must
	// re-execute rather than replay the failure forever.
	if rec.status >= 500 || rec.over {
		delete(c.entries, key)
	} else {
		e.status = rec.status
		e.contentType = rec.Header().Get("Content-Type")
		e.body = append([]byte(nil), rec.buf.Bytes()...)
		e.cached = true
	}
	c.mu.Unlock()
	close(e.done)
}

// evictLocked drops expired and over-cap entries from the front of the
// FIFO. In-flight entries (done not yet closed) are never evicted.
func (c *idemCache) evictLocked() {
	now := time.Now()
	for len(c.order) > 0 {
		key := c.order[0]
		e, ok := c.entries[key]
		if ok {
			if len(c.order) <= idemMaxEntries && now.Sub(e.at) < idemTTL {
				return
			}
			select {
			case <-e.done:
			default:
				return // in flight; keep (and keep everything younger)
			}
			delete(c.entries, key)
		}
		c.order = c.order[1:]
	}
}
