#!/usr/bin/env sh
# Loader smoke test: boot a real 3-node smiler-server cluster on
# loopback ports and run smilerloader against it — open-loop Poisson,
# mixed observe/forecast traffic, SLO-gated. Asserts the loader exits 0
# (zero SLO violations), the report is valid JSON with the expected
# schema, and every sensor in the population was driven. Run via
# `make loader-smoke`; this is the CI gate that keeps the load
# subsystem honest end to end.
set -eu

DIR=$(mktemp -d)
BIN="$DIR/smiler-server"
LOADER="$DIR/smilerloader"
REPORT="$DIR/report.json"
P1=19091
P2=19092
P3=19093
PEERS="n1=http://127.0.0.1:$P1,n2=http://127.0.0.1:$P2,n3=http://127.0.0.1:$P3"

go build -o "$BIN" ./cmd/smiler-server
go build -o "$LOADER" ./cmd/smilerloader

"$BIN" -addr "127.0.0.1:$P1" -node-id n1 -cluster-peers "$PEERS" -predictor ar -log-level warn &
PID1=$!
"$BIN" -addr "127.0.0.1:$P2" -node-id n2 -cluster-peers "$PEERS" -predictor ar -log-level warn &
PID2=$!
"$BIN" -addr "127.0.0.1:$P3" -node-id n3 -cluster-peers "$PEERS" -predictor ar -log-level warn &
PID3=$!
cleanup() {
    kill "$PID1" "$PID2" "$PID3" 2>/dev/null || true
    wait "$PID1" "$PID2" "$PID3" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

for port in "$P1" "$P2" "$P3"; do
    i=0
    until curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "loader-smoke: node on :$port did not come up" >&2
            exit 1
        fi
        sleep 0.2
    done
done

# ~20s of mixed load at 100 ops/s across all three nodes. The SLO
# bounds are deliberately loose — this smoke asserts the machinery
# (setup, arrival process, accounting, SLO gate, report), not a perf
# number; the perf numbers live in docs/PERF.md.
if ! "$LOADER" \
    -targets "http://127.0.0.1:$P1,http://127.0.0.1:$P2,http://127.0.0.1:$P3" \
    -sensors 200 -history 128 -seed 42 -prefix smoke \
    -mix 10:1 -horizons 1:3,3:1 \
    -arrival poisson -rate 100 -concurrency 8 \
    -ramp 3s -duration 15s -progress 5s -retries 3 \
    -slo 'observe.p99<=5s,forecast.p99<=10s,error_rate<=0.005' \
    -out "$REPORT"; then
    echo "loader-smoke: smilerloader exited nonzero" >&2
    exit 1
fi

status=0
if ! grep -q '"schema": "smiler-loader/v1"' "$REPORT"; then
    echo "loader-smoke: report missing schema marker" >&2
    status=1
fi
if ! grep -q '"violations": 0' "$REPORT"; then
    echo "loader-smoke: report shows SLO violations" >&2
    status=1
fi
if ! grep -q '"distinct_sensors": 200' "$REPORT"; then
    echo "loader-smoke: loader did not drive the whole population" >&2
    status=1
fi
if ! grep -q '"steady"' "$REPORT"; then
    echo "loader-smoke: report missing steady phase" >&2
    status=1
fi

if [ "$status" -eq 0 ]; then
    echo "loader-smoke: OK"
else
    echo "--- report ---" >&2
    cat "$REPORT" >&2
fi
exit $status
