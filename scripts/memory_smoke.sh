#!/usr/bin/env sh
# Memory smoke test (PR 8): boot a tiered smiler-server whose
# -max-hot-sensors cap is far below the sensor population, drive mixed
# observe/forecast load through smilerloader (forcing eviction and
# fault-in churn the whole run), then kill -9 the node and replay its
# WAL into a fresh UNTIERED server. Asserts:
#   - the loader finishes with zero errors (error_rate<=0 SLO),
#   - the tiered node actually churned (sensor fault/eviction
#     counters > 0, cold population > 0),
#   - every sensor's post-run forecast on the tiered node is
#     byte-identical to the untiered reference node recovered from the
#     same WAL — spill/fault cycles and crash recovery change nothing.
# Run via `make memory-smoke`.
set -eu

DIR=$(mktemp -d)
BIN="$DIR/smiler-server"
LOADER="$DIR/smilerloader"
WAL="$DIR/wal"
PORT_A=19181
PORT_B=19182
A="http://127.0.0.1:$PORT_A"
B="http://127.0.0.1:$PORT_B"
SENSORS=120
CAP=30

go build -o "$BIN" ./cmd/smiler-server
go build -o "$LOADER" ./cmd/smilerloader

"$BIN" -addr "127.0.0.1:$PORT_A" -predictor ar -log-level warn \
    -wal-dir "$WAL" -max-hot-sensors "$CAP" -spill-dir "$DIR/spill" &
PID_A=$!
PID_B=""
cleanup() {
    kill -9 "$PID_A" 2>/dev/null || true
    [ -n "$PID_B" ] && kill "$PID_B" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

wait_up() {
    i=0
    until curl -sf "$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "memory-smoke: node $1 did not come up" >&2
            exit 1
        fi
        sleep 0.2
    done
}
wait_up "$A"

# ~10s of mixed load over a population 4x the hot cap: every fourth op
# lands on a cold sensor and pays a fault-in; the error_rate<=0 SLO
# makes any failed op fail the smoke.
if ! "$LOADER" \
    -targets "$A" \
    -sensors "$SENSORS" -history 128 -seed 7 -prefix smoke \
    -mix 10:1 -horizons 1 \
    -arrival poisson -rate 120 -concurrency 8 \
    -ramp 2s -duration 8s -progress 5s -retries 1 \
    -slo 'error_rate<=0' \
    -out "$DIR/report.json"; then
    echo "memory-smoke: smilerloader reported errors" >&2
    exit 1
fi

# The tier must have churned under that load.
metrics=$(curl -sf "$A/metrics")
metric() {
    printf '%s\n' "$metrics" | awk -v name="$1" '$1 == name { print $2; found = 1 } END { if (!found) print 0 }'
}
faults=$(metric smiler_sensor_faults_total)
evicts=$(metric smiler_sensor_evictions_total)
cold=$(metric smiler_sensors_cold)
hot=$(metric smiler_sensors_hot)
echo "memory-smoke: tier churn: faults=$faults evictions=$evicts hot=$hot cold=$cold"
status=0
awk -v f="$faults" -v e="$evicts" -v c="$cold" -v cap="$CAP" 'BEGIN {
    if (f + 0 <= 0) { print "memory-smoke: no sensor faults recorded" > "/dev/stderr"; exit 1 }
    if (e + 0 <= 0) { print "memory-smoke: no sensor evictions recorded" > "/dev/stderr"; exit 1 }
    if (c + 0 <= 0) { print "memory-smoke: no cold sensors after the run" > "/dev/stderr"; exit 1 }
}' || status=1
awk -v h="$hot" -v cap="$CAP" 'BEGIN {
    if (h + 0 > cap + 1) { printf "memory-smoke: hot population %s exceeds cap %s\n", h, cap > "/dev/stderr"; exit 1 }
}' || status=1
[ "$status" -eq 0 ] || exit "$status"

# Quiesce: wait until the applied-observation counter stops moving, so
# the forecast sweep (and the WAL tail) reflect a settled state.
prev=-1
i=0
while :; do
    curr=$(curl -sf "$A/metrics" | awk '$1 == "smiler_observations_total" { print $2 }')
    [ "$curr" = "$prev" ] && break
    prev=$curr
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "memory-smoke: ingest pipeline never quiesced" >&2
        exit 1
    fi
    sleep 0.3
done

# Forecast sweep on the tiered node (faulting every cold sensor in).
mkdir -p "$DIR/fa" "$DIR/fb"
n=0
while [ "$n" -lt "$SENSORS" ]; do
    id=$(printf 'smoke-%07d' "$n")
    curl -sf "$A/sensors/$id/forecast?h=1" >"$DIR/fa/$id" || {
        echo "memory-smoke: forecast $id failed on tiered node" >&2
        exit 1
    }
    n=$((n + 1))
done

# Crash the tiered node the hard way and recover an untiered reference
# from its WAL.
kill -9 "$PID_A"
wait "$PID_A" 2>/dev/null || true
"$BIN" -addr "127.0.0.1:$PORT_B" -predictor ar -log-level warn -wal-dir "$WAL" &
PID_B=$!
wait_up "$B"

n=0
while [ "$n" -lt "$SENSORS" ]; do
    id=$(printf 'smoke-%07d' "$n")
    curl -sf "$B/sensors/$id/forecast?h=1" >"$DIR/fb/$id" || {
        echo "memory-smoke: forecast $id failed on reference node" >&2
        exit 1
    }
    if ! cmp -s "$DIR/fa/$id" "$DIR/fb/$id"; then
        echo "memory-smoke: forecast for $id diverged between tiered node and untiered WAL-recovered reference:" >&2
        echo "  tiered:    $(cat "$DIR/fa/$id")" >&2
        echo "  reference: $(cat "$DIR/fb/$id")" >&2
        exit 1
    fi
    n=$((n + 1))
done

echo "memory-smoke: OK ($SENSORS forecasts bit-identical across tiering + kill -9 recovery)"
