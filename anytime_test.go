package smiler

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

// countdownCtx is a deterministic deadline: its Err flips to
// DeadlineExceeded after n calls, so tests stage "the deadline fired
// after exactly this much search work" without wall-clock flakiness.
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func newCountdown(n int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.left.Store(n)
	return c
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.DeadlineExceeded
	}
	return nil
}

func (c *countdownCtx) Done() <-chan struct{} { return nil }

// noisySeries is noisySeasonal with the noise turned up: still
// forecastable (the seasonal analogs exist), but the lower bounds are
// loose enough that the filter step keeps many candidates and anytime
// verification actually runs in rounds.
func noisySeries(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 10*(math.Sin(2*math.Pi*float64(i)/48)+
			0.3*math.Sin(2*math.Pi*float64(i)/12)) + rng.NormFloat64()*3
	}
	return out
}

// TestAnytimeABBitIdentical is the headline safety claim of the
// anytime engine at the public API: with no deadline, a system running
// -anytime -learned-lb forecasts bit-identically to a plain one. The
// learned model may reorder verification rounds but never changes what
// a completed search — and hence the predictor — sees.
func TestAnytimeABBitIdentical(t *testing.T) {
	exact, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer exact.Close()
	anyCfg := smallConfig()
	anyCfg.Anytime = true
	anyCfg.LearnedLB = true
	anySys, err := New(anyCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer anySys.Close()

	rng := rand.New(rand.NewSource(11))
	streams := map[string][]float64{
		"a": noisySeries(rng, 460),
		"b": noisySeasonal(rng, 460, 5, 50),
	}
	for id, all := range streams {
		if err := exact.AddSensor(id, all[:400]); err != nil {
			t.Fatal(err)
		}
		if err := anySys.AddSensor(id, all[:400]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 400; i < 430; i++ {
		for id, all := range streams {
			fe, err := exact.Predict(id, 1)
			if err != nil {
				t.Fatal(err)
			}
			fa, err := anySys.Predict(id, 1)
			if err != nil {
				t.Fatal(err)
			}
			if fa.Mean != fe.Mean || fa.Variance != fe.Variance {
				t.Fatalf("step %d sensor %s: anytime %v/%v vs exact %v/%v",
					i, id, fa.Mean, fa.Variance, fe.Mean, fe.Variance)
			}
			if fa.Quality != "exact" || fa.QualityEstimate != 1 {
				t.Fatalf("undeadlined anytime forecast tagged %q/%v, want exact/1",
					fa.Quality, fa.QualityEstimate)
			}
			he, err := exact.PredictHorizons(id, []int{1, 3})
			if err != nil {
				t.Fatal(err)
			}
			ha, err := anySys.PredictHorizons(id, []int{1, 3})
			if err != nil {
				t.Fatal(err)
			}
			for h, fe := range he {
				if ha[h].Mean != fe.Mean || ha[h].Variance != fe.Variance {
					t.Fatalf("step %d sensor %s h=%d: %v vs %v", i, id, h, ha[h], fe)
				}
			}
			if err := exact.Observe(id, all[i]); err != nil {
				t.Fatal(err)
			}
			if err := anySys.Observe(id, all[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestCheckpointLBModelSurvives: the learned lower-bound model rides
// the checkpoint envelope — a restored system resumes with the trained
// model (same observation count, forecasts bit-identical), and a
// checkpoint written before the field existed restores to a fresh
// model instead of failing.
func TestCheckpointLBModelSurvives(t *testing.T) {
	cfg := smallConfig()
	cfg.Anytime = true
	cfg.LearnedLB = true
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rng := rand.New(rand.NewSource(12))
	all := noisySeries(rng, 460)
	if err := sys.AddSensor("a", all[:400]); err != nil {
		t.Fatal(err)
	}
	for i := 400; i < 430; i++ {
		if _, err := sys.Predict("a", 1); err != nil {
			t.Fatal(err)
		}
		if err := sys.Observe("a", all[i]); err != nil {
			t.Fatal(err)
		}
	}
	wantForecast, err := sys.Predict("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Captured after the last Predict: that search trains the model too.
	wantN := sys.sensors["a"].lbModel.N()
	if wantN == 0 {
		t.Fatal("model untrained after 30 verified searches")
	}

	var buf bytes.Buffer
	if err := sys.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got := restored.sensors["a"].lbModel.N(); got != wantN {
		t.Fatalf("restored model has %d observations, want %d", got, wantN)
	}
	gotForecast, err := restored.Predict("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if gotForecast.Mean != wantForecast.Mean || gotForecast.Variance != wantForecast.Variance {
		t.Fatalf("restored forecast %v, want %v", gotForecast, wantForecast)
	}

	// Pre-ladder checkpoint: saved without LearnedLB, loaded with it —
	// gob decodes the absent field as nil and the sensor starts over
	// with a fresh (untrained) model.
	plain, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if err := plain.AddSensor("a", all[:400]); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := plain.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	upgraded, err := Load(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer upgraded.Close()
	if m := upgraded.sensors["a"].lbModel; m == nil || m.N() != 0 {
		t.Fatalf("pre-ladder checkpoint should restore a fresh model, got %v", m)
	}
	if _, err := upgraded.Predict("a", 1); err != nil {
		t.Fatal(err)
	}
}

// TestAnytimeDeadlineLadderMAE measures the engine's value claim: at
// every staged deadline, a progressive answer (the verified-so-far
// neighbor set pushed through the real predictor) forecasts better
// than the AR(1) fallback the system would otherwise serve. Budgets
// are deterministic countdown contexts, so the ladder is reproducible;
// the resulting table is recorded in EXPERIMENTS.md.
func TestAnytimeDeadlineLadderMAE(t *testing.T) {
	cfg := smallConfig()
	cfg.Anytime = true
	cfg.LearnedLB = true
	cfg.Fallback = FallbackAR1
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rng := rand.New(rand.NewSource(13))
	all := noisySeries(rng, 1000)
	if err := sys.AddSensor("s", all[:900]); err != nil {
		t.Fatal(err)
	}

	// Budget 0 aborts before the filter step completes — every answer
	// is an AR(1) fallback. The rest of the ladder lands mid- or
	// post-verification. Budgets are ctx.Err() call counts: the
	// lower-bound kernel consumes one per block (Omega=8 here), each
	// progressive verify round one more.
	budgets := []int64{0, 9, 10, 12, 16, 1 << 30}
	type rung struct {
		absErr   float64
		n        int
		byTag    map[string]int
		estSum   float64
		fracsSum float64
	}
	rungs := make([]rung, len(budgets))
	for i := range rungs {
		rungs[i].byTag = make(map[string]int)
	}
	for i := 900; i < 960; i++ {
		actual := all[i]
		for bi, b := range budgets {
			f, err := sys.PredictCtx(newCountdown(b), "s", 1)
			if err != nil {
				t.Fatalf("budget %d step %d: %v", b, i, err)
			}
			r := &rungs[bi]
			r.absErr += math.Abs(f.Mean - actual)
			r.n++
			tag := f.Quality
			if f.Degraded {
				tag = "fallback"
			}
			r.byTag[tag]++
			r.estSum += f.QualityEstimate
		}
		if err := sys.Observe("s", actual); err != nil {
			t.Fatal(err)
		}
	}

	if rungs[0].byTag["fallback"] != rungs[0].n {
		t.Fatalf("budget 0 must always fall back, got %v", rungs[0].byTag)
	}
	last := len(budgets) - 1
	if rungs[last].byTag["exact"] != rungs[last].n {
		t.Fatalf("unbounded budget must always be exact, got %v", rungs[last].byTag)
	}
	sawProgressive := false
	fallbackMAE := rungs[0].absErr / float64(rungs[0].n)
	prevEst := -1.0
	for bi := 1; bi < len(budgets); bi++ {
		r := rungs[bi]
		mae := r.absErr / float64(r.n)
		meanEst := r.estSum / float64(r.n)
		t.Logf("budget %10d: MAE %.4f (fallback %.4f)  quality %v  mean estimate %.3f",
			budgets[bi], mae, fallbackMAE, r.byTag, meanEst)
		if r.byTag["progressive"] > 0 {
			sawProgressive = true
		}
		if mae >= fallbackMAE {
			t.Errorf("budget %d: progressive MAE %.4f not better than AR(1) fallback %.4f",
				budgets[bi], mae, fallbackMAE)
		}
		// Quality estimates climb (weakly) with budget: more verified
		// work can only raise the reported confidence.
		if meanEst+1e-9 < prevEst {
			t.Errorf("budget %d: mean quality estimate %.4f fell below previous rung %.4f",
				budgets[bi], meanEst, prevEst)
		}
		prevEst = meanEst
	}
	if !sawProgressive {
		t.Fatal("no staged budget produced a progressive answer — ladder is not exercising the anytime path")
	}
}

// TestAnytimeDeadlineOverrunBounded pins satellite semantics at the
// public API: in exact (non-anytime) mode a deadline mid-verification
// surfaces as DeadlineExceeded (here: an AR(1) fallback with reason
// "deadline"), never a partial answer.
func TestExactModeDeadlineNeverPartial(t *testing.T) {
	cfg := smallConfig()
	cfg.Fallback = FallbackAR1
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rng := rand.New(rand.NewSource(14))
	all := noisySeries(rng, 960)
	if err := sys.AddSensor("s", all[:900]); err != nil {
		t.Fatal(err)
	}
	for _, b := range []int64{0, 9, 10, 12, 16} {
		f, err := sys.PredictCtx(newCountdown(b), "s", 1)
		if err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("budget %d: %v", b, err)
			}
			continue
		}
		if !f.Degraded && f.Quality == "progressive" {
			t.Fatalf("budget %d: exact-mode system returned a progressive answer: %+v", b, f)
		}
	}
}
