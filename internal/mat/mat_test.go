package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func randomSPD(rng *rand.Rand, n int) *Dense {
	// A = B·Bᵀ + n·I is SPD for any B.
	b := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	a, _ := Mul(b, b.T())
	_ = AddDiagonal(a, float64(n))
	return a
}

func TestNewDensePanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0×3 matrix")
		}
	}()
	NewDense(0, 3)
}

func TestNewDenseDataPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestAtSetRow(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7)
	if got := m.At(1, 2); got != 7 {
		t.Fatalf("At(1,2) = %v, want 7", got)
	}
	row := m.Row(1)
	if row[2] != 7 {
		t.Fatalf("Row(1)[2] = %v, want 7", row[2])
	}
	row[0] = 5 // views alias the matrix
	if m.At(1, 0) != 5 {
		t.Fatal("Row must be a view, not a copy")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias the original")
	}
}

func TestTranspose(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tt := m.T()
	r, c := tt.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("T dims = %d×%d, want 3×2", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tt.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomSPD(rng, 5)
	eye := NewDense(5, 5)
	for i := 0; i < 5; i++ {
		eye.Set(i, i, 1)
	}
	p, err := Mul(a, eye)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := MaxAbsDiff(a, p); d != 0 {
		t.Fatalf("A·I != A (max diff %g)", d)
	}
}

func TestMulShapeError(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(2, 3)
	if _, err := Mul(a, b); err != ErrShape {
		t.Fatalf("Mul shape error = %v, want ErrShape", err)
	}
}

func TestMulVec(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 1, 1}
	y, err := MulVec(a, x)
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", y)
	}
	if _, err := MulVec(a, []float64{1}); err != ErrShape {
		t.Fatal("expected ErrShape for bad vector length")
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	if !almostEqual(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Fatal("Norm2 wrong")
	}
}

func TestAXPYScale(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Fatalf("AXPY = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 1.5 || y[1] != 2.5 {
		t.Fatalf("Scale = %v", y)
	}
}

func TestCholeskyReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 1; n <= 12; n++ {
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		llt, _ := Mul(ch.L(), ch.L().T())
		d, _ := MaxAbsDiff(a, llt)
		if d > 1e-9*float64(n) {
			t.Fatalf("n=%d: L·Lᵀ differs from A by %g", n, d)
		}
	}
}

func TestCholeskyNotSPD(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // indefinite
	if _, err := NewCholesky(a); err != ErrNotSPD {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
	b := NewDense(2, 3)
	if _, err := NewCholesky(b); err != ErrShape {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestCholeskySolveVec(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSPD(rng, 8)
	xTrue := make([]float64, 8)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b, _ := MulVec(a, xTrue)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := ch.SolveVec(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEqual(x[i], xTrue[i], 1e-8) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestCholeskySolveMatrixAndInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomSPD(rng, 6)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := ch.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := Mul(a, inv)
	eye := NewDense(6, 6)
	for i := 0; i < 6; i++ {
		eye.Set(i, i, 1)
	}
	d, _ := MaxAbsDiff(prod, eye)
	if d > 1e-8 {
		t.Fatalf("A·A⁻¹ differs from I by %g", d)
	}

	// Solve with a matrix RHS agrees with column-by-column solves.
	b := NewDense(6, 2)
	for i := 0; i < 6; i++ {
		b.Set(i, 0, rng.NormFloat64())
		b.Set(i, 1, rng.NormFloat64())
	}
	x, err := ch.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	ax, _ := Mul(a, x)
	d, _ = MaxAbsDiff(ax, b)
	if d > 1e-8 {
		t.Fatalf("A·X differs from B by %g", d)
	}
}

func TestCholeskyLogDet(t *testing.T) {
	// diag(2, 3) has det 6.
	a := NewDenseData(2, 2, []float64{2, 0, 0, 3})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ch.LogDet(), math.Log(6), 1e-12) {
		t.Fatalf("LogDet = %v, want log 6", ch.LogDet())
	}
}

func TestSolveSPDVec(t *testing.T) {
	a := NewDenseData(2, 2, []float64{4, 0, 0, 9})
	x, err := SolveSPDVec(a, []float64{8, 27})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 2, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Fatalf("x = %v", x)
	}
}

func TestAddDiagonalAndSymmetrize(t *testing.T) {
	a := NewDense(2, 2)
	if err := AddDiagonal(a, 1.5); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 1.5 || a.At(1, 1) != 1.5 || a.At(0, 1) != 0 {
		t.Fatal("AddDiagonal wrong")
	}
	b := NewDenseData(2, 2, []float64{1, 2, 4, 1})
	if err := SymmetrizeInPlace(b); err != nil {
		t.Fatal(err)
	}
	if b.At(0, 1) != 3 || b.At(1, 0) != 3 {
		t.Fatal("SymmetrizeInPlace wrong")
	}
	if err := AddDiagonal(NewDense(2, 3), 1); err != ErrShape {
		t.Fatal("expected ErrShape")
	}
	if err := SymmetrizeInPlace(NewDense(2, 3)); err != ErrShape {
		t.Fatal("expected ErrShape")
	}
}

// Property: for random SPD systems, solving then multiplying recovers
// the right-hand side.
func TestQuickCholeskyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveSPDVec(a, b)
		if err != nil {
			return false
		}
		ax, _ := MulVec(a, x)
		for i := range b {
			if !almostEqual(ax[i], b[i], 1e-7*float64(n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: log|A| from Cholesky matches the product of eigenvalue
// surrogates for diagonal matrices.
func TestQuickLogDetDiagonal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := NewDense(n, n)
		want := 0.0
		for i := 0; i < n; i++ {
			v := 0.5 + rng.Float64()*4
			a.Set(i, i, v)
			want += math.Log(v)
		}
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		return almostEqual(ch.LogDet(), want, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCholesky32(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a := randomSPD(rng, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}
