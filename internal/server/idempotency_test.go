package server

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// postObserve sends one keyed observe POST and returns the response.
func postObserve(t *testing.T, ts *httptest.Server, key, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/sensors/a/observe",
		bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set(IdempotencyKeyHeader, key)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestIdempotencyDedupe: a duplicate keyed mutation applies once; the
// duplicate replays the remembered response with the replay marker.
func TestIdempotencyDedupe(t *testing.T) {
	ts, cl, sys := newTestServer(t)

	if err := cl.AddSensor("a", seasonal(rand.New(rand.NewSource(7)), 420)); err != nil {
		t.Fatal(err)
	}
	before, err := sys.HistoryLen("a")
	if err != nil {
		t.Fatal(err)
	}

	first := postObserve(t, ts, "key-1", `{"value": 51.5}`)
	if first.StatusCode != http.StatusAccepted && first.StatusCode != http.StatusOK {
		t.Fatalf("first attempt: HTTP %d", first.StatusCode)
	}
	if first.Header.Get(IdempotentReplayHeader) != "" {
		t.Fatal("first attempt must not be marked as a replay")
	}
	firstBody, _ := io.ReadAll(first.Body)

	dup := postObserve(t, ts, "key-1", `{"value": 51.5}`)
	if dup.StatusCode != first.StatusCode {
		t.Fatalf("replayed status %d, want %d", dup.StatusCode, first.StatusCode)
	}
	if dup.Header.Get(IdempotentReplayHeader) != "1" {
		t.Fatal("duplicate must carry the replay marker")
	}
	dupBody, _ := io.ReadAll(dup.Body)
	if !bytes.Equal(firstBody, dupBody) {
		t.Fatalf("replayed body %q != original %q", dupBody, firstBody)
	}

	if got, _ := sys.HistoryLen("a"); got != before+1 {
		t.Fatalf("history grew by %d, want exactly 1 (dedupe)", got-before)
	}

	// A different key is a different logical request and applies again.
	fresh := postObserve(t, ts, "key-2", `{"value": 51.5}`)
	if fresh.Header.Get(IdempotentReplayHeader) != "" {
		t.Fatal("fresh key must not replay")
	}
	if got, _ := sys.HistoryLen("a"); got != before+2 {
		t.Fatalf("history grew by %d after second key, want 2", got-before)
	}
}

// TestIdempotencyDoesNotCacheServerErrors: a 5xx outcome is not
// remembered — the retry re-executes instead of replaying the failure.
func TestIdempotencyDoesNotCacheServerErrors(t *testing.T) {
	var calls atomic.Int32
	cache := newIdemCache()
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "shedding", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		_, _ = w.Write([]byte(`{"ok":true}`))
	})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cache.serve(w, r, next)
	}))
	defer ts.Close()

	r1 := postObserve(t, ts, "k", `{}`)
	if r1.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("first: HTTP %d, want 503", r1.StatusCode)
	}
	r2 := postObserve(t, ts, "k", `{}`)
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("retry: HTTP %d, want 202 (5xx must not be replayed)", r2.StatusCode)
	}
	if r2.Header.Get(IdempotentReplayHeader) != "" {
		t.Fatal("re-executed retry must not be marked as a replay")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("handler ran %d times, want 2", got)
	}
	// Third attempt replays the cached 202.
	r3 := postObserve(t, ts, "k", `{}`)
	if r3.StatusCode != http.StatusAccepted || r3.Header.Get(IdempotentReplayHeader) != "1" {
		t.Fatalf("third: HTTP %d replay=%q, want cached 202 replay", r3.StatusCode, r3.Header.Get(IdempotentReplayHeader))
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("handler ran %d times after replay, want still 2", got)
	}
}

// TestIdempotencyCoalescesInFlight: duplicates racing the leader wait
// for its response instead of executing concurrently.
func TestIdempotencyCoalescesInFlight(t *testing.T) {
	var entered atomic.Int32
	release := make(chan struct{})
	cache := newIdemCache()
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered.Add(1)
		<-release
		w.WriteHeader(http.StatusAccepted)
		_, _ = w.Write([]byte("done"))
	})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cache.serve(w, r, next)
	}))
	defer ts.Close()

	const dups = 4
	var wg sync.WaitGroup
	statuses := make([]int, dups)
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodPost, ts.URL+"/x", bytes.NewReader([]byte("{}")))
			req.Header.Set(IdempotencyKeyHeader, "shared")
			resp, err := ts.Client().Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	// Let the leader enter, then release it; followers must coalesce.
	deadline := time.Now().Add(5 * time.Second)
	for entered.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never entered the handler")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := entered.Load(); got != 1 {
		t.Fatalf("handler executed %d times for one key, want 1", got)
	}
	for i, s := range statuses {
		if s != http.StatusAccepted {
			t.Fatalf("duplicate %d got HTTP %d, want coalesced 202", i, s)
		}
	}
}
