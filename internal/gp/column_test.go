package gp

import (
	"math"
	"math/rand"
	"testing"
)

// columnFixture builds a deterministic training set of n pairs in dim
// dimensions with a smooth target plus noise.
func columnFixture(t *testing.T, n, dim int, seed int64) ([]float64, [][]float64, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x0 := make([]float64, dim)
	for j := range x0 {
		x0[j] = rng.NormFloat64()
	}
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = make([]float64, dim)
		var s float64
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
			s += x[i][j]
		}
		y[i] = math.Sin(s) + 0.05*rng.NormFloat64()
	}
	return x0, x, y
}

// TestColumnGramBaseBitIdentical checks the tentpole exactness claim:
// the covariance matrix built from the column's precomputed Gram base
// is bit-identical to the one built by recomputing squared distances
// directly, for every prefix k and arbitrary hyperparameters.
func TestColumnGramBaseBitIdentical(t *testing.T) {
	x0, x, y := columnFixture(t, 24, 8, 1)
	col, err := NewColumn(x0, x, y)
	if err != nil {
		t.Fatalf("NewColumn: %v", err)
	}
	for _, hp := range []Hyper{
		{Signal: 1.3, Length: 0.9, Noise: 0.1},
		{Signal: 0.2, Length: 3.7, Noise: 0.01},
	} {
		for _, k := range []int{1, 7, 16, 24} {
			direct := covMatrix(x[:k], hp, 0)
			shared := covMatrixR2(k, col.set(k).r2, hp, 0)
			for i := 0; i < k; i++ {
				for j := 0; j < k; j++ {
					if direct.At(i, j) != shared.At(i, j) {
						t.Fatalf("k=%d hp=%+v: cov[%d][%d] direct %v != shared %v",
							k, hp, i, j, direct.At(i, j), shared.At(i, j))
					}
				}
			}
		}
	}
}

// TestColumnFitMatchesPlainFit checks Column.Fit posterior == plain Fit
// posterior bitwise on every prefix.
func TestColumnFitMatchesPlainFit(t *testing.T) {
	x0, x, y := columnFixture(t, 20, 6, 2)
	col, err := NewColumn(x0, x, y)
	if err != nil {
		t.Fatalf("NewColumn: %v", err)
	}
	hp := Hyper{Signal: 1.1, Length: 1.4, Noise: 0.08}
	for _, k := range []int{3, 10, 20} {
		plain, err := Fit(x[:k], y[:k], hp)
		if err != nil {
			t.Fatalf("Fit(k=%d): %v", k, err)
		}
		viaCol, err := col.Fit(k, hp)
		if err != nil {
			t.Fatalf("Column.Fit(k=%d): %v", k, err)
		}
		m1, v1, err := plain.Predict(x0)
		if err != nil {
			t.Fatalf("plain.Predict: %v", err)
		}
		m2, v2, err := viaCol.Predict(x0)
		if err != nil {
			t.Fatalf("column.Predict: %v", err)
		}
		if m1 != m2 || v1 != v2 {
			t.Fatalf("k=%d: plain (%v, %v) != column (%v, %v)", k, m1, v1, m2, v2)
		}
	}
}

// TestColumnOptimizeMatchesPlain checks that hyperparameter training
// through the column's shared Gram base follows the exact same
// optimization trajectory as the package-level entry points.
func TestColumnOptimizeMatchesPlain(t *testing.T) {
	x0, x, y := columnFixture(t, 18, 5, 3)
	col, err := NewColumn(x0, x, y)
	if err != nil {
		t.Fatalf("NewColumn: %v", err)
	}
	for _, k := range []int{6, 18} {
		initK := HeuristicHyper(x[:k], y[:k])
		plain, err1 := Optimize(x[:k], y[:k], initK, 12)
		viaCol, err2 := col.Optimize(k, initK, 12)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("k=%d: error mismatch %v vs %v", k, err1, err2)
		}
		if err1 == nil && plain.Hyper != viaCol.Hyper {
			t.Fatalf("k=%d LOO: plain %+v != column %+v", k, plain.Hyper, viaCol.Hyper)
		}
		plainML, err1 := OptimizeML(x[:k], y[:k], initK, 12)
		viaColML, err2 := col.OptimizeML(k, initK, 12)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("k=%d ML: error mismatch %v vs %v", k, err1, err2)
		}
		if err1 == nil && plainML.Hyper != viaColML.Hyper {
			t.Fatalf("k=%d ML: plain %+v != column %+v", k, plainML.Hyper, viaColML.Hyper)
		}
	}
}

// TestSharedFactorPrefixMatchesIndependentFit is the prefix-Cholesky
// property test: under a shared Θ, ModelAt(k) must reproduce an
// independent Fit on the leading k pairs to tight tolerance (the only
// differences are rounding in the triangular solves).
func TestSharedFactorPrefixMatchesIndependentFit(t *testing.T) {
	x0, x, y := columnFixture(t, 32, 8, 4)
	col, err := NewColumn(x0, x, y)
	if err != nil {
		t.Fatalf("NewColumn: %v", err)
	}
	hp := Hyper{Signal: 1.0, Length: 1.8, Noise: 0.12}
	sf, err := col.Factor(hp)
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	for _, k := range []int{4, 8, 16, 31, 32} {
		shared, err := sf.ModelAt(k)
		if err != nil {
			t.Fatalf("ModelAt(%d): %v", k, err)
		}
		indep, err := Fit(x[:k], y[:k], hp)
		if err != nil {
			t.Fatalf("Fit(k=%d): %v", k, err)
		}
		m1, v1, err := shared.Predict(x0)
		if err != nil {
			t.Fatalf("shared.Predict(k=%d): %v", k, err)
		}
		m2, v2, err := indep.Predict(x0)
		if err != nil {
			t.Fatalf("indep.Predict(k=%d): %v", k, err)
		}
		if math.Abs(m1-m2) > 1e-9 || math.Abs(v1-v2) > 1e-9 {
			t.Fatalf("k=%d: shared (%v, %v) vs independent (%v, %v) beyond 1e-9",
				k, m1, v1, m2, v2)
		}
	}
}

// TestSharedFactorFullModelIsSame checks that the largest-k cell reuses
// the driver's factorization outright.
func TestSharedFactorFullModelIsSame(t *testing.T) {
	x0, x, y := columnFixture(t, 12, 4, 5)
	col, err := NewColumn(x0, x, y)
	if err != nil {
		t.Fatalf("NewColumn: %v", err)
	}
	sf, err := col.Factor(Hyper{Signal: 1, Length: 1, Noise: 0.1})
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	m, err := sf.ModelAt(col.Len())
	if err != nil {
		t.Fatalf("ModelAt(full): %v", err)
	}
	if m != sf.full {
		t.Fatal("ModelAt(Len) should return the shared full model")
	}
}
