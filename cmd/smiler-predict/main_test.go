package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadCSV(t *testing.T) {
	path := writeTemp(t, "a,b\n1,2\n3,4\n")
	ids, cols, err := readCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("ids = %v", ids)
	}
	if cols[0][0] != 1 || cols[1][1] != 4 {
		t.Fatalf("cols = %v", cols)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, _, err := readCSV(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Fatal("missing file should fail")
	}
	for name, content := range map[string]string{
		"empty":       "",
		"no-rows":     "a,b\n",
		"ragged":      "a,b\n1\n",
		"non-numeric": "a\nx\n",
	} {
		path := writeTemp(t, content)
		if _, _, err := readCSV(path); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", 5, 1, "gp", true); err == nil {
		t.Fatal("missing -in should fail")
	}
	path := writeTemp(t, "a\n1\n2\n")
	if err := run(path, 5, 1, "nope", true); err == nil {
		t.Fatal("unknown predictor should fail")
	}
	if err := run(path, 5, 1, "ar", true); err == nil || !strings.Contains(err.Error(), "rows") {
		t.Fatalf("short file should fail with row-count error, got %v", err)
	}
}

func TestRunEndToEndAR(t *testing.T) {
	// Synthesize a small but sufficient CSV.
	var b strings.Builder
	b.WriteString("s1\n")
	for i := 0; i < 700; i++ {
		if i%2 == 0 {
			b.WriteString("1.0\n")
		} else {
			b.WriteString("2.0\n")
		}
	}
	path := writeTemp(t, b.String())
	if err := run(path, 3, 1, "ar", true); err != nil {
		t.Fatal(err)
	}
}
