package smiler_test

import (
	"fmt"
	"math"

	"smiler"
)

// history synthesizes a deterministic daily pattern for the examples.
func history(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 20 + 5*math.Sin(2*math.Pi*float64(i)/48)
	}
	return out
}

// Example shows the minimal predict/observe loop.
func Example() {
	cfg := smiler.DefaultConfig()
	cfg.Predictor = smiler.PredictorAR // deterministic & fast for the example
	sys, err := smiler.New(cfg)
	if err != nil {
		panic(err)
	}
	defer sys.Close()

	if err := sys.AddSensor("demo", history(500)); err != nil {
		panic(err)
	}
	f, err := sys.Predict("demo", 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("forecast %.1f (horizon %d)\n", f.Mean, f.Horizon)

	if err := sys.Observe("demo", 22.5); err != nil {
		panic(err)
	}
	// Output:
	// forecast 22.6 (horizon 1)
}

// ExampleSystem_PredictHorizons forecasts a ladder of lead times from
// one shared kNN search.
func ExampleSystem_PredictHorizons() {
	cfg := smiler.DefaultConfig()
	cfg.Predictor = smiler.PredictorAR
	sys, err := smiler.New(cfg)
	if err != nil {
		panic(err)
	}
	defer sys.Close()
	if err := sys.AddSensor("demo", history(500)); err != nil {
		panic(err)
	}
	fs, err := sys.PredictHorizons("demo", []int{1, 6, 12})
	if err != nil {
		panic(err)
	}
	for _, h := range []int{1, 6, 12} {
		fmt.Printf("h=%-2d mean %.1f\n", h, fs[h].Mean)
	}
	// Output:
	// h=1  mean 22.6
	// h=6  mean 19.5
	// h=12 mean 16.2
}

// ExampleForecast_Interval derives a central credible interval.
func ExampleForecast_Interval() {
	f := smiler.Forecast{Mean: 10, Variance: 4, Horizon: 1}
	lo, hi := f.Interval(1.96)
	fmt.Printf("%.2f [%.2f, %.2f] σ=%.0f\n", f.Mean, lo, hi, f.StdDev())
	// Output:
	// 10.00 [6.08, 13.92] σ=2
}
