package smiler

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"smiler/internal/anytime"
	"smiler/internal/core"
	"smiler/internal/fault"
	"smiler/internal/gp"
	"smiler/internal/index"
	"smiler/internal/timeseries"
	"smiler/internal/wal"
)

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// checkpointMagic opens the framed checkpoint envelope: magic, then a
// CRC32C of the gob payload, then the payload. The checksum is what
// turns a truncated or bit-rotted checkpoint into a clean load error
// instead of a decode panic or silently partial state.
var checkpointMagic = [8]byte{'S', 'M', 'L', 'R', 'C', 'K', 'P', '1'}

var checkpointCRCTable = crc32.MakeTable(crc32.Castagnoli)

// cellCheckpoint serializes one ensemble cell's auto-tuning state plus
// its GP warm-start hyperparameters (zero for AR cells or untrained
// GPs).
type cellCheckpoint struct {
	State core.CellState
	Hyper gp.Hyper
}

// sensorCheckpoint serializes one sensor.
type sensorCheckpoint struct {
	ID string
	// History is the normalized history the index holds (raw history
	// when normalization is off).
	History []float64
	// Normalized records whether Norm is meaningful.
	Normalized bool
	Norm       timeseries.Stats
	Cells      []cellCheckpoint
	// LBModel is the learned lower-bound model's state (nil without
	// Config.LearnedLB, and in checkpoints written before the field
	// existed — gob decodes the missing field as nil, restoring a fresh
	// untrained model).
	LBModel *anytime.ModelState
}

// checkpoint is the gob payload.
type checkpoint struct {
	Version int
	Sensors []sensorCheckpoint
	// WALCover records, per write-ahead-log shard, the sequence number
	// that shard's next append would have received when this checkpoint
	// was saved: every WAL record with a lower sequence number is
	// already folded into the checkpoint and must be skipped on replay.
	// Saved atomically with the state it covers, it closes the crash
	// window between a checkpoint save and the WAL reset it covers —
	// without it those records would be applied twice. Nil when no WAL
	// was in use (and in checkpoints written before the field existed;
	// gob decodes the missing field as nil).
	WALCover map[int]uint64
}

// SaveTo writes a checkpoint of the system — per-sensor histories,
// normalization statistics, ensemble auto-tuning state and GP
// warm-start hyperparameters — to w. Predictions still awaiting their
// truth (pending auto-tuning updates) are not persisted; after a
// restore, the first few updates are simply skipped.
func (s *System) SaveTo(w io.Writer) error {
	return s.SaveToWithCover(w, nil)
}

// SaveToWithCover writes a checkpoint like SaveTo and embeds cover —
// the per-shard WAL sequence numbers the checkpoint reaches (see
// wal.Manager.NextSeqs). Replay skips records below the cover, so a
// crash between the checkpoint save and the WAL reset it covers can
// never double-apply observations.
func (s *System) SaveToWithCover(w io.Writer, cover map[int]uint64) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return errors.New("smiler: system closed")
	}
	cp := checkpoint{Version: checkpointVersion, WALCover: cover}
	for _, id := range s.sensorsLocked() {
		cp.Sensors = append(cp.Sensors, snapshotSensor(id, s.sensors[id]))
	}
	// Cold sensors are folded in from their spill envelopes: a spilled
	// sensor is a quiesced snapshot already, and s.mu (held read-side)
	// blocks evictions and fault-ins, so the cold set and its files are
	// stable for the duration of the save. The merged list is re-sorted
	// so the payload is byte-identical to an untiered node's.
	for _, id := range s.tier.coldIDs() {
		sc, err := s.readSpill(id)
		if err != nil {
			return err
		}
		cp.Sensors = append(cp.Sensors, sc)
	}
	sort.Slice(cp.Sensors, func(i, j int) bool { return cp.Sensors[i].ID < cp.Sensors[j].ID })
	return writeCheckpoint(w, cp)
}

// readSpill loads one cold sensor's checkpoint entry from its spill
// envelope. Callers hold s.mu (read side suffices).
func (s *System) readSpill(id string) (sensorCheckpoint, error) {
	f, err := os.Open(s.tier.spillPath(id))
	if err != nil {
		return sensorCheckpoint{}, fmt.Errorf("smiler: reading spill for %q: %w", id, err)
	}
	defer f.Close()
	cp, err := decodeCheckpoint(f)
	if err != nil {
		return sensorCheckpoint{}, fmt.Errorf("smiler: reading spill for %q: %w", id, err)
	}
	for _, sc := range cp.Sensors {
		if sc.ID == id {
			return sc, nil
		}
	}
	return sensorCheckpoint{}, fmt.Errorf("smiler: spill for %q does not contain it", id)
}

// SaveSensorTo writes a checkpoint envelope — same format as SaveTo —
// containing exactly one sensor. This is the unit the cluster layer
// streams over HTTP when a sensor migrates between nodes or a stale
// replica resyncs: restoring it via RestoreSensorsFrom is bit-exact,
// like any checkpoint restore.
func (s *System) SaveSensorTo(w io.Writer, id string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return errors.New("smiler: system closed")
	}
	st, ok := s.sensors[id]
	if !ok {
		if s.tier.isCold(id) {
			// A spill file IS a single-sensor checkpoint envelope — the
			// exact bytes SaveSensorTo would produce — so a cold sensor
			// streams to the migration/resync path without faulting in.
			sc, err := s.readSpill(id)
			if err != nil {
				return err
			}
			return writeCheckpoint(w, checkpoint{
				Version: checkpointVersion,
				Sensors: []sensorCheckpoint{sc},
			})
		}
		return fmt.Errorf("smiler: unknown sensor %q", id)
	}
	return writeCheckpoint(w, checkpoint{
		Version: checkpointVersion,
		Sensors: []sensorCheckpoint{snapshotSensor(id, st)},
	})
}

// RestoreSensorsFrom reads a checkpoint envelope and merges every
// sensor it holds into the live system, replacing any existing sensor
// with the same id (a migration target replaces its async-replicated
// copy with the owner's authoritative snapshot). It returns the ids
// restored.
func (s *System) RestoreSensorsFrom(r io.Reader) ([]string, error) {
	cp, err := decodeCheckpoint(r)
	if err != nil {
		return nil, err
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("smiler: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	ids := make([]string, 0, len(cp.Sensors))
	for _, sc := range cp.Sensors {
		if s.HasSensor(sc.ID) {
			if err := s.RemoveSensor(sc.ID); err != nil {
				return ids, fmt.Errorf("smiler: replacing sensor %q: %w", sc.ID, err)
			}
		}
		if err := s.restoreSensor(sc); err != nil {
			return ids, fmt.Errorf("smiler: restoring sensor %q: %w", sc.ID, err)
		}
		ids = append(ids, sc.ID)
	}
	return ids, nil
}

// snapshotSensor captures one sensor's checkpoint state (history,
// normalizer statistics, ensemble auto-tuning state, GP warm-start
// hyperparameters). Callers hold s.mu (read side is enough; the
// per-sensor lock serializes against concurrent predictions).
func snapshotSensor(id string, st *sensorState) sensorCheckpoint {
	st.mu.Lock()
	defer st.mu.Unlock()
	return snapshotSensorLocked(id, st)
}

// snapshotSensorLocked is snapshotSensor for callers that already hold
// st.mu (the tier's eviction path snapshots under the lock it must
// keep until the state is marked gone).
func snapshotSensorLocked(id string, st *sensorState) sensorCheckpoint {
	sc := sensorCheckpoint{
		ID:      id,
		History: st.ix.History(),
	}
	if st.norm != nil {
		sc.Normalized = true
		sc.Norm = st.norm.Stats()
	}
	states := st.pipe.Ensemble().ExportState()
	cells := st.pipe.Ensemble().Cells()
	for i, state := range states {
		cc := cellCheckpoint{State: state}
		if gpp, ok := cells[i].Pred.(*core.GPPredictor); ok {
			cc.Hyper = gpp.Hyper()
		}
		sc.Cells = append(sc.Cells, cc)
	}
	if st.lbModel != nil {
		ms := st.lbModel.State()
		sc.LBModel = &ms
	}
	return sc
}

// writeCheckpoint frames the gob payload: magic, CRC32C, payload.
func writeCheckpoint(w io.Writer, cp checkpoint) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(cp); err != nil {
		return fmt.Errorf("smiler: encoding checkpoint: %w", err)
	}
	if _, err := w.Write(checkpointMagic[:]); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload.Bytes(), checkpointCRCTable))
	if _, err := w.Write(crc[:]); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// SaveFile writes a checkpoint crash-atomically: the bytes land in a
// temp file that is fsynced and renamed over path, so a crash mid-save
// leaves either the previous checkpoint or the new one, never a torn
// mix.
func (s *System) SaveFile(path string) error {
	return s.SaveFileWithCover(path, nil)
}

// SaveFileWithCover writes a checkpoint crash-atomically like SaveFile
// with an embedded WAL cover (see SaveToWithCover).
func (s *System) SaveFileWithCover(path string, cover map[int]uint64) error {
	if err := fault.Check(fault.PointCheckpointWrite); err != nil {
		return err
	}
	return wal.WriteFileAtomic(path, func(w io.Writer) error {
		return s.SaveToWithCover(w, cover)
	})
}

// LoadFile restores a System from a checkpoint file written by
// SaveFile (see Load).
func LoadFile(path string, cfg Config) (*System, error) {
	sys, _, err := LoadFileWithCover(path, cfg)
	return sys, err
}

// LoadFileWithCover restores a System from a checkpoint file and
// returns the WAL cover embedded at save time (nil for checkpoints
// saved without a WAL). Recovery passes the cover to WAL replay so
// records the checkpoint already contains are skipped.
func LoadFileWithCover(path string, cfg Config) (*System, map[int]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return loadWithCover(f, cfg)
}

// sensorsLocked returns sorted ids; callers hold s.mu.
func (s *System) sensorsLocked() []string {
	out := make([]string, 0, len(s.sensors))
	for id := range s.sensors {
		out = append(out, id)
	}
	sortStrings(out)
	return out
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Load reconstructs a System from a checkpoint written by SaveTo,
// using cfg for everything structural (device shape, ensemble
// dimensions, predictor kind). The checkpoint must have been produced
// by a system with a compatible configuration: sensor histories are
// re-indexed from scratch, ensemble weights and GP hyperparameters are
// restored by (k, d) match.
func Load(r io.Reader, cfg Config) (*System, error) {
	sys, _, err := loadWithCover(r, cfg)
	return sys, err
}

func loadWithCover(r io.Reader, cfg Config) (*System, map[int]uint64, error) {
	cp, err := decodeCheckpoint(r)
	if err != nil {
		return nil, nil, err
	}
	if cp.Version != checkpointVersion {
		return nil, nil, fmt.Errorf("smiler: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	sys, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	for _, sc := range cp.Sensors {
		if err := sys.restoreSensor(sc); err != nil {
			sys.Close()
			return nil, nil, fmt.Errorf("smiler: restoring sensor %q: %w", sc.ID, err)
		}
	}
	return sys, cp.WALCover, nil
}

// decodeCheckpoint reads the framed envelope: magic, CRC32C, gob
// payload. Truncated or corrupt bytes — including gob decoder panics
// on hostile input — come back as descriptive errors, never partial
// state: the payload is checksummed before a single byte is decoded.
func decodeCheckpoint(r io.Reader) (cp checkpoint, err error) {
	var magic [8]byte
	if _, rerr := io.ReadFull(r, magic[:]); rerr != nil {
		return cp, fmt.Errorf("smiler: checkpoint truncated reading header: %w", rerr)
	}
	if magic != checkpointMagic {
		return cp, fmt.Errorf("smiler: not a checkpoint (bad magic %q)", magic[:])
	}
	var crcBuf [4]byte
	if _, rerr := io.ReadFull(r, crcBuf[:]); rerr != nil {
		return cp, fmt.Errorf("smiler: checkpoint truncated reading checksum: %w", rerr)
	}
	payload, rerr := io.ReadAll(r)
	if rerr != nil {
		return cp, fmt.Errorf("smiler: reading checkpoint payload: %w", rerr)
	}
	want := binary.LittleEndian.Uint32(crcBuf[:])
	if got := crc32.Checksum(payload, checkpointCRCTable); got != want {
		return cp, fmt.Errorf("smiler: checkpoint corrupt: CRC %08x, want %08x (truncated write or bit rot)", got, want)
	}
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("smiler: decoding checkpoint: %v", rec)
		}
	}()
	if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&cp); derr != nil {
		return cp, fmt.Errorf("smiler: decoding checkpoint: %w", derr)
	}
	return cp, nil
}

// restoreSensor re-adds one sensor from its checkpoint, then enforces
// the hot-sensor cap (a restore beyond MaxHotSensors spills the least
// recently used sensor).
func (s *System) restoreSensor(sc sensorCheckpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.restoreSensorLocked(sc); err != nil {
		return err
	}
	s.tier.markHot(sc.ID)
	return s.enforceCapLocked(sc.ID)
}

// restoreSensorLocked re-adds one sensor from its checkpoint. The
// history in the checkpoint is already normalized, so it bypasses
// AddSensor's normalization and reinstates the frozen statistics
// directly. Callers hold s.mu write-locked and do their own tier
// bookkeeping.
func (s *System) restoreSensorLocked(sc sensorCheckpoint) error {
	if sc.Normalized != s.cfg.Normalize {
		return fmt.Errorf("normalization mismatch: checkpoint %v, config %v",
			sc.Normalized, s.cfg.Normalize)
	}
	if s.cfg.Normalize {
		// Temporarily disable normalization for the raw re-index, then
		// re-attach the frozen normalizer.
		raw := s.cfg.Normalize
		s.cfg.Normalize = false
		err := s.addSensorLocked(sc.ID, sc.History)
		s.cfg.Normalize = raw
		if err != nil {
			return err
		}
		// Reinstate the frozen statistics bit-exactly; refitting on
		// reconstructed points would only approximate them and recovered
		// values would drift by an ulp from the never-crashed system.
		s.sensors[sc.ID].norm = timeseries.NewNormalizerFromStats(sc.Norm)
	} else {
		if err := s.addSensorLocked(sc.ID, sc.History); err != nil {
			return err
		}
	}
	st := s.sensors[sc.ID]
	st.mu.Lock()
	defer st.mu.Unlock()
	states := make([]core.CellState, 0, len(sc.Cells))
	hyperByKD := make(map[[2]int]gp.Hyper, len(sc.Cells))
	for _, cc := range sc.Cells {
		states = append(states, cc.State)
		hyperByKD[[2]int{cc.State.K, cc.State.D}] = cc.Hyper
	}
	if err := st.pipe.Ensemble().ImportState(states); err != nil {
		return err
	}
	for _, c := range st.pipe.Ensemble().Cells() {
		if gpp, ok := c.Pred.(*core.GPPredictor); ok {
			gpp.SetHyper(hyperByKD[[2]int{c.K, c.D}])
		}
	}
	if sc.LBModel != nil && st.lbModel != nil {
		// Reinstate the trained learned-LB model (the add path installed
		// a fresh one). Config still governs: a checkpointed model is
		// dropped when LearnedLB is off.
		st.lbModel = anytime.NewModelFromState(*sc.LBModel)
		st.ix.SetAnytime(index.Anytime{Enabled: s.cfg.Anytime, Model: st.lbModel})
	}
	return nil
}
