// Package smiler is a semi-lazy time series prediction system for
// sensors — a from-scratch reproduction of "SMiLer: A Semi-Lazy Time
// Series Prediction System for Sensors" (SIGMOD 2015).
//
// Instead of eagerly training one global model per sensor, SMiLer
// answers each prediction request by (1) retrieving the k nearest
// historical segments of the sensor's own recent window under banded
// DTW — served by a two-level inverted-like index on a (simulated)
// GPU — and (2) fitting a small query-dependent Gaussian Process on
// just those neighbours, yielding a closed-form predictive mean and
// variance. An ensemble over (k, d) configurations self-tunes by
// reweighting predictors with their predictive likelihood and putting
// persistently weak ones to sleep.
//
// # Quick start
//
//	sys, _ := smiler.New(smiler.DefaultConfig())
//	defer sys.Close()
//	_ = sys.AddSensor("sensor-1", history)      // ≥ a few hundred points
//	f, _ := sys.Predict("sensor-1", 1)          // 1-step-ahead forecast
//	fmt.Println(f.Mean, f.StdDev())
//	_ = sys.Observe("sensor-1", nextValue)      // stream & self-tune
//
// The packages under internal/ implement the substrates: the DTW
// engine and lower bounds, the SMiLer index, the GPU simulator, the
// exact GP with LOO training, and the paper's ten competitor
// baselines.
package smiler

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smiler/internal/anytime"
	"smiler/internal/baselines"
	"smiler/internal/core"
	"smiler/internal/gpusim"
	"smiler/internal/index"
	"smiler/internal/memsys"
	"smiler/internal/obs"
	"smiler/internal/timeseries"
)

// PredictorKind selects the instantiation of the abstract semi-lazy
// predictor.
type PredictorKind int

const (
	// PredictorGP is the Gaussian Process predictor (SMiLer-GP) — the
	// paper's headline configuration.
	PredictorGP PredictorKind = iota
	// PredictorAR is the aggregation-regression predictor (SMiLer-AR):
	// cheaper, nearly as accurate on seasonal data, weaker uncertainty.
	PredictorAR
)

func (k PredictorKind) String() string {
	switch k {
	case PredictorGP:
		return "GP"
	case PredictorAR:
		return "AR"
	default:
		return fmt.Sprintf("PredictorKind(%d)", int(k))
	}
}

// FallbackKind selects the graceful-degradation predictor used when
// the full semi-lazy pipeline fails or misses its deadline.
type FallbackKind int

const (
	// FallbackNone disables degradation: pipeline errors surface to the
	// caller unchanged.
	FallbackNone FallbackKind = iota
	// FallbackPersistence answers with the last observed value and a
	// random-walk variance — the cheapest defensible forecast.
	FallbackPersistence
	// FallbackAR1 answers with a lag-1 autoregression fitted on the
	// recent history window.
	FallbackAR1
)

func (k FallbackKind) String() string {
	switch k {
	case FallbackNone:
		return "none"
	case FallbackPersistence:
		return "persistence"
	case FallbackAR1:
		return "ar1"
	default:
		return fmt.Sprintf("FallbackKind(%d)", int(k))
	}
}

// ParseFallback maps a flag value onto a FallbackKind.
func ParseFallback(s string) (FallbackKind, error) {
	switch strings.ToLower(s) {
	case "", "none", "off":
		return FallbackNone, nil
	case "persistence", "naive":
		return FallbackPersistence, nil
	case "ar1", "ar":
		return FallbackAR1, nil
	}
	return FallbackNone, fmt.Errorf("smiler: unknown fallback %q (none|persistence|ar1)", s)
}

// Config configures a System. DefaultConfig returns the paper's
// defaults (Table 2).
type Config struct {
	// Device describes the simulated GPU hosting the per-sensor
	// indexes.
	Device gpusim.Config

	// EKV and ELV are the ensemble's kNN and segment-length vectors.
	EKV []int
	ELV []int

	// Rho is the Sakoe-Chiba warping width; Omega the index window
	// length.
	Rho   int
	Omega int

	// Predictor selects GP or AR cells.
	Predictor PredictorKind

	// Normalize z-normalizes each sensor on its initial history and
	// maps forecasts back to raw units (the paper normalizes every
	// sensor). Disable only if inputs are pre-normalized.
	Normalize bool

	// MinSeparation optionally keeps retrieved neighbours this many
	// steps apart (0 = paper behaviour).
	MinSeparation int

	// Ablation switches (Fig. 11): SMiLerNE disables the ensemble
	// (single FixedK×FixedD predictor), SMiLerNS disables the
	// self-adaptive weights.
	DisableEnsemble   bool
	DisableAdaptation bool
	DisableSleep      bool
	// FixedK and FixedD configure the single predictor when the
	// ensemble is disabled (paper uses k=32, d=64).
	FixedK int
	FixedD int

	// Devices is the number of simulated GPUs; sensors are placed on
	// the device with the most free memory (the paper's first scale-out
	// option, Section 6.4.1). 0 or 1 means a single device.
	Devices int

	// MaxHistory caps the history indexed per sensor at AddSensor time:
	// only the most recent MaxHistory points are kept — the paper's
	// second scale-out option (reduce the per-sensor footprint M to fit
	// more sensors, trading prediction quality; Section 6.4.1). 0 means
	// keep everything. Streamed observations still grow the history.
	MaxHistory int

	// DisableMetrics turns the observability layer off: no metrics
	// registry, no prediction traces, no flight recorder, no runtime
	// telemetry, and every instrumented hot path degrades to nil-check
	// no-ops. Metrics are on by default; this exists for the
	// instrumentation-overhead benchmark and for embedders that scrape
	// nothing.
	DisableMetrics bool

	// RuntimeMetricsInterval is the background sampling period of the
	// runtime/GC telemetry (GC pauses, heap live/goal, mark-assist CPU,
	// goroutines, scheduling latency). 0 takes the default (10s);
	// negative disables the background loop — telemetry then refreshes
	// only at scrape time. Ignored with DisableMetrics.
	RuntimeMetricsInterval time.Duration

	// EventRingSize caps the flight recorder: the bounded ring of
	// structured operational events served at /debug/events. 0 takes
	// the default (512). Ignored with DisableMetrics.
	EventRingSize int

	// PredictWorkers bounds the worker pool evaluating ensemble cells
	// across item-query columns during the Prediction Step. 0 (default)
	// uses GOMAXPROCS workers; 1 forces the sequential path. Results
	// are bit-identical regardless of the setting.
	PredictWorkers int

	// SharedHyper fits the GP hyperparameters once per item-query
	// column (at the column's largest k) and reuses the shared Θ — and
	// a prefix of the resulting Cholesky factor — for every smaller-k
	// cell of that column. Cheaper, but cells no longer train their own
	// Θ, so posteriors differ slightly from the default per-cell
	// training (see docs/PERF.md). Off by default.
	SharedHyper bool

	// DisableEarlyAbandon turns off the τ-cutoff early-abandoning DTW
	// in the index verification step (an exactness-preserving
	// optimization, on by default) for ablations and debugging.
	DisableEarlyAbandon bool

	// MaxHotSensors caps how many sensors keep a live pipeline and
	// device-resident index at once. Beyond the cap the least recently
	// used sensor is spilled to a single-sensor checkpoint envelope on
	// disk ("cold") and faulted back in transparently on its next
	// observe, predict or history read. 0 (default) means unlimited:
	// every registered sensor stays hot.
	MaxHotSensors int

	// SpillDir is where cold sensors spill when MaxHotSensors is set.
	// Empty means a fresh temp directory (removed by Close). Spill
	// files are a runtime cache, not a durability layer: the directory
	// is wiped at New, and crash durability still comes from
	// checkpoints (which embed cold sensors) plus WAL replay.
	SpillDir string

	// DisablePooling switches the memsys slab allocator off for the
	// whole process (pooling is an allocator property, like GOGC), so
	// every pooled Get degrades to a plain make. Exists for the
	// pooled-vs-unpooled determinism harness and A/B benchmarks.
	DisablePooling bool

	// PredictDeadline bounds every prediction that arrives without its
	// own context deadline: when it elapses, the pipeline stops at the
	// next phase boundary and — with Fallback set — the caller gets a
	// degraded answer instead of an error. 0 means no implicit
	// deadline.
	PredictDeadline time.Duration

	// Fallback selects the graceful-degradation predictor. With
	// FallbackNone (default), pipeline failures surface as errors; with
	// persistence or AR(1), they come back as answers tagged
	// Forecast.Degraded with the failure reason.
	Fallback FallbackKind

	// Anytime turns the prediction deadline into a quality budget: the
	// per-sensor index verifies kNN candidates in cost-ordered
	// progressive rounds, and a deadline expiring mid-search returns the
	// always-valid best-so-far neighbour sets — the prediction completes
	// on the retrieved subset and is tagged Forecast.Quality
	// "progressive" with a quality estimate — instead of failing over to
	// the crude Fallback baseline. Without a deadline, anytime
	// predictions are bit-identical to exact ones. The quality ladder is
	// exact → progressive → fallback: the fallback still catches
	// deadlines that fire before any best-so-far set exists (during the
	// lower-bound pass) and non-deadline failures.
	Anytime bool

	// LearnedLB enables the learned lower-bound layer: a per-sensor
	// piecewise-linear model over the index's envelope lower bounds,
	// trained incrementally from every verified (lower bound, DTW
	// distance) pair, that predicts each candidate's true distance and
	// orders the progressive verification rounds by it — most promising
	// candidates first, so the best-so-far set converges sooner under a
	// deadline. The model only reorders verification; it never changes
	// which candidates are verified or with what cutoff, so results stay
	// bit-identical (this is the exactness ablation knob: flip it and
	// compare). The model state is serialized through the checkpoint
	// envelope and survives WAL replay, tiering spill, migration and
	// replication. Only meaningful together with Anytime.
	LearnedLB bool
}

// DefaultConfig returns the paper's default parameters: ρ=8, ω=16,
// ELV={32,64,96}, EKV={8,16,32}, GP predictors, z-normalization on a
// GTX-TITAN-like simulated device.
func DefaultConfig() Config {
	return Config{
		Device:    gpusim.DefaultConfig(),
		EKV:       []int{8, 16, 32},
		ELV:       []int{32, 64, 96},
		Rho:       8,
		Omega:     16,
		Predictor: PredictorGP,
		Normalize: true,
		FixedK:    32,
		FixedD:    64,
	}
}

// Forecast is a probabilistic prediction in the sensor's raw units.
type Forecast struct {
	// Mean is the predicted value.
	Mean float64
	// Variance is the predictive variance.
	Variance float64
	// Horizon is the look-ahead h the forecast was made for.
	Horizon int
	// Degraded marks a fallback answer: the full semi-lazy pipeline
	// failed or missed its deadline and the forecast came from the
	// configured cheap baseline instead. Degraded answers are still
	// calibrated (mean + variance) but carry none of the kNN/GP
	// machinery's accuracy.
	Degraded bool
	// DegradedReason classifies why ("deadline", "panic", "error");
	// empty when Degraded is false.
	DegradedReason string
	// Quality is the forecast's rung on the quality ladder: "exact"
	// (the full semi-lazy pipeline ran on the true kNN sets),
	// "progressive" (anytime mode: the deadline stopped the kNN search
	// early and the pipeline ran on the best-so-far sets), or
	// "fallback" (the answer came from the degradation baseline —
	// Degraded is also set).
	Quality string
	// QualityEstimate is the ProS-style probability that the retrieved
	// neighbour sets equal the exact ones: 1 for exact forecasts, in
	// (0, 1] for progressive ones, 0 for fallbacks.
	QualityEstimate float64
}

// StdDev returns the predictive standard deviation.
func (f Forecast) StdDev() float64 { return math.Sqrt(f.Variance) }

// Interval returns the central interval mean ± z·stddev (z=1.96 for a
// 95% Gaussian interval).
func (f Forecast) Interval(z float64) (lo, hi float64) {
	d := z * f.StdDev()
	return f.Mean - d, f.Mean + d
}

// System hosts one semi-lazy prediction pipeline per sensor on a
// shared simulated GPU. All exported methods are safe for concurrent
// use; operations on distinct sensors run in parallel.
type System struct {
	cfg  Config
	devs []*gpusim.Device
	obs  *systemObs

	mu      sync.RWMutex
	sensors map[string]*sensorState
	closed  bool

	// tier is the hot/cold sensor tiering state (nil when
	// MaxHotSensors is 0: every sensor stays hot).
	tier *tierState
}

type sensorState struct {
	mu   sync.Mutex
	norm *timeseries.Normalizer
	pipe *core.Pipeline
	ix   *index.Index
	dev  *gpusim.Device
	// lbModel is the sensor's learned lower-bound model (nil unless
	// Config.LearnedLB); it rides the checkpoint envelope.
	lbModel *anytime.Model
	// gone marks a state spilled cold by the tier while a caller held a
	// stale pointer: set under mu, it tells the caller to retry through
	// the fault-in path instead of using the closed index.
	gone bool
}

// New builds a System.
func New(cfg Config) (*System, error) {
	n := cfg.Devices
	if n <= 0 {
		n = 1
	}
	devs := make([]*gpusim.Device, n)
	for i := range devs {
		dev, err := gpusim.NewDevice(cfg.Device)
		if err != nil {
			return nil, err
		}
		devs[i] = dev
	}
	if _, err := cfg.indexParams(); err != nil {
		return nil, err
	}
	if !cfg.DisableEnsemble && len(cfg.EKV) == 0 {
		return nil, errors.New("smiler: empty EKV")
	}
	if cfg.MaxHistory < 0 {
		return nil, fmt.Errorf("smiler: negative MaxHistory %d", cfg.MaxHistory)
	}
	if cfg.DisablePooling {
		memsys.SetEnabled(false)
	}
	tier, err := newTierState(cfg)
	if err != nil {
		return nil, err
	}
	so := &systemObs{} // disabled: nil instruments are no-ops
	if !cfg.DisableMetrics {
		so = newSystemObs()
		so.events = obs.NewEventRing(cfg.EventRingSize, so.reg)
		so.runtime = obs.NewRuntimeSampler(so.reg)
		if cfg.RuntimeMetricsInterval >= 0 {
			so.runtime.Start(cfg.RuntimeMetricsInterval)
		}
	}
	s := &System{cfg: cfg, devs: devs, obs: so, sensors: make(map[string]*sensorState), tier: tier}
	so.registerSystem(s)
	return s, nil
}

// pickDevice returns the device with the most free memory.
func (s *System) pickDevice() *gpusim.Device {
	best := s.devs[0]
	bestFree := best.TotalBytes() - best.UsedBytes()
	for _, d := range s.devs[1:] {
		if free := d.TotalBytes() - d.UsedBytes(); free > bestFree {
			best, bestFree = d, free
		}
	}
	return best
}

// indexParams derives the per-sensor index parameters from the config.
func (c Config) indexParams() (index.Params, error) {
	elv := c.ELV
	if c.DisableEnsemble {
		if c.FixedD <= 0 {
			return index.Params{}, errors.New("smiler: DisableEnsemble needs FixedD")
		}
		elv = []int{c.FixedD}
	}
	p := index.Params{Rho: c.Rho, Omega: c.Omega, ELV: elv, MinSeparation: c.MinSeparation, DisableEarlyAbandon: c.DisableEarlyAbandon}
	if err := p.Validate(); err != nil {
		return index.Params{}, err
	}
	return p, nil
}

// predictorFactory builds the per-cell predictor constructor.
func (c Config) predictorFactory() core.PredictorFactory {
	if c.Predictor == PredictorAR {
		return func() core.Predictor { return core.NewAR() }
	}
	return func() core.Predictor { return core.NewGP() }
}

// MinHistory returns the minimum number of points AddSensor requires.
func (s *System) MinHistory() int {
	p, _ := s.cfg.indexParams()
	return p.ELV[len(p.ELV)-1] + s.cfg.Omega
}

// AddSensor registers a sensor with its initial history. The history
// must be at least MinHistory points. With Normalize set, the sensor's
// z-statistics are frozen on this history.
func (s *System) AddSensor(id string, history []float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.addSensorLocked(id, history); err != nil {
		return err
	}
	s.tier.markHot(id)
	return s.enforceCapLocked(id)
}

// addSensorLocked is AddSensor without the lock, the duplicate check
// against cold sensors, or the tier bookkeeping — the shared core of
// AddSensor, checkpoint restore and tier fault-in. Callers hold s.mu.
func (s *System) addSensorLocked(id string, history []float64) error {
	if s.closed {
		return errors.New("smiler: system closed")
	}
	if _, dup := s.sensors[id]; dup {
		return fmt.Errorf("smiler: sensor %q already registered", id)
	}
	if s.tier.isCold(id) {
		return fmt.Errorf("smiler: sensor %q already registered", id)
	}
	params, err := s.cfg.indexParams()
	if err != nil {
		return err
	}
	if s.cfg.MaxHistory > 0 && len(history) > s.cfg.MaxHistory {
		history = history[len(history)-s.cfg.MaxHistory:]
	}

	work := history
	var norm *timeseries.Normalizer
	if s.cfg.Normalize {
		norm, err = timeseries.NewNormalizer(history)
		if err != nil {
			return fmt.Errorf("smiler: sensor %q: %w", id, err)
		}
		work = make([]float64, len(history))
		for i, v := range history {
			work[i] = norm.Apply(v)
		}
	}

	// Place the sensor on the device with the most free memory; if the
	// allocation fails there, try the remaining devices before giving
	// up (the multi-GPU scale-out of Section 6.4.1).
	dev := s.pickDevice()
	ix, err := index.New(dev, work, params)
	if errors.Is(err, gpusim.ErrOutOfMemory) {
		for _, alt := range s.devs {
			if alt == dev {
				continue
			}
			if ix2, err2 := index.New(alt, work, params); err2 == nil {
				ix, err, dev = ix2, nil, alt
				break
			}
		}
	}
	if err != nil {
		return fmt.Errorf("smiler: sensor %q: %w", id, err)
	}
	ekv := s.cfg.EKV
	if s.cfg.DisableEnsemble {
		ekv = []int{s.cfg.FixedK}
	}
	var lbModel *anytime.Model
	if s.cfg.LearnedLB {
		lbModel = anytime.NewModel()
	}
	if s.cfg.Anytime || lbModel != nil {
		ix.SetAnytime(index.Anytime{Enabled: s.cfg.Anytime, Model: lbModel})
	}
	pipe, err := core.NewPipeline(ix, core.PipelineConfig{
		EKV:            ekv,
		Index:          params,
		Horizon:        1,
		Factory:        s.cfg.predictorFactory(),
		PredictWorkers: s.cfg.PredictWorkers,
		SharedHyper:    s.cfg.SharedHyper,
		Anytime:        s.cfg.Anytime,
		Ensemble: core.EnsembleConfig{
			DisableAdaptation: s.cfg.DisableAdaptation,
			DisableSleep:      s.cfg.DisableSleep,
		},
	})
	if err != nil {
		ix.Close()
		return fmt.Errorf("smiler: sensor %q: %w", id, err)
	}
	s.sensors[id] = &sensorState{norm: norm, pipe: pipe, ix: ix, dev: dev, lbModel: lbModel}
	return nil
}

// RemoveSensor drops a sensor and frees its device memory. In-flight
// operations on the sensor finish first (the close waits on the
// sensor's lock); operations that grabbed the sensor but not yet its
// lock fail cleanly with an "index: closed" error.
func (s *System) RemoveSensor(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.sensors[id]
	if !ok {
		if s.tier.isCold(id) {
			// A cold sensor has no live state: dropping the spill file and
			// the cold entry is the whole removal.
			s.tier.dropCold(id)
			_ = os.Remove(s.tier.spillPath(id))
			s.obs.traces.Remove(id)
			return nil
		}
		return fmt.Errorf("smiler: unknown sensor %q", id)
	}
	delete(s.sensors, id)
	s.tier.dropHot(id)
	s.obs.traces.Remove(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.ix.Close()
}

// Sensors returns the registered sensor ids, sorted — hot and cold
// alike (a spilled sensor is still registered).
func (s *System) Sensors() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.sensors))
	for id := range s.sensors {
		out = append(out, id)
	}
	s.mu.RUnlock()
	out = append(out, s.tier.coldIDs()...)
	sort.Strings(out)
	return out
}

// HasSensor reports whether the sensor is currently registered (false
// on a closed system). Ingestion front-ends use it to reject
// observations for unknown sensors at enqueue time, before the
// asynchronous apply.
func (s *System) HasSensor(id string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false
	}
	if _, ok := s.sensors[id]; ok {
		return true
	}
	return s.tier.isCold(id)
}

// HistoryLen reports the number of points currently indexed for the
// sensor — its initial history plus every streamed observation (and
// minus nothing: MaxHistory only truncates at AddSensor time).
func (s *System) HistoryLen(id string) (int, error) {
	st, _, err := s.acquire(id)
	if err != nil {
		return 0, err
	}
	defer st.mu.Unlock()
	return len(st.ix.History()), nil
}

// History returns a copy of the sensor's indexed points in arrival
// order — its initial history followed by every streamed observation —
// in the original units (the internal normalization is inverted).
// Recovery tests compare this against a reference stream.
func (s *System) History(id string) ([]float64, error) {
	st, _, err := s.acquire(id)
	if err != nil {
		return nil, err
	}
	defer st.mu.Unlock()
	out := append([]float64(nil), st.ix.History()...)
	if st.norm != nil {
		for i, v := range out {
			out[i] = st.norm.Invert(v)
		}
	}
	return out, nil
}

// Predict forecasts the sensor's value h steps ahead of its latest
// observation. With metrics enabled, the prediction's per-phase
// latencies and kNN effectiveness land in the registry and a trace of
// its spans in the trace store.
func (s *System) Predict(id string, h int) (Forecast, error) {
	return s.PredictCtx(context.Background(), id, h)
}

// PredictCtx is Predict with a deadline: the context is checked at
// every pipeline phase boundary. With Config.Fallback set, any
// operational failure — deadline exceeded, a predictor panic, a GP or
// index error — comes back as a degraded answer from the cheap
// baseline instead of an error. Validation failures (unknown sensor,
// non-positive horizon) always surface as errors; there is nothing to
// degrade to.
func (s *System) PredictCtx(ctx context.Context, id string, h int) (Forecast, error) {
	st, faulted, err := s.acquire(id)
	if err != nil {
		s.obs.predictErrs.Inc()
		return Forecast{}, err
	}
	// st.mu is held from here; every return path below unlocks it.
	if h <= 0 {
		st.mu.Unlock()
		s.obs.predictErrs.Inc()
		return Forecast{}, fmt.Errorf("smiler: horizon %d must be positive", h)
	}
	ctx, cancel := s.predictContext(ctx)
	defer cancel()
	var tr *obs.Trace
	if s.obs.traces != nil {
		tr = obs.NewTrace(id, h)
		if tc, ok := obs.TraceFromContext(ctx); ok {
			tr.SetContext(tc)
		}
		if faulted {
			tr.SetStat("tier_fault", 1)
		}
	}
	start := time.Now()
	pred, err := st.pipe.PredictTracedCtx(ctx, h, tr)
	timing := st.pipe.Timing()
	searchStats := st.ix.Stats()
	qual := st.pipe.LastQuality()
	if err != nil && s.cfg.Fallback != FallbackNone {
		if fb, fbErr := s.fallbackLocked(st, h); fbErr == nil {
			st.mu.Unlock()
			reason := degradeReason(err)
			s.obs.recordDegraded(id, tr.ID(), reason, err)
			tr.SetStat("degraded", 1)
			tr.Finish(nil)
			s.obs.traces.Add(tr)
			fb.DegradedReason = reason
			return fb, nil
		}
	}
	st.mu.Unlock()
	s.obs.recordPredict(time.Since(start).Seconds(), timing, searchStats, qual, err)
	tr.Finish(err)
	s.obs.traces.Add(tr)
	if err != nil {
		s.obs.countPanic(err)
		return Forecast{}, err
	}
	f := Forecast{Mean: pred.Mean, Variance: pred.Variance, Horizon: h,
		Quality: qual.Tag, QualityEstimate: qual.Estimate}
	if st.norm != nil {
		f.Mean = st.norm.Invert(pred.Mean)
		f.Variance = st.norm.InvertVariance(pred.Variance)
	}
	return f, nil
}

// PredictHorizons forecasts the sensor at several horizons from one
// shared kNN search (the index verifies each candidate at most once).
// Equivalent to calling Predict per horizon, considerably cheaper when
// forecasting a ladder of lead times.
func (s *System) PredictHorizons(id string, hs []int) (map[int]Forecast, error) {
	return s.PredictHorizonsCtx(context.Background(), id, hs)
}

// PredictHorizonsCtx is PredictHorizons with a deadline and — when
// Config.Fallback is set — graceful degradation (see PredictCtx): on
// an operational failure every requested horizon gets a fallback
// forecast.
func (s *System) PredictHorizonsCtx(ctx context.Context, id string, hs []int) (map[int]Forecast, error) {
	st, faulted, err := s.acquire(id)
	if err != nil {
		s.obs.predictErrs.Inc()
		return nil, err
	}
	defer st.mu.Unlock()
	if len(hs) == 0 {
		s.obs.predictErrs.Inc()
		return nil, errors.New("smiler: empty horizon list")
	}
	for _, h := range hs {
		if h <= 0 {
			s.obs.predictErrs.Inc()
			return nil, fmt.Errorf("smiler: horizon %d must be positive", h)
		}
	}
	ctx, cancel := s.predictContext(ctx)
	defer cancel()
	var tr *obs.Trace
	if s.obs.traces != nil {
		tr = obs.NewTrace(id, hs...)
		if tc, ok := obs.TraceFromContext(ctx); ok {
			tr.SetContext(tc)
		}
		if faulted {
			tr.SetStat("tier_fault", 1)
		}
	}
	start := time.Now()
	preds, err := st.pipe.PredictMultiTracedCtx(ctx, hs, tr)
	qual := st.pipe.LastQuality()
	if err != nil && s.cfg.Fallback != FallbackNone {
		reason := degradeReason(err)
		out := make(map[int]Forecast, len(hs))
		ok := true
		for _, h := range hs {
			fb, fbErr := s.fallbackLocked(st, h)
			if fbErr != nil {
				ok = false
				break
			}
			fb.DegradedReason = reason
			out[h] = fb
		}
		if ok {
			s.obs.recordDegraded(id, tr.ID(), reason, err)
			tr.SetStat("degraded", 1)
			tr.Finish(nil)
			s.obs.traces.Add(tr)
			return out, nil
		}
	}
	s.obs.recordPredict(time.Since(start).Seconds(), st.pipe.Timing(), st.ix.Stats(), qual, err)
	tr.Finish(err)
	s.obs.traces.Add(tr)
	if err != nil {
		s.obs.countPanic(err)
		return nil, err
	}
	out := make(map[int]Forecast, len(preds))
	for h, pred := range preds {
		f := Forecast{Mean: pred.Mean, Variance: pred.Variance, Horizon: h,
			Quality: qual.Tag, QualityEstimate: qual.Estimate}
		if st.norm != nil {
			f.Mean = st.norm.Invert(pred.Mean)
			f.Variance = st.norm.InvertVariance(pred.Variance)
		}
		out[h] = f
	}
	return out, nil
}

// predictContext applies the configured PredictDeadline when the
// caller's context carries no deadline of its own.
func (s *System) predictContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.PredictDeadline <= 0 {
		return ctx, func() {}
	}
	if _, has := ctx.Deadline(); has {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, s.cfg.PredictDeadline)
}

// degradeReason classifies an operational prediction failure for the
// Forecast tag and the degraded-predictions metric.
func degradeReason(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "deadline"
	case errors.Is(err, core.ErrPanicked):
		return "panic"
	default:
		return "error"
	}
}

// fallbackLocked computes the degraded forecast from the sensor's
// surviving history (normalized space when normalization is on, then
// inverted like the normal path). Callers hold st.mu.
func (s *System) fallbackLocked(st *sensorState, h int) (Forecast, error) {
	hist := st.ix.History()
	var pred baselines.Prediction
	var err error
	switch s.cfg.Fallback {
	case FallbackAR1:
		pred, err = baselines.AR1Fallback(hist, h)
	default:
		pred, err = baselines.PersistenceFallback(hist, h)
	}
	if err != nil {
		return Forecast{}, err
	}
	f := Forecast{Mean: pred.Mean, Variance: pred.Variance, Horizon: h, Degraded: true, Quality: "fallback"}
	if st.norm != nil {
		f.Mean = st.norm.Invert(pred.Mean)
		f.Variance = st.norm.InvertVariance(pred.Variance)
	}
	return f, nil
}

// Observe streams the next observation of the sensor into the system:
// it closes the auto-tuning loop for matured predictions and advances
// the index incrementally. A NaN observation marks a missing reading:
// the gap is filled with the system's own one-step-ahead prediction so
// the fixed sample rate (Section 3.1) is preserved; the auto-tuning
// update for that step is skipped (there is no truth to score
// against).
func (s *System) Observe(id string, v float64) error {
	st, _, err := s.acquire(id)
	if err != nil {
		s.obs.observeErrs.Inc()
		return err
	}
	defer st.mu.Unlock()
	start := time.Now()
	if math.IsNaN(v) {
		pred, err := st.pipe.Predict(1)
		if err != nil {
			s.obs.observeErrs.Inc()
			return fmt.Errorf("smiler: imputing missing reading for %q: %w", id, err)
		}
		st.pipe.DropPendingFor(st.pipe.Index().Len()) // no truth will arrive
		err = st.pipe.Observe(pred.Mean)
		s.obs.recordObserve(time.Since(start).Seconds(), st.pipe.LastObserveTiming(), err)
		return err
	}
	if st.norm != nil {
		v = st.norm.Apply(v)
	}
	err = st.pipe.Observe(v)
	s.obs.recordObserve(time.Since(start).Seconds(), st.pipe.LastObserveTiming(), err)
	return err
}

// poolSize bounds a per-sensor fan-out at GOMAXPROCS workers: with
// millions of sensors, one goroutine per sensor would swamp the
// scheduler for no extra parallelism.
func poolSize(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEachSensor runs fn over the ids on a bounded worker pool and
// returns the first error encountered (remaining ids are still
// visited).
func forEachSensor(ids []string, fn func(id string) error) error {
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < poolSize(len(ids)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ids) {
					return
				}
				if err := fn(ids[i]); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// PredictAll forecasts every sensor h steps ahead, processing sensors
// in parallel on a worker pool bounded by GOMAXPROCS (the paper scales
// out by giving each sensor its own index and more GPU blocks). It
// returns the first error encountered.
func (s *System) PredictAll(h int) (map[string]Forecast, error) {
	ids := s.Sensors()
	out := make(map[string]Forecast, len(ids))
	var outMu sync.Mutex
	err := forEachSensor(ids, func(id string) error {
		f, err := s.Predict(id, h)
		if err != nil {
			return err
		}
		outMu.Lock()
		out[id] = f
		outMu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ObserveAll streams one observation per sensor (missing sensors
// error). Distinct sensors hold distinct locks, so observations are
// applied in parallel on a worker pool bounded by GOMAXPROCS; on
// error, observations for other sensors may still have been applied.
func (s *System) ObserveAll(values map[string]float64) error {
	ids := make([]string, 0, len(values))
	for id := range values {
		ids = append(ids, id)
	}
	return forEachSensor(ids, func(id string) error {
		return s.Observe(id, values[id])
	})
}

// DeviceUsage reports the simulated GPU memory consumption summed over
// all devices.
func (s *System) DeviceUsage() (used, total int64) {
	for _, d := range s.devs {
		used += d.UsedBytes()
		total += d.TotalBytes()
	}
	return used, total
}

// DeviceUsagePer reports per-device memory consumption, in device
// order.
func (s *System) DeviceUsagePer() [][2]int64 {
	out := make([][2]int64, len(s.devs))
	for i, d := range s.devs {
		out[i] = [2]int64{d.UsedBytes(), d.TotalBytes()}
	}
	return out
}

// Device exposes the first simulated GPU (benchmarks read its timers).
func (s *System) Device() *gpusim.Device { return s.devs[0] }

// EnsembleWeights reports the current (k, d) → weight map of a
// sensor's ensemble; sleeping cells report weight 0.
func (s *System) EnsembleWeights(id string) (map[[2]int]float64, error) {
	st, _, err := s.acquire(id)
	if err != nil {
		return nil, err
	}
	defer st.mu.Unlock()
	out := make(map[[2]int]float64)
	for _, c := range st.pipe.Ensemble().Cells() {
		out[[2]int{c.K, c.D}] = c.Weight()
	}
	return out, nil
}

// Close releases every sensor's device memory and stops the runtime
// telemetry sampler. The system is unusable afterwards.
func (s *System) Close() error {
	s.obs.runtime.Stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for id, st := range s.sensors {
		st.mu.Lock()
		err := st.ix.Close()
		st.mu.Unlock()
		if err != nil && first == nil {
			first = err
		}
		delete(s.sensors, id)
	}
	s.tier.close()
	return first
}
