package scan

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"smiler/internal/dtw"
	"smiler/internal/gpusim"
)

func testDevice(t testing.TB) *gpusim.Device {
	t.Helper()
	return gpusim.MustNewDevice(gpusim.DefaultConfig())
}

func randwalk(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	v := 0.0
	for i := range out {
		v += rng.NormFloat64() * 0.4
		out[i] = v
	}
	return out
}

func distsEqual(t *testing.T, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9*(1+want[i].Dist) {
			t.Fatalf("result %d: dist %v, want %v", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestValidateArgs(t *testing.T) {
	c := []float64{1, 2, 3}
	q := []float64{1, 2}
	if _, err := BruteKNN(c, nil, 1, 1, 1); err == nil {
		t.Fatal("empty query")
	}
	if _, err := BruteKNN(nil, q, 1, 1, 1); err == nil {
		t.Fatal("empty series")
	}
	if _, err := BruteKNN(c, q, 1, 0, 1); err == nil {
		t.Fatal("k=0")
	}
	if _, err := BruteKNN(c, q, 1, 1, 0); err == nil {
		t.Fatal("h=0")
	}
}

func TestBruteKNNTiny(t *testing.T) {
	// series 0..5; query = {4,5} (the suffix); h=1 restricts candidates
	// to t ≤ 6−2−1 = 3.
	c := []float64{0, 1, 2, 3, 4, 5}
	q := []float64{4, 5}
	res, err := BruteKNN(c, q, 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].T != 3 { // segment {3,4} is nearest
		t.Fatalf("nearest at %d, want 3", res[0].T)
	}
	if res[0].Dist > res[1].Dist {
		t.Fatal("results unsorted")
	}
}

func TestBruteKNNNoCandidates(t *testing.T) {
	c := []float64{1, 2, 3}
	res, err := BruteKNN(c, []float64{1, 2, 3}, 1, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatal("expected no candidates")
	}
}

func TestFastGPUScanMatchesBrute(t *testing.T) {
	dev := testDevice(t)
	rng := rand.New(rand.NewSource(1))
	c := randwalk(rng, 600)
	q := c[len(c)-48:]
	want, err := BruteKNN(c, q, 6, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FastGPUScan(dev, c, q, 6, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	distsEqual(t, got, want)
}

func TestGPUScanUnbandedDominatesBanded(t *testing.T) {
	dev := testDevice(t)
	rng := rand.New(rand.NewSource(2))
	c := randwalk(rng, 400)
	q := c[len(c)-32:]
	banded, err := FastGPUScan(dev, c, q, 4, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	unbanded, err := GPUScan(dev, c, q, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Unconstrained DTW distances are ≤ banded distances, so the
	// unbanded 1-NN distance cannot exceed the banded one.
	if unbanded[0].Dist > banded[0].Dist+1e-9 {
		t.Fatalf("unbanded 1-NN %v > banded %v", unbanded[0].Dist, banded[0].Dist)
	}
}

func TestGPUScanMatchesUnbandedBrute(t *testing.T) {
	dev := testDevice(t)
	rng := rand.New(rand.NewSource(3))
	c := randwalk(rng, 300)
	q := c[len(c)-24:]
	got, err := GPUScan(dev, c, q, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteKNN(c, q, len(q), 8, 1) // ρ = d ⇒ unconstrained
	if err != nil {
		t.Fatal(err)
	}
	distsEqual(t, got, want)
}

func TestFastCPUScanMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := randwalk(rng, 700)
	q := c[len(c)-64:]
	want, err := BruteKNN(c, q, 8, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := FastCPUScan(c, q, 8, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	distsEqual(t, got, want)
	if st.Candidates != len(c)-64-3+1 {
		t.Fatalf("candidate count %d wrong", st.Candidates)
	}
	pruned := st.PrunedByLBKim + st.PrunedByLBEQ + st.PrunedByLBEC + st.AbandonedEarly
	if pruned == 0 {
		t.Fatal("expected some pruning on a random walk")
	}
	if st.PrunedByLBKim+st.PrunedByLBEQ+st.PrunedByLBEC+st.AbandonedEarly+st.FullDTW != st.Candidates {
		t.Fatal("stats do not partition the candidates")
	}
}

func TestFastCPUScanNoCandidates(t *testing.T) {
	c := []float64{1, 2, 3, 4}
	res, st, err := FastCPUScan(c, []float64{1, 2, 3}, 1, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil || st.Candidates != 0 {
		t.Fatal("expected empty result")
	}
}

// Property: all scan variants agree with brute force on random inputs.
func TestQuickScansAgree(t *testing.T) {
	dev := testDevice(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 120 + rng.Intn(300)
		d := 8 + rng.Intn(40)
		rho := 1 + rng.Intn(8)
		k := 1 + rng.Intn(10)
		h := 1 + rng.Intn(5)
		c := randwalk(rng, n)
		q := c[len(c)-d:]
		want, err := BruteKNN(c, q, rho, k, h)
		if err != nil {
			return false
		}
		gpu, err := FastGPUScan(dev, c, q, rho, k, h)
		if err != nil {
			return false
		}
		cpu, _, err := FastCPUScan(c, q, rho, k, h)
		if err != nil {
			return false
		}
		if len(gpu) != len(want) || len(cpu) != len(want) {
			return false
		}
		for i := range want {
			if math.Abs(gpu[i].Dist-want[i].Dist) > 1e-9*(1+want[i].Dist) {
				return false
			}
			if math.Abs(cpu[i].Dist-want[i].Dist) > 1e-9*(1+want[i].Dist) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDirLBenIsLowerBound(t *testing.T) {
	dev := testDevice(t)
	rng := rand.New(rand.NewSource(5))
	c := randwalk(rng, 400)
	elv := []int{16, 24, 40}
	const rho, h = 3, 2
	bounds, st, err := DirLBen(dev, c, elv, rho, h)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bounds == 0 || st.SimSeconds <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	for i, d := range elv {
		q := c[len(c)-d:]
		for tpos, lb := range bounds[i] {
			dist, err := dtw.Distance(q, c[tpos:tpos+d], rho)
			if err != nil {
				t.Fatal(err)
			}
			if lb > dist+1e-9*(1+dist) {
				t.Fatalf("d=%d t=%d: LBen %v > DTW %v", d, tpos, lb, dist)
			}
		}
	}
}

func TestDirLBenErrors(t *testing.T) {
	dev := testDevice(t)
	if _, _, err := DirLBen(dev, []float64{1, 2}, nil, 1, 1); err == nil {
		t.Fatal("empty ELV should fail")
	}
	if _, _, err := DirLBen(dev, []float64{1, 2}, []int{10}, 1, 1); err == nil {
		t.Fatal("short series should fail")
	}
}

func BenchmarkFastCPUScan(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	c := randwalk(rng, 4000)
	q := c[len(c)-64:]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := FastCPUScan(c, q, 8, 32, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFastGPUScan(b *testing.B) {
	dev := testDevice(b)
	rng := rand.New(rand.NewSource(7))
	c := randwalk(rng, 4000)
	q := c[len(c)-64:]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FastGPUScan(dev, c, q, 8, 32, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParallelCPUScanMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := randwalk(rng, 900)
	q := c[len(c)-48:]
	want, err := BruteKNN(c, q, 6, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3, 7} {
		got, err := ParallelCPUScan(c, q, 6, 10, 2, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		distsEqual(t, got, want)
	}
	if _, err := ParallelCPUScan(nil, q, 6, 10, 2, 2); err == nil {
		t.Fatal("empty series should fail")
	}
	// No candidates.
	res, err := ParallelCPUScan([]float64{1, 2, 3}, []float64{1, 2, 3}, 1, 2, 9, 2)
	if err != nil || res != nil {
		t.Fatalf("expected empty result, got %v err=%v", res, err)
	}
}

// Property: sharded and single-threaded scans agree on random inputs.
func TestQuickParallelScanAgrees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 150 + rng.Intn(300)
		d := 8 + rng.Intn(30)
		c := randwalk(rng, n)
		q := c[len(c)-d:]
		k := 1 + rng.Intn(8)
		h := 1 + rng.Intn(4)
		workers := 1 + rng.Intn(6)
		want, _, err := FastCPUScan(c, q, 4, k, h)
		if err != nil {
			return false
		}
		got, err := ParallelCPUScan(c, q, 4, k, h, workers)
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9*(1+want[i].Dist) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
