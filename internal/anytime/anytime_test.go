package anytime

import (
	"math"
	"testing"
)

func TestModelIdentityUntilTrained(t *testing.T) {
	m := NewModel()
	if m.Ready() {
		t.Fatal("fresh model claims Ready")
	}
	for _, lb := range []float64{0, 0.5, 3, 100} {
		if got := m.Predict(lb); got != lb {
			t.Fatalf("untrained Predict(%v) = %v, want identity", lb, got)
		}
	}
	for i := 0; i < minTrain; i++ {
		m.Observe(1.0, 2.0)
	}
	if !m.Ready() {
		t.Fatalf("model not Ready after %d observations", minTrain)
	}
}

func TestModelLearnsRatio(t *testing.T) {
	m := NewModel()
	// dist is consistently 3× the lower bound.
	for i := 0; i < 200; i++ {
		lb := 0.5 + float64(i%10)
		m.Observe(lb, 3*lb)
	}
	got := m.Predict(2.0)
	if got < 5 || got > 7 {
		t.Fatalf("Predict(2.0) = %v, want ≈ 6 (ratio 3)", got)
	}
	// Prediction is never below the lower bound itself.
	if m.Predict(4.0) < 4.0 {
		t.Fatalf("Predict(4.0) = %v below the lower bound", m.Predict(4.0))
	}
}

func TestModelIgnoresDegenerateObservations(t *testing.T) {
	m := NewModel()
	m.Observe(0, 5)            // lb too small to carry a ratio
	m.Observe(2, math.Inf(1))  // abandoned candidate
	m.Observe(2, math.NaN())   // garbage
	m.Observe(5, 2)            // dist < lb: not a valid bound pair
	m.Observe(math.Inf(1), 10) // infinite bound
	var nilModel *Model
	nilModel.Observe(1, 2) // nil-safe
	_ = nilModel.Ready()
	_ = nilModel.N()
	if m.N() != 0 {
		t.Fatalf("degenerate observations were counted: n=%d", m.N())
	}
}

func TestModelStateRoundTrip(t *testing.T) {
	m := NewModel()
	for i := 0; i < 300; i++ {
		lb := 0.1 + float64(i%17)*0.3
		m.Observe(lb, lb*(1.5+float64(i%5)))
	}
	r := NewModelFromState(m.State())
	if r.N() != m.N() {
		t.Fatalf("restored n=%d want %d", r.N(), m.N())
	}
	for _, lb := range []float64{0.2, 1, 2.7, 9, 40} {
		if got, want := r.Predict(lb), m.Predict(lb); got != want {
			t.Fatalf("restored Predict(%v)=%v want %v", lb, got, want)
		}
	}
	// Malformed snapshots restore as a fresh (identity) model.
	bad := NewModelFromState(ModelState{Version: 99})
	if bad.Ready() || bad.Predict(3) != 3 {
		t.Fatal("malformed snapshot did not restore as identity model")
	}
}

func TestEstimateProbExact(t *testing.T) {
	if got := EstimateProbExact(0, 0, 0); got != 1 {
		t.Fatalf("no remaining risk must be certainty, got %v", got)
	}
	// More remaining at-risk candidates → lower probability.
	p1 := EstimateProbExact(2, 100, 5)
	p2 := EstimateProbExact(2, 100, 50)
	if !(p1 > p2) {
		t.Fatalf("probability not monotone in remaining: %v vs %v", p1, p2)
	}
	// Higher observed flip rate → lower probability.
	q1 := EstimateProbExact(1, 100, 10)
	q2 := EstimateProbExact(50, 100, 10)
	if !(q1 > q2) {
		t.Fatalf("probability not monotone in flip rate: %v vs %v", q1, q2)
	}
	// Degenerate total-flip history.
	if got := EstimateProbExact(10, 8, 3); got < 0 || got > 1 {
		t.Fatalf("estimate out of range: %v", got)
	}
	for _, p := range []float64{p1, p2, q1, q2} {
		if p < 0 || p > 1 {
			t.Fatalf("estimate out of [0,1]: %v", p)
		}
	}
}
