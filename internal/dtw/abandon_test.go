package dtw

import (
	"math"
	"math/rand"
	"testing"
)

func randWalkSeries(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	v := 0.0
	for i := range s {
		v += rng.NormFloat64()
		s[i] = v
	}
	return s
}

// TestAbandonInfCutoffBitIdentical: with cutoff=+Inf the abandoning
// variant must return exactly DistanceCompressed's value and process
// every column.
func TestAbandonInfCutoffBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		d := 4 + rng.Intn(60)
		rho := rng.Intn(12)
		q := randWalkSeries(rng, d)
		c := randWalkSeries(rng, d)
		want, err := DistanceCompressed(q, c, rho, nil)
		if err != nil {
			t.Fatalf("DistanceCompressed: %v", err)
		}
		got, cols, err := DistanceCompressedAbandon(q, c, rho, math.Inf(1), nil)
		if err != nil {
			t.Fatalf("DistanceCompressedAbandon: %v", err)
		}
		if got != want {
			t.Fatalf("trial %d (d=%d rho=%d): abandon %v != plain %v", trial, d, rho, got, want)
		}
		if cols != d {
			t.Fatalf("trial %d: processed %d cols, want %d", trial, cols, d)
		}
	}
}

// TestAbandonSoundness: whenever the variant abandons, the true
// distance really exceeds the cutoff; whenever it completes, the value
// matches the plain variant bit-for-bit and is ≤ cutoff or the final
// column happened to stay under it.
func TestAbandonSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		d := 8 + rng.Intn(48)
		rho := rng.Intn(10)
		q := randWalkSeries(rng, d)
		c := randWalkSeries(rng, d)
		truth, err := DistanceCompressed(q, c, rho, nil)
		if err != nil {
			t.Fatalf("DistanceCompressed: %v", err)
		}
		// Cutoffs below, at, and above the true distance.
		for _, cutoff := range []float64{truth * 0.25, truth, truth * 4} {
			got, cols, err := DistanceCompressedAbandon(q, c, rho, cutoff, nil)
			if err != nil {
				t.Fatalf("abandon: %v", err)
			}
			if cols < 1 || cols > d {
				t.Fatalf("cols=%d outside [1,%d]", cols, d)
			}
			if math.IsInf(got, 1) {
				if truth <= cutoff {
					t.Fatalf("trial %d: abandoned although true distance %v ≤ cutoff %v", trial, truth, cutoff)
				}
			} else if got != truth {
				t.Fatalf("trial %d: completed with %v, want %v", trial, got, truth)
			}
		}
	}
}

// TestAbandonTieSurvives: a cutoff exactly equal to the true distance
// must never abandon (abandonment fires only on strictly greater column
// minima, and every column minimum lower-bounds the final distance).
func TestAbandonTieSurvives(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		d := 8 + rng.Intn(32)
		rho := 1 + rng.Intn(8)
		q := randWalkSeries(rng, d)
		c := randWalkSeries(rng, d)
		truth, _ := DistanceCompressed(q, c, rho, nil)
		got, cols, err := DistanceCompressedAbandon(q, c, rho, truth, nil)
		if err != nil {
			t.Fatalf("abandon: %v", err)
		}
		if got != truth || cols != d {
			t.Fatalf("trial %d: tie at cutoff abandoned (got %v cols %d, want %v cols %d)",
				trial, got, cols, truth, d)
		}
	}
}

// TestAbandonErrors mirrors DistanceCompressed's input validation.
func TestAbandonErrors(t *testing.T) {
	if _, _, err := DistanceCompressedAbandon(nil, nil, 2, 1, nil); err == nil {
		t.Fatal("empty inputs should error")
	}
	if _, _, err := DistanceCompressedAbandon([]float64{1, 2}, []float64{1}, 2, 1, nil); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, _, err := DistanceCompressedAbandon([]float64{1}, []float64{1}, -1, 1, nil); err == nil {
		t.Fatal("negative rho should error")
	}
}
