// Package cluster turns independent SMiLer serving nodes into a
// static-membership cluster with sensor sharding, asynchronous
// replication, probe-driven failover and online migration.
//
// Placement is a consistent-hash ring with virtual nodes: a sensor id
// maps to a preference list of members; the first is its owner
// (primary), the next Replicas are its followers. Any node accepts
// any request — an ownership gate in front of the local route table
// forwards misrouted requests to the owner, so clients need no
// routing knowledge (responses carry ownership hints for clients that
// want to learn it).
//
// The owner ships every applied mutation to its followers as WAL
// frames (the on-disk envelope plus a per-sensor sequence number)
// over HTTP; followers apply in order, drop duplicates, and heal any
// gap by requesting a snapshot — the same bit-exact checkpoint
// envelope the durability layer writes, tagged with the sequence it
// covers. Replication is asynchronous: acknowledged writes can lag on
// followers, which is why failover serves Degraded forecasts.
//
// A health prober watches every peer's /readyz; after ProbeFailures
// consecutive failures the peer is down and ownership slides to the
// next healthy node in each sensor's preference list. The promoted
// node keeps serving forecasts from its replica (tagged Degraded:
// "replica", refused entirely once the staleness bound is exceeded)
// but rejects mutations with 503 — reads stay available, writes wait
// for the owner, so a returning primary cannot have missed writes.
//
// Migration moves a sensor between live nodes without losing an
// observation: quiesce (pause new writes, drain the pipeline), snap
// the sensor's checkpoint bytes plus its replication sequence, POST
// them to the target, flip an ownership override on every member, and
// resume — the target's state is bit-identical to the source's.
package cluster

import (
	"bytes"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"smiler"
	"smiler/internal/ingest"
	"smiler/internal/server"
	"smiler/internal/wal"
)

// Member is one static cluster member.
type Member struct {
	ID  string `json:"id"`
	URL string `json:"url"` // base URL, e.g. "http://10.0.0.7:8080"
}

// Config configures a cluster node.
type Config struct {
	// Self is this node's member ID (must appear in Members).
	Self string
	// Members is the full static membership, including self.
	Members []Member
	// Replicas is the number of follower copies per sensor (default 1,
	// clamped to len(Members)-1).
	Replicas int
	// VirtualNodes is the per-member vnode count on the ring
	// (default 64).
	VirtualNodes int
	// ProbeInterval is the peer health probe period (default 500ms).
	ProbeInterval time.Duration
	// ProbeFailures is how many consecutive probe failures mark a peer
	// down (default 3).
	ProbeFailures int
	// HeartbeatInterval is the idle replication heartbeat period
	// (default ProbeInterval).
	HeartbeatInterval time.Duration
	// MaxStaleness bounds how stale a promoted replica may serve: once
	// this long has passed since the failed primary was last heard
	// from, degraded reads answer 503 instead (default 5m).
	MaxStaleness time.Duration
	// Secret, when set, is required (in the X-Smiler-Cluster-Secret
	// header) on every state-changing /cluster/* endpoint — replicate,
	// restore, assign, migrate — and attached to all intra-cluster
	// requests this node makes. Every member must share the same value.
	// Leave empty only when untrusted clients cannot reach the serving
	// port (see docs/CLUSTER.md, Security).
	Secret string
	// HTTPClient is used for all intra-cluster requests (default: a
	// client with a 5s timeout).
	HTTPClient *http.Client
	// Logger, when set, receives cluster state transitions.
	Logger *slog.Logger
}

func (c *Config) applyDefaults() {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Replicas > len(c.Members)-1 {
		c.Replicas = len(c.Members) - 1
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeFailures <= 0 {
		c.ProbeFailures = 3
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = c.ProbeInterval
	}
	if c.MaxStaleness <= 0 {
		c.MaxStaleness = 5 * time.Minute
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 5 * time.Second}
	}
}

// Node glues one server into the cluster: it installs the ownership
// gate, mounts the /cluster/* endpoints, runs the health prober and
// the replication streams.
type Node struct {
	cfg     Config
	sys     *smiler.System
	srv     *server.Server
	ring    *Ring
	members map[string]Member
	peers   []string // member ids excluding self, sorted
	hc      *http.Client
	log     *slog.Logger

	health *prober
	repl   *replicator
	m      *metrics

	// assign overrides ring placement per sensor (migration). It wins
	// over the ring's preference head.
	assignMu sync.RWMutex
	assign   map[string]string

	// paused sensors reject new mutations with 503 while a snapshot or
	// migration quiesce is in progress.
	pauseMu sync.Mutex
	paused  map[string]bool
}

// New builds the node, wires it into srv (gate, routes, replication
// hook) and starts its prober and replication workers. Call before
// the listener starts serving. The caller still owns sys and srv.
func New(sys *smiler.System, srv *server.Server, cfg Config) (*Node, error) {
	if sys == nil || srv == nil {
		return nil, errors.New("cluster: nil system or server")
	}
	if len(cfg.Members) < 2 {
		return nil, errors.New("cluster: need at least two members")
	}
	members := make(map[string]Member, len(cfg.Members))
	ids := make([]string, 0, len(cfg.Members))
	for _, m := range cfg.Members {
		if m.ID == "" {
			return nil, errors.New("cluster: member with empty id")
		}
		u, err := url.Parse(m.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: member %q has invalid URL %q", m.ID, m.URL)
		}
		m.URL = strings.TrimSuffix(u.String(), "/")
		if _, dup := members[m.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate member id %q", m.ID)
		}
		members[m.ID] = m
		ids = append(ids, m.ID)
	}
	if _, ok := members[cfg.Self]; !ok {
		return nil, fmt.Errorf("cluster: self %q is not a member", cfg.Self)
	}
	cfg.applyDefaults()
	n := &Node{
		cfg:     cfg,
		sys:     sys,
		srv:     srv,
		ring:    NewRing(ids, cfg.VirtualNodes),
		members: members,
		hc:      cfg.HTTPClient,
		log:     cfg.Logger,
		assign:  make(map[string]string),
		paused:  make(map[string]bool),
	}
	for _, id := range ids {
		if id != cfg.Self {
			n.peers = append(n.peers, id)
		}
	}
	sort.Strings(n.peers)
	n.health = newProber(n)
	n.repl = newReplicator(n)
	n.m = newMetrics(sys.Metrics(), n)

	srv.Handle("/cluster/ring", n.handleRing)
	srv.Handle("/cluster/health", n.handleHealth)
	srv.Handle("/cluster/replicate", n.handleReplicate)
	srv.Handle("/cluster/restore", n.handleRestore)
	srv.Handle("/cluster/migrate", n.handleMigrate)
	srv.Handle("/cluster/assign", n.handleAssign)
	srv.SetGate(n.gate)
	// Every observation the pipeline applies locally streams to this
	// sensor's followers (the gate only lets the owner apply locally,
	// so emission happens exactly once per write).
	srv.Pipeline().SetOnApplied(func(o ingest.Observation) {
		n.repl.emit(wal.Record{Type: wal.RecObserve, Sensor: o.Sensor, Value: o.Value})
	})

	n.health.start()
	n.repl.start()
	return n, nil
}

// Close stops the prober and replication workers and detaches the
// node from its server (gate and hook cleared). The server keeps
// serving single-node.
func (n *Node) Close() error {
	n.srv.SetGate(nil)
	n.srv.Pipeline().SetOnApplied(nil)
	n.health.close()
	n.repl.close()
	return nil
}

// member looks up a member by id.
func (n *Node) member(id string) (Member, bool) {
	m, ok := n.members[id]
	return m, ok
}

// peerIDs returns every member id except self, sorted.
func (n *Node) peerIDs() []string { return n.peers }

// --- placement ---

// preference returns the sensor's member preference order: the
// migration override first (when set), then the ring walk.
func (n *Node) preference(sensor string) []string {
	pref := n.ring.Preference(sensor, len(n.members))
	n.assignMu.RLock()
	override, ok := n.assign[sensor]
	n.assignMu.RUnlock()
	if !ok || (len(pref) > 0 && pref[0] == override) {
		return pref
	}
	out := make([]string, 0, len(pref)+1)
	out = append(out, override)
	for _, id := range pref {
		if id != override {
			out = append(out, id)
		}
	}
	return out
}

// route resolves the sensor's effective owner: the first healthy node
// in its preference order. promoted reports that the effective owner
// is standing in for a down primary (it serves degraded reads only).
func (n *Node) route(sensor string) (owner Member, promoted bool) {
	pref := n.preference(sensor)
	for i, id := range pref {
		if n.health.isUp(id) {
			m, _ := n.member(id)
			return m, i > 0
		}
	}
	// Everyone is down (by our view): fall back to the primary; the
	// forward will fail and surface as 502.
	m, _ := n.member(pref[0])
	return m, false
}

// replicaTargets returns the follower ids for a sensor: the first
// Replicas members after the effective owner in preference order.
// Self counts toward the replica budget but is never a target (a node
// does not stream to itself).
func (n *Node) replicaTargets(sensor string) []string {
	pref := n.preference(sensor)
	owner, _ := n.route(sensor)
	var out []string
	taken := 0
	for _, id := range pref {
		if id == owner.ID {
			continue
		}
		if taken >= n.cfg.Replicas {
			break
		}
		taken++
		if id != n.cfg.Self {
			out = append(out, id)
		}
	}
	return out
}

// --- peer authentication ---

// secretHeader carries the shared cluster secret on intra-cluster
// requests when Config.Secret is set.
const secretHeader = "X-Smiler-Cluster-Secret"

// peerHeaders stamps an outbound intra-cluster request with this
// node's identity and, when configured, the shared secret.
func (n *Node) peerHeaders(req *http.Request) {
	req.Header.Set(fromHeader, n.cfg.Self)
	if n.cfg.Secret != "" {
		req.Header.Set(secretHeader, n.cfg.Secret)
	}
}

// authSecret enforces the shared cluster secret when one is
// configured. The operator-facing /cluster/migrate uses just this —
// the operator is not a member and carries no fromHeader.
func (n *Node) authSecret(w http.ResponseWriter, r *http.Request) bool {
	if n.cfg.Secret == "" {
		return true
	}
	if subtle.ConstantTimeCompare([]byte(r.Header.Get(secretHeader)), []byte(n.cfg.Secret)) != 1 {
		writeError(w, http.StatusForbidden, "missing or wrong "+secretHeader+" header")
		return false
	}
	return true
}

// authPeer gates the peer-to-peer /cluster/* endpoints (replicate,
// restore, assign): the sender must present the shared secret when one
// is configured and name itself as another member of the static
// membership. Without a secret the membership check only stops stray
// API clients from overwriting sensor state or flipping ownership —
// any sender can claim a member id — so the secret, or keeping the
// port off the client network, is the real boundary (docs/CLUSTER.md).
func (n *Node) authPeer(w http.ResponseWriter, r *http.Request) bool {
	if !n.authSecret(w, r) {
		return false
	}
	from := r.Header.Get(fromHeader)
	if _, ok := n.members[from]; !ok || from == n.cfg.Self {
		writeError(w, http.StatusForbidden,
			"cluster endpoint requires a known peer "+fromHeader+" header")
		return false
	}
	return true
}

// --- pause (quiesce) ---

func (n *Node) pauseSensor(sensor string) {
	n.pauseMu.Lock()
	n.paused[sensor] = true
	n.pauseMu.Unlock()
}

func (n *Node) unpauseSensor(sensor string) {
	n.pauseMu.Lock()
	delete(n.paused, sensor)
	n.pauseMu.Unlock()
}

func (n *Node) isPaused(sensor string) bool {
	n.pauseMu.Lock()
	defer n.pauseMu.Unlock()
	return n.paused[sensor]
}

// snapshotSensor quiesces the sensor and captures (checkpoint bytes,
// covered seq) atomically: new mutations 503 while paused (clients
// retry under their idempotent backoff), the pipeline drains, and
// only then are the sequence number and state read.
func (n *Node) snapshotSensor(sensor string) ([]byte, uint64, error) {
	n.pauseSensor(sensor)
	defer n.unpauseSensor(sensor)
	if err := n.srv.Pipeline().Drain(); err != nil {
		return nil, 0, err
	}
	seq := n.repl.seqOf(sensor)
	var b bytes.Buffer
	if err := n.sys.SaveSensorTo(&b, sensor); err != nil {
		return nil, 0, err
	}
	return b.Bytes(), seq, nil
}

// --- info endpoints ---

// RingInfo is GET /cluster/ring without a sensor: the membership view.
type RingInfo struct {
	Self     string   `json:"self"`
	Members  []Member `json:"members"`
	Replicas int      `json:"replicas"`
}

// SensorRoute is GET /cluster/ring?sensor=...: one sensor's placement.
type SensorRoute struct {
	Sensor     string   `json:"sensor"`
	Owner      string   `json:"owner"`
	OwnerURL   string   `json:"owner_url"`
	Promoted   bool     `json:"promoted"`
	Preference []string `json:"preference"`
}

func (n *Node) handleRing(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	sensor := r.URL.Query().Get("sensor")
	if sensor == "" {
		info := RingInfo{Self: n.cfg.Self, Replicas: n.cfg.Replicas}
		for _, id := range n.ring.Nodes() {
			m, _ := n.member(id)
			info.Members = append(info.Members, m)
		}
		writeJSON(w, http.StatusOK, info)
		return
	}
	owner, promoted := n.route(sensor)
	writeJSON(w, http.StatusOK, SensorRoute{
		Sensor: sensor, Owner: owner.ID, OwnerURL: owner.URL,
		Promoted: promoted, Preference: n.preference(sensor),
	})
}

func (n *Node) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"self":  n.cfg.Self,
		"peers": n.health.snapshot(),
	})
}

// --- small shared helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func readJSON(r interface{ Read([]byte) (int, error) }, v any) error {
	return json.NewDecoder(r).Decode(v)
}
