package index

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"smiler/internal/memsys"
)

// SearchMulti answers the Suffix kNN Search for several horizons in a
// single pass. The horizon only changes the label-validity mask
// (candidates must satisfy t ≤ |C| − d − h), so the group-level lower
// bounds are produced once and each candidate segment's DTW is
// verified at most once, no matter how many horizons ask for it. The
// result maps each horizon to its per-item-query kNN sets, each
// identical to what Search(k, h) would return.
func (ix *Index) SearchMulti(k int, hs []int) (map[int][]ItemResult, error) {
	return ix.SearchMultiCtx(context.Background(), k, hs)
}

// SearchMultiCtx is SearchMulti with a context, with the same deadline
// semantics as SearchCtx: chunk-granular aborts in exact mode,
// best-so-far results plus Stats() quality counters in anytime mode.
func (ix *Index) SearchMultiCtx(ctx context.Context, k int, hs []int) (map[int][]ItemResult, error) {
	if ix.closed {
		return nil, errors.New("index: closed")
	}
	if k <= 0 {
		return nil, fmt.Errorf("index: k=%d must be positive", k)
	}
	if len(hs) == 0 {
		return nil, errors.New("index: empty horizon list")
	}
	sorted := append([]int(nil), hs...)
	sort.Ints(sorted)
	if sorted[0] <= 0 {
		return nil, fmt.Errorf("index: horizon %d must be positive", sorted[0])
	}
	ix.stats = SearchStats{}

	// Lower bounds once, with the smallest horizon's (largest) mask.
	hMin := sorted[0]
	lbs, err := ix.groupLevelLowerBounds(ctx, hMin)
	if err != nil {
		return nil, err
	}
	defer releaseBounds(lbs)

	out := make(map[int][]ItemResult, len(sorted))
	for _, h := range sorted {
		out[h] = make([]ItemResult, len(ix.p.ELV))
	}

	// Filter phase: per item query, union the per-horizon filters into
	// one need mask (a candidate is verified when any horizon keeps it)
	// with the per-horizon thresholds derived on their own candidate
	// ranges. The early-abandon cutoff is the max threshold over
	// horizons: τ_h ≤ τ_max for every h, so a candidate abandoned at
	// τ_max has true distance > τ_max ≥ τ_h and cannot be among any
	// horizon's k nearest — the seeds backing each τ_h all have true
	// distance ≤ τ_h and survive fully computed.
	n := len(ix.c)
	tasks := make([]*verifyTask, len(ix.p.ELV))
	defer releaseTaskDists(tasks)
	var launch []*verifyTask
	for i, d := range ix.p.ELV {
		nPos := len(lbs[i])
		if nPos == 0 {
			continue
		}
		query := ix.c[n-d:]
		need := make([]bool, nPos)
		tauMax := math.Inf(-1)
		var seeds []seedCand
		any := false
		for _, h := range sorted {
			maxT := n - d - h
			if maxT >= nPos {
				maxT = nPos - 1
			}
			if maxT < 0 {
				continue
			}
			tau, hSeeds, err := ix.threshold(d, query, lbs[i][:maxT+1], k)
			if err != nil {
				return nil, err
			}
			seeds = append(seeds, hSeeds...)
			if tau > tauMax {
				tauMax = tau
			}
			for t := 0; t <= maxT; t++ {
				if lbs[i][t] <= tau {
					need[t] = true
					any = true
				}
			}
		}
		if !any {
			continue
		}
		t := &verifyTask{d: d, query: query, lbs: lbs[i], need: need, cutoff: ix.abandonCutoff(tauMax), seeds: seeds}
		tasks[i] = t
		launch = append(launch, t)
	}
	if err := ix.runVerify(ctx, launch, k); err != nil {
		return nil, err
	}
	ix.finishQuality(launch)

	inf := math.Inf(1)
	for i, d := range ix.p.ELV {
		t := tasks[i]
		var dists []float64
		if t != nil {
			ix.stats.Unfiltered += t.unfiltered
			if i < len(ix.stats.PerItem) {
				ix.stats.PerItem[i].Unfiltered = t.unfiltered
			}
			dists = t.dists
		} else {
			dists = memsys.GetFloats(len(lbs[i]))
			for j := range dists {
				dists[j] = inf
			}
			defer memsys.PutFloats(dists)
		}
		for _, h := range sorted {
			maxT := n - d - h
			if maxT >= len(dists) {
				maxT = len(dists) - 1
			}
			var neighbors []Neighbor
			if maxT >= 0 {
				neighbors, err = ix.selectKRange(dists[:maxT+1], k)
				if err != nil {
					return nil, err
				}
			}
			out[h][i] = ItemResult{D: d, Neighbors: neighbors}
			if h == hMin {
				prev := make([]int, len(neighbors))
				for j, nb := range neighbors {
					prev[j] = nb.T
				}
				ix.prevNN[d] = prev
			}
		}
	}
	return out, nil
}

// selectKRange selects the k nearest among the verified candidates in
// the given range, honouring MinSeparation like selectK.
func (ix *Index) selectKRange(dists []float64, k int) ([]Neighbor, error) {
	return ix.selectK(dists, k)
}
