package timeseries

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCopiesInput(t *testing.T) {
	src := []float64{1, 2, 3}
	s := New("a", src)
	src[0] = 99
	if s.At(0) != 1 {
		t.Fatal("New must copy its input")
	}
	if s.ID() != "a" || s.Len() != 3 {
		t.Fatal("ID/Len wrong")
	}
}

func TestAppendAndValues(t *testing.T) {
	s := New("a", nil)
	s.Append(1)
	s.Append(2)
	if s.Len() != 2 || s.Values()[1] != 2 {
		t.Fatal("Append/Values wrong")
	}
}

func TestSegmentAndSuffix(t *testing.T) {
	s := New("a", []float64{0, 1, 2, 3, 4})
	seg, err := s.Segment(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(seg) != 3 || seg[0] != 1 || seg[2] != 3 {
		t.Fatalf("Segment = %v", seg)
	}
	suf, err := s.Suffix(2)
	if err != nil {
		t.Fatal(err)
	}
	if suf[0] != 3 || suf[1] != 4 {
		t.Fatalf("Suffix = %v", suf)
	}
	for _, bad := range [][2]int{{-1, 2}, {0, 0}, {3, 3}} {
		if _, err := s.Segment(bad[0], bad[1]); !errors.Is(err, ErrBounds) {
			t.Fatalf("Segment(%d,%d) err = %v, want ErrBounds", bad[0], bad[1], err)
		}
	}
}

func TestTruncateAndSplit(t *testing.T) {
	s := New("a", []float64{0, 1, 2, 3})
	head, tail, err := s.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	if head.Len() != 3 || tail.Len() != 1 || tail.At(0) != 3 {
		t.Fatal("Split wrong")
	}
	head.Append(9) // independence
	if s.Len() != 4 {
		t.Fatal("Split must copy")
	}
	if err := s.Truncate(2); err != nil || s.Len() != 2 {
		t.Fatal("Truncate wrong")
	}
	if err := s.Truncate(5); !errors.Is(err, ErrBounds) {
		t.Fatal("Truncate bounds")
	}
	if _, _, err := s.Split(-1); !errors.Is(err, ErrBounds) {
		t.Fatal("Split bounds")
	}
}

func TestSummarize(t *testing.T) {
	st, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if st.Mean != 5 || st.Std != 2 {
		t.Fatalf("Summarize = %+v", st)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("expected ErrEmpty")
	}
}

func TestZNormalize(t *testing.T) {
	z := ZNormalize([]float64{1, 2, 3})
	st, _ := Summarize(z)
	if math.Abs(st.Mean) > 1e-12 || math.Abs(st.Std-1) > 1e-12 {
		t.Fatalf("z-normalized stats = %+v", st)
	}
	zc := ZNormalize([]float64{5, 5, 5})
	for _, v := range zc {
		if v != 0 {
			t.Fatal("constant series should normalize to zeros")
		}
	}
	if len(ZNormalize(nil)) != 0 {
		t.Fatal("empty input should yield empty output")
	}
}

func TestQuickZNormalizeStats(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()*10 + 3
		}
		z := ZNormalize(v)
		st, err := Summarize(z)
		if err != nil {
			return false
		}
		return math.Abs(st.Mean) < 1e-9 && math.Abs(st.Std-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizerRoundTrip(t *testing.T) {
	n, err := NewNormalizer([]float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	v := 17.3
	if got := n.Invert(n.Apply(v)); math.Abs(got-v) > 1e-12 {
		t.Fatalf("round trip %v -> %v", v, got)
	}
	if n.Stats().Mean != 20 {
		t.Fatal("stats wrong")
	}
	// Variance scales by Std².
	if math.Abs(n.InvertVariance(1)-n.Stats().Std*n.Stats().Std) > 1e-12 {
		t.Fatal("InvertVariance wrong")
	}
	if _, err := NewNormalizer(nil); err == nil {
		t.Fatal("expected error for empty fit")
	}
	cn, _ := NewNormalizer([]float64{4, 4})
	if cn.Apply(7) != 0 {
		t.Fatal("constant normalizer should map to 0")
	}
}

func TestResample(t *testing.T) {
	up, err := Resample([]float64{0, 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.5, 1, 1.5, 2}
	for i := range want {
		if math.Abs(up[i]-want[i]) > 1e-12 {
			t.Fatalf("Resample up = %v", up)
		}
	}
	down, err := Resample([]float64{0, 1, 2, 3, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if down[0] != 0 || down[1] != 2 || down[2] != 4 {
		t.Fatalf("Resample down = %v", down)
	}
	one, err := Resample([]float64{3, 9}, 1)
	if err != nil || one[0] != 3 {
		t.Fatalf("Resample to 1 = %v err=%v", one, err)
	}
	if _, err := Resample(nil, 3); !errors.Is(err, ErrEmpty) {
		t.Fatal("expected ErrEmpty")
	}
	if _, err := Resample([]float64{1}, 0); err == nil {
		t.Fatal("expected error for n=0")
	}
}

// Property: resampling preserves endpoints and stays within range.
func TestQuickResampleEndpoints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		m := 2 + rng.Intn(50)
		v := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range v {
			v[i] = rng.NormFloat64()
			lo = math.Min(lo, v[i])
			hi = math.Max(hi, v[i])
		}
		out, err := Resample(v, m)
		if err != nil {
			return false
		}
		if math.Abs(out[0]-v[0]) > 1e-12 || math.Abs(out[m-1]-v[n-1]) > 1e-9 {
			return false
		}
		for _, o := range out {
			if o < lo-1e-12 || o > hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFillMissing(t *testing.T) {
	nan := math.NaN()
	v := []float64{nan, 1, nan, nan, 4, nan}
	n, err := FillMissing(v)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("filled %d, want 4", n)
	}
	want := []float64{1, 1, 2, 3, 4, 4}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Fatalf("FillMissing = %v, want %v", v, want)
		}
	}
	if _, err := FillMissing([]float64{nan, nan}); err == nil {
		t.Fatal("expected error for all-missing input")
	}
	if _, err := FillMissing(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("expected ErrEmpty")
	}
	clean := []float64{1, 2}
	if n, err := FillMissing(clean); err != nil || n != 0 {
		t.Fatal("clean input should fill nothing")
	}
}
