// Package load is the SMiLer load-generation and soak subsystem: it
// drives a live smiler-server (one node or a cluster) over HTTP with a
// configurable synthetic workload and measures what a client actually
// experiences — per-op p50/p99/p999 latency, throughput, error and
// degraded-response rates — against declared SLOs.
//
// The workload model (in the spirit of aistore's aisloader):
//
//   - Population: N distinct sensors, each a deterministic lazy
//     datasets.Stream (constant memory per sensor, so 10⁵–10⁶ streams
//     fit in loader RAM). Setup registers them with a short bootstrap
//     history; the run phase streams the continuation of each series.
//   - Mix: observe:forecast ratio; forecast horizons drawn from a
//     weighted distribution.
//   - Arrival process: closed-loop (a fixed worker pool issuing
//     back-to-back requests — throughput finds its own level) or
//     open-loop Poisson / bursty (arrivals scheduled by wall clock
//     independent of completions — the honest way to measure tail
//     latency under a target rate, with queueing delay charged to the
//     op so coordinated omission cannot hide overload).
//   - Phases: an optional linear ramp, then a steady phase that is the
//     measurement window (SLOs are judged on steady-phase stats). A
//     soak is simply a long steady phase.
//
// Results stream as periodic progress lines and land in a
// machine-readable report (BENCH_cluster.json); see docs/LOADER.md.
package load

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"smiler/internal/datasets"
)

// Arrival selects how ops are injected.
type Arrival int

const (
	// ClosedLoop runs Concurrency workers back-to-back: each worker
	// issues its next op as soon as the previous one completes, so the
	// offered load self-regulates to what the server can absorb.
	ClosedLoop Arrival = iota
	// Poisson schedules arrivals as an open-loop Poisson process at
	// Rate ops/s, independent of completions.
	Poisson
	// Bursty is an on/off-modulated Poisson process: rate
	// Rate×BurstFactor for BurstDuty of each BurstPeriod, and a
	// compensating low rate otherwise, keeping the long-run mean at
	// Rate.
	Bursty
)

func (a Arrival) String() string {
	switch a {
	case ClosedLoop:
		return "closed"
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	default:
		return fmt.Sprintf("Arrival(%d)", int(a))
	}
}

// ParseArrival maps flag spellings onto arrival processes.
func ParseArrival(s string) (Arrival, error) {
	switch strings.ToLower(s) {
	case "closed", "closed-loop":
		return ClosedLoop, nil
	case "poisson", "open", "open-loop":
		return Poisson, nil
	case "bursty", "burst":
		return Bursty, nil
	}
	return 0, fmt.Errorf("load: unknown arrival process %q (closed|poisson|bursty)", s)
}

// WeightedHorizon is one entry of the forecast-horizon distribution.
type WeightedHorizon struct {
	H int `json:"h"`
	W int `json:"w"`
}

// ParseHorizons parses a weighted horizon distribution: "1" (always
// h=1), "1,3,6" (uniform over the three), "1:8,3:1,6:1" (weighted).
func ParseHorizons(s string) ([]WeightedHorizon, error) {
	if strings.TrimSpace(s) == "" {
		return []WeightedHorizon{{H: 1, W: 1}}, nil
	}
	var out []WeightedHorizon
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		hs, ws, weighted := strings.Cut(part, ":")
		h, err := strconv.Atoi(hs)
		if err != nil || h <= 0 {
			return nil, fmt.Errorf("load: bad horizon %q", part)
		}
		w := 1
		if weighted {
			w, err = strconv.Atoi(ws)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("load: bad horizon weight %q", part)
			}
		}
		out = append(out, WeightedHorizon{H: h, W: w})
	}
	return out, nil
}

// ParseMix parses an "observe:forecast" weight pair, e.g. "10:1".
// "1:0" is pure ingest; "0:1" pure forecasting.
func ParseMix(s string) (observe, forecast int, err error) {
	os, fs, ok := strings.Cut(strings.TrimSpace(s), ":")
	if !ok {
		return 0, 0, fmt.Errorf("load: bad mix %q (want observe:forecast, e.g. 10:1)", s)
	}
	observe, err = strconv.Atoi(strings.TrimSpace(os))
	if err != nil || observe < 0 {
		return 0, 0, fmt.Errorf("load: bad observe weight in mix %q", s)
	}
	forecast, err = strconv.Atoi(strings.TrimSpace(fs))
	if err != nil || forecast < 0 {
		return 0, 0, fmt.Errorf("load: bad forecast weight in mix %q", s)
	}
	if observe+forecast == 0 {
		return 0, 0, fmt.Errorf("load: mix %q has zero total weight", s)
	}
	return observe, forecast, nil
}

// Config describes one load run. Validate fills defaults.
type Config struct {
	// Targets are the base URLs of the nodes to drive. Ops are spread
	// round-robin; per-sensor ownership hints returned by cluster nodes
	// are honored by the underlying client, so after warm-up most
	// requests go straight to the owning node.
	Targets []string

	// Sensors is the number of distinct sensors in the population.
	Sensors int
	// Kind selects the synthetic corpus (road|mall|net).
	Kind datasets.Kind
	// Seed makes the whole workload — sensor streams, op mix draws,
	// arrival jitter — deterministic.
	Seed int64
	// History is the bootstrap history length registered per sensor
	// (default 128; the system's minimum is ELV_max+ω = 112 under
	// paper defaults).
	History int
	// Prefix names sensors "<prefix>-0000001"... (default "load").
	Prefix string

	// ObserveWeight:ForecastWeight is the op mix (default 10:1).
	ObserveWeight  int
	ForecastWeight int
	// Horizons is the forecast-horizon distribution (default h=1).
	Horizons []WeightedHorizon

	// Arrival is the injection process (default ClosedLoop).
	Arrival Arrival
	// Rate is the open-loop target in ops/s (required for
	// Poisson/Bursty).
	Rate float64
	// Concurrency is the worker count: the closed-loop population, or
	// the open-loop in-flight cap (default 16).
	Concurrency int
	// BurstFactor/BurstPeriod/BurstDuty shape the Bursty process
	// (defaults 4×, 10s, 0.2; Factor×Duty must be ≤ 1).
	BurstFactor float64
	BurstPeriod time.Duration
	BurstDuty   float64

	// Ramp linearly scales offered load from zero over this window
	// before the steady phase (default 0).
	Ramp time.Duration
	// Duration is the steady (measurement) phase length (default 30s).
	// A soak is just a long Duration.
	Duration time.Duration

	// SLOs are judged against steady-phase stats after the run.
	SLOs []SLO

	// SetupConcurrency parallelizes sensor registration (default 32).
	SetupConcurrency int
	// SkipSetup assumes the sensor population is already registered
	// (reruns against a warm server).
	SkipSetup bool
	// Teardown removes the registered sensors after the run.
	Teardown bool

	// ProgressEvery is the progress-line period (default 5s; 0
	// disables).
	ProgressEvery time.Duration
	// Progress receives progress lines (default io.Discard).
	Progress io.Writer
	// RetryAttempts bounds client retries per op (default 1 = measure
	// raw behaviour; raise it to measure what a retrying client
	// experiences, including honored Retry-After backoff).
	RetryAttempts int
}

// Validate checks the configuration and fills defaults in place.
func (c *Config) Validate() error {
	if len(c.Targets) == 0 {
		return errors.New("load: no targets")
	}
	for _, t := range c.Targets {
		if t == "" {
			return errors.New("load: empty target URL")
		}
	}
	if c.Sensors <= 0 {
		return fmt.Errorf("load: sensors %d must be positive", c.Sensors)
	}
	if c.Kind < datasets.Road || c.Kind > datasets.Net {
		return fmt.Errorf("load: unknown corpus kind %d", int(c.Kind))
	}
	if c.History == 0 {
		c.History = 128
	}
	if c.History < 0 {
		return fmt.Errorf("load: negative history %d", c.History)
	}
	if c.Prefix == "" {
		c.Prefix = "load"
	}
	if strings.ContainsAny(c.Prefix, "/ ") {
		return fmt.Errorf("load: prefix %q must not contain '/' or spaces", c.Prefix)
	}
	if c.ObserveWeight == 0 && c.ForecastWeight == 0 {
		c.ObserveWeight, c.ForecastWeight = 10, 1
	}
	if c.ObserveWeight < 0 || c.ForecastWeight < 0 {
		return errors.New("load: negative mix weight")
	}
	if len(c.Horizons) == 0 {
		c.Horizons = []WeightedHorizon{{H: 1, W: 1}}
	}
	for _, wh := range c.Horizons {
		if wh.H <= 0 || wh.W <= 0 {
			return fmt.Errorf("load: bad horizon entry %+v", wh)
		}
	}
	switch c.Arrival {
	case ClosedLoop:
	case Poisson, Bursty:
		if c.Rate <= 0 {
			return fmt.Errorf("load: %v arrival needs -rate > 0", c.Arrival)
		}
	default:
		return fmt.Errorf("load: invalid arrival %d", int(c.Arrival))
	}
	if c.Concurrency == 0 {
		c.Concurrency = 16
	}
	if c.Concurrency < 0 {
		return fmt.Errorf("load: negative concurrency %d", c.Concurrency)
	}
	if c.Arrival == Bursty {
		if c.BurstFactor == 0 {
			c.BurstFactor = 4
		}
		if c.BurstPeriod == 0 {
			c.BurstPeriod = 10 * time.Second
		}
		if c.BurstDuty == 0 {
			c.BurstDuty = 0.2
		}
		if c.BurstFactor < 1 || c.BurstDuty <= 0 || c.BurstDuty >= 1 {
			return fmt.Errorf("load: bad burst shape factor=%v duty=%v", c.BurstFactor, c.BurstDuty)
		}
		if c.BurstFactor*c.BurstDuty > 1 {
			return fmt.Errorf("load: burst factor %v × duty %v exceeds 1 — no budget left for the off phase",
				c.BurstFactor, c.BurstDuty)
		}
	}
	if c.Ramp < 0 {
		return fmt.Errorf("load: negative ramp %v", c.Ramp)
	}
	if c.Duration == 0 {
		c.Duration = 30 * time.Second
	}
	if c.Duration < 0 {
		return fmt.Errorf("load: negative duration %v", c.Duration)
	}
	if c.SetupConcurrency == 0 {
		c.SetupConcurrency = 32
	}
	if c.SetupConcurrency < 0 {
		return fmt.Errorf("load: negative setup concurrency %d", c.SetupConcurrency)
	}
	if c.ProgressEvery < 0 {
		return fmt.Errorf("load: negative progress period %v", c.ProgressEvery)
	}
	if c.Progress == nil {
		c.Progress = io.Discard
	}
	if c.RetryAttempts == 0 {
		c.RetryAttempts = 1
	}
	if c.RetryAttempts < 0 {
		return fmt.Errorf("load: negative retry attempts %d", c.RetryAttempts)
	}
	for _, s := range c.SLOs {
		if err := s.validate(); err != nil {
			return err
		}
	}
	return nil
}
