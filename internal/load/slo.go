package load

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// SLO is one declared service-level objective, judged against the
// steady phase after the run. Latency objectives are per op type
// ("observe.p99<=50ms", "forecast.p999<=2s"); rate objectives may be
// per-op or aggregate ("forecast.error_rate<=0.01",
// "degraded_rate<=0.2"). Rate objectives also accept ">=" for floors,
// which is how quality-ladder targets are spelled
// ("forecast.exact_rate>=0.95"). Supported metrics: p50, p90, p99,
// p999, mean, error_rate, degraded_rate, exact_rate,
// progressive_rate, fallback_rate.
type SLO struct {
	// Op is "observe", "forecast", or "" for the phase aggregate
	// (rates only — there is no aggregate latency distribution).
	Op string `json:"op,omitempty"`
	// Metric is the judged quantity.
	Metric string `json:"metric"`
	// Cmp is the comparison direction: "<=" (the default, empty in
	// JSON) bounds from above; ">=" demands a floor and is only legal
	// on rate metrics.
	Cmp string `json:"cmp,omitempty"`
	// Bound is the inclusive bound: seconds for latency metrics, a
	// ratio in [0,1] for rates.
	Bound float64 `json:"bound"`
	// Expr preserves the flag spelling for reports.
	Expr string `json:"expr"`
}

func (s SLO) validate() error {
	switch s.Metric {
	case "p50", "p90", "p99", "p999", "mean":
		if s.Op == "" {
			return fmt.Errorf("load: SLO %q: latency objectives need an op (observe.%s or forecast.%s)",
				s.Expr, s.Metric, s.Metric)
		}
		if s.Cmp == ">=" {
			return fmt.Errorf("load: SLO %q: latency objectives are ceilings; \">=\" is for rate floors", s.Expr)
		}
	case "error_rate", "degraded_rate", "exact_rate", "progressive_rate", "fallback_rate":
	default:
		return fmt.Errorf("load: SLO %q: unknown metric %q", s.Expr, s.Metric)
	}
	switch s.Op {
	case "", "observe", "forecast":
	default:
		return fmt.Errorf("load: SLO %q: unknown op %q", s.Expr, s.Op)
	}
	if s.Bound < 0 {
		return fmt.Errorf("load: SLO %q: negative bound", s.Expr)
	}
	return nil
}

// ParseSLOs parses a comma-separated objective list, e.g.
//
//	"observe.p99<=50ms,forecast.p999<=2s,error_rate<=0.001,forecast.exact_rate>=0.95"
//
// Latency bounds are Go durations; rate bounds are plain ratios.
func ParseSLOs(s string) ([]SLO, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []SLO
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		cmp := "<="
		lhs, rhs, ok := strings.Cut(part, "<=")
		if !ok {
			cmp = ">="
			lhs, rhs, ok = strings.Cut(part, ">=")
		}
		if !ok {
			return nil, fmt.Errorf("load: bad SLO %q (want metric<=bound or metric>=bound)", part)
		}
		lhs, rhs = strings.TrimSpace(lhs), strings.TrimSpace(rhs)
		slo := SLO{Expr: part, Metric: lhs}
		if cmp == ">=" {
			slo.Cmp = cmp
		}
		if op, metric, hasOp := strings.Cut(lhs, "."); hasOp {
			slo.Op, slo.Metric = op, metric
		}
		switch slo.Metric {
		case "error_rate", "degraded_rate", "exact_rate", "progressive_rate", "fallback_rate":
			b, err := strconv.ParseFloat(rhs, 64)
			if err != nil {
				return nil, fmt.Errorf("load: bad SLO bound %q", part)
			}
			slo.Bound = b
		default:
			d, err := time.ParseDuration(rhs)
			if err != nil {
				return nil, fmt.Errorf("load: bad SLO bound %q (latency bounds are durations, e.g. 250ms)", part)
			}
			slo.Bound = d.Seconds()
		}
		if err := slo.validate(); err != nil {
			return nil, err
		}
		out = append(out, slo)
	}
	return out, nil
}

// SLOResult is one judged objective in the report.
type SLOResult struct {
	SLO
	// Actual is the measured value (same units as Bound).
	Actual float64 `json:"actual"`
	// OK reports Actual <= Bound (or >= for floor objectives).
	OK bool `json:"ok"`
	// Skipped marks an objective with no matching traffic (e.g. a
	// forecast SLO under a 1:0 mix); skipped objectives do not violate.
	Skipped bool `json:"skipped,omitempty"`
}

// evaluate judges every objective against one phase summary.
func evaluate(slos []SLO, phase PhaseSummary) (results []SLOResult, violations int) {
	for _, s := range slos {
		r := SLOResult{SLO: s}
		var sum OpSummary
		if s.Op == "" {
			sum = phase.Total
		} else {
			var ok bool
			sum, ok = phase.Ops[s.Op]
			if !ok {
				r.Skipped = true
				results = append(results, r)
				continue
			}
		}
		switch s.Metric {
		case "p50":
			r.Actual = sum.P50Ms / 1000
		case "p90":
			r.Actual = sum.P90Ms / 1000
		case "p99":
			r.Actual = sum.P99Ms / 1000
		case "p999":
			r.Actual = sum.P999Ms / 1000
		case "mean":
			r.Actual = sum.MeanMs / 1000
		case "error_rate":
			r.Actual = sum.ErrorRate
		case "degraded_rate":
			r.Actual = sum.DegradedRate
		case "exact_rate":
			r.Actual = sum.ExactRate
		case "progressive_rate":
			r.Actual = sum.ProgressiveRate
		case "fallback_rate":
			r.Actual = sum.FallbackRate
		}
		if s.Cmp == ">=" {
			r.OK = r.Actual >= s.Bound
		} else {
			r.OK = r.Actual <= s.Bound
		}
		if !r.OK {
			violations++
		}
		results = append(results, r)
	}
	return results, violations
}
