// Backbone traffic forecasting — the NET scenario: forecast a network
// link's traffic volume across a ladder of horizons for capacity
// planning, and inspect how the adaptive ensemble allocates weight
// (and puts weak predictors to sleep) as the stream evolves.
//
//	go run ./examples/netforecast
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"smiler"
	"smiler/internal/datasets"
)

const warmPoints = 2600 // ~9 days of 5-minute samples

func main() {
	series, err := datasets.Generate(datasets.Config{
		Kind: datasets.Net, Sensors: 1, Days: 10, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	link := series[0]

	sys, err := smiler.New(smiler.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	if err := sys.AddSensor(link.ID(), link.Values()[:warmPoints]); err != nil {
		log.Fatal(err)
	}

	// Stream half an hour of live samples so the auto-tuner adapts.
	const liveSteps = 6
	var mae, scale float64
	for t := 0; t < liveSteps; t++ {
		f, err := sys.Predict(link.ID(), 1)
		if err != nil {
			log.Fatal(err)
		}
		truth := link.At(warmPoints + t)
		mae += math.Abs(f.Mean - truth)
		scale += math.Abs(truth)
		if err := sys.Observe(link.ID(), truth); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("link %s: 5-minute-ahead relative error %.2f%% over %d live steps\n\n",
		link.ID(), 100*mae/scale, liveSteps)

	// Capacity-planning ladder: 5 min to 2.5 h ahead, served by one
	// shared kNN search (PredictHorizons).
	ladder := []int{1, 3, 6, 12, 30}
	fs, err := sys.PredictHorizons(link.ID(), ladder)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("horizon   forecast (Gbit)   95% band")
	for _, h := range ladder {
		f := fs[h]
		lo, hi := f.Interval(1.96)
		fmt.Printf("%4d min   %10.3f      [%.3f, %.3f]\n",
			5*h, f.Mean/1e9, lo/1e9, hi/1e9)
	}

	// Where did the auto-tuner put its trust?
	w, err := sys.EnsembleWeights(link.ID())
	if err != nil {
		log.Fatal(err)
	}
	type kv struct {
		k, d int
		w    float64
	}
	var cells []kv
	for kd, v := range w {
		cells = append(cells, kv{kd[0], kd[1], v})
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].w > cells[j].w })
	fmt.Println("\nensemble weights (sleeping cells show 0):")
	for _, c := range cells {
		bar := ""
		for i := 0; i < int(c.w*40); i++ {
			bar += "#"
		}
		fmt.Printf("  k=%2d d=%2d  %.3f %s\n", c.k, c.d, c.w, bar)
	}
}
