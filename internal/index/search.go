package index

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"smiler/internal/dtw"
	"smiler/internal/gpusim"
	"smiler/internal/memsys"
)

// Neighbor is one kNN result: the segment C[T : T+D] at distance Dist
// from the item query of length D. Its h-step-ahead label is the
// observation C[T+D-1+h].
type Neighbor struct {
	T    int
	Dist float64
}

// ItemResult holds the kNN set of one item query.
type ItemResult struct {
	// D is the item query length (an entry of ELV).
	D int
	// Neighbors is sorted ascending by distance (ties by T). It may be
	// shorter than k when the history has fewer valid candidates.
	Neighbors []Neighbor
}

// verifyChunk is the number of candidate positions one verification
// block processes (two-phase filter/verify per Section 4.4 keeps the
// block's lanes homogeneous).
const verifyChunk = 256

// Search answers the Suffix kNN Search for the current master query:
// for every item query length in ELV it returns the k nearest
// historical segments under banded DTW, considering only candidates
// whose h-step-ahead label already exists (t ≤ |C| − d − h). The
// result slice is ordered like ELV.
func (ix *Index) Search(k, h int) ([]ItemResult, error) {
	return ix.SearchCtx(context.Background(), k, h)
}

// SearchCtx is Search with a context. In exact mode an expired deadline
// surfaces as ctx.Err() at verify-chunk granularity (the fused launch
// aborts within one in-flight chunk per worker instead of overshooting
// by the whole verification phase). In anytime mode (SetAnytime) the
// deadline instead stops the cost-ordered verification rounds and the
// call returns the current best-so-far kNN sets with quality counters
// in Stats().
func (ix *Index) SearchCtx(ctx context.Context, k, h int) ([]ItemResult, error) {
	if ix.closed {
		return nil, errors.New("index: closed")
	}
	if k <= 0 {
		return nil, fmt.Errorf("index: k=%d must be positive", k)
	}
	if h <= 0 {
		return nil, fmt.Errorf("index: horizon h=%d must be positive", h)
	}
	ix.stats = SearchStats{}

	lbs, err := ix.groupLevelLowerBounds(ctx, h)
	if err != nil {
		return nil, err
	}
	defer releaseBounds(lbs)

	// Filter phase per item query (threshold derivation is cheap and
	// seeds from the previous step's kNN), then ONE fused verification
	// launch covering every item query's chunks, then selection.
	n := len(ix.c)
	results := make([]ItemResult, len(ix.p.ELV))
	tasks := make([]*verifyTask, len(ix.p.ELV))
	defer releaseTaskDists(tasks)
	var launch []*verifyTask
	for i, d := range ix.p.ELV {
		results[i] = ItemResult{D: d}
		if len(lbs[i]) == 0 {
			continue
		}
		query := ix.c[n-d:]
		tau, seeds, err := ix.threshold(d, query, lbs[i], k)
		if err != nil {
			return nil, err
		}
		t := &verifyTask{d: d, query: query, lbs: lbs[i], tau: tau, cutoff: ix.abandonCutoff(tau), seeds: seeds}
		tasks[i] = t
		launch = append(launch, t)
	}
	if err := ix.runVerify(ctx, launch, k); err != nil {
		return nil, err
	}
	ix.finishQuality(launch)
	for i, d := range ix.p.ELV {
		t := tasks[i]
		if t == nil {
			continue
		}
		ix.stats.Unfiltered += t.unfiltered
		if i < len(ix.stats.PerItem) {
			ix.stats.PerItem[i].Unfiltered = t.unfiltered
		}
		neighbors, err := ix.selectK(t.dists, k)
		if err != nil {
			return nil, err
		}
		results[i].Neighbors = neighbors
		prev := make([]int, len(neighbors))
		for j, nb := range neighbors {
			prev[j] = nb.T
		}
		ix.prevNN[d] = prev
	}
	return results, nil
}

// abandonCutoff returns the early-abandon cutoff threaded into DTW
// verification: τ itself when the exactness argument holds — the
// threshold construction guarantees at least k candidates with true
// distance ≤ τ (when fewer exist, every candidate was a seed and τ
// bounds them all), and ties at τ survive because abandonment fires
// only on strictly greater column minima — and +Inf when the separated
// selection needs exact distances for every unfiltered candidate or
// the ablation knob disables it.
func (ix *Index) abandonCutoff(tau float64) float64 {
	if ix.p.MinSeparation > 1 || ix.p.DisableEarlyAbandon {
		return math.Inf(1)
	}
	return tau
}

// ComputeLowerBounds exposes the group-level lower-bound pass on its
// own: one bound slice per ELV entry, indexed by candidate position
// (+Inf where no valid candidate exists). The Fig. 8 experiment uses
// it to compare LBen production with and without the window-level
// index.
func (ix *Index) ComputeLowerBounds(h int) ([][]float64, error) {
	if ix.closed {
		return nil, errors.New("index: closed")
	}
	if h <= 0 {
		return nil, fmt.Errorf("index: horizon h=%d must be positive", h)
	}
	ix.stats = SearchStats{}
	return ix.groupLevelLowerBounds(context.Background(), h)
}

// groupLevelLowerBounds runs the group-level kernel: one block per CSG
// identifier b ∈ [0, ω), shift-summing window-level posting lists to
// produce, for every item query i and candidate position t, the window
// enhanced lower bound LBw (Theorem 4.3, Algorithm 1). Positions whose
// label does not exist yet are left at +Inf.
func (ix *Index) groupLevelLowerBounds(ctx context.Context, h int) ([][]float64, error) {
	wallStart := time.Now()
	defer func() { ix.stats.LowerBoundWallSeconds += time.Since(wallStart).Seconds() }()
	n := len(ix.c)
	omega := ix.p.Omega
	inf := math.Inf(1)

	lbs := make([][]float64, len(ix.p.ELV))
	maxT := make([]int, len(ix.p.ELV))
	for i, d := range ix.p.ELV {
		maxT[i] = n - d - h // last candidate start with an existing label
		if maxT[i] < 0 {
			maxT[i] = -1
		}
		// History-length bound rows are the Search Step's biggest
		// transient; Search/SearchMulti return them to the pool when the
		// kNN sets have been extracted.
		lbs[i] = memsys.GetFloats(maxT[i] + 1)
		for t := range lbs[i] {
			lbs[i][t] = inf
		}
	}

	before := ix.dev.SimSeconds()
	err := ix.dev.Launch(omega, func(blk *gpusim.Block) error {
		// Per-block deadline check: an expired context aborts the pass
		// within the blocks already in flight.
		if err := ctx.Err(); err != nil {
			return err
		}
		b := blk.ID
		// Precompute, per item query, the CSG size m_i = ⌊(d_i−b)/ω⌋
		// and remainder used by the alignment formula (Lemma 4.1).
		m := make([]int, len(ix.p.ELV))
		rem := make([]int, len(ix.p.ELV))
		for i, d := range ix.p.ELV {
			m[i] = (d - b) / omega
			rem[i] = (d - b) % omega
		}
		maxJ := (ix.nSW - 1 - b) / omega // deepest window of CSG_b in MQ
		for r := 0; r < ix.nDW; r++ {
			var sumEQ, sumEC float64
			jHi := maxJ
			if r < jHi {
				jHi = r
			}
			for j := 0; j <= jHi; j++ {
				s := ix.slot(b + j*omega)
				sumEQ += ix.postEQ[s][r-j]
				sumEC += ix.postEC[s][r-j]
				blk.GlobalAccess(2)
				blk.Compute(2)
				for i := range ix.p.ELV {
					if m[i] != j+1 {
						continue
					}
					t := (r-j)*omega - rem[i]
					if t < 0 || t > maxT[i] {
						continue
					}
					var lb float64
					switch ix.p.LB {
					case LBModeEQ:
						lb = sumEQ
					case LBModeEC:
						lb = sumEC
					default:
						lb = math.Max(sumEQ, sumEC)
					}
					lbs[i][t] = lb
					blk.GlobalAccess(1)
				}
			}
		}
		return nil
	})
	if err != nil {
		releaseBounds(lbs) // deadline aborts are routine; don't leak the pooled rows
		return nil, err
	}
	ix.stats.LowerBoundSimSeconds += ix.dev.SimSeconds() - before
	ix.stats.PerItem = make([]ItemStats, len(ix.p.ELV))
	for i := range lbs {
		cnt := 0
		for _, v := range lbs[i] {
			if !math.IsInf(v, 1) {
				cnt++
			}
		}
		ix.stats.PerItem[i] = ItemStats{D: ix.p.ELV[i], Candidates: cnt}
		ix.stats.Candidates += cnt
	}
	return lbs, nil
}

// seedCand is one threshold seed: a candidate position whose exact DTW
// distance to the current query was computed while deriving τ. In
// anytime mode the seeds prefill the verification output — they are the
// previous step's kNN set, so progressive search starts from an
// already-valid best-so-far answer before the first round runs.
type seedCand struct {
	t    int
	dist float64
}

// threshold derives the filter threshold τ for one item query. During
// continuous prediction it reuses the previous step's kNN positions
// (their DTW distances to the *current* query upper-bound the new k-th
// NN distance); on the first query it verifies the k candidates with
// the smallest lower bounds. Both variants are exact: at least k
// candidates have true distance ≤ τ, so no true neighbour is filtered.
// The returned seeds carry those exact distances (each ≤ τ, so the
// τ-cutoff verification pass would reproduce them bit-identically).
func (ix *Index) threshold(d int, query []float64, lbs []float64, k int) (float64, []seedCand, error) {
	var seeds []int
	if prev, ok := ix.prevNN[d]; ok {
		for _, t := range prev {
			if t <= len(lbs)-1 { // still label-valid
				seeds = append(seeds, t)
			}
		}
	}
	if len(seeds) < k {
		// Initial query (or too few reusable positions): take the k
		// smallest lower bounds as seeds.
		seeds = seeds[:0]
		var sel []gpusim.KSelectResult
		if err := ix.dev.Launch(1, func(blk *gpusim.Block) error {
			sel = gpusim.KSelectBlock(blk, lbs, k)
			return nil
		}); err != nil {
			return 0, nil, err
		}
		for _, s := range sel {
			seeds = append(seeds, s.Index)
		}
	}
	if len(seeds) == 0 {
		return math.Inf(1), nil, nil
	}
	out := make([]seedCand, 0, len(seeds))
	tau := math.Inf(-1)
	rho := ix.p.Rho
	err := ix.dev.Launch(1, func(blk *gpusim.Block) error {
		if err := chargeVerifyBlock(blk, d, rho, len(seeds)); err != nil {
			return err
		}
		scratch := dtw.GetCompressedScratch(rho)
		defer dtw.PutCompressedScratch(scratch)
		for _, t := range seeds {
			dist, err := dtw.DistanceCompressed(query, ix.c[t:t+d], rho, scratch)
			if err != nil {
				return err
			}
			out = append(out, seedCand{t: t, dist: dist})
			if dist > tau {
				tau = dist
			}
		}
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	return tau, out, nil
}

// chargeVerifyBlock charges the cost model for a verification block:
// the query and the compressed warping matrix live in shared memory
// (Algorithm 2 / Appendix E), candidates stream from global memory,
// and each thread fills its candidate's d·(2ρ+1) band cells — about
// six ops per cell counting the shared-memory traffic, which is
// lane-parallel and therefore folded into the per-thread op count.
func chargeVerifyBlock(blk *gpusim.Block, d, rho, candidates int) error {
	if err := blk.AllocShared(8 * d); err != nil { // query resident
		return err
	}
	if err := blk.AllocShared(8 * dtw.CompressedScratchLen(rho)); err != nil {
		return err
	}
	blk.GlobalAccess(d * candidates)
	blk.ParallelCompute(candidates, d*(2*rho+1)*6)
	return nil
}

// releaseBounds returns pooled lower-bound rows. Nothing below the
// Search entry points retains them: verify tasks alias the rows only
// for the duration of the call, and every output (Neighbor lists,
// prevNN) is copied out.
func releaseBounds(lbs [][]float64) {
	for i, s := range lbs {
		lbs[i] = nil
		memsys.PutFloats(s)
	}
}

// releaseTaskDists returns the pooled distance rows of completed
// verify tasks.
func releaseTaskDists(tasks []*verifyTask) {
	for _, t := range tasks {
		if t != nil && t.dists != nil {
			d := t.dists
			t.dists = nil
			memsys.PutFloats(d)
		}
	}
}

// verifyTask describes one item query's slice of the fused
// verification launch: which candidates to verify (an explicit need
// mask, or the lb ≤ τ filter), the early-abandon cutoff, and the
// output distances (+Inf for filtered or abandoned candidates).
type verifyTask struct {
	d      int
	query  []float64
	lbs    []float64
	need   []bool // nil: filter by lbs[t] ≤ tau
	tau    float64
	cutoff float64 // early-abandon cutoff (+Inf disables)

	// seeds are the threshold candidates with their exact distances;
	// progressive verification prefills them (see progressive.go).
	seeds []seedCand
	// rangeMode marks an ε-range task: quality accounting compares
	// against the fixed radius tau instead of a running k-th distance.
	rangeMode bool

	dists      []float64 // out: exact DTW or +Inf
	unfiltered int       // out: candidates verified

	// Progressive outputs (anytime mode only; see verifyProgressive).
	kept       int     // candidates surviving the filter (incl. seeds)
	verified   int     // candidates with exact distances computed
	flips      int     // verified at-risk candidates that entered the set
	atRisk     int     // verified candidates that could have entered
	remaining  int     // unverified candidates still able to change the set
	minUnverLB float64 // smallest unverified lower bound (+Inf if none)
	kthDist    float64 // k-th best-so-far distance (+Inf until k found)
	complete   bool    // every kept candidate verified
}

// keep reports whether candidate position t must be verified.
func (t *verifyTask) keep(pos int) bool {
	if t.need != nil {
		return t.need[pos]
	}
	return t.lbs[pos] <= t.tau
}

// runVerify dispatches the verification phase: the classic one-launch
// fused pass in exact mode, or cost-ordered progressive rounds when
// anytime search is enabled (see progressive.go). k is the selection
// size the quality tracker compares against (0 for range tasks).
func (ix *Index) runVerify(ctx context.Context, tasks []*verifyTask, k int) error {
	if ix.any.Enabled {
		return ix.verifyProgressive(ctx, tasks, k)
	}
	return ix.verifyFused(ctx, tasks)
}

// verifyFused runs the DTW verification of every item query in ONE
// device launch: each grid block verifies one fixed-size chunk of one
// task's candidate positions, so the simulated device pays a single
// launch overhead per Search instead of one per ELV entry. Each block
// charges the cost model for the columns its candidates actually
// processed — early-abandoned lanes stream and compute only what they
// touched, with the SIMD lock-step wave cost set by the longest lane.
// The context is checked at the top of every chunk, so an expired
// deadline aborts the launch within the chunks already in flight
// instead of overshooting by the whole verification phase.
func (ix *Index) verifyFused(ctx context.Context, tasks []*verifyTask) error {
	inf := math.Inf(1)
	type chunkRef struct {
		task, lo int
	}
	var refs []chunkRef
	for ti, t := range tasks {
		n := len(t.lbs)
		t.dists = memsys.GetFloats(n)
		for i := range t.dists {
			t.dists[i] = inf
		}
		for lo := 0; lo < n; lo += verifyChunk {
			refs = append(refs, chunkRef{ti, lo})
		}
	}
	if len(refs) == 0 {
		return nil
	}
	rho := ix.p.Rho
	wallStart := time.Now()
	defer func() { ix.stats.VerifyWallSeconds += time.Since(wallStart).Seconds() }()
	before := ix.dev.SimSeconds()
	counts := make([]int, len(refs))
	err := ix.dev.Launch(len(refs), func(blk *gpusim.Block) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		ref := refs[blk.ID]
		t := tasks[ref.task]
		lo := ref.lo
		hi := lo + verifyChunk
		if hi > len(t.lbs) {
			hi = len(t.lbs)
		}
		// Count survivors first so the phases stay separate (Section 4.4).
		cnt := 0
		for pos := lo; pos < hi; pos++ {
			blk.GlobalAccess(1)
			if t.keep(pos) {
				cnt++
			}
		}
		counts[blk.ID] = cnt
		if cnt == 0 {
			return nil
		}
		d := t.d
		if err := blk.AllocShared(8 * d); err != nil { // query resident
			return err
		}
		if err := blk.AllocShared(8 * dtw.CompressedScratchLen(rho)); err != nil {
			return err
		}
		scratch := dtw.GetCompressedScratch(rho)
		defer dtw.PutCompressedScratch(scratch)
		totalCols, maxCols := 0, 0
		for pos := lo; pos < hi; pos++ {
			if !t.keep(pos) {
				continue
			}
			dist, cols, err := dtw.DistanceCompressedAbandon(t.query, ix.c[pos:pos+d], rho, t.cutoff, scratch)
			if err != nil {
				return err
			}
			t.dists[pos] = dist
			totalCols += cols
			if cols > maxCols {
				maxCols = cols
			}
		}
		// Honest abandon accounting: candidates stream only the columns
		// that were processed, and each lane fills cols·(2ρ+1) band
		// cells in lock-step waves bounded by the longest lane.
		blk.GlobalAccess(totalCols)
		blk.ParallelCompute(cnt, maxCols*(2*rho+1)*6)
		return nil
	})
	if err != nil {
		return err
	}
	ix.stats.VerifySimSeconds += ix.dev.SimSeconds() - before
	for i, ref := range refs {
		tasks[ref.task].unfiltered += counts[i]
	}
	return nil
}

// selectK picks the k nearest verified candidates. With MinSeparation
// ≤ 1 this is the exact GPU block k-selection; otherwise a greedy
// sweep over the sorted candidates enforces the separation (best-effort
// among unfiltered candidates — see Params.MinSeparation).
func (ix *Index) selectK(dists []float64, k int) ([]Neighbor, error) {
	if ix.p.MinSeparation > 1 {
		return ix.selectSeparated(dists, k), nil
	}
	var sel []gpusim.KSelectResult
	if err := ix.dev.Launch(1, func(blk *gpusim.Block) error {
		sel = gpusim.KSelectBlock(blk, dists, k)
		return nil
	}); err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(sel))
	for i, s := range sel {
		out[i] = Neighbor{T: s.Index, Dist: s.Value}
	}
	return out, nil
}

// selectSeparated greedily selects up to k nearest candidates keeping
// starts at least MinSeparation apart.
func (ix *Index) selectSeparated(dists []float64, k int) []Neighbor {
	type cand struct {
		t int
		d float64
	}
	var cands []cand
	for t, v := range dists {
		if !math.IsInf(v, 1) && !math.IsNaN(v) {
			cands = append(cands, cand{t, v})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].t < cands[j].t
	})
	sep := ix.p.MinSeparation
	var out []Neighbor
	for _, c := range cands {
		ok := true
		for _, nb := range out {
			if abs(nb.T-c.t) < sep {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, Neighbor{T: c.t, Dist: c.d})
			if len(out) == k {
				break
			}
		}
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
