// Package fault is a deterministic, seedable fault-injection registry
// for the robustness test harness. Production code registers named
// injection points at its failure seams — the WAL append/sync path,
// the checkpoint writer, the simulated-GPU kernel launch, the GP fit —
// by calling Check (or Corrupt on read paths). With no injector armed,
// a check is a single atomic load and a nil comparison, cheap enough
// to leave in every hot path.
//
// Tests arm an Injector with per-point rules: fail with an error,
// inject latency, panic, or corrupt bytes, either with a seeded
// probability or deterministically after the Nth check. The injector's
// randomness comes from one seeded source guarded by a mutex, so a
// given seed always produces the same fault schedule for a serial
// caller — the property the crash-recovery torture test relies on.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Kind selects what an armed rule does when it fires.
type Kind int

const (
	// KindError makes Check return the rule's error.
	KindError Kind = iota
	// KindLatency makes Check sleep for the rule's latency, then
	// succeed.
	KindLatency
	// KindPanic makes Check panic (exercising recovery paths).
	KindPanic
	// KindCorrupt makes Corrupt flip one byte of the data it is given;
	// Check treats it as a no-op.
	KindCorrupt
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindLatency:
		return "latency"
	case KindPanic:
		return "panic"
	case KindCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ErrInjected is the default error returned by a firing KindError rule
// (rules may carry their own).
var ErrInjected = errors.New("fault: injected failure")

// Rule arms one injection point.
type Rule struct {
	// Kind selects the fault.
	Kind Kind
	// Prob is the per-check firing probability in [0, 1]. Ignored when
	// After is set.
	Prob float64
	// After, when positive, fires deterministically on every check
	// past the After-th (1-based: After=1 fires from the first check
	// on). Takes precedence over Prob.
	After uint64
	// Once limits an After rule to firing exactly once (the crash-at-
	// a-point schedule of the torture test).
	Once bool
	// Err overrides ErrInjected for KindError rules.
	Err error
	// Latency is the injected delay for KindLatency rules.
	Latency time.Duration
}

// Injector holds the armed rules of one test run.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	rules  map[string]*armedRule
	checks map[string]uint64
	fired  map[string]uint64
}

type armedRule struct {
	Rule
	spent bool // a Once rule that already fired
}

// NewInjector builds an injector whose probabilistic rules draw from a
// source seeded with seed.
func NewInjector(seed int64) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		rules:  make(map[string]*armedRule),
		checks: make(map[string]uint64),
		fired:  make(map[string]uint64),
	}
}

// Set arms (or replaces) the rule at a point. The point name is the
// string production code passes to Check/Corrupt, e.g. "gp.fit".
func (in *Injector) Set(point string, r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[point] = &armedRule{Rule: r}
}

// Clear disarms one point.
func (in *Injector) Clear(point string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.rules, point)
}

// Checks reports how many times the point was checked.
func (in *Injector) Checks(point string) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.checks[point]
}

// Fired reports how many times the point's rule fired.
func (in *Injector) Fired(point string) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[point]
}

// decide counts one check and reports whether the rule fires, and with
// what. It holds the mutex only for the decision, not for the fault's
// effect (sleeps and panics happen outside).
func (in *Injector) decide(point string) (Rule, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.checks[point]++
	r, ok := in.rules[point]
	if !ok || r.spent {
		return Rule{}, false
	}
	fire := false
	switch {
	case r.After > 0:
		fire = in.checks[point] >= r.After
	default:
		fire = r.Prob > 0 && in.rng.Float64() < r.Prob
	}
	if !fire {
		return Rule{}, false
	}
	if r.Once {
		r.spent = true
	}
	in.fired[point]++
	return r.Rule, true
}

// check applies the point's rule: returns the rule error, sleeps,
// panics, or does nothing.
func (in *Injector) check(point string) error {
	r, fire := in.decide(point)
	if !fire {
		return nil
	}
	switch r.Kind {
	case KindError:
		if r.Err != nil {
			return fmt.Errorf("fault: %s: %w", point, r.Err)
		}
		return fmt.Errorf("%w at %s", ErrInjected, point)
	case KindLatency:
		time.Sleep(r.Latency)
	case KindPanic:
		panic(fmt.Sprintf("fault: injected panic at %s", point))
	}
	return nil
}

// corrupt applies a KindCorrupt rule: when it fires, one byte of data
// is flipped in place (position drawn from the seeded source).
func (in *Injector) corrupt(point string, data []byte) {
	r, fire := in.decide(point)
	if !fire || r.Kind != KindCorrupt || len(data) == 0 {
		return
	}
	in.mu.Lock()
	pos := in.rng.Intn(len(data))
	in.mu.Unlock()
	data[pos] ^= 0xa5
}

// active is the armed injector; nil means every check is a no-op.
var active atomic.Pointer[Injector]

// Arm installs the injector globally. Tests must Disarm (usually via
// t.Cleanup) before the next test runs.
func Arm(in *Injector) { active.Store(in) }

// Disarm removes the active injector.
func Disarm() { active.Store(nil) }

// Check consults the active injector at a named point: it returns an
// injected error, sleeps, panics, or (the production case) does
// nothing. With no injector armed it costs one atomic load.
func Check(point string) error {
	in := active.Load()
	if in == nil {
		return nil
	}
	return in.check(point)
}

// Corrupt gives the active injector a chance to flip a byte of data in
// place (read-path corruption). No-op with no injector armed.
func Corrupt(point string, data []byte) {
	in := active.Load()
	if in == nil {
		return
	}
	in.corrupt(point, data)
}

// Well-known injection points registered by production code. Tests may
// use any string, but these are the seams the robustness harness
// drives.
const (
	// PointWALAppend fires in wal.Log.Append before the frame is
	// written.
	PointWALAppend = "wal.append"
	// PointWALSync fires in wal.Log.Sync before the fsync.
	PointWALSync = "wal.sync"
	// PointWALRead fires (KindCorrupt) on every frame read during
	// replay.
	PointWALRead = "wal.read"
	// PointCheckpointWrite fires in the atomic checkpoint writer
	// before the temp file is renamed into place.
	PointCheckpointWrite = "checkpoint.write"
	// PointGPUSimLaunch fires at the top of gpusim.Device.Launch.
	PointGPUSimLaunch = "gpusim.launch"
	// PointGPFit fires at the top of every GP predictor fit.
	PointGPFit = "gp.fit"

	// Cluster-path points. Each is checked twice per send: once under
	// its bare name and once suffixed ":<peer-id>", so a rule keyed
	// "cluster.forward:n2" partitions this node from n2 only while
	// "cluster.forward" drops every forward.

	// PointClusterForward fires before a request is proxied to the
	// sensor's owning node.
	PointClusterForward = "cluster.forward"
	// PointClusterReplicateSend fires before a replication frame batch,
	// heartbeat or resync snapshot is POSTed to a follower.
	PointClusterReplicateSend = "cluster.replicate.send"
	// PointClusterMapPush fires before a cluster-map push to a member.
	PointClusterMapPush = "cluster.map.push"
	// PointClusterProbe fires before a peer readiness probe.
	PointClusterProbe = "cluster.probe"
)
