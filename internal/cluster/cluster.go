// Package cluster turns independent SMiLer serving nodes into a
// dynamically-membered cluster with sensor sharding, asynchronous
// replication, probe-driven failover, online migration, and
// zero-downtime join/drain/leave.
//
// Placement is a consistent-hash ring with virtual nodes: a sensor id
// maps to a preference list of members; the first is its owner
// (primary), the next Replicas are its followers. Any node accepts
// any request — an ownership gate in front of the local route table
// forwards misrouted requests to the owner, so clients need no
// routing knowledge (responses carry ownership hints for clients that
// want to learn it).
//
// Membership is a versioned cluster map (clustermap.go): a monotonic
// epoch signed by the elected primary, pushed to all members and
// pulled by any node that sees a higher epoch on a peer request. The
// lowest-id-alive active member is the primary (vote.go); it admits
// joiners, flips drainers, and drives batched resumable rebalancing
// (rebalance.go) over the bit-exact migration primitive below.
//
// The owner ships every applied mutation to its followers as WAL
// frames (the on-disk envelope plus a per-sensor sequence number)
// over HTTP; followers apply in order, drop duplicates, and heal any
// gap by requesting a snapshot — the same bit-exact checkpoint
// envelope the durability layer writes, tagged with the sequence it
// covers. Replication is asynchronous: acknowledged writes can lag on
// followers, which is why failover serves Degraded forecasts.
//
// A health prober watches every peer's /readyz; after ProbeFailures
// consecutive failures the peer is down and ownership slides to the
// next healthy node in each sensor's preference list. The promoted
// node keeps serving forecasts from its replica (tagged Degraded:
// "replica", refused entirely once the staleness bound is exceeded)
// but rejects mutations with 503 — reads stay available, writes wait
// for the owner, so a returning primary cannot have missed writes. A
// draining member answers /readyz with 503 {"status":"draining"} but
// is deliberately treated as alive: it keeps serving the sensors it
// still owns while the rebalancer hands them off.
//
// Migration moves a sensor between live nodes without losing an
// observation: quiesce (pause new writes, drain the pipeline), snap
// the sensor's checkpoint bytes plus its replication sequence, POST
// them to the target, flip an ownership override on every member, and
// resume — the target's state is bit-identical to the source's.
package cluster

import (
	"bytes"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smiler"
	"smiler/internal/fault"
	"smiler/internal/ingest"
	"smiler/internal/server"
	"smiler/internal/wal"
)

// Member is one cluster member as recorded in the cluster map.
type Member struct {
	ID    string      `json:"id"`
	URL   string      `json:"url"` // base URL, e.g. "http://10.0.0.7:8080"
	State MemberState `json:"state,omitempty"`
}

// Config configures a cluster node.
type Config struct {
	// Self is this node's member ID (must appear in Members).
	Self string
	// Members seeds the epoch-1 cluster map. All founding members must
	// boot with the same list (and Replicas/VirtualNodes/Secret) so
	// they derive the identical seed map; later membership changes flow
	// through /cluster/join and /cluster/decommission. A node booted
	// with JoinURL may list only itself.
	Members []Member
	// JoinURL, when set, points at any member of an existing cluster;
	// the node starts alone in its seed map and asks that cluster's
	// primary to admit it, receiving its ring share via rebalancing.
	JoinURL string
	// Replicas is the number of follower copies per sensor (default 1,
	// clamped to the member count minus one).
	Replicas int
	// VirtualNodes is the per-member vnode count on the ring
	// (default 64).
	VirtualNodes int
	// ProbeInterval is the peer health probe period (default 500ms).
	ProbeInterval time.Duration
	// ProbeFailures is how many consecutive probe failures mark a peer
	// down (default 3).
	ProbeFailures int
	// HeartbeatInterval is the idle replication heartbeat period
	// (default ProbeInterval).
	HeartbeatInterval time.Duration
	// MaxStaleness bounds how stale a promoted replica may serve: once
	// this long has passed since the failed primary was last heard
	// from, degraded reads answer 503 instead (default 5m).
	MaxStaleness time.Duration
	// RebalanceBatch bounds how many sensor migrations the primary's
	// rebalancer issues per pacing pause (default 16).
	RebalanceBatch int
	// RebalanceInterval is the pacing pause between rebalance batches
	// (default 200ms).
	RebalanceInterval time.Duration
	// Secret, when set, is required (in the X-Smiler-Cluster-Secret
	// header) on every state-changing /cluster/* endpoint — replicate,
	// restore, assign, migrate, map, join, decommission — and attached
	// to all intra-cluster requests this node makes. It also keys the
	// cluster-map HMAC. Every member must share the same value. Leave
	// empty only when untrusted clients cannot reach the serving port
	// (see docs/CLUSTER.md, Security).
	Secret string
	// HTTPClient is used for all intra-cluster requests (default: a
	// client with a 5s timeout).
	HTTPClient *http.Client
	// Logger, when set, receives cluster state transitions.
	Logger *slog.Logger
}

func (c *Config) applyDefaults() {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeFailures <= 0 {
		c.ProbeFailures = 3
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = c.ProbeInterval
	}
	if c.MaxStaleness <= 0 {
		c.MaxStaleness = 5 * time.Minute
	}
	if c.RebalanceBatch <= 0 {
		c.RebalanceBatch = 16
	}
	if c.RebalanceInterval <= 0 {
		c.RebalanceInterval = 200 * time.Millisecond
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 5 * time.Second}
	}
}

// Node glues one server into the cluster: it installs the ownership
// gate, mounts the /cluster/* endpoints, runs the health prober, the
// replication streams, the elector and the rebalancer.
type Node struct {
	cfg     Config
	sys     *smiler.System
	srv     *server.Server
	hc      *http.Client
	log     *slog.Logger
	selfURL string

	// view is the membership snapshot derived from the installed
	// cluster map; mapMu serializes installs, proposeMu serializes
	// primary-side map mutations.
	view      atomic.Pointer[memberView]
	mapMu     sync.Mutex
	proposeMu sync.Mutex
	primary   atomic.Value // string: last computed primary (elector)
	pulling   atomic.Bool  // a map pull is in flight

	health *prober
	repl   *replicator
	reb    *rebalancer
	m      *metrics

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	drained     chan struct{}
	drainedOnce sync.Once

	// assign overrides ring placement per sensor (migration). It wins
	// over the ring's preference head.
	assignMu sync.RWMutex
	assign   map[string]string

	// paused sensors reject new mutations with 503 while a snapshot or
	// migration quiesce is in progress.
	pauseMu sync.Mutex
	paused  map[string]bool
}

// New builds the node, wires it into srv (gate, routes, replication
// hook) and starts its prober, replication, elector and rebalancer
// workers. Call before the listener starts serving. The caller still
// owns sys and srv.
func New(sys *smiler.System, srv *server.Server, cfg Config) (*Node, error) {
	if sys == nil || srv == nil {
		return nil, errors.New("cluster: nil system or server")
	}
	if len(cfg.Members) < 2 && cfg.JoinURL == "" {
		return nil, errors.New("cluster: need at least two members (or a join URL)")
	}
	members := make(map[string]Member, len(cfg.Members))
	for _, m := range cfg.Members {
		if m.ID == "" {
			return nil, errors.New("cluster: member with empty id")
		}
		u, err := url.Parse(m.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: member %q has invalid URL %q", m.ID, m.URL)
		}
		m.URL = strings.TrimSuffix(u.String(), "/")
		if _, dup := members[m.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate member id %q", m.ID)
		}
		members[m.ID] = m
	}
	self, ok := members[cfg.Self]
	if !ok {
		return nil, fmt.Errorf("cluster: self %q is not a member", cfg.Self)
	}
	cfg.applyDefaults()
	n := &Node{
		cfg:     cfg,
		sys:     sys,
		srv:     srv,
		hc:      cfg.HTTPClient,
		log:     cfg.Logger,
		selfURL: self.URL,
		done:    make(chan struct{}),
		drained: make(chan struct{}),
		assign:  make(map[string]string),
		paused:  make(map[string]bool),
	}
	n.health = newProber(n)
	n.repl = newReplicator(n)
	n.reb = newRebalancer(n)
	if err := n.installMap(seedMap(cfg, members)); err != nil {
		return nil, fmt.Errorf("cluster: seed map: %w", err)
	}
	n.m = newMetrics(sys.Metrics(), n)
	n.m.syncPeers(n.peerIDs())

	srv.Handle("/cluster/ring", n.handleRing)
	srv.Handle("/cluster/health", n.handleHealth)
	srv.Handle("/cluster/replicate", n.handleReplicate)
	srv.Handle("/cluster/restore", n.handleRestore)
	srv.Handle("/cluster/migrate", n.handleMigrate)
	srv.Handle("/cluster/assign", n.handleAssign)
	srv.Handle("/cluster/map", n.handleMap)
	srv.Handle("/cluster/join", n.handleJoin)
	srv.Handle("/cluster/decommission", n.handleDecommission)
	srv.Handle("/cluster/sensors", n.handleSensorList)
	srv.Handle("/cluster/rebalance", n.handleRebalance)
	srv.SetGate(n.gate)
	// Every observation the pipeline applies locally streams to this
	// sensor's followers (the gate only lets the owner apply locally,
	// so emission happens exactly once per write).
	srv.Pipeline().SetOnApplied(func(o ingest.Observation) {
		n.repl.emit(wal.Record{Type: wal.RecObserve, Sensor: o.Sensor, Value: o.Value})
	})

	n.health.start()
	n.repl.start()
	n.wg.Add(2)
	go n.electorLoop()
	go n.reb.loop()
	if cfg.JoinURL != "" {
		n.wg.Add(1)
		go n.joinLoop()
	}
	return n, nil
}

// Close stops the prober, replication, elector and rebalancer workers
// and detaches the node from its server (gate and hook cleared). The
// server keeps serving single-node. Safe to call more than once.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		close(n.done)
		n.srv.SetGate(nil)
		n.srv.Pipeline().SetOnApplied(nil)
		n.health.close()
		n.repl.close()
		n.wg.Wait()
	})
	return nil
}

// member looks up a member by id in the installed map.
func (n *Node) member(id string) (Member, bool) {
	v := n.curView()
	if v == nil {
		return Member{}, false
	}
	m, ok := v.members[id]
	return m, ok
}

// peerIDs returns every member id except self, sorted.
func (n *Node) peerIDs() []string {
	v := n.curView()
	if v == nil {
		return nil
	}
	return v.peers
}

// --- placement ---

// preference returns the sensor's member preference order: the
// migration override first (when set), then the placement-ring walk.
func (n *Node) preference(sensor string) []string {
	v := n.curView()
	if v == nil {
		return nil
	}
	pref := v.place.Preference(sensor, len(v.members))
	n.assignMu.RLock()
	override, ok := n.assign[sensor]
	n.assignMu.RUnlock()
	if !ok || (len(pref) > 0 && pref[0] == override) {
		return pref
	}
	out := make([]string, 0, len(pref)+1)
	out = append(out, override)
	for _, id := range pref {
		if id != override {
			out = append(out, id)
		}
	}
	return out
}

// route resolves the sensor's effective owner: the first healthy node
// in its preference order. promoted reports that the effective owner
// is standing in for a down primary (it serves degraded reads only).
func (n *Node) route(sensor string) (owner Member, promoted bool) {
	pref := n.preference(sensor)
	if len(pref) == 0 {
		return Member{}, false
	}
	for i, id := range pref {
		if n.health.isUp(id) {
			m, _ := n.member(id)
			return m, i > 0
		}
	}
	// Everyone is down (by our view): fall back to the primary; the
	// forward will fail and surface as 502.
	m, _ := n.member(pref[0])
	return m, false
}

// replicaTargets returns the follower ids for a sensor: the first
// Replicas members after the effective owner in preference order.
// Self counts toward the replica budget but is never a target (a node
// does not stream to itself).
func (n *Node) replicaTargets(sensor string) []string {
	v := n.curView()
	if v == nil {
		return nil
	}
	reps := v.cmap.Replicas
	if max := len(v.members) - 1; reps > max {
		reps = max
	}
	pref := n.preference(sensor)
	owner, _ := n.route(sensor)
	var out []string
	taken := 0
	for _, id := range pref {
		if id == owner.ID {
			continue
		}
		if taken >= reps {
			break
		}
		taken++
		if id != n.cfg.Self {
			out = append(out, id)
		}
	}
	return out
}

// --- peer authentication ---

// secretHeader carries the shared cluster secret on intra-cluster
// requests when Config.Secret is set.
const secretHeader = "X-Smiler-Cluster-Secret"

// peerHeaders stamps an outbound intra-cluster request with this
// node's identity, base URL, installed map epoch and, when
// configured, the shared secret.
func (n *Node) peerHeaders(req *http.Request) {
	req.Header.Set(fromHeader, n.cfg.Self)
	req.Header.Set(fromURLHeader, n.selfURL)
	req.Header.Set(epochHeader, strconv.FormatUint(n.epoch(), 10))
	if n.cfg.Secret != "" {
		req.Header.Set(secretHeader, n.cfg.Secret)
	}
}

// authSecret enforces the shared cluster secret when one is
// configured. The operator-facing /cluster/migrate uses just this —
// the operator is not a member and carries no fromHeader.
func (n *Node) authSecret(w http.ResponseWriter, r *http.Request) bool {
	if n.cfg.Secret == "" {
		return true
	}
	if subtle.ConstantTimeCompare([]byte(r.Header.Get(secretHeader)), []byte(n.cfg.Secret)) != 1 {
		writeError(w, http.StatusForbidden, "missing or wrong "+secretHeader+" header")
		return false
	}
	return true
}

// authPeer gates the peer-to-peer /cluster/* endpoints (replicate,
// restore, assign): the sender must present the shared secret when one
// is configured and name itself as another member of the installed
// map. Without a secret the membership check only stops stray API
// clients from overwriting sensor state or flipping ownership — any
// sender can claim a member id — so the secret, or keeping the port
// off the client network, is the real boundary (docs/CLUSTER.md).
// The sender's epoch is noted first, even when the request is then
// rejected: a node that fell off a newer map learns about it from the
// rejection path itself.
func (n *Node) authPeer(w http.ResponseWriter, r *http.Request) bool {
	n.noteEpoch(r.Header, "")
	if !n.authSecret(w, r) {
		return false
	}
	from := r.Header.Get(fromHeader)
	if _, ok := n.member(from); !ok || from == n.cfg.Self {
		writeError(w, http.StatusForbidden,
			"cluster endpoint requires a known peer "+fromHeader+" header")
		return false
	}
	return true
}

// checkPeerFault consults a cluster fault point twice: once bare and
// once suffixed ":<peer>", so tests can fail the path toward a single
// peer (a partition) or toward everyone.
func checkPeerFault(point, peer string) error {
	if err := fault.Check(point); err != nil {
		return err
	}
	return fault.Check(point + ":" + peer)
}

// --- pause (quiesce) ---

func (n *Node) pauseSensor(sensor string) {
	n.pauseMu.Lock()
	n.paused[sensor] = true
	n.pauseMu.Unlock()
}

func (n *Node) unpauseSensor(sensor string) {
	n.pauseMu.Lock()
	delete(n.paused, sensor)
	n.pauseMu.Unlock()
}

func (n *Node) isPaused(sensor string) bool {
	n.pauseMu.Lock()
	defer n.pauseMu.Unlock()
	return n.paused[sensor]
}

// snapshotSensor quiesces the sensor and captures (checkpoint bytes,
// covered seq) atomically: new mutations 503 while paused (clients
// retry under their idempotent backoff), the pipeline drains, and
// only then are the sequence number and state read.
func (n *Node) snapshotSensor(sensor string) ([]byte, uint64, error) {
	n.pauseSensor(sensor)
	defer n.unpauseSensor(sensor)
	if err := n.srv.Pipeline().Drain(); err != nil {
		return nil, 0, err
	}
	seq := n.repl.seqOf(sensor)
	var b bytes.Buffer
	if err := n.sys.SaveSensorTo(&b, sensor); err != nil {
		return nil, 0, err
	}
	return b.Bytes(), seq, nil
}

// --- info endpoints ---

// RingInfo is GET /cluster/ring without a sensor: the membership view.
type RingInfo struct {
	Self     string   `json:"self"`
	Epoch    uint64   `json:"epoch"`
	Primary  string   `json:"primary,omitempty"` // locally elected
	Members  []Member `json:"members"`
	Replicas int      `json:"replicas"`
}

// SensorRoute is GET /cluster/ring?sensor=...: one sensor's placement.
type SensorRoute struct {
	Sensor     string   `json:"sensor"`
	Owner      string   `json:"owner"`
	OwnerURL   string   `json:"owner_url"`
	Promoted   bool     `json:"promoted"`
	Preference []string `json:"preference"`
}

func (n *Node) handleRing(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	n.stampEpoch(w)
	sensor := r.URL.Query().Get("sensor")
	if sensor == "" {
		info := RingInfo{Self: n.cfg.Self, Epoch: n.epoch(), Primary: n.electedPrimary()}
		if v := n.curView(); v != nil {
			info.Replicas = v.cmap.Replicas
			info.Members = append(info.Members, v.cmap.Members...)
		}
		writeJSON(w, http.StatusOK, info)
		return
	}
	owner, promoted := n.route(sensor)
	writeJSON(w, http.StatusOK, SensorRoute{
		Sensor: sensor, Owner: owner.ID, OwnerURL: owner.URL,
		Promoted: promoted, Preference: n.preference(sensor),
	})
}

func (n *Node) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	n.stampEpoch(w)
	writeJSON(w, http.StatusOK, map[string]any{
		"self":    n.cfg.Self,
		"epoch":   n.epoch(),
		"primary": n.electedPrimary(),
		"peers":   n.health.snapshot(),
	})
}

// --- small shared helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func readJSON(r interface{ Read([]byte) (int, error) }, v any) error {
	return json.NewDecoder(r).Decode(v)
}
