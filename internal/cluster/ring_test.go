package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndDistinct(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 64)
	for i := 0; i < 200; i++ {
		sensor := fmt.Sprintf("sensor-%d", i)
		p1 := r.Preference(sensor, 3)
		p2 := r.Preference(sensor, 3)
		if len(p1) != 3 {
			t.Fatalf("preference for %s has %d entries, want 3", sensor, len(p1))
		}
		seen := map[string]bool{}
		for j := range p1 {
			if p1[j] != p2[j] {
				t.Fatalf("preference for %s not deterministic: %v vs %v", sensor, p1, p2)
			}
			if seen[p1[j]] {
				t.Fatalf("preference for %s repeats a member: %v", sensor, p1)
			}
			seen[p1[j]] = true
		}
		if r.Owner(sensor) != p1[0] {
			t.Fatalf("Owner disagrees with Preference[0] for %s", sensor)
		}
	}
	// Order-insensitive construction: the same membership in any order
	// yields the same placement.
	r2 := NewRing([]string{"n3", "n1", "n2"}, 64)
	for i := 0; i < 50; i++ {
		sensor := fmt.Sprintf("sensor-%d", i)
		if r.Owner(sensor) != r2.Owner(sensor) {
			t.Fatalf("placement depends on member order for %s", sensor)
		}
	}
}

// TestRingBalance: with virtual nodes, no member should own a wildly
// disproportionate share of sensors.
func TestRingBalance(t *testing.T) {
	members := []string{"n1", "n2", "n3", "n4"}
	r := NewRing(members, 64)
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("sensor-%d", i))]++
	}
	want := n / len(members)
	for _, m := range members {
		if counts[m] < want/3 || counts[m] > want*3 {
			t.Fatalf("member %s owns %d of %d sensors (expected near %d): %v",
				m, counts[m], n, want, counts)
		}
	}
}

func TestRingSingleAndEmpty(t *testing.T) {
	r := NewRing(nil, 8)
	if got := r.Preference("x", 2); got != nil {
		t.Fatalf("empty ring preference = %v, want nil", got)
	}
	if r.Owner("x") != "" {
		t.Fatal("empty ring must have no owner")
	}
	one := NewRing([]string{"solo"}, 8)
	if p := one.Preference("x", 5); len(p) != 1 || p[0] != "solo" {
		t.Fatalf("single-member preference = %v", p)
	}
}
