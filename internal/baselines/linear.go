package baselines

import (
	"fmt"
	"math"
)

// lossKind selects the per-sample loss of the linear SGD models.
type lossKind int

const (
	lossEpsInsensitive lossKind = iota // SVR: max(0, |err|−ε)
	lossHuber                          // robust regression
)

// linearModel is the shared core of the four linear baselines: a
// linear predictor w·x + b trained by stochastic gradient descent on
// either the ε-insensitive (SVR) or Huber (robust regression) loss
// with L2 regularization. The offline variants run several epochs;
// the online variants fold in one sample per Update call.
type linearModel struct {
	name string
	loss lossKind

	// Hyperparameters (zero values are replaced by defaults in init).
	Epsilon float64 // SVR tube half-width
	Delta   float64 // Huber transition point
	Lambda  float64 // L2 regularization strength
	LR      float64 // base learning rate
	Epochs  int     // offline passes over the data

	w       []float64
	bias    float64
	dim     int
	trained bool

	// Residual-variance tracking for the Gaussian confidence estimate.
	resVar float64
	seen   int
}

func (m *linearModel) defaults() {
	if m.Epsilon == 0 {
		m.Epsilon = 0.05
	}
	if m.Delta == 0 {
		m.Delta = 1.0
	}
	if m.Lambda == 0 {
		m.Lambda = 1e-4
	}
	if m.LR == 0 {
		m.LR = 0.05
	}
	if m.Epochs == 0 {
		m.Epochs = 10
	}
}

// Name implements Regressor/OnlineRegressor.
func (m *linearModel) Name() string { return m.name }

func (m *linearModel) raw(x []float64) float64 {
	var s float64
	for i, v := range x {
		s += m.w[i] * v
	}
	return s + m.bias
}

// gradientScale returns dLoss/dPrediction for residual err = pred − y.
func (m *linearModel) gradientScale(err float64) float64 {
	switch m.loss {
	case lossEpsInsensitive:
		switch {
		case err > m.Epsilon:
			return 1
		case err < -m.Epsilon:
			return -1
		default:
			return 0
		}
	default: // Huber
		if err > m.Delta {
			return m.Delta
		}
		if err < -m.Delta {
			return -m.Delta
		}
		return err
	}
}

// step performs one SGD update with learning rate lr.
func (m *linearModel) step(x []float64, y, lr float64) {
	err := m.raw(x) - y
	g := m.gradientScale(err)
	decay := 1 - lr*m.Lambda
	for i := range m.w {
		m.w[i] = m.w[i]*decay - lr*g*x[i]
	}
	m.bias -= lr * g
	// Exponentially-weighted residual variance for the confidence
	// estimate (the libSVM-style error fit).
	m.seen++
	alpha := 1 / math.Min(float64(m.seen), 200)
	m.resVar = (1-alpha)*m.resVar + alpha*err*err
}

// Train implements Regressor: multi-epoch SGD with a 1/t learning-rate
// decay.
func (m *linearModel) Train(x [][]float64, y []float64) error {
	dim, err := checkTraining(x, y)
	if err != nil {
		return err
	}
	m.defaults()
	m.dim = dim
	m.w = make([]float64, dim)
	m.bias = 0
	m.resVar = 0
	m.seen = 0
	t := 0
	for e := 0; e < m.Epochs; e++ {
		for i := range x {
			t++
			// Per-epoch 1/t decay: large early steps, fine late steps.
			lr := m.LR / (1 + float64(t)/float64(len(x)))
			m.step(x[i], y[i], lr)
		}
	}
	m.trained = true
	return nil
}

// Update implements OnlineRegressor: a single constant-rate SGD step.
func (m *linearModel) Update(x []float64, y float64) error {
	m.defaults()
	if m.w == nil {
		m.dim = len(x)
		m.w = make([]float64, m.dim)
	}
	if len(x) != m.dim {
		return fmt.Errorf("%w: got %d features, want %d", ErrDims, len(x), m.dim)
	}
	m.step(x, y, m.LR/4)
	m.trained = true
	return nil
}

// Predict implements Regressor/OnlineRegressor.
func (m *linearModel) Predict(x []float64) (Prediction, error) {
	if !m.trained {
		return Prediction{}, ErrNotTrained
	}
	if len(x) != m.dim {
		return Prediction{}, fmt.Errorf("%w: got %d features, want %d", ErrDims, len(x), m.dim)
	}
	v := m.resVar
	if v < varFloor {
		v = varFloor
	}
	return Prediction{Mean: m.raw(x), Variance: v}, nil
}

// NewSgdSVR returns the offline linear ε-insensitive SVR baseline.
func NewSgdSVR() *linearModel {
	return &linearModel{name: "SgdSVR", loss: lossEpsInsensitive}
}

// NewSgdRR returns the offline linear robust-regression baseline.
func NewSgdRR() *linearModel {
	return &linearModel{name: "SgdRR", loss: lossHuber}
}

// NewOnlineSVR returns the one-pass online SVR baseline.
func NewOnlineSVR() *linearModel {
	return &linearModel{name: "OnlineSVR", loss: lossEpsInsensitive}
}

// NewOnlineRR returns the one-pass online robust-regression baseline.
func NewOnlineRR() *linearModel {
	return &linearModel{name: "OnlineRR", loss: lossHuber}
}
