package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"smiler/internal/obs"
)

// MigrateRequest is POST /cluster/migrate on the sensor's current
// owner: move the sensor to the named target node.
type MigrateRequest struct {
	Sensor string `json:"sensor"`
	Target string `json:"target"`
}

// MigrateResponse reports a completed migration.
type MigrateResponse struct {
	Sensor string `json:"sensor"`
	From   string `json:"from"`
	To     string `json:"to"`
	Seq    uint64 `json:"seq"` // replication sequence the shipped snapshot covers
}

// assignRequest is POST /cluster/assign: an ownership override
// (migration cutover) being installed on every member.
type assignRequest struct {
	Sensor string `json:"sensor"`
	Node   string `json:"node"`
}

// handleMigrate moves one sensor from this node to a live target:
//
//  1. quiesce — new mutations 503 (clients retry under idempotent
//     backoff), the ingestion pipeline drains, so state stops moving;
//  2. snapshot — the sensor's checkpoint bytes plus the replication
//     sequence they cover, captured atomically under the quiesce;
//  3. ship — POST the snapshot to the target's /cluster/restore; the
//     restore is bit-exact (same envelope, CRC, gob state as the
//     durability layer), and the target's replication cursor starts
//     at the covered sequence, so any later WAL-tail frames replay
//     exactly once;
//  4. cutover — install the ownership override locally, then on every
//     member (best effort: a member that misses it still forwards via
//     this node, whose override is authoritative for its view);
//  5. resume — unpause; requests now forward to the new owner.
func (n *Node) handleMigrate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	n.stampEpoch(w)
	if !n.authSecret(w, r) {
		return
	}
	n.noteEpoch(r.Header, "")
	var req MigrateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if req.Sensor == "" || req.Target == "" {
		writeError(w, http.StatusBadRequest, "need sensor and target")
		return
	}
	target, ok := n.member(req.Target)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown target node %q", req.Target))
		return
	}
	if req.Target == n.cfg.Self {
		writeError(w, http.StatusBadRequest, "target is already this node")
		return
	}
	owner, promoted := n.route(req.Sensor)
	if owner.ID != n.cfg.Self || promoted {
		writeError(w, http.StatusConflict,
			fmt.Sprintf("this node is not the active owner of %q (owner %s)", req.Sensor, owner.ID))
		return
	}
	if !n.sys.HasSensor(req.Sensor) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown sensor %q", req.Sensor))
		return
	}
	if !n.health.isUp(req.Target) {
		writeError(w, http.StatusServiceUnavailable, fmt.Sprintf("target %s is down", req.Target))
		return
	}

	// Quiesce + snapshot. The pause is held through the cutover so no
	// mutation can apply locally after the snapshot and before requests
	// start forwarding to the target.
	n.pauseSensor(req.Sensor)
	defer n.unpauseSensor(req.Sensor)
	if err := n.srv.Pipeline().Drain(); err != nil {
		writeError(w, http.StatusServiceUnavailable, "drain: "+err.Error())
		return
	}
	seq := n.repl.seqOf(req.Sensor)
	var snap bytes.Buffer
	if err := n.sys.SaveSensorTo(&snap, req.Sensor); err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot: "+err.Error())
		return
	}

	// Ship to the target.
	post, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		target.URL+"/cluster/restore", bytes.NewReader(snap.Bytes()))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	n.peerHeaders(post)
	post.Header.Set(replSeqHeader, strconv.FormatUint(seq, 10))
	post.Header.Set("Content-Type", "application/octet-stream")
	tc, _ := obs.TraceFromContext(r.Context())
	if tc.Valid() {
		post.Header.Set(obs.TraceHeader, tc.Next().HeaderValue())
	}
	resp, err := n.hc.Do(post)
	if err != nil {
		writeError(w, http.StatusBadGateway, "shipping snapshot: "+err.Error())
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		writeError(w, http.StatusBadGateway,
			fmt.Sprintf("target restore answered HTTP %d", resp.StatusCode))
		return
	}

	// Cutover: local override first (authoritative for requests landing
	// here), then broadcast.
	n.setAssign(req.Sensor, req.Target)
	n.broadcastAssign(req.Sensor, req.Target)
	n.m.migrations.Inc()
	n.sys.Events().Record(obs.Event{
		Type: "migration_cutover", Sensor: req.Sensor, TraceID: tc.ID,
		Detail: "to " + req.Target + " at seq " + strconv.FormatUint(seq, 10),
	})
	if n.log != nil {
		n.log.Info("sensor migrated", "sensor", req.Sensor, "to", req.Target, "seq", seq)
	}
	writeJSON(w, http.StatusOK, MigrateResponse{
		Sensor: req.Sensor, From: n.cfg.Self, To: req.Target, Seq: seq,
	})
}

func (n *Node) setAssign(sensor, node string) {
	n.assignMu.Lock()
	n.assign[sensor] = node
	n.assignMu.Unlock()
}

// broadcastAssign installs the override on every other member (best
// effort; a miss degrades to an extra forwarding hop through us).
func (n *Node) broadcastAssign(sensor, node string) {
	body, _ := json.Marshal(assignRequest{Sensor: sensor, Node: node})
	for _, id := range n.peerIDs() {
		member, _ := n.member(id)
		req, err := http.NewRequest(http.MethodPost, member.URL+"/cluster/assign", bytes.NewReader(body))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		n.peerHeaders(req)
		resp, err := n.hc.Do(req)
		if err != nil {
			if n.log != nil {
				n.log.Warn("assign broadcast failed", "peer", id, "sensor", sensor, "err", err)
			}
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		resp.Body.Close()
	}
}

// handleAssign installs an ownership override pushed by a migrating
// owner.
func (n *Node) handleAssign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	n.stampEpoch(w)
	if !n.authPeer(w, r) {
		return
	}
	var req assignRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if req.Sensor == "" || req.Node == "" {
		writeError(w, http.StatusBadRequest, "need sensor and node")
		return
	}
	if _, ok := n.member(req.Node); !ok {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown node %q", req.Node))
		return
	}
	n.setAssign(req.Sensor, req.Node)
	tc, _ := obs.TraceFromContext(r.Context())
	n.sys.Events().Record(obs.Event{
		Type: "migration_assign", Sensor: req.Sensor, TraceID: tc.ID,
		Detail: "owner override -> " + req.Node,
	})
	writeJSON(w, http.StatusOK, map[string]string{"sensor": req.Sensor, "node": req.Node})
}
