// Package gp implements Gaussian Process regression with the squared
// exponential covariance function the paper instantiates the semi-lazy
// predictor with (Eqn. 18):
//
//	c(x_a, x_b) = θ₀² · exp(−½‖x_a−x_b‖²/θ₁²) + δ_ab·θ₂²
//
// A Model conditions on the kNN training set (X_{k,d}, Y_h) and yields
// the closed-form posterior mean and variance (Eqns. 16–17). Hyper-
// parameters are chosen by maximizing the leave-one-out predictive log
// likelihood (Eqns. 19–20) computed from the partitioned inverse
// [Sundararajan & Keerthi 2001], with analytic gradients and a
// conjugate-gradient ascent (optimize.go). The semi-lazy setting keeps
// the training sets tiny (k ≤ 128), so all of this is exact — no
// low-rank approximation is required.
package gp

import (
	"errors"
	"fmt"
	"math"

	"smiler/internal/mat"
	"smiler/internal/memsys"
)

// Common errors.
var (
	ErrNoData    = errors.New("gp: empty training set")
	ErrDims      = errors.New("gp: inconsistent dimensions")
	ErrSingular  = errors.New("gp: covariance matrix not positive definite")
	ErrNegHyper  = errors.New("gp: hyperparameters must be positive")
	ErrDimInput  = errors.New("gp: test input dimension mismatch")
	ErrCondition = errors.New("gp: numerical failure")
)

// jitter ladder tried when the covariance Cholesky fails.
var jitters = []float64{0, 1e-10, 1e-8, 1e-6, 1e-4}

// Hyper holds the covariance hyperparameters Θ = {θ₀, θ₁, θ₂}:
// signal amplitude, characteristic length-scale and noise level.
type Hyper struct {
	Signal float64 // θ₀
	Length float64 // θ₁
	Noise  float64 // θ₂
}

// Validate checks positivity.
func (h Hyper) Validate() error {
	if h.Signal <= 0 || h.Length <= 0 || h.Noise <= 0 {
		return fmt.Errorf("%w: %+v", ErrNegHyper, h)
	}
	if math.IsNaN(h.Signal) || math.IsNaN(h.Length) || math.IsNaN(h.Noise) {
		return fmt.Errorf("%w: NaN in %+v", ErrNegHyper, h)
	}
	return nil
}

// sqDist returns ‖a−b‖².
func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// covR2 evaluates the SE covariance for a precomputed squared distance
// r² = ‖a−b‖². The hyperparameters only rescale r², which is what makes
// the per-column Gram-base sharing of Column exact: the same r² values
// serve every cell regardless of its Θ.
func (h Hyper) covR2(r2 float64) float64 {
	return h.Signal * h.Signal * math.Exp(-0.5*r2/(h.Length*h.Length))
}

// Cov evaluates the SE covariance between two (distinct) inputs,
// without the noise term.
func (h Hyper) Cov(a, b []float64) float64 {
	return h.covR2(sqDist(a, b))
}

// trainSet couples training pairs with a squared-distance source: the
// direct source recomputes ‖x_i−x_j‖² on demand, a Column's source
// reads the Gram-base matrix computed once per column. Every fitting
// and optimization internal evaluates through it, so the direct and
// shared paths run the same code on bit-identical values.
type trainSet struct {
	x  [][]float64
	y  []float64
	r2 func(i, j int) float64
}

// directSet wraps raw training pairs with the on-demand distance source.
func directSet(x [][]float64, y []float64) trainSet {
	return trainSet{x: x, y: y, r2: func(i, j int) float64 { return sqDist(x[i], x[j]) }}
}

// validateTraining checks the invariants Fit documents.
func validateTraining(x [][]float64, y []float64, hp Hyper) error {
	if len(x) == 0 || len(y) == 0 {
		return ErrNoData
	}
	if len(x) != len(y) {
		return fmt.Errorf("%w: %d inputs vs %d targets", ErrDims, len(x), len(y))
	}
	if err := hp.Validate(); err != nil {
		return err
	}
	dim := len(x[0])
	for i, xi := range x {
		if len(xi) != dim {
			return fmt.Errorf("%w: row %d has %d features, want %d", ErrDims, i, len(xi), dim)
		}
	}
	return nil
}

// Model is a GP regression model conditioned on a training set.
type Model struct {
	x     [][]float64
	y     []float64
	hyper Hyper
	dim   int

	chol   *mat.Cholesky
	alpha  []float64  // C⁻¹·y
	kinv   *mat.Dense // C⁻¹, materialized lazily for LOO
	cov    *mat.Dense // the factored C (kept for gradient reuse); may be nil
	jitter float64    // extra diagonal jitter baked into cov
}

// Fit conditions a GP with hyperparameters hp on the training pairs
// (x[i], y[i]). Rows of x must share one dimension. The slices are
// retained (not copied); callers must not mutate them afterwards.
func Fit(x [][]float64, y []float64, hp Hyper) (*Model, error) {
	if err := validateTraining(x, y, hp); err != nil {
		return nil, err
	}
	return fitSet(directSet(x, y), hp)
}

// fitSet is the conditioning core behind Fit and Column.Fit; inputs are
// already validated.
func fitSet(ts trainSet, hp Hyper) (*Model, error) {
	statFits.Add(1)
	m := &Model{x: ts.x, y: ts.y, hyper: hp, dim: len(ts.x[0])}
	if err := m.factorize(ts.r2); err != nil {
		return nil, err
	}
	return m, nil
}

// covMatrix builds C = K + θ₂²·I (+ extra diagonal jitter).
func covMatrix(x [][]float64, hp Hyper, extraJitter float64) *mat.Dense {
	return covMatrixR2(len(x), directSet(x, nil).r2, hp, extraJitter)
}

// covMatrixR2 builds the covariance from a squared-distance source.
func covMatrixR2(n int, r2 func(i, j int) float64, hp Hyper, extraJitter float64) *mat.Dense {
	c := mat.NewDense(n, n)
	covMatrixR2Into(c, n, r2, hp, extraJitter)
	return c
}

// covMatrixR2Into fills the caller-provided n×n matrix (every entry is
// written, so dirty reused scratch is fine).
func covMatrixR2Into(c *mat.Dense, n int, r2 func(i, j int) float64, hp Hyper, extraJitter float64) {
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := hp.covR2(r2(i, j))
			if i == j {
				v += hp.Noise*hp.Noise + extraJitter
			}
			c.Set(i, j, v)
			c.Set(j, i, v)
		}
	}
}

// factorize builds and factors the covariance, walking the jitter
// ladder if the matrix is numerically indefinite. The successful
// covariance is retained on the model so gradient evaluations can read
// K_SE entries back without re-exponentiating. All state is memsys-
// backed: Release returns it, and a model that is never released is
// ordinary garbage.
func (m *Model) factorize(r2 func(i, j int) float64) error {
	var lastErr error
	n := len(m.x)
	c := mat.GetDense(n, n)
	for _, j := range jitters {
		covMatrixR2Into(c, n, r2, m.hyper, j)
		ch, err := mat.GetCholesky(c)
		if err != nil {
			lastErr = err
			statJitterRetries.Add(1)
			continue
		}
		alpha := memsys.GetFloats(n)
		if err := ch.SolveVecTo(alpha, m.y); err != nil {
			memsys.PutFloats(alpha)
			ch.Release()
			lastErr = err
			statJitterRetries.Add(1)
			continue
		}
		m.chol = ch
		m.alpha = alpha
		m.kinv = nil
		m.cov = c
		m.jitter = j
		return nil
	}
	c.Release()
	return fmt.Errorf("%w: %v", ErrSingular, lastErr)
}

// Release returns the model's pooled covariance, factor, precision and
// α slabs to memsys. Idempotent, and safe to skip entirely — an
// unreleased model is collected by the GC like any other value. Callers
// must be completely done with the model (including models aliased via
// SharedFactor.ModelAt at the full column size).
func (m *Model) Release() {
	if m == nil {
		return
	}
	if m.alpha != nil {
		a := m.alpha
		m.alpha = nil
		memsys.PutFloats(a)
	}
	if m.chol != nil {
		m.chol.Release()
	}
	if m.cov != nil {
		m.cov.Release()
		m.cov = nil
	}
	if m.kinv != nil {
		m.kinv.Release()
		m.kinv = nil
	}
}

// Size returns the number of training points.
func (m *Model) Size() int { return len(m.y) }

// Hyper returns the model hyperparameters.
func (m *Model) Hyper() Hyper { return m.hyper }

// Predict returns the posterior mean and variance at test input x0
// (Eqns. 16–17): u₀ = c₀ᵀC⁻¹Y, σ₀² = c(x₀,x₀) − c₀ᵀC⁻¹c₀.
func (m *Model) Predict(x0 []float64) (mean, variance float64, err error) {
	return m.PredictBuf(x0, nil)
}

// PredictBuf is Predict with caller-provided scratch of length ≥ 2n
// (n = training-set size), removing the two per-call allocations on the
// hot path. nil or short scratch falls back to allocating. The result
// is bit-identical either way.
func (m *Model) PredictBuf(x0, scratch []float64) (mean, variance float64, err error) {
	if len(x0) != m.dim {
		return 0, 0, fmt.Errorf("%w: got %d, want %d", ErrDimInput, len(x0), m.dim)
	}
	n := len(m.x)
	if len(scratch) < 2*n {
		scratch = make([]float64, 2*n)
	}
	c0 := scratch[:n]
	v := scratch[n : 2*n]
	for i := 0; i < n; i++ {
		c0[i] = m.hyper.Cov(m.x[i], x0)
	}
	mean = mat.Dot(c0, m.alpha)
	if err := m.chol.SolveVecTo(v, c0); err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrCondition, err)
	}
	// Prior variance at x0 includes the noise term (we predict the
	// *observation*, as the paper's MNLPD evaluation requires).
	prior := m.hyper.Signal*m.hyper.Signal + m.hyper.Noise*m.hyper.Noise
	variance = prior - mat.Dot(c0, v)
	if variance < 1e-12 {
		variance = 1e-12 // guard against cancellation
	}
	return mean, variance, nil
}

// kinvMatrix materializes C⁻¹ (cached, pooled; Release returns it).
func (m *Model) kinvMatrix() (*mat.Dense, error) {
	if m.kinv != nil {
		return m.kinv, nil
	}
	n := m.chol.Size()
	inv := mat.GetDense(n, n)
	linv := mat.GetDense(n, n)
	err := m.chol.InverseTo(inv, linv)
	linv.Release()
	if err != nil {
		inv.Release()
		return nil, fmt.Errorf("%w: %v", ErrCondition, err)
	}
	m.kinv = inv
	return inv, nil
}

// LOO returns the leave-one-out predictive log likelihood of the
// training set (Eqn. 20), computed in O(n³) once via the partitioned
// inverse: leaving point i out gives μ_i = y_i − α_i/[C⁻¹]_ii and
// σ²_i = 1/[C⁻¹]_ii [Sundararajan & Keerthi 2001].
func (m *Model) LOO() (float64, error) {
	kinv, err := m.kinvMatrix()
	if err != nil {
		return 0, err
	}
	return looSum(m.y, m.alpha, kinv)
}

// LOOResiduals returns the per-point leave-one-out predictive means and
// variances; exposed for diagnostics and tests.
func (m *Model) LOOResiduals() (means, variances []float64, err error) {
	kinv, err := m.kinvMatrix()
	if err != nil {
		return nil, nil, err
	}
	n := len(m.y)
	means = make([]float64, n)
	variances = make([]float64, n)
	for i := 0; i < n; i++ {
		kii := kinv.At(i, i)
		if kii <= 0 {
			return nil, nil, fmt.Errorf("%w: nonpositive precision diagonal", ErrCondition)
		}
		variances[i] = 1 / kii
		means[i] = m.y[i] - m.alpha[i]/kii
	}
	return means, variances, nil
}

// HeuristicHyper derives a data-driven starting point for optimization:
// signal = std(y), length = median pairwise input distance, noise =
// a tenth of the signal — the usual GP folklore initialization.
func HeuristicHyper(x [][]float64, y []float64) Hyper {
	st := stdev(y)
	if st <= 0 {
		st = 1
	}
	med := medianPairwiseDist(x)
	if med <= 0 {
		med = 1
	}
	return Hyper{Signal: st, Length: med, Noise: 0.1 * st}
}

func stdev(y []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	var sum float64
	for _, v := range y {
		sum += v
	}
	mean := sum / float64(len(y))
	var ss float64
	for _, v := range y {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(y)))
}

func medianPairwiseDist(x [][]float64) float64 {
	n := len(x)
	if n < 2 {
		return 0
	}
	// Sample at most ~256 pairs; exactness is irrelevant for a seed.
	var ds []float64
	step := 1
	if n > 24 {
		step = n / 24
	}
	for i := 0; i < n; i += step {
		for j := i + step; j < n; j += step {
			ds = append(ds, math.Sqrt(sqDist(x[i], x[j])))
		}
	}
	if len(ds) == 0 {
		return 0
	}
	// Insertion-select the median (tiny slice).
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	return ds[len(ds)/2]
}

// PosteriorSample draws one joint sample of the latent function at the
// test inputs x0s from the posterior, using the provided normal
// source (e.g. rand.NormFloat64). Sampling scenarios — rather than
// reporting only mean and variance — is how downstream planners
// consume correlated multi-point forecasts.
func (m *Model) PosteriorSample(x0s [][]float64, normal func() float64) ([]float64, error) {
	t := len(x0s)
	if t == 0 {
		return nil, ErrNoData
	}
	for i, x0 := range x0s {
		if len(x0) != m.dim {
			return nil, fmt.Errorf("%w: input %d has %d features, want %d", ErrDimInput, i, len(x0), m.dim)
		}
	}
	if normal == nil {
		return nil, errors.New("gp: nil normal source")
	}
	// Cross-covariances and posterior moments.
	n := len(m.x)
	ks := mat.NewDense(n, t) // K(X, X*)
	for i := 0; i < n; i++ {
		for j := 0; j < t; j++ {
			ks.Set(i, j, m.hyper.Cov(m.x[i], x0s[j]))
		}
	}
	mean := make([]float64, t)
	v, err := m.chol.Solve(ks) // C⁻¹·K(X,X*)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCondition, err)
	}
	for j := 0; j < t; j++ {
		var mu float64
		for i := 0; i < n; i++ {
			mu += ks.At(i, j) * m.alpha[i]
		}
		mean[j] = mu
	}
	// Posterior covariance Σ = K** − K*ᵀC⁻¹K* (+ jitter for sampling).
	cov := mat.NewDense(t, t)
	for a := 0; a < t; a++ {
		for b := a; b < t; b++ {
			kab := m.hyper.Cov(x0s[a], x0s[b])
			if a == b {
				kab += m.hyper.Noise * m.hyper.Noise
			}
			var red float64
			for i := 0; i < n; i++ {
				red += ks.At(i, a) * v.At(i, b)
			}
			val := kab - red
			cov.Set(a, b, val)
			cov.Set(b, a, val)
		}
	}
	if err := mat.AddDiagonal(cov, 1e-10); err != nil {
		return nil, err
	}
	ch, err := mat.NewCholesky(cov)
	if err != nil {
		return nil, fmt.Errorf("%w: posterior covariance not PD: %v", ErrCondition, err)
	}
	z := make([]float64, t)
	for i := range z {
		z[i] = normal()
	}
	out := make([]float64, t)
	l := ch.L()
	for i := 0; i < t; i++ {
		s := mean[i]
		for j := 0; j <= i; j++ {
			s += l.At(i, j) * z[j]
		}
		out[i] = s
	}
	return out, nil
}
