// Command smiler-predict runs continuous semi-lazy prediction over a
// CSV of sensor time series (as produced by smiler-datagen, or any
// file with a header row of sensor ids and one value column per
// sensor). It streams the tail of the file as "live" observations,
// printing per-step forecasts with uncertainty and a final error
// summary.
//
// Usage:
//
//	smiler-datagen -kind road -sensors 2 -days 10 -o road.csv
//	smiler-predict -in road.csv -steps 50 -h 1 -predictor gp
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"smiler"
)

func main() {
	var (
		inPath    = flag.String("in", "", "input CSV (header = sensor ids)")
		steps     = flag.Int("steps", 50, "number of live steps to stream")
		horizon   = flag.Int("h", 1, "look-ahead steps")
		predictor = flag.String("predictor", "gp", "predictor: gp|ar")
		quiet     = flag.Bool("quiet", false, "only print the final summary")
	)
	flag.Parse()
	if err := run(*inPath, *steps, *horizon, *predictor, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "smiler-predict:", err)
		os.Exit(1)
	}
}

func run(inPath string, steps, horizon int, predictor string, quiet bool) error {
	if inPath == "" {
		return fmt.Errorf("-in is required (generate one with smiler-datagen)")
	}
	ids, cols, err := readCSV(inPath)
	if err != nil {
		return err
	}

	cfg := smiler.DefaultConfig()
	switch strings.ToLower(predictor) {
	case "gp":
		cfg.Predictor = smiler.PredictorGP
	case "ar":
		cfg.Predictor = smiler.PredictorAR
	default:
		return fmt.Errorf("unknown predictor %q", predictor)
	}
	sys, err := smiler.New(cfg)
	if err != nil {
		return err
	}
	defer sys.Close()

	n := len(cols[0])
	need := sys.MinHistory() + steps + horizon
	if n < need {
		return fmt.Errorf("need ≥ %d rows for %d live steps (have %d)", need, steps, n)
	}
	warm := n - steps - horizon
	for i, id := range ids {
		if err := sys.AddSensor(id, cols[i][:warm]); err != nil {
			return fmt.Errorf("sensor %s: %w", id, err)
		}
	}
	fmt.Printf("loaded %d sensors × %d points; streaming %d steps at h=%d with %s predictors\n",
		len(ids), n, steps, horizon, strings.ToUpper(predictor))

	absErr := make(map[string]float64, len(ids))
	for t := 0; t < steps; t++ {
		fs, err := sys.PredictAll(horizon)
		if err != nil {
			return err
		}
		for i, id := range ids {
			truth := cols[i][warm+t-1+horizon]
			f := fs[id]
			absErr[id] += math.Abs(f.Mean - truth)
			if !quiet {
				lo, hi := f.Interval(1.96)
				fmt.Printf("step %3d  %-12s forecast %10.3f  95%% [%9.3f, %9.3f]  truth %10.3f\n",
					t, id, f.Mean, lo, hi, truth)
			}
		}
		for i, id := range ids {
			if err := sys.Observe(id, cols[i][warm+t]); err != nil {
				return err
			}
		}
	}
	fmt.Println("\nper-sensor MAE over the streamed window:")
	for _, id := range ids {
		fmt.Printf("  %-12s %.4f\n", id, absErr[id]/float64(steps))
	}
	used, total := sys.DeviceUsage()
	fmt.Printf("simulated GPU memory: %d / %d bytes\n", used, total)
	return nil
}

// readCSV loads a header + float columns file.
func readCSV(path string) ([]string, [][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, nil, fmt.Errorf("%s: empty file", path)
	}
	ids := strings.Split(strings.TrimSpace(sc.Text()), ",")
	cols := make([][]float64, len(ids))
	line := 1
	for sc.Scan() {
		line++
		parts := strings.Split(strings.TrimSpace(sc.Text()), ",")
		if len(parts) != len(ids) {
			return nil, nil, fmt.Errorf("%s:%d: %d fields, want %d", path, line, len(parts), len(ids))
		}
		for i, p := range parts {
			v, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("%s:%d: %w", path, line, err)
			}
			cols[i] = append(cols[i], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(cols) == 0 || len(cols[0]) == 0 {
		return nil, nil, fmt.Errorf("%s: no data rows", path)
	}
	return ids, cols, nil
}
