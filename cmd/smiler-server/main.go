// Command smiler-server runs the SMiLer prediction system as an
// HTTP/JSON service. Sensors are registered and fed over the API (see
// internal/server for the routes); an optional checkpoint file
// persists state across restarts.
//
// Usage:
//
//	smiler-server -addr :8080
//	smiler-server -addr :8080 -predictor ar -checkpoint state.gob
//
// With -checkpoint, state is loaded at startup (if the file exists)
// and saved on clean shutdown (SIGINT/SIGTERM).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"smiler"
	"smiler/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		predictor  = flag.String("predictor", "gp", "predictor: gp|ar")
		devices    = flag.Int("devices", 1, "number of simulated GPUs")
		maxHistory = flag.Int("max-history", 0, "cap indexed history per sensor (0 = unlimited)")
		checkpoint = flag.String("checkpoint", "", "checkpoint file (load at start, save at shutdown)")
		interval   = flag.Duration("interval", 0, "fixed sample interval enabling POST /sensors/{id}/readings (0 = disabled)")
	)
	flag.Parse()
	if err := run(*addr, *predictor, *devices, *maxHistory, *checkpoint, *interval); err != nil {
		log.Fatal("smiler-server: ", err)
	}
}

func run(addr, predictor string, devices, maxHistory int, checkpoint string, interval time.Duration) error {
	cfg := smiler.DefaultConfig()
	switch strings.ToLower(predictor) {
	case "gp":
		cfg.Predictor = smiler.PredictorGP
	case "ar":
		cfg.Predictor = smiler.PredictorAR
	default:
		return fmt.Errorf("unknown predictor %q", predictor)
	}
	cfg.Devices = devices
	cfg.MaxHistory = maxHistory

	sys, err := loadOrNew(cfg, checkpoint)
	if err != nil {
		return err
	}
	defer sys.Close()

	handler, err := server.NewWithInterval(sys, interval)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("smiler-server: listening on %s (%s predictors, %d device(s))",
			addr, strings.ToUpper(predictor), devices)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		log.Printf("smiler-server: %v, shutting down", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if checkpoint != "" {
		if err := saveCheckpoint(sys, checkpoint); err != nil {
			return fmt.Errorf("saving checkpoint: %w", err)
		}
		log.Printf("smiler-server: checkpoint saved to %s", checkpoint)
	}
	return <-errCh
}

// loadOrNew restores the system from a checkpoint when one exists.
func loadOrNew(cfg smiler.Config, path string) (*smiler.System, error) {
	if path == "" {
		return smiler.New(cfg)
	}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return smiler.New(cfg)
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sys, err := smiler.Load(f, cfg)
	if err != nil {
		return nil, fmt.Errorf("loading checkpoint %s: %w", path, err)
	}
	log.Printf("smiler-server: restored %d sensor(s) from %s", len(sys.Sensors()), path)
	return sys, nil
}

// saveCheckpoint writes atomically via a temp file + rename.
func saveCheckpoint(sys *smiler.System, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := sys.SaveTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
