package index

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"smiler/internal/anytime"
)

// countdownCtx is a context whose Err() starts returning
// context.DeadlineExceeded after it has been called n times. Deadline
// checks in the search path are the only Err() callers, so the budget
// deterministically stages "the deadline fires after the N-th check" —
// no wall-clock flakiness.
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func newCountdown(n int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.left.Store(n)
	return c
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.DeadlineExceeded
	}
	return c.Context.Err()
}

// noise returns a white-noise history. Unlike a random walk its
// group-level lower bounds are loose, so most candidates survive the
// filter and verification spans several progressive rounds — the
// workload anytime search exists for.
func noise(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func sameNeighbors(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].T != b[i].T || a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

// With no deadline, anytime search (with a learned model training as it
// goes) must be bit-identical to exact search across a stream of
// Search, SearchMulti and SearchRange calls.
func TestAnytimeNoDeadlineBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	hist := randwalk(rng, 420)
	p := smallParams()
	exact, err := New(testDevice(t), hist, p)
	if err != nil {
		t.Fatal(err)
	}
	anyIx, err := New(testDevice(t), hist, p)
	if err != nil {
		t.Fatal(err)
	}
	anyIx.SetAnytime(Anytime{Enabled: true, Model: anytime.NewModel()})

	const k, h = 5, 3
	for step := 0; step < 12; step++ {
		re, err := exact.Search(k, h)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := anyIx.Search(k, h)
		if err != nil {
			t.Fatal(err)
		}
		for i := range re {
			if !sameNeighbors(re[i].Neighbors, ra[i].Neighbors) {
				t.Fatalf("step %d item %d: anytime %v != exact %v", step, i, ra[i].Neighbors, re[i].Neighbors)
			}
		}
		st := anyIx.Stats()
		if st.Progressive {
			t.Fatalf("step %d: no deadline but stats marked progressive", step)
		}
		if st.ProbExact != 1 || st.FracVerified != 1 || st.LBGap != 0 {
			t.Fatalf("step %d: exact run quality = %+v", step, st)
		}
		if st.Rounds == 0 && st.Candidates > k*len(p.ELV) {
			t.Fatalf("step %d: anytime search ran zero rounds", step)
		}

		me, err := exact.SearchMulti(k, []int{h, h + 2})
		if err != nil {
			t.Fatal(err)
		}
		ma, err := anyIx.SearchMulti(k, []int{h, h + 2})
		if err != nil {
			t.Fatal(err)
		}
		for hh, items := range me {
			for i := range items {
				if !sameNeighbors(items[i].Neighbors, ma[hh][i].Neighbors) {
					t.Fatalf("step %d multi h=%d item %d mismatch", step, hh, i)
				}
			}
		}

		eps := re[0].Neighbors[len(re[0].Neighbors)-1].Dist * 1.5
		ge, err := exact.SearchRange(eps, h)
		if err != nil {
			t.Fatal(err)
		}
		ga, err := anyIx.SearchRange(eps, h)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ge {
			if !sameNeighbors(ge[i].Neighbors, ga[i].Neighbors) {
				t.Fatalf("step %d range item %d mismatch", step, i)
			}
		}

		obs := hist[len(hist)-1] + rng.NormFloat64()*0.3
		if err := exact.Advance(obs); err != nil {
			t.Fatal(err)
		}
		if err := anyIx.Advance(obs); err != nil {
			t.Fatal(err)
		}
	}
	if anyIx.AnytimeConfig().Model.N() == 0 {
		t.Fatal("learned model observed nothing across 12 anytime searches")
	}
}

// Property test: under a staged deadline the progressive result for
// each item query is a valid best-so-far set — every returned neighbour
// carries its exact DTW distance, per-rank distances dominate the exact
// kNN set's (prog[i].Dist ≥ exact[i].Dist), any neighbour shared with
// the exact set has a bit-identical distance, and a run whose stats say
// "not progressive" (deadline never fired, or search sealed early) is
// exactly the exact set. Quality numbers must be sane, and a generous
// deadline must converge to exact.
func TestProgressiveStagedDeadlines(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	hist := noise(rng, 900)
	p := smallParams()
	exact, err := New(testDevice(t), hist, p)
	if err != nil {
		t.Fatal(err)
	}
	anyIx, err := New(testDevice(t), hist, p)
	if err != nil {
		t.Fatal(err)
	}
	anyIx.SetAnytime(Anytime{Enabled: true, Model: anytime.NewModel()})

	const k, h = 5, 3
	re, err := exact.Search(k, h)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the anytime index too (no deadline) so both sides have the
	// same prevNN seeds going into the staged runs.
	if _, err := anyIx.Search(k, h); err != nil {
		t.Fatal(err)
	}

	sawProgressive := false
	for n := int64(0); n <= 24; n++ {
		ra, err := anyIx.SearchCtx(newCountdown(n), k, h)
		if err != nil {
			// The deadline fired during the lower-bound pass: that phase
			// has no best-so-far set, so erroring out is the contract.
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("budget %d: unexpected error %v", n, err)
			}
			continue
		}
		st := anyIx.Stats()
		if st.Progressive {
			sawProgressive = true
		}
		if st.FracVerified < 0 || st.FracVerified > 1 || st.LBGap < 0 || st.LBGap > 1 || st.ProbExact < 0 || st.ProbExact > 1 {
			t.Fatalf("budget %d: quality out of range %+v", n, st)
		}
		for i := range re {
			ep := re[i].Neighbors
			pp := ra[i].Neighbors
			if !st.Progressive {
				if !sameNeighbors(ep, pp) {
					t.Fatalf("budget %d item %d: non-progressive result differs from exact", n, i)
				}
				continue
			}
			exactDist := make(map[int]float64, len(ep))
			for _, nb := range ep {
				exactDist[nb.T] = nb.Dist
			}
			for r, nb := range pp {
				if r < len(ep) && nb.Dist < ep[r].Dist {
					t.Fatalf("budget %d item %d rank %d: progressive dist %v beats exact %v", n, i, r, nb.Dist, ep[r].Dist)
				}
				if d, ok := exactDist[nb.T]; ok && d != nb.Dist {
					t.Fatalf("budget %d item %d T=%d: dist %v != exact %v", n, i, nb.T, nb.Dist, d)
				}
				if r > 0 && nb.Dist < pp[r-1].Dist {
					t.Fatalf("budget %d item %d: progressive set not sorted", n, i)
				}
			}
		}
	}
	if !sawProgressive {
		t.Fatal("no staged budget produced a progressive result")
	}

	// A huge budget never hits the deadline: bit-identical to exact.
	ra, err := anyIx.SearchCtx(newCountdown(1<<30), k, h)
	if err != nil {
		t.Fatal(err)
	}
	if anyIx.Stats().Progressive {
		t.Fatal("unlimited budget still marked progressive")
	}
	for i := range re {
		if !sameNeighbors(re[i].Neighbors, ra[i].Neighbors) {
			t.Fatalf("unlimited budget item %d differs from exact", i)
		}
	}
}

// Progressive SearchRange under a staged deadline returns a subset of
// the exact in-range set with bit-identical distances.
func TestProgressiveRangeSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	hist := randwalk(rng, 500)
	p := smallParams()
	exact, err := New(testDevice(t), hist, p)
	if err != nil {
		t.Fatal(err)
	}
	anyIx, err := New(testDevice(t), hist, p)
	if err != nil {
		t.Fatal(err)
	}
	anyIx.SetAnytime(Anytime{Enabled: true})

	const h = 3
	re, err := exact.Search(5, h)
	if err != nil {
		t.Fatal(err)
	}
	eps := re[0].Neighbors[len(re[0].Neighbors)-1].Dist * 2
	ge, err := exact.SearchRange(eps, h)
	if err != nil {
		t.Fatal(err)
	}
	for n := int64(0); n <= 16; n++ {
		ga, err := anyIx.SearchRangeCtx(newCountdown(n), eps, h)
		if err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("budget %d: unexpected error %v", n, err)
			}
			continue
		}
		for i := range ge {
			exactDist := make(map[int]float64, len(ge[i].Neighbors))
			for _, nb := range ge[i].Neighbors {
				exactDist[nb.T] = nb.Dist
			}
			for _, nb := range ga[i].Neighbors {
				d, ok := exactDist[nb.T]
				if !ok {
					t.Fatalf("budget %d item %d: progressive returned T=%d outside exact range set", n, i, nb.T)
				}
				if d != nb.Dist {
					t.Fatalf("budget %d item %d T=%d: dist %v != exact %v", n, i, nb.T, nb.Dist, d)
				}
			}
			if !anyIx.Stats().Progressive && len(ga[i].Neighbors) != len(ge[i].Neighbors) {
				t.Fatalf("budget %d item %d: non-progressive range result incomplete", n, i)
			}
		}
	}
}

// Satellite regression: in EXACT mode the deadline check happens at
// verify-task (chunk) granularity, so an expired deadline aborts the
// fused launch after a bounded number of chunks instead of running the
// whole verification phase. The countdown budget lets exactly 4 chunk
// checks pass; the simulated device time of the aborted search must be
// well under half of the full search on the same index.
func TestExactDeadlineChunkGranularity(t *testing.T) {
	old := runtime.GOMAXPROCS(2) // bound in-flight blocks; workers bind at NewDevice
	defer runtime.GOMAXPROCS(old)

	rng := rand.New(rand.NewSource(17))
	p := smallParams()
	p.DisableEarlyAbandon = true // uniform chunk cost: the sim-time ratio is deterministic
	hist := noise(rng, 4200)
	dev := testDevice(t)
	ix, err := New(dev, hist, p)
	if err != nil {
		t.Fatal(err)
	}

	const k, h = 5, 3
	// Budget: omega checks in the lower-bound kernel, then 4 verify-chunk
	// checks succeed before the deadline trips the rest of the grid.
	budget := int64(p.Omega) + 4
	before := dev.SimSeconds()
	_, err = ix.SearchCtx(newCountdown(budget), k, h)
	aborted := dev.SimSeconds() - before
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected deadline error, got %v", err)
	}

	before = dev.SimSeconds()
	if _, err := ix.Search(k, h); err != nil {
		t.Fatal(err)
	}
	full := dev.SimSeconds() - before
	if aborted >= full/2 {
		t.Fatalf("aborted search cost %.3gs ≥ half of full %.3gs: deadline not chunk-granular", aborted, full)
	}
}

// The learned lower-bound layer trains from verified pairs and, once
// ready, orders rounds (LBModelHits) without changing results.
func TestLearnedModelOrdersWithoutChangingResults(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	hist := randwalk(rng, 500)
	p := smallParams()
	exact, err := New(testDevice(t), hist, p)
	if err != nil {
		t.Fatal(err)
	}
	anyIx, err := New(testDevice(t), hist, p)
	if err != nil {
		t.Fatal(err)
	}
	model := anytime.NewModel()
	anyIx.SetAnytime(Anytime{Enabled: true, Model: model})

	const k, h = 5, 3
	if _, err := anyIx.Search(k, h); err != nil { // training pass
		t.Fatal(err)
	}
	if !model.Ready() {
		t.Skipf("model not trained after one pass (n=%d)", model.N())
	}
	re, err := exact.Search(k, h)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := anyIx.Search(k, h)
	if err != nil {
		t.Fatal(err)
	}
	if anyIx.Stats().LBModelHits == 0 {
		t.Fatal("trained model was not consulted (LBModelHits == 0)")
	}
	for i := range re {
		if !sameNeighbors(re[i].Neighbors, ra[i].Neighbors) {
			t.Fatalf("item %d: model-ordered result differs from exact", i)
		}
	}
}
