package cluster

import "smiler/internal/obs"

// metrics bundles the cluster's instruments. Everything lives in the
// system's shared registry, so GET /metrics on any node exposes its
// cluster behaviour next to the prediction and ingest metrics. All
// fields tolerate a nil registry (they become no-ops).
type metrics struct {
	reg  *obs.Registry
	node *Node

	forwards      func(target string) *obs.Counter
	forwardErrs   *obs.Counter
	forwardSec    *obs.Histogram
	replFrames    *obs.Counter // frames shipped to followers
	replApplied   *obs.Counter // frames applied from a primary
	replDupes     *obs.Counter // duplicate frames dropped (idempotent redelivery)
	replDropped   *obs.Counter // frames shed on a full peer queue
	replErrs      *obs.Counter // failed replication posts
	resyncs       *obs.Counter // snapshot pushes triggered by gaps
	failovers     *obs.Counter // peer up→down transitions
	promotedServe *obs.Counter // degraded forecasts served as a promoted replica
	staleRejects  *obs.Counter // promoted reads refused: staleness bound exceeded
	writeRejects  *obs.Counter // mutations refused while promoted
	migrations    *obs.Counter
}

func newMetrics(reg *obs.Registry, node *Node) *metrics {
	m := &metrics{reg: reg, node: node}
	m.forwards = func(target string) *obs.Counter {
		return reg.Counter("smiler_cluster_forwards_total",
			"Requests forwarded to their owning node.", obs.L("target", target))
	}
	m.forwardErrs = reg.Counter("smiler_cluster_forward_errors_total",
		"Forwarded requests that failed in transit.")
	m.forwardSec = reg.Histogram("smiler_cluster_forward_seconds",
		"Forwarding round-trip latency.", nil)
	m.replFrames = reg.Counter("smiler_cluster_replicated_frames_total",
		"WAL frames shipped to follower nodes.")
	m.replApplied = reg.Counter("smiler_cluster_applied_frames_total",
		"Replicated WAL frames applied from a primary.")
	m.replDupes = reg.Counter("smiler_cluster_duplicate_frames_total",
		"Replicated frames dropped as duplicates.")
	m.replDropped = reg.Counter("smiler_cluster_replication_dropped_total",
		"Replication frames shed because a peer queue was full.")
	m.replErrs = reg.Counter("smiler_cluster_replication_errors_total",
		"Replication batches that failed to reach a peer.")
	m.resyncs = reg.Counter("smiler_cluster_resyncs_total",
		"Snapshot pushes triggered by sequence gaps or unknown sensors.")
	m.failovers = reg.Counter("smiler_cluster_failovers_total",
		"Peer transitions from up to down (after consecutive probe failures).")
	m.promotedServe = reg.Counter("smiler_cluster_promoted_serves_total",
		"Forecasts served as a promoted replica (Degraded: replica).")
	m.staleRejects = reg.Counter("smiler_cluster_stale_rejects_total",
		"Promoted reads refused because the staleness bound was exceeded.")
	m.writeRejects = reg.Counter("smiler_cluster_write_rejects_total",
		"Mutations refused while serving as a promoted replica.")
	m.migrations = reg.Counter("smiler_cluster_migrations_total",
		"Sensors migrated onto or away from this node.")
	// Replication lag: frames queued toward peers but not yet shipped.
	reg.GaugeFunc("smiler_cluster_replication_lag_frames",
		"Frames buffered for followers, not yet shipped.",
		func() float64 {
			if node.repl == nil {
				return 0
			}
			return float64(node.repl.queuedFrames())
		})
	// Membership: the installed map's epoch and size, and the local
	// rebalancer's progress counters.
	reg.GaugeFunc("smiler_cluster_map_epoch",
		"Epoch of the installed cluster map.",
		func() float64 { return float64(node.epoch()) })
	reg.GaugeFunc("smiler_cluster_members",
		"Members in the installed cluster map (any state).",
		func() float64 {
			if v := node.curView(); v != nil {
				return float64(len(v.members))
			}
			return 0
		})
	reg.GaugeFunc("smiler_rebalance_moved_sensors",
		"Sensors this node's rebalancer has migrated (cumulative).",
		func() float64 {
			if node.reb == nil {
				return 0
			}
			return float64(node.reb.moved.Load())
		})
	reg.GaugeFunc("smiler_rebalance_pending_sensors",
		"Misplaced sensors remaining in the current rebalance plan.",
		func() float64 {
			if node.reb == nil {
				return 0
			}
			return float64(node.reb.pending.Load())
		})
	return m
}

// syncPeers (re)registers the per-peer up/down gauge for the current
// peer set. The registry dedupes by name+label, so re-registering a
// known peer is a no-op; a peer that has left the map keeps its
// registered series but reads 0 (the closure checks membership).
func (m *metrics) syncPeers(ids []string) {
	for _, p := range ids {
		p := p
		m.reg.GaugeFunc("smiler_cluster_peer_up",
			"1 when the peer's readiness probe passes, 0 when it is down or gone.",
			func() float64 {
				if _, ok := m.node.member(p); !ok {
					return 0
				}
				if m.node.health.isUp(p) {
					return 1
				}
				return 0
			}, obs.L("peer", p))
	}
}
