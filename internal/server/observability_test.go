package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"smiler"
	"smiler/internal/obs"
)

// addPredictSensor registers a sensor and runs one prediction so the
// registry and trace store have real data.
func addPredictSensor(t *testing.T, cl *Client, id string) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	if err := cl.AddSensor(id, seasonal(rng, 400)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Forecast(id, 1); err != nil {
		t.Fatal(err)
	}
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	ts, cl, _ := newTestServer(t)
	addPredictSensor(t, cl, "m1")

	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE smiler_predictions_total counter",
		"smiler_predictions_total 1",
		"# TYPE smiler_predict_phase_seconds histogram",
		`smiler_predict_phase_seconds_bucket{phase="search",le="+Inf"} 1`,
		`smiler_predict_phase_seconds_count{phase="total"} 1`,
		"smiler_knn_candidates_total",
		"smiler_knn_pruned_total",
		"smiler_knn_unfiltered_total",
		"smiler_sensors 1",
		`smiler_ingest_processed_total{shard="0"}`,
		"smiler_forecast_cache_hits_total",
		"smiler_forecast_cache_misses_total 1",
		"smiler_gp_fits_total",
		`smiler_http_requests_total{route="/sensors",method="POST",status="201"} 1`,
		"smiler_http_request_seconds_bucket",
		`smiler_http_request_seconds_count{route="/sensors",code="201"} 1`,
		`smiler_http_request_seconds_count{route="/sensors/{id}/forecast",code="200"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", body)
	}
}

func TestMetricsDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.DisableMetrics = true
	sys, err := smiler.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	srv, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	if resp, _ := get(t, ts, "/metrics"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics with metrics disabled = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/debug/trace/x"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/trace with metrics disabled = %d, want 404", resp.StatusCode)
	}
	// The rest of the API must still work with a nil registry.
	cl, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	addPredictSensor(t, cl, "quiet")
}

func TestTraceEndpoint(t *testing.T) {
	ts, cl, _ := newTestServer(t)
	addPredictSensor(t, cl, "t1")
	if _, err := cl.Forecast("t1", 2); err != nil {
		t.Fatal(err)
	}

	resp, body := get(t, ts, "/debug/trace/t1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var traces []obs.Trace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(traces))
	}
	// Newest first: the horizon-2 call is traces[0].
	if traces[0].Horizons[0] != 2 || traces[1].Horizons[0] != 1 {
		t.Fatalf("trace order: %v then %v", traces[0].Horizons, traces[1].Horizons)
	}
	tr := traces[0]
	if tr.Sensor != "t1" || tr.TotalS <= 0 || tr.Error != "" {
		t.Fatalf("trace header = %+v", tr)
	}
	spans := make(map[string]bool)
	for _, sp := range tr.Spans {
		spans[sp.Name] = true
	}
	for _, want := range []string{"search", "lower_bound", "verify", "mix"} {
		if !spans[want] {
			t.Errorf("trace missing span %q (have %v)", want, tr.Spans)
		}
	}
	hasFit := false
	for name := range spans {
		if strings.HasSuffix(name, "_fit") {
			hasFit = true
		}
	}
	if !hasFit {
		t.Errorf("trace missing a per-cell fit span (have %v)", tr.Spans)
	}
	for _, stat := range []string{"knn_candidates", "knn_pruned", "knn_unfiltered"} {
		if _, ok := tr.Stats[stat]; !ok {
			t.Errorf("trace missing stat %q (have %v)", stat, tr.Stats)
		}
	}

	// ?n limits and still returns newest first.
	resp, body = get(t, ts, "/debug/trace/t1?n=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("?n=1 status = %d", resp.StatusCode)
	}
	traces = nil
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0].Horizons[0] != 2 {
		t.Fatalf("?n=1 = %+v", traces)
	}
}

func TestTraceEndpointErrors(t *testing.T) {
	ts, cl, _ := newTestServer(t)
	addPredictSensor(t, cl, "t2")
	if resp, _ := get(t, ts, "/debug/trace/"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty id = %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/debug/trace/t2?n=zero"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n = %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/debug/trace/nobody"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown sensor = %d, want 404", resp.StatusCode)
	}
	// A registered sensor that has not predicted yet: empty list, not 404.
	rng := rand.New(rand.NewSource(8))
	if err := cl.AddSensor("idle", seasonal(rng, 400)); err != nil {
		t.Fatal(err)
	}
	resp, body := get(t, ts, "/debug/trace/idle")
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Fatalf("idle sensor = %d %q, want 200 []", resp.StatusCode, body)
	}
}

func TestRequestIDMiddleware(t *testing.T) {
	ts, _, _ := newTestServer(t)
	resp, _ := get(t, ts, "/healthz")
	id1 := resp.Header.Get("X-Request-Id")
	if id1 == "" {
		t.Fatal("no X-Request-Id generated")
	}
	resp, _ = get(t, ts, "/healthz")
	if id2 := resp.Header.Get("X-Request-Id"); id2 == id1 {
		t.Fatalf("request IDs not unique: %q", id2)
	}
	// A client-supplied ID is echoed back.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "client-123")
	resp2, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); got != "client-123" {
		t.Fatalf("echoed ID = %q", got)
	}
}

func TestAccessLogLine(t *testing.T) {
	sys, err := smiler.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	srv, err := NewWithOptions(sys, Options{Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	if resp, _ := get(t, ts, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatal("healthz failed")
	}
	line := buf.String()
	for _, want := range []string{"msg=request", "method=GET", "path=/healthz", "status=200", "latency=", "id="} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %q: %s", want, line)
		}
	}
}

func TestNormalizeRoute(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"/healthz", "/healthz"},
		{"/sensors", "/sensors"},
		{"/sensors/abc", "/sensors/{id}"},
		{"/sensors/abc/forecast", "/sensors/{id}/forecast"},
		{"/sensors/abc/observe", "/sensors/{id}/observe"},
		{"/debug/trace/xyz", "/debug/trace/{sensor}"},
		{"/metrics", "/metrics"},
	} {
		if got := normalizeRoute(tc.in); got != tc.want {
			t.Errorf("normalizeRoute(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestMetricsMethodNotAllowed(t *testing.T) {
	ts, _, _ := newTestServer(t)
	resp, err := ts.Client().Post(ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", resp.StatusCode)
	}
}
