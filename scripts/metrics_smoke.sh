#!/usr/bin/env sh
# End-to-end observability smoke test: start smiler-server on an
# ephemeral port, register a sensor, run one prediction, then assert
# that /metrics serves every required metric family and that
# /debug/trace/{sensor} returns per-phase spans. A second phase boots
# a two-node cluster and asserts the membership gauges (map epoch,
# member count, rebalance counters) are served. Exits non-zero on any
# missing family. Run via `make metrics-smoke`.
set -eu

BIN=$(mktemp -d)/smiler-server
ADDR=127.0.0.1:18080
LOG=$(mktemp)

go build -o "$BIN" ./cmd/smiler-server

"$BIN" -addr "$ADDR" -predictor ar -log-level warn &
PID=$!
PIDC1=""
PIDC2=""
cleanup() {
    kill "$PID" 2>/dev/null || true
    [ -n "$PIDC1" ] && kill "$PIDC1" 2>/dev/null || true
    [ -n "$PIDC2" ] && kill "$PIDC2" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -f "$LOG"
}
trap cleanup EXIT INT TERM

# Wait for the listener.
i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "metrics-smoke: server did not come up on $ADDR" >&2
        exit 1
    fi
    sleep 0.2
done

# One sensor, one prediction — enough traffic to populate every family.
HIST=$(awk 'BEGIN{s="";for(i=0;i<300;i++){v=10+3*sin(2*3.14159265*i/24);s=s (i?",":"") v}print s}')
curl -sf -X POST "http://$ADDR/sensors" \
    -H 'Content-Type: application/json' \
    -d "{\"id\":\"smoke\",\"history\":[$HIST]}" >/dev/null
curl -sf "http://$ADDR/sensors/smoke/forecast?h=1" >/dev/null

curl -sf "http://$ADDR/metrics" >"$LOG"

status=0
for family in \
    smiler_predictions_total \
    smiler_predict_phase_seconds_bucket \
    smiler_knn_candidates_total \
    smiler_knn_pruned_total \
    smiler_knn_unfiltered_total \
    smiler_ingest_processed_total \
    smiler_forecast_cache_misses_total \
    smiler_forecast_cache_hits_total \
    smiler_gp_fits_total \
    smiler_sensors \
    smiler_http_requests_total \
    smiler_http_request_seconds_bucket \
    smiler_runtime_gc_pause_seconds \
    smiler_runtime_heap_live_bytes \
    smiler_runtime_goroutines \
    smiler_events_total \
    ; do
    if ! grep -q "^$family" "$LOG"; then
        echo "metrics-smoke: MISSING family $family" >&2
        status=1
    fi
done

if ! grep -q '^smiler_http_request_seconds_bucket{route=.*code="2' "$LOG"; then
    echo "metrics-smoke: smiler_http_request_seconds lacks the code label" >&2
    status=1
fi

if ! curl -sf "http://$ADDR/debug/trace/smoke" | grep -q '"name":"search"'; then
    echo "metrics-smoke: /debug/trace/smoke missing search span" >&2
    status=1
fi

# The flight recorder serves its ring, and at minimum the boot marker
# is in it.
if ! curl -sf "http://$ADDR/debug/events" | grep -q '"type":"startup"'; then
    echo "metrics-smoke: /debug/events missing the startup event" >&2
    status=1
fi

if [ "$status" -ne 0 ]; then
    echo "--- /metrics dump ---" >&2
    cat "$LOG" >&2
    exit $status
fi
echo "metrics-smoke: standalone OK ($(grep -c '^smiler_' "$LOG") smiler_* samples)"

# Phase 2: a two-node cluster must additionally serve the membership
# gauges — map epoch (nonzero), member count, per-peer liveness, and
# the rebalance counters.
PC1=18081
PC2=18082
CPEERS="c1=http://127.0.0.1:$PC1,c2=http://127.0.0.1:$PC2"
"$BIN" -addr "127.0.0.1:$PC1" -node-id c1 -cluster-peers "$CPEERS" \
    -predictor ar -log-level warn &
PIDC1=$!
"$BIN" -addr "127.0.0.1:$PC2" -node-id c2 -cluster-peers "$CPEERS" \
    -predictor ar -log-level warn &
PIDC2=$!
for port in "$PC1" "$PC2"; do
    i=0
    until curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "metrics-smoke: cluster node on :$port did not come up" >&2
            exit 1
        fi
        sleep 0.2
    done
done

curl -sf "http://127.0.0.1:$PC1/metrics" >"$LOG"
for family in \
    smiler_cluster_map_epoch \
    smiler_cluster_members \
    smiler_cluster_peer_up \
    smiler_rebalance_moved_sensors \
    smiler_rebalance_pending_sensors \
    ; do
    if ! grep -q "^$family" "$LOG"; then
        echo "metrics-smoke: MISSING cluster family $family" >&2
        status=1
    fi
done
# The seed map is epoch 1; the gauge must never read 0 on a live node.
if grep -q '^smiler_cluster_map_epoch 0$' "$LOG"; then
    echo "metrics-smoke: smiler_cluster_map_epoch reads 0" >&2
    status=1
fi

if [ "$status" -eq 0 ]; then
    echo "metrics-smoke: OK ($(grep -c '^smiler_' "$LOG") smiler_* samples on c1)"
else
    echo "--- cluster /metrics dump ---" >&2
    cat "$LOG" >&2
fi
exit $status
