package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"smiler/internal/fault"
	"smiler/internal/ingest"
	"smiler/internal/obs"
	"smiler/internal/server"
	"smiler/internal/wal"
)

// forwardedHeader marks a request that already went through one
// ownership gate. A node receiving it serves locally no matter what
// its own view says — two nodes with momentarily different health
// views must not bounce a request between them forever.
const forwardedHeader = "X-Smiler-Forwarded"

// ownerHeader names the node that served (or should serve) the
// sensor; server.OwnerURLHeader carries its base URL for ring-aware
// clients.
const ownerHeader = "X-Smiler-Owner"

// gate is the ownership middleware installed in front of the server's
// route table. It resolves the sensor a request targets (if any),
// then serves locally, forwards to the owner, or answers as a
// promoted replica.
func (n *Node) gate(w http.ResponseWriter, r *http.Request, next http.Handler) {
	sensor, bodyCopy, ok := n.extractSensor(w, r)
	if !ok {
		return // extractSensor already answered (bad body)
	}
	if sensor == "" {
		if r.Method == http.MethodPost && r.URL.Path == "/observations" {
			// The gate handles bulk before local routing, so it must route
			// through the idempotency cache itself: the entry node dedupes
			// the whole request under the client's key, and a forwarded
			// partition dedupes under the derived key the sender attached.
			n.srv.ServeIdempotent(w, r, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				n.bulkObserve(w, r, bodyCopy)
			}))
			return
		}
		next.ServeHTTP(w, r) // not sensor-scoped: always local
		return
	}
	if r.Header.Get(forwardedHeader) != "" {
		// A peer reached us directly: note its epoch, and stamp ours on
		// the response, so stale views heal off the regular request path
		// too (in both directions).
		n.noteEpoch(r.Header, "")
		n.stampEpoch(w)
	}
	owner, promoted := n.route(sensor)
	if owner.ID == "" {
		next.ServeHTTP(w, r) // no installed placement (mid-leave): local
		return
	}
	if owner.ID != n.cfg.Self {
		if r.Header.Get(forwardedHeader) != "" {
			// View skew: the sender thought we own this sensor. Serve
			// locally rather than bounce; our state is at worst a lagging
			// replica of the truth.
			n.setOwnerHeaders(w, Member{ID: n.cfg.Self, URL: n.selfURL})
			next.ServeHTTP(w, r)
			return
		}
		n.forward(w, r, owner, bodyCopy, sensor)
		return
	}
	// We are the effective owner. A draining node takes no NEW sensors:
	// ring-mapped registrations for sensors it does not hold go straight
	// to their target-ring owner, with an ownership override broadcast
	// so the cluster routes the fresh sensor to its real home at once.
	if !promoted && r.Method == http.MethodPost && r.URL.Path == "/sensors" &&
		r.Header.Get(forwardedHeader) == "" && !n.sys.HasSensor(sensor) {
		if v := n.curView(); v != nil && v.inMap && v.self == StateDraining {
			if n.redirectNewSensor(w, r, sensor, bodyCopy) {
				return
			}
		}
	}
	n.setOwnerHeaders(w, owner)
	if promoted {
		n.serveAsReplica(w, r, sensor, next)
		return
	}
	if n.isPaused(sensor) && r.Method != http.MethodGet {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			"sensor is quiescing for snapshot/migration; retry")
		return
	}
	if r.Method == http.MethodPost && r.URL.Path == "/sensors" {
		n.serveAddSensor(w, r, sensor, next)
		return
	}
	if r.Method == http.MethodDelete {
		n.serveRemoveSensor(w, r, sensor, next)
		return
	}
	next.ServeHTTP(w, r)
}

func (n *Node) setOwnerHeaders(w http.ResponseWriter, owner Member) {
	w.Header().Set(ownerHeader, owner.ID)
	w.Header().Set(server.OwnerURLHeader, owner.URL)
}

// redirectNewSensor forwards a new-sensor registration from a
// draining node to the first live target-ring candidate and, on
// success, installs + broadcasts the ownership override. Returns
// false when no live candidate exists — the registration then
// proceeds locally rather than failing (the rebalancer will move it).
func (n *Node) redirectNewSensor(w http.ResponseWriter, r *http.Request, sensor string, body []byte) bool {
	v := n.curView()
	if v == nil {
		return false
	}
	for _, id := range v.target.Preference(sensor, len(v.members)) {
		if id == n.cfg.Self || !n.health.isUp(id) {
			continue
		}
		tgt, ok := n.member(id)
		if !ok {
			continue
		}
		rec := &statusRecorder{ResponseWriter: w}
		n.forward(rec, r, tgt, body, sensor)
		if rec.status >= 200 && rec.status < 300 {
			n.setAssign(sensor, id)
			n.broadcastAssign(sensor, id)
		}
		return true
	}
	return false
}

// extractSensor pulls the target sensor id out of the request: the
// path for /sensors/{id}..., the body for POST /sensors. For
// body-carrying routes the body is read fully and both returned and
// re-installed on the request. ok=false means an error response was
// already written.
func (n *Node) extractSensor(w http.ResponseWriter, r *http.Request) (sensor string, body []byte, ok bool) {
	path := r.URL.Path
	if rest, found := strings.CutPrefix(path, "/sensors/"); found && rest != "" {
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		return rest, nil, true
	}
	if (path == "/sensors" && r.Method == http.MethodPost) ||
		(path == "/observations" && r.Method == http.MethodPost) {
		b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 256<<20))
		if err != nil {
			writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
			return "", nil, false
		}
		r.Body = io.NopCloser(bytes.NewReader(b))
		if path == "/observations" {
			return "", b, true // routed per-item by bulkObserve
		}
		var req server.AddSensorRequest
		if err := json.Unmarshal(b, &req); err != nil || req.ID == "" {
			// Let the local handler produce its usual 400.
			return "", b, true
		}
		return req.ID, b, true
	}
	return "", nil, true
}

// forward proxies the request to the owner, marking it forwarded and
// preserving the idempotency key, and relays the response verbatim
// (including the owner headers the owner set). The distributed trace
// context is stamped onto the outbound hop (hop counter incremented),
// and the hop itself is recorded as a trace on this node — with the
// owner's phase spans inlined from its compact span-summary header —
// so GET /debug/trace/{sensor} on the entry node shows the full
// cross-node picture of a forwarded forecast.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, owner Member, body []byte, sensor string) {
	start := time.Now()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else if r.Body != nil {
		rd = r.Body
	}
	// EscapedPath, not Path: a percent-encoded sensor id ("a%20b",
	// "a%2Fb") must reach the owner byte-identical, not re-decoded.
	u := owner.URL + r.URL.EscapedPath()
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, rd)
	if err != nil {
		n.m.forwardErrs.Inc()
		writeError(w, http.StatusInternalServerError, "forward: "+err.Error())
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if key := r.Header.Get(server.IdempotencyKeyHeader); key != "" {
		req.Header.Set(server.IdempotencyKeyHeader, key)
	}
	req.Header.Set(forwardedHeader, "1")
	n.peerHeaders(req)
	tc, traced := obs.TraceFromContext(r.Context())
	if traced {
		req.Header.Set(obs.TraceHeader, tc.Next().HeaderValue())
	}
	var resp *http.Response
	if err = checkPeerFault(fault.PointClusterForward, owner.ID); err == nil {
		resp, err = n.hc.Do(req)
	}
	if err != nil {
		n.m.forwardErrs.Inc()
		n.recordForwardTrace(sensor, tc, owner, start, nil, err)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusBadGateway, "forward to "+owner.ID+" failed: "+err.Error())
		return
	}
	defer resp.Body.Close()
	n.noteEpoch(resp.Header, owner.URL)
	for _, h := range []string{"Content-Type", ownerHeader, server.OwnerURLHeader, server.IdempotentReplayHeader, "Retry-After", obs.SpanSummaryHeader} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	n.m.forwards(owner.ID).Inc()
	n.m.forwardSec.Observe(time.Since(start).Seconds())
	n.recordForwardTrace(sensor, tc, owner, start, obs.DecodeSpans(resp.Header.Get(obs.SpanSummaryHeader)), nil)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// recordForwardTrace records the entry node's view of one forwarded
// request: a "forward" hop span covering the round trip, followed by
// the owner's phase spans (decoded from its span-summary response
// header) inlined with the owner id so the two sides are attributable
// in one trace. A no-op when tracing is disabled or the request
// carried no trace context.
func (n *Node) recordForwardTrace(sensor string, tc obs.TraceContext, owner Member, start time.Time, ownerSpans []obs.Span, fwdErr error) {
	store := n.sys.Traces()
	if store == nil || sensor == "" || !tc.Valid() {
		return
	}
	tr := obs.NewTrace(sensor)
	tr.SetContext(tc)
	tr.AddSpan("forward", "to "+owner.ID, 0, time.Since(start))
	for _, sp := range ownerSpans {
		tr.AddSpan(sp.Name, "owner "+owner.ID,
			time.Duration(sp.OffsetS*float64(time.Second)),
			time.Duration(sp.Duration*float64(time.Second)))
	}
	tr.Finish(fwdErr)
	store.Add(tr)
}

// --- owner-side lifecycle interception (replication of add/remove) ---

// statusRecorder captures the status the local handler wrote so the
// gate can replicate only mutations that actually applied.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// serveAddSensor runs the local registration and, on success, streams
// a self-contained add-sensor frame (carrying the sensor's current
// history, not the request body — any observation racing the
// registration is then already inside it) to the followers.
func (n *Node) serveAddSensor(w http.ResponseWriter, r *http.Request, sensor string, next http.Handler) {
	rec := &statusRecorder{ResponseWriter: w}
	next.ServeHTTP(rec, r)
	if rec.status < 200 || rec.status >= 300 {
		return
	}
	history, err := n.sys.History(sensor)
	if err != nil {
		return // removed in between; the remove frame covers it
	}
	n.repl.emit(wal.Record{Type: wal.RecAddSensor, Sensor: sensor, History: history})
}

// serveRemoveSensor runs the local removal and, on success, streams a
// remove frame to the followers.
func (n *Node) serveRemoveSensor(w http.ResponseWriter, r *http.Request, sensor string, next http.Handler) {
	rec := &statusRecorder{ResponseWriter: w}
	next.ServeHTTP(rec, r)
	if rec.status < 200 || rec.status >= 300 {
		return
	}
	n.repl.emit(wal.Record{Type: wal.RecRemoveSensor, Sensor: sensor})
	n.repl.dropSeq(sensor)
}

// --- promoted replica serving ---

// serveAsReplica answers for a sensor whose primary is down, from
// this node's replica state. Forecast reads are served tagged
// Degraded: "replica" while the staleness bound holds; everything
// else (mutations, and reads once too stale) answers 503 — writes
// wait for the primary (or an operator migration), so a returning
// primary has not missed any.
func (n *Node) serveAsReplica(w http.ResponseWriter, r *http.Request, sensor string, next http.Handler) {
	pref := n.preference(sensor)
	primary := pref[0]
	if r.Method != http.MethodGet {
		n.m.writeRejects.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int(n.cfg.ProbeInterval/time.Second)+1))
		writeError(w, http.StatusServiceUnavailable,
			"sensor "+sensor+" owner "+primary+" is down; mutations are rejected on replicas, retry")
		return
	}
	if stale := n.repl.sinceContact(primary); stale > n.cfg.MaxStaleness {
		n.m.staleRejects.Inc()
		writeError(w, http.StatusServiceUnavailable,
			"replica for "+sensor+" exceeded the staleness bound ("+stale.Truncate(time.Second).String()+")")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/sensors/")
	verb := ""
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		verb = rest[i+1:]
	}
	switch verb {
	case "forecast":
		n.replicaForecast(w, r, sensor)
	case "forecasts":
		n.replicaForecasts(w, r, sensor)
	default:
		// Non-forecast reads (ensemble, etc.) serve from local replica
		// state untagged; they are diagnostics, not predictions.
		next.ServeHTTP(w, r)
	}
}

// recordFailoverTrace records a "failover_serve" hop span for a
// degraded read served in the failed primary's stead, so the entry
// node's trace view attributes the answer to the promoted replica.
func (n *Node) recordFailoverTrace(r *http.Request, sensor string, start time.Time, predErr error) {
	store := n.sys.Traces()
	if store == nil {
		return
	}
	tc, ok := obs.TraceFromContext(r.Context())
	if !ok || !tc.Valid() {
		return
	}
	primary := n.preference(sensor)[0]
	tr := obs.NewTrace(sensor)
	tr.SetContext(tc)
	tr.AddSpan("failover_serve", "for primary "+primary, 0, time.Since(start))
	tr.Finish(predErr)
	store.Add(tr)
}

func parseZ(r *http.Request) (float64, bool) {
	z := 1.96
	if v := r.URL.Query().Get("z"); v != "" {
		p, err := strconv.ParseFloat(v, 64)
		if err != nil || p <= 0 {
			return 0, false
		}
		z = p
	}
	return z, true
}

func (n *Node) replicaForecast(w http.ResponseWriter, r *http.Request, sensor string) {
	h := 1
	if v := r.URL.Query().Get("h"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p <= 0 {
			writeError(w, http.StatusBadRequest, "invalid horizon "+strconv.Quote(v))
			return
		}
		h = p
	}
	z, ok := parseZ(r)
	if !ok {
		writeError(w, http.StatusBadRequest, "invalid z")
		return
	}
	start := time.Now()
	f, err := n.sys.PredictCtx(r.Context(), sensor, h)
	n.recordFailoverTrace(r, sensor, start, err)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "replica predict: "+err.Error())
		return
	}
	n.m.promotedServe.Inc()
	resp := server.MakeForecastResponse(sensor, h, f, z)
	resp.Degraded = true
	resp.DegradedReason = "replica"
	writeJSON(w, http.StatusOK, resp)
}

func (n *Node) replicaForecasts(w http.ResponseWriter, r *http.Request, sensor string) {
	hsParam := r.URL.Query().Get("hs")
	if hsParam == "" {
		writeError(w, http.StatusBadRequest, "missing hs parameter")
		return
	}
	var hs []int
	for _, part := range strings.Split(hsParam, ",") {
		h, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || h <= 0 {
			writeError(w, http.StatusBadRequest, "invalid horizon "+strconv.Quote(part))
			return
		}
		hs = append(hs, h)
	}
	z, ok := parseZ(r)
	if !ok {
		writeError(w, http.StatusBadRequest, "invalid z")
		return
	}
	start := time.Now()
	fs, err := n.sys.PredictHorizonsCtx(r.Context(), sensor, hs)
	n.recordFailoverTrace(r, sensor, start, err)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "replica predict: "+err.Error())
		return
	}
	out := make([]server.ForecastResponse, 0, len(hs))
	for _, h := range hs {
		resp := server.MakeForecastResponse(sensor, h, fs[h], z)
		resp.Degraded = true
		resp.DegradedReason = "replica"
		out = append(out, resp)
	}
	n.m.promotedServe.Inc()
	writeJSON(w, http.StatusOK, out)
}

// --- bulk observations ---

// bulkObserve partitions a multi-sensor batch by effective owner: the
// local partition goes through the pipeline, remote partitions are
// POSTed to their owners (with derived idempotency keys so each
// partition dedupes independently on retry), and per-item outcomes
// are merged back under the caller's original indices.
func (n *Node) bulkObserve(w http.ResponseWriter, r *http.Request, body []byte) {
	var req server.BulkObserveRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if len(req.Observations) == 0 {
		writeError(w, http.StatusBadRequest, "no observations")
		return
	}
	type part struct {
		owner   Member
		obs     []ingest.Observation
		indices []int
	}
	parts := make(map[string]*part)
	for i, o := range req.Observations {
		owner, _ := n.route(o.Sensor)
		p := parts[owner.ID]
		if p == nil {
			p = &part{owner: owner}
			parts[owner.ID] = p
		}
		p.obs = append(p.obs, o)
		p.indices = append(p.indices, i)
	}
	key := r.Header.Get(server.IdempotencyKeyHeader)
	forwarded := r.Header.Get(forwardedHeader) != ""
	// Quiesce check before anything applies or forwards, mirroring the
	// sensor-scoped gate: an item applied on the old owner while its
	// sensor is paused for snapshot/migration would miss the shipped
	// snapshot and be silently lost at cutover, so the whole batch
	// answers 503 instead (5xx responses are never idempotency-cached,
	// so a retry re-executes once the pause lifts).
	for id, p := range parts {
		if id != n.cfg.Self && !forwarded {
			continue // remote partition: its owner runs this check
		}
		for _, o := range p.obs {
			if n.isPaused(o.Sensor) {
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable,
					"sensor "+o.Sensor+" is quiescing for snapshot/migration; retry")
				return
			}
		}
	}
	var merged ingest.BulkResult
	for id, p := range parts {
		var res ingest.BulkResult
		switch {
		case forwarded:
			// Already dedupe-gated at this node's entry under the derived
			// key the sender attached.
			res = n.srv.Pipeline().ObserveBulk(p.obs)
		case id == n.cfg.Self:
			res = n.applyLocalPartition(r, p.obs, key)
		default:
			var err error
			res, err = n.forwardBulk(r, p.owner, p.obs, key)
			if err != nil {
				n.m.forwardErrs.Inc()
				// The whole partition failed in transit: report every item.
				for j, idx := range p.indices {
					merged.Failed = append(merged.Failed, ingest.BulkFailure{
						Index: idx, ID: p.obs[j].Sensor,
						Error: "forward to " + id + " failed: " + err.Error(),
					})
				}
				continue
			}
		}
		merged.Accepted += res.Accepted
		merged.Dropped += res.Dropped
		for _, f := range res.Failed {
			// Remap the partition-local index back to the caller's.
			if f.Index >= 0 && f.Index < len(p.indices) {
				f.Index = p.indices[f.Index]
			}
			merged.Failed = append(merged.Failed, f)
		}
	}
	writeJSON(w, http.StatusOK, merged)
}

// applyLocalPartition applies the partition this node owns. With an
// idempotency key the application runs through the server's idem cache
// under the same derived key a forwarded copy of this partition would
// carry (key/self): a client retry that re-enters the cluster at a
// different node forwards our partition back to us under that key and
// replays this result instead of double-applying.
func (n *Node) applyLocalPartition(r *http.Request, obs []ingest.Observation, key string) ingest.BulkResult {
	if key == "" {
		return n.srv.Pipeline().ObserveBulk(obs)
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, "/observations", nil)
	if err != nil {
		return n.srv.Pipeline().ObserveBulk(obs)
	}
	req.Header.Set(server.IdempotencyKeyHeader, key+"/"+n.cfg.Self)
	var rec bufferedResponse
	n.srv.ServeIdempotent(&rec, req, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, n.srv.Pipeline().ObserveBulk(obs))
	}))
	var res ingest.BulkResult
	if err := json.Unmarshal(rec.buf.Bytes(), &res); err != nil {
		// The cached body is always a BulkResult we wrote ourselves;
		// anything else means the apply never produced one.
		for i, o := range obs {
			res.Failed = append(res.Failed, ingest.BulkFailure{
				Index: i, ID: o.Sensor, Error: "idempotent apply: " + err.Error(),
			})
		}
	}
	return res
}

// bufferedResponse is an in-memory http.ResponseWriter for routing an
// internal apply through the idempotency cache.
type bufferedResponse struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header {
	if b.header == nil {
		b.header = make(http.Header)
	}
	return b.header
}

func (b *bufferedResponse) WriteHeader(code int) {
	if b.status == 0 {
		b.status = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	return b.buf.Write(p)
}

// forwardBulk ships one owner's partition of a bulk request.
func (n *Node) forwardBulk(r *http.Request, owner Member, items []ingest.Observation, key string) (ingest.BulkResult, error) {
	var res ingest.BulkResult
	body, err := json.Marshal(server.BulkObserveRequest{Observations: items})
	if err != nil {
		return res, err
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, owner.URL+"/observations", bytes.NewReader(body))
	if err != nil {
		return res, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, "1")
	n.peerHeaders(req)
	if tc, ok := obs.TraceFromContext(r.Context()); ok {
		req.Header.Set(obs.TraceHeader, tc.Next().HeaderValue())
	}
	if key != "" {
		// Derived key: each partition dedupes independently on retry.
		req.Header.Set(server.IdempotencyKeyHeader, key+"/"+owner.ID)
	}
	if err := checkPeerFault(fault.PointClusterForward, owner.ID); err != nil {
		return res, err
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return res, err
	}
	defer resp.Body.Close()
	n.noteEpoch(resp.Header, owner.URL)
	if resp.StatusCode != http.StatusOK {
		return res, errors.New("owner answered HTTP " + strconv.Itoa(resp.StatusCode))
	}
	n.m.forwards(owner.ID).Inc()
	err = json.NewDecoder(resp.Body).Decode(&res)
	return res, err
}
