package load

import (
	"math"
	"sync/atomic"
	"time"

	"smiler/internal/obs"
)

// Op enumerates the request types the loader issues and accounts for
// separately.
type Op int

const (
	// OpObserve is POST /sensors/{id}/observe with the sensor's next
	// stream value.
	OpObserve Op = iota
	// OpForecast is GET /sensors/{id}/forecast?h=H.
	OpForecast
	numOps
)

func (o Op) String() string {
	switch o {
	case OpObserve:
		return "observe"
	case OpForecast:
		return "forecast"
	default:
		return "op?"
	}
}

// latencyBuckets are the loader's histogram bounds: 50µs → ~120s in
// ×1.25 steps (~66 buckets). The serving registry's DefBuckets are too
// coarse for a p999 claim — at ×2.5 spacing a p999 estimate can be off
// by 2.5×; at ×1.25 the interpolation error is bounded at 25%.
var latencyBuckets = func() []float64 {
	var out []float64
	for b := 50e-6; b < 120; b *= 1.25 {
		out = append(out, b)
	}
	return out
}()

// opStats accumulates one op type's outcomes over one accounting
// scope (a phase, or a progress window). All methods are safe for
// concurrent use; reads are scrape-style (not transactional).
type opStats struct {
	count    atomic.Uint64
	errors   atomic.Uint64
	degraded atomic.Uint64
	// Quality-ladder rung counts for successful ops: exact, progressive
	// (deadline-truncated anytime search), fallback (degraded model).
	// An op with no quality tag counts as exact — observes and servers
	// predating the ladder.
	exact       atomic.Uint64
	progressive atomic.Uint64
	fallback    atomic.Uint64
	hist        *obs.Histogram
}

func newOpStats() *opStats {
	return &opStats{hist: obs.NewHistogram(latencyBuckets)}
}

func (s *opStats) record(d time.Duration, err error, degraded bool, quality string) {
	s.count.Add(1)
	if err != nil {
		s.errors.Add(1)
		return // failed ops don't pollute the latency distribution
	}
	if degraded {
		s.degraded.Add(1)
		if quality == "" {
			quality = "fallback" // pre-ladder servers tag degradation only
		}
	}
	switch quality {
	case "", "exact":
		s.exact.Add(1)
	case "progressive":
		s.progressive.Add(1)
	default:
		s.fallback.Add(1)
	}
	s.hist.Observe(d.Seconds())
}

// OpSummary is the reported view of one op type over one phase.
type OpSummary struct {
	Count        uint64  `json:"count"`
	Throughput   float64 `json:"throughput_per_s"`
	P50Ms        float64 `json:"p50_ms"`
	P90Ms        float64 `json:"p90_ms"`
	P99Ms        float64 `json:"p99_ms"`
	P999Ms       float64 `json:"p999_ms"`
	MeanMs       float64 `json:"mean_ms"`
	Errors       uint64  `json:"errors"`
	ErrorRate    float64 `json:"error_rate"`
	Degraded     uint64  `json:"degraded"`
	DegradedRate float64 `json:"degraded_rate"`
	// Quality-ladder rung counts and rates (rates over Count, so errors
	// count against every rung — "95% exact" means 95% of all issued
	// ops came back exact).
	Exact           uint64  `json:"exact"`
	Progressive     uint64  `json:"progressive,omitempty"`
	Fallback        uint64  `json:"fallback,omitempty"`
	ExactRate       float64 `json:"exact_rate"`
	ProgressiveRate float64 `json:"progressive_rate,omitempty"`
	FallbackRate    float64 `json:"fallback_rate,omitempty"`
}

func (s *opStats) summary(elapsed time.Duration) OpSummary {
	n := s.count.Load()
	errs := s.errors.Load()
	deg := s.degraded.Load()
	out := OpSummary{
		Count: n, Errors: errs, Degraded: deg,
		Exact:       s.exact.Load(),
		Progressive: s.progressive.Load(),
		Fallback:    s.fallback.Load(),
	}
	if n > 0 {
		out.ErrorRate = float64(errs) / float64(n)
		out.DegradedRate = float64(deg) / float64(n)
		out.ExactRate = float64(out.Exact) / float64(n)
		out.ProgressiveRate = float64(out.Progressive) / float64(n)
		out.FallbackRate = float64(out.Fallback) / float64(n)
	}
	if elapsed > 0 {
		out.Throughput = float64(n) / elapsed.Seconds()
	}
	if ok := s.hist.Count(); ok > 0 {
		out.MeanMs = s.hist.Sum() / float64(ok) * 1000
		out.P50Ms = quantMs(s.hist, 0.50)
		out.P90Ms = quantMs(s.hist, 0.90)
		out.P99Ms = quantMs(s.hist, 0.99)
		out.P999Ms = quantMs(s.hist, 0.999)
	}
	return out
}

func quantMs(h *obs.Histogram, q float64) float64 {
	v := h.Quantile(q)
	if math.IsNaN(v) {
		return 0
	}
	return v * 1000
}

// phaseStats scopes op accounting to one phase of the run.
type phaseStats struct {
	name  string
	start time.Time
	// end is set when the phase closes; zero while live.
	end time.Time
	ops [numOps]*opStats
	// shed counts open-loop arrivals the loader itself had to drop
	// because its dispatch queue was full — loader saturation, not
	// server failure, and reported separately so it can't masquerade
	// as either throughput or success.
	shed atomic.Uint64
}

func newPhaseStats(name string, start time.Time) *phaseStats {
	p := &phaseStats{name: name, start: start}
	for i := range p.ops {
		p.ops[i] = newOpStats()
	}
	return p
}

func (p *phaseStats) elapsed(now time.Time) time.Duration {
	if !p.end.IsZero() {
		return p.end.Sub(p.start)
	}
	return now.Sub(p.start)
}

// PhaseSummary is the reported view of one phase.
type PhaseSummary struct {
	DurationS float64              `json:"duration_s"`
	Ops       map[string]OpSummary `json:"ops"`
	Total     OpSummary            `json:"total"`
	Shed      uint64               `json:"shed,omitempty"`
}

func (p *phaseStats) summary(now time.Time) PhaseSummary {
	el := p.elapsed(now)
	out := PhaseSummary{
		DurationS: el.Seconds(),
		Ops:       make(map[string]OpSummary, numOps),
		Shed:      p.shed.Load(),
	}
	var total OpSummary
	for op := Op(0); op < numOps; op++ {
		s := p.ops[op].summary(el)
		if s.Count == 0 {
			continue
		}
		out.Ops[op.String()] = s
		total.Count += s.Count
		total.Errors += s.Errors
		total.Degraded += s.Degraded
		total.Exact += s.Exact
		total.Progressive += s.Progressive
		total.Fallback += s.Fallback
		total.Throughput += s.Throughput
	}
	if total.Count > 0 {
		total.ErrorRate = float64(total.Errors) / float64(total.Count)
		total.DegradedRate = float64(total.Degraded) / float64(total.Count)
		total.ExactRate = float64(total.Exact) / float64(total.Count)
		total.ProgressiveRate = float64(total.Progressive) / float64(total.Count)
		total.FallbackRate = float64(total.Fallback) / float64(total.Count)
	}
	out.Total = total
	return out
}
