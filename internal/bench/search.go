package bench

import (
	"fmt"
	"math"

	"smiler/internal/dtw"
	"smiler/internal/gpusim"
	"smiler/internal/index"
	"smiler/internal/scan"
)

func dtwDistance(q, c []float64, rho int) (float64, error) {
	return dtw.DistanceCompressed(q, c, rho, nil)
}

func posInf() float64 { return math.Inf(1) }

// SearchMethod names a Suffix-kNN-search implementation under test.
type SearchMethod string

// The methods of Fig. 7 / Fig. 8.
const (
	MethodSMiLerIdx   SearchMethod = "SMiLer-Idx"
	MethodSMiLerDir   SearchMethod = "SMiLer-Dir"
	MethodFastGPUScan SearchMethod = "FastGPUScan"
	MethodGPUScan     SearchMethod = "GPUScan"
	MethodFastCPUScan SearchMethod = "FastCPUScan"
)

// Fig7Row is one point of Fig. 7: the total time of the Suffix kNN
// Search for all sensors per continuous query step.
type Fig7Row struct {
	Dataset string
	Method  SearchMethod
	K       int
	WallSec float64 // measured wall-clock seconds per step (all sensors)
	SimSec  float64 // simulated GPU seconds per step (0 for CPU scan)
	Steps   int
	Sensors int
}

// searchParams are the paper's defaults (Table 2).
func searchParams() index.Params { return index.DefaultParams() }

// RunFig7 measures the Suffix kNN Search for each method and each k
// over `steps` continuous query steps on the corpus.
func RunFig7(c *Corpus, ks []int, steps int, methods []SearchMethod) ([]Fig7Row, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("bench: steps %d must be positive", steps)
	}
	p := searchParams()
	var rows []Fig7Row
	for _, k := range ks {
		for _, m := range methods {
			wall, sim, err := runSearchMethod(c, p, m, k, steps)
			if err != nil {
				return nil, fmt.Errorf("bench: %s k=%d: %w", m, k, err)
			}
			rows = append(rows, Fig7Row{
				Dataset: c.Spec.Name, Method: m, K: k,
				WallSec: wall / float64(steps), SimSec: sim / float64(steps),
				Steps: steps, Sensors: len(c.Series),
			})
		}
	}
	return rows, nil
}

// runSearchMethod executes one (method, k) cell: `steps` continuous
// suffix searches over every sensor, returning total wall and
// simulated seconds.
func runSearchMethod(c *Corpus, p index.Params, m SearchMethod, k, steps int) (wall, sim float64, err error) {
	dev := gpusim.MustNewDevice(gpusim.DefaultConfig())
	const h = 1
	switch m {
	case MethodSMiLerIdx:
		var ixs []*index.Index
		for _, s := range c.Series {
			ix, err := index.New(dev, s[:c.Spec.Warm], p)
			if err != nil {
				return 0, 0, err
			}
			defer ix.Close()
			ixs = append(ixs, ix)
		}
		for step := 0; step < steps; step++ {
			for si, ix := range ixs {
				next := c.Series[si][c.Spec.Warm+step]
				t := StartTimer()
				dev.ResetTimer()
				if err := ix.Advance(next); err != nil {
					return 0, 0, err
				}
				if _, err := ix.Search(k, h); err != nil {
					return 0, 0, err
				}
				wall += t.Seconds()
				sim += dev.SimSeconds()
			}
		}
		return wall, sim, nil

	case MethodSMiLerDir:
		for si := range c.Series {
			for step := 0; step < steps; step++ {
				hist := c.Series[si][:c.Spec.Warm+step+1]
				t := StartTimer()
				dev.ResetTimer()
				bounds, _, err := scan.DirLBen(dev, hist, p.ELV, p.Rho, h)
				if err != nil {
					return 0, 0, err
				}
				for i, d := range p.ELV {
					q := hist[len(hist)-d:]
					if _, err := verifySelect(dev, hist, q, p.Rho, k, bounds[i]); err != nil {
						return 0, 0, err
					}
				}
				wall += t.Seconds()
				sim += dev.SimSeconds()
			}
		}
		return wall, sim, nil

	case MethodFastGPUScan, MethodGPUScan:
		for si := range c.Series {
			for step := 0; step < steps; step++ {
				hist := c.Series[si][:c.Spec.Warm+step+1]
				t := StartTimer()
				dev.ResetTimer()
				for _, d := range p.ELV {
					q := hist[len(hist)-d:]
					var err error
					if m == MethodFastGPUScan {
						_, err = scan.FastGPUScan(dev, hist, q, p.Rho, k, h)
					} else {
						_, err = scan.GPUScan(dev, hist, q, k, h)
					}
					if err != nil {
						return 0, 0, err
					}
				}
				wall += t.Seconds()
				sim += dev.SimSeconds()
			}
		}
		return wall, sim, nil

	case MethodFastCPUScan:
		for si := range c.Series {
			for step := 0; step < steps; step++ {
				hist := c.Series[si][:c.Spec.Warm+step+1]
				t := StartTimer()
				for _, d := range p.ELV {
					q := hist[len(hist)-d:]
					if _, _, err := scan.FastCPUScan(hist, q, p.Rho, k, h); err != nil {
						return 0, 0, err
					}
				}
				wall += t.Seconds()
			}
		}
		return wall, 0, nil
	}
	return 0, 0, fmt.Errorf("bench: unknown search method %q", m)
}

// verifySelect is the filter/verify/select tail used by the
// SMiLer-Dir strawman: threshold from the k smallest bounds, exact
// DTW on survivors, block k-selection.
func verifySelect(dev *gpusim.Device, hist, query []float64, rho, k int, bounds []float64) ([]scan.Result, error) {
	if len(bounds) == 0 {
		return nil, nil
	}
	var seeds []gpusim.KSelectResult
	if err := dev.Launch(1, func(b *gpusim.Block) error {
		seeds = gpusim.KSelectBlock(b, bounds, k)
		return nil
	}); err != nil {
		return nil, err
	}
	tau := 0.0
	d := len(query)
	for _, s := range seeds {
		dist, err := dtwDistance(query, hist[s.Index:s.Index+d], rho)
		if err != nil {
			return nil, err
		}
		if dist > tau {
			tau = dist
		}
	}
	dists := make([]float64, len(bounds))
	inf := posInf()
	for t, lb := range bounds {
		if lb > tau {
			dists[t] = inf
			continue
		}
		dist, err := dtwDistance(query, hist[t:t+d], rho)
		if err != nil {
			return nil, err
		}
		dists[t] = dist
	}
	var sel []gpusim.KSelectResult
	if err := dev.Launch(1, func(b *gpusim.Block) error {
		b.ParallelCompute(len(dists), d*(2*rho+1)*3)
		b.GlobalAccess(len(dists) * d)
		sel = gpusim.KSelectBlock(b, dists, k)
		return nil
	}); err != nil {
		return nil, err
	}
	out := make([]scan.Result, len(sel))
	for i, s := range sel {
		out[i] = scan.Result{T: s.Index, Dist: s.Value}
	}
	return out, nil
}

// Fig8Row is one bar of Fig. 8: the time to produce the enhanced lower
// bounds for all sensors, with vs without the window-level index.
type Fig8Row struct {
	Dataset string
	Method  SearchMethod // MethodSMiLerIdx or MethodSMiLerDir
	WallSec float64      // per step, all sensors
	SimSec  float64
}

// RunFig8 measures LBen production only (no verification) for both
// methods over `steps` continuous steps.
func RunFig8(c *Corpus, steps int) ([]Fig8Row, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("bench: steps %d must be positive", steps)
	}
	p := searchParams()
	dev := gpusim.MustNewDevice(gpusim.DefaultConfig())
	const h = 1

	var idxWall, idxSim float64
	var ixs []*index.Index
	for _, s := range c.Series {
		ix, err := index.New(dev, s[:c.Spec.Warm], p)
		if err != nil {
			return nil, err
		}
		defer ix.Close()
		ixs = append(ixs, ix)
	}
	for step := 0; step < steps; step++ {
		for si, ix := range ixs {
			next := c.Series[si][c.Spec.Warm+step]
			t := StartTimer()
			dev.ResetTimer()
			if err := ix.Advance(next); err != nil {
				return nil, err
			}
			if _, err := ix.ComputeLowerBounds(h); err != nil {
				return nil, err
			}
			idxWall += t.Seconds()
			idxSim += dev.SimSeconds()
		}
	}

	var dirWall, dirSim float64
	for si := range c.Series {
		for step := 0; step < steps; step++ {
			hist := c.Series[si][:c.Spec.Warm+step+1]
			t := StartTimer()
			dev.ResetTimer()
			if _, _, err := scan.DirLBen(dev, hist, p.ELV, p.Rho, h); err != nil {
				return nil, err
			}
			dirWall += t.Seconds()
			dirSim += dev.SimSeconds()
		}
	}
	fs := float64(steps)
	return []Fig8Row{
		{Dataset: c.Spec.Name, Method: MethodSMiLerIdx, WallSec: idxWall / fs, SimSec: idxSim / fs},
		{Dataset: c.Spec.Name, Method: MethodSMiLerDir, WallSec: dirWall / fs, SimSec: dirSim / fs},
	}, nil
}

// Table3Row is one cell block of Table 3: filtering power and
// verification cost of one lower bound on one dataset.
type Table3Row struct {
	Dataset       string
	Bound         index.LBMode
	VerifyWallSec float64 // total verification wall time over the run
	VerifySimSec  float64 // total simulated verification time
	Unfiltered    float64 // unfiltered candidates per query per sensor
}

// RunTable3 measures the three lower bounds' filtering behaviour with
// k=32 over `steps` continuous steps.
func RunTable3(c *Corpus, steps int) ([]Table3Row, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("bench: steps %d must be positive", steps)
	}
	const k, h = 32, 1
	var rows []Table3Row
	for _, mode := range []index.LBMode{index.LBModeEQ, index.LBModeEC, index.LBModeEn} {
		dev := gpusim.MustNewDevice(gpusim.DefaultConfig())
		p := searchParams()
		p.LB = mode
		var unfiltered, queries, wallVerify, simVerify float64
		for si, s := range c.Series {
			ix, err := index.New(dev, s[:c.Spec.Warm], p)
			if err != nil {
				return nil, err
			}
			for step := 0; step < steps; step++ {
				if err := ix.Advance(c.Series[si][c.Spec.Warm+step]); err != nil {
					ix.Close()
					return nil, err
				}
				t := StartTimer()
				if _, err := ix.Search(k, h); err != nil {
					ix.Close()
					return nil, err
				}
				wallVerify += t.Seconds() // search wall time dominated by verify at k=32
				st := ix.Stats()
				simVerify += st.VerifySimSeconds
				unfiltered += float64(st.Unfiltered)
				queries += float64(len(p.ELV))
			}
			ix.Close()
		}
		rows = append(rows, Table3Row{
			Dataset:       c.Spec.Name,
			Bound:         mode,
			VerifyWallSec: wallVerify,
			VerifySimSec:  simVerify,
			Unfiltered:    unfiltered / queries,
		})
	}
	return rows, nil
}

// SearchProfile is the per-category simulated-cycle breakdown of one
// search method over a run — it explains *where* the index wins
// (bandwidth on posting sums vs full-segment DTW traffic).
type SearchProfile struct {
	Dataset string
	Method  SearchMethod
	Profile gpusim.Profile
}

// RunSearchProfile runs `steps` continuous Suffix kNN steps for the
// index and the banded full scan, returning the accumulated cost-model
// breakdown of each.
func RunSearchProfile(c *Corpus, steps, k int) ([]SearchProfile, error) {
	if steps <= 0 || k <= 0 {
		return nil, fmt.Errorf("bench: invalid args steps=%d k=%d", steps, k)
	}
	p := searchParams()
	var out []SearchProfile
	for _, m := range []SearchMethod{MethodSMiLerIdx, MethodFastGPUScan} {
		dev := gpusim.MustNewDevice(gpusim.DefaultConfig())
		switch m {
		case MethodSMiLerIdx:
			var ixs []*index.Index
			for _, s := range c.Series {
				ix, err := index.New(dev, s[:c.Spec.Warm], p)
				if err != nil {
					return nil, err
				}
				defer ix.Close()
				ixs = append(ixs, ix)
			}
			dev.ResetTimer() // profile the steady state, not construction
			for step := 0; step < steps; step++ {
				for si, ix := range ixs {
					if err := ix.Advance(c.Series[si][c.Spec.Warm+step]); err != nil {
						return nil, err
					}
					if _, err := ix.Search(k, 1); err != nil {
						return nil, err
					}
				}
			}
		default:
			dev.ResetTimer()
			for si := range c.Series {
				for step := 0; step < steps; step++ {
					hist := c.Series[si][:c.Spec.Warm+step+1]
					for _, d := range p.ELV {
						q := hist[len(hist)-d:]
						if _, err := scan.FastGPUScan(dev, hist, q, p.Rho, k, 1); err != nil {
							return nil, err
						}
					}
				}
			}
		}
		out = append(out, SearchProfile{Dataset: c.Spec.Name, Method: m, Profile: dev.Profile()})
	}
	return out, nil
}
