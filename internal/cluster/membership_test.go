package cluster_test

// Dynamic-membership tests: versioned cluster map, lowest-id-alive
// election, join with resumable rebalancing, decommission with drain,
// and crash-during-rebalance recovery. Everything runs in-process on
// real listeners with fast probe/rebalance intervals.

import (
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"smiler"
	"smiler/internal/cluster"
	"smiler/internal/fault"
	"smiler/internal/server"
)

// fastRebalance shrinks rebalance batches and pacing so tests can
// observe (and interrupt) a rebalance mid-flight.
func fastRebalance(cfg *cluster.Config) {
	cfg.RebalanceBatch = 1
	cfg.RebalanceInterval = 100 * time.Millisecond
}

// hasNodeEvent reports whether the node's flight recorder holds an
// event of the given type.
func hasNodeEvent(tn *testNode, typ string) bool {
	for _, ev := range tn.sys.Events().Since(0, 0) {
		if ev.Type == typ {
			return true
		}
	}
	return false
}

// registerSensors adds sensors with per-sensor seeded histories and
// returns the histories for reference replays.
func registerSensors(t *testing.T, cl *server.Client, sensors []string, n int) map[string][]float64 {
	t.Helper()
	hist := make(map[string][]float64, len(sensors))
	for i, s := range sensors {
		h := seasonal(rand.New(rand.NewSource(int64(100+i))), n)
		hist[s] = h
		if err := cl.AddSensor(s, h); err != nil {
			t.Fatalf("add %s: %v", s, err)
		}
	}
	return hist
}

func sensorNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("ms-%d", i)
	}
	return out
}

// referenceSystem replays the same histories into a single standalone
// system — the oracle the cluster's forecasts must match bit for bit.
func referenceSystem(t *testing.T, hist map[string][]float64) *smiler.System {
	t.Helper()
	ref, err := smiler.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ref.Close() })
	for s, h := range hist {
		if err := ref.AddSensor(s, h); err != nil {
			t.Fatal(err)
		}
	}
	return ref
}

// assertForecastsMatchRef compares every sensor's forecast, fetched
// through the cluster via cl, against the reference system.
func assertForecastsMatchRef(t *testing.T, cl *server.Client, ref *smiler.System, sensors []string) {
	t.Helper()
	for _, s := range sensors {
		want, err := ref.Predict(s, 1)
		if err != nil {
			t.Fatalf("reference predict %s: %v", s, err)
		}
		got, err := cl.Forecast(s, 1)
		if err != nil {
			t.Fatalf("cluster forecast %s: %v", s, err)
		}
		if got.Degraded {
			t.Fatalf("forecast %s degraded after convergence: %+v", s, got)
		}
		if got.Mean != want.Mean || got.Variance != want.Variance {
			t.Fatalf("forecast %s = (%v, %v), reference (%v, %v)",
				s, got.Mean, got.Variance, want.Mean, want.Variance)
		}
	}
}

// TestClusterMapSeedAgreement: every node derives the identical signed
// epoch-1 map from the shared static configuration and elects the
// lowest id as primary — no coordination at boot.
func TestClusterMapSeedAgreement(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	var first cluster.ClusterMapResponse
	for i, tn := range nodes {
		var m cluster.ClusterMapResponse
		getJSON(t, tn.ts.URL+"/cluster/map", &m)
		if m.Epoch != 1 {
			t.Fatalf("%s: seed epoch = %d, want 1", tn.id, m.Epoch)
		}
		if m.Primary != "n1" {
			t.Fatalf("%s: seed primary = %q, want n1", tn.id, m.Primary)
		}
		if len(m.Members) != 3 {
			t.Fatalf("%s: %d members, want 3", tn.id, len(m.Members))
		}
		for _, mem := range m.Members {
			if mem.State != cluster.StateActive {
				t.Fatalf("%s: member %s state %q, want active", tn.id, mem.ID, mem.State)
			}
		}
		if i == 0 {
			first = m
		} else if m.Sig != first.Sig {
			t.Fatalf("%s: map sig %q differs from n1's %q", tn.id, m.Sig, first.Sig)
		}
	}
	waitFor(t, 5*time.Second, "all nodes to elect n1", func() bool {
		for _, tn := range nodes {
			var m cluster.ClusterMapResponse
			if tryGetJSON(tn.ts.URL+"/cluster/map", &m) != nil || m.ElectedPrimary != "n1" {
				return false
			}
		}
		return true
	})
}

// TestClusterJoinRebalance: a fourth node joins a loaded 3-node
// cluster; only sensors whose ring placement changed move, the epoch
// advances, and forecasts stay bit-identical to a single-node
// reference.
func TestClusterJoinRebalance(t *testing.T) {
	nodes := newTestCluster(t, 3, func(cfg *cluster.Config) {
		cfg.RebalanceInterval = 30 * time.Millisecond
	})
	sensors := sensorNames(16)
	cl, err := server.NewClient(nodes[0].ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	hist := registerSensors(t, cl, sensors, 320)
	drainAll(t, nodes)
	ref := referenceSystem(t, hist)

	n4 := joinNode(t, "n4", nodes[1], func(cfg *cluster.Config) {
		cfg.RebalanceInterval = 30 * time.Millisecond
	})
	all := append(append([]*testNode{}, nodes...), n4)
	waitConverged(t, 30*time.Second, all)

	var m cluster.ClusterMapResponse
	getJSON(t, n4.ts.URL+"/cluster/map", &m)
	if m.Epoch < 3 { // join epoch + finalize epoch on top of the seed
		t.Fatalf("post-join epoch = %d, want >= 3", m.Epoch)
	}
	owned := 0
	for _, s := range sensors {
		var route cluster.SensorRoute
		getJSON(t, n4.ts.URL+"/cluster/ring?sensor="+s, &route)
		if route.Owner == "n4" {
			owned++
			if !n4.sys.HasSensor(s) {
				t.Fatalf("n4 owns %s but has no state for it", s)
			}
		}
	}
	if owned == 0 {
		t.Fatal("n4 owns no sensors after the rebalance")
	}
	assertOwnedOnce(t, all, sensors)
	n4cl, err := server.NewClient(n4.ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertForecastsMatchRef(t, n4cl, ref, sensors)
	if !hasNodeEvent(nodes[0], "member_join") {
		t.Fatal("primary recorded no member_join event")
	}
	if !hasNodeEvent(nodes[0], "epoch_change") {
		t.Fatal("primary recorded no epoch_change event")
	}
}

// TestClusterDecommissionDrain: decommissioning through a non-primary
// node proxies to the primary, the victim drains its sensors to the
// survivors, leaves the map, and its Drained channel fires.
func TestClusterDecommissionDrain(t *testing.T) {
	nodes := newTestCluster(t, 3, func(cfg *cluster.Config) {
		cfg.RebalanceInterval = 30 * time.Millisecond
	})
	sensors := sensorNames(12)
	cl, err := server.NewClient(nodes[0].ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	hist := registerSensors(t, cl, sensors, 320)
	drainAll(t, nodes)
	ref := referenceSystem(t, hist)

	// Poke n2, name n3: exercises the proxy-to-primary hop.
	resp, err := http.Post(nodes[1].ts.URL+"/cluster/decommission",
		"application/json", strings.NewReader(`{"node":"n3"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decommission answered HTTP %d", resp.StatusCode)
	}

	remaining := nodes[:2]
	waitConverged(t, 30*time.Second, remaining)
	select {
	case <-nodes[2].node.Drained():
	case <-time.After(10 * time.Second):
		t.Fatal("n3 Drained() never fired")
	}
	var m cluster.ClusterMapResponse
	getJSON(t, nodes[0].ts.URL+"/cluster/map", &m)
	if len(m.Members) != 2 {
		t.Fatalf("post-drain map has %d members, want 2", len(m.Members))
	}
	for _, mem := range m.Members {
		if mem.ID == "n3" {
			t.Fatal("n3 still in the map after decommission")
		}
	}
	assertOwnedOnce(t, remaining, sensors)
	assertForecastsMatchRef(t, cl, ref, sensors)
	if !hasNodeEvent(nodes[0], "member_drain") {
		t.Fatal("primary recorded no member_drain event")
	}
	if !hasNodeEvent(nodes[0], "member_leave") {
		t.Fatal("primary recorded no member_leave event")
	}
}

// TestClusterElectionFaults: when probes to the lowest-id member fail
// (injected partition), the survivors elect the next id; clearing the
// fault restores the original primary.
func TestClusterElectionFaults(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	in := fault.NewInjector(1)
	in.Set(fault.PointClusterProbe+":n1", fault.Rule{Kind: fault.KindError, After: 1})
	fault.Arm(in)
	t.Cleanup(fault.Disarm)

	waitFor(t, 10*time.Second, "n2 takeover on n2 and n3", func() bool {
		for _, tn := range nodes[1:] {
			var m cluster.ClusterMapResponse
			if tryGetJSON(tn.ts.URL+"/cluster/map", &m) != nil || m.ElectedPrimary != "n2" {
				return false
			}
		}
		return true
	})
	waitFor(t, 5*time.Second, "election_won on n2", func() bool {
		return hasNodeEvent(nodes[1], "election_won")
	})

	in.Clear(fault.PointClusterProbe + ":n1")
	waitFor(t, 10*time.Second, "primary back to n1", func() bool {
		for _, tn := range nodes {
			var m cluster.ClusterMapResponse
			if tryGetJSON(tn.ts.URL+"/cluster/map", &m) != nil || m.ElectedPrimary != "n1" {
				return false
			}
		}
		return true
	})
}

// TestClusterMapPushFault: a member that misses every map push still
// converges — peers gossip the new epoch on replication traffic and
// the stale member pulls the map itself.
func TestClusterMapPushFault(t *testing.T) {
	nodes := newTestCluster(t, 3, func(cfg *cluster.Config) {
		cfg.RebalanceInterval = 30 * time.Millisecond
	})
	in := fault.NewInjector(2)
	in.Set(fault.PointClusterMapPush+":n3", fault.Rule{Kind: fault.KindError, After: 1})
	fault.Arm(in)
	t.Cleanup(fault.Disarm)

	n4 := joinNode(t, "n4", nodes[0], func(cfg *cluster.Config) {
		cfg.RebalanceInterval = 30 * time.Millisecond
	})
	all := append(append([]*testNode{}, nodes...), n4)
	waitConverged(t, 30*time.Second, all)
	if in.Fired(fault.PointClusterMapPush+":n3") == 0 {
		t.Fatal("map-push fault never fired; the pull path was not exercised")
	}
}

// TestClusterForwardFault: an injected forward failure surfaces as a
// retryable 5xx and the client's retry completes the request.
func TestClusterForwardFault(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	const sensor = "fwd-fault-sensor"
	hist := seasonal(rand.New(rand.NewSource(9)), 320)
	owner := ownerOf(t, nodes, sensor)
	ownerCl, err := server.NewClient(owner.ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ownerCl.AddSensor(sensor, hist); err != nil {
		t.Fatal(err)
	}
	entry := nonOwnerOf(t, nodes, sensor)
	cl, err := server.NewClient(entry.ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}

	in := fault.NewInjector(3)
	in.Set(fault.PointClusterForward, fault.Rule{Kind: fault.KindError, After: 1, Once: true})
	fault.Arm(in)
	t.Cleanup(fault.Disarm)

	fc, err := cl.Forecast(sensor, 1)
	if err != nil {
		t.Fatalf("forecast through faulted forward: %v", err)
	}
	if fc.Degraded {
		t.Fatalf("forecast degraded: %+v", fc)
	}
	if got := in.Fired(fault.PointClusterForward); got != 1 {
		t.Fatalf("forward fault fired %d times, want 1", got)
	}
}

// waitMoved polls the node's rebalance status until at least min moves
// committed — the window where a crash interrupts a live rebalance.
func waitMoved(t *testing.T, tn *testNode, min int64) {
	t.Helper()
	waitFor(t, 20*time.Second, fmt.Sprintf("%s to move %d sensor(s)", tn.id, min), func() bool {
		var rb cluster.RebalanceStatus
		return tryGetJSON(tn.ts.URL+"/cluster/rebalance", &rb) == nil && rb.Moved >= min
	})
}

// TestClusterRebalanceSourceCrash: a migration source dies mid-
// rebalance; the primary parks its moves as blocked, the source
// restarts, and the rebalance resumes from committed state and
// converges with bit-identical forecasts.
func TestClusterRebalanceSourceCrash(t *testing.T) {
	nodes := newTestCluster(t, 3, fastRebalance)
	sensors := sensorNames(16)
	cl, err := server.NewClient(nodes[0].ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	hist := registerSensors(t, cl, sensors, 320)
	drainAll(t, nodes)
	ref := referenceSystem(t, hist)

	n4 := joinNode(t, "n4", nodes[1], fastRebalance)
	all := append(append([]*testNode{}, nodes...), n4)
	waitMoved(t, nodes[0], 1)

	// Crash a non-primary source while the plan is mid-flight.
	victim := nodes[2]
	victim.kill()
	waitFor(t, 10*time.Second, "primary to see "+victim.id+" down", func() bool {
		var hs struct {
			Peers []cluster.PeerHealth `json:"peers"`
		}
		if tryGetJSON(nodes[0].ts.URL+"/cluster/health", &hs) != nil {
			return false
		}
		for _, h := range hs.Peers {
			if h.Peer == victim.id {
				return !h.Up
			}
		}
		return false
	})
	victim.restart(t)

	waitConverged(t, 60*time.Second, all)
	assertOwnedOnce(t, all, sensors)
	n4cl, err := server.NewClient(n4.ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertForecastsMatchRef(t, n4cl, ref, sensors)
}

// TestClusterRebalancePrimaryCrash: the primary dies mid-rebalance;
// the next id is elected and keeps migrating sensors it can reach,
// and once the old primary returns the cluster converges.
func TestClusterRebalancePrimaryCrash(t *testing.T) {
	nodes := newTestCluster(t, 3, fastRebalance)
	sensors := sensorNames(16)
	cl, err := server.NewClient(nodes[1].ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	hist := registerSensors(t, cl, sensors, 320)
	drainAll(t, nodes)
	ref := referenceSystem(t, hist)

	n4 := joinNode(t, "n4", nodes[1], fastRebalance)
	all := append(append([]*testNode{}, nodes...), n4)
	waitMoved(t, nodes[0], 1)

	nodes[0].kill() // the primary, mid-rebalance
	waitFor(t, 10*time.Second, "n2 to take over as primary", func() bool {
		var m cluster.ClusterMapResponse
		return tryGetJSON(nodes[1].ts.URL+"/cluster/map", &m) == nil && m.ElectedPrimary == "n2"
	})
	// The new primary must resume the interrupted rebalance, not just
	// hold the title: its own move counter has to advance.
	waitMoved(t, nodes[1], 1)
	if !hasNodeEvent(nodes[1], "election_won") {
		t.Fatal("n2 recorded no election_won event")
	}

	nodes[0].restart(t)
	waitConverged(t, 60*time.Second, all)
	assertOwnedOnce(t, all, sensors)
	n4cl, err := server.NewClient(n4.ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertForecastsMatchRef(t, n4cl, ref, sensors)
}

// TestClusterMembershipLifecycle is the full acceptance run: a 3-node
// cluster under live observe/forecast load admits a fourth member via
// batched migration, loses its primary mid-rebalance (a successor
// takes over and keeps moving), gets the primary back, decommissions
// an original member, and ends with every sensor owned exactly once
// and forecasts bit-identical to a single-node reference fed the same
// stream. Forecasts must never error at any point.
//
// Two sensor populations share the cluster. "Oracle" sensors are only
// observed during the churn and forecast once at the end, against the
// reference. "Traffic" sensors take a forecast on every round — they
// prove forecasts never error through joins, crashes, and drains, but
// are excluded from the bit-identical check: a prediction enqueues
// pending ensemble-reweight work that later observations consume, and
// the async ingestion pipeline makes the cluster's predict/observe
// interleaving impossible to replay exactly into the reference.
func TestClusterMembershipLifecycle(t *testing.T) {
	nodes := newTestCluster(t, 3, fastRebalance)
	// 16 oracle sensors: with this deterministic ring, two of them move
	// to n4 on join, so a primary killed after the first committed move
	// always leaves work for its successor.
	sensors := sensorNames(16)
	traffic := []string{"tr-0", "tr-1", "tr-2", "tr-3"}
	cl, err := server.NewClient(nodes[1].ts.URL, nil) // n2: survives every phase
	if err != nil {
		t.Fatal(err)
	}
	cl.SetRetryPolicy(server.RetryPolicy{
		MaxAttempts: 12, BaseDelay: 20 * time.Millisecond, MaxDelay: 300 * time.Millisecond,
	})
	const histLen, liveLen = 240, 40
	live := make(map[string][]float64, len(sensors)+len(traffic))
	hist := make(map[string][]float64, len(sensors))
	for i, s := range append(append([]string{}, sensors...), traffic...) {
		full := seasonal(rand.New(rand.NewSource(int64(500+i))), histLen+liveLen)
		if err := cl.AddSensor(s, full[:histLen]); err != nil {
			t.Fatalf("add %s: %v", s, err)
		}
		live[s] = full[histLen:]
		if i < len(sensors) {
			hist[s] = full[:histLen]
		}
	}
	ref := referenceSystem(t, hist)

	feedRound := func(round int) {
		t.Helper()
		for _, s := range sensors {
			if err := cl.Observe(s, live[s][round]); err != nil {
				t.Fatalf("observe %s round %d: %v", s, round, err)
			}
			if err := ref.Observe(s, live[s][round]); err != nil {
				t.Fatal(err)
			}
		}
		for _, s := range traffic {
			if err := cl.Observe(s, live[s][round]); err != nil {
				t.Fatalf("observe %s round %d: %v", s, round, err)
			}
		}
	}
	forecastRound := func(phase string) {
		t.Helper()
		for _, s := range traffic {
			if _, err := cl.Forecast(s, 1); err != nil {
				t.Fatalf("forecast %s during %s: %v", s, phase, err)
			}
		}
	}

	// Phase 1: steady state under load.
	for round := 0; round < 10; round++ {
		feedRound(round)
		forecastRound("steady state")
	}

	// Phase 2: a fourth node joins; the primary starts migrating.
	n4 := joinNode(t, "n4", nodes[1], fastRebalance)
	all := append(append([]*testNode{}, nodes...), n4)
	waitMoved(t, nodes[0], 1)

	// Phase 3: the primary dies mid-rebalance. Reads must keep flowing
	// (promoted replicas); the successor must keep migrating.
	nodes[0].kill()
	waitFor(t, 10*time.Second, "n2 to take over as primary", func() bool {
		var m cluster.ClusterMapResponse
		return tryGetJSON(nodes[1].ts.URL+"/cluster/map", &m) == nil && m.ElectedPrimary == "n2"
	})
	forecastRound("primary outage")
	waitMoved(t, nodes[1], 1)
	forecastRound("successor rebalancing")

	// Phase 4: the old primary returns and reclaims the title; writes
	// to its sensors unblock.
	nodes[0].restart(t)
	waitFor(t, 10*time.Second, "n1 to reclaim primaryship", func() bool {
		var m cluster.ClusterMapResponse
		return tryGetJSON(nodes[1].ts.URL+"/cluster/map", &m) == nil && m.ElectedPrimary == "n1"
	})
	for round := 10; round < 25; round++ {
		feedRound(round)
		forecastRound("post-restart")
	}
	waitConverged(t, 60*time.Second, all)

	// Phase 5: decommission n3 through its own endpoint (empty body =
	// self; proxied to the primary) under continued load.
	resp, err := http.Post(nodes[2].ts.URL+"/cluster/decommission",
		"application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decommission answered HTTP %d", resp.StatusCode)
	}
	for round := 25; round < liveLen; round++ {
		feedRound(round)
		forecastRound("decommission drain")
	}
	select {
	case <-nodes[2].node.Drained():
	case <-time.After(30 * time.Second):
		t.Fatal("n3 Drained() never fired")
	}
	remaining := []*testNode{nodes[0], nodes[1], n4}
	waitConverged(t, 60*time.Second, remaining)

	// Final state: exactly-once ownership, no samples lost anywhere,
	// and oracle forecasts bit-identical to the reference.
	drainAll(t, remaining)
	everySensor := append(append([]string{}, sensors...), traffic...)
	assertOwnedOnce(t, remaining, everySensor)
	for _, s := range everySensor {
		owner := ownerOf(t, remaining, s)
		got, _ := owner.sys.HistoryLen(s)
		if got != histLen+liveLen {
			t.Errorf("sensor %s on owner %s: history %d, want %d", s, owner.id, got, histLen+liveLen)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	assertForecastsMatchRef(t, cl, ref, sensors)
	if !hasNodeEvent(nodes[1], "member_join") || !hasNodeEvent(nodes[1], "member_leave") {
		t.Fatal("n2's flight recorder is missing membership events")
	}
}
