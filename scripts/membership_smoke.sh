#!/usr/bin/env sh
# Dynamic-membership smoke test against real smiler-server processes:
# boot a 3-node cluster, put it under sustained smilerloader traffic
# through the two nodes that live the whole run, then — while the load
# is flowing — join a fourth node with -cluster-join and decommission
# n3 with POST /cluster/decommission. Asserts the epoch advanced past
# the join and the drain, the final map holds exactly n1/n2/n4 all
# active, the decommissioned process exited 0 on its own, rebalancing
# went quiet, and the loader finished with zero errors and zero SLO
# violations. Run via `make membership-smoke`.
set -eu

DIR=$(mktemp -d)
BIN="$DIR/smiler-server"
LOADER="$DIR/smilerloader"
REPORT="$DIR/report.json"
P1=19101
P2=19102
P3=19103
P4=19104
PEERS="n1=http://127.0.0.1:$P1,n2=http://127.0.0.1:$P2,n3=http://127.0.0.1:$P3"
COMMON="-predictor ar -log-level warn -probe-interval 100ms -probe-failures 2 \
-rebalance-batch 8 -rebalance-interval 100ms"

go build -o "$BIN" ./cmd/smiler-server
go build -o "$LOADER" ./cmd/smilerloader

# shellcheck disable=SC2086
"$BIN" -addr "127.0.0.1:$P1" -node-id n1 -cluster-peers "$PEERS" $COMMON &
PID1=$!
# shellcheck disable=SC2086
"$BIN" -addr "127.0.0.1:$P2" -node-id n2 -cluster-peers "$PEERS" $COMMON &
PID2=$!
# shellcheck disable=SC2086
"$BIN" -addr "127.0.0.1:$P3" -node-id n3 -cluster-peers "$PEERS" $COMMON &
PID3=$!
PID4=""
LOADPID=""
cleanup() {
    kill "$PID1" "$PID2" 2>/dev/null || true
    [ -n "$PID3" ] && kill "$PID3" 2>/dev/null || true
    [ -n "$PID4" ] && kill "$PID4" 2>/dev/null || true
    [ -n "$LOADPID" ] && kill "$LOADPID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

for port in "$P1" "$P2" "$P3"; do
    i=0
    until curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "membership-smoke: node on :$port did not come up" >&2
            exit 1
        fi
        sleep 0.2
    done
done

epoch_of() {
    curl -sf "http://127.0.0.1:$1/cluster/map" | sed -n 's/.*"epoch":\([0-9]*\).*/\1/p'
}

# wait_epoch PORT MIN: poll until the node's map epoch reaches MIN.
wait_epoch() {
    i=0
    while :; do
        e=$(epoch_of "$1" || echo 0)
        [ "${e:-0}" -ge "$2" ] && return 0
        i=$((i + 1))
        if [ "$i" -gt 150 ]; then
            echo "membership-smoke: :$1 stuck at epoch ${e:-?}, want >= $2" >&2
            return 1
        fi
        sleep 0.2
    done
}

# The loader runs the whole time, targeting only n1 and n2 — the nodes
# that live through every phase. Retries plus idempotency keys absorb
# the ownership cutovers; the SLO gate requires a zero error rate.
"$LOADER" \
    -targets "http://127.0.0.1:$P1,http://127.0.0.1:$P2" \
    -sensors 120 -history 128 -seed 7 -prefix member \
    -mix 10:1 -horizons 1:1 \
    -arrival poisson -rate 80 -concurrency 8 \
    -ramp 3s -duration 22s -progress 5s -retries 5 \
    -slo 'observe.p99<=10s,forecast.p99<=10s,error_rate<=0' \
    -out "$REPORT" &
LOADPID=$!

# Let the ramp seed the population before reshaping the cluster.
sleep 5

# Phase 1: n4 joins via -cluster-join; its seed list names only itself.
echo "membership-smoke: joining n4"
# shellcheck disable=SC2086
"$BIN" -addr "127.0.0.1:$P4" -node-id n4 \
    -cluster-peers "n4=http://127.0.0.1:$P4" \
    -cluster-join "http://127.0.0.1:$P1" $COMMON &
PID4=$!
# The join bumps the epoch (>=2); the finalize after its rebalance
# bumps it again (>=3).
wait_epoch "$P1" 3
echo "membership-smoke: join finalized at epoch $(epoch_of "$P1")"

# Phase 2: decommission n3 through its own endpoint while the load
# keeps flowing. The process must drain and exit 0 by itself.
echo "membership-smoke: decommissioning n3"
curl -sf -X POST "http://127.0.0.1:$P3/cluster/decommission" \
    -H 'Content-Type: application/json' -d '{}' >/dev/null
if ! wait "$PID3"; then
    echo "membership-smoke: decommissioned n3 exited nonzero" >&2
    exit 1
fi
PID3="" # reaped; cleanup must not kill an unrelated pid
echo "membership-smoke: n3 drained and exited 0"

# Phase 3: the survivors converge — same epoch, three active members,
# n3 gone, no rebalance work pending.
wait_epoch "$P1" 5
status=0
MAP=$(curl -sf "http://127.0.0.1:$P1/cluster/map")
for id in n1 n2 n4; do
    if ! echo "$MAP" | grep -q "\"id\":\"$id\",\"url\":[^,]*,\"state\":\"active\""; then
        echo "membership-smoke: member $id not active in final map: $MAP" >&2
        status=1
    fi
done
if echo "$MAP" | grep -q '"id":"n3"'; then
    echo "membership-smoke: n3 still in final map: $MAP" >&2
    status=1
fi
i=0
until curl -sf "http://127.0.0.1:$P1/cluster/rebalance" | grep -q '"pending":0'; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "membership-smoke: rebalance never went quiet" >&2
        status=1
        break
    fi
    sleep 0.2
done

# Phase 4: the loader must have sailed through all of it.
if ! wait "$LOADPID"; then
    echo "membership-smoke: smilerloader exited nonzero (errors or SLO violations)" >&2
    cat "$REPORT" >&2 || true
    exit 1
fi
LOADPID=""
if ! grep -q '"violations": 0' "$REPORT"; then
    echo "membership-smoke: report shows SLO violations" >&2
    status=1
fi
if ! grep -q '"distinct_sensors": 120' "$REPORT"; then
    echo "membership-smoke: loader did not drive the whole population" >&2
    status=1
fi

# The membership churn is on the survivors' flight recorders.
EVENTS=$(curl -sf "http://127.0.0.1:$P1/debug/events")
for ev in member_join epoch_change member_drain member_leave; do
    if ! echo "$EVENTS" | grep -q "\"$ev\""; then
        echo "membership-smoke: flight recorder missing $ev" >&2
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "membership-smoke: OK"
else
    echo "--- final map ---" >&2
    echo "$MAP" >&2
    echo "--- report ---" >&2
    cat "$REPORT" >&2 || true
fi
exit $status
