// Package tsdist implements the alternative time series similarity
// measures the paper surveys when motivating its choice of DTW
// (Section 4): Euclidean distance [32], LCSS [66], ERP [21] and EDR
// [22]. SMiLer's index is built on DTW — the paper argues it is simple,
// robust to shifting/scaling and empirically the strongest measure for
// time series mining [30, 54, 60] — and the distance-measure ablation
// bench uses this package to check that claim on the synthetic
// corpora: kNN prediction under DTW should beat kNN under these
// measures.
//
// Conventions match the dtw package: Euclidean and ERP accumulate
// squared differences; LCSS similarity is converted to a distance in
// [0, 1]; EDR counts edits normalized by length.
package tsdist

import (
	"errors"
	"fmt"
	"math"
)

// ErrLength is returned when operand lengths are invalid.
var ErrLength = errors.New("tsdist: invalid lengths")

// Func is a distance between two equal-length series (smaller =
// more similar). All functions in this package with a (q, c) prefix
// signature can be adapted to it.
type Func func(q, c []float64) (float64, error)

func checkEqualLen(q, c []float64) error {
	if len(q) == 0 || len(q) != len(c) {
		return fmt.Errorf("%w: |q|=%d |c|=%d", ErrLength, len(q), len(c))
	}
	return nil
}

// Euclidean returns the squared Euclidean distance Σ(qᵢ−cᵢ)². It is
// the ρ=0 special case of banded DTW: cheap, but sensitive to shifts.
func Euclidean(q, c []float64) (float64, error) {
	if err := checkEqualLen(q, c); err != nil {
		return 0, err
	}
	var s float64
	for i := range q {
		d := q[i] - c[i]
		s += d * d
	}
	return s, nil
}

// LCSS returns a distance derived from the Longest Common SubSequence
// similarity under matching threshold eps and (Sakoe-Chiba style)
// warping window rho: dist = 1 − |LCSS|/min(|q|,|c|), in [0, 1].
// Unmatched noise points are simply skipped, which makes LCSS robust
// to outliers but blind to their magnitude.
func LCSS(q, c []float64, eps float64, rho int) (float64, error) {
	if err := checkEqualLen(q, c); err != nil {
		return 0, err
	}
	if eps < 0 || rho < 0 {
		return 0, fmt.Errorf("tsdist: negative eps %v or rho %d", eps, rho)
	}
	n, m := len(q), len(c)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = 0
		}
		jlo, jhi := i-rho, i+rho
		if jlo < 1 {
			jlo = 1
		}
		if jhi > m {
			jhi = m
		}
		for j := jlo; j <= jhi; j++ {
			if math.Abs(q[i-1]-c[j-1]) <= eps {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	best := 0
	for _, v := range prev {
		if v > best {
			best = v
		}
	}
	return 1 - float64(best)/float64(n), nil
}

// ERP returns the Edit distance with Real Penalty under gap value g:
// a metric (triangle inequality holds) that combines edit-distance
// alignment with L1-style real penalties against the constant g.
func ERP(q, c []float64, g float64) (float64, error) {
	if err := checkEqualLen(q, c); err != nil {
		return 0, err
	}
	n, m := len(q), len(c)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	// Base row: delete all of c against gaps.
	for j := 1; j <= m; j++ {
		prev[j] = prev[j-1] + math.Abs(c[j-1]-g)
	}
	for i := 1; i <= n; i++ {
		cur[0] = prev[0] + math.Abs(q[i-1]-g)
		for j := 1; j <= m; j++ {
			match := prev[j-1] + math.Abs(q[i-1]-c[j-1])
			gapQ := prev[j] + math.Abs(q[i-1]-g)
			gapC := cur[j-1] + math.Abs(c[j-1]-g)
			cur[j] = math.Min(match, math.Min(gapQ, gapC))
		}
		prev, cur = cur, prev
	}
	return prev[m], nil
}

// EDR returns the Edit Distance on Real sequences under matching
// threshold eps, normalized by the series length: the minimum number
// of insert/delete/replace edits (each costing 1) needed to align q
// and c when points within eps match for free.
func EDR(q, c []float64, eps float64) (float64, error) {
	if err := checkEqualLen(q, c); err != nil {
		return 0, err
	}
	if eps < 0 {
		return 0, fmt.Errorf("tsdist: negative eps %v", eps)
	}
	n, m := len(q), len(c)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = float64(j)
	}
	for i := 1; i <= n; i++ {
		cur[0] = float64(i)
		for j := 1; j <= m; j++ {
			sub := 1.0
			if math.Abs(q[i-1]-c[j-1]) <= eps {
				sub = 0
			}
			v := prev[j-1] + sub
			if w := prev[j] + 1; w < v {
				v = w
			}
			if w := cur[j-1] + 1; w < v {
				v = w
			}
			cur[j] = v
		}
		prev, cur = cur, prev
	}
	return prev[m] / float64(n), nil
}

// EuclideanFunc adapts Euclidean to Func.
func EuclideanFunc() Func { return Euclidean }

// LCSSFunc adapts LCSS with fixed parameters to Func.
func LCSSFunc(eps float64, rho int) Func {
	return func(q, c []float64) (float64, error) { return LCSS(q, c, eps, rho) }
}

// ERPFunc adapts ERP with a fixed gap value to Func.
func ERPFunc(g float64) Func {
	return func(q, c []float64) (float64, error) { return ERP(q, c, g) }
}

// EDRFunc adapts EDR with a fixed threshold to Func.
func EDRFunc(eps float64) Func {
	return func(q, c []float64) (float64, error) { return EDR(q, c, eps) }
}
