package index

import (
	"math/rand"
	"testing"
)

// TestEarlyAbandonAB runs the same randomized continuous-prediction
// trace through two indexes that differ only in DisableEarlyAbandon and
// requires bit-identical kNN sets at every step: the τ-cutoff is an
// exactness-preserving optimization, never a result change.
func TestEarlyAbandonAB(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		hist := randwalk(rng, 380)
		pOn := smallParams()
		pOff := smallParams()
		pOff.DisableEarlyAbandon = true

		ixOn, err := New(testDevice(t), hist, pOn)
		if err != nil {
			t.Fatal(err)
		}
		defer ixOn.Close()
		ixOff, err := New(testDevice(t), hist, pOff)
		if err != nil {
			t.Fatal(err)
		}
		defer ixOff.Close()

		for step := 0; step < 12; step++ {
			k := 1 + rng.Intn(8)
			h := 1 + rng.Intn(4)
			on, err := ixOn.Search(k, h)
			if err != nil {
				t.Fatalf("seed %d step %d: abandon search: %v", seed, step, err)
			}
			off, err := ixOff.Search(k, h)
			if err != nil {
				t.Fatalf("seed %d step %d: plain search: %v", seed, step, err)
			}
			if len(on) != len(off) {
				t.Fatalf("seed %d step %d: %d vs %d item results", seed, step, len(on), len(off))
			}
			for i := range on {
				a, b := on[i], off[i]
				if a.D != b.D || len(a.Neighbors) != len(b.Neighbors) {
					t.Fatalf("seed %d step %d item %d: shape mismatch %+v vs %+v", seed, step, i, a, b)
				}
				for j := range a.Neighbors {
					if a.Neighbors[j] != b.Neighbors[j] {
						t.Fatalf("seed %d step %d item %d nb %d: %+v vs %+v",
							seed, step, i, j, a.Neighbors[j], b.Neighbors[j])
					}
				}
			}
			// Abandoning may only reduce simulated verification work.
			if ixOn.Stats().Unfiltered != ixOff.Stats().Unfiltered {
				t.Fatalf("seed %d step %d: unfiltered counts diverged (%d vs %d) — the filter must not change",
					seed, step, ixOn.Stats().Unfiltered, ixOff.Stats().Unfiltered)
			}
			next := rng.NormFloat64() * 0.3
			if err := ixOn.Advance(next); err != nil {
				t.Fatal(err)
			}
			if err := ixOff.Advance(next); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSearchMultiEarlyAbandonAB is the multi-horizon analogue.
func TestSearchMultiEarlyAbandonAB(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	hist := randwalk(rng, 420)
	pOff := smallParams()
	pOff.DisableEarlyAbandon = true

	ixOn, err := New(testDevice(t), hist, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	defer ixOn.Close()
	ixOff, err := New(testDevice(t), hist, pOff)
	if err != nil {
		t.Fatal(err)
	}
	defer ixOff.Close()

	hs := []int{1, 3, 6}
	for step := 0; step < 8; step++ {
		on, err := ixOn.SearchMulti(5, hs)
		if err != nil {
			t.Fatal(err)
		}
		off, err := ixOff.SearchMulti(5, hs)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range hs {
			a, b := on[h], off[h]
			if len(a) != len(b) {
				t.Fatalf("step %d h=%d: %d vs %d items", step, h, len(a), len(b))
			}
			for i := range a {
				if a[i].D != b[i].D || len(a[i].Neighbors) != len(b[i].Neighbors) {
					t.Fatalf("step %d h=%d item %d: shape mismatch", step, h, i)
				}
				for j := range a[i].Neighbors {
					if a[i].Neighbors[j] != b[i].Neighbors[j] {
						t.Fatalf("step %d h=%d item %d nb %d: %+v vs %+v",
							step, h, i, j, a[i].Neighbors[j], b[i].Neighbors[j])
					}
				}
			}
		}
		next := rng.NormFloat64() * 0.3
		if err := ixOn.Advance(next); err != nil {
			t.Fatal(err)
		}
		if err := ixOff.Advance(next); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPerItemStats checks the per-item-query split of SearchStats: the
// per-item candidate and verification counts must sum to the global
// counters and carry the right item-query lengths.
func TestPerItemStats(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := smallParams()
	ix, err := New(testDevice(t), randwalk(rng, 400), p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if _, err := ix.Search(4, 2); err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if len(st.PerItem) != len(p.ELV) {
		t.Fatalf("PerItem has %d entries, want %d", len(st.PerItem), len(p.ELV))
	}
	sumCand, sumUnf := 0, 0
	for i, it := range st.PerItem {
		if it.D != p.ELV[i] {
			t.Fatalf("PerItem[%d].D = %d, want %d", i, it.D, p.ELV[i])
		}
		if it.Unfiltered > it.Candidates {
			t.Fatalf("item %d: unfiltered %d > candidates %d", i, it.Unfiltered, it.Candidates)
		}
		sumCand += it.Candidates
		sumUnf += it.Unfiltered
	}
	if sumCand != st.Candidates {
		t.Fatalf("per-item candidates sum %d != global %d", sumCand, st.Candidates)
	}
	if sumUnf != st.Unfiltered {
		t.Fatalf("per-item unfiltered sum %d != global %d", sumUnf, st.Unfiltered)
	}
	if st.Candidates == 0 || st.Unfiltered == 0 {
		t.Fatal("expected nonzero candidate/verification work on a 400-point history")
	}
}
