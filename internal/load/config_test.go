package load

import (
	"strings"
	"testing"
	"time"

	"smiler/internal/datasets"
)

func TestParseMix(t *testing.T) {
	cases := []struct {
		in      string
		obs, fc int
		wantErr bool
	}{
		{"10:1", 10, 1, false},
		{" 3 : 2 ", 3, 2, false},
		{"1:0", 1, 0, false},
		{"0:1", 0, 1, false},
		{"0:0", 0, 0, true},
		{"10", 0, 0, true},
		{"a:b", 0, 0, true},
		{"-1:2", 0, 0, true},
	}
	for _, c := range cases {
		obs, fc, err := ParseMix(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseMix(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && (obs != c.obs || fc != c.fc) {
			t.Errorf("ParseMix(%q) = %d:%d, want %d:%d", c.in, obs, fc, c.obs, c.fc)
		}
	}
}

func TestParseHorizons(t *testing.T) {
	hs, err := ParseHorizons("")
	if err != nil || len(hs) != 1 || hs[0].H != 1 || hs[0].W != 1 {
		t.Fatalf("empty spec = %v, %v; want default h=1", hs, err)
	}
	hs, err = ParseHorizons("1,3,6")
	if err != nil || len(hs) != 3 || hs[1].H != 3 || hs[1].W != 1 {
		t.Fatalf("uniform spec = %v, %v", hs, err)
	}
	hs, err = ParseHorizons("1:8,3:1,6:1")
	if err != nil || len(hs) != 3 || hs[0].W != 8 {
		t.Fatalf("weighted spec = %v, %v", hs, err)
	}
	for _, bad := range []string{"0", "-1", "x", "1:0", "1:x", "1:-2"} {
		if _, err := ParseHorizons(bad); err == nil {
			t.Errorf("ParseHorizons(%q) accepted", bad)
		}
	}
}

func TestParseArrival(t *testing.T) {
	for in, want := range map[string]Arrival{
		"closed": ClosedLoop, "closed-loop": ClosedLoop,
		"poisson": Poisson, "open": Poisson, "OPEN-LOOP": Poisson,
		"bursty": Bursty, "burst": Bursty,
	} {
		got, err := ParseArrival(in)
		if err != nil || got != want {
			t.Errorf("ParseArrival(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseArrival("uniform"); err == nil {
		t.Error("ParseArrival accepted unknown process")
	}
}

func TestParseSLOs(t *testing.T) {
	slos, err := ParseSLOs("observe.p99<=50ms, forecast.p999<=2s, error_rate<=0.001")
	if err != nil {
		t.Fatal(err)
	}
	if len(slos) != 3 {
		t.Fatalf("got %d SLOs, want 3", len(slos))
	}
	if slos[0].Op != "observe" || slos[0].Metric != "p99" || slos[0].Bound != 0.05 {
		t.Fatalf("slos[0] = %+v", slos[0])
	}
	if slos[1].Bound != 2.0 {
		t.Fatalf("slos[1].Bound = %v, want 2", slos[1].Bound)
	}
	if slos[2].Op != "" || slos[2].Metric != "error_rate" || slos[2].Bound != 0.001 {
		t.Fatalf("slos[2] = %+v", slos[2])
	}
	if got, _ := ParseSLOs("  "); got != nil {
		t.Fatalf("blank spec = %v, want nil", got)
	}
	for _, bad := range []string{
		"p99<=50ms",         // latency needs an op
		"observe.p99<=oops", // unparseable duration
		"observe.p42<=50ms", // unknown metric
		"gc.p99<=50ms",      // unknown op
		"observe.p99>=50ms", // wrong comparator
		"error_rate<=-0.5",  // negative bound
	} {
		if _, err := ParseSLOs(bad); err == nil {
			t.Errorf("ParseSLOs(%q) accepted", bad)
		}
	}
}

func TestParseQualityRateSLOs(t *testing.T) {
	slos, err := ParseSLOs("forecast.exact_rate>=0.95,forecast.progressive_rate<=0.1,fallback_rate<=0")
	if err != nil {
		t.Fatal(err)
	}
	if len(slos) != 3 {
		t.Fatalf("got %d SLOs, want 3", len(slos))
	}
	if slos[0].Op != "forecast" || slos[0].Metric != "exact_rate" || slos[0].Cmp != ">=" || slos[0].Bound != 0.95 {
		t.Fatalf("slos[0] = %+v", slos[0])
	}
	if slos[1].Cmp != "" || slos[1].Bound != 0.1 {
		t.Fatalf("slos[1] = %+v", slos[1])
	}
	if slos[2].Op != "" || slos[2].Metric != "fallback_rate" {
		t.Fatalf("slos[2] = %+v", slos[2])
	}
}

func TestEvaluateQualityFloor(t *testing.T) {
	phase := PhaseSummary{
		Ops: map[string]OpSummary{
			"forecast": {Count: 100, ExactRate: 0.9, ProgressiveRate: 0.1},
		},
	}
	slos, err := ParseSLOs("forecast.exact_rate>=0.95,forecast.exact_rate>=0.8,forecast.fallback_rate<=0")
	if err != nil {
		t.Fatal(err)
	}
	results, violations := evaluate(slos, phase)
	if violations != 1 {
		t.Fatalf("violations = %d, want 1 (only the 0.95 floor)", violations)
	}
	if results[0].OK || results[0].Actual != 0.9 {
		t.Fatalf("exact_rate>=0.95 result = %+v, want violated at 0.9", results[0])
	}
	if !results[1].OK || !results[2].OK {
		t.Fatalf("floor at 0.8 and zero-fallback ceiling must pass: %+v %+v", results[1], results[2])
	}
}

func TestConfigValidateDefaults(t *testing.T) {
	c := Config{Targets: []string{"http://x"}, Sensors: 10, Kind: datasets.Road}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.History != 128 || c.Prefix != "load" || c.Concurrency != 16 ||
		c.ObserveWeight != 10 || c.ForecastWeight != 1 ||
		c.Duration != 30*time.Second || c.SetupConcurrency != 32 ||
		c.RetryAttempts != 1 || len(c.Horizons) != 1 || c.Progress == nil {
		t.Fatalf("defaults not filled: %+v", c)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	base := func() Config {
		return Config{Targets: []string{"http://x"}, Sensors: 10, Kind: datasets.Road}
	}
	cases := map[string]func(*Config){
		"no targets":       func(c *Config) { c.Targets = nil },
		"zero sensors":     func(c *Config) { c.Sensors = 0 },
		"bad kind":         func(c *Config) { c.Kind = datasets.Kind(99) },
		"bad prefix":       func(c *Config) { c.Prefix = "a b" },
		"open needs rate":  func(c *Config) { c.Arrival = Poisson },
		"burst overbudget": func(c *Config) { c.Arrival = Bursty; c.Rate = 10; c.BurstFactor = 8; c.BurstDuty = 0.5 },
		"negative ramp":    func(c *Config) { c.Ramp = -time.Second },
		"bad SLO":          func(c *Config) { c.SLOs = []SLO{{Metric: "p99", Expr: "p99<=1ms"}} },
	}
	for name, mut := range cases {
		c := base()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, c)
		}
	}
}

func TestEvaluate(t *testing.T) {
	phase := PhaseSummary{
		Ops: map[string]OpSummary{
			"observe": {Count: 100, P99Ms: 40, ErrorRate: 0.002},
		},
		Total: OpSummary{Count: 100, ErrorRate: 0.002},
	}
	slos, err := ParseSLOs("observe.p99<=50ms,error_rate<=0.001,forecast.p999<=2s")
	if err != nil {
		t.Fatal(err)
	}
	results, violations := evaluate(slos, phase)
	if violations != 1 {
		t.Fatalf("violations = %d, want 1 (only error_rate)", violations)
	}
	if !results[0].OK || results[0].Actual != 0.04 {
		t.Fatalf("observe.p99 result = %+v", results[0])
	}
	if results[1].OK {
		t.Fatalf("error_rate should fail: %+v", results[1])
	}
	if !results[2].Skipped {
		t.Fatalf("forecast SLO with no forecast traffic must be skipped: %+v", results[2])
	}
}

func TestLatencyBucketsShape(t *testing.T) {
	if len(latencyBuckets) < 40 {
		t.Fatalf("only %d buckets — too coarse for p999", len(latencyBuckets))
	}
	for i := 1; i < len(latencyBuckets); i++ {
		ratio := latencyBuckets[i] / latencyBuckets[i-1]
		if ratio < 1.2 || ratio > 1.3 {
			t.Fatalf("bucket ratio %v at %d, want ~1.25", ratio, i)
		}
	}
	if last := latencyBuckets[len(latencyBuckets)-1]; last < 60 {
		t.Fatalf("top bucket %vs cannot hold a stuck-minute outlier", last)
	}
}

func TestSLOExprRoundTripInReport(t *testing.T) {
	slos, err := ParseSLOs("observe.p99<=50ms")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(slos[0].Expr, "observe.p99") {
		t.Fatalf("Expr %q lost the flag spelling", slos[0].Expr)
	}
}
