package smiler

import (
	"errors"
	"strconv"

	"smiler/internal/core"
	"smiler/internal/gp"
	"smiler/internal/index"
	"smiler/internal/memsys"
	"smiler/internal/obs"
)

// Phase label values of the prediction latency histogram.
var predictPhases = []string{"total", "search", "lower_bound", "verify", "cell_fit", "mix"}

// Phase label values of the observation latency histogram.
var observePhases = []string{"total", "reweight", "advance"}

// systemObs owns the system's metrics registry, trace store and every
// pre-resolved instrument the hot paths record into. With metrics
// disabled every field is nil; all obs instruments are nil-safe, so
// the recording sites below degrade to a handful of nil checks — the
// no-op sink the EXPERIMENTS.md overhead benchmark compares against.
type systemObs struct {
	reg     *obs.Registry
	traces  *obs.TraceStore
	events  *obs.EventRing
	runtime *obs.RuntimeSampler

	// predictions counts completed predictions by quality rung
	// ("exact", "progressive", "fallback") — the quality-ladder view of
	// smiler_predictions_total.
	predictions map[string]*obs.Counter
	predictErrs *obs.Counter
	observed    *obs.Counter
	observeErrs *obs.Counter

	// qualityEst is the distribution of anytime quality estimates
	// (ProS-style probability that the served set equals the exact one);
	// observed only when anytime mode is on.
	qualityEst *obs.Histogram
	anytime    bool

	predictPhase map[string]*obs.Histogram
	observePhase map[string]*obs.Histogram

	knnCandidates *obs.Counter
	knnPruned     *obs.Counter
	knnUnfiltered *obs.Counter

	// Fault-tolerance instruments: degraded (fallback) answers by
	// failure reason, and panics recovered into errors instead of
	// crashing the process.
	degraded        map[string]*obs.Counter
	panicsRecovered *obs.Counter

	// Tiering instruments: cold sensors faulted back in, and hot
	// sensors evicted (spilled) to disk.
	sensorFaults    *obs.Counter
	sensorEvictions *obs.Counter
}

// degradeReasons are the label values of the degraded-predictions
// counter (see degradeReason).
var degradeReasons = []string{"deadline", "panic", "error"}

// qualityTags are the label values of the predictions counter: the
// rungs of the exact → progressive → fallback quality ladder.
var qualityTags = []string{"exact", "progressive", "fallback"}

// newSystemObs builds the registry and instruments (enabled mode).
func newSystemObs() *systemObs {
	reg := obs.NewRegistry()
	so := &systemObs{
		reg:    reg,
		traces: obs.NewTraceStore(obs.DefaultTraceCapacity),
		predictErrs: reg.Counter("smiler_predict_errors_total",
			"Predictions that failed."),
		observed: reg.Counter("smiler_observations_total",
			"Observations applied to the system."),
		observeErrs: reg.Counter("smiler_observe_errors_total",
			"Observations whose apply failed."),
		predictPhase: make(map[string]*obs.Histogram, len(predictPhases)),
		observePhase: make(map[string]*obs.Histogram, len(observePhases)),
		knnCandidates: reg.Counter("smiler_knn_candidates_total",
			"Candidate segments whose lower bound the group-level index produced."),
		knnPruned: reg.Counter("smiler_knn_pruned_total",
			"Candidates eliminated by the LBen filter without DTW verification."),
		knnUnfiltered: reg.Counter("smiler_knn_unfiltered_total",
			"Candidates that survived the filter and required DTW verification."),
	}
	so.panicsRecovered = reg.Counter("smiler_panics_recovered_total",
		"Panics recovered into errors (predict workers, ingest shards, coalescer flights).")
	so.sensorFaults = reg.Counter("smiler_sensor_faults_total",
		"Cold sensors faulted back in from their spill files.")
	so.sensorEvictions = reg.Counter("smiler_sensor_evictions_total",
		"Hot sensors spilled cold by the MaxHotSensors LRU.")
	so.predictions = make(map[string]*obs.Counter, len(qualityTags))
	for _, q := range qualityTags {
		so.predictions[q] = reg.Counter("smiler_predictions_total",
			"Completed predictions by quality-ladder rung (all horizons of a multi-horizon call count once).",
			obs.L("quality", q))
	}
	so.qualityEst = reg.Histogram("smiler_anytime_quality_estimate",
		"Quality estimate of anytime predictions: probability the served neighbour sets equal the exact ones.",
		[]float64{0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1})
	so.degraded = make(map[string]*obs.Counter, len(degradeReasons))
	for _, reason := range degradeReasons {
		so.degraded[reason] = reg.Counter("smiler_degraded_predictions_total",
			"Predictions answered by the fallback baseline instead of the full pipeline.",
			obs.L("reason", reason))
	}
	for _, ph := range predictPhases {
		so.predictPhase[ph] = reg.Histogram("smiler_predict_phase_seconds",
			"Prediction latency by pipeline phase.", nil, obs.L("phase", ph))
	}
	for _, ph := range observePhases {
		so.observePhase[ph] = reg.Histogram("smiler_observe_phase_seconds",
			"Observation-apply latency by pipeline phase.", nil, obs.L("phase", ph))
	}
	// GP fitting keeps package-level counters (the innermost hot loop
	// carries no registry handle); bridge them lazily at scrape time.
	reg.CounterFunc("smiler_gp_fits_total",
		"GP conditioning runs (covariance build + Cholesky).",
		func() float64 { return float64(gp.SnapshotStats().Fits) })
	reg.CounterFunc("smiler_gp_jitter_retries_total",
		"Cholesky attempts that failed and walked up the jitter ladder.",
		func() float64 { return float64(gp.SnapshotStats().JitterRetries) })
	reg.CounterFunc("smiler_gp_optimizer_evals_total",
		"Objective/gradient evaluations spent optimizing GP hyperparameters.",
		func() float64 { return float64(gp.SnapshotStats().OptimizeEvals) })
	reg.CounterFunc("smiler_gp_columns_total",
		"Shared per-column Gram bases materialized for the Prediction Step.",
		func() float64 { return float64(gp.SnapshotStats().Columns) })
	reg.CounterFunc("smiler_gp_prefix_reuses_total",
		"Smaller-k models served from a prefix of a shared Cholesky factor.",
		func() float64 { return float64(gp.SnapshotStats().PrefixReuses) })
	registerMemsys(reg)
	return so
}

// registerMemsys bridges the slab allocator's per-class counters into
// the registry. Like the gp counters these live at package level (the
// pool has no registry handle), so they are read lazily at scrape
// time: one snapshot per pool per scrape, shared by every class series
// through the closure table built here.
func registerMemsys(reg *obs.Registry) {
	pools := []struct {
		name string
		snap func() []memsys.ClassStats
	}{
		{"floats", memsys.FloatStats},
		{"bytes", memsys.ByteStats},
	}
	for _, p := range pools {
		snap := p.snap
		for i, cs := range snap() {
			idx := i
			labels := []obs.Label{obs.L("pool", p.name), obs.L("class", strconv.Itoa(cs.Size))}
			reg.CounterFunc("smiler_memsys_hits_total",
				"Slab Gets served from a free list.",
				func() float64 { return float64(snap()[idx].Hits) }, labels...)
			reg.CounterFunc("smiler_memsys_misses_total",
				"Slab Gets that fell through to the heap.",
				func() float64 { return float64(snap()[idx].Misses) }, labels...)
			reg.CounterFunc("smiler_memsys_drops_total",
				"Slab returns surrendered to the GC (free list full or pool disabled).",
				func() float64 { return float64(snap()[idx].Drops) }, labels...)
			reg.GaugeFunc("smiler_memsys_inuse",
				"Slabs currently outstanding (Gets minus returns).",
				func() float64 { return float64(snap()[idx].InUse) }, labels...)
		}
	}
	reg.GaugeFunc("smiler_memsys_enabled",
		"Whether the slab pool is active (1) or degraded to plain make (0).",
		func() float64 {
			if memsys.Enabled() {
				return 1
			}
			return 0
		})
}

// registerSystem adds the gauges that read live system state at
// scrape time (sensor count, device memory).
func (so *systemObs) registerSystem(s *System) {
	so.anytime = s.cfg.Anytime
	if so.reg == nil {
		return
	}
	so.reg.GaugeFunc("smiler_sensors",
		"Registered sensors (hot and cold).",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(len(s.sensors)) + float64(s.tier.coldCount())
		})
	so.reg.GaugeFunc("smiler_sensors_hot",
		"Sensors with a live pipeline and device-resident index.",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(len(s.sensors))
		})
	so.reg.GaugeFunc("smiler_sensors_cold",
		"Sensors currently spilled to disk by the MaxHotSensors LRU.",
		func() float64 { return float64(s.tier.coldCount()) })
	for i, d := range s.devs {
		dev := d
		label := obs.L("device", strconv.Itoa(i))
		so.reg.GaugeFunc("smiler_device_used_bytes",
			"Simulated GPU memory in use.",
			func() float64 { return float64(dev.UsedBytes()) }, label)
		so.reg.GaugeFunc("smiler_device_total_bytes",
			"Simulated GPU memory capacity.",
			func() float64 { return float64(dev.TotalBytes()) }, label)
	}
}

// recordPredict folds one prediction's timing, search stats and
// quality rung into the registry.
func (so *systemObs) recordPredict(totalSec float64, timing core.PhaseTiming, st index.SearchStats, qual core.QualityInfo, err error) {
	if err != nil {
		so.predictErrs.Inc()
		return
	}
	tag := qual.Tag
	if tag == "" {
		tag = "exact"
	}
	if so.predictions != nil {
		if c, ok := so.predictions[tag]; ok {
			c.Inc()
		}
	}
	if so.anytime {
		so.qualityEst.Observe(qual.Estimate)
	}
	so.predictPhase["total"].Observe(totalSec)
	so.predictPhase["search"].Observe(timing.SearchSec)
	so.predictPhase["lower_bound"].Observe(timing.LowerBoundSec)
	so.predictPhase["verify"].Observe(timing.VerifySec)
	so.predictPhase["cell_fit"].Observe(timing.CellFitSec)
	so.predictPhase["mix"].Observe(timing.MixSec)
	so.knnCandidates.Add(st.Candidates)
	so.knnPruned.Add(st.Pruned())
	so.knnUnfiltered.Add(st.Unfiltered)
}

// recordObserve folds one applied observation's timing into the
// registry.
func (so *systemObs) recordObserve(totalSec float64, timing core.ObserveTiming, err error) {
	if err != nil {
		so.observeErrs.Inc()
		return
	}
	so.observed.Inc()
	so.observePhase["total"].Observe(totalSec)
	so.observePhase["reweight"].Observe(timing.ReweightSec)
	so.observePhase["advance"].Observe(timing.AdvanceSec)
}

// recordDegraded counts one fallback answer by failure reason, flags
// it in the flight recorder, and counts the recovered panic behind it
// if that is what failed the pipeline.
func (so *systemObs) recordDegraded(sensor, traceID, reason string, err error) {
	if so.degraded != nil {
		if c, ok := so.degraded[reason]; ok {
			c.Inc()
		}
	}
	// A fallback answer is a completed prediction on the ladder's
	// lowest rung.
	if so.predictions != nil {
		so.predictions["fallback"].Inc()
	}
	if so.anytime {
		so.qualityEst.Observe(0)
	}
	so.events.Record(obs.Event{
		Type:     "degraded_prediction",
		Severity: obs.SevWarn,
		Sensor:   sensor,
		TraceID:  traceID,
		Detail:   "reason=" + reason,
	})
	so.countPanic(err)
}

// countPanic bumps the recovered-panic counter — and drops a
// flight-recorder event — when err carries the core.ErrPanicked
// sentinel (nil-safe, cheap on the non-panic path).
func (so *systemObs) countPanic(err error) {
	if err != nil && errors.Is(err, core.ErrPanicked) {
		so.panicsRecovered.Inc()
		so.events.Record(obs.Event{
			Type:     "panic_recovered",
			Severity: obs.SevError,
			Detail:   err.Error(),
		})
	}
}

// PanicsRecovered reports the number of panics recovered inside the
// prediction pipeline so far — each one a degraded answer or an error
// instead of a dead process (0 with metrics disabled).
func (s *System) PanicsRecovered() uint64 { return s.obs.panicsRecovered.Value() }

// Metrics returns the system's metrics registry (nil when the system
// was built with DisableMetrics — a nil registry serves the whole obs
// API as a no-op, and WritePrometheus on it emits nothing).
func (s *System) Metrics() *obs.Registry { return s.obs.reg }

// Traces returns the per-sensor store of recent prediction traces
// (nil when metrics are disabled).
func (s *System) Traces() *obs.TraceStore { return s.obs.traces }

// Events returns the flight-recorder event ring (nil when metrics are
// disabled — a nil ring serves the whole API as a no-op).
func (s *System) Events() *obs.EventRing { return s.obs.events }

// Runtime returns the runtime/GC telemetry sampler (nil when metrics
// are disabled).
func (s *System) Runtime() *obs.RuntimeSampler { return s.obs.runtime }
