package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"smiler"
	"smiler/internal/ingest"
	"smiler/internal/wal"
)

// torture_test.go drives the crash-recovery machinery through seeded
// kill points: a reference workload is appended to a real sharded WAL,
// crashes are simulated by truncating (or corrupting) the segment
// files at chosen byte offsets, and recovery is checked against the
// reference stream. Kill-point counts satisfy the robustness bar: the
// boundary sweep alone exercises one kill point per appended record.

const tortureShards = 3

// tortureOp is one reference operation with its shard placement.
type tortureOp struct {
	rec   wal.Record
	shard int
}

// tortureWorkload builds a deterministic op stream: three sensors with
// seeded histories, then interleaved observations.
func tortureWorkload(seed int64, observations int) []tortureOp {
	rng := rand.New(rand.NewSource(seed))
	ids := []string{"alpha", "beta", "gamma"}
	var ops []tortureOp
	for _, id := range ids {
		hist := make([]float64, 64)
		for i := range hist {
			hist[i] = 20 + 5*math.Sin(2*math.Pi*float64(i)/24) + rng.NormFloat64()
		}
		ops = append(ops, tortureOp{
			rec:   wal.Record{Type: wal.RecAddSensor, Sensor: id, History: hist},
			shard: ingest.ShardIndex(id, tortureShards),
		})
	}
	for i := 0; i < observations; i++ {
		id := ids[i%len(ids)]
		ops = append(ops, tortureOp{
			rec:   wal.Record{Type: wal.RecObserve, Sensor: id, Value: 20 + rng.NormFloat64()},
			shard: ingest.ShardIndex(id, tortureShards),
		})
	}
	return ops
}

// writeWorkload appends every op through a real Manager and returns,
// per op index, the byte size each shard's segment file had right
// after that append — the exact on-disk state of a crash at that
// record boundary (SyncAlways: every append is flushed).
func writeWorkload(t *testing.T, dir string, ops []tortureOp, policy wal.SyncPolicy) [][]int64 {
	t.Helper()
	mgr, err := wal.OpenManager(dir, tortureShards, wal.Options{Policy: policy}, ingest.ShardIndex)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	sizes := make([][]int64, len(ops))
	for i, op := range ops {
		switch op.rec.Type {
		case wal.RecAddSensor:
			err = mgr.AppendAddSensor(op.rec.Sensor, op.rec.History)
		case wal.RecObserve:
			err = mgr.AppendObserve(op.shard, op.rec.Sensor, op.rec.Value)
		case wal.RecRemoveSensor:
			err = mgr.AppendRemoveSensor(op.rec.Sensor)
		}
		if err != nil {
			t.Fatalf("append op %d: %v", i, err)
		}
		sizes[i] = shardFileSizes(t, dir)
	}
	return sizes
}

// shardFileSizes reports the current byte size of each shard's single
// segment file (the workload is far below the rotation threshold).
func shardFileSizes(t *testing.T, dir string) []int64 {
	t.Helper()
	sizes := make([]int64, tortureShards)
	for s := 0; s < tortureShards; s++ {
		matches, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("shard-%03d", s), "*.wal"))
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) != 1 {
			t.Fatalf("shard %d has %d segments, expected 1 (raise workload rotation threshold?)", s, len(matches))
		}
		fi, err := os.Stat(matches[0])
		if err != nil {
			t.Fatal(err)
		}
		sizes[s] = fi.Size()
	}
	return sizes
}

// cloneWAL copies a sharded WAL directory tree byte for byte.
func cloneWAL(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// truncateShard cuts one shard's segment file to n bytes.
func truncateShard(t *testing.T, dir string, shard int, n int64) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("shard-%03d", shard), "*.wal"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("shard %d: %v (%d segments)", shard, err, len(matches))
	}
	if err := os.Truncate(matches[0], n); err != nil {
		t.Fatal(err)
	}
}

// flipByte flips one byte of the shard's segment file.
func flipByte(t *testing.T, dir string, shard int, off int64) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("shard-%03d", shard), "*.wal"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("shard %d: %v (%d segments)", shard, err, len(matches))
	}
	f, err := os.OpenFile(matches[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// collectReplay replays a WAL directory into per-shard record lists.
func collectReplay(t *testing.T, dir string) (map[int][]wal.Record, wal.ReplayStats) {
	t.Helper()
	got := make(map[int][]wal.Record)
	st, err := wal.ReplayDir(dir, func(shard int, seq uint64, r wal.Record) error {
		got[shard] = append(got[shard], r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay must stop cleanly at corruption, got error: %v", err)
	}
	return got, st
}

func recordsEqual(a, b wal.Record) bool {
	if a.Type != b.Type || a.Sensor != b.Sensor || a.Value != b.Value || len(a.History) != len(b.History) {
		return false
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			return false
		}
	}
	return true
}

// expectShard returns the per-shard reference records for the first n
// ops of the workload.
func expectShard(ops []tortureOp, n int) map[int][]wal.Record {
	exp := make(map[int][]wal.Record)
	for _, op := range ops[:n] {
		exp[op.shard] = append(exp[op.shard], op.rec)
	}
	return exp
}

// assertPrefix checks that got is a record-wise prefix of want.
func assertPrefix(t *testing.T, shard int, got, want []wal.Record) {
	t.Helper()
	if len(got) > len(want) {
		t.Fatalf("shard %d: replay yielded %d records, reference only appended %d — invented records", shard, len(got), len(want))
	}
	for i := range got {
		if !recordsEqual(got[i], want[i]) {
			t.Fatalf("shard %d record %d: replayed %+v, reference %+v", shard, i, got[i], want[i])
		}
	}
}

// TestTortureBoundaryKillPoints simulates a crash immediately after
// every single append (one kill point per record, >120 in total) by
// truncating the final segment files back to the byte sizes they had
// at that moment. With fsync=always every append is synced, so
// recovery must replay every record — losing even one means a synced
// observation was lost.
func TestTortureBoundaryKillPoints(t *testing.T) {
	ops := tortureWorkload(42, 120)
	base := filepath.Join(t.TempDir(), "wal")
	sizes := writeWorkload(t, base, ops, wal.SyncAlways)

	for k := 1; k <= len(ops); k++ {
		crash := filepath.Join(t.TempDir(), fmt.Sprintf("crash-%03d", k))
		cloneWAL(t, base, crash)
		for s := 0; s < tortureShards; s++ {
			truncateShard(t, crash, s, sizes[k-1][s])
		}
		got, st := collectReplay(t, crash)
		if st.Torn {
			t.Fatalf("kill point %d: boundary crash must not look torn (segment %s)", k, st.TornSegment)
		}
		exp := expectShard(ops, k)
		total := 0
		for s := 0; s < tortureShards; s++ {
			if len(got[s]) != len(exp[s]) {
				t.Fatalf("kill point %d shard %d: recovered %d records, want %d (synced observation lost)",
					k, s, len(got[s]), len(exp[s]))
			}
			assertPrefix(t, s, got[s], exp[s])
			total += len(got[s])
		}
		if total != k {
			t.Fatalf("kill point %d: recovered %d records in total", k, total)
		}
	}
}

// TestTortureTornAndCorruptTails simulates crashes mid-write (random
// truncation inside a shard file) and on-disk corruption (byte flips):
// replay must stop cleanly, never surface a torn record, and yield an
// exact per-shard prefix of the reference stream; untouched shards
// must recover in full. Recovery is then run through the production
// path (recoverWAL) and its post-recovery predictions must be
// bit-identical to a never-crashed system fed the same surviving
// records.
func TestTortureTornAndCorruptTails(t *testing.T) {
	ops := tortureWorkload(7, 120)
	base := filepath.Join(t.TempDir(), "wal")
	sizes := writeWorkload(t, base, ops, wal.SyncAlways)
	final := sizes[len(ops)-1]
	exp := expectShard(ops, len(ops))

	const trials = 40
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed-%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			crash := filepath.Join(t.TempDir(), "crash")
			cloneWAL(t, base, crash)
			// Pick a shard that actually holds records (ids may hash
			// unevenly across the three shards).
			shard := rng.Intn(tortureShards)
			for final[shard] < 2 {
				shard = (shard + 1) % tortureShards
			}
			off := 1 + rng.Int63n(final[shard]-1)
			corrupt := trial%2 == 1
			if corrupt {
				flipByte(t, crash, shard, off)
			} else {
				truncateShard(t, crash, shard, off)
			}

			got, _ := collectReplay(t, crash)
			for s := 0; s < tortureShards; s++ {
				assertPrefix(t, s, got[s], exp[s])
				if s != shard && len(got[s]) != len(exp[s]) {
					t.Fatalf("untouched shard %d lost records: %d of %d", s, len(got[s]), len(exp[s]))
				}
			}

			// Production recovery vs a never-crashed reference fed the
			// same surviving records: bit-identical state and forecasts.
			recovered, err := smiler.New(smallCfg())
			if err != nil {
				t.Fatal(err)
			}
			defer recovered.Close()
			if _, err := recoverWAL(recovered, crash, nil, quiet); err != nil {
				t.Fatal(err)
			}
			reference, err := smiler.New(smallCfg())
			if err != nil {
				t.Fatal(err)
			}
			defer reference.Close()
			for s := 0; s < tortureShards; s++ {
				for _, r := range got[s] {
					switch r.Type {
					case wal.RecAddSensor:
						err = reference.AddSensor(r.Sensor, r.History)
					case wal.RecObserve:
						err = reference.Observe(r.Sensor, r.Value)
					case wal.RecRemoveSensor:
						err = reference.RemoveSensor(r.Sensor)
					}
					if err != nil {
						t.Fatal(err)
					}
				}
			}
			for _, id := range reference.Sensors() {
				refHist, err := reference.History(id)
				if err != nil {
					t.Fatal(err)
				}
				gotHist, err := recovered.History(id)
				if err != nil {
					t.Fatalf("sensor %s recovered by reference but not by recoverWAL: %v", id, err)
				}
				if len(refHist) != len(gotHist) {
					t.Fatalf("sensor %s: recovered %d points, reference %d", id, len(gotHist), len(refHist))
				}
				for i := range refHist {
					if refHist[i] != gotHist[i] {
						t.Fatalf("sensor %s point %d: recovered %v, reference %v", id, i, gotHist[i], refHist[i])
					}
				}
				fr, err := reference.Predict(id, 1)
				if err != nil {
					t.Fatal(err)
				}
				fg, err := recovered.Predict(id, 1)
				if err != nil {
					t.Fatal(err)
				}
				if fr.Mean != fg.Mean || fr.Variance != fg.Variance {
					t.Fatalf("sensor %s: recovered forecast (%v, %v) != reference (%v, %v)",
						id, fg.Mean, fg.Variance, fr.Mean, fr.Variance)
				}
			}
		})
	}
}

// applyOps feeds reference ops straight into a system.
func applyOps(t *testing.T, sys *smiler.System, ops []tortureOp) {
	t.Helper()
	for _, op := range ops {
		var err error
		switch op.rec.Type {
		case wal.RecAddSensor:
			err = sys.AddSensor(op.rec.Sensor, op.rec.History)
		case wal.RecObserve:
			err = sys.Observe(op.rec.Sensor, op.rec.Value)
		case wal.RecRemoveSensor:
			err = sys.RemoveSensor(op.rec.Sensor)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// assertSameHistories fails unless both systems hold bit-identical
// per-sensor histories.
func assertSameHistories(t *testing.T, got, want *smiler.System) {
	t.Helper()
	gotIDs, wantIDs := got.Sensors(), want.Sensors()
	if len(gotIDs) != len(wantIDs) {
		t.Fatalf("recovered sensors %v, want %v", gotIDs, wantIDs)
	}
	for _, id := range wantIDs {
		wh, err := want.History(id)
		if err != nil {
			t.Fatal(err)
		}
		gh, err := got.History(id)
		if err != nil {
			t.Fatalf("sensor %s missing after recovery: %v", id, err)
		}
		if len(gh) != len(wh) {
			t.Fatalf("sensor %s: recovered %d points, want %d (covered records re-applied?)", id, len(gh), len(wh))
		}
		for i := range wh {
			if gh[i] != wh[i] {
				t.Fatalf("sensor %s point %d: %v != %v", id, i, gh[i], wh[i])
			}
		}
	}
}

// emulateShardReset leaves one shard's directory exactly as
// Manager.Reset does: every segment deleted and a fresh empty segment
// whose name preserves the next sequence number.
func emulateShardReset(t *testing.T, dir string, shard int, nextSeq uint64) {
	t.Helper()
	sd := filepath.Join(dir, fmt.Sprintf("shard-%03d", shard))
	matches, err := filepath.Glob(filepath.Join(sd, "*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			t.Fatal(err)
		}
	}
	fresh := filepath.Join(sd, fmt.Sprintf("%020d.wal", nextSeq))
	if err := os.WriteFile(fresh, nil, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestTortureCheckpointResetWindow is the kill point between a
// checkpoint save and the WAL reset it covers — the window where the
// durable checkpoint already contains every WAL record. Crashing there
// (before the reset, or after only some shards were reset) must not
// double-apply a single observation: the cover embedded in the
// checkpoint tells replay to skip everything below it.
func TestTortureCheckpointResetWindow(t *testing.T) {
	ops := tortureWorkload(13, 90)
	base := filepath.Join(t.TempDir(), "wal")
	writeWorkload(t, base, ops, wal.SyncAlways)

	// The state and cover the shutdown checkpoint captured.
	ref, err := smiler.New(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	applyOps(t, ref, ops)
	mgr, err := wal.OpenManager(base, tortureShards, wal.Options{}, ingest.ShardIndex)
	if err != nil {
		t.Fatal(err)
	}
	cover := mgr.NextSeqs()
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "state.gob")
	if err := ref.SaveFileWithCover(ckpt, cover); err != nil {
		t.Fatal(err)
	}

	// Kill points: before any shard was reset, mid-reset, after all.
	for resetShards := 0; resetShards <= tortureShards; resetShards++ {
		t.Run(fmt.Sprintf("reset-%d-shards", resetShards), func(t *testing.T) {
			crash := filepath.Join(t.TempDir(), "crash")
			cloneWAL(t, base, crash)
			for s := 0; s < resetShards; s++ {
				emulateShardReset(t, crash, s, cover[s])
			}
			sys, loadedCover, err := smiler.LoadFileWithCover(ckpt, smallCfg())
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()
			if len(loadedCover) != tortureShards {
				t.Fatalf("checkpoint cover = %v, want %d shards", loadedCover, tortureShards)
			}
			if _, err := recoverWAL(sys, crash, loadedCover, quiet); err != nil {
				t.Fatal(err)
			}
			assertSameHistories(t, sys, ref)
		})
	}

	// The same window through the production path: openDurability must
	// fold the leftover covered records away (fresh checkpoint + reset,
	// sequence numbers preserved) and keep the state intact.
	crash := filepath.Join(t.TempDir(), "crash-prod")
	cloneWAL(t, base, crash)
	ckpt2 := filepath.Join(t.TempDir(), "state2.gob")
	b, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt2, b, 0o644); err != nil {
		t.Fatal(err)
	}
	sys, loadedCover, err := smiler.LoadFileWithCover(ckpt2, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	o := options{walDir: crash, checkpoint: ckpt2, fsync: "always", shards: tortureShards}
	mgr, err = openDurability(sys, loadedCover, o, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	assertSameHistories(t, sys, ref)
	// Sequence numbers must survive the reset so the rewritten cover
	// stays consistent with future appends.
	for shard, next := range mgr.NextSeqs() {
		if next < cover[shard] {
			t.Fatalf("shard %d sequence regressed to %d (cover %d)", shard, next, cover[shard])
		}
	}
	if st, err := recoverWAL(sys, crash, nil, quiet); err != nil || st.Records != 0 {
		t.Fatalf("WAL not reset after post-recovery checkpoint: %d records, err %v", st.Records, err)
	}
	// The rewritten checkpoint must carry the fresh cover.
	sys2, cover2, err := smiler.LoadFileWithCover(ckpt2, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	assertSameHistories(t, sys2, ref)
	for shard, next := range mgr.NextSeqs() {
		if cover2[shard] != next {
			t.Fatalf("rewritten cover[%d] = %d, want %d", shard, cover2[shard], next)
		}
	}
}

// TestTortureStaleCoverRewritten: a checkpoint whose cover refers to a WAL
// that no longer exists (directory wiped by an operator) must not make
// replay skip the low sequence numbers a fresh WAL reuses — recovery
// detects the stale cover and rewrites the checkpoint against the
// fresh, empty log.
func TestTortureStaleCoverRewritten(t *testing.T) {
	ref, err := smiler.New(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	applyOps(t, ref, tortureWorkload(5, 6))
	ckpt := filepath.Join(t.TempDir(), "state.gob")
	stale := map[int]uint64{0: 50, 1: 40, 2: 30}
	if err := ref.SaveFileWithCover(ckpt, stale); err != nil {
		t.Fatal(err)
	}

	sys, cover, err := smiler.LoadFileWithCover(ckpt, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	walDir := filepath.Join(t.TempDir(), "wal") // fresh: seqs restart at 0
	o := options{walDir: walDir, checkpoint: ckpt, fsync: "always", shards: tortureShards}
	mgr, err := openDurability(sys, cover, o, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	sys2, cover2, err := smiler.LoadFileWithCover(ckpt, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	for shard, seq := range cover2 {
		if seq != 0 {
			t.Fatalf("stale cover survived recovery: cover[%d] = %d, want 0", shard, seq)
		}
	}
}

// TestRecoveredHistoryPrefixProperty is the per-fsync-policy property:
// whatever suffix of the log a crash destroys, the recovered history
// of every sensor is a prefix of the reference stream — the policies
// differ only in how long that lost suffix may be, never in shape.
func TestRecoveredHistoryPrefixProperty(t *testing.T) {
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncOff} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			ops := tortureWorkload(99, 90)
			base := filepath.Join(t.TempDir(), "wal")
			sizes := writeWorkload(t, base, ops, policy)
			final := sizes[len(ops)-1]

			// Reference per-sensor stream: initial history ++ observations
			// in shard order (per-sensor order == per-shard order).
			refStream := make(map[string][]float64)
			for _, op := range ops {
				switch op.rec.Type {
				case wal.RecAddSensor:
					refStream[op.rec.Sensor] = append([]float64(nil), op.rec.History...)
				case wal.RecObserve:
					refStream[op.rec.Sensor] = append(refStream[op.rec.Sensor], op.rec.Value)
				}
			}

			rng := rand.New(rand.NewSource(2026))
			for trial := 0; trial < 10; trial++ {
				crash := filepath.Join(t.TempDir(), fmt.Sprintf("crash-%02d", trial))
				cloneWAL(t, base, crash)
				// Destroy an arbitrary suffix of every shard — the worst
				// case any fsync policy admits.
				for s := 0; s < tortureShards; s++ {
					truncateShard(t, crash, s, rng.Int63n(final[s]+1))
				}
				sys, err := smiler.New(smallCfg())
				if err != nil {
					t.Fatal(err)
				}
				if _, err := recoverWAL(sys, crash, nil, quiet); err != nil {
					t.Fatal(err)
				}
				for _, id := range sys.Sensors() {
					got, err := sys.History(id)
					if err != nil {
						t.Fatal(err)
					}
					ref := refStream[id]
					if len(got) > len(ref) {
						t.Fatalf("%s trial %d sensor %s: recovered %d points, reference %d",
							policy, trial, id, len(got), len(ref))
					}
					for i := range got {
						if got[i] != ref[i] {
							t.Fatalf("%s trial %d sensor %s point %d: %v != %v — not a prefix",
								policy, trial, id, i, got[i], ref[i])
						}
					}
				}
				sys.Close()
			}
		})
	}
}

// TestTortureRecoveryTiered runs WAL recovery with a hot-sensor cap
// below the population: replay must fault sensors through the spill
// tier (evicting and restoring mid-replay) and still recover
// bit-identical histories and forecasts. This is the crash-recovery
// harness with tiering enabled.
func TestTortureRecoveryTiered(t *testing.T) {
	ops := tortureWorkload(11, 90)
	base := filepath.Join(t.TempDir(), "wal")
	writeWorkload(t, base, ops, wal.SyncAlways)

	cfg := smallCfg()
	cfg.MaxHotSensors = 1
	recovered, err := smiler.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if _, err := recoverWAL(recovered, base, nil, quiet); err != nil {
		t.Fatal(err)
	}
	reference, err := smiler.New(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer reference.Close()
	applyOps(t, reference, ops)

	if st := recovered.Tiering(); st.Evictions == 0 || st.Faults == 0 {
		t.Fatalf("replay over 3 sensors at cap 1 must churn the tier: %+v", st)
	}
	assertSameHistories(t, recovered, reference)
	for _, id := range reference.Sensors() {
		fr, err := reference.Predict(id, 1)
		if err != nil {
			t.Fatal(err)
		}
		fg, err := recovered.Predict(id, 1)
		if err != nil {
			t.Fatal(err)
		}
		if fr.Mean != fg.Mean || fr.Variance != fg.Variance {
			t.Fatalf("sensor %s: tiered recovery forecast (%v, %v) != reference (%v, %v)",
				id, fg.Mean, fg.Variance, fr.Mean, fr.Variance)
		}
	}
}
