// Versioned cluster map: the single source of truth for membership.
//
// The map carries a monotonic epoch, the id of the primary that
// published it, every member with a lifecycle state, and a signature
// (HMAC-SHA256 under the shared secret, plain SHA-256 without one).
// The primary publishes a new map by bumping the epoch, signing, and
// pushing it to the union of old and new members; every intra-cluster
// request and response carries the sender's epoch, so a stale node
// notices within one heartbeat and pulls the newer map. A node never
// installs a map with an epoch below its own.
//
// Member states drive a two-ring view:
//
//	placement ring = active + draining members — where sensor state
//	                 lives today, so routing keeps working mid-change;
//	target ring    = active + joining members — where the rebalancer
//	                 is moving it.
//
// Per-sensor assign overrides bridge the two during a rebalance: each
// migration flips the sensor's override to its target-ring owner, and
// when the primary finalizes the map (joining→active, draining→gone)
// the placement ring catches up and the overrides become redundant.
package cluster

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"smiler/internal/fault"
	"smiler/internal/obs"
)

// MemberState is a member's lifecycle state in the cluster map.
type MemberState string

const (
	// StateActive members own ring arcs and take new work.
	StateActive MemberState = "active"
	// StateJoining members are admitted but hold no ring arcs yet;
	// the rebalancer is migrating their future share to them.
	StateJoining MemberState = "joining"
	// StateDraining members still serve what they own but take no new
	// sensors; the rebalancer is migrating their share away.
	StateDraining MemberState = "draining"
)

// ClusterMap is the versioned membership document. Members are sorted
// by id and Sig covers the canonical JSON encoding with Sig blanked.
type ClusterMap struct {
	Epoch    uint64   `json:"epoch"`
	Primary  string   `json:"primary"` // publisher of this epoch
	Members  []Member `json:"members"`
	Replicas int      `json:"replicas"`
	VNodes   int      `json:"vnodes"`
	Sig      string   `json:"sig"`
}

func (m *ClusterMap) canonical() []byte {
	c := *m
	c.Sig = ""
	b, _ := json.Marshal(&c)
	return b
}

func (m *ClusterMap) clone() *ClusterMap {
	c := *m
	c.Members = append([]Member(nil), m.Members...)
	return &c
}

// signMap returns the map's signature: HMAC-SHA256 under the shared
// secret, or a bare SHA-256 integrity checksum when no secret is set
// (matching the trust level of the rest of the secretless endpoints).
func signMap(m *ClusterMap, secret string) string {
	if secret != "" {
		mac := hmac.New(sha256.New, []byte(secret))
		mac.Write(m.canonical())
		return hex.EncodeToString(mac.Sum(nil))
	}
	sum := sha256.Sum256(m.canonical())
	return hex.EncodeToString(sum[:])
}

func verifyMapSig(m *ClusterMap, secret string) bool {
	return hmac.Equal([]byte(signMap(m, secret)), []byte(m.Sig))
}

// memberView is an immutable snapshot derived from one installed map.
type memberView struct {
	cmap    *ClusterMap
	members map[string]Member
	place   *Ring    // active + draining: where sensor state lives
	target  *Ring    // active + joining: where it should end up
	peers   []string // every member id except self, sorted
	self    MemberState
	inMap   bool
}

func (v *memberView) stateOf(id string) MemberState {
	st := v.members[id].State
	if st == "" {
		return StateActive
	}
	return st
}

// viewNeedsRebalance reports whether any member is mid-transition.
func viewNeedsRebalance(v *memberView) bool {
	for _, mem := range v.members {
		if mem.State == StateJoining || mem.State == StateDraining {
			return true
		}
	}
	return false
}

func (n *Node) buildView(m *ClusterMap) *memberView {
	v := &memberView{cmap: m, members: make(map[string]Member, len(m.Members))}
	var placeIDs, targetIDs []string
	for _, mem := range m.Members {
		if mem.State == "" {
			mem.State = StateActive
		}
		v.members[mem.ID] = mem
		if mem.State != StateJoining {
			placeIDs = append(placeIDs, mem.ID)
		}
		if mem.State != StateDraining {
			targetIDs = append(targetIDs, mem.ID)
		}
		if mem.ID == n.cfg.Self {
			v.self, v.inMap = mem.State, true
		} else {
			v.peers = append(v.peers, mem.ID)
		}
	}
	sort.Strings(v.peers)
	v.place = NewRing(placeIDs, m.VNodes)
	v.target = NewRing(targetIDs, m.VNodes)
	return v
}

// seedMap builds the epoch-1 map from the static Config. Nodes booted
// with the same member list, replicas, vnodes and secret derive the
// byte-identical seed, so a fresh cluster agrees without a publish.
func seedMap(cfg Config, members map[string]Member) *ClusterMap {
	ids := make([]string, 0, len(members))
	for id := range members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	ms := make([]Member, 0, len(ids))
	for _, id := range ids {
		mem := members[id]
		mem.State = StateActive
		ms = append(ms, mem)
	}
	reps := cfg.Replicas
	if reps > len(ms)-1 {
		reps = len(ms) - 1
	}
	if reps < 0 {
		reps = 0
	}
	m := &ClusterMap{Epoch: 1, Primary: ids[0], Members: ms, Replicas: reps, VNodes: cfg.VirtualNodes}
	m.Sig = signMap(m, cfg.Secret)
	return m
}

// errStaleMap rejects a map whose epoch is below the installed one.
var errStaleMap = errors.New("cluster: map is stale")

func (n *Node) verifyMap(m *ClusterMap) error {
	if m == nil || m.Epoch == 0 {
		return errors.New("cluster: map missing epoch")
	}
	if len(m.Members) == 0 {
		return errors.New("cluster: map has no members")
	}
	seen := make(map[string]bool, len(m.Members))
	okPrimary := false
	for _, mem := range m.Members {
		if mem.ID == "" {
			return errors.New("cluster: map member with empty id")
		}
		if seen[mem.ID] {
			return fmt.Errorf("cluster: duplicate member %q in map", mem.ID)
		}
		seen[mem.ID] = true
		u, err := url.Parse(mem.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return fmt.Errorf("cluster: member %q has invalid URL %q", mem.ID, mem.URL)
		}
		switch mem.State {
		case "", StateActive, StateJoining, StateDraining:
		default:
			return fmt.Errorf("cluster: member %q has unknown state %q", mem.ID, mem.State)
		}
		if mem.ID == m.Primary {
			okPrimary = true
		}
	}
	if !okPrimary {
		return fmt.Errorf("cluster: map primary %q is not a member", m.Primary)
	}
	if !verifyMapSig(m, n.cfg.Secret) {
		return errors.New("cluster: map signature mismatch")
	}
	return nil
}

// installMap validates m and, when newer than the installed view,
// makes it this node's membership: rings rebuilt, prober/replicator/
// metrics peer sets reconciled, transition events recorded. A map
// that drops self is accepted only while self is draining — that is
// the decommission completing — and closes Drained().
func (n *Node) installMap(m *ClusterMap) error {
	if err := n.verifyMap(m); err != nil {
		return err
	}
	n.mapMu.Lock()
	defer n.mapMu.Unlock()
	cur := n.view.Load()
	if cur != nil {
		if m.Epoch < cur.cmap.Epoch {
			return errStaleMap
		}
		if m.Epoch == cur.cmap.Epoch {
			if bytes.Equal(m.canonical(), cur.cmap.canonical()) {
				return nil
			}
			// Same epoch, different content: a split publish. Epoch
			// monotonicity arbitrates — whoever publishes next wins.
			return fmt.Errorf("cluster: conflicting map at epoch %d", m.Epoch)
		}
	}
	v := n.buildView(m)
	if !v.inMap && (cur == nil || !cur.inMap || cur.self != StateDraining) {
		return fmt.Errorf("cluster: map epoch %d does not contain self %q", m.Epoch, n.cfg.Self)
	}
	n.view.Store(v)
	n.noteMembershipChange(cur, v)
	n.health.syncPeers(v.peers)
	n.repl.syncPeers(v)
	if n.m != nil {
		n.m.syncPeers(v.peers)
	}
	// Overrides whose target is now the placement-ring owner were
	// finalized into the ring; drop them.
	n.assignMu.Lock()
	for sensor, id := range n.assign {
		if v.place.Owner(sensor) == id {
			delete(n.assign, sensor)
		}
	}
	n.assignMu.Unlock()
	if v.inMap && v.self == StateDraining {
		n.srv.SetDraining()
	}
	if !v.inMap {
		n.drainedOnce.Do(func() { close(n.drained) })
	}
	return nil
}

// noteMembershipChange records flight-recorder events for the diff
// between two installed views. The very first install (boot seed) is
// silent.
func (n *Node) noteMembershipChange(old, cur *memberView) {
	if old == nil {
		return
	}
	ev := n.sys.Events()
	ev.Record(obs.Event{
		Type: "epoch_change",
		Detail: fmt.Sprintf("cluster map epoch %d -> %d (primary %s, %d members)",
			old.cmap.Epoch, cur.cmap.Epoch, cur.cmap.Primary, len(cur.members)),
	})
	for id, mem := range cur.members {
		prev, had := old.members[id]
		switch {
		case !had:
			ev.Record(obs.Event{
				Type:   "member_join",
				Detail: fmt.Sprintf("member %s (%s) joined as %s", id, mem.URL, mem.State),
			})
		case prev.State != StateDraining && mem.State == StateDraining:
			ev.Record(obs.Event{
				Type:     "member_drain",
				Severity: obs.SevWarn,
				Detail:   "member " + id + " is draining",
			})
		}
	}
	for id := range old.members {
		if _, ok := cur.members[id]; !ok {
			ev.Record(obs.Event{Type: "member_leave", Detail: "member " + id + " left the cluster"})
		}
	}
	if n.log != nil {
		n.log.Info("cluster map installed",
			"epoch", cur.cmap.Epoch, "members", len(cur.members), "primary", cur.cmap.Primary)
	}
}

// --- epoch propagation ---

// epochHeader carries the sender's installed map epoch on every
// intra-cluster request and response; fromURLHeader carries the
// sender's base URL so even a not-yet-known sender can be pulled from.
const (
	epochHeader   = "X-Smiler-Epoch"
	fromURLHeader = "X-Smiler-From-Url"
)

func (n *Node) curView() *memberView { return n.view.Load() }

func (n *Node) epoch() uint64 {
	if v := n.curView(); v != nil {
		return v.cmap.Epoch
	}
	return 0
}

func (n *Node) stampEpoch(w http.ResponseWriter) {
	w.Header().Set(epochHeader, strconv.FormatUint(n.epoch(), 10))
}

// noteEpoch inspects peer-sent headers for a newer epoch and, when the
// sender is ahead, pulls its map asynchronously. src is the fallback
// URL to pull from when the headers name no reachable sender.
func (n *Node) noteEpoch(h http.Header, src string) {
	e, err := strconv.ParseUint(h.Get(epochHeader), 10, 64)
	if err != nil || e <= n.epoch() {
		return
	}
	if u := h.Get(fromURLHeader); u != "" {
		src = u
	} else if m, ok := n.member(h.Get(fromHeader)); ok {
		src = m.URL
	}
	if src != "" {
		n.pullMapAsync(src)
	}
}

func (n *Node) pullMapAsync(url string) {
	if !n.pulling.CompareAndSwap(false, true) {
		return
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer n.pulling.Store(false)
		if err := n.pullMap(url); err != nil && n.log != nil {
			n.log.Warn("cluster map pull failed", "from", url, "err", err)
		}
	}()
}

func (n *Node) pullMap(base string) error {
	req, err := http.NewRequest(http.MethodGet, base+"/cluster/map", nil)
	if err != nil {
		return err
	}
	n.peerHeaders(req)
	resp, err := n.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("map pull answered HTTP %d", resp.StatusCode)
	}
	var m ClusterMap
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&m); err != nil {
		return err
	}
	if err := n.installMap(&m); err != nil && !errors.Is(err, errStaleMap) {
		return err
	}
	return nil
}

// --- publish ---

// publishMap installs m locally, then pushes it to every member of
// both the old and the new view (a member dropped by the map still
// needs its leave notice). Pushes are asynchronous and best-effort: a
// peer that misses one pulls the map the moment it sees the higher
// epoch on any request, response, or heartbeat.
func (n *Node) publishMap(m *ClusterMap) error {
	old := n.curView()
	if err := n.installMap(m); err != nil {
		return err
	}
	targets := make(map[string]string)
	if old != nil {
		for id, mem := range old.members {
			targets[id] = mem.URL
		}
	}
	for _, mem := range m.Members {
		targets[mem.ID] = mem.URL
	}
	delete(targets, n.cfg.Self)
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	for id, u := range targets {
		id, u := id, u
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			if err := n.pushMapTo(id, u, body); err != nil && n.log != nil {
				n.log.Warn("cluster map push failed", "peer", id, "epoch", m.Epoch, "err", err)
			}
		}()
	}
	return nil
}

func (n *Node) pushMapTo(id, base string, body []byte) error {
	if err := checkPeerFault(fault.PointClusterMapPush, id); err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, base+"/cluster/map", bytes.NewReader(body))
	if err != nil {
		return err
	}
	n.peerHeaders(req)
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	// 409 means the peer is already at or past this epoch: fine.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
		return fmt.Errorf("map push answered HTTP %d", resp.StatusCode)
	}
	return nil
}

// --- proposals (primary-only map mutations) ---

// proposeJoin admits a new member in state joining and publishes the
// next epoch. Re-joining with the same id+URL is idempotent.
func (n *Node) proposeJoin(id, rawURL string) (*ClusterMap, error) {
	u, err := url.Parse(rawURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("invalid join URL %q", rawURL)
	}
	clean := strings.TrimSuffix(u.String(), "/")
	n.proposeMu.Lock()
	defer n.proposeMu.Unlock()
	v := n.curView()
	if v == nil {
		return nil, errors.New("no cluster map installed")
	}
	if mem, ok := v.members[id]; ok {
		if mem.URL == clean {
			return v.cmap, nil
		}
		return nil, fmt.Errorf("member %q already exists at %s", id, mem.URL)
	}
	m := v.cmap.clone()
	m.Members = append(m.Members, Member{ID: id, URL: clean, State: StateJoining})
	sort.Slice(m.Members, func(i, j int) bool { return m.Members[i].ID < m.Members[j].ID })
	m.Epoch++
	m.Primary = n.cfg.Self
	m.Sig = signMap(m, n.cfg.Secret)
	if err := n.publishMap(m); err != nil {
		return nil, err
	}
	if n.log != nil {
		n.log.Info("member joining", "id", id, "url", clean, "epoch", m.Epoch)
	}
	n.reb.kickNow()
	return m, nil
}

// proposeDrain flips a member to draining and publishes the next
// epoch. Draining an already-draining member is idempotent; draining
// the last active member is refused.
func (n *Node) proposeDrain(id string) (*ClusterMap, error) {
	n.proposeMu.Lock()
	defer n.proposeMu.Unlock()
	v := n.curView()
	if v == nil {
		return nil, errors.New("no cluster map installed")
	}
	mem, ok := v.members[id]
	if !ok {
		return nil, fmt.Errorf("unknown member %q", id)
	}
	if mem.State == StateDraining {
		return v.cmap, nil
	}
	active := 0
	for _, other := range v.members {
		if other.ID != id && v.stateOf(other.ID) == StateActive {
			active++
		}
	}
	if active == 0 {
		return nil, errors.New("cannot drain the last active member")
	}
	m := v.cmap.clone()
	for i := range m.Members {
		if m.Members[i].ID == id {
			m.Members[i].State = StateDraining
		}
	}
	m.Epoch++
	m.Primary = n.cfg.Self
	m.Sig = signMap(m, n.cfg.Secret)
	if err := n.publishMap(m); err != nil {
		return nil, err
	}
	if n.log != nil {
		n.log.Info("member draining", "id", id, "epoch", m.Epoch)
	}
	n.reb.kickNow()
	return m, nil
}

// proposeFinalize completes a rebalance: joining members become
// active, draining members leave the map. Only called by the
// rebalancer once the plan is empty and nothing is blocked — at that
// point every sensor's override already matches the new ring, so the
// placement flip does not move any routing.
func (n *Node) proposeFinalize() error {
	n.proposeMu.Lock()
	defer n.proposeMu.Unlock()
	v := n.curView()
	if v == nil || !viewNeedsRebalance(v) {
		return nil
	}
	m := v.cmap.clone()
	out := m.Members[:0]
	for _, mem := range m.Members {
		if mem.State == StateDraining {
			continue
		}
		mem.State = StateActive
		out = append(out, mem)
	}
	m.Members = out
	if max := len(m.Members) - 1; m.Replicas > max {
		m.Replicas = max
	}
	m.Epoch++
	m.Primary = n.cfg.Self
	m.Sig = signMap(m, n.cfg.Secret)
	if err := n.publishMap(m); err != nil {
		return err
	}
	if n.log != nil {
		n.log.Info("rebalance finalized", "epoch", m.Epoch, "members", len(m.Members))
	}
	return nil
}

// --- endpoints ---

// ClusterMapResponse is GET /cluster/map: the installed map plus this
// node's locally computed primary.
type ClusterMapResponse struct {
	ClusterMap
	ElectedPrimary string `json:"elected_primary,omitempty"`
}

func (n *Node) handleMap(w http.ResponseWriter, r *http.Request) {
	n.stampEpoch(w)
	switch r.Method {
	case http.MethodGet:
		v := n.curView()
		if v == nil {
			writeError(w, http.StatusServiceUnavailable, "no cluster map installed")
			return
		}
		writeJSON(w, http.StatusOK, ClusterMapResponse{ClusterMap: *v.cmap, ElectedPrimary: n.electedPrimary()})
	case http.MethodPost:
		if !n.authSecret(w, r) {
			return
		}
		var m ClusterMap
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&m); err != nil {
			writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
			return
		}
		if err := n.installMap(&m); err != nil {
			if errors.Is(err, errStaleMap) {
				writeError(w, http.StatusConflict,
					fmt.Sprintf("pushed epoch %d is older than installed epoch %d", m.Epoch, n.epoch()))
			} else {
				writeError(w, http.StatusBadRequest, err.Error())
			}
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"epoch": m.Epoch})
	default:
		writeError(w, http.StatusMethodNotAllowed, "method not allowed")
	}
}

// JoinRequest is POST /cluster/join: a new member asks to be admitted.
type JoinRequest struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// DecommissionRequest is POST /cluster/decommission. Node defaults to
// the member that received the request.
type DecommissionRequest struct {
	Node string `json:"node,omitempty"`
}

// hopHeader marks a join/decommission request already proxied once, so
// a primary disagreement cannot bounce it around the cluster.
const hopHeader = "X-Smiler-Proxied"

func (n *Node) handleJoin(w http.ResponseWriter, r *http.Request) {
	n.stampEpoch(w)
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	if !n.authSecret(w, r) {
		return
	}
	n.noteEpoch(r.Header, "")
	var req JoinRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if req.ID == "" || req.URL == "" {
		writeError(w, http.StatusBadRequest, "join needs id and url")
		return
	}
	prim := n.electedPrimary()
	if prim == "" {
		writeError(w, http.StatusServiceUnavailable, "no primary elected")
		return
	}
	if prim != n.cfg.Self {
		n.proxyToPrimary(w, r, prim, "/cluster/join", req)
		return
	}
	m, err := n.proposeJoin(req.ID, req.URL)
	if err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, m)
}

func (n *Node) handleDecommission(w http.ResponseWriter, r *http.Request) {
	n.stampEpoch(w)
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	if !n.authSecret(w, r) {
		return
	}
	n.noteEpoch(r.Header, "")
	var req DecommissionRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if req.Node == "" {
		req.Node = n.cfg.Self
	}
	prim := n.electedPrimary()
	if prim == "" {
		writeError(w, http.StatusServiceUnavailable, "no primary elected")
		return
	}
	if prim != n.cfg.Self {
		n.proxyToPrimary(w, r, prim, "/cluster/decommission", req)
		return
	}
	m, err := n.proposeDrain(req.Node)
	if err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// proxyToPrimary forwards a membership request to the elected primary
// (operators may poke any node). One hop only.
func (n *Node) proxyToPrimary(w http.ResponseWriter, r *http.Request, prim, path string, body any) {
	if r.Header.Get(hopHeader) != "" {
		writeError(w, http.StatusServiceUnavailable, "no stable primary; retry")
		return
	}
	mem, ok := n.member(prim)
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "primary "+prim+" not in local map")
		return
	}
	b, _ := json.Marshal(body)
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, mem.URL+path, bytes.NewReader(b))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	n.peerHeaders(req)
	req.Header.Set(hopHeader, "1")
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.hc.Do(req)
	if err != nil {
		writeError(w, http.StatusBadGateway, "proxy to primary "+prim+" failed: "+err.Error())
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, io.LimitReader(resp.Body, 1<<20))
}

// handleSensorList is GET /cluster/sensors: the sensor ids resident on
// this node (owned or replicated) — the rebalancer's discovery input.
func (n *Node) handleSensorList(w http.ResponseWriter, r *http.Request) {
	n.stampEpoch(w)
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	if !n.authSecret(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": n.cfg.Self, "sensors": n.sys.Sensors()})
}

// --- join & decommission client paths ---

// joinLoop runs on a node booted with Config.JoinURL: it asks the
// existing cluster to admit it until a map containing self (and the
// rest of the cluster) is installed.
func (n *Node) joinLoop() {
	defer n.wg.Done()
	body, _ := json.Marshal(JoinRequest{ID: n.cfg.Self, URL: n.selfURL})
	base := strings.TrimSuffix(n.cfg.JoinURL, "/")
	for {
		if n.tryJoin(base, body) {
			return
		}
		select {
		case <-n.done:
			return
		case <-time.After(300 * time.Millisecond):
		}
	}
}

func (n *Node) tryJoin(base string, body []byte) bool {
	// A pushed map may have admitted us already.
	if v := n.curView(); v != nil && v.inMap && len(v.members) > 1 {
		return true
	}
	req, err := http.NewRequest(http.MethodPost, base+"/cluster/join", bytes.NewReader(body))
	if err != nil {
		return false
	}
	n.peerHeaders(req)
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.hc.Do(req)
	if err != nil {
		if n.log != nil {
			n.log.Warn("cluster join attempt failed", "via", base, "err", err)
		}
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		if n.log != nil {
			n.log.Warn("cluster join refused", "via", base, "status", resp.StatusCode)
		}
		return false
	}
	var m ClusterMap
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&m); err != nil {
		return false
	}
	if err := n.installMap(&m); err != nil && !errors.Is(err, errStaleMap) {
		if n.log != nil {
			n.log.Warn("cluster join map rejected", "err", err)
		}
		return false
	}
	v := n.curView()
	joined := v != nil && v.inMap && len(v.members) > 1
	if joined && n.log != nil {
		n.log.Info("joined cluster", "epoch", n.epoch(), "members", len(v.members))
	}
	return joined
}

// Decommission asks the cluster to drain the named member (self when
// id is empty). The flip is routed to the elected primary; progress
// is observable via Drained() on the draining node.
func (n *Node) Decommission(id string) error {
	if id == "" {
		id = n.cfg.Self
	}
	prim := n.electedPrimary()
	if prim == "" {
		return errors.New("cluster: no primary elected")
	}
	if prim == n.cfg.Self {
		_, err := n.proposeDrain(id)
		return err
	}
	mem, ok := n.member(prim)
	if !ok {
		return fmt.Errorf("cluster: primary %q not in local map", prim)
	}
	b, _ := json.Marshal(DecommissionRequest{Node: id})
	req, err := http.NewRequest(http.MethodPost, mem.URL+"/cluster/decommission", bytes.NewReader(b))
	if err != nil {
		return err
	}
	n.peerHeaders(req)
	req.Header.Set(hopHeader, "1")
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: decommission answered HTTP %d: %s",
			resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	return nil
}

// Drained is closed once this node has left the cluster map: its drain
// finished and the primary published a map without it. The process can
// then exit cleanly.
func (n *Node) Drained() <-chan struct{} { return n.drained }
