package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smiler/internal/fault"
)

func obsRec(id string, v float64) Record {
	return Record{Type: RecObserve, Sensor: id, Value: v}
}

func collect(t *testing.T, dir string) ([]Record, ReplayStats) {
	t.Helper()
	var out []Record
	st, err := Replay(dir, func(seq uint64, r Record) error {
		if seq != uint64(len(out)) {
			t.Fatalf("seq %d, want %d", seq, len(out))
		}
		out = append(out, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Type: RecAddSensor, Sensor: "s1", History: []float64{1, 2, 3.5}},
		obsRec("s1", 4.25),
		obsRec("s1", -7),
		{Type: RecRemoveSensor, Sensor: "s1"},
	}
	for _, r := range want {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, st := collect(t, dir)
	if st.Torn || st.Records != uint64(len(want)) {
		t.Fatalf("stats = %+v", st)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		w := want[i]
		if r.Type != w.Type || r.Sensor != w.Sensor || r.Value != w.Value || len(r.History) != len(w.History) {
			t.Fatalf("record %d = %+v, want %+v", i, r, w)
		}
		for j := range r.History {
			if r.History[j] != w.History[j] {
				t.Fatalf("record %d history[%d] = %v, want %v", i, j, r.History[j], w.History[j])
			}
		}
	}
}

func TestReplayStopsAtTornTail(t *testing.T) {
	for cut := 1; cut <= 12; cut++ {
		dir := t.TempDir()
		l, err := Open(dir, Options{Policy: SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := l.Append(obsRec("s", float64(i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// Tear the tail: chop `cut` bytes off the single segment.
		segs, err := listSegments(dir)
		if err != nil || len(segs) != 1 {
			t.Fatalf("segments %v, err %v", segs, err)
		}
		path := filepath.Join(dir, segName(segs[0]))
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, fi.Size()-int64(cut)); err != nil {
			t.Fatal(err)
		}
		got, st := collect(t, dir)
		// Each observe frame is 4 + (1+1+1+8) + 4 = 19 bytes; cutting up
		// to 19 bytes kills exactly the last record.
		if len(got) != 4 {
			t.Fatalf("cut %d: replayed %d records, want 4", cut, len(got))
		}
		if !st.Torn {
			t.Fatalf("cut %d: tear not reported", cut)
		}
	}
}

func TestReplayStopsAtCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(obsRec("s", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segName(segs[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside the third record (frame = 19 bytes).
	data[2*19+6] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, st := collect(t, dir)
	if len(got) != 2 {
		t.Fatalf("replayed %d records past corruption, want 2", len(got))
	}
	if !st.Torn || st.TornSegment != path {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOpenRepairsTornTailAndContinues(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(obsRec("s", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segName(segs[0]))
	fi, _ := os.Stat(path)
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}
	// Reopen: the torn third record is chopped, appends continue at
	// sequence 2.
	l, err = Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.NextSeq(); got != 2 {
		t.Fatalf("NextSeq after repair = %d, want 2", got)
	}
	if seq, err := l.Append(obsRec("s", 99)); err != nil || seq != 2 {
		t.Fatalf("append after repair: seq %d, err %v", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, st := collect(t, dir)
	if st.Torn {
		t.Fatalf("repaired log still torn: %+v", st)
	}
	if len(got) != 3 || got[2].Value != 99 {
		t.Fatalf("records after repair = %+v", got)
	}
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := l.Append(obsRec("sensor", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", len(segs))
	}
	got, _ := collect(t, dir)
	if len(got) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(got), n)
	}
	// A checkpoint covering the first half lets the covered sealed
	// segments go.
	if err := l.TruncateThrough(uint64(n / 2)); err != nil {
		t.Fatal(err)
	}
	after, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(segs) {
		t.Fatalf("truncate removed nothing: %d -> %d segments", len(segs), len(after))
	}
	// Replay still works from the first surviving segment onward.
	var vals []float64
	if _, err := Replay(dir, func(seq uint64, r Record) error {
		if seq < uint64(after[0]) {
			t.Fatalf("replayed seq %d below first segment %d", seq, after[0])
		}
		vals = append(vals, r.Value)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(vals) == 0 || vals[len(vals)-1] != n-1 {
		t.Fatalf("surviving records end with %v", vals)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(obsRec("s", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	got, _ := collect(t, dir)
	if len(got) != 0 {
		t.Fatalf("replay after reset returned %d records", len(got))
	}
	// Sequence numbers stay monotonic across the reset.
	if seq, err := l.Append(obsRec("s", 1)); err != nil || seq != 5 {
		t.Fatalf("append after reset: seq %d, err %v", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		dir := t.TempDir()
		l, err := Open(dir, Options{Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if _, err := l.Append(obsRec("s", float64(i))); err != nil {
				t.Fatal(err)
			}
		}
		st := l.Stats()
		if pol == SyncAlways && st.Syncs != 10 {
			t.Fatalf("SyncAlways synced %d times, want 10", st.Syncs)
		}
		if pol == SyncOff && st.Syncs != 0 {
			t.Fatalf("SyncOff synced %d times, want 0", st.Syncs)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		got, _ := collect(t, dir)
		if len(got) != 10 {
			t.Fatalf("%v: replayed %d records", pol, len(got))
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways, "per-write": SyncAlways,
		"interval": SyncInterval, "off": SyncOff, "none": SyncOff,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestManagerShardingAndReplay(t *testing.T) {
	dir := t.TempDir()
	shardFor := func(id string, n int) int { return len(id) % n }
	m, err := OpenManager(dir, 3, Options{Policy: SyncOff}, shardFor)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AppendAddSensor("ab", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := m.AppendObserve(shardFor("ab", 3), "ab", float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.AppendRemoveSensor("ab"); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	var types []RecordType
	st, err := ReplayDir(dir, func(shard int, seq uint64, r Record) error {
		if shard != 2 { // len("ab") % 3
			t.Fatalf("record on shard %d, want 2", shard)
		}
		types = append(types, r.Type)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 6 || st.Torn {
		t.Fatalf("stats = %+v", st)
	}
	if types[0] != RecAddSensor || types[len(types)-1] != RecRemoveSensor {
		t.Fatalf("order = %v", types)
	}
}

func TestManagerResetAndRemoveDir(t *testing.T) {
	dir := t.TempDir()
	shardFor := func(id string, n int) int { return 0 }
	m, err := OpenManager(dir, 2, Options{Policy: SyncOff}, shardFor)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AppendObserve(1, "x", 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	st, err := ReplayDir(dir, func(int, uint64, Record) error { return nil })
	if err != nil || st.Records != 0 {
		t.Fatalf("records after reset = %d, err %v", st.Records, err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := RemoveDir(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "shard-") {
			t.Fatalf("shard dir %s survived RemoveDir", e.Name())
		}
	}
}

// TestManagerPinsShardCount: the first open of a WAL directory pins
// its shard count; reopening with a different configured count (e.g. a
// GOMAXPROCS default changing across hosts) must keep the pinned count
// while records remain, so a sensor's appends stay in the shard whose
// log holds its earlier records and per-sensor replay order survives.
func TestManagerPinsShardCount(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenManager(dir, 3, Options{Policy: SyncOff}, ShardByLen)
	if err != nil {
		t.Fatal(err)
	}
	const id = "abcd" // len 4: shard 1 of 3, but shard 0 of 4
	if err := m.AppendAddSensor(id, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendObserve(ShardByLen(id, m.Shards()), id, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen asking for 4 shards: the pinned count must win.
	m, err = OpenManager(dir, 4, Options{Policy: SyncOff}, ShardByLen)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 3 {
		t.Fatalf("reopened with %d shards, want pinned 3", m.Shards())
	}
	if err := m.AppendObserve(ShardByLen(id, m.Shards()), id, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if _, err := ReplayDir(dir, func(shard int, seq uint64, r Record) error {
		if want := ShardByLen(id, 3); shard != want {
			t.Fatalf("record %v on shard %d, want %d", r.Type, shard, want)
		}
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Type != RecAddSensor || got[1].Value != 1 || got[2].Value != 2 {
		t.Fatalf("replay = %+v, want add,1,2 in order", got)
	}

	// RemoveDir clears the pin with the logs; a fresh open may remap.
	if err := RemoveDir(dir); err != nil {
		t.Fatal(err)
	}
	m, err = OpenManager(dir, 4, Options{Policy: SyncOff}, ShardByLen)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Shards() != 4 {
		t.Fatalf("fresh open has %d shards, want 4", m.Shards())
	}
}

// ShardByLen is a trivial shard function for manager tests.
func ShardByLen(id string, n int) int { return len(id) % n }

func TestInjectedAppendAndSyncFaults(t *testing.T) {
	in := fault.NewInjector(1)
	in.Set(fault.PointWALAppend, fault.Rule{Kind: fault.KindError, After: 3, Once: true})
	fault.Arm(in)
	t.Cleanup(fault.Disarm)
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var errs int
	for i := 0; i < 5; i++ {
		if _, err := l.Append(obsRec("s", float64(i))); err != nil {
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("unexpected error %v", err)
			}
			errs++
		}
	}
	if errs != 1 {
		t.Fatalf("injected %d append errors, want 1", errs)
	}
	in.Set(fault.PointWALSync, fault.Rule{Kind: fault.KindError, After: 1, Once: true})
	if err := l.Sync(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Sync = %v, want injected error", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync after fault = %v", err)
	}
}

func TestInjectedReadCorruptionStopsReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(obsRec("s", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(1)
	in.Set(fault.PointWALRead, fault.Rule{Kind: fault.KindCorrupt, After: 4, Once: true})
	fault.Arm(in)
	t.Cleanup(fault.Disarm)
	got, st := collect(t, dir)
	if len(got) != 3 || !st.Torn {
		t.Fatalf("replayed %d records (torn=%v), want 3 before the corrupt 4th", len(got), st.Torn)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "v1" {
		t.Fatalf("content = %q", b)
	}
	// A failing writer leaves the old content and no temp litter.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		return fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("writer error swallowed")
	}
	if b, _ := os.ReadFile(path); string(b) != "v1" {
		t.Fatalf("failed write clobbered target: %q", b)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("temp litter: %v", entries)
	}
}
