package cluster_test

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"smiler"
	"smiler/internal/cluster"
	"smiler/internal/ingest"
	"smiler/internal/server"
)

// testNode is one in-process cluster member: a real system, a real
// server, a real listener.
type testNode struct {
	id   string
	sys  *smiler.System
	srv  *server.Server
	ts   *httptest.Server
	node *cluster.Node

	// addr and cfg are kept so kill/restart can bring the node back on
	// the same address with the same configuration.
	addr string
	cfg  cluster.Config
}

func testConfig() smiler.Config {
	cfg := smiler.DefaultConfig()
	cfg.Omega = 8
	cfg.ELV = []int{16, 24, 40}
	cfg.EKV = []int{4, 8}
	cfg.Predictor = smiler.PredictorAR
	return cfg
}

func seasonal(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 50 + 10*math.Sin(2*math.Pi*float64(i)/48) + rng.NormFloat64()*0.5
	}
	return out
}

// newTestCluster brings up size nodes with fast probes. mutate, when
// non-nil, adjusts each node's cluster config before it starts.
func newTestCluster(t *testing.T, size int, mutate func(*cluster.Config)) []*testNode {
	t.Helper()
	return newTestClusterSys(t, size, testConfig(), mutate)
}

// newTestClusterSys is newTestCluster with an explicit system config
// (e.g. hot-sensor tiering enabled).
func newTestClusterSys(t *testing.T, size int, sysCfg smiler.Config, mutate func(*cluster.Config)) []*testNode {
	t.Helper()
	nodes := make([]*testNode, size)
	members := make([]cluster.Member, size)
	for i := range nodes {
		id := fmt.Sprintf("n%d", i+1)
		sys, err := smiler.New(sysCfg)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.NewWithOptions(sys, server.Options{
			NodeID:   id,
			Pipeline: ingest.Config{Shards: 2, QueueSize: 256},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		nodes[i] = &testNode{id: id, sys: sys, srv: srv, ts: ts}
		members[i] = cluster.Member{ID: id, URL: ts.URL}
	}
	for _, tn := range nodes {
		cfg := cluster.Config{
			Self:              tn.id,
			Members:           members,
			Replicas:          1,
			ProbeInterval:     15 * time.Millisecond,
			ProbeFailures:     2,
			HeartbeatInterval: 10 * time.Millisecond,
			HTTPClient:        &http.Client{Timeout: 2 * time.Second},
		}
		if mutate != nil {
			mutate(&cfg)
		}
		node, err := cluster.New(tn.sys, tn.srv, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tn.node = node
		tn.cfg = cfg
		tn.addr = tn.ts.Listener.Addr().String()
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.node.Close()
			tn.ts.Close()
			tn.srv.Close()
			tn.sys.Close()
		}
	})
	return nodes
}

// byID finds a node by member id.
func byID(t *testing.T, nodes []*testNode, id string) *testNode {
	t.Helper()
	for _, tn := range nodes {
		if tn.id == id {
			return tn
		}
	}
	t.Fatalf("no node %q", id)
	return nil
}

// ownerOf asks the cluster who owns a sensor (via the first node).
func ownerOf(t *testing.T, nodes []*testNode, sensor string) *testNode {
	t.Helper()
	var route cluster.SensorRoute
	getJSON(t, nodes[0].ts.URL+"/cluster/ring?sensor="+sensor, &route)
	return byID(t, nodes, route.Owner)
}

// nonOwnerOf returns some live node that does not own the sensor.
func nonOwnerOf(t *testing.T, nodes []*testNode, sensor string) *testNode {
	t.Helper()
	owner := ownerOf(t, nodes, sensor)
	for _, tn := range nodes {
		if tn != owner {
			return tn
		}
	}
	t.Fatal("no non-owner node")
	return nil
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := jsonDecode(resp.Body, out); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// drainAll flushes every node's ingestion pipeline.
func drainAll(t *testing.T, nodes []*testNode) {
	t.Helper()
	for _, tn := range nodes {
		if err := tn.srv.Pipeline().Drain(); err != nil {
			t.Fatal(err)
		}
	}
}

// kill simulates a node crash: the cluster layer stops and the
// listener drops, but the system and server (the "disk image") stay so
// restart can bring the node back.
func (tn *testNode) kill() {
	tn.node.Close()
	tn.ts.CloseClientConnections()
	tn.ts.Close()
}

// restart brings a killed node back on its original address with its
// original configuration — the seed map it derives at boot is stale,
// and it must learn the current epoch from its peers.
func (tn *testNode) restart(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", tn.addr)
	if err != nil {
		t.Fatalf("relisten %s: %v", tn.addr, err)
	}
	ts := &httptest.Server{Listener: ln, Config: &http.Server{Handler: tn.srv}}
	ts.Start()
	tn.ts = ts
	node, err := cluster.New(tn.sys, tn.srv, tn.cfg)
	if err != nil {
		t.Fatalf("restart %s: %v", tn.id, err)
	}
	tn.node = node
}

// joinNode boots a brand-new member whose seed list names only itself
// and points it at seed's /cluster/join. The caller appends the result
// to its node slice; cleanup is registered here.
func joinNode(t *testing.T, id string, seed *testNode, mutate func(*cluster.Config)) *testNode {
	t.Helper()
	sys, err := smiler.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewWithOptions(sys, server.Options{
		NodeID:   id,
		Pipeline: ingest.Config{Shards: 2, QueueSize: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	cfg := cluster.Config{
		Self:              id,
		Members:           []cluster.Member{{ID: id, URL: ts.URL}},
		Replicas:          1,
		ProbeInterval:     15 * time.Millisecond,
		ProbeFailures:     2,
		HeartbeatInterval: 10 * time.Millisecond,
		HTTPClient:        &http.Client{Timeout: 2 * time.Second},
		JoinURL:           seed.ts.URL,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	node, err := cluster.New(sys, srv, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tn := &testNode{id: id, sys: sys, srv: srv, ts: ts, node: node,
		addr: ts.Listener.Addr().String(), cfg: cfg}
	t.Cleanup(func() {
		tn.node.Close()
		tn.ts.Close()
		tn.srv.Close()
		tn.sys.Close()
	})
	return tn
}

// tryGetJSON is getJSON without the fatality: polling helpers use it
// against nodes that may be down or mid-restart.
func tryGetJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return jsonDecode(resp.Body, out)
}

// waitConverged waits until every listed node reports the same cluster
// map, every member of that map is active, and no rebalance work is
// pending anywhere — the cluster is done reshaping itself.
func waitConverged(t *testing.T, d time.Duration, nodes []*testNode) {
	t.Helper()
	check := func() (bool, string) {
		var epoch uint64
		for i, tn := range nodes {
			var m cluster.ClusterMapResponse
			if err := tryGetJSON(tn.ts.URL+"/cluster/map", &m); err != nil {
				return false, fmt.Sprintf("%s: map unreachable: %v", tn.id, err)
			}
			if i == 0 {
				epoch = m.Epoch
			} else if m.Epoch != epoch {
				return false, fmt.Sprintf("%s at epoch %d, first node at %d", tn.id, m.Epoch, epoch)
			}
			if len(m.Members) != len(nodes) {
				return false, fmt.Sprintf("%s: %d members, want %d", tn.id, len(m.Members), len(nodes))
			}
			for _, mem := range m.Members {
				if mem.State != cluster.StateActive {
					return false, fmt.Sprintf("%s: member %s still %s", tn.id, mem.ID, mem.State)
				}
			}
			var rb cluster.RebalanceStatus
			if err := tryGetJSON(tn.ts.URL+"/cluster/rebalance", &rb); err != nil {
				return false, fmt.Sprintf("%s: rebalance status unreachable: %v", tn.id, err)
			}
			if rb.Active || rb.Pending != 0 {
				return false, fmt.Sprintf("%s: rebalance active=%v pending=%d lastErr=%q",
					tn.id, rb.Active, rb.Pending, rb.LastError)
			}
		}
		return true, ""
	}
	deadline := time.Now().Add(d)
	for {
		ok, why := check()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for cluster convergence: %s", why)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// assertOwnedOnce checks, for every sensor, that all listed nodes
// agree on a single live owner and that the owner actually holds the
// sensor's state. (Replicas also hold state; data presence alone is
// not an ownership count.)
func assertOwnedOnce(t *testing.T, nodes []*testNode, sensors []string) {
	t.Helper()
	for _, s := range sensors {
		owner := ""
		for _, tn := range nodes {
			var route cluster.SensorRoute
			if err := tryGetJSON(tn.ts.URL+"/cluster/ring?sensor="+s, &route); err != nil {
				t.Fatalf("route for %s via %s: %v", s, tn.id, err)
			}
			if route.Promoted {
				t.Fatalf("sensor %s served promoted via %s (owner %s down?)", s, tn.id, route.Owner)
			}
			if owner == "" {
				owner = route.Owner
			} else if route.Owner != owner {
				t.Fatalf("sensor %s: %s routes to %s, others to %s", s, tn.id, route.Owner, owner)
			}
		}
		ot := byID(t, nodes, owner)
		if !ot.sys.HasSensor(s) {
			t.Fatalf("sensor %s: owner %s does not hold its state", s, owner)
		}
	}
}
