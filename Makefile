# Developer entry points; CI runs the same targets (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build vet test race bench bench-ingest bench-obs bench-json metrics-smoke events-smoke torture cluster-smoke cluster-smoke-procs loader-smoke memory-smoke membership-smoke anytime-smoke

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Paper-shape benchmarks (Tables 3-4, Figs 7-13).
bench:
	$(GO) test -bench . -run '^$$' ./...

# Ingestion pipeline throughput: direct Observe vs sharded bulk ingest.
bench-ingest:
	$(GO) test ./internal/ingest -bench Throughput -run '^$$'

# Instrumentation overhead: metrics registry enabled vs DisableMetrics.
bench-obs:
	$(GO) test -bench 'ObservabilityOverhead|Scrape' -run '^$$' .
	$(GO) test ./internal/ingest -bench 'Throughput/direct' -run '^$$'

# Machine-readable prediction-path benchmark numbers: predict,
# predict-multi, observe and ingest ns/op + allocs into
# BENCH_predict.json (scripts/bench_json.sh; BENCHTIME=2s for stable
# local numbers, default 1x is the CI smoke).
bench-json:
	./scripts/bench_json.sh

# End-to-end scrape check: boot the real server, feed one sensor,
# predict, and assert the required metric families appear in /metrics
# and the trace endpoint serves spans (scripts/metrics_smoke.sh).
metrics-smoke: build
	./scripts/metrics_smoke.sh

# Flight-recorder lifecycle check: boot with WAL + checkpoint, assert
# /debug/events serves the ring, SIGTERM dumps it to stderr, a clean
# restart records checkpoint_restore, and a kill -9 crash makes the
# next boot record wal_replay (scripts/events_smoke.sh).
events-smoke: build
	./scripts/events_smoke.sh

# Fault-tolerance suite under the race detector: seeded crash-recovery
# kill points (WAL truncation/corruption at >120 boundaries plus torn
# tails), per-fsync-policy recovery properties, degraded-mode fallback
# behaviour, and the 1k-injected-panic survival test. All seeds are
# fixed — failures reproduce deterministically.
torture:
	$(GO) test -race -run 'Torture|RecoveredHistory|WALLifecycle|Degrade|Panic' ./cmd/smiler-server ./internal/server .
	$(GO) test -race ./internal/wal ./internal/fault ./internal/baselines

# Cluster suite under the race detector: 3-node in-process harness —
# forwarding, async replication + gap resync, owner-death failover to
# a degraded replica, bit-exact migration, idempotent retry dedupe
# through the proxy (docs/CLUSTER.md).
cluster-smoke:
	$(GO) test -race -count=1 -run 'TestCluster' ./internal/cluster

# Same story against three real smiler-server processes on loopback
# ports (scripts/cluster_smoke.sh).
cluster-smoke-procs: build
	./scripts/cluster_smoke.sh

# smilerloader end to end: drive a real loopback 3-node cluster with
# ~20s of SLO-gated Poisson load and assert zero violations plus a
# well-formed report (scripts/loader_smoke.sh, docs/LOADER.md).
loader-smoke: build
	./scripts/loader_smoke.sh

# Anytime engine end to end: a deadline sweep over a -anytime
# -learned-lb server — moderate deadline answers exactly with zero
# AR(1) fallbacks, aggressive deadline answers progressively with zero
# errors, per-quality counters live on /metrics
# (scripts/anytime_smoke.sh, docs/INDEX.md).
anytime-smoke: build
	./scripts/anytime_smoke.sh

# Dynamic membership end to end: a real 3-process cluster under
# sustained smilerloader traffic admits a fourth node (-cluster-join),
# then decommissions n3 (POST /cluster/decommission → drain → clean
# exit 0) — with zero request errors and zero SLO violations
# (scripts/membership_smoke.sh, docs/CLUSTER.md).
membership-smoke: build
	./scripts/membership_smoke.sh

# Hot/cold tiering end to end: a server capped at -max-hot-sensors 30
# serves a 120-sensor population under load (spill/fault churn), is
# killed -9, and its WAL replays into an untiered reference whose
# forecasts must be byte-identical (scripts/memory_smoke.sh).
memory-smoke: build
	./scripts/memory_smoke.sh
