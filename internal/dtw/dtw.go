// Package dtw implements Dynamic Time Warping under the Sakoe-Chiba
// band constraint together with the lower-bound machinery SMiLer's
// index is built on: time series envelopes (paper Definition B.1),
// LB_Keogh, the query/data envelope bounds LBEQ and LBEC, and the
// enhanced lower bound LBen = max(LBEQ, LBEC) (Theorem 4.1).
//
// Conventions: all distances accumulate the squared pointwise
// difference dist(a,b) = (a-b)², matching the paper's use of LB_Keogh
// [41]; DTW(Q,C) therefore returns a squared-cost sum (monotone in the
// usual rooted cost, so kNN order is unchanged). Both inputs to DTW
// must have the same length d (the paper assumes equal-length
// comparisons, citing [57]).
package dtw

import (
	"errors"
	"fmt"
	"math"

	"smiler/internal/memsys"
)

// ErrLength is returned when operand lengths are incompatible.
var ErrLength = errors.New("dtw: length mismatch")

func dist(a, b float64) float64 {
	d := a - b
	return d * d
}

// Distance computes the DTW distance between equal-length series q and
// c under a Sakoe-Chiba band of half-width rho, using a full (d+1)²
// dynamic-programming matrix. It is the readable reference
// implementation; DistanceCompressed is the memory-compressed variant
// the simulated GPU kernels run.
func Distance(q, c []float64, rho int) (float64, error) {
	d := len(q)
	if d == 0 || d != len(c) {
		return 0, fmt.Errorf("%w: |q|=%d |c|=%d", ErrLength, len(q), len(c))
	}
	if rho < 0 {
		return 0, fmt.Errorf("dtw: negative warping width %d", rho)
	}
	inf := math.Inf(1)
	n := d + 1
	// The full DP matrix is the one large transient of the reference
	// path; it lives exactly one call, so pool it.
	g := memsys.GetFloats(n * n)
	defer memsys.PutFloats(g)
	for i := range g {
		g[i] = inf
	}
	g[0] = 0
	for i := 1; i <= d; i++ {
		jlo, jhi := i-rho, i+rho
		if jlo < 1 {
			jlo = 1
		}
		if jhi > d {
			jhi = d
		}
		for j := jlo; j <= jhi; j++ {
			best := g[(i-1)*n+j]
			if v := g[i*n+j-1]; v < best {
				best = v
			}
			if v := g[(i-1)*n+j-1]; v < best {
				best = v
			}
			g[i*n+j] = dist(q[i-1], c[j-1]) + best
		}
	}
	return g[d*n+d], nil
}

// DistanceCompressed computes the same banded DTW distance with the
// paper's compressed warping matrix (Algorithm 2): a rolling buffer of
// 2 columns × (2ρ+2) band cells indexed by modulus, sized to fit a
// GPU block's shared memory. scratch may be nil or a buffer from
// NewCompressedScratch to avoid per-call allocation.
func DistanceCompressed(q, c []float64, rho int, scratch []float64) (float64, error) {
	d := len(q)
	if d == 0 || d != len(c) {
		return 0, fmt.Errorf("%w: |q|=%d |c|=%d", ErrLength, len(q), len(c))
	}
	if rho < 0 {
		return 0, fmt.Errorf("dtw: negative warping width %d", rho)
	}
	m := 2*rho + 2 // band rows kept live per column
	if len(scratch) < 2*m {
		scratch = make([]float64, 2*m)
	}
	g := scratch[:2*m]
	inf := math.Inf(1)
	// Column j=0 boundary: γ(0,0)=0, γ(i,0)=∞ for i>0.
	for i := 0; i < m; i++ {
		g[i*2] = inf
	}
	g[0] = 0
	// cell(i, j) maps matrix row i (0..d), column parity j to scratch.
	cell := func(i, j int) *float64 {
		ii := i % m
		if ii < 0 {
			ii += m
		}
		return &g[ii*2+(j&1)]
	}
	for j := 1; j <= d; j++ {
		// Invalidate the two cells that leave the band as the column
		// advances (Algorithm 2 lines 7–8).
		*cell(j-rho-1, j) = inf
		*cell(j+rho, j-1) = inf
		if j-rho-1 < 0 {
			// Row 0 is still inside the retained band window but
			// γ(0,j) = ∞ for every j ≥ 1; without this the slot would
			// hold the stale γ(0,0) = 0 (or γ(0,j-2)) start cell.
			*cell(0, j) = inf
		}
		ilo, ihi := j-rho, j+rho
		if ilo < 1 {
			ilo = 1
		}
		if ihi > d {
			ihi = d
		}
		for i := ilo; i <= ihi; i++ {
			best := *cell(i-1, j)
			if v := *cell(i, j-1); v < best {
				best = v
			}
			if v := *cell(i-1, j-1); v < best {
				best = v
			}
			*cell(i, j) = dist(q[i-1], c[j-1]) + best
		}
	}
	return *cell(d, d), nil
}

// DistanceCompressedAbandon is DistanceCompressed with an early-
// abandoning cutoff: every warping path visits every column of the
// warping matrix and path costs only grow along a path, so once the
// minimum over a column's band cells exceeds cutoff no path can finish
// at or below it. The function then abandons, reporting (+Inf, cols,
// nil) with cols the number of columns actually processed — callers
// charge cost models for work done, not work skipped. Abandonment
// fires only on a strictly greater column minimum, so candidates whose
// true distance equals the cutoff are fully computed. With cutoff =
// +Inf the result is identical to DistanceCompressed.
func DistanceCompressedAbandon(q, c []float64, rho int, cutoff float64, scratch []float64) (float64, int, error) {
	d := len(q)
	if d == 0 || d != len(c) {
		return 0, 0, fmt.Errorf("%w: |q|=%d |c|=%d", ErrLength, len(q), len(c))
	}
	if rho < 0 {
		return 0, 0, fmt.Errorf("dtw: negative warping width %d", rho)
	}
	m := 2*rho + 2
	if len(scratch) < 2*m {
		scratch = make([]float64, 2*m)
	}
	g := scratch[:2*m]
	inf := math.Inf(1)
	for i := 0; i < m; i++ {
		g[i*2] = inf
	}
	g[0] = 0
	cell := func(i, j int) *float64 {
		ii := i % m
		if ii < 0 {
			ii += m
		}
		return &g[ii*2+(j&1)]
	}
	for j := 1; j <= d; j++ {
		*cell(j-rho-1, j) = inf
		*cell(j+rho, j-1) = inf
		if j-rho-1 < 0 {
			*cell(0, j) = inf
		}
		ilo, ihi := j-rho, j+rho
		if ilo < 1 {
			ilo = 1
		}
		if ihi > d {
			ihi = d
		}
		colMin := inf
		for i := ilo; i <= ihi; i++ {
			best := *cell(i-1, j)
			if v := *cell(i, j-1); v < best {
				best = v
			}
			if v := *cell(i-1, j-1); v < best {
				best = v
			}
			v := dist(q[i-1], c[j-1]) + best
			*cell(i, j) = v
			if v < colMin {
				colMin = v
			}
		}
		if colMin > cutoff {
			return inf, j, nil
		}
	}
	return *cell(d, d), d, nil
}

// CompressedScratchLen returns the scratch length DistanceCompressed
// needs for warping width rho.
func CompressedScratchLen(rho int) int { return 2 * (2*rho + 2) }

// NewCompressedScratch allocates a reusable scratch buffer for
// DistanceCompressed.
func NewCompressedScratch(rho int) []float64 {
	return make([]float64, CompressedScratchLen(rho))
}

// GetCompressedScratch is NewCompressedScratch backed by the memsys
// pool; return it with PutCompressedScratch when the verification
// batch is done.
func GetCompressedScratch(rho int) []float64 {
	return memsys.GetFloats(CompressedScratchLen(rho))
}

// PutCompressedScratch recycles a scratch from GetCompressedScratch.
func PutCompressedScratch(s []float64) { memsys.PutFloats(s) }

// DistanceEarlyAbandon computes banded DTW but abandons and reports
// (∞, false) as soon as every cell in the current anti-diagonal band
// column exceeds threshold — the classic UCR-suite pruning used by the
// FastCPUScan baseline.
func DistanceEarlyAbandon(q, c []float64, rho int, threshold float64) (float64, bool, error) {
	d := len(q)
	if d == 0 || d != len(c) {
		return 0, false, fmt.Errorf("%w: |q|=%d |c|=%d", ErrLength, len(q), len(c))
	}
	inf := math.Inf(1)
	prev := make([]float64, d+1)
	cur := make([]float64, d+1)
	for i := range prev {
		prev[i] = inf
	}
	prev[0] = 0
	for i := 1; i <= d; i++ {
		for j := range cur {
			cur[j] = inf
		}
		jlo, jhi := i-rho, i+rho
		if jlo < 1 {
			jlo = 1
		}
		if jhi > d {
			jhi = d
		}
		rowMin := inf
		for j := jlo; j <= jhi; j++ {
			best := prev[j]
			if v := cur[j-1]; v < best {
				best = v
			}
			if v := prev[j-1]; v < best {
				best = v
			}
			cur[j] = dist(q[i-1], c[j-1]) + best
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin > threshold {
			return inf, false, nil
		}
		prev, cur = cur, prev
	}
	return prev[d], true, nil
}

// Envelope holds the running upper and lower envelopes of a series
// under warping width rho (Definition B.1): U_i = max c_{i±ρ},
// L_i = min c_{i±ρ}, with indices clamped at the boundaries.
type Envelope struct {
	Upper, Lower []float64
}

// NewEnvelope computes the envelope of values with warping width rho
// by direct scan. O(n·ρ); fine for the short windows SMiLer indexes.
func NewEnvelope(values []float64, rho int) Envelope {
	n := len(values)
	u := make([]float64, n)
	l := make([]float64, n)
	for i := 0; i < n; i++ {
		lo, hi := i-rho, i+rho
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		mx, mn := values[lo], values[lo]
		for j := lo + 1; j <= hi; j++ {
			if values[j] > mx {
				mx = values[j]
			}
			if values[j] < mn {
				mn = values[j]
			}
		}
		u[i] = mx
		l[i] = mn
	}
	return Envelope{Upper: u, Lower: l}
}

// Len returns the envelope length.
func (e Envelope) Len() int { return len(e.Upper) }

// LBKeogh returns LB_keogh(E, x): the squared deviation of each x_i
// outside the envelope band [L_i, U_i] (Eqn. 26). The envelope and x
// must have equal length.
func LBKeogh(e Envelope, x []float64) (float64, error) {
	if e.Len() != len(x) {
		return 0, fmt.Errorf("%w: envelope %d vs series %d", ErrLength, e.Len(), len(x))
	}
	var s float64
	for i, v := range x {
		if v > e.Upper[i] {
			s += dist(v, e.Upper[i])
		} else if v < e.Lower[i] {
			s += dist(v, e.Lower[i])
		}
	}
	return s, nil
}

// LBKim returns the O(1) first/last-point lower bound of banded DTW
// [Kim et al., as used by the UCR suite]: every warping path aligns
// q₀ with c₀ and q_{n−1} with c_{n−1}, so those two squared
// differences always contribute. It is the cheapest stage of the
// FastCPUScan pruning cascade.
func LBKim(q, c []float64) (float64, error) {
	n := len(q)
	if n == 0 || n != len(c) {
		return 0, fmt.Errorf("%w: |q|=%d |c|=%d", ErrLength, len(q), len(c))
	}
	if n == 1 {
		return dist(q[0], c[0]), nil
	}
	return dist(q[0], c[0]) + dist(q[n-1], c[n-1]), nil
}

// LBEQ computes LB_keogh(E(Q), C): the query-envelope bound.
func LBEQ(q, c []float64, rho int) (float64, error) {
	return LBKeogh(NewEnvelope(q, rho), c)
}

// LBEC computes LB_keogh(E(C), Q): the data-envelope bound.
func LBEC(q, c []float64, rho int) (float64, error) {
	return LBKeogh(NewEnvelope(c, rho), q)
}

// LBEn computes the paper's enhanced lower bound
// LBen(Q,C) = max(LBEQ(Q,C), LBEC(Q,C)) (Theorem 4.1).
func LBEn(q, c []float64, rho int) (float64, error) {
	a, err := LBEQ(q, c, rho)
	if err != nil {
		return 0, err
	}
	b, err := LBEC(q, c, rho)
	if err != nil {
		return 0, err
	}
	return math.Max(a, b), nil
}
