package memsys

import (
	"sync"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{1, 0}, {32, 0}, {33, 1}, {64, 1}, {65, 2},
		{1 << 20, nClasses - 1}, {1<<20 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestGetReturnsZeroedAfterReuse(t *testing.T) {
	s := GetFloats(100)
	if len(s) != 100 {
		t.Fatalf("len = %d, want 100", len(s))
	}
	if cap(s) != 128 {
		t.Fatalf("cap = %d, want 128", cap(s))
	}
	for i := range s {
		s[i] = 3.5
	}
	PutFloats(s)
	// A reused slab must come back zeroed — pooled code must observe
	// exactly fresh-make state.
	s2 := GetFloats(90)
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("reused slab not zeroed at %d: %v", i, v)
		}
	}
	PutFloats(s2)
}

func TestOversizeFallsThrough(t *testing.T) {
	n := 1<<20 + 1
	s := GetFloats(n)
	if len(s) != n {
		t.Fatalf("len = %d, want %d", len(s), n)
	}
	PutFloats(s) // must not panic, silently dropped
}

func TestPutRejectsForeignSlices(t *testing.T) {
	before := Totals(FloatStats())
	PutFloats(nil)
	PutFloats(make([]float64, 100)) // cap 100 is not a class size
	after := Totals(FloatStats())
	if after.Puts != before.Puts || after.Drops != before.Drops {
		t.Fatalf("foreign Put changed counters: %+v -> %+v", before, after)
	}
}

func TestDisabledDegradesToMake(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	s := GetFloats(64)
	if cap(s) != 64 {
		t.Fatalf("disabled Get should be a plain make: cap = %d", cap(s))
	}
	if Enabled() {
		t.Fatal("Enabled() = true after SetEnabled(false)")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	b := GetBytes(1000)
	if len(b) != 1000 || cap(b) != 1024 {
		t.Fatalf("len/cap = %d/%d, want 1000/1024", len(b), cap(b))
	}
	for i := range b {
		b[i] = 0xAB
	}
	PutBytes(b)
	b2 := GetBytes(1024)
	for i, v := range b2 {
		if v != 0 {
			t.Fatalf("reused byte slab not zeroed at %d", i)
		}
	}
	PutBytes(b2)
}

func TestStatsAccounting(t *testing.T) {
	// Use a class unlikely to be touched by other tests in this run.
	n := 1 << 19
	before := FloatStats()[nClasses-2]
	s := GetFloats(n)
	mid := FloatStats()[nClasses-2]
	if mid.InUse != before.InUse+1 {
		t.Fatalf("inuse not incremented: %d -> %d", before.InUse, mid.InUse)
	}
	PutFloats(s)
	s2 := GetFloats(n)
	after := FloatStats()[nClasses-2]
	if after.Hits < before.Hits+1 {
		t.Fatalf("expected a pool hit: hits %d -> %d", before.Hits, after.Hits)
	}
	PutFloats(s2)
}

func TestConcurrentChurn(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			sizes := []int{17, 64, 300, 4096, 70000}
			for i := 0; i < 2000; i++ {
				n := sizes[(i+seed)%len(sizes)]
				s := GetFloats(n)
				for j := range s {
					if s[j] != 0 {
						t.Errorf("dirty slab (n=%d, j=%d)", n, j)
						return
					}
				}
				s[0] = float64(seed)
				PutFloats(s)
				b := GetBytes(n)
				b[n-1] = byte(seed)
				PutBytes(b)
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkGetPut4096(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := GetFloats(4096)
		PutFloats(s)
	}
}

func BenchmarkMake4096(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := make([]float64, 4096)
		_ = s
	}
}
