// bench_test.go holds one testing.B benchmark per table and figure of
// the paper's evaluation, plus ablation benches for the design choices
// called out in DESIGN.md §6. Each benchmark executes the harness
// runner behind the corresponding experiment at a reduced scale and
// reports the experiment's headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates a miniature of the full evaluation. The smiler-bench CLI
// runs the same harness at larger scales.
package smiler_test

import (
	"math/rand"
	"testing"

	"smiler/internal/baselines"
	"smiler/internal/bench"
	"smiler/internal/core"
	"smiler/internal/datasets"
	"smiler/internal/dtw"
	"smiler/internal/gp"
	"smiler/internal/gpusim"
	"smiler/internal/index"
)

// benchSpec is the miniature ROAD corpus shared by the benches.
func benchSpec() bench.DatasetSpec {
	return bench.DatasetSpec{
		Name: "ROAD",
		Gen:  datasets.Config{Kind: datasets.Road, Sensors: 2, Days: 6, Seed: 3},
		Warm: 760, TestSteps: 6,
	}
}

func benchCorpus(b *testing.B) *bench.Corpus {
	b.Helper()
	c, err := bench.Load(benchSpec())
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkTable3LowerBounds regenerates Table 3: filtering power and
// verification cost of LBEQ / LBEC / LBen.
func BenchmarkTable3LowerBounds(b *testing.B) {
	c := benchCorpus(b)
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable3(c, 3)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Bound == index.LBModeEn {
				b.ReportMetric(r.Unfiltered, "unfiltered/query")
			}
		}
	}
}

// BenchmarkFig7SuffixKNN regenerates Fig. 7: Suffix kNN Search time
// per method (one sub-benchmark per method, k=32).
func BenchmarkFig7SuffixKNN(b *testing.B) {
	c := benchCorpus(b)
	for _, m := range []bench.SearchMethod{
		bench.MethodSMiLerIdx, bench.MethodSMiLerDir,
		bench.MethodFastGPUScan, bench.MethodGPUScan, bench.MethodFastCPUScan,
	} {
		b.Run(string(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := bench.RunFig7(c, []int{32}, 3, []bench.SearchMethod{m})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[0].SimSec, "gpusim-s/step")
			}
		})
	}
}

// BenchmarkFig8LowerBoundIndex regenerates Fig. 8: LBen production
// with vs without the window-level index.
func BenchmarkFig8LowerBoundIndex(b *testing.B) {
	c := benchCorpus(b)
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFig8(c, 3)
		if err != nil {
			b.Fatal(err)
		}
		var idx, dir float64
		for _, r := range rows {
			if r.Method == bench.MethodSMiLerIdx {
				idx = r.SimSec
			} else {
				dir = r.SimSec
			}
		}
		if idx > 0 {
			b.ReportMetric(dir/idx, "speedup-x")
		}
	}
}

// BenchmarkFig9OfflineAccuracy regenerates Fig. 9: SMiLer vs the
// offline (eager) competitors. The GP ensemble dominates the runtime,
// so the corpus is tiny; the CLI runs the full matrix.
func BenchmarkFig9OfflineAccuracy(b *testing.B) {
	c := benchCorpus(b)
	methods := []string{bench.MSMiLerAR, bench.MPSGP, bench.MVLGP, bench.MNysSVR, bench.MSgdSVR, bench.MSgdRR}
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.RunAccuracy(c, methods, []int{1, 5})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == bench.MSMiLerAR && r.H == 1 {
				b.ReportMetric(r.MAE, "smiler-mae")
			}
		}
	}
}

// BenchmarkFig10OnlineAccuracy regenerates Fig. 10: SMiLer vs the
// online competitors.
func BenchmarkFig10OnlineAccuracy(b *testing.B) {
	c := benchCorpus(b)
	methods := []string{bench.MSMiLerAR, bench.MLazyKNN, bench.MSegHW, bench.MOnlineSVR, bench.MOnlineRR}
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.RunAccuracy(c, methods, []int{1, 5})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == bench.MLazyKNN && r.H == 1 {
				b.ReportMetric(r.MNLPD, "lazyknn-mnlpd")
			}
		}
	}
}

// BenchmarkFig11AutoTuning regenerates Fig. 11: the full adaptive
// ensemble vs the NE (no ensemble) and NS (no self-adaptation)
// ablations, AR flavour for speed.
func BenchmarkFig11AutoTuning(b *testing.B) {
	c := benchCorpus(b)
	methods := []string{bench.MSMiLerAR, bench.MSMiLerNEAR, bench.MSMiLerNSAR}
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.RunAccuracy(c, methods, []int{1})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == bench.MSMiLerAR {
				b.ReportMetric(r.MAE, "full-ensemble-mae")
			}
		}
	}
}

// BenchmarkTable4RunningTime regenerates Table 4: per-method training
// and prediction times.
func BenchmarkTable4RunningTime(b *testing.B) {
	c := benchCorpus(b)
	methods := []string{bench.MSMiLerAR, bench.MLazyKNN, bench.MPSGP, bench.MSgdSVR, bench.MOnlineRR}
	for i := 0; i < b.N; i++ {
		_, timings, err := bench.RunAccuracy(c, methods, []int{1})
		if err != nil {
			b.Fatal(err)
		}
		for _, tr := range timings {
			if tr.Method == bench.MSMiLerAR {
				b.ReportMetric(tr.PredictMs, "smiler-predict-ms")
			}
		}
	}
}

// BenchmarkFig12Scalability regenerates Fig. 12: the per-step
// search/prediction split and the sensors-per-GPU capacity.
func BenchmarkFig12Scalability(b *testing.B) {
	c := benchCorpus(b)
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFig12Time(c, 2)
		if err != nil {
			b.Fatal(err)
		}
		_, maxSensors, err := bench.Fig12Capacity(c, gpusim.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(maxSensors), "max-sensors")
		_ = rows
	}
}

// BenchmarkFig13PSGPSweep regenerates Fig. 13: the PSGP active-point
// accuracy/time trade-off against the SMiLer-GP reference.
func BenchmarkFig13PSGPSweep(b *testing.B) {
	c := benchCorpus(b)
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFig13(c, []int{4, 16, 64})
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.TrainSecPer, "psgp-train-s")
		b.ReportMetric(last.SMiLerGPMae, "smiler-gp-mae")
	}
}

// --- Ablation benches (DESIGN.md §6) ---

// BenchmarkAblationContinuousReuse: incremental window-level update
// (Remark 1) vs rebuilding the index every step.
func BenchmarkAblationContinuousReuse(b *testing.B) {
	c := benchCorpus(b)
	for i := 0; i < b.N; i++ {
		reuse, rebuild, err := bench.AblationContinuousReuse(c, 5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rebuild/reuse, "speedup-x")
	}
}

// BenchmarkAblationCompressedDTW: the 2×(2ρ+2) compressed warping
// matrix of Algorithm 2 vs the full-matrix reference.
func BenchmarkAblationCompressedDTW(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	q := make([]float64, 96)
	cseg := make([]float64, 96)
	for i := range q {
		q[i] = rng.NormFloat64()
		cseg[i] = rng.NormFloat64()
	}
	b.Run("full-matrix", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dtw.Distance(q, cseg, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compressed", func(b *testing.B) {
		scratch := dtw.NewCompressedScratch(8)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dtw.DistanceCompressed(q, cseg, 8, scratch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationWarmStart: the paper's 5-step warm-started online
// GP training vs full cold optimization per query.
func BenchmarkAblationWarmStart(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	const k, d = 32, 64
	x := make([][]float64, k)
	y := make([]float64, k)
	for i := range x {
		xi := make([]float64, d)
		for j := range xi {
			xi[j] = rng.NormFloat64()
		}
		x[i] = xi
		y[i] = xi[d-1] + 0.1*rng.NormFloat64()
	}
	init := gp.HeuristicHyper(x, y)
	warm, err := gp.Optimize(x, y, init, 20)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold-20-iter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gp.Optimize(x, y, init, 20); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-5-iter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gp.Optimize(x, y, warm.Hyper, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSleepRecovery: ensemble update cost with and
// without the sleep scheduler (sleeping cells skip prediction
// entirely; this measures the bookkeeping side).
func BenchmarkAblationSleepRecovery(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		ens, err := core.NewEnsemble([]int{8, 16, 32}, []int{32, 64, 96},
			func() core.Predictor { return core.NewAR() },
			core.EnsembleConfig{DisableSleep: disable})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < b.N; i++ {
			var preds []core.CellPrediction
			for ci, c := range ens.Cells() {
				if c.Sleeping() {
					continue
				}
				mean := 0.0
				if ci%3 == 0 {
					mean = 5 // persistently poor third of the matrix
				}
				preds = append(preds, core.CellPrediction{
					Cell: c,
					Pred: core.Prediction{Mean: mean + rng.NormFloat64()*0.01, Variance: 0.1},
				})
			}
			ens.Update(preds, 0)
		}
		awake := 0
		for _, c := range ens.Cells() {
			if !c.Sleeping() {
				awake++
			}
		}
		b.ReportMetric(float64(awake), "awake-cells")
	}
	b.Run("sleep-on", func(b *testing.B) { run(b, false) })
	b.Run("sleep-off", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationDistanceMeasure: kNN prediction accuracy under DTW
// vs the alternative similarity measures (the paper's §4 motivation).
func BenchmarkAblationDistanceMeasure(b *testing.B) {
	c := benchCorpus(b)
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunDistanceMeasureAblation(c, 3, 8, 32, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Measure == "DTW" {
				b.ReportMetric(r.MAE, "dtw-mae")
			}
		}
	}
}

// BenchmarkAblationDownsample: the §6.4.1 space/accuracy trade-off —
// index a fraction of the history, fit more sensors per GPU.
func BenchmarkAblationDownsample(b *testing.B) {
	c := benchCorpus(b)
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunDownsampleTradeoff(c, []float64{1.0, 0.25}, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[1].MaxSensors)/float64(rows[0].MaxSensors), "capacity-x")
	}
}

// BenchmarkAblationThresholdReuse: the first Suffix kNN query (k-th
// smallest lower-bound threshold) vs continuous queries (threshold
// from the previous step's kNN set).
func BenchmarkAblationThresholdReuse(b *testing.B) {
	c := benchCorpus(b)
	p := index.DefaultParams()
	z := c.Series[0]
	dev := gpusim.MustNewDevice(gpusim.DefaultConfig())
	b.Run("first-query", func(b *testing.B) {
		var unfiltered float64
		for i := 0; i < b.N; i++ {
			ixFresh, err := index.New(dev, z[:c.Spec.Warm], p)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ixFresh.Search(32, 1); err != nil {
				b.Fatal(err)
			}
			unfiltered += float64(ixFresh.Stats().Unfiltered)
			ixFresh.Close()
		}
		b.ReportMetric(unfiltered/float64(b.N), "unfiltered")
	})
	b.Run("continuous", func(b *testing.B) {
		ix, err := index.New(dev, z[:c.Spec.Warm], p)
		if err != nil {
			b.Fatal(err)
		}
		defer ix.Close()
		if _, err := ix.Search(32, 1); err != nil { // prime prevNN
			b.Fatal(err)
		}
		var unfiltered float64
		for i := 0; i < b.N; i++ {
			if err := ix.Advance(z[c.Spec.Warm+(i%c.Spec.TestSteps)]); err != nil {
				b.Fatal(err)
			}
			if _, err := ix.Search(32, 1); err != nil {
				b.Fatal(err)
			}
			unfiltered += float64(ix.Stats().Unfiltered)
		}
		b.ReportMetric(unfiltered/float64(b.N), "unfiltered")
	})
}

// BenchmarkAblationTrainingObjective: the paper's LOO objective vs the
// textbook marginal likelihood for the query-dependent GP's online
// training (Sundararajan–Keerthi's comparison in the semi-lazy
// setting).
func BenchmarkAblationTrainingObjective(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	const k, d = 32, 64
	x := make([][]float64, k)
	y := make([]float64, k)
	for i := range x {
		xi := make([]float64, d)
		for j := range xi {
			xi[j] = rng.NormFloat64()
		}
		x[i] = xi
		y[i] = xi[d-1] + 0.1*rng.NormFloat64()
	}
	init := gp.HeuristicHyper(x, y)
	b.Run("LOO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gp.Optimize(x, y, init, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("marginal-likelihood", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gp.OptimizeML(x, y, init, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBootstrapUncertainty: the paper's §2.1 point — a
// lazy learner can buy uncertainty with bootstrap resampling, but at a
// time cost the semi-lazy GP's closed form avoids. Compares LazyKNN
// (no uncertainty machinery), LazyKNN+bootstrap, and the exact GP fit
// on the same neighbourhood size.
func BenchmarkAblationBootstrapUncertainty(b *testing.B) {
	c := benchCorpus(b)
	hist := c.Series[0][:c.Spec.Warm]
	b.Run("LazyKNN-plain", func(b *testing.B) {
		l := baselines.LazyKNN{K: 32, D: 64, Rho: 8}
		for i := 0; i < b.N; i++ {
			if _, err := l.Predict(hist, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("LazyKNN-bootstrap", func(b *testing.B) {
		l := baselines.LazyKNNBootstrap{K: 32, D: 64, Rho: 8, B: 100, Seed: 1}
		for i := 0; i < b.N; i++ {
			if _, err := l.Predict(hist, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("semi-lazy-GP", func(b *testing.B) {
		gpp := core.NewGP()
		x, y, err := baselines.SegmentDataset(hist, 64, 1, 32)
		if err != nil {
			b.Fatal(err)
		}
		probe := hist[len(hist)-64:]
		for i := 0; i < b.N; i++ {
			if _, err := gpp.Predict(probe, x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
}
