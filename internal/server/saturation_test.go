package server

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"smiler"
	"smiler/internal/ingest"
)

// TestControlPlaneResponsiveUnderSaturatedIngest is the regression
// guard for a failure mode load testing exposed the risk of: when the
// ingest pipeline is saturated under Block backpressure, observe
// handlers park in ServeHTTP waiting for queue space — and the
// control-plane routes (/metrics, /readyz, /pipeline/stats) must NOT
// be dragged down with them, or operators lose exactly the telemetry
// that explains the overload.
//
// Saturation is manufactured deterministically: one shard, a
// two-deep queue, and a Journal hook that blocks the shard worker
// until released, so queued observations cannot drain.
func TestControlPlaneResponsiveUnderSaturatedIngest(t *testing.T) {
	release := make(chan struct{})
	sys, err := smiler.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	srv, err := NewWithOptions(sys, Options{
		Pipeline: ingest.Config{
			Shards:       1,
			QueueSize:    2,
			MaxBatch:     1,
			Backpressure: ingest.Block,
			Journal: func(shard int, id string, v float64) error {
				<-release // stall the single shard worker
				return nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Release the worker no matter how the test exits, so Close and the
	// parked handlers can finish.
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	defer unblock()

	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	cl, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	// Registration bypasses the pipeline (history is applied
	// synchronously), so setup succeeds with the worker already stalled.
	rng := rand.New(rand.NewSource(11))
	if err := cl.AddSensor("sat", seasonal(rng, 400)); err != nil {
		t.Fatal(err)
	}

	// Saturate: the worker parks on the first observation's journal
	// call, the queue (cap 2) fills, and the rest of these block inside
	// their observe handlers under Block backpressure.
	const writers = 6
	done := make(chan error, writers)
	for i := 0; i < writers; i++ {
		v := float64(i)
		go func() {
			body := bytes.NewReader([]byte(fmt.Sprintf(`{"value": %g}`, v)))
			resp, err := http.Post(ts.URL+"/sensors/sat/observe", "application/json", body)
			if err == nil {
				resp.Body.Close()
			}
			done <- err
		}()
	}
	// Wait until the pipeline is provably wedged: enqueued ops neither
	// complete nor fail, and at least the queue capacity is occupied.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Pipeline().Stats()
		if st.Totals.Enqueued >= 3 && st.Totals.Processed == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline never saturated: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The control plane must answer promptly while data-plane handlers
	// are parked. 2s is generous — these are sub-millisecond routes; the
	// bound only has to distinguish "responsive" from "waiting for the
	// queue to drain", which it would do forever.
	quick := &http.Client{Timeout: 2 * time.Second}
	for _, path := range []string{"/metrics", "/readyz", "/pipeline/stats", "/healthz"} {
		start := time.Now()
		resp, err := quick.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s while saturated: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s while saturated = %d", path, resp.StatusCode)
		}
		if el := time.Since(start); el > 2*time.Second {
			t.Fatalf("GET %s took %v under saturation", path, el)
		}
	}

	// The observe handler answers 202 on enqueue, so the writers that
	// won queue slots (one consumed by the parked worker + QueueSize in
	// the queue) complete; every other writer must stay parked in its
	// handler — blocked, not dropped and not errored.
	completed := 0
	for drained := false; !drained; {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("observe failed while the pipeline was wedged: %v", err)
			}
			completed++
		case <-time.After(300 * time.Millisecond):
			drained = true
		}
	}
	if completed > 3 {
		t.Fatalf("%d observes completed while wedged; Block backpressure admitted past the queue", completed)
	}
	if st := srv.Pipeline().Stats(); st.Totals.Dropped != 0 || st.Totals.Errors != 0 || st.Totals.Enqueued > 3 {
		t.Fatalf("wedged pipeline leaked ops: %+v", st.Totals)
	}

	// Release the worker: every parked observe must now complete
	// successfully — blocked, not lost.
	unblock()
	for i := completed; i < writers; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("observe failed after release: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("observe still blocked after the pipeline was released")
		}
	}
	if err := srv.Pipeline().Drain(); err != nil {
		t.Fatal(err)
	}
	if st := srv.Pipeline().Stats(); st.Totals.Processed != writers {
		t.Fatalf("processed %d, want %d", st.Totals.Processed, writers)
	}
}
