// Package gpusim is a deterministic software simulator of a CUDA-class
// GPU, standing in for the NVIDIA GTX TITAN the paper runs on.
//
// SMiLer's GPU contribution is algorithmic — an index layout that maps
// one posting list to one thread block, a compressed warping matrix
// sized for shared memory, two-phase filter/verify to avoid warp
// divergence, and block-wise k-selection. The simulator exercises those
// code paths faithfully:
//
//   - Kernels are launched over a grid of blocks; blocks execute
//     concurrently on a goroutine worker pool (real parallelism), each
//     carrying a private cycle counter.
//   - A cost model charges cycles for compute ops, global-memory and
//     shared-memory traffic, and serialized divergent paths, so the
//     *relative* timing shape of the paper's experiments (index ≫ scan,
//     banded ≫ unbanded) is reproduced in simulated seconds.
//   - Device memory is a hard budget: Malloc fails when the index no
//     longer fits, which drives the "max sensors per GPU" experiment
//     (paper Fig. 12c).
//   - Per-block shared memory is a hard budget too, which is what
//     forces the 2×(2ρ+2) compressed warping matrix of Algorithm 2.
//
// Simulated time is computed as Σ(block cycles) / (SMs × clock): blocks
// are assumed to be spread evenly over the streaming multiprocessors,
// the same throughput model used by back-of-envelope CUDA sizing.
package gpusim

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"smiler/internal/fault"
)

// Common errors.
var (
	ErrOutOfMemory       = errors.New("gpusim: device out of memory")
	ErrSharedMemExceeded = errors.New("gpusim: shared memory per block exceeded")
	ErrFreed             = errors.New("gpusim: buffer already freed")
)

// Config describes the simulated device. The default approximates the
// GeForce GTX TITAN used in the paper (14 SMX, 6 GB, 48 KB shared
// memory per block, ~837 MHz).
type Config struct {
	SMs               int     // streaming multiprocessors
	CoresPerSM        int     // CUDA cores per SM (thread-parallel lanes)
	ClockHz           float64 // core clock
	GlobalMemBytes    int64   // device memory capacity
	SharedMemPerBlock int     // shared memory budget per block, bytes

	// Cost model, in cycles.
	ComputeCyclesPerOp   float64 // one fused arithmetic op
	GlobalCyclesPerWord  float64 // one coalesced 8-byte global access
	SharedCyclesPerWord  float64 // one 8-byte shared-memory access
	LaunchOverheadCycles float64 // fixed cost per kernel launch
}

// DefaultConfig returns a GTX-TITAN-like device configuration.
func DefaultConfig() Config {
	return Config{
		SMs:                  14,
		CoresPerSM:           192,
		ClockHz:              837e6,
		GlobalMemBytes:       6 << 30,
		SharedMemPerBlock:    48 << 10,
		ComputeCyclesPerOp:   1,
		GlobalCyclesPerWord:  4, // amortized coalesced bandwidth cost
		SharedCyclesPerWord:  1,
		LaunchOverheadCycles: 5000,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.SMs <= 0 || c.CoresPerSM <= 0 || c.ClockHz <= 0 ||
		c.GlobalMemBytes <= 0 || c.SharedMemPerBlock <= 0 {
		return fmt.Errorf("gpusim: non-positive field in config %+v", c)
	}
	return nil
}

// Device is a simulated GPU. All methods are safe for concurrent use.
type Device struct {
	cfg Config

	cycles   atomic.Int64 // accumulated block cycles, fixed-point ×256
	launches atomic.Int64
	blocks   atomic.Int64

	// Per-category cycle counters (fixed-point ×256) for profiling.
	computeCycles atomic.Int64
	globalCycles  atomic.Int64
	sharedCycles  atomic.Int64
	divergeCycles atomic.Int64
	launchCycles  atomic.Int64

	mu        sync.Mutex
	usedBytes int64
	nextBufID int64

	workers int
}

const cycleFix = 256 // fixed-point scale for fractional cycles

// NewDevice creates a simulated device.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	return &Device{cfg: cfg, workers: w}, nil
}

// MustNewDevice is NewDevice that panics on configuration errors; for
// use in tests and examples with known-good configs.
func MustNewDevice(cfg Config) *Device {
	d, err := NewDevice(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Buffer is a tracked device-memory allocation.
type Buffer struct {
	dev   *Device
	id    int64
	label string
	bytes int64
	freed bool
}

// Bytes returns the allocation size.
func (b *Buffer) Bytes() int64 { return b.bytes }

// Label returns the allocation label (for diagnostics).
func (b *Buffer) Label() string { return b.label }

// Malloc reserves bytes of device memory. It fails with ErrOutOfMemory
// when the budget would be exceeded — the signal the capacity planner
// uses to answer "how many sensors fit on one GPU".
func (d *Device) Malloc(label string, bytes int64) (*Buffer, error) {
	if bytes < 0 {
		return nil, fmt.Errorf("gpusim: negative allocation %d", bytes)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.usedBytes+bytes > d.cfg.GlobalMemBytes {
		return nil, fmt.Errorf("%w: want %d, used %d of %d (%s)",
			ErrOutOfMemory, bytes, d.usedBytes, d.cfg.GlobalMemBytes, label)
	}
	d.usedBytes += bytes
	d.nextBufID++
	return &Buffer{dev: d, id: d.nextBufID, label: label, bytes: bytes}, nil
}

// Free releases a buffer. Freeing twice returns ErrFreed.
func (d *Device) Free(b *Buffer) error {
	if b == nil || b.dev != d {
		return errors.New("gpusim: foreign buffer")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if b.freed {
		return ErrFreed
	}
	b.freed = true
	d.usedBytes -= b.bytes
	return nil
}

// UsedBytes returns the current device-memory usage.
func (d *Device) UsedBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.usedBytes
}

// TotalBytes returns the device-memory capacity.
func (d *Device) TotalBytes() int64 { return d.cfg.GlobalMemBytes }

// Block is the execution context handed to a kernel for one thread
// block. Kernels do their real work in plain Go and charge the cost
// model through the accounting methods. A Block is confined to the
// goroutine running the kernel; its methods must not be shared.
type Block struct {
	// ID is the block index within the launch grid, 0 ≤ ID < grid.
	ID int

	dev         *Device
	cycles      float64
	compute     float64
	global      float64
	shared      float64
	diverge     float64
	sharedBytes int
}

// Compute charges n arithmetic operations executed by one thread lane.
func (b *Block) Compute(n int) {
	c := float64(n) * b.dev.cfg.ComputeCyclesPerOp
	b.cycles += c
	b.compute += c
}

// GlobalAccess charges n coalesced 8-byte global-memory accesses.
func (b *Block) GlobalAccess(n int) {
	c := float64(n) * b.dev.cfg.GlobalCyclesPerWord
	b.cycles += c
	b.global += c
}

// SharedAccess charges n 8-byte shared-memory accesses.
func (b *Block) SharedAccess(n int) {
	c := float64(n) * b.dev.cfg.SharedCyclesPerWord
	b.cycles += c
	b.shared += c
}

// ParallelCompute charges compute work of threads lanes each doing
// opsPerThread operations, assuming the block's lanes run CoresPerSM
// wide: elapsed cycles = opsPerThread × ⌈threads / CoresPerSM⌉.
func (b *Block) ParallelCompute(threads, opsPerThread int) {
	if threads <= 0 || opsPerThread <= 0 {
		return
	}
	waves := (threads + b.dev.cfg.CoresPerSM - 1) / b.dev.cfg.CoresPerSM
	c := float64(waves) * float64(opsPerThread) * b.dev.cfg.ComputeCyclesPerOp
	b.cycles += c
	b.compute += c
}

// Diverge charges a divergent branch: on SIMD hardware the paths are
// serialized, so the cost is the *sum* of the per-path cycle counts
// rather than their max. Used to model mixing filtering with
// verification in one kernel (the design the paper §4.4 avoids).
func (b *Block) Diverge(pathCycles ...float64) {
	for _, c := range pathCycles {
		b.cycles += c
		b.diverge += c
	}
}

// AllocShared reserves bytes of the block's shared-memory budget and
// fails with ErrSharedMemExceeded if the kernel asks for more than the
// hardware provides — this is what forces Algorithm 2's compressed
// 2×(2ρ+2) warping matrix instead of a full d×d matrix.
func (b *Block) AllocShared(bytes int) error {
	if bytes < 0 {
		return fmt.Errorf("gpusim: negative shared allocation %d", bytes)
	}
	if b.sharedBytes+bytes > b.dev.cfg.SharedMemPerBlock {
		return fmt.Errorf("%w: want %d more, used %d of %d",
			ErrSharedMemExceeded, bytes, b.sharedBytes, b.dev.cfg.SharedMemPerBlock)
	}
	b.sharedBytes += bytes
	return nil
}

// SharedUsed returns the block's current shared-memory usage.
func (b *Block) SharedUsed() int { return b.sharedBytes }

// Launch runs kernel over a grid of blocks. Blocks execute concurrently
// on a worker pool; the per-block simulated cycles are accumulated into
// the device counter when each block retires. The first kernel error
// (if any) aborts accounting for nothing — all blocks still run — and
// is returned.
func (d *Device) Launch(grid int, kernel func(b *Block) error) error {
	if grid <= 0 {
		return fmt.Errorf("gpusim: invalid grid size %d", grid)
	}
	// Fault-injection seam: a simulated launch failure (the real-GPU
	// analogue of a CUDA launch error) surfaces here, before any block
	// runs, so callers exercise their degradation paths.
	if err := fault.Check(fault.PointGPUSimLaunch); err != nil {
		return fmt.Errorf("gpusim: launch: %w", err)
	}
	d.launches.Add(1)
	d.blocks.Add(int64(grid))
	d.cycles.Add(int64(d.cfg.LaunchOverheadCycles * cycleFix))
	d.launchCycles.Add(int64(d.cfg.LaunchOverheadCycles * cycleFix))

	workers := d.workers
	if workers > grid {
		workers = grid
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				id := int(next.Add(1)) - 1
				if id >= grid {
					return
				}
				blk := &Block{ID: id, dev: d}
				if err := kernel(blk); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
				d.cycles.Add(int64(blk.cycles * cycleFix))
				d.computeCycles.Add(int64(blk.compute * cycleFix))
				d.globalCycles.Add(int64(blk.global * cycleFix))
				d.sharedCycles.Add(int64(blk.shared * cycleFix))
				d.divergeCycles.Add(int64(blk.diverge * cycleFix))
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// SimSeconds returns the simulated elapsed time of all work since the
// last ResetTimer: Σ block cycles spread over the SMs at the core clock.
func (d *Device) SimSeconds() float64 {
	cyc := float64(d.cycles.Load()) / cycleFix
	return cyc / (float64(d.cfg.SMs) * d.cfg.ClockHz)
}

// Launches returns the number of kernel launches since ResetTimer.
func (d *Device) Launches() int64 { return d.launches.Load() }

// BlocksRun returns the number of blocks executed since ResetTimer.
func (d *Device) BlocksRun() int64 { return d.blocks.Load() }

// ResetTimer zeroes the cycle and launch counters (memory usage is
// preserved).
func (d *Device) ResetTimer() {
	d.cycles.Store(0)
	d.launches.Store(0)
	d.blocks.Store(0)
	d.computeCycles.Store(0)
	d.globalCycles.Store(0)
	d.sharedCycles.Store(0)
	d.divergeCycles.Store(0)
	d.launchCycles.Store(0)
}

// Profile is a per-category cycle breakdown of the work since the last
// ResetTimer; it explains where a kernel's simulated time goes (the
// evaluation harness prints it for the search experiments).
type Profile struct {
	ComputeCycles float64
	GlobalCycles  float64
	SharedCycles  float64
	DivergeCycles float64
	LaunchCycles  float64
	Launches      int64
	Blocks        int64
}

// TotalCycles returns the sum of all categories.
func (p Profile) TotalCycles() float64 {
	return p.ComputeCycles + p.GlobalCycles + p.SharedCycles + p.DivergeCycles + p.LaunchCycles
}

// Profile snapshots the per-category counters.
func (d *Device) Profile() Profile {
	return Profile{
		ComputeCycles: float64(d.computeCycles.Load()) / cycleFix,
		GlobalCycles:  float64(d.globalCycles.Load()) / cycleFix,
		SharedCycles:  float64(d.sharedCycles.Load()) / cycleFix,
		DivergeCycles: float64(d.divergeCycles.Load()) / cycleFix,
		LaunchCycles:  float64(d.launchCycles.Load()) / cycleFix,
		Launches:      d.launches.Load(),
		Blocks:        d.blocks.Load(),
	}
}

// KSelectResult is one selected element: its index in the input slice
// and its value.
type KSelectResult struct {
	Index int
	Value float64
}

// KSelectBlock selects the k smallest values of dists inside a block,
// returning them sorted ascending (index, value) — the GPU k-selection
// of [Alabi et al.] adapted as the paper does: one block performs one
// query's selection and returns all k elements, not only the k-th.
// Entries with +Inf value (filtered candidates) are skipped. If fewer
// than k finite entries exist, all of them are returned.
func KSelectBlock(b *Block, dists []float64, k int) []KSelectResult {
	if k <= 0 || len(dists) == 0 {
		return nil
	}
	// Cost: one parallel pass over the array plus k·log k ordering.
	b.ParallelCompute(len(dists), 2)
	b.GlobalAccess(len(dists))

	// Max-heap of size k over the candidates (value at root is largest).
	heap := make([]KSelectResult, 0, k)
	siftUp := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if heap[i].Value <= heap[p].Value {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(heap) && heap[l].Value > heap[big].Value {
				big = l
			}
			if r < len(heap) && heap[r].Value > heap[big].Value {
				big = r
			}
			if big == i {
				return
			}
			heap[i], heap[big] = heap[big], heap[i]
			i = big
		}
	}
	for i, v := range dists {
		if v != v || v > maxFinite { // NaN or +Inf: filtered out
			continue
		}
		if len(heap) < k {
			heap = append(heap, KSelectResult{Index: i, Value: v})
			siftUp(len(heap) - 1)
			continue
		}
		if v < heap[0].Value {
			heap[0] = KSelectResult{Index: i, Value: v}
			siftDown(0)
		}
	}
	b.Compute(k * 4)
	sort.Slice(heap, func(i, j int) bool {
		if heap[i].Value != heap[j].Value {
			return heap[i].Value < heap[j].Value
		}
		return heap[i].Index < heap[j].Index
	})
	return heap
}

const maxFinite = 1.7976931348623157e308
