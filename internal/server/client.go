package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"time"

	"smiler/internal/ingest"
)

// RetryPolicy bounds the client's automatic retries of idempotent
// GETs. Retries fire on transport errors, HTTP 5xx and HTTP 429, with
// jittered exponential backoff; POST/DELETE are never retried (an
// enqueue or a registration might have landed before the failure).
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (1 = no retries).
	MaxAttempts int
	// BaseDelay is the first backoff step (doubled per attempt, with
	// up to 50% uniform jitter added).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep.
	MaxDelay time.Duration
}

// DefaultRetryPolicy retries idempotent GETs up to 3 times with
// 50ms/100ms jittered backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
}

// Client is a typed HTTP client for the SMiLer service. It is a thin
// convenience wrapper for tools and tests; any HTTP client works.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
}

// NewClient targets a service at base (e.g. "http://localhost:8080").
// httpClient may be nil for http.DefaultClient. The client retries
// idempotent GETs per DefaultRetryPolicy; see SetRetryPolicy.
func NewClient(base string, httpClient *http.Client) (*Client, error) {
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("server: invalid base URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("server: base URL %q must be absolute", base)
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{
		base:  u.String(),
		hc:    httpClient,
		retry: DefaultRetryPolicy(),
	}, nil
}

// SetRetryPolicy replaces the GET retry policy ({MaxAttempts: 1}
// disables retries). Not safe to call concurrently with requests.
func (c *Client) SetRetryPolicy(p RetryPolicy) { c.retry = p }

func (c *Client) do(method, path string, body, out any) error {
	return c.doCtx(context.Background(), method, path, body, out)
}

// doCtx issues one API request. Idempotent GETs are retried on
// transport errors and retryable statuses (5xx, 429) with jittered
// exponential backoff, respecting ctx cancellation between attempts.
func (c *Client) doCtx(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		payload = b
	}
	attempts := 1
	if method == http.MethodGet && c.retry.MaxAttempts > 1 {
		attempts = c.retry.MaxAttempts
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := c.sleepBackoff(ctx, attempt); err != nil {
				return lastErr
			}
		}
		err, retryable := c.doOnce(ctx, method, path, payload, body != nil, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || ctx.Err() != nil {
			return err
		}
	}
	return lastErr
}

// sleepBackoff waits the attempt's jittered exponential delay, or
// returns early on ctx cancellation.
func (c *Client) sleepBackoff(ctx context.Context, attempt int) error {
	d := c.retry.BaseDelay << (attempt - 1)
	if c.retry.MaxDelay > 0 && d > c.retry.MaxDelay {
		d = c.retry.MaxDelay
	}
	if d <= 0 {
		d = time.Millisecond
	}
	// Up to 50% uniform jitter decorrelates clients retrying in sync.
	// The top-level rand functions are safe for the concurrent GETs a
	// shared Client serves; a per-Client *rand.Rand would race.
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// doOnce issues a single request; the second return reports whether a
// failure is safe and worthwhile to retry.
func (c *Client) doOnce(ctx context.Context, method, path string, payload []byte, hasBody bool, out any) (err error, retryable bool) {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err, false
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err, true // transport error: connection refused, reset, timeout
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		retry := resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests
		var er errorResponse
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
			return fmt.Errorf("server: %s %s: %s (HTTP %d)", method, path, er.Error, resp.StatusCode), retry
		}
		return fmt.Errorf("server: %s %s: HTTP %d", method, path, resp.StatusCode), retry
	}
	if out == nil {
		return nil, false
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return err, false
	}
	return nil, false
}

// AddSensor registers a sensor with its history.
func (c *Client) AddSensor(id string, history []float64) error {
	return c.do(http.MethodPost, "/sensors", AddSensorRequest{ID: id, History: history}, nil)
}

// RemoveSensor deletes a sensor.
func (c *Client) RemoveSensor(id string) error {
	return c.do(http.MethodDelete, "/sensors/"+url.PathEscape(id), nil, nil)
}

// Sensors lists registered sensor ids.
func (c *Client) Sensors() ([]string, error) {
	var out []string
	err := c.do(http.MethodGet, "/sensors", nil, &out)
	return out, err
}

// Forecast requests an h-step-ahead forecast.
func (c *Client) Forecast(id string, h int) (ForecastResponse, error) {
	var out ForecastResponse
	err := c.do(http.MethodGet,
		fmt.Sprintf("/sensors/%s/forecast?h=%d", url.PathEscape(id), h), nil, &out)
	return out, err
}

// Observe streams one observation.
func (c *Client) Observe(id string, value float64) error {
	return c.do(http.MethodPost, "/sensors/"+url.PathEscape(id)+"/observe",
		ObserveRequest{Value: &value}, nil)
}

// ObserveBatch streams several observations in order.
func (c *Client) ObserveBatch(id string, values []float64) error {
	return c.do(http.MethodPost, "/sensors/"+url.PathEscape(id)+"/observe",
		ObserveRequest{Values: values}, nil)
}

// Ensemble fetches the sensor's auto-tuning weights.
func (c *Client) Ensemble(id string) ([]EnsembleCell, error) {
	var out []EnsembleCell
	err := c.do(http.MethodGet, "/sensors/"+url.PathEscape(id)+"/ensemble", nil, &out)
	return out, err
}

// Stats fetches system statistics.
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	err := c.do(http.MethodGet, "/stats", nil, &out)
	return out, err
}

// Healthz checks liveness.
func (c *Client) Healthz() error {
	return c.do(http.MethodGet, "/healthz", nil, nil)
}

// Forecasts requests several horizons from one shared kNN search.
func (c *Client) Forecasts(id string, hs []int) ([]ForecastResponse, error) {
	parts := make([]string, len(hs))
	for i, h := range hs {
		parts[i] = fmt.Sprint(h)
	}
	var out []ForecastResponse
	err := c.do(http.MethodGet,
		fmt.Sprintf("/sensors/%s/forecasts?hs=%s", url.PathEscape(id), strings.Join(parts, ",")),
		nil, &out)
	return out, err
}

// SendReadings posts raw timestamped readings for grid regularization
// (requires a server built with NewWithInterval).
func (c *Client) SendReadings(id string, readings []Reading) error {
	return c.do(http.MethodPost, "/sensors/"+url.PathEscape(id)+"/readings",
		ReadingsRequest{Readings: readings}, nil)
}

// ObserveMany bulk-ingests observations spanning many sensors in one
// request and reports per-item outcomes.
func (c *Client) ObserveMany(obs []ingest.Observation) (ingest.BulkResult, error) {
	var out ingest.BulkResult
	err := c.do(http.MethodPost, "/observations", BulkObserveRequest{Observations: obs}, &out)
	return out, err
}

// PipelineStats fetches the ingestion pipeline counters.
func (c *Client) PipelineStats() (ingest.Stats, error) {
	var out ingest.Stats
	err := c.do(http.MethodGet, "/pipeline/stats", nil, &out)
	return out, err
}
