package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smiler/internal/ingest"
)

// OwnerURLHeader is set by a cluster node on sensor-scoped responses:
// the base URL of the node that owns the sensor. A ring-aware client
// caches it and sends that sensor's next requests straight to the
// owner, skipping the forwarding hop.
const OwnerURLHeader = "X-Smiler-Owner-Url"

// RetryPolicy bounds the client's automatic retries. Retries fire on
// transport errors, HTTP 5xx and HTTP 429, with jittered exponential
// backoff — except when the response carries a Retry-After header
// (cluster nodes send one on every deliberate 503: migration quiesce,
// draining, replica write rejection), in which case the client sleeps
// what the server asked for (capped at MaxDelay, plus up to 10%
// jitter) instead of its own schedule. GETs are idempotent and always
// eligible; POST/DELETE are retried too because every mutation
// carries a unique idempotency key (IdempotencyKeyHeader) that the
// server — or the cluster node that ends up applying the forwarded
// request — deduplicates, so a retry after a lost response cannot
// double-apply.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (1 = no retries).
	MaxAttempts int
	// BaseDelay is the first backoff step (doubled per attempt, with
	// up to 50% uniform jitter added).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep.
	MaxDelay time.Duration
}

// DefaultRetryPolicy retries up to 3 times with 50ms/100ms jittered
// backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
}

// HTTPError is an API-level failure: the server answered, with a
// non-2xx status. It preserves the status code (so callers can branch
// on 409/404/503 without string matching) and any Retry-After hint
// the server attached. Transport failures (connection refused, reset,
// timeout) are NOT HTTPErrors.
type HTTPError struct {
	// Method and Path identify the failed request.
	Method, Path string
	// Status is the HTTP status code.
	Status int
	// Msg is the server's {"error": ...} body, when one was sent.
	Msg string
	// RetryAfter is the parsed Retry-After header (0 when absent).
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("server: %s %s: %s (HTTP %d)", e.Method, e.Path, e.Msg, e.Status)
	}
	return fmt.Sprintf("server: %s %s: HTTP %d", e.Method, e.Path, e.Status)
}

// parseRetryAfter reads a Retry-After value: delta-seconds or an
// HTTP date (RFC 9110 §10.2.3). Returns 0 when absent or unparseable.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// Client is a typed HTTP client for the SMiLer service. It is a thin
// convenience wrapper for tools and tests; any HTTP client works.
// Against a cluster it is ring-aware: ownership hints returned by any
// node (OwnerURLHeader) are remembered per sensor, so follow-up
// requests go straight to the owner.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy

	// idemPrefix + idemSeq mint process-unique idempotency keys for
	// mutations.
	idemPrefix string
	idemSeq    atomic.Uint64

	// owners caches sensor → owner base URL hints from cluster nodes.
	ownersMu sync.Mutex
	owners   map[string]string
}

// NewClient targets a service at base (e.g. "http://localhost:8080").
// httpClient may be nil for http.DefaultClient. The client retries
// requests per DefaultRetryPolicy; see SetRetryPolicy.
func NewClient(base string, httpClient *http.Client) (*Client, error) {
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("server: invalid base URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("server: base URL %q must be absolute", base)
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{
		base:  strings.TrimSuffix(u.String(), "/"),
		hc:    httpClient,
		retry: DefaultRetryPolicy(),
		idemPrefix: strconv.FormatInt(time.Now().UnixNano(), 36) + "-" +
			strconv.FormatUint(rand.Uint64(), 36),
		owners: make(map[string]string),
	}, nil
}

// SetRetryPolicy replaces the retry policy ({MaxAttempts: 1} disables
// retries). Not safe to call concurrently with requests.
func (c *Client) SetRetryPolicy(p RetryPolicy) { c.retry = p }

func (c *Client) do(method, path string, body, out any) error {
	return c.doSensor(context.Background(), "", method, path, body, out)
}

func (c *Client) doCtx(ctx context.Context, method, path string, body, out any) error {
	return c.doSensor(ctx, "", method, path, body, out)
}

// owner returns the cached owner base URL for a sensor ("" when
// unknown).
func (c *Client) owner(sensor string) string {
	c.ownersMu.Lock()
	defer c.ownersMu.Unlock()
	return c.owners[sensor]
}

func (c *Client) setOwner(sensor, base string) {
	u, err := url.Parse(base)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return // malformed hint; ignore
	}
	base = strings.TrimSuffix(u.String(), "/")
	c.ownersMu.Lock()
	if base == c.base {
		delete(c.owners, sensor) // the primary base is the owner; no hint needed
	} else {
		c.owners[sensor] = base
	}
	c.ownersMu.Unlock()
}

func (c *Client) clearOwner(sensor string) {
	c.ownersMu.Lock()
	delete(c.owners, sensor)
	c.ownersMu.Unlock()
}

// doSensor issues one API request, retrying per the policy. The body
// is marshaled exactly once, up front — every retry resends the same
// bytes. Mutations get a fresh idempotency key (one per logical
// request, shared by its retries) so the server can deduplicate them.
// When sensor is non-empty, a cached ownership hint routes the request
// straight to the owning cluster node; hints are updated from
// responses and dropped when the hinted node fails. On exhaustion the
// returned error reports how many attempts were made.
func (c *Client) doSensor(ctx context.Context, sensor, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		payload = b
	}
	idemKey := ""
	if method != http.MethodGet {
		idemKey = c.idemPrefix + "-" + strconv.FormatUint(c.idemSeq.Add(1), 36)
	}
	attempts := 1
	if c.retry.MaxAttempts > 1 {
		attempts = c.retry.MaxAttempts
	}
	var lastErr error
	made := 0
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			// A Retry-After hint from the previous response overrides the
			// exponential schedule: the server knows when it will be ready
			// (migration cutover, drain window, primary recovery).
			var hint time.Duration
			var he *HTTPError
			if errors.As(lastErr, &he) {
				hint = he.RetryAfter
			}
			if err := c.sleepBackoff(ctx, attempt, hint); err != nil {
				return attemptsErr(lastErr, made)
			}
		}
		base := c.base
		usedHint := false
		if sensor != "" {
			if o := c.owner(sensor); o != "" {
				base, usedHint = o, true
			}
		}
		made++
		ownerHint, err, retryable := c.doOnce(ctx, base, method, path, payload, body != nil, idemKey, out)
		if err == nil {
			if sensor != "" && ownerHint != "" {
				c.setOwner(sensor, ownerHint)
			}
			return nil
		}
		lastErr = err
		if sensor != "" {
			switch {
			case ownerHint != "":
				// The failed response itself named an owner (a 503 from a
				// draining node, say): re-learn rather than forget.
				c.setOwner(sensor, ownerHint)
			case usedHint && evictOwner(err):
				// The hinted owner is unreachable or in server-side
				// trouble (connection error or 5xx): fall back to the
				// primary base, whose gate re-resolves ownership. API
				// errors like 404/409 are answers, not routing failures —
				// keep the hint for those.
				c.clearOwner(sensor)
			}
		}
		if !retryable || ctx.Err() != nil {
			return attemptsErr(err, made)
		}
	}
	return attemptsErr(lastErr, made)
}

// evictOwner reports whether a failure against a hinted owner should
// drop the cached hint: transport errors (the node is gone) and 5xx
// (the node is up but refusing — draining, overloaded, mid-migration).
// 4xx responses are authoritative answers about the request, not the
// routing, so the hint stays.
func evictOwner(err error) bool {
	var he *HTTPError
	if !errors.As(err, &he) {
		return true // transport error: connection refused, reset, timeout
	}
	return he.Status >= 500
}

// attemptsErr annotates the final error with the attempt count so a
// log line distinguishes "failed instantly" from "failed after the
// whole backoff budget".
func attemptsErr(err error, made int) error {
	if err == nil || made <= 1 {
		return err
	}
	return fmt.Errorf("%w (after %d attempts)", err, made)
}

// sleepBackoff waits before the attempt-th retry: the server's
// Retry-After hint when one was sent (capped at MaxDelay, ~10%
// jitter), the jittered exponential schedule otherwise. Returns early
// on ctx cancellation.
func (c *Client) sleepBackoff(ctx context.Context, attempt int, hint time.Duration) error {
	var d time.Duration
	if hint > 0 {
		d = hint
		if c.retry.MaxDelay > 0 && d > c.retry.MaxDelay {
			d = c.retry.MaxDelay
		}
		// Light jitter only: the point of honoring the hint is to come
		// back when the server said it would be ready, not sooner.
		d += time.Duration(rand.Int63n(int64(d)/10 + 1))
	} else {
		d = c.retry.BaseDelay << (attempt - 1)
		if c.retry.MaxDelay > 0 && d > c.retry.MaxDelay {
			d = c.retry.MaxDelay
		}
		if d <= 0 {
			d = time.Millisecond
		}
		// Up to 50% uniform jitter decorrelates clients retrying in sync.
		// The top-level rand functions are safe for the concurrent GETs a
		// shared Client serves; a per-Client *rand.Rand would race.
		d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// doOnce issues a single request against base. ownerHint is the
// sensor-ownership hint from the response headers (empty when absent);
// retryable reports whether a failure is safe and worthwhile to retry.
func (c *Client) doOnce(ctx context.Context, base, method, path string, payload []byte, hasBody bool, idemKey string, out any) (ownerHint string, err error, retryable bool) {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return "", err, false
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	if idemKey != "" {
		req.Header.Set(IdempotencyKeyHeader, idemKey)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err, true // transport error: connection refused, reset, timeout
	}
	defer resp.Body.Close()
	ownerHint = resp.Header.Get(OwnerURLHeader)
	if resp.StatusCode >= 400 {
		retry := resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests
		he := &HTTPError{
			Method: method, Path: path, Status: resp.StatusCode,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
		var er errorResponse
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
			he.Msg = er.Error
		}
		return ownerHint, he, retry
	}
	if out == nil {
		return ownerHint, nil, false
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return ownerHint, err, false
	}
	return ownerHint, nil, false
}

// AddSensor registers a sensor with its history.
func (c *Client) AddSensor(id string, history []float64) error {
	return c.doSensor(context.Background(), id, http.MethodPost, "/sensors",
		AddSensorRequest{ID: id, History: history}, nil)
}

// RemoveSensor deletes a sensor.
func (c *Client) RemoveSensor(id string) error {
	return c.doSensor(context.Background(), id, http.MethodDelete, "/sensors/"+url.PathEscape(id), nil, nil)
}

// Sensors lists registered sensor ids.
func (c *Client) Sensors() ([]string, error) {
	var out []string
	err := c.do(http.MethodGet, "/sensors", nil, &out)
	return out, err
}

// Forecast requests an h-step-ahead forecast.
func (c *Client) Forecast(id string, h int) (ForecastResponse, error) {
	var out ForecastResponse
	err := c.doSensor(context.Background(), id, http.MethodGet,
		fmt.Sprintf("/sensors/%s/forecast?h=%d", url.PathEscape(id), h), nil, &out)
	return out, err
}

// Observe streams one observation.
func (c *Client) Observe(id string, value float64) error {
	return c.doSensor(context.Background(), id, http.MethodPost, "/sensors/"+url.PathEscape(id)+"/observe",
		ObserveRequest{Value: &value}, nil)
}

// ObserveBatch streams several observations in order.
func (c *Client) ObserveBatch(id string, values []float64) error {
	return c.doSensor(context.Background(), id, http.MethodPost, "/sensors/"+url.PathEscape(id)+"/observe",
		ObserveRequest{Values: values}, nil)
}

// Ensemble fetches the sensor's auto-tuning weights.
func (c *Client) Ensemble(id string) ([]EnsembleCell, error) {
	var out []EnsembleCell
	err := c.doSensor(context.Background(), id, http.MethodGet,
		"/sensors/"+url.PathEscape(id)+"/ensemble", nil, &out)
	return out, err
}

// Stats fetches system statistics.
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	err := c.do(http.MethodGet, "/stats", nil, &out)
	return out, err
}

// Healthz checks liveness.
func (c *Client) Healthz() error {
	return c.do(http.MethodGet, "/healthz", nil, nil)
}

// Forecasts requests several horizons from one shared kNN search.
func (c *Client) Forecasts(id string, hs []int) ([]ForecastResponse, error) {
	parts := make([]string, len(hs))
	for i, h := range hs {
		parts[i] = fmt.Sprint(h)
	}
	var out []ForecastResponse
	err := c.doSensor(context.Background(), id, http.MethodGet,
		fmt.Sprintf("/sensors/%s/forecasts?hs=%s", url.PathEscape(id), strings.Join(parts, ",")),
		nil, &out)
	return out, err
}

// SendReadings posts raw timestamped readings for grid regularization
// (requires a server built with NewWithInterval).
func (c *Client) SendReadings(id string, readings []Reading) error {
	return c.doSensor(context.Background(), id, http.MethodPost, "/sensors/"+url.PathEscape(id)+"/readings",
		ReadingsRequest{Readings: readings}, nil)
}

// ObserveMany bulk-ingests observations spanning many sensors in one
// request and reports per-item outcomes.
func (c *Client) ObserveMany(obs []ingest.Observation) (ingest.BulkResult, error) {
	var out ingest.BulkResult
	err := c.do(http.MethodPost, "/observations", BulkObserveRequest{Observations: obs}, &out)
	return out, err
}

// PipelineStats fetches the ingestion pipeline counters.
func (c *Client) PipelineStats() (ingest.Stats, error) {
	var out ingest.Stats
	err := c.do(http.MethodGet, "/pipeline/stats", nil, &out)
	return out, err
}
