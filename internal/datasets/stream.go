package datasets

import (
	"fmt"
	"math/rand"
)

// Stream is the lazy, constant-memory face of the corpus generators:
// one per-sensor value stream, produced on demand. Where Generate
// materializes every series up front (fine for accuracy experiments
// over hundreds of sensors), a load generator synthesizing 10⁵–10⁶
// concurrent sensor streams cannot hold full histories in RAM — so a
// Stream carries only its generator state: the per-sensor personality
// parameters, a few floats of AR/burst state, and a single-word
// splitmix64 RNG, a few hundred bytes per sensor regardless of how
// many samples are drawn.
//
// Streams are deterministic per (kind, seed, sensor index): the same
// triple always yields the same value sequence, on any host, so a
// loader and a verifier can regenerate identical traffic
// independently. The stream family is seeded differently from
// Generate (which keeps the heavyweight math/rand source for
// backwards-compatible corpora), so Stream values are not byte-equal
// to Generate values; both are stable within their own family.
//
// A Stream is not safe for concurrent use; callers owning many
// sensors guard each stream (or confine it to one goroutine).
type Stream struct {
	kind Kind
	g    stepper
	n    int
}

// NewStream returns the lazy generator for sensor idx of the (kind,
// seed) corpus.
func NewStream(kind Kind, seed int64, idx int) (*Stream, error) {
	if kind < Road || kind > Net {
		return nil, fmt.Errorf("datasets: unknown kind %d", int(kind))
	}
	if idx < 0 {
		return nil, fmt.Errorf("datasets: negative sensor index %d", idx)
	}
	// splitmix64 gives every (seed, kind, idx) triple a well-mixed,
	// O(1)-state source; rand.New layers the float/normal machinery on
	// top without the ~5 KB state of the default math/rand source.
	src := &splitmix64{state: uint64(seed) ^ uint64(idx)*0x9E3779B97F4A7C15 ^ uint64(kind)<<56}
	src.nextState() // decorrelate adjacent sensor indices
	rng := rand.New(src)
	s := &Stream{kind: kind}
	switch kind {
	case Road:
		s.g = newRoadGen(rng)
	case Mall:
		s.g = newMallGen(rng)
	case Net:
		s.g = newNetGen(rng)
	}
	return s, nil
}

// Kind returns the corpus the stream draws from.
func (s *Stream) Kind() Kind { return s.kind }

// Pos returns how many values have been drawn so far.
func (s *Stream) Pos() int { return s.n }

// Next draws the next value of the series.
func (s *Stream) Next() float64 {
	s.n++
	return s.g.next()
}

// Take draws the next n values — the idiom for bootstrapping a
// sensor's initial history before streaming the remainder one
// observation at a time.
func (s *Stream) Take(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// splitmix64 is a tiny rand.Source64: one uint64 of state, full
// 64-bit output, and good avalanche behaviour even for sequential
// seeds (Steele, Lea & Flood 2014) — which is exactly the access
// pattern here (sensor indices 0..N-1).
type splitmix64 struct{ state uint64 }

func (s *splitmix64) nextState() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitmix64) Uint64() uint64 { return s.nextState() }

func (s *splitmix64) Int63() int64 { return int64(s.nextState() >> 1) }

func (s *splitmix64) Seed(seed int64) { s.state = uint64(seed) }
