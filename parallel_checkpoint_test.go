package smiler

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestCheckpointStableUnderPredictWorkers: the Prediction-Step worker
// pool must not leak into persisted state — a system driven with
// concurrent cell fits (multi-horizon predictions included) checkpoints
// byte-identically to a sequentially driven twin.
func TestCheckpointStableUnderPredictWorkers(t *testing.T) {
	run := func(workers int) []byte {
		cfg := smallConfig()
		cfg.Predictor = PredictorGP
		cfg.PredictWorkers = workers
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		rng := rand.New(rand.NewSource(31))
		all := noisySeasonal(rng, 430, 5, 50)
		if err := sys.AddSensor("s", all[:400]); err != nil {
			t.Fatal(err)
		}
		for i := 400; i < 415; i++ {
			if _, err := sys.PredictHorizons("s", []int{1, 3, 6}); err != nil {
				t.Fatal(err)
			}
			if err := sys.Observe("s", all[i]); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := sys.SaveTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := run(1)
	par := run(4)
	if !bytes.Equal(seq, par) {
		t.Fatalf("checkpoints diverge with PredictWorkers (%d vs %d bytes)", len(seq), len(par))
	}
}
