// Durability wiring for smiler-server: WAL recovery at startup, the
// journal hooks that keep the WAL ahead of applied state, and the WAL
// metrics. See docs/ROBUSTNESS.md for the failure model.
package main

import (
	"fmt"
	"log/slog"
	"runtime"

	"smiler"
	"smiler/internal/ingest"
	"smiler/internal/obs"
	"smiler/internal/wal"
)

// walShards resolves the shard count the WAL must mirror: the
// ingestion pipeline's configured worker count (its own default is
// GOMAXPROCS). Recovery does not depend on this matching a previous
// run — ReplayDir reads whatever shard directories exist.
func walShards(configured int) int {
	if configured > 0 {
		return configured
	}
	return runtime.GOMAXPROCS(0)
}

// walOptions maps the -fsync / -fsync-interval flags onto wal.Options.
func walOptions(o options) (wal.Options, error) {
	policy, err := wal.ParseSyncPolicy(o.fsync)
	if err != nil {
		return wal.Options{}, err
	}
	return wal.Options{Policy: policy, Interval: o.fsyncInterval}, nil
}

// recoverWAL replays every intact record under dir into the system,
// stopping cleanly per shard at the first torn or corrupt record.
// Replay application is idempotent-tolerant: a record that no longer
// applies (re-adding a sensor the checkpoint already holds, removing
// one it never saw) is counted and skipped, not fatal — such records
// appear only in the crash window between a checkpoint save and the
// WAL reset it covers.
func recoverWAL(sys *smiler.System, dir string, logger *slog.Logger) (wal.ReplayStats, error) {
	applied, skipped := 0, 0
	known := make(map[string]bool)
	for _, id := range sys.Sensors() {
		known[id] = true
	}
	st, err := wal.ReplayDir(dir, func(shard int, seq uint64, r wal.Record) error {
		var aerr error
		switch r.Type {
		case wal.RecAddSensor:
			if known[r.Sensor] {
				skipped++
				return nil
			}
			if aerr = sys.AddSensor(r.Sensor, r.History); aerr == nil {
				known[r.Sensor] = true
			}
		case wal.RecObserve:
			if !known[r.Sensor] {
				skipped++
				return nil
			}
			aerr = sys.Observe(r.Sensor, r.Value)
		case wal.RecRemoveSensor:
			if !known[r.Sensor] {
				skipped++
				return nil
			}
			if aerr = sys.RemoveSensor(r.Sensor); aerr == nil {
				delete(known, r.Sensor)
			}
		default:
			skipped++
			return nil
		}
		if aerr != nil {
			skipped++
			logger.Warn("wal replay: record skipped",
				"shard", shard, "seq", seq, "type", r.Type.String(), "err", aerr)
			return nil
		}
		applied++
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("replaying WAL %s: %w", dir, err)
	}
	if st.Records > 0 || st.Torn {
		logger.Info("wal replayed",
			"records", st.Records, "applied", applied, "skipped", skipped,
			"segments", st.Segments, "torn", st.Torn)
	}
	return st, nil
}

// openDurability performs the full recovery sequence and returns the
// live WAL manager:
//
//  1. replay the existing WAL into the (checkpoint-restored) system;
//  2. if a checkpoint path is configured, write a post-recovery
//     checkpoint covering everything replayed, then delete the
//     replayed logs so the WAL restarts empty;
//  3. open the sharded manager for appending.
//
// Without a checkpoint the replayed logs are kept: the WAL is then the
// only durable copy, and new appends extend it.
func openDurability(sys *smiler.System, o options, logger *slog.Logger) (*wal.Manager, error) {
	opts, err := walOptions(o)
	if err != nil {
		return nil, err
	}
	st, err := recoverWAL(sys, o.walDir, logger)
	if err != nil {
		return nil, err
	}
	if o.checkpoint != "" && (st.Records > 0 || st.Torn) {
		if err := sys.SaveFile(o.checkpoint); err != nil {
			return nil, fmt.Errorf("post-recovery checkpoint: %w", err)
		}
		if err := wal.RemoveDir(o.walDir); err != nil {
			return nil, fmt.Errorf("truncating recovered WAL: %w", err)
		}
		logger.Info("post-recovery checkpoint saved", "path", o.checkpoint)
	}
	mgr, err := wal.OpenManager(o.walDir, walShards(o.shards), opts, ingest.ShardIndex)
	if err != nil {
		return nil, fmt.Errorf("opening WAL %s: %w", o.walDir, err)
	}
	logger.Info("wal open",
		"dir", o.walDir, "shards", mgr.Shards(), "fsync", opts.Policy.String())
	return mgr, nil
}

// registerWALMetrics exposes the manager's counters on /metrics.
func registerWALMetrics(reg *obs.Registry, mgr *wal.Manager) {
	reg.CounterFunc("smiler_wal_appends_total",
		"Records appended to the write-ahead log.",
		func() float64 { return float64(mgr.Stats().Appends) })
	reg.CounterFunc("smiler_wal_syncs_total",
		"Explicit fsyncs of write-ahead-log segments.",
		func() float64 { return float64(mgr.Stats().Syncs) })
	reg.CounterFunc("smiler_wal_bytes_total",
		"Bytes appended to the write-ahead log.",
		func() float64 { return float64(mgr.Stats().Bytes) })
	reg.CounterFunc("smiler_wal_rotations_total",
		"Write-ahead-log segment rotations.",
		func() float64 { return float64(mgr.Stats().Rotations) })
}

// shutdownDurability runs the clean-exit tail after the pipeline has
// drained: sync the WAL, write the final checkpoint, and — only once
// that checkpoint is durably on disk — reset the logs it covers.
func shutdownDurability(sys *smiler.System, mgr *wal.Manager, o options, logger *slog.Logger) error {
	if mgr != nil {
		if err := mgr.Sync(); err != nil {
			return fmt.Errorf("syncing WAL: %w", err)
		}
	}
	if o.checkpoint != "" {
		if err := saveCheckpoint(sys, o.checkpoint); err != nil {
			return fmt.Errorf("saving checkpoint: %w", err)
		}
		logger.Info("checkpoint saved", "path", o.checkpoint)
		if mgr != nil {
			if err := mgr.Reset(); err != nil {
				return fmt.Errorf("resetting WAL: %w", err)
			}
		}
	}
	if mgr != nil {
		if err := mgr.Close(); err != nil {
			return fmt.Errorf("closing WAL: %w", err)
		}
	}
	return nil
}
