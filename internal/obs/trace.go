package obs

import (
	"sync"
	"time"
)

// Span is one timed phase of a prediction: its offset from the start
// of the query and its duration, both in seconds, plus an optional
// detail string (the GP-fit spans carry their ensemble cell, e.g.
// "k=8 d=32").
type Span struct {
	Name     string  `json:"name"`
	Detail   string  `json:"detail,omitempty"`
	OffsetS  float64 `json:"offset_s"`
	Duration float64 `json:"duration_s"`
}

// Trace records one prediction end to end: the per-phase spans (index
// search, lower-bound compute, verify, one GP fit per awake ensemble
// cell, mixing) and the kNN effectiveness stats of the search
// (candidates produced, pruned by LBen, survivors verified). A trace
// is built single-threaded while the sensor lock is held, finished,
// and only then published to a TraceStore — after Finish it is
// immutable and safe to serve concurrently.
type Trace struct {
	Sensor   string             `json:"sensor"`
	Horizons []int              `json:"horizons"`
	Start    time.Time          `json:"start"`
	TotalS   float64            `json:"total_s"`
	Spans    []Span             `json:"spans"`
	Stats    map[string]float64 `json:"stats,omitempty"`
	Error    string             `json:"error,omitempty"`

	// TraceID, Node and Hop tie node-local traces into one distributed
	// trace: every hop of a forwarded request records a trace carrying
	// the same 128-bit id, its own node name and its hop depth (0 = the
	// entry node). Empty/zero for purely local work predating a trace
	// context.
	TraceID string `json:"trace_id,omitempty"`
	Node    string `json:"node,omitempty"`
	Hop     int    `json:"hop,omitempty"`

	start time.Time
}

// SetContext stamps a distributed trace context onto the trace.
// Nil-safe; a zero context is ignored.
func (t *Trace) SetContext(tc TraceContext) {
	if t == nil || !tc.Valid() {
		return
	}
	t.TraceID, t.Hop = tc.ID, tc.Hop
	if tc.Node != "" {
		t.Node = tc.Node
	}
}

// NewTrace starts a trace for one prediction over the given horizons.
func NewTrace(sensor string, horizons ...int) *Trace {
	now := time.Now()
	return &Trace{
		Sensor:   sensor,
		Horizons: append([]int(nil), horizons...),
		Spans:    make([]Span, 0, 8),
		Start:    now,
		start:    now,
	}
}

// ID returns the distributed trace id ("" on nil or untraced).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.TraceID
}

// StartSpan opens a span and returns its closer. Nil-safe: on a nil
// trace the closer is a no-op.
func (t *Trace) StartSpan(name, detail string) func() {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	return func() {
		t.Spans = append(t.Spans, Span{
			Name:     name,
			Detail:   detail,
			OffsetS:  begin.Sub(t.start).Seconds(),
			Duration: time.Since(begin).Seconds(),
		})
	}
}

// AddSpan records an already-measured phase (used when the duration
// comes from instrumentation inside a lower layer, like the index's
// wall-clock split of lower-bound vs verify time).
func (t *Trace) AddSpan(name, detail string, offset, duration time.Duration) {
	if t == nil {
		return
	}
	t.Spans = append(t.Spans, Span{
		Name:     name,
		Detail:   detail,
		OffsetS:  offset.Seconds(),
		Duration: duration.Seconds(),
	})
}

// SetStat records one named statistic (kNN candidates, pruned, ...).
func (t *Trace) SetStat(name string, v float64) {
	if t == nil {
		return
	}
	if t.Stats == nil {
		t.Stats = make(map[string]float64)
	}
	t.Stats[name] = v
}

// Finish stamps the total duration (and the error, if any). Must be
// called before the trace is published.
func (t *Trace) Finish(err error) {
	if t == nil {
		return
	}
	t.TotalS = time.Since(t.start).Seconds()
	if err != nil {
		t.Error = err.Error()
	}
}

// TraceStore keeps the last N finished traces per sensor in a ring.
type TraceStore struct {
	mu       sync.Mutex
	capacity int
	bySensor map[string][]*Trace
}

// DefaultTraceCapacity is the per-sensor ring size.
const DefaultTraceCapacity = 16

// NewTraceStore builds a store keeping the last n traces per sensor
// (n <= 0 takes DefaultTraceCapacity).
func NewTraceStore(n int) *TraceStore {
	if n <= 0 {
		n = DefaultTraceCapacity
	}
	return &TraceStore{capacity: n, bySensor: make(map[string][]*Trace)}
}

// Add publishes a finished trace. Nil-safe on both receiver and trace.
func (s *TraceStore) Add(t *Trace) {
	if s == nil || t == nil {
		return
	}
	s.mu.Lock()
	ring := append(s.bySensor[t.Sensor], t)
	if len(ring) > s.capacity {
		ring = ring[len(ring)-s.capacity:]
	}
	s.bySensor[t.Sensor] = ring
	s.mu.Unlock()
}

// Last returns up to n most recent traces for the sensor, newest
// first (all of them when n <= 0).
func (s *TraceStore) Last(sensor string, n int) []*Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	ring := s.bySensor[sensor]
	if n <= 0 || n > len(ring) {
		n = len(ring)
	}
	out := make([]*Trace, n)
	for i := 0; i < n; i++ {
		out[i] = ring[len(ring)-1-i]
	}
	s.mu.Unlock()
	return out
}

// Remove drops every stored trace of the sensor (sensor deletion).
func (s *TraceStore) Remove(sensor string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	delete(s.bySensor, sensor)
	s.mu.Unlock()
}
