package smiler

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"smiler/internal/obs"
	"smiler/internal/wal"
)

// Hot/cold sensor tiering (Config.MaxHotSensors). A node can be
// registered for far more sensors than fit in memory: at most
// MaxHotSensors keep a live pipeline + device-resident index ("hot");
// the rest are spilled to single-sensor checkpoint envelopes on disk
// ("cold") and faulted back in transparently on the next observe,
// predict or history read, evicting the least recently used hot
// sensor to make room.
//
// Spill files are a runtime cache, not a durability layer: the
// directory is wiped at New (stale files from a previous run are
// garbage) and durability still flows through checkpoints — SaveTo
// embeds cold sensors by decoding their spill envelopes — and WAL
// replay, which faults sensors in as records arrive.
//
// Concurrency protocol: the tier's own bookkeeping (LRU order, cold
// set) lives behind tierState.mu, always acquired after s.mu (either
// mode) and never held while taking any other lock. Eviction and
// fault-in run under s.mu write-locked; an evicted sensorState is
// marked gone under its st.mu, so an accessor that looked the sensor
// up before the eviction re-checks after locking and retries through
// the fault-in path instead of surfacing a closed-index error.
type tierState struct {
	mu     sync.Mutex
	max    int
	dir    string
	ownDir bool // dir was created by New → removed by Close

	lru  *list.List               // hot ids, front = most recently used
	pos  map[string]*list.Element // hot id → lru element
	cold map[string]struct{}      // spilled ids
}

// newTierState validates the tiering configuration and prepares the
// spill directory (wiping stale spill files from a previous run).
func newTierState(cfg Config) (*tierState, error) {
	if cfg.MaxHotSensors < 0 {
		return nil, fmt.Errorf("smiler: negative MaxHotSensors %d", cfg.MaxHotSensors)
	}
	if cfg.MaxHotSensors == 0 {
		return nil, nil // unlimited: tiering off
	}
	t := &tierState{
		max:  cfg.MaxHotSensors,
		lru:  list.New(),
		pos:  make(map[string]*list.Element),
		cold: make(map[string]struct{}),
	}
	if cfg.SpillDir != "" {
		if err := os.MkdirAll(cfg.SpillDir, 0o755); err != nil {
			return nil, fmt.Errorf("smiler: spill dir: %w", err)
		}
		t.dir = cfg.SpillDir
		// Spill files are a cache keyed to this process's tier state;
		// leftovers from a previous run are unreachable garbage.
		entries, err := os.ReadDir(t.dir)
		if err != nil {
			return nil, fmt.Errorf("smiler: spill dir: %w", err)
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), spillSuffix) {
				_ = os.Remove(filepath.Join(t.dir, e.Name()))
			}
		}
	} else {
		dir, err := os.MkdirTemp("", "smiler-spill-")
		if err != nil {
			return nil, fmt.Errorf("smiler: spill dir: %w", err)
		}
		t.dir = dir
		t.ownDir = true
	}
	return t, nil
}

const spillSuffix = ".spill"

// spillPath maps a sensor id (arbitrary bytes) onto a filesystem-safe
// spill file name.
func (t *tierState) spillPath(id string) string {
	sum := sha256.Sum256([]byte(id))
	return filepath.Join(t.dir, hex.EncodeToString(sum[:16])+spillSuffix)
}

// touch marks a hot sensor as most recently used.
func (t *tierState) touch(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if e, ok := t.pos[id]; ok {
		t.lru.MoveToFront(e)
	}
	t.mu.Unlock()
}

// markHot registers a (newly added or faulted-in) sensor as hot and
// most recently used.
func (t *tierState) markHot(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	delete(t.cold, id)
	if e, ok := t.pos[id]; ok {
		t.lru.MoveToFront(e)
	} else {
		t.pos[id] = t.lru.PushFront(id)
	}
	t.mu.Unlock()
}

// dropHot forgets a hot sensor (removed or about to go cold).
func (t *tierState) dropHot(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if e, ok := t.pos[id]; ok {
		t.lru.Remove(e)
		delete(t.pos, id)
	}
	t.mu.Unlock()
}

// markCold records a spilled sensor.
func (t *tierState) markCold(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cold[id] = struct{}{}
	t.mu.Unlock()
}

// dropCold forgets a cold sensor (faulted in or removed).
func (t *tierState) dropCold(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	delete(t.cold, id)
	t.mu.Unlock()
}

// isCold reports whether the sensor is currently spilled.
func (t *tierState) isCold(id string) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	_, ok := t.cold[id]
	t.mu.Unlock()
	return ok
}

// coldIDs returns the spilled sensor ids, sorted.
func (t *tierState) coldIDs() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]string, 0, len(t.cold))
	for id := range t.cold {
		out = append(out, id)
	}
	t.mu.Unlock()
	sort.Strings(out)
	return out
}

// coldCount reports the number of spilled sensors.
func (t *tierState) coldCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	n := len(t.cold)
	t.mu.Unlock()
	return n
}

// victim returns the least recently used hot sensor other than keep,
// or "" when none qualifies.
func (t *tierState) victim(keep string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	for e := t.lru.Back(); e != nil; e = e.Prev() {
		if id := e.Value.(string); id != keep {
			return id
		}
	}
	return ""
}

// close removes the spill directory when New created it (user-provided
// directories keep their files; the next boot wipes them).
func (t *tierState) close() {
	if t == nil {
		return
	}
	if t.ownDir {
		_ = os.RemoveAll(t.dir)
	}
}

// acquire returns the sensor's hot state with st.mu HELD, faulting the
// sensor in from its spill file when it is cold and retrying when an
// eviction races the lookup. faulted reports whether this call paid a
// tier fault (for trace tagging).
func (s *System) acquire(id string) (st *sensorState, faulted bool, err error) {
	for {
		st, cold, err := s.lookupHot(id)
		if err != nil {
			return nil, faulted, err
		}
		if cold {
			if err := s.faultIn(id); err != nil {
				return nil, faulted, err
			}
			faulted = true
			continue
		}
		st.mu.Lock()
		if !st.gone {
			return st, faulted, nil
		}
		// Evicted between the map lookup and the lock: go around and
		// fault it back in.
		st.mu.Unlock()
	}
}

// lookupHot resolves id to its hot state (touching the LRU), or
// reports that the sensor is cold, or errors for unknown sensors.
func (s *System) lookupHot(id string) (*sensorState, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, errors.New("smiler: system closed")
	}
	if st, ok := s.sensors[id]; ok {
		s.tier.touch(id)
		return st, false, nil
	}
	if s.tier.isCold(id) {
		return nil, true, nil
	}
	return nil, false, fmt.Errorf("smiler: unknown sensor %q", id)
}

// faultIn restores a cold sensor from its spill envelope, makes it
// hot, and evicts down to the cap. Idempotent under races: if another
// goroutine faulted the sensor in first, it is a no-op.
func (s *System) faultIn(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("smiler: system closed")
	}
	if _, ok := s.sensors[id]; ok {
		return nil // lost the race to another fault; already hot
	}
	if !s.tier.isCold(id) {
		return fmt.Errorf("smiler: unknown sensor %q", id)
	}
	path := s.tier.spillPath(id)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("smiler: faulting in sensor %q: %w", id, err)
	}
	cp, err := decodeCheckpoint(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("smiler: faulting in sensor %q: %w", id, err)
	}
	if cp.Version != checkpointVersion {
		return fmt.Errorf("smiler: faulting in sensor %q: spill version %d, want %d", id, cp.Version, checkpointVersion)
	}
	restored := false
	// The id leaves the cold set before the restore (addSensorLocked
	// treats cold ids as duplicates); a failed restore puts it back so
	// the sensor stays reachable for a retry.
	s.tier.dropCold(id)
	for _, sc := range cp.Sensors {
		if sc.ID != id {
			continue
		}
		if err := s.restoreSensorLocked(sc); err != nil {
			s.tier.markCold(id)
			return fmt.Errorf("smiler: faulting in sensor %q: %w", id, err)
		}
		restored = true
		break
	}
	if !restored {
		s.tier.markCold(id)
		return fmt.Errorf("smiler: faulting in sensor %q: spill file does not contain it", id)
	}
	s.tier.markHot(id)
	_ = os.Remove(path)
	s.obs.sensorFaults.Inc()
	s.obs.events.Record(obs.Event{Type: "sensor_fault_in", Severity: obs.SevInfo, Sensor: id})
	return s.enforceCapLocked(id)
}

// enforceCapLocked evicts least-recently-used hot sensors until the
// hot population fits MaxHotSensors, never evicting keep (the sensor
// the caller is about to use). Callers hold s.mu write-locked.
func (s *System) enforceCapLocked(keep string) error {
	t := s.tier
	if t == nil {
		return nil
	}
	for len(s.sensors) > t.max {
		victim := t.victim(keep)
		if victim == "" {
			return nil // only keep is hot; allow the transient overshoot
		}
		if err := s.evictLocked(victim); err != nil {
			return err
		}
	}
	return nil
}

// evictLocked spills one hot sensor to disk and releases its pipeline
// and device memory. Callers hold s.mu write-locked; the sensor's own
// lock is taken here, so an in-flight prediction finishes first and
// the spilled state is a quiesced snapshot.
func (s *System) evictLocked(id string) error {
	st, ok := s.sensors[id]
	if !ok {
		return nil
	}
	st.mu.Lock()
	cp := checkpoint{
		Version: checkpointVersion,
		Sensors: []sensorCheckpoint{snapshotSensorLocked(id, st)},
	}
	err := wal.WriteFileAtomic(s.tier.spillPath(id), func(w io.Writer) error {
		return writeCheckpoint(w, cp)
	})
	if err != nil {
		st.mu.Unlock()
		return fmt.Errorf("smiler: spilling sensor %q: %w", id, err)
	}
	st.gone = true
	_ = st.ix.Close()
	st.mu.Unlock()
	delete(s.sensors, id)
	s.tier.dropHot(id)
	s.tier.markCold(id)
	s.obs.sensorEvictions.Inc()
	s.obs.events.Record(obs.Event{Type: "sensor_evict", Severity: obs.SevInfo, Sensor: id})
	return nil
}

// TierStats reports the hot/cold split (zero Cold and Faults when
// tiering is off).
type TierStats struct {
	Hot       int
	Cold      int
	Faults    uint64
	Evictions uint64
}

// Tiering reports the current hot/cold sensor split and the lifetime
// fault/eviction counts.
func (s *System) Tiering() TierStats {
	s.mu.RLock()
	hot := len(s.sensors)
	s.mu.RUnlock()
	return TierStats{
		Hot:       hot,
		Cold:      s.tier.coldCount(),
		Faults:    s.obs.sensorFaults.Value(),
		Evictions: s.obs.sensorEvictions.Value(),
	}
}
