package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"smiler/internal/scan"
)

// LazyKNNBootstrap is LazyKNN with bootstrap uncertainty: the paper
// (Section 2.1) notes that lazy learners "cannot estimate the
// analytical predictive uncertainty directly — bootstrap can partially
// remedy this drawback but requires high time cost". This implements
// that remedy so the cost/quality trade-off against the semi-lazy
// GP's closed-form uncertainty can be measured: the kNN search runs
// once, then the weighted-average prediction is recomputed over B
// bootstrap resamples of the neighbour set; the predictive variance is
// the variance of those B point predictions plus the within-resample
// label noise.
type LazyKNNBootstrap struct {
	// K, D, Rho mirror LazyKNN.
	K, D, Rho int
	// B is the number of bootstrap resamples (default 100).
	B int
	// Seed makes resampling deterministic.
	Seed int64
}

// NewLazyKNNBootstrap builds the baseline with the paper-era defaults
// (k=32, d=64, ρ=8) and 100 resamples.
func NewLazyKNNBootstrap() *LazyKNNBootstrap {
	return &LazyKNNBootstrap{K: 32, D: 64, Rho: 8, B: 100, Seed: 1}
}

// Name identifies the method.
func (*LazyKNNBootstrap) Name() string { return "LazyKNN-Bootstrap" }

// Predict forecasts the value h steps after the end of history.
func (l *LazyKNNBootstrap) Predict(history []float64, h int) (Prediction, error) {
	if l.K <= 0 || l.D <= 0 || l.Rho < 0 || l.B <= 0 {
		return Prediction{}, fmt.Errorf("baselines: invalid bootstrap config %+v", *l)
	}
	if h <= 0 {
		return Prediction{}, fmt.Errorf("baselines: horizon %d must be positive", h)
	}
	if len(history) < l.D+l.Rho {
		return Prediction{}, fmt.Errorf("%w: history of %d points for d=%d", ErrNoData, len(history), l.D)
	}
	query := history[len(history)-l.D:]
	nbrs, _, err := scan.FastCPUScan(history, query, l.Rho, l.K, h)
	if err != nil {
		return Prediction{}, err
	}
	if len(nbrs) == 0 {
		return Prediction{}, fmt.Errorf("%w: no neighbours with valid labels", ErrNoData)
	}
	const eps = 1e-6
	type wl struct{ w, label float64 }
	pool := make([]wl, len(nbrs))
	for i, nb := range nbrs {
		pool[i] = wl{w: 1 / (math.Sqrt(nb.Dist) + eps), label: history[nb.T+l.D-1+h]}
	}

	rng := rand.New(rand.NewSource(l.Seed ^ int64(len(history))))
	var sum, sq float64
	for b := 0; b < l.B; b++ {
		var wsum, mean float64
		for i := 0; i < len(pool); i++ {
			pick := pool[rng.Intn(len(pool))]
			wsum += pick.w
			mean += pick.w * pick.label
		}
		mean /= wsum
		sum += mean
		sq += mean * mean
	}
	bm := sum / float64(l.B)
	variance := sq/float64(l.B) - bm*bm
	// Add the plain kNN label variance so the interval covers the
	// observation noise, not only the resampling spread of the mean.
	var wsum, mean float64
	for _, p := range pool {
		wsum += p.w
		mean += p.w * p.label
	}
	mean /= wsum
	var labVar float64
	for _, p := range pool {
		d := p.label - mean
		labVar += p.w * d * d
	}
	variance += labVar / wsum
	if variance < varFloor {
		variance = varFloor
	}
	return Prediction{Mean: bm, Variance: variance}, nil
}
