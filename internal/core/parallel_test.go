package core

import (
	"math"
	"math/rand"
	"testing"

	"smiler/internal/gp"
	"smiler/internal/gpusim"
	"smiler/internal/index"
	"smiler/internal/memsys"
	"smiler/internal/obs"
)

// workerPipeline builds a GP pipeline over hist with an explicit
// Prediction-Step configuration.
func workerPipeline(t *testing.T, hist []float64, workers int, shared bool) *Pipeline {
	t.Helper()
	dev := gpusim.MustNewDevice(gpusim.DefaultConfig())
	p := index.Params{Rho: 3, Omega: 8, ELV: []int{16, 24, 40}}
	ix, err := index.New(dev, hist, p)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	pl, err := NewPipeline(ix, PipelineConfig{
		EKV:            []int{4, 8},
		Index:          p,
		Horizon:        1,
		Factory:        func() Predictor { return NewGP() },
		PredictWorkers: workers,
		SharedHyper:    shared,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestParallelMatchesSequentialBitwise is the tentpole's determinism
// contract: the Prediction Step must produce bit-identical posteriors
// and auto-tuning trajectories at any worker count.
func TestParallelMatchesSequentialBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	all := seasonal(rng, 530)
	warm := 500
	seq := workerPipeline(t, all[:warm], 1, false)
	par := workerPipeline(t, all[:warm], 4, false)

	for i := warm; i < len(all); i++ {
		a, err := seq.Predict(1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Predict(1)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("step %d: sequential %+v != parallel %+v", i-warm, a, b)
		}
		if err := seq.Observe(all[i]); err != nil {
			t.Fatal(err)
		}
		if err := par.Observe(all[i]); err != nil {
			t.Fatal(err)
		}
	}
	sa, sb := seq.Ensemble().ExportState(), par.Ensemble().ExportState()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("cell %d state diverged: %+v vs %+v", i, sa[i], sb[i])
		}
	}
}

// TestPredictMultiParallelDeterministic checks PredictMultiTraced under
// concurrent cell fits: identical outputs, pending updates appended in
// horizon order, and the trace's span sequence (names and details)
// independent of the worker count.
func TestPredictMultiParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	all := seasonal(rng, 520)
	warm := 500
	seq := workerPipeline(t, all[:warm], 1, false)
	par := workerPipeline(t, all[:warm], 4, false)
	hs := []int{1, 3, 6}

	for step := 0; step < 6; step++ {
		trSeq := obs.NewTrace("seq", hs...)
		trPar := obs.NewTrace("par", hs...)
		a, err := seq.PredictMultiTraced(hs, trSeq)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.PredictMultiTraced(hs, trPar)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range hs {
			if a[h] != b[h] {
				t.Fatalf("step %d h=%d: %+v vs %+v", step, h, a[h], b[h])
			}
		}
		if seq.PendingUpdates() != par.PendingUpdates() {
			t.Fatalf("step %d: pending %d vs %d", step, seq.PendingUpdates(), par.PendingUpdates())
		}
		if len(trSeq.Spans) != len(trPar.Spans) {
			t.Fatalf("step %d: span counts %d vs %d", step, len(trSeq.Spans), len(trPar.Spans))
		}
		for i := range trSeq.Spans {
			if trSeq.Spans[i].Name != trPar.Spans[i].Name || trSeq.Spans[i].Detail != trPar.Spans[i].Detail {
				t.Fatalf("step %d span %d: (%s, %s) vs (%s, %s)", step, i,
					trSeq.Spans[i].Name, trSeq.Spans[i].Detail,
					trPar.Spans[i].Name, trPar.Spans[i].Detail)
			}
		}
		truth := all[warm] // same value fed to both
		if err := seq.Observe(truth); err != nil {
			t.Fatal(err)
		}
		if err := par.Observe(truth); err != nil {
			t.Fatal(err)
		}
	}
	sa, sb := seq.Ensemble().ExportState(), par.Ensemble().ExportState()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("cell %d state diverged: %+v vs %+v", i, sa[i], sb[i])
		}
	}
}

// TestSharedHyperAccuracyDelta quantifies the accuracy cost of the
// opt-in SharedHyper approximation against default per-cell training on
// the same stream (the EXPERIMENTS.md "SharedHyper accuracy delta"
// block regenerates its numbers from this test's -v output).
func TestSharedHyperAccuracyDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	all := seasonal(rng, 560)
	warm := 500
	def := workerPipeline(t, all[:warm], 1, false)
	sh := workerPipeline(t, all[:warm], 1, true)

	var maeDef, maeSh, meanDelta, maxDelta float64
	steps := 0
	for i := warm; i < len(all); i++ {
		a, err := def.Predict(1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sh.Predict(1)
		if err != nil {
			t.Fatal(err)
		}
		maeDef += math.Abs(a.Mean - all[i])
		maeSh += math.Abs(b.Mean - all[i])
		d := math.Abs(a.Mean - b.Mean)
		meanDelta += d
		if d > maxDelta {
			maxDelta = d
		}
		if err := def.Observe(all[i]); err != nil {
			t.Fatal(err)
		}
		if err := sh.Observe(all[i]); err != nil {
			t.Fatal(err)
		}
		steps++
	}
	n := float64(steps)
	t.Logf("default MAE %.5f, SharedHyper MAE %.5f, mean |Δmean| %.5f, max |Δmean| %.5f over %d steps",
		maeDef/n, maeSh/n, meanDelta/n, maxDelta, steps)
	// The approximation must stay in the same accuracy regime: allow at
	// most a 50%% relative MAE regression on clean seasonal data.
	if maeSh > maeDef*1.5 && maeSh/n > 0.05 {
		t.Fatalf("SharedHyper MAE %.5f too far above default %.5f", maeSh/n, maeDef/n)
	}
}

// TestSharedHyperPipeline exercises the opt-in SharedHyper mode end to
// end: predictions stay valid and accurate on clean seasonal data, and
// the smaller-k cells actually reuse prefixes of the shared Cholesky
// factor.
func TestSharedHyperPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	all := seasonal(rng, 520)
	warm := 500
	pl := workerPipeline(t, all[:warm], 0, true)

	before := gp.SnapshotStats()
	var absErr float64
	for i := warm; i < len(all); i++ {
		pred, err := pl.Predict(1)
		if err != nil {
			t.Fatal(err)
		}
		if !pred.Valid() {
			t.Fatalf("invalid prediction %+v", pred)
		}
		absErr += math.Abs(pred.Mean - all[i])
		if err := pl.Observe(all[i]); err != nil {
			t.Fatal(err)
		}
	}
	after := gp.SnapshotStats()
	if after.PrefixReuses == before.PrefixReuses {
		t.Fatal("SharedHyper run should reuse Cholesky prefixes for smaller-k cells")
	}
	if after.Columns == before.Columns {
		t.Fatal("SharedHyper run should materialize shared columns")
	}
	mae := absErr / 20
	if mae > 0.3 {
		t.Fatalf("SharedHyper MAE %v too high on clean seasonal data", mae)
	}
}

// TestPooledMatchesUnpooledBitwise extends the determinism contract to
// the slab allocator: with memsys pooling on, every posterior and the
// full auto-tuning trajectory must be bit-identical to a run with
// pooling off (plain make), at any worker count. Pooled Gets return
// zeroed slabs, so this holds by construction — the test keeps it held.
func TestPooledMatchesUnpooledBitwise(t *testing.T) {
	was := memsys.Enabled()
	defer memsys.SetEnabled(was)

	rng := rand.New(rand.NewSource(23))
	all := seasonal(rng, 520)
	warm := 500

	run := func(pooled bool, workers int) ([]Prediction, []interface{}) {
		memsys.SetEnabled(pooled)
		pl := workerPipeline(t, all[:warm], workers, false)
		var out []Prediction
		for i := warm; i < len(all); i++ {
			f, err := pl.Predict(1)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, f)
			if err := pl.Observe(all[i]); err != nil {
				t.Fatal(err)
			}
		}
		st := pl.Ensemble().ExportState()
		anyState := make([]interface{}, len(st))
		for i := range st {
			anyState[i] = st[i]
		}
		return out, anyState
	}

	refF, refS := run(false, 1)
	for _, workers := range []int{1, 4} {
		gotF, gotS := run(true, workers)
		for i := range refF {
			if gotF[i] != refF[i] {
				t.Fatalf("workers=%d step %d: pooled %+v != unpooled %+v", workers, i, gotF[i], refF[i])
			}
		}
		for i := range refS {
			if gotS[i] != refS[i] {
				t.Fatalf("workers=%d cell %d: pooled state %+v != unpooled %+v", workers, i, gotS[i], refS[i])
			}
		}
	}
}
