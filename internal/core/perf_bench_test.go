package core

import (
	"math"
	"math/rand"
	"testing"

	"smiler/internal/gpusim"
	"smiler/internal/index"
)

// perf_bench_test.go holds the machine-readable perf trajectory of the
// Prediction and Observe hot paths (make bench-json → BENCH_predict.json).
// Unlike the paper-shape benches in the repo root, these run the
// pipeline directly at the paper's default 3×3 ensemble so the
// Prediction Step (CellFitSec-dominated) is measured without serving-
// layer noise.

// benchHistory synthesizes the same seasonal regime the pipeline tests
// use, long enough for the default ELV={32,64,96} master query.
func benchHistory(n int) []float64 {
	rng := rand.New(rand.NewSource(42))
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(2*math.Pi*float64(i)/48) +
			0.4*math.Sin(2*math.Pi*float64(i)/12) +
			rng.NormFloat64()*0.05
	}
	return out
}

// newBenchPipeline builds the paper-default 3×3 GP pipeline over a
// fresh simulated device.
func newBenchPipeline(b *testing.B, workers int, factory PredictorFactory) *Pipeline {
	return newBenchPipelineShared(b, workers, factory, false)
}

func newBenchPipelineShared(b *testing.B, workers int, factory PredictorFactory, shared bool) *Pipeline {
	b.Helper()
	dev := gpusim.MustNewDevice(gpusim.DefaultConfig())
	p := index.DefaultParams()
	ix, err := index.New(dev, benchHistory(800), p)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ix.Close() })
	cfg := DefaultPipelineConfig()
	cfg.Index = p
	cfg.PredictWorkers = workers
	cfg.SharedHyper = shared
	if factory != nil {
		cfg.Factory = factory
	}
	pl, err := NewPipeline(ix, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return pl
}

// runPredictBench drives one Predict per iteration and reports the
// Prediction Step split as custom metrics alongside ns/op.
func runPredictBench(b *testing.B, pl *Pipeline) {
	if _, err := pl.Predict(1); err != nil { // prime prevNN + warm starts
		b.Fatal(err)
	}
	pl.pending = pl.pending[:0]
	b.ReportAllocs()
	b.ResetTimer()
	var predictSec, cellFitSec, searchSec float64
	for i := 0; i < b.N; i++ {
		if _, err := pl.Predict(1); err != nil {
			b.Fatal(err)
		}
		t := pl.Timing()
		predictSec += t.PredictSec
		cellFitSec += t.CellFitSec
		searchSec += t.SearchSec
		pl.pending = pl.pending[:0] // no Observe: don't let maturity queue grow
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(predictSec/n*1e9, "predict-step-ns/op")
	b.ReportMetric(cellFitSec/n*1e9, "cell-fit-ns/op")
	b.ReportMetric(searchSec/n*1e9, "search-ns/op")
}

// BenchmarkPredict measures one full Predict (Search Step + Prediction
// Step) at the paper's default 3×3 GP ensemble. The predict-step-ns/op
// metric isolates the Prediction Step — the CellFitSec-dominated path
// the shared-computation work targets.
func BenchmarkPredict(b *testing.B) {
	runPredictBench(b, newBenchPipeline(b, 0, nil))
}

// BenchmarkPredictSequential pins the Prediction Step to one worker —
// the reference the parallel path must match numerically, and the
// apples-to-apples view of the pure algorithmic sharing.
func BenchmarkPredictSequential(b *testing.B) {
	runPredictBench(b, newBenchPipeline(b, 1, nil))
}

// BenchmarkPredictSharedHyper measures the opt-in SharedHyper mode:
// one hyperparameter fit per column at the largest k, prefix-Cholesky
// reuse for the smaller-k cells.
func BenchmarkPredictSharedHyper(b *testing.B) {
	runPredictBench(b, newBenchPipelineShared(b, 0, nil, true))
}

// BenchmarkPredictMulti measures PredictMulti over a 3-horizon ladder
// (one shared Search Step, one Prediction Step per horizon).
func BenchmarkPredictMulti(b *testing.B) {
	pl := newBenchPipeline(b, 0, nil)
	hs := []int{1, 3, 6}
	if _, err := pl.PredictMulti(hs); err != nil {
		b.Fatal(err)
	}
	pl.pending = pl.pending[:0]
	b.ReportAllocs()
	b.ResetTimer()
	var predictSec float64
	for i := 0; i < b.N; i++ {
		if _, err := pl.PredictMulti(hs); err != nil {
			b.Fatal(err)
		}
		predictSec += pl.Timing().PredictSec
		pl.pending = pl.pending[:0]
	}
	b.StopTimer()
	b.ReportMetric(predictSec/float64(b.N)*1e9, "predict-step-ns/op")
}

// BenchmarkObserve measures the Observe path — self-adaptive reweight
// of one matured prediction plus the incremental index advance — with
// the reweight queue refilled outside the pipeline each iteration
// (white-box) so every Observe pays the full auto-tuning cost.
func BenchmarkObserve(b *testing.B) {
	pl := newBenchPipeline(b, 0, func() Predictor { return NewAR() })
	if _, err := pl.Predict(1); err != nil {
		b.Fatal(err)
	}
	preds := pl.pending[0].preds
	pl.pending = pl.pending[:0]
	vals := benchHistory(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl.pending = append(pl.pending, pendingUpdate{target: pl.ix.Len(), preds: preds})
		if err := pl.Observe(vals[i%len(vals)]); err != nil {
			b.Fatal(err)
		}
	}
}
