// Command smiler-datagen emits the synthetic sensor corpora as CSV
// (one column per sensor, one row per time step) so external tools can
// inspect or reuse them.
//
// Usage:
//
//	smiler-datagen -kind road -sensors 4 -days 14 > road.csv
//	smiler-datagen -kind mall -sensors 2 -dups 3 -seed 7 -o mall.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"smiler/internal/datasets"
)

func main() {
	var (
		kindName = flag.String("kind", "road", "corpus kind: road|mall|net")
		sensors  = flag.Int("sensors", 4, "number of distinct sensors")
		dups     = flag.Int("dups", 0, "duplicates per sensor (paper-style ×40/×1024)")
		days     = flag.Int("days", 14, "days of data per sensor")
		seed     = flag.Int64("seed", 1, "generator seed")
		outPath  = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if err := run(*kindName, *sensors, *dups, *days, *seed, *outPath); err != nil {
		fmt.Fprintln(os.Stderr, "smiler-datagen:", err)
		os.Exit(1)
	}
}

func run(kindName string, sensors, dups, days int, seed int64, outPath string) error {
	var kind datasets.Kind
	switch strings.ToLower(kindName) {
	case "road":
		kind = datasets.Road
	case "mall":
		kind = datasets.Mall
	case "net":
		kind = datasets.Net
	default:
		return fmt.Errorf("unknown kind %q", kindName)
	}
	series, err := datasets.Generate(datasets.Config{
		Kind: kind, Sensors: sensors, Duplicates: dups, Days: days, Seed: seed,
	})
	if err != nil {
		return err
	}

	out := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	defer w.Flush()

	ids := make([]string, len(series))
	for i, s := range series {
		ids[i] = s.ID()
	}
	if _, err := fmt.Fprintln(w, strings.Join(ids, ",")); err != nil {
		return err
	}
	n := series[0].Len()
	row := make([]string, len(series))
	for t := 0; t < n; t++ {
		for i, s := range series {
			row[i] = strconv.FormatFloat(s.At(t), 'g', -1, 64)
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
