package load

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"smiler"
	"smiler/internal/datasets"
	"smiler/internal/server"
)

// bootNode starts one in-process smiler-server with a small AR
// configuration (fast enough that a sub-second loader run completes
// thousands of ops).
func bootNode(t *testing.T) *httptest.Server {
	t.Helper()
	cfg := smiler.DefaultConfig()
	cfg.Rho = 3
	cfg.Omega = 8
	cfg.ELV = []int{16, 24, 40}
	cfg.EKV = []int{4, 8}
	cfg.Predictor = smiler.PredictorAR
	sys, err := smiler.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	srv, err := server.New(sys)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func testLoadConfig(url string) Config {
	return Config{
		Targets:          []string{url},
		Sensors:          50,
		Kind:             datasets.Road,
		Seed:             7,
		History:          64, // min is ELV_max+ω = 48 under the test config
		Prefix:           "lt",
		ObserveWeight:    5,
		ForecastWeight:   1,
		Horizons:         []WeightedHorizon{{H: 1, W: 3}, {H: 2, W: 1}},
		Concurrency:      4,
		Duration:         400 * time.Millisecond,
		SetupConcurrency: 8,
		ProgressEvery:    0,
	}
}

// TestLoaderClosedLoopEndToEnd is the subsystem's core regression: a
// real (in-process) server, a real setup + closed-loop run, and a
// report whose numbers must hang together.
func TestLoaderClosedLoopEndToEnd(t *testing.T) {
	ts := bootNode(t)
	cfg := testLoadConfig(ts.URL)
	cfg.SLOs = mustSLOs(t, "observe.p99<=30s,forecast.p99<=30s,error_rate<=0,observe.p50<=1ns")

	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	setup, err := l.Setup(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if setup.Registered != cfg.Sensors || setup.Errors != 0 {
		t.Fatalf("setup = %+v, want %d registered and no errors", setup, cfg.Sensors)
	}

	report, err := l.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Schema != ReportSchema {
		t.Fatalf("schema = %q", report.Schema)
	}
	steady, ok := report.Phases["steady"]
	if !ok {
		t.Fatal("no steady phase in report")
	}
	obs := steady.Ops["observe"]
	fc := steady.Ops["forecast"]
	if obs.Count == 0 || fc.Count == 0 {
		t.Fatalf("mixed run produced observe=%d forecast=%d", obs.Count, fc.Count)
	}
	if obs.Errors != 0 || fc.Errors != 0 {
		t.Fatalf("errors against a healthy server: observe=%d forecast=%d", obs.Errors, fc.Errors)
	}
	if obs.P50Ms <= 0 || obs.P99Ms < obs.P50Ms {
		t.Fatalf("observe quantiles incoherent: %+v", obs)
	}
	// Round-robin sensor picking: any run with ≥ Sensors ops touches
	// the whole population.
	if report.DistinctSensors != cfg.Sensors {
		t.Fatalf("distinct sensors = %d, want %d", report.DistinctSensors, cfg.Sensors)
	}
	// The absurd observe.p50<=1ns objective must be the one violation;
	// the generous ones must pass.
	if report.Violations != 1 {
		t.Fatalf("violations = %d, want exactly the impossible p50 bound; SLOs: %+v",
			report.Violations, report.SLOs)
	}

	// Setup is idempotent: a second pass finds everything existing.
	l2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := l2.Setup(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if again.Existing != cfg.Sensors || again.Registered != 0 {
		t.Fatalf("re-setup = %+v, want all existing", again)
	}

	if err := l.Teardown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := l.Teardown(ctx); err != nil {
		t.Fatalf("teardown must tolerate already-removed sensors: %v", err)
	}
}

// TestLoaderOpenLoopPoisson exercises the scheduled-arrival path:
// dispatcher, in-flight worker pool, due-time latency accounting.
func TestLoaderOpenLoopPoisson(t *testing.T) {
	ts := bootNode(t)
	cfg := testLoadConfig(ts.URL)
	cfg.Arrival = Poisson
	cfg.Rate = 300
	cfg.Ramp = 200 * time.Millisecond
	cfg.Duration = 600 * time.Millisecond

	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := l.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	report, err := l.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rampPhase, ok := report.Phases["ramp"]
	if !ok {
		t.Fatal("ramp configured but missing from report")
	}
	steady := report.Phases["steady"]
	if steady.Total.Count == 0 {
		t.Fatal("no steady-phase ops")
	}
	// 300/s over ~0.6s steady ≈ 180 expected arrivals; allow wide
	// Poisson + scheduling slack but reject an order-of-magnitude miss.
	if steady.Total.Count < 40 {
		t.Fatalf("steady ops = %d, far below the 300/s target", steady.Total.Count)
	}
	// The ramp scales load down, never up past the target.
	if rampPhase.DurationS <= 0 {
		t.Fatalf("ramp phase duration %v", rampPhase.DurationS)
	}
	if steady.Total.Errors != 0 {
		t.Fatalf("open-loop errors: %d", steady.Total.Errors)
	}
}

// TestLoaderRunCancel: canceling mid-run still yields a report over
// what ran, with the context error surfaced.
func TestLoaderRunCancel(t *testing.T) {
	ts := bootNode(t)
	cfg := testLoadConfig(ts.URL)
	cfg.Duration = 10 * time.Second

	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Setup(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	report, err := l.Run(ctx)
	if err == nil {
		t.Fatal("canceled run must surface the context error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if report == nil || report.Phases["steady"].Total.Count == 0 {
		t.Fatal("canceled run must still report what ran")
	}
}

// TestLoaderSetupFailsWithoutServer: a dead target is an error, not a
// zero-op "success".
func TestLoaderSetupFailsWithoutServer(t *testing.T) {
	ts := httptest.NewServer(nil)
	url := ts.URL
	ts.Close()

	cfg := testLoadConfig(url)
	cfg.Sensors = 5
	cfg.SetupConcurrency = 2
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Setup(context.Background()); err == nil {
		t.Fatal("setup against a dead server must fail")
	}
}

func mustSLOs(t *testing.T, s string) []SLO {
	t.Helper()
	slos, err := ParseSLOs(s)
	if err != nil {
		t.Fatal(err)
	}
	return slos
}
