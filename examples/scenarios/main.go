// Scenario simulation — the advanced, low-level API: instead of the
// smiler.System facade, drive the SMiLer Index and the exact GP
// directly to draw *correlated multi-horizon trajectories* from the
// query-dependent posterior. Point forecasts answer "what is the most
// likely value at t+h"; sampled scenarios answer planner questions
// like "what is the chance the next two hours stay below capacity
// end-to-end", which needs the joint distribution, not the marginals.
//
//	go run ./examples/scenarios
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"smiler/internal/datasets"
	"smiler/internal/gp"
	"smiler/internal/gpusim"
	"smiler/internal/index"
	"smiler/internal/timeseries"
)

const (
	warm     = 2400 // history points
	horizon  = 12   // 1 hour of 5-minute samples
	nSamples = 400  // posterior trajectories to draw
	capGbit  = 1.29 // planning threshold (Gbit per interval)
)

func main() {
	series, err := datasets.Generate(datasets.Config{
		Kind: datasets.Net, Sensors: 1, Days: 9, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	raw := series[0].Values()
	norm, err := timeseries.NewNormalizer(raw[:warm])
	if err != nil {
		log.Fatal(err)
	}
	z := make([]float64, warm)
	for i := range z {
		z[i] = norm.Apply(raw[i])
	}

	// Search Step, by hand: one SMiLer Index, one suffix kNN query.
	dev := gpusim.MustNewDevice(gpusim.DefaultConfig())
	ix, err := index.New(dev, z, index.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()
	const d, k = 64, 32
	results, err := ix.Search(k, horizon)
	if err != nil {
		log.Fatal(err)
	}
	var neighbors []index.Neighbor
	for _, item := range results {
		if item.D == d {
			neighbors = item.Neighbors
		}
	}
	fmt.Printf("retrieved %d neighbours for the d=%d suffix\n", len(neighbors), d)

	// Prediction Step, by hand: one GP over the kNN data, trained by
	// LOO conjugate gradients, then joint sampling at a ladder of
	// pseudo-inputs (the neighbour segments shifted per horizon).
	x := make([][]float64, len(neighbors))
	y := make([]float64, len(neighbors))
	for i, nb := range neighbors {
		seg := make([]float64, d)
		for j := 0; j < d; j++ {
			seg[j] = ix.Value(nb.T + j)
		}
		x[i] = seg
		y[i] = ix.Value(nb.T + d - 1 + 1) // one-step label
	}
	res, err := gp.Optimize(x, y, gp.HeuristicHyper(x, y), 20)
	if err != nil {
		log.Fatal(err)
	}
	model, err := gp.Fit(x, y, res.Hyper)
	if err != nil {
		log.Fatal(err)
	}

	// Probe inputs: the current suffix and its h−1 step extensions
	// approximated by neighbour-consensus rolling (simple recursive
	// closure for the demo).
	probes := make([][]float64, horizon)
	cur := append([]float64(nil), z[len(z)-d:]...)
	for h := 0; h < horizon; h++ {
		probes[h] = append([]float64(nil), cur...)
		mean, _, err := model.Predict(cur)
		if err != nil {
			log.Fatal(err)
		}
		cur = append(cur[1:], mean)
	}

	rng := rand.New(rand.NewSource(7))
	exceed := 0
	peaks := make([]float64, 0, nSamples)
	for s := 0; s < nSamples; s++ {
		traj, err := model.PosteriorSample(probes, rng.NormFloat64)
		if err != nil {
			log.Fatal(err)
		}
		peak := math.Inf(-1)
		for _, v := range traj {
			raw := norm.Invert(v) / 2e9 // back to Gbit-ish units
			if raw > peak {
				peak = raw
			}
		}
		peaks = append(peaks, peak)
		if peak > capGbit {
			exceed++
		}
	}
	sort.Float64s(peaks)
	fmt.Printf("\n%d joint trajectories over the next %d steps:\n", nSamples, horizon)
	fmt.Printf("  median peak load: %.3f Gbit\n", peaks[len(peaks)/2])
	fmt.Printf("  95th pct peak:    %.3f Gbit\n", peaks[len(peaks)*95/100])
	fmt.Printf("  P(peak > %.2f Gbit within the hour) = %.1f%%\n",
		capGbit, 100*float64(exceed)/float64(nSamples))
	fmt.Println("\n(the marginal forecast alone cannot answer that last question)")
}
