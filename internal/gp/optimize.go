package gp

import (
	"fmt"
	"math"

	"smiler/internal/mat"
)

// Optimization works on ψ = log Θ so positivity is automatic; ψ is
// clamped to keep the covariance numerically sane for z-normalized
// data.
const (
	logLo = -9.2 // θ ≥ ~1e-4
	logHi = 6.9  // θ ≤ ~1e3
)

// OptimizeResult reports the outcome of hyperparameter optimization.
type OptimizeResult struct {
	Hyper Hyper   // optimized hyperparameters
	LOO   float64 // leave-one-out log likelihood at Hyper
	Evals int     // objective/gradient evaluations spent
}

type logHyper [3]float64 // log θ₀, log θ₁, log θ₂

func toLog(h Hyper) logHyper {
	return logHyper{math.Log(h.Signal), math.Log(h.Length), math.Log(h.Noise)}
}

func (p logHyper) hyper() Hyper {
	return Hyper{Signal: math.Exp(p[0]), Length: math.Exp(p[1]), Noise: math.Exp(p[2])}
}

func (p logHyper) clamp() logHyper {
	for i := range p {
		if p[i] < logLo {
			p[i] = logLo
		}
		if p[i] > logHi {
			p[i] = logHi
		}
	}
	return p
}

// looValueGrad evaluates the LOO log likelihood and its gradient with
// respect to the log hyperparameters [Rasmussen & Williams 2006,
// Eqn. 5.13]. The naive form needs one O(n³) product C⁻¹·∂C/∂ψ_j per
// hyperparameter; both terms of the gradient are linear in ∂C, so with
//
//	v = C⁻¹·(α ⊘ diag C⁻¹),  c_i = ½(1+α_i²/[C⁻¹]_ii)/[C⁻¹]_ii,
//	G = v·αᵀ − C⁻¹·diag(c)·C⁻¹,
//
// every gradient collapses to ∂ll/∂ψ_j = Σ_ab G_ab·(∂C/∂ψ_j)_ab — a
// single shared O(n³) product plus one O(n²) trace per hyperparameter,
// with K_SE entries read back from the retained covariance instead of
// re-exponentiating.
// Every transient lives in the caller's evalScratch: one ascend()
// acquires two memsys slabs and reuses them across all evaluations of
// the line search, which removes ~10 heap allocations per evaluation
// from the predict hot path.
func looValueGrad(ts trainSet, hp Hyper, s *evalScratch) (float64, [3]float64, error) {
	var grad [3]float64
	if err := s.fit(ts, hp); err != nil {
		return 0, grad, err
	}
	if err := s.chol.InverseTo(s.kinv, s.linv); err != nil {
		return 0, grad, fmt.Errorf("%w: %v", ErrCondition, err)
	}
	kinv := s.kinv
	n := len(ts.y)
	alpha := s.alpha

	ll, err := looSum(ts.y, alpha, kinv)
	if err != nil {
		return 0, grad, err
	}

	w := s.w         // α ⊘ diag C⁻¹
	cdiag := s.cdiag // curvature weights c_i
	for i := 0; i < n; i++ {
		kii := kinv.At(i, i)
		if kii <= 0 {
			return 0, grad, fmt.Errorf("%w: nonpositive precision diagonal", ErrCondition)
		}
		w[i] = alpha[i] / kii
		cdiag[i] = 0.5 * (1 + alpha[i]*alpha[i]/kii) / kii
	}
	if err := mat.MulVecTo(s.v, kinv, w); err != nil { // C⁻¹ is symmetric
		return 0, grad, err
	}
	v := s.v
	// M = C⁻¹·diag(c)·C⁻¹ — the one shared O(n³) product.
	b := s.b
	for i := 0; i < n; i++ {
		brow := b.Row(i)
		krow := kinv.Row(i)
		for j := 0; j < n; j++ {
			brow[j] = krow[j] * cdiag[j]
		}
	}
	if err := mat.MulTo(s.mm, b, kinv); err != nil {
		return 0, grad, err
	}
	mm := s.mm

	// One pass over the upper triangle accumulates all three traces.
	// ∂C/∂log θ₀ = 2·K_SE, ∂C/∂log θ₁ = K_SE ∘ (r²/θ₁²) (zero on the
	// diagonal), ∂C/∂log θ₂ = 2θ₂²·I. Off-diagonal covariance entries
	// are exactly K_SE; on the diagonal K_SE = θ₀².
	sig2 := hp.Signal * hp.Signal
	len2 := hp.Length * hp.Length
	noise2 := hp.Noise * hp.Noise
	cov := s.cov
	var gSig, gLen, gNoise float64
	for a := 0; a < n; a++ {
		covRow := cov.Row(a)
		mmRow := mm.Row(a)
		gaa := v[a]*alpha[a] - mmRow[a]
		gSig += gaa * 2 * sig2
		gNoise += gaa * 2 * noise2
		for bb := a + 1; bb < n; bb++ {
			g2 := v[a]*alpha[bb] - mmRow[bb] + v[bb]*alpha[a] - mm.At(bb, a)
			kse := covRow[bb]
			gSig += g2 * 2 * kse
			gLen += g2 * kse * ts.r2(a, bb) / len2
		}
	}
	grad[0], grad[1], grad[2] = gSig, gLen, gNoise
	return ll, grad, nil
}

// Optimize maximizes the LOO log likelihood starting from init, using
// Polak–Ribière conjugate gradients with an Armijo backtracking line
// search, for at most maxIter iterations. A failed covariance
// factorization during the search is treated as −∞ (the step is
// rejected). This is the "online training" of Section 5.2.2: with the
// tiny semi-lazy training sets each evaluation is O(k³) with k ≤ 128.
func Optimize(x [][]float64, y []float64, init Hyper, maxIter int) (OptimizeResult, error) {
	if err := init.Validate(); err != nil {
		return OptimizeResult{}, err
	}
	if maxIter < 0 {
		return OptimizeResult{}, fmt.Errorf("gp: negative maxIter %d", maxIter)
	}
	res, err := ascend(directSet(x, y), init, maxIter, looValueGrad)
	statOptimizeEvals.Add(uint64(res.Evals))
	return res, err
}
