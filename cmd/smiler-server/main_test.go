package main

import (
	"math"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"smiler"
	"smiler/internal/ingest"
	"smiler/internal/server"
)

func smallCfg() smiler.Config {
	cfg := smiler.DefaultConfig()
	cfg.Rho = 3
	cfg.Omega = 8
	cfg.ELV = []int{16, 24}
	cfg.EKV = []int{4}
	cfg.Predictor = smiler.PredictorAR
	return cfg
}

func TestLoadOrNewFreshAndMissingFile(t *testing.T) {
	sys, err := loadOrNew(smallCfg(), "")
	if err != nil {
		t.Fatal(err)
	}
	sys.Close()
	sys, err = loadOrNew(smallCfg(), filepath.Join(t.TempDir(), "missing.gob"))
	if err != nil {
		t.Fatal(err)
	}
	sys.Close()
}

func TestSaveAndReloadCheckpoint(t *testing.T) {
	cfg := smallCfg()
	sys, err := smiler.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hist := make([]float64, 300)
	for i := range hist {
		hist[i] = 10 + 3*math.Sin(2*math.Pi*float64(i)/24)
	}
	if err := sys.AddSensor("s", hist); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "state.gob")
	if err := saveCheckpoint(sys, path); err != nil {
		t.Fatal(err)
	}
	sys.Close()
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file should be renamed away")
	}

	restored, err := loadOrNew(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if ids := restored.Sensors(); len(ids) != 1 || ids[0] != "s" {
		t.Fatalf("restored sensors = %v", ids)
	}
	if _, err := restored.Predict("s", 1); err != nil {
		t.Fatal(err)
	}
}

func TestLoadOrNewCorruptCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.gob")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadOrNew(smallCfg(), path); err == nil {
		t.Fatal("corrupt checkpoint should fail")
	}
}

func TestRunRejectsBadPredictor(t *testing.T) {
	if err := run(options{addr: ":0", predictor: "nope", devices: 1, backpressure: "block"}); err == nil {
		t.Fatal("unknown predictor should fail")
	}
}

func TestRunRejectsBadBackpressure(t *testing.T) {
	if err := run(options{addr: ":0", predictor: "ar", devices: 1, backpressure: "nope"}); err == nil {
		t.Fatal("unknown backpressure policy should fail")
	}
}

// TestRunLifecycle drives the real server loop end to end: start,
// register a sensor and stream observations over HTTP, then SIGTERM —
// and assert that the pipeline was drained before the checkpoint was
// written, i.e. the restored system contains every accepted
// observation.
func TestRunLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("signal-driven lifecycle test")
	}
	path := filepath.Join(t.TempDir(), "state.gob")
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(options{
			addr:         "127.0.0.1:0",
			predictor:    "ar",
			devices:      1,
			checkpoint:   path,
			interval:     time.Minute,
			shards:       2,
			queue:        64,
			backpressure: "block",
			onReady:      func(addr string) { ready <- addr },
		})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}

	cl, err := server.NewClient("http://"+addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	const histLen, observed, bulked = 300, 7, 5
	hist := make([]float64, histLen)
	for i := range hist {
		hist[i] = 10 + 3*math.Sin(2*math.Pi*float64(i)/24)
	}
	if err := cl.AddSensor("s", hist); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < observed; i++ {
		if err := cl.Observe("s", hist[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Bulk ingest endpoint, end to end through the real server loop.
	bulk := make([]ingest.Observation, bulked)
	for i := range bulk {
		bulk[i] = ingest.Observation{Sensor: "s", Value: hist[observed+i]}
	}
	res, err := cl.ObserveMany(bulk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != bulked || res.Dropped != 0 || len(res.Failed) != 0 {
		t.Fatalf("bulk result = %+v", res)
	}
	if st, err := cl.PipelineStats(); err != nil || st.Shards != 2 {
		t.Fatalf("pipeline stats = %+v, err %v", st, err)
	}

	// Give signal.Notify time to arm before the termination signal
	// arrives (otherwise it would kill the test binary itself).
	time.Sleep(500 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}

	// The checkpoint must contain the full drained stream.
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	defer f.Close()
	restored, err := smiler.Load(f, smiler.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	n, err := restored.HistoryLen("s")
	if err != nil {
		t.Fatal(err)
	}
	if n != histLen+observed+bulked {
		t.Fatalf("restored history %d points, want %d (pipeline not drained before checkpoint)", n, histLen+observed+bulked)
	}
}
