package index

import (
	"context"
	"math"
	"sort"
	"time"

	"smiler/internal/anytime"
	"smiler/internal/dtw"
	"smiler/internal/gpusim"
	"smiler/internal/memsys"
)

// Anytime configures progressive (deadline-aware) search. When Enabled,
// candidate verification proceeds in cost-ordered rounds — cheapest
// lower bounds (or learned-model-predicted distances) first — and an
// expired context deadline stops the rounds instead of aborting the
// search: the call returns the current best-so-far kNN set per item
// query plus quality counters in Stats(). With no deadline every round
// runs, every surviving candidate is verified with the same cutoff the
// fused exact pass uses, and the results are bit-identical to exact
// search.
type Anytime struct {
	// Enabled switches Search/SearchMulti/SearchRange to progressive
	// rounds.
	Enabled bool
	// Model, when non-nil, orders verification rounds by the learned
	// lower-bound layer's predicted true distance instead of the raw
	// lower bound, and is trained incrementally from every verified
	// (lower bound, distance) pair. It never changes which candidates
	// are verified or with what cutoff, so results stay bit-identical.
	Model *anytime.Model
}

// SetAnytime configures progressive search on the index.
func (ix *Index) SetAnytime(a Anytime) { ix.any = a }

// AnytimeConfig returns the current progressive-search configuration.
func (ix *Index) AnytimeConfig() Anytime { return ix.any }

// progMaxRoundChunks caps one round at this many verify chunks per item
// query. Rounds grow geometrically (one chunk, two, four, ...) up to
// the cap: early rounds are fine-grained so a tight deadline still
// completes a few, and the cap bounds deadline overshoot to one round
// of in-flight chunks.
const progMaxRoundChunks = 8

// topK tracks the running k smallest verified distances (ascending).
// It only backs the quality estimate; the returned neighbours come from
// the same block k-selection the exact path uses.
type topK struct {
	k int
	d []float64
}

// add inserts a finite distance, reporting whether it entered the set
// (displaced the current k-th or grew the set below k).
func (t *topK) add(v float64) bool {
	if t.k <= 0 || math.IsInf(v, 1) || math.IsNaN(v) {
		return false
	}
	if len(t.d) == t.k && v >= t.d[t.k-1] {
		return false
	}
	i := sort.SearchFloat64s(t.d, v)
	if len(t.d) < t.k {
		t.d = append(t.d, 0)
	}
	copy(t.d[i+1:], t.d[i:])
	t.d[i] = v
	return true
}

// kth returns the current k-th smallest distance, +Inf until k
// candidates have been found.
func (t *topK) kth() float64 {
	if len(t.d) < t.k {
		return math.Inf(1)
	}
	return t.d[t.k-1]
}

// progTask is one task's progressive verification state: its surviving
// candidates in cost order and the verified contiguous prefix.
type progTask struct {
	t     *verifyTask
	order []int // candidate positions, cost-ascending
	next  int   // order[:next] is verified
	top   topK
}

// verifyProgressive is the anytime counterpart of verifyFused: the
// threshold seeds prefill the output (they are the previous step's kNN
// set — an already-valid answer), the remaining surviving candidates
// are sorted by expected cost-to-usefulness (learned-model-predicted
// distance when available, raw lower bound otherwise) and verified in
// geometrically growing rounds, one fused launch per round. The context
// is checked between rounds: when the deadline fires the loop stops and
// each task keeps its best-so-far distances plus the quality counters
// the ProS-style estimate needs. Device or DTW errors still abort.
//
// With an unexpired context this verifies exactly the candidates the
// fused pass would, with the same cutoff, so the distance arrays — and
// therefore the selected neighbours — are bit-identical to exact mode.
func (ix *Index) verifyProgressive(ctx context.Context, tasks []*verifyTask, k int) error {
	inf := math.Inf(1)
	wallStart := time.Now()
	defer func() { ix.stats.VerifyWallSeconds += time.Since(wallStart).Seconds() }()
	before := ix.dev.SimSeconds()
	defer func() { ix.stats.VerifySimSeconds += ix.dev.SimSeconds() - before }()
	model := ix.any.Model
	useModel := model.Ready()

	pts := make([]*progTask, 0, len(tasks))
	for _, t := range tasks {
		n := len(t.lbs)
		t.dists = memsys.GetFloats(n)
		for i := range t.dists {
			t.dists[i] = inf
		}
		t.minUnverLB = inf
		pt := &progTask{t: t, top: topK{k: k}}
		if t.rangeMode {
			pt.top.k = 0
		}
		// Seed prefill: exact distances from the threshold phase. Each
		// seed has dist ≤ τ, so the τ-cutoff verification would compute
		// the identical value; skipping its round slot changes nothing.
		for _, s := range t.seeds {
			if s.t < 0 || s.t >= n || !t.keep(s.t) || !math.IsInf(t.dists[s.t], 1) {
				continue
			}
			t.dists[s.t] = s.dist
			t.kept++
			t.verified++
			pt.top.add(s.dist)
		}
		// Remaining survivors in cost order.
		for pos := 0; pos < n; pos++ {
			if !t.keep(pos) || !math.IsInf(t.dists[pos], 1) {
				continue
			}
			pt.order = append(pt.order, pos)
		}
		t.kept += len(pt.order)
		keys := make([]float64, len(pt.order))
		for i, pos := range pt.order {
			if useModel {
				keys[i] = model.Predict(t.lbs[pos])
			} else {
				keys[i] = t.lbs[pos]
			}
		}
		if useModel {
			ix.stats.LBModelHits += len(pt.order)
		}
		ord := pt.order
		sort.Sort(&costOrder{ord: ord, key: keys})
		pts = append(pts, pt)
	}

	rho := ix.p.Rho
	type progRef struct {
		pt     *progTask
		lo, hi int // range within pt.order
	}
	roundSize := verifyChunk
	deadline := false
	for !deadline {
		var refs []progRef
		for _, pt := range pts {
			hi := pt.next + roundSize
			if hi > len(pt.order) {
				hi = len(pt.order)
			}
			for lo := pt.next; lo < hi; lo += verifyChunk {
				chunkHi := lo + verifyChunk
				if chunkHi > hi {
					chunkHi = hi
				}
				refs = append(refs, progRef{pt, lo, chunkHi})
			}
		}
		if len(refs) == 0 {
			break // every task fully verified
		}
		ix.stats.Rounds++
		roundStart := time.Now()
		err := ix.dev.Launch(len(refs), func(blk *gpusim.Block) error {
			ref := refs[blk.ID]
			t := ref.pt.t
			d := t.d
			cnt := ref.hi - ref.lo
			if err := blk.AllocShared(8 * d); err != nil { // query resident
				return err
			}
			if err := blk.AllocShared(8 * dtw.CompressedScratchLen(rho)); err != nil {
				return err
			}
			scratch := dtw.GetCompressedScratch(rho)
			defer dtw.PutCompressedScratch(scratch)
			totalCols, maxCols := 0, 0
			for i := ref.lo; i < ref.hi; i++ {
				pos := ref.pt.order[i]
				dist, cols, err := dtw.DistanceCompressedAbandon(t.query, ix.c[pos:pos+d], rho, t.cutoff, scratch)
				if err != nil {
					return err
				}
				t.dists[pos] = dist
				totalCols += cols
				if cols > maxCols {
					maxCols = cols
				}
			}
			blk.GlobalAccess(totalCols)
			blk.ParallelCompute(cnt, maxCols*(2*rho+1)*6)
			return nil
		})
		ix.stats.RoundWallSeconds = append(ix.stats.RoundWallSeconds, time.Since(roundStart).Seconds())
		if err != nil {
			return err
		}
		// Deterministic host-side accounting, in cost order: quality
		// bookkeeping for the ProS estimate and incremental training of
		// the learned layer from every freshly verified pair.
		for _, pt := range pts {
			t := pt.t
			hi := pt.next + roundSize
			if hi > len(pt.order) {
				hi = len(pt.order)
			}
			for i := pt.next; i < hi; i++ {
				pos := pt.order[i]
				lb := t.lbs[pos]
				dist := t.dists[pos]
				model.Observe(lb, dist)
				if t.rangeMode {
					t.atRisk++
					if dist <= t.tau {
						t.flips++
					}
					continue
				}
				kth := pt.top.kth()
				if lb < kth || math.IsInf(kth, 1) {
					t.atRisk++
					if pt.top.add(dist) {
						t.flips++
					}
				}
			}
			t.verified += hi - pt.next
			pt.next = hi
		}
		if ctx.Err() != nil {
			deadline = true
		}
		if roundSize < progMaxRoundChunks*verifyChunk {
			roundSize *= 2
		}
	}

	// Per-task completion state for the quality aggregation.
	for _, pt := range pts {
		t := pt.t
		t.unfiltered = t.verified
		t.complete = pt.next == len(pt.order)
		if t.rangeMode {
			t.kthDist = t.tau
		} else {
			t.kthDist = pt.top.kth()
		}
		for _, pos := range pt.order[pt.next:] {
			lb := t.lbs[pos]
			if lb < t.minUnverLB {
				t.minUnverLB = lb
			}
			if lb < t.kthDist {
				t.remaining++
			}
		}
	}
	return nil
}

// costOrder sorts candidate positions by (key, position): the strict
// total order keeps rounds deterministic under any sort algorithm.
type costOrder struct {
	ord []int
	key []float64
}

func (c *costOrder) Len() int { return len(c.ord) }
func (c *costOrder) Less(i, j int) bool {
	if c.key[i] != c.key[j] {
		return c.key[i] < c.key[j]
	}
	return c.ord[i] < c.ord[j]
}
func (c *costOrder) Swap(i, j int) {
	c.ord[i], c.ord[j] = c.ord[j], c.ord[i]
	c.key[i], c.key[j] = c.key[j], c.key[i]
}

// finishQuality aggregates the per-task progressive counters into the
// search stats: worst case over item queries, so one starved column
// marks the whole search progressive. A no-op in exact mode.
func (ix *Index) finishQuality(tasks []*verifyTask) {
	if !ix.any.Enabled {
		return
	}
	q := aggregateQuality(tasks)
	ix.stats.Progressive = !q.Exact
	ix.stats.FracVerified = q.FracVerified
	ix.stats.LBGap = q.LBGap
	ix.stats.ProbExact = q.ProbExact
	if !q.Exact {
		totVerified := 0
		for _, t := range tasks {
			totVerified += t.verified
		}
		ix.stats.VerifiedAtDeadline = totVerified
	}
}

// aggregateQuality folds per-task progressive counters into one
// anytime.Quality describing the whole search (worst case over tasks).
func aggregateQuality(tasks []*verifyTask) anytime.Quality {
	q := anytime.Quality{Exact: true, FracVerified: 1, ProbExact: 1}
	totKept, totVerified := 0, 0
	for _, t := range tasks {
		totKept += t.kept
		totVerified += t.verified
		if t.complete {
			continue
		}
		// Sealed early: every unverified lower bound already exceeds the
		// k-th best-so-far distance, so the set is provably exact (up to
		// distance ties) even though verification stopped. Range mode
		// needs the strict comparison — a candidate at lb == ε can still
		// sit exactly on the radius.
		if t.minUnverLB > t.kthDist || (!t.rangeMode && t.minUnverLB >= t.kthDist) {
			continue
		}
		q.Exact = false
		gap := 1.0
		if !math.IsInf(t.kthDist, 1) && t.kthDist > 0 {
			gap = 1 - t.minUnverLB/t.kthDist
			if gap < 0 {
				gap = 0
			}
			if gap > 1 {
				gap = 1
			}
		}
		if gap > q.LBGap {
			q.LBGap = gap
		}
		if p := anytime.EstimateProbExact(t.flips, t.atRisk, t.remaining); p < q.ProbExact {
			q.ProbExact = p
		}
	}
	if totKept > 0 {
		q.FracVerified = float64(totVerified) / float64(totKept)
	}
	if q.Exact {
		q.FracVerified = 1
		q.LBGap = 0
		q.ProbExact = 1
	}
	return q
}
