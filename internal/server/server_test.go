package server

import (
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"smiler"
	"smiler/internal/ingest"
)

func testConfig() smiler.Config {
	cfg := smiler.DefaultConfig()
	cfg.Rho = 3
	cfg.Omega = 8
	cfg.ELV = []int{16, 24, 40}
	cfg.EKV = []int{4, 8}
	cfg.Predictor = smiler.PredictorAR
	return cfg
}

func seasonal(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 50 + 10*math.Sin(2*math.Pi*float64(i)/48) + rng.NormFloat64()*0.5
	}
	return out
}

func newTestServer(t *testing.T) (*httptest.Server, *Client, *smiler.System) {
	t.Helper()
	sys, err := smiler.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	srv, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	cl, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return ts, cl, sys
}

func TestNewRejectsNilSystem(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil system should fail")
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient("://bad", nil); err == nil {
		t.Fatal("invalid URL should fail")
	}
	if _, err := NewClient("/relative", nil); err == nil {
		t.Fatal("relative URL should fail")
	}
	if _, err := NewClient("http://localhost:1", nil); err != nil {
		t.Fatal(err)
	}
}

func TestHealthzAndStats(t *testing.T) {
	_, cl, _ := newTestServer(t)
	if err := cl.Healthz(); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sensors != 0 || st.DeviceTotal <= 0 || len(st.Devices) != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSensorLifecycleOverHTTP(t *testing.T) {
	_, cl, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(1))
	hist := seasonal(rng, 400)

	if err := cl.AddSensor("s1", hist[:380]); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddSensor("s1", hist[:380]); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("duplicate should 409, got %v", err)
	}
	ids, err := cl.Sensors()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "s1" {
		t.Fatalf("sensors = %v", ids)
	}

	f, err := cl.Forecast("s1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "s1" || f.Horizon != 1 || f.Variance <= 0 || f.Lo >= f.Hi {
		t.Fatalf("forecast = %+v", f)
	}
	if f.Mean < 30 || f.Mean > 70 {
		t.Fatalf("forecast mean %v not in raw units", f.Mean)
	}

	if err := cl.Observe("s1", hist[380]); err != nil {
		t.Fatal(err)
	}
	if err := cl.ObserveBatch("s1", hist[381:390]); err != nil {
		t.Fatal(err)
	}

	cells, err := cl.Ensemble("s1")
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 { // 2 EKV × 3 ELV
		t.Fatalf("got %d cells", len(cells))
	}
	var sum float64
	for i, c := range cells {
		sum += c.Weight
		if i > 0 && less(cells[i], cells[i-1]) {
			t.Fatal("cells not sorted")
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("weights sum %v", sum)
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sensors != 1 || st.DeviceUsed <= 0 {
		t.Fatalf("stats = %+v", st)
	}

	if err := cl.RemoveSensor("s1"); err != nil {
		t.Fatal(err)
	}
	if err := cl.RemoveSensor("s1"); err == nil {
		t.Fatal("double delete should fail")
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	ts, cl, _ := newTestServer(t)

	if _, err := cl.Forecast("nope", 1); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown sensor should 404, got %v", err)
	}
	if err := cl.Observe("nope", 1); err == nil {
		t.Fatal("unknown sensor observe should fail")
	}
	if err := cl.AddSensor("", nil); err == nil {
		t.Fatal("empty id should fail")
	}
	if err := cl.AddSensor("short", []float64{1, 2, 3}); err == nil {
		t.Fatal("short history should fail")
	}

	// Raw HTTP error paths the typed client can't produce.
	for _, tc := range []struct {
		method, path, body string
		wantStatus         int
	}{
		{http.MethodPut, "/healthz", "", http.StatusMethodNotAllowed},
		{http.MethodPut, "/stats", "", http.StatusMethodNotAllowed},
		{http.MethodPut, "/sensors", "", http.StatusMethodNotAllowed},
		{http.MethodGet, "/sensors/", "", http.StatusBadRequest},
		{http.MethodPatch, "/sensors/x", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/sensors", "{bad json", http.StatusBadRequest},
		{http.MethodPost, "/sensors", `{"id":"x","unknown":1}`, http.StatusBadRequest},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
	}

	// Bad query parameters.
	rng := rand.New(rand.NewSource(2))
	if err := cl.AddSensor("q", seasonal(rng, 400)); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"h=0", "h=abc", "z=-1", "z=abc"} {
		resp, err := ts.Client().Get(ts.URL + "/sensors/q/forecast?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("forecast?%s: status %d, want 400", q, resp.StatusCode)
		}
	}
	// Observe with no values.
	resp, err := ts.Client().Post(ts.URL+"/sensors/q/observe", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty observe: status %d, want 400", resp.StatusCode)
	}
}

func TestConcurrentClientsOneSensorEach(t *testing.T) {
	_, cl, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(3))
	histories := make([][]float64, 4)
	for i := range histories {
		histories[i] = seasonal(rand.New(rand.NewSource(rng.Int63())), 420)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := range histories {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := string(rune('a' + i))
			if err := cl.AddSensor(id, histories[i][:400]); err != nil {
				errs <- err
				return
			}
			for t := 0; t < 10; t++ {
				if _, err := cl.Forecast(id, 1); err != nil {
					errs <- err
					return
				}
				if err := cl.Observe(id, histories[i][400+t]); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ids, err := cl.Sensors()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Fatalf("got %d sensors", len(ids))
	}
}

func TestForecastMultiEndpoint(t *testing.T) {
	ts, cl, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(9))
	if err := cl.AddSensor("m", seasonal(rng, 400)); err != nil {
		t.Fatal(err)
	}
	hs := []int{1, 3, 6}
	fs, err := cl.Forecasts("m", hs)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 3 {
		t.Fatalf("got %d forecasts", len(fs))
	}
	for i, f := range fs {
		if f.Horizon != hs[i] || f.Variance <= 0 || f.Lo >= f.Hi {
			t.Fatalf("forecast %d malformed: %+v", i, f)
		}
	}
	// Must agree with the single-horizon endpoint.
	single, err := cl.Forecast("m", 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(single.Mean-fs[1].Mean) > 1e-9 {
		t.Fatalf("multi %v vs single %v", fs[1].Mean, single.Mean)
	}
	// Error paths.
	for _, q := range []string{"", "hs=0", "hs=a", "hs=1&z=bad"} {
		resp, err := ts.Client().Get(ts.URL + "/sensors/m/forecasts?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("forecasts?%s: status %d, want 400", q, resp.StatusCode)
		}
	}
	if _, err := cl.Forecasts("nope", hs); err == nil {
		t.Fatal("unknown sensor should fail")
	}
}

func TestReadingsEndpoint(t *testing.T) {
	sys, err := smiler.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	srv, err := NewWithInterval(sys, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	cl, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	if err := cl.AddSensor("r", seasonal(rng, 400)); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	// Irregular readings spanning several grid minutes.
	readings := []Reading{
		{At: base, Value: 50},
		{At: base.Add(40 * time.Second), Value: 52},
		{At: base.Add(130 * time.Second), Value: 55},
		{At: base.Add(200 * time.Second), Value: 53},
	}
	if err := cl.SendReadings("r", readings); err != nil {
		t.Fatal(err)
	}
	// The grid samples must have advanced the sensor's stream: the
	// forecast still works and stays near the fed values.
	f, err := cl.Forecast("r", 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Variance <= 0 {
		t.Fatalf("forecast %+v malformed", f)
	}
	// Stale reading rejected.
	if err := cl.SendReadings("r", []Reading{{At: base.Add(-time.Hour), Value: 1}}); err == nil {
		t.Fatal("stale reading should fail")
	}
	// Empty batch rejected.
	if err := cl.SendReadings("r", nil); err == nil {
		t.Fatal("empty batch should fail")
	}
}

func TestReadingsDisabledWithoutInterval(t *testing.T) {
	_, cl, _ := newTestServer(t) // plain New: no interval
	rng := rand.New(rand.NewSource(12))
	if err := cl.AddSensor("x", seasonal(rng, 400)); err != nil {
		t.Fatal(err)
	}
	err := cl.SendReadings("x", []Reading{{At: time.Now(), Value: 1}})
	if err == nil || !strings.Contains(err.Error(), "501") {
		t.Fatalf("expected 501, got %v", err)
	}
}

func TestBulkObservationsEndpoint(t *testing.T) {
	ts, cl, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(21))
	if err := cl.AddSensor("a", seasonal(rng, 400)); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddSensor("b", seasonal(rng, 400)); err != nil {
		t.Fatal(err)
	}
	res, err := cl.ObserveMany([]ingest.Observation{
		{Sensor: "a", Value: 50},
		{Sensor: "b", Value: 51},
		{Sensor: "ghost", Value: 52},
		{Sensor: "a", Value: 53},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 3 || res.Dropped != 0 || len(res.Failed) != 1 {
		t.Fatalf("bulk result = %+v", res)
	}
	if res.Failed[0].Index != 2 || res.Failed[0].ID != "ghost" {
		t.Fatalf("failure = %+v", res.Failed[0])
	}

	// Error paths: wrong method, empty batch, bad JSON.
	for _, tc := range []struct {
		method, body string
		wantStatus   int
	}{
		{http.MethodGet, "", http.StatusMethodNotAllowed},
		{http.MethodPost, `{"observations":[]}`, http.StatusBadRequest},
		{http.MethodPost, `{bad`, http.StatusBadRequest},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+"/observations", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Fatalf("%s /observations %q: status %d, want %d", tc.method, tc.body, resp.StatusCode, tc.wantStatus)
		}
	}
}

func TestPipelineStatsEndpoint(t *testing.T) {
	ts, cl, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(22))
	if err := cl.AddSensor("p", seasonal(rng, 400)); err != nil {
		t.Fatal(err)
	}
	if err := cl.ObserveBatch("p", []float64{50, 51, 52}); err != nil {
		t.Fatal(err)
	}
	// Identical forecasts: the second must be a coalescing-cache hit.
	if _, err := cl.Forecast("p", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Forecast("p", 1); err != nil {
		t.Fatal(err)
	}
	st, err := cl.PipelineStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards < 1 || len(st.PerShard) != st.Shards || st.QueueSize <= 0 {
		t.Fatalf("pipeline stats = %+v", st)
	}
	if st.Totals.Enqueued != 3 {
		t.Fatalf("enqueued %d, want 3", st.Totals.Enqueued)
	}
	if st.Coalesce.CacheHits+st.Coalesce.CoalescedWaits < 1 || st.Coalesce.Misses < 1 {
		t.Fatalf("coalesce stats = %+v", st.Coalesce)
	}
	resp, err := ts.Client().Post(ts.URL+"/pipeline/stats", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /pipeline/stats: status %d, want 405", resp.StatusCode)
	}
}

// TestServerCloseDrains: observations accepted before Close must be
// applied to the system by the time Close returns (this is what the
// SIGTERM path relies on before checkpointing).
func TestServerCloseDrains(t *testing.T) {
	sys, err := smiler.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	srv, err := NewWithOptions(sys, Options{Pipeline: ingest.Config{Shards: 2, QueueSize: 64}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	cl, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	if err := cl.AddSensor("d", seasonal(rng, 400)); err != nil {
		t.Fatal(err)
	}
	const n = 25
	if err := cl.ObserveBatch("d", seasonal(rng, n)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st := srv.Pipeline().Stats()
	if st.Totals.Processed != n || st.Totals.QueueDepth != 0 || st.Totals.Errors != 0 {
		t.Fatalf("pipeline not drained: %+v", st.Totals)
	}
	// A post-close observe surfaces as 503 (shutting down).
	err = cl.Observe("d", 1)
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("post-close observe: %v, want 503", err)
	}
}

func TestNewWithIntervalValidation(t *testing.T) {
	sys, err := smiler.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := NewWithInterval(sys, -time.Second); err == nil {
		t.Fatal("negative interval should fail")
	}
}
