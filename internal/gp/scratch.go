package gp

import (
	"fmt"
	"math"

	"smiler/internal/mat"
	"smiler/internal/memsys"
)

// evalScratch bundles every transient one objective evaluation needs —
// covariance, Cholesky factor, triangular/precision scratch, the shared
// O(n³) gradient product, and four n-vectors — backed by two memsys
// slabs acquired once per ascend() call and reused across all ~10–60
// evaluations of that optimization. This is the single largest
// allocation win on the predict path: the CG line search used to heap-
// allocate ~10 matrices/vectors per evaluation.
//
// n is fixed for the lifetime of a scratch (a training set never
// changes size mid-optimization), so the Dense wrappers are built once.
type evalScratch struct {
	n       int
	matSlab []float64 // 6 n×n blocks
	vecSlab []float64 // 4 n vectors

	cov  *mat.Dense // C = K + θ₂²I (+jitter), the factored covariance
	lfac *mat.Dense // Cholesky factor storage
	linv *mat.Dense // triangular scratch for InverseTo
	kinv *mat.Dense // C⁻¹
	b    *mat.Dense // C⁻¹·diag(c)
	mm   *mat.Dense // C⁻¹·diag(c)·C⁻¹

	alpha []float64 // C⁻¹·y
	w     []float64 // α ⊘ diag C⁻¹
	cdiag []float64 // curvature weights
	v     []float64 // C⁻¹·w

	chol mat.Cholesky
}

func newEvalScratch(n int) *evalScratch {
	ms := memsys.GetFloats(6 * n * n)
	vs := memsys.GetFloats(4 * n)
	s := &evalScratch{n: n, matSlab: ms, vecSlab: vs}
	blk := func(i int) *mat.Dense { return mat.NewDenseData(n, n, ms[i*n*n:(i+1)*n*n]) }
	s.cov, s.lfac, s.linv, s.kinv, s.b, s.mm = blk(0), blk(1), blk(2), blk(3), blk(4), blk(5)
	s.alpha, s.w, s.cdiag, s.v = vs[0:n], vs[n:2*n], vs[2*n:3*n], vs[3*n:4*n]
	return s
}

// release returns the slabs. The scratch must not be used afterwards.
func (s *evalScratch) release() {
	ms, vs := s.matSlab, s.vecSlab
	s.matSlab, s.vecSlab = nil, nil
	memsys.PutFloats(ms)
	memsys.PutFloats(vs)
}

// fit builds and factors the covariance into the scratch, walking the
// same jitter ladder as Model.factorize, and solves for α. It is the
// scratch-path twin of fitSet — same operations in the same order, so
// objective values are bit-identical to the model-allocating path.
func (s *evalScratch) fit(ts trainSet, hp Hyper) error {
	statFits.Add(1)
	n := len(ts.y)
	var lastErr error
	for _, j := range jitters {
		covMatrixR2Into(s.cov, n, ts.r2, hp, j)
		if err := s.chol.FactorInto(s.lfac, s.cov); err != nil {
			lastErr = err
			statJitterRetries.Add(1)
			continue
		}
		if err := s.chol.SolveVecTo(s.alpha, ts.y); err != nil {
			lastErr = err
			statJitterRetries.Add(1)
			continue
		}
		return nil
	}
	return fmt.Errorf("%w: %v", ErrSingular, lastErr)
}

// looSum computes the LOO predictive log likelihood from the precision
// matrix diagonal (Eqn. 20) — shared by Model.LOO and the scratch-based
// optimizer so both paths are arithmetically identical.
func looSum(y, alpha []float64, kinv *mat.Dense) (float64, error) {
	n := len(y)
	var ll float64
	for i := 0; i < n; i++ {
		kii := kinv.At(i, i)
		if kii <= 0 {
			return 0, fmt.Errorf("%w: nonpositive precision diagonal", ErrCondition)
		}
		sigma2 := 1 / kii
		mu := y[i] - alpha[i]/kii
		d := y[i] - mu
		ll += -0.5*math.Log(sigma2) - d*d/(2*sigma2) - 0.5*math.Log(2*math.Pi)
	}
	return ll, nil
}

// marginalSum computes log p(y|X,Θ) from α and the factor — shared by
// Model.MarginalLikelihood and the scratch-based optimizer.
func marginalSum(y, alpha []float64, chol *mat.Cholesky) float64 {
	return -0.5*mat.Dot(y, alpha) - 0.5*chol.LogDet() - 0.5*float64(len(y))*math.Log(2*math.Pi)
}
