package bench

import (
	"fmt"
	"sort"
	"strings"
)

// table renders rows of cells into an aligned text table.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f6(v float64) string { return fmt.Sprintf("%.6f", v) }

// FormatFig7 renders Fig. 7 rows: time per step (log-scale in the
// paper) for each method and k.
func FormatFig7(rows []Fig7Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, string(r.Method), fmt.Sprint(r.K),
			f6(r.WallSec), f6(r.SimSec),
		})
	}
	return "Fig. 7 — Suffix kNN Search time per continuous step (all sensors)\n" +
		table([]string{"dataset", "method", "k", "wall(s)", "gpu-sim(s)"}, out)
}

// FormatFig8 renders Fig. 8 rows: LBen production time.
func FormatFig8(rows []Fig8Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Dataset, string(r.Method), f6(r.WallSec), f6(r.SimSec)})
	}
	return "Fig. 8 — LBen computation time per step (all sensors)\n" +
		table([]string{"dataset", "method", "wall(s)", "gpu-sim(s)"}, out)
}

// FormatTable3 renders Table 3: verification cost and unfiltered
// candidates per lower bound.
func FormatTable3(rows []Table3Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, r.Bound.String(), f3(r.VerifyWallSec), f6(r.VerifySimSec),
			fmt.Sprintf("%.0f", r.Unfiltered),
		})
	}
	return "Table 3 — Effect of the enhanced lower bound LBen\n" +
		table([]string{"dataset", "bound", "verify-wall(s)", "verify-sim(s)", "unfiltered/query"}, out)
}

// FormatAccuracy renders Figs. 9/10/11 rows as MAE and MNLPD series
// over the horizon, one block per metric.
func FormatAccuracy(title string, rows []AccuracyRow) string {
	methods := orderedMethods(rows)
	hs := orderedHorizons(rows)
	cell := make(map[string]AccuracyRow, len(rows))
	for _, r := range rows {
		cell[r.Method+"/"+fmt.Sprint(r.H)] = r
	}
	render := func(metric string, get func(AccuracyRow) float64) string {
		header := append([]string{"method \\ h"}, intStrings(hs)...)
		var out [][]string
		for _, m := range methods {
			row := []string{m}
			for _, h := range hs {
				row = append(row, f3(get(cell[m+"/"+fmt.Sprint(h)])))
			}
			out = append(out, row)
		}
		return metric + "\n" + table(header, out)
	}
	return title + "\n" +
		render("MAE", func(r AccuracyRow) float64 { return r.MAE }) + "\n" +
		render("MNLPD", func(r AccuracyRow) float64 { return r.MNLPD }) + "\n" +
		render("COVERAGE95 (0.95 = calibrated)", func(r AccuracyRow) float64 { return r.Coverage95 })
}

// FormatTable4 renders Table 4 rows.
func FormatTable4(rows []TimingRow) string {
	var out [][]string
	for _, r := range rows {
		train := "-"
		if r.TrainSec > 0 {
			train = f3(r.TrainSec)
		}
		out = append(out, []string{r.Dataset, r.Method, train, f3(r.PredictMs)})
	}
	return "Table 4 — Running time comparison\n" +
		table([]string{"dataset", "method", "train(s)", "predict(ms)"}, out)
}

// FormatFig12 renders the Fig. 12 time split and capacity.
func FormatFig12(rows []Fig12Row, perSensorBytes, maxSensors int64) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, r.Method, f6(r.SearchSec), f6(r.PredictSec), f6(r.SearchSec + r.PredictSec),
		})
	}
	s := "Fig. 12(a,b) — per-step time of all sensors (search vs prediction)\n" +
		table([]string{"dataset", "method", "search(s)", "predict(s)", "total(s)"}, out)
	s += fmt.Sprintf("\nFig. 12(c) — capacity: %d bytes/sensor -> max %d sensors per GPU\n",
		perSensorBytes, maxSensors)
	return s
}

// FormatFig13 renders the PSGP active-point sweep.
func FormatFig13(rows []Fig13Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, fmt.Sprint(r.ActivePoints), f3(r.TrainSecPer),
			f3(r.PSGPMae), f3(r.SMiLerGPMae),
		})
	}
	return "Fig. 13 — PSGP active points: training time vs MAE (SMiLer-GP reference)\n" +
		table([]string{"dataset", "active", "train(s)/sensor", "PSGP MAE", "SMiLer-GP MAE"}, out)
}

func orderedMethods(rows []AccuracyRow) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range rows {
		if !seen[r.Method] {
			seen[r.Method] = true
			out = append(out, r.Method)
		}
	}
	return out
}

func orderedHorizons(rows []AccuracyRow) []int {
	seen := map[int]bool{}
	var out []int
	for _, r := range rows {
		if !seen[r.H] {
			seen[r.H] = true
			out = append(out, r.H)
		}
	}
	sort.Ints(out)
	return out
}

func intStrings(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprint(x)
	}
	return out
}

// FormatSearchProfile renders the cost-model breakdown.
func FormatSearchProfile(rows []SearchProfile) string {
	var out [][]string
	for _, r := range rows {
		p := r.Profile
		out = append(out, []string{
			r.Dataset, string(r.Method),
			fmt.Sprintf("%.0f", p.ComputeCycles),
			fmt.Sprintf("%.0f", p.GlobalCycles),
			fmt.Sprintf("%.0f", p.SharedCycles),
			fmt.Sprintf("%.0f", p.LaunchCycles),
			fmt.Sprint(p.Launches),
			fmt.Sprint(p.Blocks),
		})
	}
	return "Search cost-model breakdown (simulated cycles)\n" +
		table([]string{"dataset", "method", "compute", "global-mem", "shared-mem", "launch", "launches", "blocks"}, out)
}
