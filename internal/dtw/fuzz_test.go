package dtw

import (
	"math"
	"testing"
)

// decodeSeries turns fuzz bytes into two equal-length series plus a
// warping width; returns ok=false for unusable inputs.
func decodeSeries(data []byte) (q, c []float64, rho int, ok bool) {
	if len(data) < 5 {
		return nil, nil, 0, false
	}
	rho = int(data[0] % 10)
	rest := data[1:]
	n := len(rest) / 2
	if n == 0 || n > 64 {
		return nil, nil, 0, false
	}
	q = make([]float64, n)
	c = make([]float64, n)
	for i := 0; i < n; i++ {
		q[i] = (float64(rest[i]) - 128) / 16
		c[i] = (float64(rest[n+i]) - 128) / 16
	}
	return q, c, rho, true
}

// FuzzCompressedMatchesReference cross-checks the shared-memory
// compressed warping matrix against the full-matrix reference on
// arbitrary inputs.
func FuzzCompressedMatchesReference(f *testing.F) {
	f.Add([]byte{3, 10, 20, 30, 40, 50, 60})
	f.Add([]byte{0, 1, 2, 3, 4})
	f.Add([]byte{9, 255, 0, 255, 0, 128, 128, 64, 192})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, c, rho, ok := decodeSeries(data)
		if !ok {
			t.Skip()
		}
		want, err := Distance(q, c, rho)
		if err != nil {
			t.Skip()
		}
		got, err := DistanceCompressed(q, c, rho, nil)
		if err != nil {
			t.Fatalf("compressed errored where reference succeeded: %v", err)
		}
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("compressed %v != reference %v (ρ=%d, n=%d)", got, want, rho, len(q))
		}
	})
}

// FuzzLowerBoundsNeverExceedDTW asserts Theorem 4.1 on arbitrary
// inputs: LBEQ, LBEC and LBen are all ≤ the true banded distance.
func FuzzLowerBoundsNeverExceedDTW(f *testing.F) {
	f.Add([]byte{2, 5, 10, 15, 20, 25, 30, 35})
	f.Add([]byte{7, 200, 100, 50, 25, 12, 6, 3, 1, 0, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, c, rho, ok := decodeSeries(data)
		if !ok {
			t.Skip()
		}
		d, err := Distance(q, c, rho)
		if err != nil {
			t.Skip()
		}
		eps := 1e-9 * (1 + d)
		for name, fn := range map[string]func(a, b []float64, r int) (float64, error){
			"LBEQ": LBEQ, "LBEC": LBEC, "LBEn": LBEn,
		} {
			lb, err := fn(q, c, rho)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if lb > d+eps {
				t.Fatalf("%s = %v exceeds DTW = %v", name, lb, d)
			}
		}
	})
}

// FuzzEarlyAbandonConsistent asserts the early-abandoning DTW never
// reports a different distance when it completes.
func FuzzEarlyAbandonConsistent(f *testing.F) {
	f.Add([]byte{4, 9, 8, 7, 6, 5, 4, 3, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, c, rho, ok := decodeSeries(data)
		if !ok {
			t.Skip()
		}
		want, err := Distance(q, c, rho)
		if err != nil {
			t.Skip()
		}
		got, done, err := DistanceEarlyAbandon(q, c, rho, want+1)
		if err != nil {
			t.Fatal(err)
		}
		if !done {
			t.Fatalf("abandoned despite threshold above the true distance")
		}
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("early-abandon %v != reference %v", got, want)
		}
	})
}
