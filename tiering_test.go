package smiler

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"smiler/internal/memsys"
)

// tieredConfig returns smallConfig with the hot-sensor cap set.
func tieredConfig(max int) Config {
	cfg := smallConfig()
	cfg.MaxHotSensors = max
	return cfg
}

// addSeeded registers n sensors ("t0".."tn-1") with deterministic
// per-sensor histories on sys; the same seed yields the same sensors
// on a reference system.
func addSeeded(t *testing.T, sys *System, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		if err := sys.AddSensor(fmt.Sprintf("t%d", i), noisySeasonal(rng, 400, 5+float64(i), 50)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTieringValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxHotSensors = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative MaxHotSensors must fail")
	}
}

// TestTieringSpillFaultRoundTrip: with a cap below the population,
// registration spills LRU sensors, every accessor still reaches every
// sensor, and a faulted-in sensor forecasts bit-identically to an
// untiered reference.
func TestTieringSpillFaultRoundTrip(t *testing.T) {
	sys, err := New(tieredConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ref, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	addSeeded(t, sys, 4)
	addSeeded(t, ref, 4)

	st := sys.Tiering()
	if st.Hot != 2 || st.Cold != 2 || st.Evictions != 2 {
		t.Fatalf("tier stats after 4 adds at cap 2: %+v", st)
	}
	ids := sys.Sensors()
	if len(ids) != 4 {
		t.Fatalf("Sensors() = %v, want all 4 (hot and cold)", ids)
	}
	for _, id := range ids {
		if !sys.HasSensor(id) {
			t.Fatalf("HasSensor(%s) = false", id)
		}
	}

	// t0 and t1 are the LRU pair, so they were spilled first.
	for _, id := range []string{"t0", "t1"} {
		if !sys.tier.isCold(id) {
			t.Fatalf("%s should be cold, tier = %+v", id, sys.Tiering())
		}
	}

	// Every sensor — cold ones fault in transparently — must forecast
	// bit-identically to the untiered reference.
	for _, id := range ids {
		got, err := sys.Predict(id, 1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Predict(id, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s: tiered forecast %+v != reference %+v", id, got, want)
		}
	}
	st = sys.Tiering()
	if st.Faults < 2 {
		t.Fatalf("predicting cold sensors must fault them in, stats %+v", st)
	}
	if st.Hot != 2 || st.Cold != 2 {
		t.Fatalf("cap must hold after faults: %+v", st)
	}

	// Histories survive the spill/fault cycles bit-for-bit.
	for _, id := range ids {
		gh, err := sys.History(id)
		if err != nil {
			t.Fatal(err)
		}
		wh, err := ref.History(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(gh) != len(wh) {
			t.Fatalf("%s: history %d points, want %d", id, len(gh), len(wh))
		}
		for i := range wh {
			if gh[i] != wh[i] {
				t.Fatalf("%s point %d: %v != %v", id, i, gh[i], wh[i])
			}
		}
	}
}

// TestTieringLRUOrder: the least recently used sensor is the one
// spilled; touching a sensor protects it.
func TestTieringLRUOrder(t *testing.T) {
	sys, err := New(tieredConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	addSeeded(t, sys, 2) // t0, t1 hot; t1 most recent

	if _, err := sys.Predict("t0", 1); err != nil { // t0 now most recent
		t.Fatal(err)
	}
	addSeeded2 := func(i int) {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		if err := sys.AddSensor(fmt.Sprintf("t%d", i), noisySeasonal(rng, 400, 5+float64(i), 50)); err != nil {
			t.Fatal(err)
		}
	}
	addSeeded2(2) // must evict t1, not t0
	if !sys.tier.isCold("t1") || sys.tier.isCold("t0") {
		t.Fatalf("LRU must evict t1 (t0 was touched): %+v cold=%v", sys.Tiering(), sys.tier.coldIDs())
	}

	// Observing t1 faults it in and evicts the now-LRU t0.
	if err := sys.Observe("t1", 51); err != nil {
		t.Fatal(err)
	}
	if !sys.tier.isCold("t0") || sys.tier.isCold("t1") {
		t.Fatalf("fault-in of t1 must evict t0: cold=%v", sys.tier.coldIDs())
	}
}

// TestTieringRemoveAndDuplicate: cold sensors can be removed (their
// spill file goes with them) and re-added; adding a cold id is a
// duplicate error.
func TestTieringRemoveAndDuplicate(t *testing.T) {
	dir := t.TempDir()
	cfg := tieredConfig(1)
	cfg.SpillDir = dir
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	addSeeded(t, sys, 2) // t0 cold, t1 hot

	if err := sys.AddSensor("t0", noisySeasonal(rand.New(rand.NewSource(1)), 400, 5, 50)); err == nil {
		t.Fatal("adding a cold id must be a duplicate error")
	}
	spills, _ := filepath.Glob(filepath.Join(dir, "*.spill"))
	if len(spills) != 1 {
		t.Fatalf("expected 1 spill file, found %v", spills)
	}
	if err := sys.RemoveSensor("t0"); err != nil {
		t.Fatal(err)
	}
	if sys.HasSensor("t0") {
		t.Fatal("removed cold sensor still visible")
	}
	spills, _ = filepath.Glob(filepath.Join(dir, "*.spill"))
	if len(spills) != 0 {
		t.Fatalf("spill file must be deleted with its sensor, found %v", spills)
	}
	if _, err := sys.Predict("t0", 1); err == nil {
		t.Fatal("predicting a removed cold sensor must fail")
	}
	// Re-adding after removal works (and spills t1).
	addSeeded(t, sys, 1)
	if !sys.HasSensor("t0") {
		t.Fatal("re-added sensor missing")
	}
}

// TestTieringCheckpointByteIdentity: SaveTo on a tiered node — cold
// sensors folded in from their spill envelopes — must produce the
// exact bytes an untiered node with the same state produces.
func TestTieringCheckpointByteIdentity(t *testing.T) {
	tiered, err := New(tieredConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer tiered.Close()
	ref, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	addSeeded(t, tiered, 5)
	addSeeded(t, ref, 5)
	// Drift ensemble weights on both through the same observations
	// (cold sensors fault in and spill back out on the tiered node).
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("t%d", i)
		for j := 0; j < 3; j++ {
			v := 50 + float64(i) + float64(j)
			if err := tiered.Observe(id, v); err != nil {
				t.Fatal(err)
			}
			if err := ref.Observe(id, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	var a, b bytes.Buffer
	if err := tiered.SaveTo(&a); err != nil {
		t.Fatal(err)
	}
	if err := ref.SaveTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("tiered checkpoint (%d bytes) differs from untiered (%d bytes)", a.Len(), b.Len())
	}

	// And the tiered checkpoint loads into a working untiered system.
	restored, err := Load(&a, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if ids := restored.Sensors(); len(ids) != 5 {
		t.Fatalf("restored %v", ids)
	}
}

// TestTieringSaveSensorToCold: single-sensor export (the migration
// path) serves cold sensors straight from their spill envelope without
// faulting them in.
func TestTieringSaveSensorToCold(t *testing.T) {
	sys, err := New(tieredConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ref, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	addSeeded(t, sys, 2) // t0 cold
	addSeeded(t, ref, 2)

	before := sys.Tiering().Faults
	var a, b bytes.Buffer
	if err := sys.SaveSensorTo(&a, "t0"); err != nil {
		t.Fatal(err)
	}
	if err := ref.SaveSensorTo(&b, "t0"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("cold-sensor export differs from untiered export")
	}
	if sys.Tiering().Faults != before {
		t.Fatal("SaveSensorTo must not fault the sensor in")
	}
	if !sys.tier.isCold("t0") {
		t.Fatal("t0 must stay cold after export")
	}
}

// TestTieringSpillDirWipedAtBoot: stale spill files from a previous
// run are unreachable garbage and must be removed by New.
func TestTieringSpillDirWipedAtBoot(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "deadbeef.spill")
	if err := os.WriteFile(stale, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := tieredConfig(1)
	cfg.SpillDir = dir
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale spill file survived boot")
	}
}

// TestTieringConcurrentChurn is the PR's -race stress: concurrent
// predictions across a population larger than the hot cap — every call
// racing fault-in/eviction cycles — interleaved with full checkpoints
// and single-sensor exports (the migration path), with pooling
// enabled. Every forecast must be bit-identical to an untiered,
// quiescent reference.
func TestTieringConcurrentChurn(t *testing.T) {
	const sensors = 6
	sys, err := New(tieredConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ref, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	addSeeded(t, sys, sensors)
	addSeeded(t, ref, sensors)

	want := make(map[string]Forecast, sensors)
	for _, id := range ref.Sensors() {
		f, err := ref.Predict(id, 1)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = f
	}

	iters := 8
	if testing.Short() {
		iters = 3
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("t%d", rng.Intn(sensors))
				f, err := sys.Predict(id, 1)
				if err != nil {
					errCh <- fmt.Errorf("%s: %w", id, err)
					return
				}
				if f != want[id] {
					errCh <- fmt.Errorf("%s: forecast %+v != reference %+v", id, f, want[id])
					return
				}
			}
		}(g)
	}
	// Checkpoints and migration exports race the prediction churn.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			var buf bytes.Buffer
			if err := sys.SaveTo(&buf); err != nil {
				errCh <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters*sensors; i++ {
			var buf bytes.Buffer
			if err := sys.SaveSensorTo(&buf, fmt.Sprintf("t%d", i%sensors)); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if st := sys.Tiering(); st.Faults == 0 || st.Evictions == 0 {
		t.Fatalf("churn must exercise the tier: %+v", st)
	}
	// After the churn the system still checkpoints byte-identically to
	// the reference (no observations ran, state is unchanged).
	var a, b bytes.Buffer
	if err := sys.SaveTo(&a); err != nil {
		t.Fatal(err)
	}
	if err := ref.SaveTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("post-churn checkpoint differs from reference")
	}
}

// TestSystemPooledMatchesUnpooled extends the PR 3 determinism
// contract through the full System surface: forecasts and checkpoint
// bytes with the slab pool enabled must be bit-identical to a run with
// pooling disabled.
func TestSystemPooledMatchesUnpooled(t *testing.T) {
	was := memsys.Enabled()
	defer memsys.SetEnabled(was)

	run := func(pooled bool) ([]Forecast, []byte) {
		memsys.SetEnabled(pooled)
		sys, err := New(smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		addSeeded(t, sys, 3)
		var out []Forecast
		for step := 0; step < 10; step++ {
			for i := 0; i < 3; i++ {
				id := fmt.Sprintf("t%d", i)
				f, err := sys.Predict(id, 1)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, f)
				if err := sys.Observe(id, 50+float64(step)); err != nil {
					t.Fatal(err)
				}
			}
		}
		var buf bytes.Buffer
		if err := sys.SaveTo(&buf); err != nil {
			t.Fatal(err)
		}
		return out, buf.Bytes()
	}

	wantF, wantCP := run(false)
	gotF, gotCP := run(true)
	for i := range wantF {
		if gotF[i] != wantF[i] {
			t.Fatalf("forecast %d: pooled %+v != unpooled %+v", i, gotF[i], wantF[i])
		}
	}
	if !bytes.Equal(gotCP, wantCP) {
		t.Fatal("pooled checkpoint bytes differ from unpooled")
	}
}
