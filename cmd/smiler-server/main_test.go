package main

import (
	"io"
	"log/slog"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"smiler"
	"smiler/internal/ingest"
	"smiler/internal/server"
)

// quiet discards all log output in tests.
var quiet = slog.New(slog.DiscardHandler)

func smallCfg() smiler.Config {
	cfg := smiler.DefaultConfig()
	cfg.Rho = 3
	cfg.Omega = 8
	cfg.ELV = []int{16, 24}
	cfg.EKV = []int{4}
	cfg.Predictor = smiler.PredictorAR
	return cfg
}

func TestLoadOrNewFreshAndMissingFile(t *testing.T) {
	sys, _, err := loadOrNew(smallCfg(), "", quiet)
	if err != nil {
		t.Fatal(err)
	}
	sys.Close()
	sys, _, err = loadOrNew(smallCfg(), filepath.Join(t.TempDir(), "missing.gob"), quiet)
	if err != nil {
		t.Fatal(err)
	}
	sys.Close()
}

func TestSaveAndReloadCheckpoint(t *testing.T) {
	cfg := smallCfg()
	sys, err := smiler.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hist := make([]float64, 300)
	for i := range hist {
		hist[i] = 10 + 3*math.Sin(2*math.Pi*float64(i)/24)
	}
	if err := sys.AddSensor("s", hist); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "state.gob")
	if err := saveCheckpoint(sys, path, nil); err != nil {
		t.Fatal(err)
	}
	sys.Close()
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file should be renamed away")
	}

	restored, _, err := loadOrNew(cfg, path, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if ids := restored.Sensors(); len(ids) != 1 || ids[0] != "s" {
		t.Fatalf("restored sensors = %v", ids)
	}
	if _, err := restored.Predict("s", 1); err != nil {
		t.Fatal(err)
	}
}

func TestLoadOrNewCorruptCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.gob")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadOrNew(smallCfg(), path, quiet); err == nil {
		t.Fatal("corrupt checkpoint should fail")
	}
}

func TestRunRejectsBadPredictor(t *testing.T) {
	if err := run(options{addr: ":0", predictor: "nope", devices: 1, backpressure: "block"}); err == nil {
		t.Fatal("unknown predictor should fail")
	}
}

func TestRunRejectsBadBackpressure(t *testing.T) {
	if err := run(options{addr: ":0", predictor: "ar", devices: 1, backpressure: "nope"}); err == nil {
		t.Fatal("unknown backpressure policy should fail")
	}
}

// TestMetricsSmoke boots the real server loop with -pprof, drives one
// prediction, and asserts that /metrics serves the required metric
// families, /debug/trace/{sensor} serves spans, and the pprof index
// responds.
func TestMetricsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("signal-driven lifecycle test")
	}
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(options{
			addr:         "127.0.0.1:0",
			predictor:    "ar",
			devices:      1,
			shards:       2,
			backpressure: "block",
			logLevel:     "error",
			pprof:        true,
			onReady:      func(addr string) { ready <- addr },
		})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}
	base := "http://" + addr

	cl, err := server.NewClient(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	hist := make([]float64, 300)
	for i := range hist {
		hist[i] = 10 + 3*math.Sin(2*math.Pi*float64(i)/24)
	}
	if err := cl.AddSensor("s", hist); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Forecast("s", 1); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`smiler_predictions_total{quality="exact"} 1`,
		"# TYPE smiler_predict_phase_seconds histogram",
		"smiler_knn_candidates_total",
		`smiler_ingest_processed_total{shard=`,
		"smiler_forecast_cache_misses_total",
		"smiler_http_requests_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if code, body = get("/debug/trace/s"); code != http.StatusOK || !strings.Contains(body, `"name":"search"`) {
		t.Fatalf("/debug/trace/s = %d: %s", code, body)
	}
	if code, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d (pprof flag not wired)", code)
	}

	time.Sleep(500 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestRunLifecycle drives the real server loop end to end: start,
// register a sensor and stream observations over HTTP, then SIGTERM —
// and assert that the pipeline was drained before the checkpoint was
// written, i.e. the restored system contains every accepted
// observation.
func TestRunLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("signal-driven lifecycle test")
	}
	path := filepath.Join(t.TempDir(), "state.gob")
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(options{
			addr:         "127.0.0.1:0",
			predictor:    "ar",
			devices:      1,
			checkpoint:   path,
			interval:     time.Minute,
			shards:       2,
			queue:        64,
			backpressure: "block",
			onReady:      func(addr string) { ready <- addr },
		})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}

	cl, err := server.NewClient("http://"+addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	const histLen, observed, bulked = 300, 7, 5
	hist := make([]float64, histLen)
	for i := range hist {
		hist[i] = 10 + 3*math.Sin(2*math.Pi*float64(i)/24)
	}
	if err := cl.AddSensor("s", hist); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < observed; i++ {
		if err := cl.Observe("s", hist[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Bulk ingest endpoint, end to end through the real server loop.
	bulk := make([]ingest.Observation, bulked)
	for i := range bulk {
		bulk[i] = ingest.Observation{Sensor: "s", Value: hist[observed+i]}
	}
	res, err := cl.ObserveMany(bulk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != bulked || res.Dropped != 0 || len(res.Failed) != 0 {
		t.Fatalf("bulk result = %+v", res)
	}
	if st, err := cl.PipelineStats(); err != nil || st.Shards != 2 {
		t.Fatalf("pipeline stats = %+v, err %v", st, err)
	}

	// Give signal.Notify time to arm before the termination signal
	// arrives (otherwise it would kill the test binary itself).
	time.Sleep(500 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}

	// The checkpoint must contain the full drained stream.
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	defer f.Close()
	restored, err := smiler.Load(f, smiler.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	n, err := restored.HistoryLen("s")
	if err != nil {
		t.Fatal(err)
	}
	if n != histLen+observed+bulked {
		t.Fatalf("restored history %d points, want %d (pipeline not drained before checkpoint)", n, histLen+observed+bulked)
	}
}
