package ingest

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smiler"
)

// fakeSystem is an instrumented System: it records per-sensor
// observation order, can block Observe/Predict on gates, and serves a
// Predict whose mean is the number of observations applied so far —
// which makes cache staleness visible.
type fakeSystem struct {
	mu   sync.Mutex
	seen map[string][]float64

	known map[string]bool // nil = every sensor exists

	observeGate  chan struct{} // when non-nil, Observe blocks until it is closed
	observeDelay time.Duration
	predictGate  chan struct{} // when non-nil, Predict blocks until it is closed
	predictCalls atomic.Int64
	applied      atomic.Int64

	quality atomic.Value // string; when set, stamped on every Forecast
}

func newFakeSystem() *fakeSystem {
	return &fakeSystem{seen: make(map[string][]float64)}
}

func (f *fakeSystem) Observe(id string, v float64) error {
	if f.observeGate != nil {
		<-f.observeGate
	}
	if f.observeDelay > 0 {
		time.Sleep(f.observeDelay)
	}
	if !f.HasSensor(id) {
		return fmt.Errorf("unknown sensor %q", id)
	}
	f.mu.Lock()
	f.seen[id] = append(f.seen[id], v)
	f.mu.Unlock()
	f.applied.Add(1)
	return nil
}

func (f *fakeSystem) Predict(id string, h int) (smiler.Forecast, error) {
	f.predictCalls.Add(1)
	if f.predictGate != nil {
		<-f.predictGate
	}
	if !f.HasSensor(id) {
		return smiler.Forecast{}, fmt.Errorf("unknown sensor %q", id)
	}
	q, _ := f.quality.Load().(string)
	return smiler.Forecast{Mean: float64(f.applied.Load()), Variance: 1, Horizon: h, Quality: q}, nil
}

func (f *fakeSystem) HasSensor(id string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.known == nil {
		return true
	}
	return f.known[id]
}

func (f *fakeSystem) forget(id string) {
	f.mu.Lock()
	delete(f.known, id)
	f.mu.Unlock()
}

func (f *fakeSystem) sequence(id string) []float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]float64(nil), f.seen[id]...)
}

func mustPipeline(t *testing.T, sys System, cfg Config) *Pipeline {
	t.Helper()
	p, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil system should fail")
	}
	if _, err := New(newFakeSystem(), Config{Backpressure: Backpressure(42)}); err == nil {
		t.Fatal("invalid backpressure should fail")
	}
	p, err := New(newFakeSystem(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Shards < 1 || st.QueueSize != 256 || st.MaxBatch != 32 || st.Backpressure != "block" {
		t.Fatalf("defaults not applied: %+v", st)
	}
	p.Close()
}

func TestParseBackpressure(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Backpressure
	}{{"block", Block}, {"drop-newest", DropNewest}, {"error", Error}} {
		got, err := ParseBackpressure(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseBackpressure(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseBackpressure("nope"); err == nil {
		t.Fatal("unknown policy should fail")
	}
}

// TestOrderingPerSensor is the core invariant: concurrent producers
// for many sensors, each sensor's stream must be applied in its
// arrival order even though shards batch and interleave.
func TestOrderingPerSensor(t *testing.T) {
	sys := newFakeSystem()
	p := mustPipeline(t, sys, Config{Shards: 4, QueueSize: 8, MaxBatch: 4})

	const sensors, perSensor = 9, 200
	var wg sync.WaitGroup
	for s := 0; s < sensors; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			id := fmt.Sprintf("sensor-%d", s)
			for v := 0; v < perSensor; v++ {
				if ok, err := p.Observe(id, float64(v)); !ok || err != nil {
					t.Errorf("observe %s #%d: ok=%v err=%v", id, v, ok, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < sensors; s++ {
		id := fmt.Sprintf("sensor-%d", s)
		seq := sys.sequence(id)
		if len(seq) != perSensor {
			t.Fatalf("%s: got %d observations, want %d", id, len(seq), perSensor)
		}
		for v, got := range seq {
			if got != float64(v) {
				t.Fatalf("%s: position %d holds %v (out of order)", id, v, got)
			}
		}
	}
	st := p.Stats()
	if st.Totals.Processed != sensors*perSensor || st.Totals.Dropped != 0 {
		t.Fatalf("totals = %+v", st.Totals)
	}
	if st.Totals.Batches == 0 || st.Totals.AvgBatch <= 0 {
		t.Fatalf("batching not accounted: %+v", st.Totals)
	}
}

func TestBackpressureBlockIsLossless(t *testing.T) {
	sys := newFakeSystem()
	sys.observeDelay = 200 * time.Microsecond
	p := mustPipeline(t, sys, Config{Shards: 1, QueueSize: 2, MaxBatch: 2, Backpressure: Block})
	const n = 100
	for v := 0; v < n; v++ {
		if ok, err := p.Observe("s", float64(v)); !ok || err != nil {
			t.Fatalf("observe #%d: ok=%v err=%v", v, ok, err)
		}
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := len(sys.sequence("s")); got != n {
		t.Fatalf("processed %d, want %d", got, n)
	}
	if st := p.Stats(); st.Totals.Dropped != 0 || st.Totals.Processed != n {
		t.Fatalf("totals = %+v", st.Totals)
	}
}

// fillOneShard stalls the single worker inside Observe and fills the
// queue, returning once the pipeline is saturated: one observation in
// flight, QueueSize more waiting.
func fillOneShard(t *testing.T, sys *fakeSystem, p *Pipeline, queueSize int) {
	t.Helper()
	if ok, err := p.Observe("s", 0); !ok || err != nil {
		t.Fatalf("first observe: ok=%v err=%v", ok, err)
	}
	// The worker takes the first item off the queue and blocks in
	// Observe on the gate; wait until the queue is empty again.
	waitFor(t, "worker to pick up first item", func() bool {
		return p.Stats().PerShard[0].QueueDepth == 0
	})
	for v := 1; v <= queueSize; v++ {
		if ok, err := p.Observe("s", float64(v)); !ok || err != nil {
			t.Fatalf("fill observe #%d: ok=%v err=%v", v, ok, err)
		}
	}
}

func TestBackpressureDropNewest(t *testing.T) {
	sys := newFakeSystem()
	sys.observeGate = make(chan struct{})
	p := mustPipeline(t, sys, Config{Shards: 1, QueueSize: 2, MaxBatch: 1, Backpressure: DropNewest})
	fillOneShard(t, sys, p, 2)

	// Queue full: the next observation is shed, not blocked.
	ok, err := p.Observe("s", 99)
	if ok || err != nil {
		t.Fatalf("overflow observe: ok=%v err=%v, want shed", ok, err)
	}
	close(sys.observeGate)
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	seq := sys.sequence("s")
	if len(seq) != 3 { // 0 in flight + 2 queued; 99 dropped
		t.Fatalf("processed %v, want [0 1 2]", seq)
	}
	for i, v := range seq {
		if v != float64(i) {
			t.Fatalf("processed %v, want [0 1 2]", seq)
		}
	}
	st := p.Stats()
	if st.Totals.Dropped != 1 || st.Totals.Processed != 3 {
		t.Fatalf("totals = %+v", st.Totals)
	}
}

func TestBackpressureError(t *testing.T) {
	sys := newFakeSystem()
	sys.observeGate = make(chan struct{})
	p := mustPipeline(t, sys, Config{Shards: 1, QueueSize: 1, MaxBatch: 1, Backpressure: Error})
	fillOneShard(t, sys, p, 1)

	if ok, err := p.Observe("s", 99); ok || err != ErrQueueFull {
		t.Fatalf("overflow observe: ok=%v err=%v, want ErrQueueFull", ok, err)
	}
	close(sys.observeGate)
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := len(sys.sequence("s")); got != 2 {
		t.Fatalf("processed %d, want 2", got)
	}
}

func TestCloseDrainsAcceptedObservations(t *testing.T) {
	sys := newFakeSystem()
	sys.observeDelay = 100 * time.Microsecond
	p, err := New(sys, Config{Shards: 3, QueueSize: 64, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	for v := 0; v < n; v++ {
		id := fmt.Sprintf("s%d", v%5)
		if ok, err := p.Observe(id, float64(v)); !ok || err != nil {
			t.Fatalf("observe #%d: ok=%v err=%v", v, ok, err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sys.applied.Load(); got != n {
		t.Fatalf("Close returned with %d/%d observations applied", got, n)
	}
	// After Close: writes rejected, reads still served, Close idempotent.
	if ok, err := p.Observe("s0", 1); ok || err != ErrClosed {
		t.Fatalf("post-close observe: ok=%v err=%v, want ErrClosed", ok, err)
	}
	if err := p.Drain(); err != ErrClosed {
		t.Fatalf("post-close drain: %v, want ErrClosed", err)
	}
	if _, err := p.Forecast("s0", 1); err != nil {
		t.Fatalf("post-close forecast should still work: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestUnknownSensorRejectedAtEnqueue(t *testing.T) {
	sys := newFakeSystem()
	sys.known = map[string]bool{"known": true}
	p := mustPipeline(t, sys, Config{Shards: 1})
	if ok, err := p.Observe("ghost", 1); ok || err == nil || !strings.Contains(err.Error(), "unknown sensor") {
		t.Fatalf("ghost observe: ok=%v err=%v", ok, err)
	}
	if ok, err := p.Observe("known", 1); !ok || err != nil {
		t.Fatalf("known observe: ok=%v err=%v", ok, err)
	}
}

func TestObserveBulkAccounting(t *testing.T) {
	sys := newFakeSystem()
	sys.known = map[string]bool{"a": true, "b": true}
	p := mustPipeline(t, sys, Config{Shards: 2})
	res := p.ObserveBulk([]Observation{
		{Sensor: "a", Value: 1},
		{Sensor: "ghost", Value: 2},
		{Sensor: "b", Value: 3},
		{Sensor: "a", Value: 4},
	})
	if res.Accepted != 3 || res.Dropped != 0 || len(res.Failed) != 1 {
		t.Fatalf("bulk result = %+v", res)
	}
	if res.Failed[0].Index != 1 || res.Failed[0].ID != "ghost" {
		t.Fatalf("failure = %+v", res.Failed[0])
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if a, b := sys.sequence("a"), sys.sequence("b"); len(a) != 2 || len(b) != 1 {
		t.Fatalf("applied a=%v b=%v", a, b)
	}
}

// TestAsyncObserveErrorAccounted covers a sensor disappearing between
// enqueue and apply: the apply error lands in stats and OnError, not
// on any caller.
func TestAsyncObserveErrorAccounted(t *testing.T) {
	sys := newFakeSystem()
	sys.known = map[string]bool{"s": true}
	sys.observeGate = make(chan struct{})
	var reported atomic.Int64
	p := mustPipeline(t, sys, Config{Shards: 1, OnError: func(o Observation, err error) {
		reported.Add(1)
	}})
	if ok, err := p.Observe("s", 1); !ok || err != nil {
		t.Fatalf("observe: ok=%v err=%v", ok, err)
	}
	sys.forget("s") // vanishes while queued
	close(sys.observeGate)
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Totals.Errors != 1 || reported.Load() != 1 {
		t.Fatalf("errors=%d reported=%d, want 1/1", st.Totals.Errors, reported.Load())
	}
}

func TestStatsShape(t *testing.T) {
	sys := newFakeSystem()
	p := mustPipeline(t, sys, Config{Shards: 3, QueueSize: 7, MaxBatch: 5, Backpressure: DropNewest})
	for i := 0; i < 20; i++ {
		p.Observe(fmt.Sprintf("s%d", i), float64(i))
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Shards != 3 || st.QueueSize != 7 || st.MaxBatch != 5 || st.Backpressure != "drop-newest" {
		t.Fatalf("config echo wrong: %+v", st)
	}
	if len(st.PerShard) != 3 || st.Totals.Shard != -1 {
		t.Fatalf("shape wrong: %+v", st)
	}
	var sum uint64
	for i, s := range st.PerShard {
		if s.Shard != i {
			t.Fatalf("shard %d labeled %d", i, s.Shard)
		}
		sum += s.Processed
	}
	if sum != 20 || st.Totals.Processed != 20 || st.Totals.Enqueued != 20 {
		t.Fatalf("totals = %+v (shard sum %d)", st.Totals, sum)
	}
	if st.Totals.AvgLatencyMicros <= 0 {
		t.Fatalf("latency not accounted: %+v", st.Totals)
	}
}
