package baselines

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSegmentDataset(t *testing.T) {
	series := []float64{0, 1, 2, 3, 4, 5}
	x, y, err := SegmentDataset(series, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Starts 0..3: segment [s,s+2), label at s+2.
	if len(x) != 4 || len(y) != 4 {
		t.Fatalf("got %d pairs", len(x))
	}
	if x[0][0] != 0 || x[0][1] != 1 || y[0] != 2 {
		t.Fatalf("pair 0 = %v -> %v", x[0], y[0])
	}
	if y[3] != 5 {
		t.Fatalf("last label = %v", y[3])
	}
	// maxPairs keeps the most recent pairs.
	x, y, err = SegmentDataset(series, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 2 || y[1] != 5 {
		t.Fatalf("maxPairs wrong: %v", y)
	}
	if _, _, err := SegmentDataset(series, 0, 1, 0); err == nil {
		t.Fatal("d=0 should fail")
	}
	if _, _, err := SegmentDataset(series, 2, 0, 0); err == nil {
		t.Fatal("h=0 should fail")
	}
	if _, _, err := SegmentDataset([]float64{1, 2}, 4, 1, 0); !errors.Is(err, ErrNoData) {
		t.Fatal("short series should fail")
	}
}

// sineDataset builds segment→label pairs from a clean sinusoid.
func sineDataset(n, d int) (x [][]float64, y []float64, probe []float64, truth float64) {
	series := make([]float64, n+d+1)
	for i := range series {
		series[i] = math.Sin(2 * math.Pi * float64(i) / 24)
	}
	x, y, _ = SegmentDataset(series[:n], d, 1, 0)
	probe = series[n-d : n]
	truth = series[n]
	return
}

func TestSparseGPTrainPredict(t *testing.T) {
	for _, mk := range []func(int) *SparseGP{NewPSGP, NewVLGP} {
		m := mk(24)
		x, y, probe, truth := sineDataset(400, 8)
		if _, err := m.Predict(probe); !errors.Is(err, ErrNotTrained) {
			t.Fatalf("%s: err = %v", m.Name(), err)
		}
		if err := m.Train(x, y); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		p, err := m.Predict(probe)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.Mean-truth) > 0.15 {
			t.Fatalf("%s: predicted %v, truth %v", m.Name(), p.Mean, truth)
		}
		if p.Variance <= 0 {
			t.Fatalf("%s: variance %v", m.Name(), p.Variance)
		}
		if _, err := m.Predict([]float64{1}); !errors.Is(err, ErrDims) {
			t.Fatalf("%s: dim err = %v", m.Name(), err)
		}
	}
}

func TestSparseGPMoreActivePointsHelp(t *testing.T) {
	// A random walk is rich enough that a rank-2 projection must
	// underfit while a rank-64 one tracks it — the Fig. 13 shape.
	rng := rand.New(rand.NewSource(7))
	n := 800
	series := make([]float64, n)
	v := 0.0
	for i := range series {
		v += rng.NormFloat64() * 0.3
		series[i] = v
	}
	x, y, err := SegmentDataset(series, 12, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	small := NewPSGP(2)
	big := NewPSGP(64)
	if err := small.Train(x, y); err != nil {
		t.Fatal(err)
	}
	if err := big.Train(x, y); err != nil {
		t.Fatal(err)
	}
	var maeSmall, maeBig float64
	for i := 0; i < len(x); i += 10 {
		ps, err := small.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		pb, err := big.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		maeSmall += math.Abs(ps.Mean - y[i])
		maeBig += math.Abs(pb.Mean - y[i])
	}
	if maeBig >= maeSmall {
		t.Fatalf("64 active points (MAE sum %v) should beat 2 (%v)", maeBig, maeSmall)
	}
}

func TestSparseGPErrors(t *testing.T) {
	m := NewPSGP(0)
	x, y, _, _ := sineDataset(100, 4)
	if err := m.Train(x, y); err == nil {
		t.Fatal("m=0 should fail")
	}
	if err := NewPSGP(4).Train(nil, nil); !errors.Is(err, ErrNoData) {
		t.Fatal("empty training should fail")
	}
}

func TestLinearSVRLearnsLinearMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, d := 500, 4
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		xi := make([]float64, d)
		for j := range xi {
			xi[j] = rng.NormFloat64()
		}
		x[i] = xi
		y[i] = 0.8*xi[0] - 0.3*xi[2] + 0.1 + rng.NormFloat64()*0.02
	}
	for _, m := range []*linearModel{NewSgdSVR(), NewSgdRR()} {
		if _, err := m.Predict(x[0]); !errors.Is(err, ErrNotTrained) {
			t.Fatalf("%s: err = %v", m.Name(), err)
		}
		if err := m.Train(x, y); err != nil {
			t.Fatal(err)
		}
		var mae float64
		for i := 0; i < 50; i++ {
			p, err := m.Predict(x[i])
			if err != nil {
				t.Fatal(err)
			}
			mae += math.Abs(p.Mean - y[i])
			if p.Variance <= 0 {
				t.Fatalf("%s: variance %v", m.Name(), p.Variance)
			}
		}
		mae /= 50
		if mae > 0.1 {
			t.Fatalf("%s: MAE %v too high for a linear map", m.Name(), mae)
		}
		if _, err := m.Predict([]float64{1}); !errors.Is(err, ErrDims) {
			t.Fatalf("%s: dim err = %v", m.Name(), err)
		}
	}
}

func TestOnlineModelsConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range []*linearModel{NewOnlineSVR(), NewOnlineRR()} {
		for i := 0; i < 3000; i++ {
			x := []float64{rng.NormFloat64(), rng.NormFloat64()}
			y := 0.5*x[0] - 0.25*x[1] + rng.NormFloat64()*0.02
			if err := m.Update(x, y); err != nil {
				t.Fatal(err)
			}
		}
		probe := []float64{1, 1}
		p, err := m.Predict(probe)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.Mean-0.25) > 0.1 {
			t.Fatalf("%s: predicted %v, want ≈0.25", m.Name(), p.Mean)
		}
		if err := m.Update([]float64{1}, 0); !errors.Is(err, ErrDims) {
			t.Fatalf("%s: dim err = %v", m.Name(), err)
		}
	}
}

func TestGradientScaleBranches(t *testing.T) {
	svr := NewSgdSVR()
	svr.defaults()
	if svr.gradientScale(svr.Epsilon/2) != 0 {
		t.Fatal("inside the tube should be 0")
	}
	if svr.gradientScale(1) != 1 || svr.gradientScale(-1) != -1 {
		t.Fatal("outside the tube should be ±1")
	}
	rr := NewSgdRR()
	rr.defaults()
	if rr.gradientScale(0.5) != 0.5 {
		t.Fatal("quadratic region should be identity")
	}
	if rr.gradientScale(5) != rr.Delta || rr.gradientScale(-5) != -rr.Delta {
		t.Fatal("linear region should clip at ±δ")
	}
}

func TestNysSVRFitsNonlinearData(t *testing.T) {
	m := NewNysSVR(32)
	if m.Name() != "NysSVR" {
		t.Fatal("name wrong")
	}
	x, y, probe, truth := sineDataset(500, 8)
	if _, err := m.Predict(probe); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("err = %v", err)
	}
	if err := m.Train(x, y); err != nil {
		t.Fatal(err)
	}
	p, err := m.Predict(probe)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Mean-truth) > 0.15 {
		t.Fatalf("predicted %v, truth %v", p.Mean, truth)
	}
	if p.Variance <= 0 {
		t.Fatal("variance must be positive")
	}
	if err := NewNysSVR(0).Train(x, y); err == nil {
		t.Fatal("rank 0 should fail")
	}
	if _, err := m.Predict([]float64{1}); !errors.Is(err, ErrDims) {
		t.Fatalf("dim err = %v", err)
	}
}

func TestLazyKNNPredictsPeriodicSeries(t *testing.T) {
	n := 2000
	series := make([]float64, n)
	for i := range series {
		series[i] = math.Sin(2*math.Pi*float64(i)/48) + 0.02*math.Cos(float64(i))
	}
	l := &LazyKNN{K: 8, D: 32, Rho: 4}
	if l.Name() != "LazyKNN" {
		t.Fatal("name wrong")
	}
	p, err := l.Predict(series[:n-1], 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Mean-series[n-1]) > 0.1 {
		t.Fatalf("predicted %v, truth %v", p.Mean, series[n-1])
	}
	if p.Variance <= 0 {
		t.Fatal("variance must be positive")
	}
	if _, err := l.Predict(series[:20], 1); err == nil {
		t.Fatal("short history should fail")
	}
	if _, err := l.Predict(series, 0); err == nil {
		t.Fatal("h=0 should fail")
	}
	if _, err := (&LazyKNN{}).Predict(series, 1); err == nil {
		t.Fatal("zero config should fail")
	}
	if NewLazyKNN().K != 32 {
		t.Fatal("default config wrong")
	}
}

func TestHoltWintersForecastsSeasonalSeries(t *testing.T) {
	period := 24
	n := period * 20
	series := make([]float64, n)
	for i := range series {
		series[i] = 5 + 2*math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.01*float64(i)/float64(period)
	}
	hw := NewFullHW(period)
	if hw.Name() != "FullHW" {
		t.Fatal("name wrong")
	}
	if _, err := hw.Forecast(1); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("err = %v", err)
	}
	if err := hw.Fit(series); err != nil {
		t.Fatal(err)
	}
	for _, h := range []int{1, 5, period} {
		want := 5 + 2*math.Sin(2*math.Pi*float64(n-1+h)/float64(period)) + 0.01*float64(n-1+h)/float64(period)
		p, err := hw.Forecast(h)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.Mean-want) > 0.3 {
			t.Fatalf("h=%d: forecast %v, want %v", h, p.Mean, want)
		}
		if p.Variance <= 0 {
			t.Fatalf("h=%d: variance %v", h, p.Variance)
		}
	}
	// Uncertainty must widen with the horizon.
	p1, _ := hw.Forecast(1)
	p10, _ := hw.Forecast(10)
	if p10.Variance <= p1.Variance {
		t.Fatalf("variance should grow with h: %v vs %v", p1.Variance, p10.Variance)
	}
	a, b, g := hw.Params()
	for _, v := range []float64{a, b, g} {
		if v < 0.05 || v > 0.8 {
			t.Fatalf("fitted param %v outside grid", v)
		}
	}
	if _, err := hw.Forecast(0); err == nil {
		t.Fatal("h=0 should fail")
	}
}

func TestHoltWintersWindowAndErrors(t *testing.T) {
	period := 12
	series := make([]float64, period*30)
	for i := range series {
		series[i] = math.Sin(2 * math.Pi * float64(i) / float64(period))
	}
	seg := NewSegHW(period, 5)
	if seg.Name() != "SegHW" || seg.Window != period*5 {
		t.Fatal("SegHW config wrong")
	}
	if err := seg.Fit(series); err != nil {
		t.Fatal(err)
	}
	if _, err := seg.Forecast(3); err != nil {
		t.Fatal(err)
	}
	if err := NewFullHW(1).Fit(series); err == nil {
		t.Fatal("period 1 should fail")
	}
	if err := NewFullHW(period).Fit(series[:period]); !errors.Is(err, ErrNoData) {
		t.Fatal("short series should fail")
	}
}

// Property: all offline regressors produce finite predictions with
// positive variance on random walks.
func TestQuickRegressorsWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 120 + rng.Intn(200)
		series := make([]float64, n)
		v := 0.0
		for i := range series {
			v += rng.NormFloat64() * 0.3
			series[i] = v
		}
		x, y, err := SegmentDataset(series, 8, 1, 0)
		if err != nil {
			return false
		}
		probe := series[n-8:]
		for _, m := range []Regressor{NewPSGP(8), NewVLGP(8), NewNysSVR(8), NewSgdSVR(), NewSgdRR()} {
			if err := m.Train(x, y); err != nil {
				return false
			}
			p, err := m.Predict(probe)
			if err != nil {
				return false
			}
			if math.IsNaN(p.Mean) || math.IsInf(p.Mean, 0) || p.Variance <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
