package load

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"smiler/internal/server"
)

// Loader drives one workload against a set of target nodes. Build
// with New, optionally Setup the sensor population, then Run.
type Loader struct {
	cfg     Config
	clients []*server.Client
	src     *source

	clientSeq atomic.Uint64
	sensorSeq atomic.Uint64

	// phase and window are the live accounting scopes: every completed
	// op records into both. window is swapped by the progress reporter.
	phase  atomic.Pointer[phaseStats]
	window atomic.Pointer[phaseStats]

	inflight atomic.Int64

	// touched is a bitset of sensor indices hit at least once during
	// the run — the report's distinct-sensor count, which is what
	// substantiates a "drove N sensors" claim.
	touched []atomic.Uint64

	// dead marks sensor indices whose registration failed; ops re-pick
	// around them. Empty in healthy runs.
	deadMu sync.Mutex
	dead   map[int]bool

	// gc correlates each steady-phase progress window with the targets'
	// GC pause activity (scraped off /metrics); gcWindows accumulates
	// the series for the report. Both are touched only by the progress
	// reporter goroutine until Run collects them after it stops.
	gc        *gcScraper
	gcWindows []GCWindow

	setup *SetupSummary
}

// New validates cfg and builds the loader (clients, sensor streams).
func New(cfg Config) (*Loader, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// One transport sized for the worker population, shared by every
	// client: without MaxIdleConnsPerHost ≈ concurrency the default (2)
	// would churn TCP connections at exactly the moment the loader is
	// trying to measure server latency.
	conns := cfg.Concurrency + cfg.SetupConcurrency
	tr := &http.Transport{
		MaxIdleConns:        conns * 2,
		MaxIdleConnsPerHost: conns,
		IdleConnTimeout:     90 * time.Second,
	}
	hc := &http.Client{Transport: tr, Timeout: 60 * time.Second}
	l := &Loader{
		cfg:     cfg,
		touched: make([]atomic.Uint64, (cfg.Sensors+63)/64),
		dead:    make(map[int]bool),
	}
	for _, t := range cfg.Targets {
		cl, err := server.NewClient(t, hc)
		if err != nil {
			return nil, err
		}
		cl.SetRetryPolicy(server.RetryPolicy{
			MaxAttempts: cfg.RetryAttempts,
			BaseDelay:   50 * time.Millisecond,
			MaxDelay:    2 * time.Second,
		})
		l.clients = append(l.clients, cl)
	}
	src, err := newSource(cfg.Prefix, cfg.Kind, cfg.Seed, cfg.Sensors)
	if err != nil {
		return nil, err
	}
	l.src = src
	return l, nil
}

func (l *Loader) client() *server.Client {
	return l.clients[int(l.clientSeq.Add(1))%len(l.clients)]
}

// Setup registers the sensor population with its bootstrap history.
// Sensors already present on the server (HTTP 409) count as existing,
// so re-running against a warm server is cheap and idempotent.
func (l *Loader) Setup(ctx context.Context) (*SetupSummary, error) {
	start := time.Now()
	var registered, existing, failed atomic.Int64
	idx := make(chan int, l.cfg.SetupConcurrency)
	var wg sync.WaitGroup
	for w := 0; w < l.cfg.SetupConcurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				hist := l.src.history(i, l.cfg.History)
				err := l.client().AddSensor(l.src.id(i), hist)
				switch {
				case err == nil:
					registered.Add(1)
				case httpStatus(err) == http.StatusConflict:
					existing.Add(1)
				default:
					failed.Add(1)
					l.deadMu.Lock()
					l.dead[i] = true
					l.deadMu.Unlock()
				}
			}
		}()
	}
	lastLine := start
feed:
	for i := 0; i < l.cfg.Sensors; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
		if l.cfg.ProgressEvery > 0 && time.Since(lastLine) >= l.cfg.ProgressEvery {
			lastLine = time.Now()
			done := registered.Load() + existing.Load() + failed.Load()
			fmt.Fprintf(l.cfg.Progress, "[setup] %d/%d sensors (%.0f/s, %d failed)\n",
				done, l.cfg.Sensors, float64(done)/time.Since(start).Seconds(), failed.Load())
		}
	}
	close(idx)
	wg.Wait()
	sum := &SetupSummary{
		Registered: int(registered.Load()),
		Existing:   int(existing.Load()),
		Errors:     int(failed.Load()),
		DurationS:  time.Since(start).Seconds(),
	}
	if sum.DurationS > 0 {
		sum.PerS = float64(sum.Registered) / sum.DurationS
	}
	l.setup = sum
	if err := ctx.Err(); err != nil {
		return sum, err
	}
	if sum.Registered+sum.Existing == 0 {
		return sum, fmt.Errorf("load: setup registered nothing (%d errors) — are the targets serving?", sum.Errors)
	}
	fmt.Fprintf(l.cfg.Progress, "[setup] done: %d registered, %d existing, %d failed in %.1fs (%.0f sensors/s)\n",
		sum.Registered, sum.Existing, sum.Errors, sum.DurationS, sum.PerS)
	return sum, nil
}

// Teardown removes the registered sensor population.
func (l *Loader) Teardown(ctx context.Context) error {
	idx := make(chan int, l.cfg.SetupConcurrency)
	var wg sync.WaitGroup
	var firstErr atomic.Pointer[error]
	for w := 0; w < l.cfg.SetupConcurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				err := l.client().RemoveSensor(l.src.id(i))
				if err != nil && httpStatus(err) != http.StatusNotFound {
					firstErr.CompareAndSwap(nil, &err)
				}
			}
		}()
	}
	for i := 0; i < l.cfg.Sensors && ctx.Err() == nil; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if p := firstErr.Load(); p != nil {
		return *p
	}
	return ctx.Err()
}

// opSpec is one scheduled operation. due is the moment the op was
// *supposed* to start: for open-loop arrivals that is the scheduled
// arrival time, so measured latency includes any time the op spent
// queued behind a saturated worker pool — the anti-coordinated-
// omission accounting that makes open-loop tails honest.
type opSpec struct {
	op     Op
	sensor int
	h      int
	due    time.Time
}

// draw picks the next op from the configured mix. Sensors are walked
// round-robin so a run that issues ≥ Sensors ops touches every sensor
// (and each stream advances evenly); horizons follow their weights.
func (l *Loader) draw(rng *rand.Rand) opSpec {
	var spec opSpec
	mixTotal := l.cfg.ObserveWeight + l.cfg.ForecastWeight
	if rng.Intn(mixTotal) < l.cfg.ObserveWeight {
		spec.op = OpObserve
	} else {
		spec.op = OpForecast
		wTotal := 0
		for _, wh := range l.cfg.Horizons {
			wTotal += wh.W
		}
		pick := rng.Intn(wTotal)
		for _, wh := range l.cfg.Horizons {
			if pick < wh.W {
				spec.h = wh.H
				break
			}
			pick -= wh.W
		}
	}
	for tries := 0; ; tries++ {
		spec.sensor = int(l.sensorSeq.Add(1)-1) % l.cfg.Sensors
		if tries >= 10 || !l.isDead(spec.sensor) {
			break
		}
	}
	return spec
}

func (l *Loader) isDead(i int) bool {
	l.deadMu.Lock()
	defer l.deadMu.Unlock()
	return len(l.dead) > 0 && l.dead[i]
}

// execute runs one op and records it into the live phase and window.
func (l *Loader) execute(spec opSpec) {
	l.inflight.Add(1)
	defer l.inflight.Add(-1)
	id := l.src.id(spec.sensor)
	cl := l.client()
	var err error
	degraded := false
	quality := ""
	switch spec.op {
	case OpObserve:
		err = cl.Observe(id, l.src.next(spec.sensor))
	case OpForecast:
		var f server.ForecastResponse
		f, err = cl.Forecast(id, spec.h)
		degraded = f.Degraded
		quality = f.Quality
	}
	lat := time.Since(spec.due)
	// CAS loop instead of atomic Or: the module floor is Go 1.22.
	word, bit := &l.touched[spec.sensor/64], uint64(1)<<(spec.sensor%64)
	for {
		old := word.Load()
		if old&bit != 0 || word.CompareAndSwap(old, old|bit) {
			break
		}
	}
	if p := l.phase.Load(); p != nil {
		p.ops[spec.op].record(lat, err, degraded, quality)
	}
	if w := l.window.Load(); w != nil {
		w.ops[spec.op].record(lat, err, degraded, quality)
	}
}

func (l *Loader) distinctTouched() int {
	n := 0
	for i := range l.touched {
		n += bits.OnesCount64(l.touched[i].Load())
	}
	return n
}

// rateAt returns the open-loop arrival rate λ at offset t from the
// run start: the bursty on/off modulation (if any) scaled by the ramp
// fraction.
func (l *Loader) rateAt(t time.Duration) float64 {
	r := l.cfg.Rate
	if l.cfg.Arrival == Bursty {
		phase := t % l.cfg.BurstPeriod
		on := phase < time.Duration(float64(l.cfg.BurstPeriod)*l.cfg.BurstDuty)
		if on {
			r *= l.cfg.BurstFactor
		} else {
			r *= (1 - l.cfg.BurstFactor*l.cfg.BurstDuty) / (1 - l.cfg.BurstDuty)
		}
	}
	if l.cfg.Ramp > 0 && t < l.cfg.Ramp {
		frac := float64(t) / float64(l.cfg.Ramp)
		r *= frac
		if min := l.cfg.Rate / 100; r < min {
			r = min // avoid a near-infinite first gap at the foot of the ramp
		}
	}
	return r
}

// Run executes the configured phases and returns the report. The
// context cancels a run early (e.g. SIGINT during a soak); the report
// then covers what actually ran and the context error is returned
// alongside it.
func (l *Loader) Run(ctx context.Context) (*Report, error) {
	started := time.Now()
	report := &Report{
		Schema:   ReportSchema,
		Started:  started,
		Workload: workloadInfo(l.cfg),
		Phases:   make(map[string]PhaseSummary),
		Setup:    l.setup,
	}

	total := l.cfg.Ramp + l.cfg.Duration
	runCtx, cancel := context.WithTimeout(ctx, total)
	defer cancel()

	var ramp, steady *phaseStats
	if l.cfg.Ramp > 0 {
		ramp = newPhaseStats("ramp", started)
		l.phase.Store(ramp)
	} else {
		steady = newPhaseStats("steady", started)
		l.phase.Store(steady)
	}
	l.window.Store(newPhaseStats("window", started))

	// Phase clock: close the ramp and open the steady phase on time.
	var phaseWG sync.WaitGroup
	if ramp != nil {
		phaseWG.Add(1)
		go func() {
			defer phaseWG.Done()
			select {
			case <-time.After(l.cfg.Ramp):
				now := time.Now()
				ramp.end = now
				steady = newPhaseStats("steady", now)
				l.phase.Store(steady)
			case <-runCtx.Done():
			}
		}()
	}

	var workWG sync.WaitGroup
	switch l.cfg.Arrival {
	case ClosedLoop:
		for w := 0; w < l.cfg.Concurrency; w++ {
			// Stagger worker starts across the ramp so offered
			// concurrency grows linearly.
			var delay time.Duration
			if l.cfg.Ramp > 0 && l.cfg.Concurrency > 1 {
				delay = l.cfg.Ramp * time.Duration(w) / time.Duration(l.cfg.Concurrency)
			}
			rng := rand.New(rand.NewSource(l.cfg.Seed + int64(w)*7919))
			workWG.Add(1)
			go func() {
				defer workWG.Done()
				if delay > 0 {
					select {
					case <-time.After(delay):
					case <-runCtx.Done():
						return
					}
				}
				for runCtx.Err() == nil {
					spec := l.draw(rng)
					spec.due = time.Now()
					l.execute(spec)
				}
			}()
		}
	case Poisson, Bursty:
		// Queue depth trades shed-resistance against how much loader
		// backlog can build before arrivals are dropped; either way the
		// drop is accounted (shed), never silent.
		arrivals := make(chan opSpec, l.cfg.Concurrency*64)
		for w := 0; w < l.cfg.Concurrency; w++ {
			workWG.Add(1)
			go func() {
				defer workWG.Done()
				for {
					select {
					case spec := <-arrivals:
						l.execute(spec)
					case <-runCtx.Done():
						return
					}
				}
			}()
		}
		rng := rand.New(rand.NewSource(l.cfg.Seed ^ 0x10ad))
		workWG.Add(1)
		go func() {
			defer workWG.Done()
			next := time.Now()
			for runCtx.Err() == nil {
				lambda := l.rateAt(time.Since(started))
				gap := time.Duration(rng.ExpFloat64() / lambda * float64(time.Second))
				if gap > 5*time.Second {
					gap = 5 * time.Second
				}
				next = next.Add(gap)
				if d := time.Until(next); d > 0 {
					select {
					case <-time.After(d):
					case <-runCtx.Done():
						return
					}
				}
				spec := l.draw(rng)
				spec.due = next
				select {
				case arrivals <- spec:
				default:
					if p := l.phase.Load(); p != nil {
						p.shed.Add(1)
					}
				}
			}
		}()
	}

	// Progress reporter: swap the window and print one line per tick.
	progressDone := make(chan struct{})
	if l.cfg.ProgressEvery > 0 {
		go func() {
			defer close(progressDone)
			tick := time.NewTicker(l.cfg.ProgressEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					l.printProgress(started, total)
				case <-runCtx.Done():
					return
				}
			}
		}()
	} else {
		close(progressDone)
	}

	workWG.Wait()
	phaseWG.Wait()
	<-progressDone
	now := time.Now()
	report.Finished = now
	if ramp != nil {
		if ramp.end.IsZero() {
			ramp.end = now
		}
		report.Phases["ramp"] = ramp.summary(now)
	}
	if steady != nil {
		if steady.end.IsZero() {
			steady.end = now
		}
		ss := steady.summary(now)
		report.Phases["steady"] = ss
		report.SLOs, report.Violations = evaluate(l.cfg.SLOs, ss)
	}
	report.DistinctSensors = l.distinctTouched()
	// Safe to read directly: the progress reporter (sole writer) has
	// exited by the time progressDone is closed.
	report.GCWindows = l.gcWindows
	if err := ctx.Err(); err != nil {
		return report, err
	}
	return report, nil
}

// printProgress emits one windowed progress line.
func (l *Loader) printProgress(started time.Time, total time.Duration) {
	now := time.Now()
	old := l.window.Swap(newPhaseStats("window", now))
	if old == nil {
		return
	}
	old.end = now
	sum := old.summary(now)
	phaseName := "steady"
	if p := l.phase.Load(); p != nil {
		phaseName = p.name
	}
	line := fmt.Sprintf("[%s %s/%s] %.1f op/s",
		phaseName,
		time.Since(started).Truncate(time.Second),
		total.Truncate(time.Second),
		sum.Total.Throughput)
	for op := Op(0); op < numOps; op++ {
		s, ok := sum.Ops[op.String()]
		if !ok {
			continue
		}
		line += fmt.Sprintf(" | %s n=%d p50=%s p99=%s", op, s.Count, ms(s.P50Ms), ms(s.P99Ms))
	}
	shed := uint64(0)
	if p := l.phase.Load(); p != nil {
		shed = p.shed.Load()
	}
	line += fmt.Sprintf(" | err=%d degraded=%d prog=%d shed=%d inflight=%d",
		sum.Total.Errors, sum.Total.Degraded, sum.Total.Progressive, shed, l.inflight.Load())
	fmt.Fprintln(l.cfg.Progress, line)
	if phaseName == "steady" {
		l.recordGCWindows(started, now, sum)
	}
}

// recordGCWindows scrapes every target's GC pause counters and pairs
// the per-window deltas with the window's latency figures. Scrape
// failures are recorded on the window, never fatal: the loader must
// keep driving load even when a target's /metrics is down or disabled.
func (l *Loader) recordGCWindows(started, now time.Time, sum PhaseSummary) {
	if l.gc == nil {
		l.gc = newGCScraper()
	}
	fc := sum.Ops[OpForecast.String()]
	for _, t := range l.cfg.Targets {
		w := GCWindow{
			TS:                  now.Sub(started).Seconds(),
			Target:              t,
			ForecastP50Ms:       fc.P50Ms,
			ForecastP99Ms:       fc.P99Ms,
			ForecastExact:       fc.Exact,
			ForecastProgressive: fc.Progressive,
			ForecastFallback:    fc.Fallback,
			OpsPerS:             sum.Total.Throughput,
		}
		gw, err, ok := l.gc.window(t)
		if !ok {
			continue // first reading: baseline only
		}
		if err != nil {
			w.ScrapeError = err.Error()
		} else {
			w.GCPauseS = gw.GCPauseS
			w.GCPauses = gw.GCPauses
			w.HeapLiveBytes = gw.HeapLiveBytes
			w.HeapGoalBytes = gw.HeapGoalBytes
		}
		l.gcWindows = append(l.gcWindows, w)
	}
}

func ms(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.1fs", v/1000)
	case v >= 10:
		return fmt.Sprintf("%.0fms", v)
	default:
		return fmt.Sprintf("%.2gms", v)
	}
}

// httpStatus extracts the HTTP status from a client error chain (0
// when the error was not an HTTP-level failure).
func httpStatus(err error) int {
	var he *server.HTTPError
	if errors.As(err, &he) {
		return he.Status
	}
	return 0
}
