package index

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"smiler/internal/dtw"
	"smiler/internal/gpusim"
	"smiler/internal/scan"
)

func testDevice(t testing.TB) *gpusim.Device {
	t.Helper()
	return gpusim.MustNewDevice(gpusim.DefaultConfig())
}

func randwalk(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	v := 0.0
	for i := range out {
		v += rng.NormFloat64() * 0.3
		out[i] = v
	}
	return out
}

func smallParams() Params {
	return Params{Rho: 3, Omega: 8, ELV: []int{16, 24, 40}}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Params{
		{Rho: -1, Omega: 16, ELV: []int{32}},
		{Rho: 8, Omega: 1, ELV: []int{32}},
		{Rho: 8, Omega: 16, ELV: nil},
		{Rho: 8, Omega: 16, ELV: []int{16}},         // < 2ω−1
		{Rho: 8, Omega: 16, ELV: []int{64, 32}},     // not ascending
		{Rho: 8, Omega: 16, ELV: []int{32, 32}},     // not strict
		{Rho: 8, Omega: 16, ELV: []int{32}, LB: 99}, // bad mode
		{Rho: 8, Omega: 16, ELV: []int{32}, MinSeparation: -2},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d (%+v): expected validation error", i, p)
		}
	}
}

func TestLBModeString(t *testing.T) {
	if LBModeEn.String() != "LBen" || LBModeEQ.String() != "LBEQ" || LBModeEC.String() != "LBEC" {
		t.Fatal("LBMode strings wrong")
	}
	if LBMode(42).String() == "" {
		t.Fatal("unknown mode should still render")
	}
}

func TestNewErrors(t *testing.T) {
	dev := testDevice(t)
	if _, err := New(dev, make([]float64, 10), smallParams()); err == nil {
		t.Fatal("expected error for short history")
	}
	bad := smallParams()
	bad.Omega = 0
	if _, err := New(dev, make([]float64, 500), bad); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestNewReleasesMemoryOnClose(t *testing.T) {
	dev := testDevice(t)
	rng := rand.New(rand.NewSource(1))
	ix, err := New(dev, randwalkN(rng, 400), smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if dev.UsedBytes() == 0 {
		t.Fatal("index should reserve device memory")
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if dev.UsedBytes() != 0 {
		t.Fatalf("device memory leaked: %d bytes", dev.UsedBytes())
	}
	if err := ix.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := ix.Advance(1); err == nil {
		t.Fatal("Advance after Close should fail")
	}
	if _, err := ix.Search(4, 1); err == nil {
		t.Fatal("Search after Close should fail")
	}
}

func randwalkN(rng *rand.Rand, n int) []float64 { return randwalk(rng, n) }

// The index's group-level lower bound must never exceed the true
// banded DTW distance (Theorem 4.3), for every item query and position.
func TestGroupLevelLowerBoundIsLowerBound(t *testing.T) {
	dev := testDevice(t)
	rng := rand.New(rand.NewSource(2))
	p := smallParams()
	hist := randwalk(rng, 300)
	ix, err := New(dev, hist, p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	const h = 2
	lbs, err := ix.groupLevelLowerBounds(context.Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range p.ELV {
		query := hist[len(hist)-d:]
		for tpos, lb := range lbs[i] {
			if math.IsInf(lb, 1) {
				continue
			}
			dist, err := dtw.Distance(query, hist[tpos:tpos+d], p.Rho)
			if err != nil {
				t.Fatal(err)
			}
			if lb > dist+1e-9*(1+dist) {
				t.Fatalf("d=%d t=%d: LBw %v > DTW %v", d, tpos, lb, dist)
			}
		}
	}
}

// Every valid position must receive a finite lower bound (coverage of
// the alignment enumeration, Theorem 4.2).
func TestGroupLevelCoverage(t *testing.T) {
	dev := testDevice(t)
	rng := rand.New(rand.NewSource(3))
	p := smallParams()
	hist := randwalk(rng, 257) // deliberately not a multiple of ω
	ix, err := New(dev, hist, p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	const h = 1
	lbs, err := ix.groupLevelLowerBounds(context.Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range p.ELV {
		for tpos, lb := range lbs[i] {
			if math.IsInf(lb, 1) {
				t.Fatalf("d=%d: position %d has no lower bound", d, tpos)
			}
		}
	}
}

func neighborsMatch(t *testing.T, got []Neighbor, want []scan.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d neighbours, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9*(1+want[i].Dist) {
			t.Fatalf("neighbour %d: dist %v, want %v", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	dev := testDevice(t)
	rng := rand.New(rand.NewSource(4))
	p := smallParams()
	hist := randwalk(rng, 400)
	ix, err := New(dev, hist, p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for _, k := range []int{1, 4, 16} {
		for _, h := range []int{1, 5} {
			res, err := ix.Search(k, h)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != len(p.ELV) {
				t.Fatalf("got %d item results", len(res))
			}
			for i, d := range p.ELV {
				if res[i].D != d {
					t.Fatalf("item %d: D=%d want %d", i, res[i].D, d)
				}
				want, err := scan.BruteKNN(hist, hist[len(hist)-d:], p.Rho, k, h)
				if err != nil {
					t.Fatal(err)
				}
				neighborsMatch(t, res[i].Neighbors, want)
			}
		}
	}
}

func TestSearchArgErrors(t *testing.T) {
	dev := testDevice(t)
	rng := rand.New(rand.NewSource(5))
	ix, err := New(dev, randwalk(rng, 300), smallParams())
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if _, err := ix.Search(0, 1); err == nil {
		t.Fatal("k=0 should fail")
	}
	if _, err := ix.Search(4, 0); err == nil {
		t.Fatal("h=0 should fail")
	}
}

// Continuous prediction: advance the stream many steps (crossing
// disjoint-window boundaries) and verify the reused index stays exact.
func TestContinuousAdvanceStaysExact(t *testing.T) {
	dev := testDevice(t)
	rng := rand.New(rand.NewSource(6))
	p := smallParams()
	all := randwalk(rng, 360)
	warm := 300
	ix, err := New(dev, all[:warm], p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	const k, h = 8, 3
	if _, err := ix.Search(k, h); err != nil { // prime prevNN reuse path
		t.Fatal(err)
	}
	for step := warm; step < len(all); step++ {
		if err := ix.Advance(all[step]); err != nil {
			t.Fatal(err)
		}
		if (step-warm)%7 != 0 { // search on a stride to keep the test fast
			continue
		}
		hist := all[:step+1]
		res, err := ix.Search(k, h)
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range p.ELV {
			want, err := scan.BruteKNN(hist, hist[len(hist)-d:], p.Rho, k, h)
			if err != nil {
				t.Fatal(err)
			}
			neighborsMatch(t, res[i].Neighbors, want)
		}
	}
	if ix.Len() != len(all) {
		t.Fatal("Len wrong after advances")
	}
}

// The rebuild-from-scratch path must agree with the incremental path.
func TestAdvanceRebuildAgreesWithAdvance(t *testing.T) {
	dev := testDevice(t)
	rng := rand.New(rand.NewSource(7))
	p := smallParams()
	all := randwalk(rng, 330)
	warm := 300
	a, err := New(dev, all[:warm], p)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(dev, all[:warm], p)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for step := warm; step < len(all); step++ {
		if err := a.Advance(all[step]); err != nil {
			t.Fatal(err)
		}
		if err := b.AdvanceRebuild(all[step]); err != nil {
			t.Fatal(err)
		}
	}
	ra, err := a.Search(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Search(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ra {
		if len(ra[i].Neighbors) != len(rb[i].Neighbors) {
			t.Fatalf("item %d: neighbour counts differ", i)
		}
		for j := range ra[i].Neighbors {
			if math.Abs(ra[i].Neighbors[j].Dist-rb[i].Neighbors[j].Dist) > 1e-9 {
				t.Fatalf("item %d neighbour %d: %v vs %v", i, j,
					ra[i].Neighbors[j].Dist, rb[i].Neighbors[j].Dist)
			}
		}
	}
}

// All three LB modes must return identical (exact) kNN distances; they
// only differ in filtering power.
func TestLBModesAllExact(t *testing.T) {
	dev := testDevice(t)
	rng := rand.New(rand.NewSource(8))
	hist := randwalk(rng, 400)
	var base []ItemResult
	unfiltered := map[LBMode]int{}
	for _, mode := range []LBMode{LBModeEn, LBModeEQ, LBModeEC} {
		p := smallParams()
		p.LB = mode
		ix, err := New(dev, hist, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ix.Search(8, 1)
		if err != nil {
			t.Fatal(err)
		}
		unfiltered[mode] = ix.Stats().Unfiltered
		if ix.Stats().Candidates == 0 {
			t.Fatal("stats should count candidates")
		}
		if base == nil {
			base = res
		} else {
			for i := range res {
				for j := range res[i].Neighbors {
					if math.Abs(res[i].Neighbors[j].Dist-base[i].Neighbors[j].Dist) > 1e-9 {
						t.Fatalf("mode %v: distance mismatch", mode)
					}
				}
			}
		}
		ix.Close()
	}
	// The enhanced bound dominates both single bounds pointwise, so
	// with the same exact thresholds it can never verify more.
	if unfiltered[LBModeEn] > unfiltered[LBModeEQ] || unfiltered[LBModeEn] > unfiltered[LBModeEC] {
		t.Fatalf("LBen filtered worse than a single bound: %v", unfiltered)
	}
}

func TestMinSeparation(t *testing.T) {
	dev := testDevice(t)
	rng := rand.New(rand.NewSource(9))
	p := smallParams()
	p.MinSeparation = 10
	ix, err := New(dev, randwalk(rng, 400), p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	res, err := ix.Search(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, item := range res {
		for a := 0; a < len(item.Neighbors); a++ {
			for b := a + 1; b < len(item.Neighbors); b++ {
				if abs(item.Neighbors[a].T-item.Neighbors[b].T) < p.MinSeparation {
					t.Fatalf("d=%d: neighbours %d and %d too close", item.D,
						item.Neighbors[a].T, item.Neighbors[b].T)
				}
			}
		}
	}
}

func TestMasterQueryAndAccessors(t *testing.T) {
	dev := testDevice(t)
	rng := rand.New(rand.NewSource(10))
	hist := randwalk(rng, 300)
	p := smallParams()
	ix, err := New(dev, hist, p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	mq := ix.MasterQuery()
	dmax := p.ELV[len(p.ELV)-1]
	if len(mq) != dmax {
		t.Fatalf("master query length %d, want %d", len(mq), dmax)
	}
	for i := range mq {
		if mq[i] != hist[len(hist)-dmax+i] {
			t.Fatal("master query content wrong")
		}
	}
	if ix.Value(3) != hist[3] {
		t.Fatal("Value wrong")
	}
	if ix.Params().Omega != p.Omega {
		t.Fatal("Params wrong")
	}
}

// Property: on random walks with random shapes, Search equals brute
// force for the largest item query.
func TestQuickSearchExactness(t *testing.T) {
	dev := testDevice(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{Rho: 1 + rng.Intn(4), Omega: 6 + rng.Intn(4), ELV: nil}
		d1 := 2*p.Omega - 1 + rng.Intn(8)
		d2 := d1 + 1 + rng.Intn(12)
		p.ELV = []int{d1, d2}
		n := d2 + p.Omega + 50 + rng.Intn(150)
		hist := randwalk(rng, n)
		ix, err := New(dev, hist, p)
		if err != nil {
			return false
		}
		defer ix.Close()
		k := 1 + rng.Intn(6)
		h := 1 + rng.Intn(4)
		res, err := ix.Search(k, h)
		if err != nil {
			return false
		}
		for i, d := range p.ELV {
			want, err := scan.BruteKNN(hist, hist[len(hist)-d:], p.Rho, k, h)
			if err != nil {
				return false
			}
			if len(res[i].Neighbors) != len(want) {
				return false
			}
			for j := range want {
				if math.Abs(res[i].Neighbors[j].Dist-want[j].Dist) > 1e-9*(1+want[j].Dist) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexOutOfDeviceMemory(t *testing.T) {
	cfg := gpusim.DefaultConfig()
	cfg.GlobalMemBytes = 1024 // far too small
	dev := gpusim.MustNewDevice(cfg)
	rng := rand.New(rand.NewSource(11))
	_, err := New(dev, randwalk(rng, 300), smallParams())
	if !errors.Is(err, gpusim.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if dev.UsedBytes() != 0 {
		t.Fatal("failed construction must not leak device memory")
	}
}

// SearchMulti must return, for every horizon, exactly what Search
// returns for that horizon — while verifying each candidate once.
func TestSearchMultiMatchesSingle(t *testing.T) {
	dev := testDevice(t)
	rng := rand.New(rand.NewSource(20))
	p := smallParams()
	hist := randwalk(rng, 400)
	hs := []int{1, 3, 7}
	const k = 8

	multiIx, err := New(dev, hist, p)
	if err != nil {
		t.Fatal(err)
	}
	defer multiIx.Close()
	multi, err := multiIx.SearchMulti(k, hs)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hs {
		single, err := New(dev, hist, p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := single.Search(k, h)
		single.Close()
		if err != nil {
			t.Fatal(err)
		}
		got := multi[h]
		if len(got) != len(want) {
			t.Fatalf("h=%d: %d items, want %d", h, len(got), len(want))
		}
		for i := range want {
			if len(got[i].Neighbors) != len(want[i].Neighbors) {
				t.Fatalf("h=%d item %d: %d neighbours, want %d",
					h, i, len(got[i].Neighbors), len(want[i].Neighbors))
			}
			for j := range want[i].Neighbors {
				if math.Abs(got[i].Neighbors[j].Dist-want[i].Neighbors[j].Dist) > 1e-9 {
					t.Fatalf("h=%d item %d neighbour %d: %v vs %v", h, i, j,
						got[i].Neighbors[j].Dist, want[i].Neighbors[j].Dist)
				}
			}
		}
	}
}

func TestSearchMultiContinuous(t *testing.T) {
	dev := testDevice(t)
	rng := rand.New(rand.NewSource(21))
	p := smallParams()
	all := randwalk(rng, 330)
	ix, err := New(dev, all[:300], p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	hs := []int{2, 5}
	for step := 300; step < 320; step++ {
		if err := ix.Advance(all[step]); err != nil {
			t.Fatal(err)
		}
		res, err := ix.SearchMulti(6, hs)
		if err != nil {
			t.Fatal(err)
		}
		hist := all[:step+1]
		for _, h := range hs {
			for i, d := range p.ELV {
				want, err := scan.BruteKNN(hist, hist[len(hist)-d:], p.Rho, 6, h)
				if err != nil {
					t.Fatal(err)
				}
				neighborsMatch(t, res[h][i].Neighbors, want)
			}
		}
	}
}

func TestSearchMultiErrors(t *testing.T) {
	dev := testDevice(t)
	rng := rand.New(rand.NewSource(22))
	ix, err := New(dev, randwalk(rng, 300), smallParams())
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if _, err := ix.SearchMulti(0, []int{1}); err == nil {
		t.Fatal("k=0 should fail")
	}
	if _, err := ix.SearchMulti(4, nil); err == nil {
		t.Fatal("empty horizons should fail")
	}
	if _, err := ix.SearchMulti(4, []int{0}); err == nil {
		t.Fatal("h=0 should fail")
	}
	ix.Close()
	if _, err := ix.SearchMulti(4, []int{1}); err == nil {
		t.Fatal("closed index should fail")
	}
}

// Failure injection: a device with too little shared memory per block
// must surface ErrSharedMemExceeded through Search (the compressed
// warping matrix and the query no longer fit — exactly the constraint
// Algorithm 2 is designed around).
func TestSearchSurfacesSharedMemoryExhaustion(t *testing.T) {
	cfg := gpusim.DefaultConfig()
	cfg.SharedMemPerBlock = 64 // bytes; absurdly small
	dev := gpusim.MustNewDevice(cfg)
	rng := rand.New(rand.NewSource(30))
	ix, err := New(dev, randwalk(rng, 300), smallParams())
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if _, err := ix.Search(4, 1); !errors.Is(err, gpusim.ErrSharedMemExceeded) {
		t.Fatalf("err = %v, want ErrSharedMemExceeded", err)
	}
	if _, err := ix.SearchMulti(4, []int{1, 2}); !errors.Is(err, gpusim.ErrSharedMemExceeded) {
		t.Fatalf("multi err = %v, want ErrSharedMemExceeded", err)
	}
}

// Failure injection: device memory exhaustion while the stream grows
// (a new disjoint window needs posting-plane space) must surface
// ErrOutOfMemory from Advance, not corrupt the index.
func TestAdvanceSurfacesDeviceOOM(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	hist := randwalk(rng, 320)
	p := smallParams()
	// First measure the index footprint, then give the device just a
	// little headroom so growth fails quickly.
	probe := gpusim.MustNewDevice(gpusim.DefaultConfig())
	ixProbe, err := New(probe, hist, p)
	if err != nil {
		t.Fatal(err)
	}
	footprint := probe.UsedBytes()
	ixProbe.Close()

	cfg := gpusim.DefaultConfig()
	cfg.GlobalMemBytes = footprint + 64
	dev := gpusim.MustNewDevice(cfg)
	ix, err := New(dev, hist, p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	var sawOOM bool
	for i := 0; i < 2*p.Omega; i++ {
		if err := ix.Advance(rng.NormFloat64()); err != nil {
			if !errors.Is(err, gpusim.ErrOutOfMemory) {
				t.Fatalf("err = %v, want ErrOutOfMemory", err)
			}
			sawOOM = true
			break
		}
	}
	if !sawOOM {
		t.Fatal("expected OOM when growing past the device budget")
	}
}

// Stats instrumentation must be populated by searches.
func TestSearchStatsPopulated(t *testing.T) {
	dev := testDevice(t)
	rng := rand.New(rand.NewSource(32))
	ix, err := New(dev, randwalk(rng, 400), smallParams())
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if _, err := ix.Search(8, 1); err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.Candidates == 0 || st.Unfiltered == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if st.Unfiltered > st.Candidates {
		t.Fatalf("unfiltered %d cannot exceed candidates %d", st.Unfiltered, st.Candidates)
	}
	if st.LowerBoundSimSeconds <= 0 || st.VerifySimSeconds <= 0 {
		t.Fatalf("sim time stats not populated: %+v", st)
	}
}

// Range search must return exactly the brute-force set of segments
// within eps, sorted ascending.
func TestSearchRangeMatchesBrute(t *testing.T) {
	dev := testDevice(t)
	rng := rand.New(rand.NewSource(40))
	p := smallParams()
	hist := randwalk(rng, 400)
	ix, err := New(dev, hist, p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	const h = 2
	// Pick eps as twice the 5-NN distance so the sets are non-trivial.
	ref, err := scan.BruteKNN(hist, hist[len(hist)-p.ELV[0]:], p.Rho, 5, h)
	if err != nil {
		t.Fatal(err)
	}
	eps := ref[len(ref)-1].Dist * 2

	res, err := ix.SearchRange(eps, h)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range p.ELV {
		// Brute force: all candidates within eps.
		all, err := scan.BruteKNN(hist, hist[len(hist)-d:], p.Rho, 1<<20, h)
		if err != nil {
			t.Fatal(err)
		}
		var want []scan.Result
		for _, r := range all {
			if r.Dist <= eps {
				want = append(want, r)
			}
		}
		got := res[i].Neighbors
		if len(got) != len(want) {
			t.Fatalf("d=%d: %d in range, want %d", d, len(got), len(want))
		}
		for j := range want {
			if math.Abs(got[j].Dist-want[j].Dist) > 1e-9*(1+want[j].Dist) {
				t.Fatalf("d=%d result %d: %v vs %v", d, j, got[j].Dist, want[j].Dist)
			}
			if j > 0 && got[j-1].Dist > got[j].Dist {
				t.Fatalf("d=%d: results unsorted", d)
			}
		}
	}

	counts, err := ix.CountRange(eps, h)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range p.ELV {
		if counts[d] != len(res[i].Neighbors) {
			t.Fatalf("d=%d: count %d vs %d", d, counts[d], len(res[i].Neighbors))
		}
	}
}

func TestSearchRangeErrors(t *testing.T) {
	dev := testDevice(t)
	rng := rand.New(rand.NewSource(41))
	ix, err := New(dev, randwalk(rng, 300), smallParams())
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if _, err := ix.SearchRange(-1, 1); err == nil {
		t.Fatal("negative eps should fail")
	}
	if _, err := ix.SearchRange(math.NaN(), 1); err == nil {
		t.Fatal("NaN eps should fail")
	}
	if _, err := ix.SearchRange(1, 0); err == nil {
		t.Fatal("h=0 should fail")
	}
	if _, err := ix.SearchRange(0, 1); err != nil {
		t.Fatal("eps=0 should be legal (exact matches only)")
	}
	ix.Close()
	if _, err := ix.SearchRange(1, 1); err == nil {
		t.Fatal("closed index should fail")
	}
}

func TestMemoryFootprintMatchesDeviceUsage(t *testing.T) {
	dev := testDevice(t)
	rng := rand.New(rand.NewSource(50))
	ix, err := New(dev, randwalk(rng, 400), smallParams())
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	fp := ix.MemoryFootprint()
	if fp.HistoryBytes != 8*400 {
		t.Fatalf("history bytes %d", fp.HistoryBytes)
	}
	if fp.PostingBytes <= 0 || fp.Total() != fp.HistoryBytes+fp.PostingBytes {
		t.Fatalf("footprint %+v inconsistent", fp)
	}
	if used := dev.UsedBytes(); used != fp.Total() {
		t.Fatalf("device reports %d, footprint says %d", used, fp.Total())
	}
	// Growth keeps them in step, up to the ≤ω points booked lazily at
	// the next disjoint-window completion.
	p := ix.Params()
	for i := 0; i < 20; i++ {
		if err := ix.Advance(rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	slack := int64(8 * p.Omega)
	if used := dev.UsedBytes(); used < ix.MemoryFootprint().Total()-slack {
		t.Fatalf("device usage %d fell behind footprint %d", used, ix.MemoryFootprint().Total())
	}
}

// Multiple indexes share one device concurrently (the paper's
// multi-sensor deployment: one index per sensor, more blocks). Each
// goroutine must stay exact while the device interleaves launches.
func TestConcurrentIndexesOnOneDevice(t *testing.T) {
	dev := testDevice(t)
	p := smallParams()
	const sensors = 4
	errs := make(chan error, sensors)
	var wg sync.WaitGroup
	for s := 0; s < sensors; s++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			all := randwalk(rng, 340)
			ix, err := New(dev, all[:300], p)
			if err != nil {
				errs <- err
				return
			}
			defer ix.Close()
			for step := 300; step < len(all); step++ {
				if err := ix.Advance(all[step]); err != nil {
					errs <- err
					return
				}
				if step%10 != 0 {
					continue
				}
				res, err := ix.Search(5, 2)
				if err != nil {
					errs <- err
					return
				}
				hist := all[:step+1]
				for i, d := range p.ELV {
					want, err := scan.BruteKNN(hist, hist[len(hist)-d:], p.Rho, 5, 2)
					if err != nil {
						errs <- err
						return
					}
					if len(res[i].Neighbors) != len(want) {
						errs <- fmt.Errorf("sensor %d d=%d: %d vs %d neighbours",
							seed, d, len(res[i].Neighbors), len(want))
						return
					}
					for j := range want {
						if math.Abs(res[i].Neighbors[j].Dist-want[j].Dist) > 1e-9*(1+want[j].Dist) {
							errs <- fmt.Errorf("sensor %d: distance mismatch", seed)
							return
						}
					}
				}
			}
		}(int64(s + 100))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
