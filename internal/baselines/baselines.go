// Package baselines reimplements the ten competitors the paper
// evaluates SMiLer against (Section 6.3.1), in pure Go:
//
// Offline (eager) learners, trained once on segment→label pairs:
//
//   - PSGP — projected/sparse Gaussian Process with M "active points"
//     (subset-of-data projection, DTC predictive equations) [25, 9].
//   - VLGP — sparse GP with variationally-motivated inducing point
//     selection (greedy farthest-point coverage stands in for the
//     Titsias bound maximization) [65].
//   - NysSVR — kernel regression with a rank-r Nyström feature map
//     (squared loss replaces the ε-insensitive loss; the predictive
//     family and the low-rank bottleneck are what the comparison
//     exercises) [69].
//   - SgdSVR — linear ε-insensitive SVR trained by SGD [75].
//   - SgdRR — linear robust (Huber) regression trained by SGD [59].
//
// Online learners, updated as the stream arrives:
//
//   - LazyKNN — kNN regression weighted by inverse DTW distance [4].
//   - FullHW / SegHW — additive Holt-Winters on the full history or a
//     trailing window [71, 38].
//   - OnlineSVR / OnlineRR — the linear models above in one-pass SGD
//     form [14].
//
// Variance estimates for the non-probabilistic models follow the
// paper's practice of deriving a confidence from training residuals
// (libSVM's error-distribution fit): a Gaussian with the residual
// variance.
package baselines

import (
	"errors"
	"fmt"
)

// Prediction is a Gaussian predictive summary (mean, variance).
type Prediction struct {
	Mean     float64
	Variance float64
}

// Regressor is an offline (eager) model trained once on input/target
// pairs.
type Regressor interface {
	// Name identifies the method in experiment tables.
	Name() string
	// Train fits the model; x rows are feature vectors (time series
	// segments), y the h-step-ahead labels.
	Train(x [][]float64, y []float64) error
	// Predict evaluates the trained model.
	Predict(x []float64) (Prediction, error)
}

// OnlineRegressor is a model updated one observation at a time.
type OnlineRegressor interface {
	Name() string
	// Update folds one (segment, label) pair into the model.
	Update(x []float64, y float64) error
	// Predict evaluates the current model.
	Predict(x []float64) (Prediction, error)
}

// Common errors.
var (
	ErrNotTrained = errors.New("baselines: model not trained")
	ErrNoData     = errors.New("baselines: empty training set")
	ErrDims       = errors.New("baselines: dimension mismatch")
)

func checkTraining(x [][]float64, y []float64) (dim int, err error) {
	if len(x) == 0 || len(y) == 0 {
		return 0, ErrNoData
	}
	if len(x) != len(y) {
		return 0, fmt.Errorf("%w: %d inputs vs %d targets", ErrDims, len(x), len(y))
	}
	dim = len(x[0])
	for i := range x {
		if len(x[i]) != dim {
			return 0, fmt.Errorf("%w: row %d", ErrDims, i)
		}
	}
	return dim, nil
}

// varFloor keeps residual-based variances positive.
const varFloor = 1e-9

// SegmentDataset converts a raw series into the supervised pairs
// (segment of length d ending at t, value at t+h) that the offline
// models train on. maxPairs ≤ 0 means "all"; otherwise the most recent
// maxPairs pairs are kept (eager learners in the paper train on the
// full history).
func SegmentDataset(series []float64, d, h, maxPairs int) (x [][]float64, y []float64, err error) {
	if d <= 0 || h <= 0 {
		return nil, nil, fmt.Errorf("baselines: d=%d h=%d must be positive", d, h)
	}
	n := len(series)
	first := 0
	last := n - d - h // segment start s covers [s, s+d), label at s+d-1+h
	if last < first {
		return nil, nil, fmt.Errorf("%w: series of %d points has no (d=%d,h=%d) pairs", ErrNoData, n, d, h)
	}
	if maxPairs > 0 && last-first+1 > maxPairs {
		first = last - maxPairs + 1
	}
	for s := first; s <= last; s++ {
		x = append(x, series[s:s+d])
		y = append(y, series[s+d-1+h])
	}
	return x, y, nil
}
