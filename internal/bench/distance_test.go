package bench

import (
	"os"
	"strings"
	"testing"
)

func TestRunDistanceMeasureAblation(t *testing.T) {
	c := tinyCorpus(t)
	rows, err := RunDistanceMeasureAblation(c, 4, 8, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]DistanceRow{}
	for _, r := range rows {
		if r.Samples == 0 || r.MAE < 0 {
			t.Fatalf("malformed row %+v", r)
		}
		byName[r.Measure] = r
	}
	for _, want := range []string{"DTW", "Euclidean", "LCSS", "ERP", "EDR"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("missing measure %s", want)
		}
	}
	// The paper's motivating claim: DTW-kNN is competitive with every
	// alternative. Allow a small tolerance at this tiny scale.
	for _, r := range rows {
		if byName["DTW"].MAE > r.MAE*1.25 {
			t.Fatalf("DTW (%v) should be competitive with %s (%v)",
				byName["DTW"].MAE, r.Measure, r.MAE)
		}
	}
	if !strings.Contains(FormatDistanceAblation(rows), "EDR") {
		t.Fatal("format output incomplete")
	}
	if _, err := RunDistanceMeasureAblation(c, 0, 8, 32, 1); err == nil {
		t.Fatal("steps=0 should fail")
	}
}

func TestRunDownsampleTradeoff(t *testing.T) {
	c := tinyCorpus(t)
	rows, err := RunDownsampleTradeoff(c, []float64{1.0, 0.5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	full, half := rows[0], rows[1]
	if half.PerSensorBytes >= full.PerSensorBytes {
		t.Fatalf("downsampled footprint %d should be < full %d",
			half.PerSensorBytes, full.PerSensorBytes)
	}
	if half.MaxSensors <= full.MaxSensors {
		t.Fatalf("downsampled capacity %d should be > full %d",
			half.MaxSensors, full.MaxSensors)
	}
	if half.MAE <= 0 || full.MAE <= 0 {
		t.Fatal("MAE must be positive")
	}
	if !strings.Contains(FormatDownsample(rows), "max sensors") {
		t.Fatal("format output incomplete")
	}
	if _, err := RunDownsampleTradeoff(c, nil, 4); err == nil {
		t.Fatal("empty fractions should fail")
	}
	if _, err := RunDownsampleTradeoff(c, []float64{2}, 4); err == nil {
		t.Fatal("fraction > 1 should fail")
	}
	if _, err := RunDownsampleTradeoff(c, []float64{0.5}, 0); err == nil {
		t.Fatal("steps=0 should fail")
	}
}

func TestTSVWritersAndSave(t *testing.T) {
	var buf strings.Builder
	if err := WriteTSV(&buf, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}}); err != nil {
		t.Fatal(err)
	}
	want := "a\tb\n1\t2\n3\t4\n"
	if buf.String() != want {
		t.Fatalf("WriteTSV = %q", buf.String())
	}
	if err := WriteTSV(&buf, nil, nil); err == nil {
		t.Fatal("empty header should fail")
	}
	if err := WriteTSV(&buf, []string{"a"}, [][]string{{"1", "2"}}); err == nil {
		t.Fatal("ragged row should fail")
	}

	h, rows := Fig7TSV([]Fig7Row{{Dataset: "ROAD", Method: MethodSMiLerIdx, K: 32, WallSec: 0.5, SimSec: 0.1}})
	if len(h) != 5 || len(rows) != 1 || rows[0][1] != "SMiLer-Idx" {
		t.Fatalf("Fig7TSV = %v %v", h, rows)
	}
	h, rows = AccuracyTSV([]AccuracyRow{{Dataset: "NET", Method: MSMiLerGP, H: 5, MAE: 0.1, MNLPD: 0.2, Coverage95: 0.9, Samples: 7}})
	if len(h) != 7 || rows[0][2] != "5" || rows[0][5] != "0.900" {
		t.Fatalf("AccuracyTSV = %v %v", h, rows)
	}
	h, rows = Fig13TSV([]Fig13Row{{Dataset: "MALL", ActivePoints: 16, TrainSecPer: 1, PSGPMae: 2, SMiLerGPMae: 3}})
	if len(h) != 5 || rows[0][1] != "16" {
		t.Fatalf("Fig13TSV = %v %v", h, rows)
	}
	h, rows = Table3TSV([]Table3Row{{Dataset: "ROAD", Bound: 0, VerifyWallSec: 1, VerifySimSec: 2, Unfiltered: 3.4}})
	if len(h) != 5 || rows[0][4] != "3.4" {
		t.Fatalf("Table3TSV = %v %v", h, rows)
	}

	dir := t.TempDir()
	path := dir + "/sub/series.tsv"
	if err := SaveTSV(path, []string{"x"}, [][]string{{"1"}}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "x\n1\n" {
		t.Fatalf("saved %q", data)
	}
}
