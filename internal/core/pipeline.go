package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smiler/internal/gp"
	"smiler/internal/index"
	"smiler/internal/memsys"
	"smiler/internal/obs"
)

// ErrPanicked wraps a panic recovered inside a prediction worker. A
// misbehaving predictor (or an injected fault) must never take the
// process down: the panic is converted into an error carrying this
// sentinel so callers can classify it and degrade.
var ErrPanicked = errors.New("core: recovered panic in predictor")

// PipelineConfig configures a per-sensor pipeline.
type PipelineConfig struct {
	// EKV is the Ensemble kNN Vector (paper default {8,16,32}).
	EKV []int
	// Index holds the search parameters; its ELV is the Ensemble
	// Length Vector.
	Index index.Params
	// Horizon is the default look-ahead h used by the continuous loop.
	Horizon int
	// Factory builds one predictor per ensemble cell; nil means the
	// paper's GP predictor.
	Factory PredictorFactory
	// Ensemble tunes the auto-tuning mechanism (ablations).
	Ensemble EnsembleConfig
	// PredictWorkers bounds the worker pool evaluating the ensemble's
	// ELV columns in parallel during the Prediction Step: 0 means
	// min(GOMAXPROCS, columns), 1 forces the sequential reference path,
	// n > 1 caps the pool at n. Columns are independent, so the output
	// is identical at any setting.
	PredictWorkers int
	// Anytime turns the Predict deadline into a quality budget instead
	// of a hard failure: the index must be configured for progressive
	// search (index.SetAnytime), the context deadline governs the Search
	// Step only — an expired deadline stops the cost-ordered
	// verification rounds and the search returns its best-so-far kNN
	// sets — and the bounded post-search phases (GP fits on ≤ k
	// neighbours, the mix) always run to completion. LastQuality reports
	// whether the last prediction was exact or progressive and how good
	// the progressive set is estimated to be. With no deadline on the
	// context, anytime predictions are bit-identical to exact ones.
	Anytime bool
	// SharedHyper turns on per-column hyperparameter sharing: the
	// column's GP hyperparameters are fitted once at the largest k and
	// every smaller-k cell reuses the leading principal block of the
	// resulting Cholesky factor. Exact under the shared hyperparameters
	// (a leading submatrix of a Cholesky factor is the factor of the
	// leading submatrix), but the smaller cells no longer tune their own
	// Θ — an accuracy/time trade-off, off by default.
	SharedHyper bool
}

// DefaultPipelineConfig returns the paper's defaults (Table 2): the
// 3×3 ensemble EKV={8,16,32} × ELV={32,64,96}, ρ=8, ω=16, h=1, GP
// predictors.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		EKV:     []int{8, 16, 32},
		Index:   index.DefaultParams(),
		Horizon: 1,
		Factory: func() Predictor { return NewGP() },
	}
}

// pendingUpdate remembers the per-cell predictions made for a future
// time step so the self-adaptive reweighting can run once the truth
// arrives.
type pendingUpdate struct {
	target int // history index the prediction refers to
	preds  []CellPrediction
}

// Pipeline is the per-sensor SMiLer engine: the Search Step (Suffix
// kNN Search on the index) feeding the Prediction Step (the ensemble
// of semi-lazy predictors), with the adaptive auto-tuning loop closed
// by Observe.
type Pipeline struct {
	ix        *index.Index
	ens       *Ensemble
	cfg       PipelineConfig
	pending   []pendingUpdate
	timing    PhaseTiming
	obsTiming ObserveTiming
	quality   QualityInfo
}

// QualityInfo describes the quality rung of the most recent Predict
// call on the exact → progressive → fallback ladder. The pipeline only
// ever produces the first two rungs; the serving layer adds "fallback"
// when it substitutes an AR(1) prediction for a failed search.
type QualityInfo struct {
	// Tag is "exact" (every candidate the filter kept was verified — the
	// result is the true kNN answer) or "progressive" (the deadline
	// stopped verification early and the result is the best-so-far set).
	Tag string
	// Estimate is the ProS-style probability that the progressive set
	// already equals the exact answer (1 for exact predictions).
	Estimate float64
	// FracVerified is the fraction of filter-surviving candidates whose
	// exact distance was computed before the deadline.
	FracVerified float64
	// LBGap is 1 − minUnverifiedLB/kthDist: how far the most promising
	// unverified candidate is from provably not mattering (0 for exact).
	LBGap float64
	// Rounds is the number of progressive verification rounds the Search
	// Step ran (0 in exact mode or when seeds covered every survivor).
	Rounds int
}

// LastQuality reports the quality of the most recent Predict call.
func (p *Pipeline) LastQuality() QualityInfo { return p.quality }

// PhaseTiming reports where the last Predict call spent its time.
// SearchSec vs PredictSec is the two-way split Fig. 12 plots; the
// remaining fields break each side down further so the serving
// system's per-phase latency histograms see every stage of a
// prediction: the group-level lower-bound pass and the DTW
// verification inside the Search Step, and the per-cell model fits
// plus the ensemble mix inside the Prediction Step.
type PhaseTiming struct {
	// SearchSec is the whole Search Step (kNN retrieval).
	SearchSec float64
	// LowerBoundSec is the group-level LBen pass within the search
	// (wall clock; the threshold seeding and k-selection make up the
	// difference to SearchSec).
	LowerBoundSec float64
	// VerifySec is the exact banded-DTW verification within the search.
	VerifySec float64
	// PredictSec is the whole Prediction Step (model construction,
	// evaluation and mixing).
	PredictSec float64
	// CellFitSec is the time spent fitting and evaluating the awake
	// ensemble cells' predictors (GP training dominates here).
	CellFitSec float64
	// MixSec is the ensemble mixing time.
	MixSec float64
}

// ObserveTiming reports where the last Observe call spent its time:
// the self-adaptive reweighting of matured predictions vs the
// incremental index advance.
type ObserveTiming struct {
	ReweightSec float64
	AdvanceSec  float64
}

// NewPipeline builds a pipeline over an existing index. The index's
// ELV is the ensemble's length vector.
func NewPipeline(ix *index.Index, cfg PipelineConfig) (*Pipeline, error) {
	if ix == nil {
		return nil, errors.New("core: nil index")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("core: horizon %d must be positive", cfg.Horizon)
	}
	if len(cfg.EKV) == 0 {
		return nil, errors.New("core: empty EKV")
	}
	factory := cfg.Factory
	if factory == nil {
		factory = func() Predictor { return NewGP() }
	}
	ens, err := NewEnsemble(cfg.EKV, ix.Params().ELV, factory, cfg.Ensemble)
	if err != nil {
		return nil, err
	}
	return &Pipeline{ix: ix, ens: ens, cfg: cfg}, nil
}

// Index returns the underlying SMiLer index.
func (p *Pipeline) Index() *index.Index { return p.ix }

// Ensemble returns the ensemble (for inspection and tests).
func (p *Pipeline) Ensemble() *Ensemble { return p.ens }

// Predict runs one Search Step + Prediction Step for horizon h and
// returns the mixed posterior. The per-cell predictions are queued so
// that when the observation for the predicted time step arrives via
// Observe, the ensemble weights adapt.
func (p *Pipeline) Predict(h int) (Prediction, error) {
	return p.PredictTraced(h, nil)
}

// PredictTraced is Predict with per-phase tracing: when tr is
// non-nil, one span is recorded for the index search (with nested
// lower-bound and verify spans from the index's own wall clocks), one
// per awake ensemble cell's model fit, and one for the mix, plus the
// search's kNN effectiveness stats. A nil trace costs nothing.
func (p *Pipeline) PredictTraced(h int, tr *obs.Trace) (Prediction, error) {
	return p.PredictTracedCtx(context.Background(), h, tr)
}

// PredictTracedCtx is PredictTraced with a deadline: the context is
// checked at every phase boundary (before the search, before the cell
// fits, before the mix) and inside the search at verify-chunk
// granularity, so an expired deadline surfaces as ctx.Err() within one
// in-flight chunk rather than after the whole pipeline. In anytime
// mode (PipelineConfig.Anytime) the deadline instead budgets the
// Search Step: the search returns best-so-far results when it expires,
// and the bounded post-search phases always run to completion.
func (p *Pipeline) PredictTracedCtx(ctx context.Context, h int, tr *obs.Trace) (Prediction, error) {
	if h <= 0 {
		return Prediction{}, fmt.Errorf("core: horizon %d must be positive", h)
	}
	p.timing = PhaseTiming{}
	p.quality = QualityInfo{}
	if err := ctx.Err(); err != nil {
		return Prediction{}, err
	}
	searchStart := time.Now()
	results, err := p.ix.SearchCtx(ctx, p.ens.MaxK(), h)
	if err != nil {
		return Prediction{}, fmt.Errorf("core: search step failed: %w", err)
	}
	p.timing.SearchSec = time.Since(searchStart).Seconds()
	p.recordSearch(tr, searchStart)
	post := p.postSearchCtx(ctx)
	if err := post.Err(); err != nil {
		return Prediction{}, err
	}
	predictStart := time.Now()
	byD := make(map[int]index.ItemResult, len(results))
	for _, r := range results {
		byD[r.D] = r
	}

	n := p.ix.Len()
	preds, err := p.cellPredictions(post, byD, h, n, tr)
	if err != nil {
		return Prediction{}, err
	}
	if err := post.Err(); err != nil {
		return Prediction{}, err
	}
	mixed, err := p.mixTimed(preds, tr)
	if err != nil {
		return Prediction{}, err
	}
	p.timing.PredictSec = time.Since(predictStart).Seconds()
	p.pending = append(p.pending, pendingUpdate{target: n - 1 + h, preds: preds})
	return mixed, nil
}

// postSearchCtx resolves the context governing the post-search phases:
// in anytime mode the deadline budgets the search only — the remaining
// work (GP fits on at most MaxK neighbours, the mix) is bounded and
// always completes, otherwise a deadline generous enough for a
// progressive search would still void its result one phase later.
func (p *Pipeline) postSearchCtx(ctx context.Context) context.Context {
	if p.cfg.Anytime {
		return context.Background()
	}
	return ctx
}

// progRoundSpanCap bounds how many per-round verify spans one trace
// records; deeper rounds collapse into a single tail span.
const progRoundSpanCap = 12

// recordSearch folds the search phase into the trace and the timing
// struct: the span covering the whole Search Step plus the index's
// wall-clock split of lower-bound production vs DTW verification and
// its kNN effectiveness counters. It also derives the prediction's
// quality rung from the search stats and, in anytime mode, records the
// per-round progressive spans and quality counters.
func (p *Pipeline) recordSearch(tr *obs.Trace, searchStart time.Time) {
	st := p.ix.Stats()
	p.timing.LowerBoundSec = st.LowerBoundWallSeconds
	p.timing.VerifySec = st.VerifyWallSeconds
	q := QualityInfo{Tag: "exact", Estimate: 1, FracVerified: 1}
	if p.cfg.Anytime {
		q.Rounds = st.Rounds
		if st.Progressive {
			q.Tag = "progressive"
			q.Estimate = st.ProbExact
			q.FracVerified = st.FracVerified
			q.LBGap = st.LBGap
		}
	}
	p.quality = q
	if tr == nil {
		return
	}
	searchDur := time.Duration(p.timing.SearchSec * float64(time.Second))
	base := searchStart
	tr.AddSpan("search", "", sinceTraceStart(tr, base), searchDur)
	lbDur := time.Duration(st.LowerBoundWallSeconds * float64(time.Second))
	tr.AddSpan("lower_bound", "", sinceTraceStart(tr, base), lbDur)
	tr.AddSpan("verify", "", sinceTraceStart(tr, base.Add(lbDur)),
		time.Duration(st.VerifyWallSeconds*float64(time.Second)))
	if p.cfg.Anytime {
		at := base.Add(lbDur)
		for i, sec := range st.RoundWallSeconds {
			dur := time.Duration(sec * float64(time.Second))
			if i == progRoundSpanCap {
				// Collapse the tail so deep sweeps don't bloat the trace.
				var rest float64
				for _, s := range st.RoundWallSeconds[i:] {
					rest += s
				}
				tr.AddSpan("verify_round", fmt.Sprintf("rounds %d..%d", i+1, len(st.RoundWallSeconds)),
					sinceTraceStart(tr, at), time.Duration(rest*float64(time.Second)))
				break
			}
			tr.AddSpan("verify_round", fmt.Sprintf("round %d", i+1), sinceTraceStart(tr, at), dur)
			at = at.Add(dur)
		}
		tr.SetStat("progressive_rounds", float64(st.Rounds))
		tr.SetStat("verified_at_deadline", float64(st.VerifiedAtDeadline))
		tr.SetStat("lb_model_hits", float64(st.LBModelHits))
		tr.SetStat("quality_estimate", q.Estimate)
	}
	tr.SetStat("knn_candidates", float64(st.Candidates))
	tr.SetStat("knn_pruned", float64(st.Pruned()))
	tr.SetStat("knn_unfiltered", float64(st.Unfiltered))
	tr.SetStat("gpu_sim_seconds", st.LowerBoundSimSeconds+st.VerifySimSeconds)
}

// sinceTraceStart converts an absolute instant to a trace offset.
func sinceTraceStart(tr *obs.Trace, at time.Time) time.Duration {
	return at.Sub(tr.Start)
}

// mixTimed runs the ensemble mix under a span and the MixSec timer.
func (p *Pipeline) mixTimed(preds []CellPrediction, tr *obs.Trace) (Prediction, error) {
	end := tr.StartSpan("mix", "")
	mixStart := time.Now()
	mixed, err := p.ens.Mix(preds)
	p.timing.MixSec += time.Since(mixStart).Seconds()
	end()
	return mixed, err
}

// Timing reports the phase breakdown of the most recent Predict call.
func (p *Pipeline) Timing() PhaseTiming { return p.timing }

// LastObserveTiming reports the phase breakdown of the most recent
// Observe call.
func (p *Pipeline) LastObserveTiming() ObserveTiming { return p.obsTiming }

// PredictMulti runs one Search Step shared across several horizons
// (the index verifies each candidate segment at most once) and one
// Prediction Step per horizon, returning the mixed posterior for each.
// It is equivalent to calling Predict for every horizon, at a fraction
// of the search cost.
func (p *Pipeline) PredictMulti(hs []int) (map[int]Prediction, error) {
	return p.PredictMultiTraced(hs, nil)
}

// PredictMultiTraced is PredictMulti with per-phase tracing (see
// PredictTraced); the cell-fit spans carry the horizon they belong to.
func (p *Pipeline) PredictMultiTraced(hs []int, tr *obs.Trace) (map[int]Prediction, error) {
	return p.PredictMultiTracedCtx(context.Background(), hs, tr)
}

// PredictMultiTracedCtx is PredictMultiTraced with a deadline (see
// PredictTracedCtx); the context is additionally checked between
// horizons.
func (p *Pipeline) PredictMultiTracedCtx(ctx context.Context, hs []int, tr *obs.Trace) (map[int]Prediction, error) {
	if len(hs) == 0 {
		return nil, errors.New("core: empty horizon list")
	}
	for _, h := range hs {
		if h <= 0 {
			return nil, fmt.Errorf("core: horizon %d must be positive", h)
		}
	}
	p.timing = PhaseTiming{}
	p.quality = QualityInfo{}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	searchStart := time.Now()
	resultsByH, err := p.ix.SearchMultiCtx(ctx, p.ens.MaxK(), hs)
	if err != nil {
		return nil, fmt.Errorf("core: search step failed: %w", err)
	}
	p.timing.SearchSec = time.Since(searchStart).Seconds()
	p.recordSearch(tr, searchStart)
	post := p.postSearchCtx(ctx)
	predictStart := time.Now()

	n := p.ix.Len()
	out := make(map[int]Prediction, len(hs))
	for _, h := range hs {
		if err := post.Err(); err != nil {
			return nil, err
		}
		byD := make(map[int]index.ItemResult, len(resultsByH[h]))
		for _, r := range resultsByH[h] {
			byD[r.D] = r
		}
		preds, err := p.cellPredictions(post, byD, h, n, tr)
		if err != nil {
			return nil, err
		}
		mixed, err := p.mixTimed(preds, tr)
		if err != nil {
			return nil, err
		}
		out[h] = mixed
		p.pending = append(p.pending, pendingUpdate{target: n - 1 + h, preds: preds})
	}
	p.timing.PredictSec = time.Since(predictStart).Seconds()
	return out, nil
}

// predColumn groups the awake cells of one ELV column (same item-query
// length d) with their slots in the output slice. Cells of one column
// consume nested prefixes of one sorted neighbor list, so the column is
// the unit of shared materialization and of parallel evaluation.
type predColumn struct {
	d     int
	item  index.ItemResult
	cells []*Cell
	slots []int
}

// spanRec is a trace span recorded off the hot path: obs.Trace is not
// goroutine-safe, so parallel column workers collect spans locally and
// the join appends them in deterministic column order.
type spanRec struct {
	name, detail string
	start        time.Time
	dur          time.Duration
}

// colOutcome is one column worker's result.
type colOutcome struct {
	fitSec float64
	spans  []spanRec
	err    error
}

// predictWorkers resolves the Prediction-Step pool size for a given
// column count.
func (p *Pipeline) predictWorkers(ncols int) int {
	w := p.cfg.PredictWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > ncols {
		w = ncols
	}
	if w < 1 {
		w = 1
	}
	return w
}

// cellPredictions evaluates every awake ensemble cell on its kNN data
// for one horizon, recording one fit span per cell. Cells are grouped
// by column: each column materializes its neighbor segments, labels and
// Gram base once, and independent columns run on a bounded worker pool.
// Output order, timing sums and span order are deterministic and
// identical at any worker count.
func (p *Pipeline) cellPredictions(ctx context.Context, byD map[int]index.ItemResult, h, n int, tr *obs.Trace) ([]CellPrediction, error) {
	var cols []*predColumn
	byCol := make(map[int]*predColumn, len(byD))
	slots := 0
	for _, cell := range p.ens.Cells() {
		if cell.Sleeping() {
			continue
		}
		pc := byCol[cell.D]
		if pc == nil {
			item, ok := byD[cell.D]
			if !ok {
				return nil, fmt.Errorf("core: search returned no results for d=%d", cell.D)
			}
			pc = &predColumn{d: cell.D, item: item}
			byCol[cell.D] = pc
			cols = append(cols, pc)
		}
		pc.cells = append(pc.cells, cell)
		pc.slots = append(pc.slots, slots)
		slots++
	}
	if slots == 0 {
		return nil, nil
	}

	results := make([]CellPrediction, slots)
	valid := make([]bool, slots)
	outs := make([]colOutcome, len(cols))
	workers := p.predictWorkers(len(cols))
	if workers <= 1 {
		for i, pc := range cols {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			outs[i] = p.safePredictColumn(pc, h, n, tr != nil, results, valid)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(cols) {
						return
					}
					if err := ctx.Err(); err != nil {
						outs[i] = colOutcome{err: err}
						continue // mark every remaining column cancelled
					}
					outs[i] = p.safePredictColumn(cols[i], h, n, tr != nil, results, valid)
				}
			}()
		}
		wg.Wait()
	}

	// Deterministic join: first error by column order wins; fit seconds
	// and spans accumulate in column order regardless of completion
	// order, so traces and timings are stable under parallelism.
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
	}
	for i := range outs {
		p.timing.CellFitSec += outs[i].fitSec
		if tr != nil {
			for _, s := range outs[i].spans {
				tr.AddSpan(s.name, s.detail, s.start.Sub(tr.Start), s.dur)
			}
		}
	}
	preds := make([]CellPrediction, 0, slots)
	for i := range results {
		if valid[i] {
			preds = append(preds, results[i])
		}
	}
	return preds, nil
}

// safePredictColumn runs predictColumn with a panic guard: a panic in
// any predictor (a numerical pathology or an injected fault) is
// recovered into an ErrPanicked-wrapped error on the column's outcome
// instead of crossing the worker-goroutine boundary and killing the
// process.
func (p *Pipeline) safePredictColumn(pc *predColumn, h, n int, traced bool, results []CellPrediction, valid []bool) (out colOutcome) {
	defer func() {
		if r := recover(); r != nil {
			out.err = fmt.Errorf("%w: column d=%d h=%d: %v", ErrPanicked, pc.d, h, r)
		}
	}()
	return p.predictColumn(pc, h, n, traced, results, valid)
}

// predictColumn evaluates one column's cells: neighbor segments and
// labels are materialized once at the column's largest usable k, every
// cell takes a prefix, and GP cells share the column's Gram base. Runs
// on the worker pool — it must not touch the trace, the timing struct
// or any other column's slots.
func (p *Pipeline) predictColumn(pc *predColumn, h, n int, traced bool, results []CellPrediction, valid []bool) colOutcome {
	var out colOutcome
	neighbors := pc.item.Neighbors
	if len(neighbors) == 0 {
		return out // every cell of the column is skipped
	}
	kmax := 0
	for _, c := range pc.cells {
		if c.K > kmax {
			kmax = c.K
		}
	}
	if kmax > len(neighbors) {
		kmax = len(neighbors)
	}
	d := pc.d
	// One pooled slab backs the neighbor segments, labels and query:
	// kmax rows of d values, then kmax labels, then the d-length query.
	// Everything handed to gp below subslices this buffer; the end of
	// this column (all cells done, nothing retained) is the
	// deterministic join point where it returns to the pool.
	flat := memsys.GetFloats(kmax*d + kmax + d)
	defer memsys.PutFloats(flat)
	x := make([][]float64, kmax)
	y := flat[kmax*d : kmax*d+kmax]
	for i := 0; i < kmax; i++ {
		seg := flat[i*d : (i+1)*d]
		t := neighbors[i].T
		for j := 0; j < d; j++ {
			seg[j] = p.ix.Value(t + j)
		}
		x[i] = seg
		y[i] = p.ix.Value(t + d - 1 + h)
	}
	x0 := flat[kmax*d+kmax:]
	for j := 0; j < d; j++ {
		x0[j] = p.ix.Value(n - d + j)
	}

	// The shared Gram base is only worth building when a predictor can
	// consume it (pure-AR ensembles skip the O(k²d) construction).
	var col *gp.Column
	defer func() { col.Release() }() // nil-safe; after the last cell of the column
	for _, c := range pc.cells {
		if _, ok := c.Pred.(ColumnPredictor); ok {
			var err error
			col, err = gp.NewColumn(x0, x, y)
			if err != nil {
				out.err = fmt.Errorf("core: column d=%d: %w", d, err)
				return out
			}
			break
		}
	}

	if p.cfg.SharedHyper && col != nil && p.sharedColumnCells(pc, col, kmax, h, traced, results, valid, &out) {
		return out
	}

	for ci, cell := range pc.cells {
		k := cell.K
		if k > kmax {
			k = kmax
		}
		fitStart := time.Now()
		var pr Prediction
		var err error
		if cp, ok := cell.Pred.(ColumnPredictor); ok {
			pr, err = cp.PredictColumn(col, k)
		} else {
			pr, err = cell.Pred.Predict(x0, x[:k], y[:k])
		}
		dur := time.Since(fitStart)
		out.fitSec += dur.Seconds()
		if traced {
			out.spans = append(out.spans, spanRec{
				name:   strings.ToLower(cell.Pred.Name()) + "_fit",
				detail: fmt.Sprintf("k=%d d=%d h=%d", cell.K, cell.D, h),
				start:  fitStart,
				dur:    dur,
			})
		}
		if err != nil {
			out.err = fmt.Errorf("core: predictor (k=%d,d=%d) failed: %w", cell.K, cell.D, err)
			return out
		}
		results[pc.slots[ci]] = CellPrediction{Cell: cell, Pred: pr}
		valid[pc.slots[ci]] = true
	}
	return out
}

// sharedColumnCells attempts the opt-in SharedHyper path: the column's
// largest-k GP cell trains Θ once on the full column, the covariance is
// factored once, and every GP cell is conditioned from the leading
// principal block of that one Cholesky factor (exact under the shared
// Θ). Returns false — leaving the per-cell path to run — when the
// column has no GP driver at kmax or any shared step fails; non-GP
// cells inside an otherwise shared column still use their own Predict.
func (p *Pipeline) sharedColumnCells(pc *predColumn, col *gp.Column, kmax, h int, traced bool, results []CellPrediction, valid []bool, out *colOutcome) bool {
	var driver *GPPredictor
	for _, c := range pc.cells {
		k := c.K
		if k > kmax {
			k = kmax
		}
		if k == kmax {
			if g, ok := c.Pred.(*GPPredictor); ok {
				driver = g
				break
			}
		}
	}
	if driver == nil {
		return false
	}
	fitStart := time.Now()
	hyper, err := driver.OptimizeColumnHyper(col)
	var sf *gp.SharedFactor
	// Released on every exit path — including the return-false fallbacks
	// to the per-cell path, which refit from the (still live) column.
	defer func() { sf.Release() }()
	if err == nil {
		sf, err = col.Factor(hyper)
	}
	dur := time.Since(fitStart)
	out.fitSec += dur.Seconds()
	if traced {
		out.spans = append(out.spans, spanRec{
			name:   "gp_shared_hyper",
			detail: fmt.Sprintf("kmax=%d d=%d h=%d", kmax, pc.d, h),
			start:  fitStart,
			dur:    dur,
		})
	}
	if err != nil {
		return false
	}
	x0 := col.X0()
	pscratch := memsys.GetFloats(2 * kmax)
	defer memsys.PutFloats(pscratch)
	for ci, cell := range pc.cells {
		k := cell.K
		if k > kmax {
			k = kmax
		}
		fitStart := time.Now()
		var pr Prediction
		var err error
		if _, ok := cell.Pred.(*GPPredictor); ok {
			var m *gp.Model
			m, err = sf.ModelAt(k)
			if err == nil {
				var mean, variance float64
				mean, variance, err = m.PredictBuf(x0, pscratch[:2*k])
				if k < kmax {
					// Prefix models are per-cell transients; the full-k
					// model aliases sf and is released with it.
					m.Release()
				}
				if variance < varianceFloor {
					variance = varianceFloor
				}
				pr = Prediction{Mean: mean, Variance: variance}
			}
		} else {
			x, y := col.XY(k)
			pr, err = cell.Pred.Predict(x0, x, y)
		}
		dur := time.Since(fitStart)
		out.fitSec += dur.Seconds()
		if traced {
			out.spans = append(out.spans, spanRec{
				name:   strings.ToLower(cell.Pred.Name()) + "_fit",
				detail: fmt.Sprintf("k=%d d=%d h=%d shared", cell.K, cell.D, h),
				start:  fitStart,
				dur:    dur,
			})
		}
		if err != nil {
			return false // fall back to the per-cell path
		}
		results[pc.slots[ci]] = CellPrediction{Cell: cell, Pred: pr}
		valid[pc.slots[ci]] = true
	}
	return true
}

// Observe feeds the next observation into the pipeline: it closes the
// auto-tuning loop for any prediction whose target time step this
// observation is, then advances the index (continuous reuse path).
func (p *Pipeline) Observe(v float64) error {
	t := p.ix.Len() // index the new observation will occupy
	reweightStart := time.Now()
	kept := p.pending[:0]
	for _, pu := range p.pending {
		switch {
		case pu.target == t:
			p.ens.Update(pu.preds, v)
		case pu.target > t:
			kept = append(kept, pu)
		}
		// Targets below t are stale (already matched or skipped).
	}
	p.pending = kept
	advanceStart := time.Now()
	p.obsTiming.ReweightSec = advanceStart.Sub(reweightStart).Seconds()
	err := p.ix.Advance(v)
	p.obsTiming.AdvanceSec = time.Since(advanceStart).Seconds()
	return err
}

// PendingUpdates reports how many predictions still await their truth.
func (p *Pipeline) PendingUpdates() int { return len(p.pending) }

// DropPendingFor discards any queued auto-tuning update whose target
// is the given history index — used when the observation for that step
// will never arrive (missing readings imputed by the system itself
// must not be scored as truth).
func (p *Pipeline) DropPendingFor(target int) {
	kept := p.pending[:0]
	for _, pu := range p.pending {
		if pu.target != target {
			kept = append(kept, pu)
		}
	}
	p.pending = kept
}
