package cluster

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"smiler"
	"smiler/internal/ingest"
	"smiler/internal/server"
)

// internalNode is one in-process member for tests that need access to
// unexported node internals (pause, replicator bookkeeping).
type internalNode struct {
	id   string
	sys  *smiler.System
	srv  *server.Server
	ts   *httptest.Server
	node *Node
}

func internalSysConfig() smiler.Config {
	cfg := smiler.DefaultConfig()
	cfg.Omega = 8
	cfg.ELV = []int{16, 24, 40}
	cfg.EKV = []int{4, 8}
	cfg.Predictor = smiler.PredictorAR
	return cfg
}

func internalHist(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 50 + 10*math.Sin(2*math.Pi*float64(i)/48)
	}
	return out
}

// newInternalPair brings up a two-node cluster with direct access to
// the Node structs.
func newInternalPair(t *testing.T) [2]*internalNode {
	t.Helper()
	var nodes [2]*internalNode
	members := make([]Member, len(nodes))
	for i, id := range []string{"p1", "p2"} {
		sys, err := smiler.New(internalSysConfig())
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.NewWithOptions(sys, server.Options{
			NodeID:   id,
			Pipeline: ingest.Config{Shards: 2, QueueSize: 64},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		nodes[i] = &internalNode{id: id, sys: sys, srv: srv, ts: ts}
		members[i] = Member{ID: id, URL: ts.URL}
	}
	for _, in := range nodes {
		node, err := New(in.sys, in.srv, Config{
			Self:              in.id,
			Members:           members,
			Replicas:          1,
			ProbeInterval:     15 * time.Millisecond,
			ProbeFailures:     2,
			HeartbeatInterval: 10 * time.Millisecond,
			HTTPClient:        &http.Client{Timeout: 2 * time.Second},
		})
		if err != nil {
			t.Fatal(err)
		}
		in.node = node
	}
	t.Cleanup(func() {
		for _, in := range nodes {
			in.node.Close()
			in.ts.Close()
			in.srv.Close()
			in.sys.Close()
		}
	})
	return nodes
}

// TestBulkObserveRejectsPausedSensor: while a sensor is quiesced for
// snapshot/migration, a bulk batch containing it must not apply on
// this node — directly (503 to the caller) or via a forwarded
// partition (the owner rejects, the entry reports the item failed).
// An observation applied under the pause would miss the migration
// snapshot and be lost at cutover.
func TestBulkObserveRejectsPausedSensor(t *testing.T) {
	nodes := newInternalPair(t)
	const sensor = "pause-bulk"
	ownerMember, _ := nodes[0].node.route(sensor)
	var owner, other *internalNode
	for _, in := range nodes {
		if in.id == ownerMember.ID {
			owner = in
		} else {
			other = in
		}
	}
	if err := owner.sys.AddSensor(sensor, internalHist(400)); err != nil {
		t.Fatal(err)
	}

	const body = `{"observations":[{"id":"` + sensor + `","value":51}]}`
	post := func(url string) *http.Response {
		t.Helper()
		resp, err := http.Post(url+"/observations", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	owner.node.pauseSensor(sensor)

	// Directly on the quiescing owner: the whole batch answers 503 with
	// a retry hint, nothing applies.
	resp := post(owner.ts.URL)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("bulk on paused owner: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 for a quiescing sensor must carry Retry-After")
	}

	// Through the other node: the partition forwards to the owner, whose
	// pause check rejects it; the entry reports the item as failed.
	resp = post(other.ts.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk via non-owner: HTTP %d, want 200 with per-item failure", resp.StatusCode)
	}
	var res ingest.BulkResult
	if err := readJSON(resp.Body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 0 || len(res.Failed) != 1 {
		t.Fatalf("bulk via non-owner during pause: %+v, want 0 accepted / 1 failed", res)
	}

	owner.node.unpauseSensor(sensor)
	resp = post(owner.ts.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk after unpause: HTTP %d, want 200", resp.StatusCode)
	}
	if err := readJSON(resp.Body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 1 {
		t.Fatalf("bulk after unpause: %+v, want 1 accepted", res)
	}
	if err := owner.srv.Pipeline().Drain(); err != nil {
		t.Fatal(err)
	}
	if got, _ := owner.sys.HistoryLen(sensor); got != 401 {
		t.Fatalf("owner history = %d, want 401 (exactly the post-unpause item)", got)
	}
}

// TestSinceContactSeededAtBoot: a peer that is already down when this
// node starts must accrue staleness from process start — not read as
// freshly contacted forever, which would let a restarted replica serve
// degraded reads past MaxStaleness indefinitely.
func TestSinceContactSeededAtBoot(t *testing.T) {
	sys, err := smiler.New(internalSysConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	srv, err := server.NewWithOptions(sys, server.Options{
		Pipeline: ingest.Config{Shards: 1, QueueSize: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	node, err := New(sys, srv, Config{
		Self: "a",
		Members: []Member{
			{ID: "a", URL: ts.URL},
			{ID: "dead", URL: "http://127.0.0.1:9"}, // never answers
		},
		ProbeInterval: 10 * time.Millisecond,
		HTTPClient:    &http.Client{Timeout: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	time.Sleep(30 * time.Millisecond)
	if got := node.repl.sinceContact("dead"); got <= 0 {
		t.Fatalf("sinceContact for a never-heard member = %v, want > 0 (seeded at boot)", got)
	}
	// Ids outside the membership are not routable and stay at zero.
	if got := node.repl.sinceContact("not-a-member"); got != 0 {
		t.Fatalf("sinceContact for a non-member = %v, want 0", got)
	}
}
