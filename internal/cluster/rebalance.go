// Resumable, batched, rate-limited rebalancing.
//
// The elected primary drives every rebalance. Each round it recomputes
// the plan from live cluster state — ask every member which sensors it
// holds, compare each sensor's effective owner against its target-ring
// owner — and migrates the misplaced ones through the bit-exact
// /cluster/migrate primitive in bounded batches with a pacing pause
// between them. There is no separate progress file: every completed
// migration is already durable cluster state (snapshot shipped,
// ownership override broadcast), so a primary that crashes mid-batch
// is replaced by the next elected primary, which recomputes the
// remaining plan and continues where the last committed move left off.
//
// Once the plan is empty and no move is blocked on a down node, the
// primary finalizes the map: joining members become active, draining
// members leave. The finalize is what makes the placement ring equal
// the target ring; until then the per-sensor overrides carry routing.
package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// moveOp is one planned sensor migration.
type moveOp struct {
	Sensor, From, To string
}

type rebalancer struct {
	n       *Node
	kick    chan struct{}
	running atomic.Bool
	moved   atomic.Int64 // sensors migrated by this node's rebalancer
	pending atomic.Int64 // misplaced sensors in the latest plan
	lastErr atomic.Value // string
}

func newRebalancer(n *Node) *rebalancer {
	return &rebalancer{n: n, kick: make(chan struct{}, 1)}
}

// kickNow nudges the rebalancer; coalesces while a run is in flight.
func (rb *rebalancer) kickNow() {
	select {
	case rb.kick <- struct{}{}:
	default:
	}
}

func (rb *rebalancer) loop() {
	defer rb.n.wg.Done()
	for {
		select {
		case <-rb.n.done:
			return
		case <-rb.kick:
		}
		rb.run()
	}
}

// run drives rounds until the cluster converges on the target ring
// (then finalizes), this node stops being primary, or the node closes.
func (rb *rebalancer) run() {
	if !rb.running.CompareAndSwap(false, true) {
		return
	}
	defer rb.running.Store(false)
	n := rb.n
	for {
		select {
		case <-n.done:
			return
		default:
		}
		v := n.curView()
		if v == nil || n.electedPrimary() != n.cfg.Self {
			// A deposed primary's plan counter is dead state — the new
			// primary recomputes its own plan.
			rb.pending.Store(0)
			return
		}
		if !viewNeedsRebalance(v) {
			rb.pending.Store(0)
			return
		}
		plan, blocked, err := rb.computePlan(v)
		if err != nil {
			rb.noteErr(err)
			if !rb.pause() {
				return
			}
			continue
		}
		rb.pending.Store(int64(len(plan) + blocked))
		if len(plan) == 0 {
			if blocked == 0 {
				if err := n.proposeFinalize(); err != nil {
					rb.noteErr(err)
					if !rb.pause() {
						return
					}
				}
				continue
			}
			// Moves remain but their source or target is down: wait for
			// it to come back (or be decommissioned) and re-plan.
			if !rb.pause() {
				return
			}
			continue
		}
		if n.log != nil {
			n.log.Info("rebalance round", "moves", len(plan), "blocked", blocked)
		}
		for i, op := range plan {
			select {
			case <-n.done:
				return
			default:
			}
			if n.electedPrimary() != n.cfg.Self {
				rb.pending.Store(0)
				return
			}
			if err := rb.migrateOne(v, op); err != nil {
				rb.noteErr(fmt.Errorf("move %s %s->%s: %w", op.Sensor, op.From, op.To, err))
			} else {
				rb.moved.Add(1)
				rb.pending.Add(-1)
			}
			if (i+1)%n.cfg.RebalanceBatch == 0 && !rb.pause() {
				return
			}
		}
		if !rb.pause() {
			return
		}
	}
}

// pause sleeps one pacing interval; false means the node is closing.
func (rb *rebalancer) pause() bool {
	select {
	case <-rb.n.done:
		return false
	case <-time.After(rb.n.cfg.RebalanceInterval):
		return true
	}
}

func (rb *rebalancer) noteErr(err error) {
	rb.lastErr.Store(err.Error())
	if rb.n.log != nil {
		rb.n.log.Warn("rebalance", "err", err)
	}
}

// computePlan lists every sensor whose effective owner differs from
// its target-ring owner. Discovery asks each member for its resident
// sensor ids (replicas dedupe via the set); an unreachable member only
// hides sensors that exist nowhere else, and the next round retries.
// blocked counts misplaced sensors whose move cannot run yet because
// the source or target is down.
func (rb *rebalancer) computePlan(v *memberView) (plan []moveOp, blocked int, err error) {
	n := rb.n
	sensors := make(map[string]struct{})
	ids := make([]string, 0, len(v.members))
	for id := range v.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	reached := 0
	for _, id := range ids {
		if id == n.cfg.Self {
			for _, s := range n.sys.Sensors() {
				sensors[s] = struct{}{}
			}
			reached++
			continue
		}
		list, lerr := rb.fetchSensors(v.members[id].URL)
		if lerr != nil {
			continue
		}
		reached++
		for _, s := range list {
			sensors[s] = struct{}{}
		}
	}
	if reached == 0 {
		return nil, 0, errors.New("no member reachable for sensor discovery")
	}
	all := make([]string, 0, len(sensors))
	for s := range sensors {
		all = append(all, s)
	}
	sort.Strings(all)
	for _, s := range all {
		tgt := v.target.Owner(s)
		if tgt == "" {
			continue
		}
		owner, promoted := n.route(s)
		if owner.ID == "" || owner.ID == tgt {
			continue
		}
		if promoted || !n.health.isUp(owner.ID) || !n.health.isUp(tgt) {
			blocked++
			continue
		}
		plan = append(plan, moveOp{Sensor: s, From: owner.ID, To: tgt})
	}
	return plan, blocked, nil
}

func (rb *rebalancer) fetchSensors(base string) ([]string, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/cluster/sensors", nil)
	if err != nil {
		return nil, err
	}
	rb.n.peerHeaders(req)
	resp, err := rb.n.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var out struct {
		Sensors []string `json:"sensors"`
	}
	if err := readJSON(resp.Body, &out); err != nil {
		return nil, err
	}
	return out.Sensors, nil
}

// migrateOne drives one bit-exact move through the source's
// /cluster/migrate. A 409 means the source no longer owns the sensor;
// when the cluster already routes it to the target (another primary's
// earlier move), the move counts as done.
func (rb *rebalancer) migrateOne(v *memberView, op moveOp) error {
	n := rb.n
	src, ok := v.members[op.From]
	if !ok {
		return fmt.Errorf("source %q left the map", op.From)
	}
	body, _ := json.Marshal(MigrateRequest{Sensor: op.Sensor, Target: op.To})
	req, err := http.NewRequest(http.MethodPost, src.URL+"/cluster/migrate", bytes.NewReader(body))
	if err != nil {
		return err
	}
	n.peerHeaders(req)
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		if owner, _ := n.route(op.Sensor); owner.ID == op.To {
			return nil
		}
		// The source's view may know a cutover this node missed (a
		// restarted primary that slept through the override broadcast):
		// ask the source where it routes the sensor, and if that is the
		// target, adopt the override and re-broadcast it.
		var route SensorRoute
		if rerr := rb.fetchRoute(src.URL, op.Sensor, &route); rerr == nil && route.Owner == op.To {
			n.setAssign(op.Sensor, op.To)
			n.broadcastAssign(op.Sensor, op.To)
			return nil
		}
		return fmt.Errorf("source answered 409: %s", strings.TrimSpace(string(raw)))
	default:
		return fmt.Errorf("source answered HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
}

// fetchRoute reads one sensor's placement as another member sees it.
func (rb *rebalancer) fetchRoute(base, sensor string, out *SensorRoute) error {
	req, err := http.NewRequest(http.MethodGet, base+"/cluster/ring?sensor="+url.QueryEscape(sensor), nil)
	if err != nil {
		return err
	}
	rb.n.peerHeaders(req)
	resp, err := rb.n.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return readJSON(resp.Body, out)
}

// RebalanceStatus is GET /cluster/rebalance: this node's rebalancer
// counters (only meaningful on the primary, but served everywhere).
type RebalanceStatus struct {
	Primary   string `json:"primary"`
	Epoch     uint64 `json:"epoch"`
	Active    bool   `json:"active"`
	Moved     int64  `json:"moved"`
	Pending   int64  `json:"pending"`
	LastError string `json:"last_error,omitempty"`
}

func (n *Node) handleRebalance(w http.ResponseWriter, r *http.Request) {
	n.stampEpoch(w)
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	st := RebalanceStatus{
		Primary: n.electedPrimary(),
		Epoch:   n.epoch(),
		Active:  n.reb.running.Load(),
		Moved:   n.reb.moved.Load(),
		Pending: n.reb.pending.Load(),
	}
	if e, _ := n.reb.lastErr.Load().(string); e != "" {
		st.LastError = e
	}
	writeJSON(w, http.StatusOK, st)
}
