package ingest

import (
	"strings"
	"sync"
	"testing"
)

func TestForecastCachedUntilNextObservation(t *testing.T) {
	sys := newFakeSystem()
	p := mustPipeline(t, sys, Config{Shards: 2})

	f1, err := p.Forecast("s", 1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := p.Forecast("s", 1)
	if err != nil {
		t.Fatal(err)
	}
	if sys.predictCalls.Load() != 1 {
		t.Fatalf("predict ran %d times for identical requests, want 1", sys.predictCalls.Load())
	}
	if f1.Mean != f2.Mean {
		t.Fatalf("cached forecast diverged: %v vs %v", f1.Mean, f2.Mean)
	}
	// A different horizon is a different cache key.
	if _, err := p.Forecast("s", 3); err != nil {
		t.Fatal(err)
	}
	if sys.predictCalls.Load() != 2 {
		t.Fatalf("distinct horizon should recompute, got %d calls", sys.predictCalls.Load())
	}

	// Observing the sensor invalidates its cache; the next forecast
	// sees the post-observation state.
	if ok, err := p.Observe("s", 42); !ok || err != nil {
		t.Fatalf("observe: ok=%v err=%v", ok, err)
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	f3, err := p.Forecast("s", 1)
	if err != nil {
		t.Fatal(err)
	}
	if sys.predictCalls.Load() != 3 {
		t.Fatalf("observation should invalidate cache, got %d calls", sys.predictCalls.Load())
	}
	if f3.Mean != float64(sys.applied.Load()) {
		t.Fatalf("post-observation forecast stale: mean %v", f3.Mean)
	}

	st := p.Stats().Coalesce
	if st.CacheHits != 1 || st.Misses != 3 || st.Invalidations == 0 {
		t.Fatalf("coalesce stats = %+v", st)
	}
}

// TestNonExactForecastNeverCached pins the quality-ladder cache
// policy: exact (and legacy untagged) forecasts cache, while
// progressive and fallback answers are recomputed on every request —
// a deadline-truncated or degraded result must not shadow the exact
// answer a later caller could get.
func TestNonExactForecastNeverCached(t *testing.T) {
	sys := newFakeSystem()
	p := mustPipeline(t, sys, Config{Shards: 2})

	for _, tc := range []struct {
		quality   string
		cacheable bool
	}{
		{"progressive", false},
		{"fallback", false},
		{"exact", true},
		{"", true},
	} {
		sys.quality.Store(tc.quality)
		// Fresh cache state per case: invalidate via an observation.
		if ok, err := p.Observe("s", 1); !ok || err != nil {
			t.Fatalf("observe: ok=%v err=%v", ok, err)
		}
		if err := p.Drain(); err != nil {
			t.Fatal(err)
		}
		before := sys.predictCalls.Load()
		for i := 0; i < 3; i++ {
			f, err := p.Forecast("s", 1)
			if err != nil {
				t.Fatalf("quality %q: forecast: %v", tc.quality, err)
			}
			if f.Quality != tc.quality {
				t.Fatalf("quality %q: forecast tagged %q", tc.quality, f.Quality)
			}
		}
		calls := sys.predictCalls.Load() - before
		if tc.cacheable && calls != 1 {
			t.Fatalf("quality %q: predict ran %d times, want 1 (cached)", tc.quality, calls)
		}
		if !tc.cacheable && calls != 3 {
			t.Fatalf("quality %q: predict ran %d times, want 3 (never cached)", tc.quality, calls)
		}
	}
}

// TestForecastSingleFlight aims a thundering herd of identical
// requests at one (sensor, horizon): exactly one Predict runs, every
// caller gets its result.
func TestForecastSingleFlight(t *testing.T) {
	sys := newFakeSystem()
	sys.predictGate = make(chan struct{})
	p := mustPipeline(t, sys, Config{Shards: 1})

	const herd = 8
	results := make(chan float64, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, err := p.Forecast("s", 1)
			if err != nil {
				t.Errorf("forecast: %v", err)
				return
			}
			results <- f.Mean
		}()
	}
	// Predict blocks on the gate, so every follower must be either
	// waiting on the flight or served from cache after it lands. Wait
	// until all but the leader are accounted for, then release.
	waitFor(t, "herd to coalesce", func() bool {
		return p.Stats().Coalesce.CoalescedWaits == herd-1
	})
	close(sys.predictGate)
	wg.Wait()
	close(results)

	if calls := sys.predictCalls.Load(); calls != 1 {
		t.Fatalf("herd of %d triggered %d predictions, want 1", herd, calls)
	}
	var first float64
	n := 0
	for m := range results {
		if n == 0 {
			first = m
		} else if m != first {
			t.Fatalf("herd results diverged: %v vs %v", m, first)
		}
		n++
	}
	if n != herd {
		t.Fatalf("got %d results, want %d", n, herd)
	}
}

// TestStaleFlightNotCached: an observation that lands while a
// forecast is computing must keep the (pre-observation) result out of
// the cache.
func TestStaleFlightNotCached(t *testing.T) {
	sys := newFakeSystem()
	sys.predictGate = make(chan struct{})
	p := mustPipeline(t, sys, Config{Shards: 1})

	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Forecast("s", 1)
	}()
	waitFor(t, "leader to start computing", func() bool {
		return sys.predictCalls.Load() == 1
	})
	if ok, err := p.Observe("s", 7); !ok || err != nil {
		t.Fatalf("observe: ok=%v err=%v", ok, err)
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	close(sys.predictGate)
	<-done

	// The stale result must not serve the next request from cache.
	f, err := p.Forecast("s", 1)
	if err != nil {
		t.Fatal(err)
	}
	if sys.predictCalls.Load() != 2 {
		t.Fatalf("stale flight was cached: %d calls", sys.predictCalls.Load())
	}
	if f.Mean != float64(sys.applied.Load()) {
		t.Fatalf("stale mean %v served", f.Mean)
	}
}

func TestForecastErrorsNotCached(t *testing.T) {
	sys := newFakeSystem()
	sys.known = map[string]bool{}
	p := mustPipeline(t, sys, Config{Shards: 1})
	for i := 0; i < 2; i++ {
		if _, err := p.Forecast("ghost", 1); err == nil || !strings.Contains(err.Error(), "unknown sensor") {
			t.Fatalf("forecast #%d: %v", i, err)
		}
	}
	if sys.predictCalls.Load() != 2 {
		t.Fatalf("errors must not be cached: %d calls", sys.predictCalls.Load())
	}
	if st := p.Stats().Coalesce; st.CacheSize != 0 {
		t.Fatalf("error cached: %+v", st)
	}
}

func TestInvalidateAndCacheBound(t *testing.T) {
	sys := newFakeSystem()
	p := mustPipeline(t, sys, Config{Shards: 1})
	// Fill past the per-sensor horizon bound; overflow horizons are
	// recomputed, not cached.
	for h := 1; h <= maxCachedHorizons+5; h++ {
		if _, err := p.Forecast("s", h); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.Stats().Coalesce; st.CacheSize != maxCachedHorizons {
		t.Fatalf("cache size %d, want %d", st.CacheSize, maxCachedHorizons)
	}
	// Out-of-band invalidation (sensor removal) empties it.
	p.Invalidate("s")
	if st := p.Stats().Coalesce; st.CacheSize != 0 {
		t.Fatalf("cache not flushed: %+v", st)
	}
}
