package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler fails the first failures requests with the given status
// and then serves a fixed JSON body.
type flakyHandler struct {
	failures int32
	status   int
	calls    atomic.Int32
	body     any
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := f.calls.Add(1)
	if n <= atomic.LoadInt32(&f.failures) {
		w.WriteHeader(f.status)
		json.NewEncoder(w).Encode(errorResponse{Error: "transient"})
		return
	}
	json.NewEncoder(w).Encode(f.body)
}

func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

func TestClientRetriesFlakyGET(t *testing.T) {
	h := &flakyHandler{failures: 2, status: http.StatusServiceUnavailable, body: []string{"a", "b"}}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(fastRetry(3))

	ids, err := c.Sensors()
	if err != nil {
		t.Fatalf("GET should have recovered after retries, got %v", err)
	}
	if len(ids) != 2 || ids[0] != "a" {
		t.Fatalf("ids = %v, want [a b]", ids)
	}
	if got := h.calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
}

// TestClientConcurrentRetries hammers one shared Client from many
// goroutines against a server that fails every other request, so most
// GETs go through the backoff path concurrently. A shared Client must
// be safe for concurrent use (only SetRetryPolicy is exempt); the
// jitter source in particular must not race — run under -race.
func TestClientConcurrentRetries(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1)%2 == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(errorResponse{Error: "transient"})
			return
		}
		json.NewEncoder(w).Encode([]string{"a"})
	}))
	defer ts.Close()

	c, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(fastRetry(4))

	// With requests from 8 goroutines interleaving on the shared
	// counter, one GET can draw the failing parity on all its attempts
	// and exhaust its budget — that outcome is fine (it still walked the
	// backoff path); any other error is not.
	const goroutines, gets = 8, 20
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			for i := 0; i < gets; i++ {
				if _, err := c.Sensors(); err != nil && !strings.Contains(err.Error(), "transient") {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatalf("concurrent GET failed with a non-transient error: %v", err)
		}
	}
}

func TestClientRetryBudgetExhausted(t *testing.T) {
	h := &flakyHandler{failures: 100, status: http.StatusInternalServerError, body: nil}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(fastRetry(3))

	if _, err := c.Sensors(); err == nil {
		t.Fatal("want error after retry budget exhausted")
	} else if !strings.Contains(err.Error(), "HTTP 500") {
		t.Fatalf("err = %v, want the final HTTP 500", err)
	}
	if got := h.calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want exactly the 3-attempt budget", got)
	}
}

func TestClientNoRetryOn4xx(t *testing.T) {
	h := &flakyHandler{failures: 100, status: http.StatusNotFound, body: nil}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(fastRetry(5))

	if _, err := c.Sensors(); err == nil {
		t.Fatal("want error on 404")
	}
	if got := h.calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests; 4xx must not be retried", got)
	}
}

func TestClientNoRetryOnPOST(t *testing.T) {
	h := &flakyHandler{failures: 100, status: http.StatusServiceUnavailable, body: nil}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(fastRetry(5))

	if err := c.Observe("s", 1.0); err == nil {
		t.Fatal("want error on failing POST")
	}
	if got := h.calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests; POST must never be retried", got)
	}
}

func TestClientRetryTransportError(t *testing.T) {
	// A server that is started and immediately closed yields a
	// connection-refused transport error on every attempt.
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()

	c, err := NewClient(url, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(fastRetry(3))

	start := time.Now()
	if _, err := c.Sensors(); err == nil {
		t.Fatal("want transport error")
	}
	// Two backoff sleeps (1ms, 2ms) must have happened; generous bound.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retries took %v, backoff not bounded", elapsed)
	}
}

func TestClientRetryRespectsContext(t *testing.T) {
	h := &flakyHandler{failures: 100, status: http.StatusServiceUnavailable, body: nil}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 50, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = c.doCtx(ctx, http.MethodGet, "/sensors", nil, nil)
	if err == nil {
		t.Fatal("want error under cancelled context")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled retry loop ran %v; must stop promptly", elapsed)
	}
	if got := h.calls.Load(); got >= 50 {
		t.Fatalf("server saw %d requests; cancellation must cut the budget short", got)
	}
}
