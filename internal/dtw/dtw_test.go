package dtw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSeries(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	v := 0.0
	for i := range out {
		v += rng.NormFloat64() * 0.5
		out[i] = v
	}
	return out
}

func TestDistanceIdentical(t *testing.T) {
	q := []float64{1, 2, 3, 4, 5}
	got, err := Distance(q, q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("DTW(q,q) = %v, want 0", got)
	}
}

func TestDistanceZeroBandIsEuclidean(t *testing.T) {
	q := []float64{1, 2, 3}
	c := []float64{2, 2, 5}
	got, err := Distance(q, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 + 0 + 4 // squared pointwise
	if got != want {
		t.Fatalf("DTW ρ=0 = %v, want %v", got, want)
	}
}

func TestDistanceKnownWarp(t *testing.T) {
	// A one-step shift is absorbed by warping with ρ≥1.
	q := []float64{0, 1, 2, 3, 4}
	c := []float64{0, 0, 1, 2, 3}
	d0, _ := Distance(q, c, 0)
	d1, _ := Distance(q, c, 1)
	if d1 >= d0 {
		t.Fatalf("warping should help: ρ=1 %v vs ρ=0 %v", d1, d0)
	}
	if d1 != 1 { // only the final 4↔3 mismatch remains
		t.Fatalf("DTW ρ=1 = %v, want 1", d1)
	}
}

func TestDistanceErrors(t *testing.T) {
	if _, err := Distance([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := Distance(nil, nil, 1); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := Distance([]float64{1}, []float64{1}, -1); err == nil {
		t.Fatal("expected negative rho error")
	}
	if _, err := DistanceCompressed([]float64{1}, []float64{1, 2}, 1, nil); err == nil {
		t.Fatal("expected length error (compressed)")
	}
	if _, err := DistanceCompressed([]float64{1}, []float64{1}, -1, nil); err == nil {
		t.Fatal("expected negative rho error (compressed)")
	}
	if _, _, err := DistanceEarlyAbandon([]float64{1}, nil, 1, 1); err == nil {
		t.Fatal("expected length error (early abandon)")
	}
}

func TestDistanceCompressedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		rho := rng.Intn(10)
		q := randSeries(rng, n)
		c := randSeries(rng, n)
		want, err := Distance(q, c, rho)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DistanceCompressed(q, c, rho, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d (n=%d ρ=%d): compressed %v != reference %v", trial, n, rho, got, want)
		}
	}
}

func TestDistanceCompressedScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	scratch := NewCompressedScratch(4)
	q := randSeries(rng, 20)
	c := randSeries(rng, 20)
	want, _ := Distance(q, c, 4)
	for i := 0; i < 3; i++ { // reuse must not leak state across calls
		got, err := DistanceCompressed(q, c, 4, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("call %d: %v != %v", i, got, want)
		}
	}
	if CompressedScratchLen(4) != len(scratch) {
		t.Fatal("scratch length mismatch")
	}
}

func TestEnvelopeBasics(t *testing.T) {
	v := []float64{1, 3, 2, 5, 4}
	e := NewEnvelope(v, 1)
	wantU := []float64{3, 3, 5, 5, 5}
	wantL := []float64{1, 1, 2, 2, 4}
	for i := range v {
		if e.Upper[i] != wantU[i] || e.Lower[i] != wantL[i] {
			t.Fatalf("envelope[%d] = (%v,%v), want (%v,%v)", i, e.Upper[i], e.Lower[i], wantU[i], wantL[i])
		}
	}
	if e.Len() != 5 {
		t.Fatal("Len wrong")
	}
}

func TestEnvelopeContainsSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	v := randSeries(rng, 50)
	e := NewEnvelope(v, 5)
	for i := range v {
		if v[i] > e.Upper[i] || v[i] < e.Lower[i] {
			t.Fatalf("series escapes its own envelope at %d", i)
		}
	}
}

func TestLBKeoghZeroInsideEnvelope(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	e := NewEnvelope(v, 2)
	lb, err := LBKeogh(e, v)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 0 {
		t.Fatalf("LBKeogh of series vs own envelope = %v, want 0", lb)
	}
	if _, err := LBKeogh(e, []float64{1}); err == nil {
		t.Fatal("expected length error")
	}
}

// The defining property of the index: every lower bound is ≤ the true
// banded DTW distance (Theorem 4.1).
func TestQuickLowerBoundsAreLowerBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(48)
		rho := rng.Intn(8)
		q := randSeries(rng, n)
		c := randSeries(rng, n)
		d, err := Distance(q, c, rho)
		if err != nil {
			return false
		}
		eps := 1e-9 * (1 + d)
		lq, err := LBEQ(q, c, rho)
		if err != nil || lq > d+eps {
			return false
		}
		lc, err := LBEC(q, c, rho)
		if err != nil || lc > d+eps {
			return false
		}
		le, err := LBEn(q, c, rho)
		if err != nil || le > d+eps {
			return false
		}
		return le >= lq-eps && le >= lc-eps // max dominates both
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLBEnErrors(t *testing.T) {
	if _, err := LBEn([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Fatal("expected length error")
	}
}

func TestDistanceEarlyAbandon(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	q := randSeries(rng, 30)
	c := randSeries(rng, 30)
	d, _ := Distance(q, c, 4)

	got, ok, err := DistanceEarlyAbandon(q, c, 4, d+1)
	if err != nil || !ok {
		t.Fatalf("should complete under loose threshold: ok=%v err=%v", ok, err)
	}
	if math.Abs(got-d) > 1e-9 {
		t.Fatalf("early-abandon distance %v != %v", got, d)
	}

	_, ok, err = DistanceEarlyAbandon(q, c, 4, d/1000)
	if err != nil {
		t.Fatal(err)
	}
	if ok && d > 0 {
		t.Fatal("should abandon under tight threshold")
	}
}

// Property: early-abandon with an always-sufficient threshold agrees
// with the reference implementation.
func TestQuickEarlyAbandonAgreesWhenNotAbandoned(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		rho := rng.Intn(6)
		q := randSeries(rng, n)
		c := randSeries(rng, n)
		want, err := Distance(q, c, rho)
		if err != nil {
			return false
		}
		got, ok, err := DistanceEarlyAbandon(q, c, rho, want*2+1)
		return err == nil && ok && math.Abs(got-want) <= 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: DTW distance never increases as the band widens.
func TestQuickDTWMonotoneInBand(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		q := randSeries(rng, n)
		c := randSeries(rng, n)
		prev := math.Inf(1)
		for rho := 0; rho <= 6; rho++ {
			d, err := Distance(q, c, rho)
			if err != nil {
				return false
			}
			if d > prev+1e-9 {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDistanceFull64(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	q := randSeries(rng, 64)
	c := randSeries(rng, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Distance(q, c, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistanceCompressed64(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	q := randSeries(rng, 64)
	c := randSeries(rng, 64)
	scratch := NewCompressedScratch(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DistanceCompressed(q, c, 8, scratch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLBEn64(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	q := randSeries(rng, 64)
	c := randSeries(rng, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LBEn(q, c, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLBKim(t *testing.T) {
	q := []float64{1, 5, 9}
	c := []float64{2, 0, 7}
	lb, err := LBKim(q, c)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 1+4 {
		t.Fatalf("LBKim = %v, want 5", lb)
	}
	one, err := LBKim([]float64{3}, []float64{1})
	if err != nil || one != 4 {
		t.Fatalf("LBKim single = %v err=%v", one, err)
	}
	if _, err := LBKim(nil, nil); err == nil {
		t.Fatal("empty should fail")
	}
	if _, err := LBKim([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

// Property: LBKim never exceeds the banded DTW distance.
func TestQuickLBKimIsLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		rho := rng.Intn(8)
		q := randSeries(rng, n)
		c := randSeries(rng, n)
		d, err := Distance(q, c, rho)
		if err != nil {
			return false
		}
		lb, err := LBKim(q, c)
		if err != nil {
			return false
		}
		return lb <= d+1e-9*(1+d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
