package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := run("mall", 2, 0, 1, 7, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1+144 { // header + one day of 10-minute samples
		t.Fatalf("got %d lines", len(lines))
	}
	header := strings.Split(lines[0], ",")
	if len(header) != 2 || !strings.HasPrefix(header[0], "MALL-") {
		t.Fatalf("header = %v", header)
	}
	for _, line := range lines[1:] {
		if len(strings.Split(line, ",")) != 2 {
			t.Fatalf("ragged row %q", line)
		}
	}
}

func TestRunKindsAndDuplicates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "net.csv")
	if err := run("net", 1, 3, 1, 1, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	header := strings.Split(strings.SplitN(string(data), "\n", 2)[0], ",")
	if len(header) != 3 {
		t.Fatalf("duplicates not applied: %v", header)
	}
	if err := run("road", 1, 0, 1, 1, filepath.Join(t.TempDir(), "r.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", 1, 0, 1, 1, ""); err == nil {
		t.Fatal("unknown kind should fail")
	}
	if err := run("road", 0, 0, 1, 1, ""); err == nil {
		t.Fatal("invalid generator config should fail")
	}
	if err := run("road", 1, 0, 1, 1, "/nonexistent-dir/x.csv"); err == nil {
		t.Fatal("unwritable output should fail")
	}
}
