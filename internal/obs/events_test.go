package obs

import (
	"io"
	"strings"
	"sync"
	"testing"
)

func TestEventRingRecordAndSince(t *testing.T) {
	reg := NewRegistry()
	r := NewEventRing(4, reg)
	r.SetNode("n1")
	r.Record(Event{Type: "failover", Severity: SevError, Detail: "peer down"})
	r.Record(Event{Type: "checkpoint"})
	if got := r.LastSeq(); got != 2 {
		t.Fatalf("LastSeq = %d, want 2", got)
	}
	evs := r.Since(0, 0)
	if len(evs) != 2 {
		t.Fatalf("Since(0) = %d events, want 2", len(evs))
	}
	if evs[0].Seq != 1 || evs[0].Type != "failover" || evs[0].Severity != SevError {
		t.Fatalf("first event = %+v", evs[0])
	}
	if evs[1].Severity != SevInfo {
		t.Fatalf("default severity = %q, want info", evs[1].Severity)
	}
	for _, ev := range evs {
		if ev.Node != "n1" {
			t.Fatalf("node not stamped: %+v", ev)
		}
		if ev.Time.IsZero() {
			t.Fatalf("time not stamped: %+v", ev)
		}
	}
	if got := r.Since(1, 0); len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("Since(1) = %+v", got)
	}

	// Overflow: the ring keeps only the newest capacity events.
	for i := 0; i < 10; i++ {
		r.Record(Event{Type: "filler"})
	}
	evs = r.Since(0, 0)
	if len(evs) != 4 {
		t.Fatalf("after overflow Since = %d events, want capacity 4", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if evs[len(evs)-1].Seq != 12 {
		t.Fatalf("newest seq = %d, want 12", evs[len(evs)-1].Seq)
	}

	// The counter saw every record, labeled by type and severity.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`smiler_events_total{type="failover",severity="error"} 1`,
		`smiler_events_total{type="filler",severity="info"} 10`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

func TestEventRingWriteTo(t *testing.T) {
	r := NewEventRing(8, nil)
	r.SetNode("n2")
	r.Record(Event{Type: "wal_replay", Sensor: "s1", TraceID: "deadbeef", Detail: "records=3"})
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	line := b.String()
	for _, want := range []string{"[info]", "wal_replay", "node=n2", "sensor=s1", "trace=deadbeef", "records=3"} {
		if !strings.Contains(line, want) {
			t.Errorf("dump missing %q: %s", want, line)
		}
	}
}

func TestEventRingNil(t *testing.T) {
	var r *EventRing
	r.SetNode("x")
	if seq := r.Record(Event{Type: "t"}); seq != 0 {
		t.Fatalf("nil Record = %d", seq)
	}
	if r.LastSeq() != 0 || r.Since(0, 0) != nil {
		t.Fatal("nil ring not inert")
	}
	if _, err := r.WriteTo(io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestEventRingConcurrent races writers against readers; run under
// -race this is the proof the lock-free ring is sound.
func TestEventRingConcurrent(t *testing.T) {
	r := NewEventRing(32, nil)
	const writers, perWriter, readers = 8, 500, 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := r.Since(0, 0)
				for j := 1; j < len(evs); j++ {
					if evs[j].Seq <= evs[j-1].Seq {
						t.Errorf("reader saw out-of-order seqs %d, %d", evs[j-1].Seq, evs[j].Seq)
						return
					}
				}
				if _, err := r.WriteTo(io.Discard); err != nil {
					t.Errorf("WriteTo: %v", err)
					return
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for i := 0; i < writers; i++ {
		ww.Add(1)
		go func(id int) {
			defer ww.Done()
			for j := 0; j < perWriter; j++ {
				r.Record(Event{Type: "race", Detail: "w"})
			}
		}(i)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := r.LastSeq(); got != writers*perWriter {
		t.Fatalf("LastSeq = %d, want %d", got, writers*perWriter)
	}
	evs := r.Since(0, 0)
	if len(evs) != 32 {
		t.Fatalf("retained = %d, want capacity 32", len(evs))
	}
}
