package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"smiler/internal/fault"
	"smiler/internal/memsys"
	"smiler/internal/obs"
	"smiler/internal/wal"
)

// Replication headers.
const (
	// fromHeader names the sending node on replication, restore and
	// forwarded requests.
	fromHeader = "X-Smiler-From"
	// replSeqHeader carries the per-sensor replication sequence number
	// a snapshot covers: the receiver drops frames at or below it and
	// replays the tail above it.
	replSeqHeader = "X-Smiler-Repl-Seq"
)

// replicator ships per-sensor WAL frames from the owner to its
// follower nodes, asynchronously, and applies inbound frames on
// followers.
//
// Every mutation the owner applies (observation, registration,
// removal) is encoded with wal.EncodeFrame — the exact on-disk WAL
// envelope plus a per-sensor sequence number — and queued to each
// follower's stream. A follower applies frames in order, drops
// duplicates (seq ≤ last applied) and answers with a resync request
// on a gap (a shed frame, a missed registration, a restart); the
// owner then pushes a full sensor snapshot (the checkpoint envelope)
// tagged with the sequence number it covers, and streaming resumes
// above it. The design is convergent rather than lossless: any
// divergence heals through the snapshot path.
type replicator struct {
	n *Node

	// mu guards seq: per-sensor replication sequence numbers. On an
	// owner the counter is incremented per emitted frame; on a follower
	// it tracks the last applied frame. A node is owner or follower per
	// sensor, never both, so one map serves both roles — and keeps the
	// sequence continuous across a promotion.
	mu  sync.Mutex
	seq map[string]uint64

	// peersMu guards peers and started: the membership view swaps
	// streams in and out as members join and leave.
	peersMu sync.Mutex
	peers   map[string]*peerStream
	started bool

	// contact tracks when each peer last reached this node (frames,
	// heartbeats, snapshots). A promoted replica uses the failed
	// primary's entry to bound the staleness of the reads it serves.
	contactMu   sync.RWMutex
	lastContact map[string]time.Time

	wg sync.WaitGroup
}

// peerStream is one follower's outbound stream: a bounded frame queue
// drained by a single worker (one POST in flight per peer, so frames
// arrive in emission order).
type peerStream struct {
	id, url string
	frames  chan *sharedFrame
	resync  chan string // sensor ids needing a snapshot push
	stop    chan struct{}
}

// sharedFrame is one encoded replication frame fanned out to several
// follower queues. The encode buffer comes from the memsys byte pool;
// the last consumer (a peerLoop that shipped it, or emit when a full
// queue sheds it) returns the slab.
type sharedFrame struct {
	buf  []byte
	refs atomic.Int32
}

func (f *sharedFrame) release() {
	if f.refs.Add(-1) == 0 {
		b := f.buf
		f.buf = nil
		memsys.PutBytes(b)
	}
}

const (
	peerQueueSize  = 4096
	resyncQueue    = 256
	maxBatchFrames = 256
)

func newReplicator(n *Node) *replicator {
	return &replicator{
		n:           n,
		seq:         make(map[string]uint64),
		peers:       make(map[string]*peerStream),
		lastContact: make(map[string]time.Time),
	}
}

// syncPeers reconciles the outbound streams with a new membership
// view: streams appear for new peers (started immediately once the
// replicator is running), disappear for removed peers, and are
// recreated when a member's URL changed.
func (r *replicator) syncPeers(v *memberView) {
	r.peersMu.Lock()
	defer r.peersMu.Unlock()
	want := make(map[string]string, len(v.peers))
	for _, id := range v.peers {
		want[id] = v.members[id].URL
	}
	for id, p := range r.peers {
		if url, ok := want[id]; !ok || url != p.url {
			close(p.stop)
			delete(r.peers, id)
		}
	}
	now := time.Now()
	for id, url := range want {
		if r.peers[id] != nil {
			continue
		}
		p := &peerStream{
			id:     id,
			url:    url,
			frames: make(chan *sharedFrame, peerQueueSize),
			resync: make(chan string, resyncQueue),
			stop:   make(chan struct{}),
		}
		r.peers[id] = p
		// Seed the peer's contact time on first sight: a primary that is
		// already down when this node learns about it must accrue
		// staleness from now, not read as freshly contacted forever.
		r.contactMu.Lock()
		if _, ok := r.lastContact[id]; !ok {
			r.lastContact[id] = now
		}
		r.contactMu.Unlock()
		if r.started {
			r.wg.Add(1)
			go r.peerLoop(p)
		}
	}
}

func (r *replicator) start() {
	r.peersMu.Lock()
	r.started = true
	for _, p := range r.peers {
		r.wg.Add(1)
		go r.peerLoop(p)
	}
	r.peersMu.Unlock()
}

func (r *replicator) close() {
	r.peersMu.Lock()
	r.started = false
	for id, p := range r.peers {
		close(p.stop)
		delete(r.peers, id)
	}
	r.peersMu.Unlock()
	r.wg.Wait()
}

// --- sequence bookkeeping ---

func (r *replicator) nextSeq(sensor string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq[sensor]++
	return r.seq[sensor]
}

func (r *replicator) seqOf(sensor string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq[sensor]
}

func (r *replicator) setSeq(sensor string, seq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq[sensor] = seq
}

func (r *replicator) dropSeq(sensor string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.seq, sensor)
}

// queuedFrames reports the total outbound backlog (replication lag in
// frames) across peers.
func (r *replicator) queuedFrames() int {
	r.peersMu.Lock()
	defer r.peersMu.Unlock()
	total := 0
	for _, p := range r.peers {
		total += len(p.frames)
	}
	return total
}

// --- contact tracking ---

func (r *replicator) touch(peer string) {
	if peer == "" {
		return
	}
	r.contactMu.Lock()
	r.lastContact[peer] = time.Now()
	r.contactMu.Unlock()
}

// sinceContact reports how long ago the peer last reached this node.
// Every member is seeded with the process start time, so a peer never
// heard from (e.g. the primary was already down when this replica
// restarted) accrues staleness from boot — MaxStaleness stays enforced
// in exactly the restart-during-outage case. Non-member ids (never
// routable) read as zero.
func (r *replicator) sinceContact(peer string) time.Duration {
	r.contactMu.RLock()
	at, ok := r.lastContact[peer]
	r.contactMu.RUnlock()
	if !ok {
		return 0
	}
	return time.Since(at)
}

// --- outbound: owner side ---

// emit encodes one applied mutation and queues it to every follower of
// the sensor. Called on the owner, after the mutation is applied
// locally (apply order equals emission order per sensor: observations
// come from the sensor's single shard worker, lifecycle events from
// the serialized add/delete handlers).
func (r *replicator) emit(rec wal.Record) {
	targets := r.n.replicaTargets(rec.Sensor)
	if len(targets) == 0 {
		return
	}
	seq := r.nextSeq(rec.Sensor)
	// Encode into a pooled slab sized for the common case; EncodeFrame
	// appends, so a record that outgrows the estimate simply reallocates
	// and the oversized result bypasses the pool on release.
	est := 96 + len(rec.Sensor) + 8*len(rec.History)
	buf := memsys.GetBytes(est)[:0]
	frame, err := wal.EncodeFrame(buf, seq, rec)
	if err != nil {
		memsys.PutBytes(buf[:cap(buf)])
		return // unencodable record: nothing a follower could do either
	}
	sf := &sharedFrame{buf: frame}
	r.peersMu.Lock()
	streams := make([]*peerStream, 0, len(targets))
	for _, id := range targets {
		if p := r.peers[id]; p != nil {
			streams = append(streams, p)
		}
	}
	r.peersMu.Unlock()
	if len(streams) == 0 {
		memsys.PutBytes(frame)
		return
	}
	sf.refs.Store(int32(len(streams)))
	for _, p := range streams {
		select {
		case p.frames <- sf:
			r.n.m.replFrames.Inc()
		default:
			// Full queue: shed. The follower detects the gap on the next
			// frame it does receive and resyncs via snapshot.
			r.n.m.replDropped.Inc()
			sf.release()
		}
	}
}

// peerLoop drains one follower's queue: frames are batched into a
// single POST (bounded), responses are checked for resync requests,
// and an idle stream sends heartbeats so the follower's staleness
// clock keeps ticking while there is nothing to replicate.
func (r *replicator) peerLoop(p *peerStream) {
	defer r.wg.Done()
	hb := time.NewTicker(r.n.cfg.HeartbeatInterval)
	defer hb.Stop()
	var batch bytes.Buffer
	for {
		select {
		case <-p.stop:
			// Drain and release whatever is still queued so pooled slabs
			// (and the in-use gauges) settle on shutdown.
			for {
				select {
				case f := <-p.frames:
					f.release()
				default:
					return
				}
			}
		case sensor := <-p.resync:
			r.pushSnapshot(p, sensor)
		case frame := <-p.frames:
			batch.Reset()
			batch.Write(frame.buf)
			frame.release()
			// Gather whatever else is queued, without blocking.
		gather:
			for i := 1; i < maxBatchFrames; i++ {
				select {
				case f := <-p.frames:
					batch.Write(f.buf)
					f.release()
				default:
					break gather
				}
			}
			r.post(p, batch.Bytes())
		case <-hb.C:
			r.post(p, nil) // heartbeat: empty batch, still updates contact
		}
	}
}

// replicateResponse is the follower's answer to a frame batch.
type replicateResponse struct {
	Applied int      `json:"applied"`
	Dupes   int      `json:"dupes,omitempty"`
	Resync  []string `json:"resync,omitempty"`
}

// post ships one batch (possibly empty — a heartbeat) to the peer and
// queues any requested snapshot resyncs.
func (r *replicator) post(p *peerStream, body []byte) {
	if err := checkPeerFault(fault.PointClusterReplicateSend, p.id); err != nil {
		r.n.m.replErrs.Inc()
		return
	}
	req, err := http.NewRequest(http.MethodPost, p.url+"/cluster/replicate", bytes.NewReader(body))
	if err != nil {
		r.n.m.replErrs.Inc()
		return
	}
	r.n.peerHeaders(req)
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.n.hc.Do(req)
	if err != nil {
		r.n.m.replErrs.Inc()
		return
	}
	defer resp.Body.Close()
	// The heartbeat mesh doubles as epoch gossip: a follower that moved
	// to a newer map stamps its epoch on the response and this sender
	// pulls the map.
	r.n.noteEpoch(resp.Header, p.url)
	if resp.StatusCode != http.StatusOK {
		r.n.m.replErrs.Inc()
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return
	}
	var rr replicateResponse
	if err := readJSON(resp.Body, &rr); err != nil {
		return
	}
	for _, sensor := range rr.Resync {
		select {
		case p.resync <- sensor:
		default: // resync queue full; the follower will ask again
		}
	}
}

// pushSnapshot quiesces the sensor, captures a bit-exact snapshot
// (checkpoint envelope) tagged with the replication sequence it
// covers, and ships it to the peer. The quiesce — pause new writes,
// drain the pipeline — guarantees the (state, seq) pair is atomic:
// every frame at or below the tagged seq is inside the snapshot,
// every frame above it is not.
func (r *replicator) pushSnapshot(p *peerStream, sensor string) {
	if !r.n.sys.HasSensor(sensor) {
		return // removed since the gap; the remove frame will catch up
	}
	r.n.m.resyncs.Inc()
	// A resync is a divergence healing itself — worth a flight-recorder
	// entry with a freshly minted trace id so the snapshot push and the
	// peer's restore correlate across nodes.
	tc := obs.TraceContext{ID: obs.NewTraceID(), Node: r.n.cfg.Self}
	r.n.sys.Events().Record(obs.Event{
		Type: "repl_resync", Severity: obs.SevWarn, Sensor: sensor, TraceID: tc.ID,
		Detail: "snapshot push to " + p.id,
	})
	body, seq, err := r.n.snapshotSensor(sensor)
	if err != nil {
		if r.n.log != nil {
			r.n.log.Warn("cluster snapshot failed", "sensor", sensor, "peer", p.id, "err", err)
		}
		return
	}
	if err := checkPeerFault(fault.PointClusterReplicateSend, p.id); err != nil {
		r.n.m.replErrs.Inc()
		return
	}
	req, err := http.NewRequest(http.MethodPost, p.url+"/cluster/restore", bytes.NewReader(body))
	if err != nil {
		return
	}
	r.n.peerHeaders(req)
	req.Header.Set(obs.TraceHeader, tc.Next().HeaderValue())
	req.Header.Set(replSeqHeader, strconv.FormatUint(seq, 10))
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.n.hc.Do(req)
	if err != nil {
		r.n.m.replErrs.Inc()
		return
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		r.n.m.replErrs.Inc()
	}
}

// --- inbound: follower side ---

// handleReplicate is POST /cluster/replicate: a batch of WAL frames
// from a primary. Frames apply in order; duplicates drop; a gap or an
// unknown sensor asks for a resync instead of applying out of order.
func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	n.stampEpoch(w)
	if !n.authPeer(w, r) {
		return
	}
	n.repl.touch(r.Header.Get(fromHeader))
	var resp replicateResponse
	needResync := map[string]bool{}
	fr := wal.NewFrameReader(http.MaxBytesReader(w, r.Body, 256<<20))
	for {
		seq, rec, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn batch: everything decoded so far applied; the rest of
			// the stream is gone. The sender sees frames shed (and this
			// follower will gap out and resync), so just stop here.
			break
		}
		n.applyFrame(seq, rec, needResync, &resp)
	}
	for s := range needResync {
		resp.Resync = append(resp.Resync, s)
	}
	writeJSON(w, http.StatusOK, resp)
}

// applyFrame applies one replicated record under the sequence rules.
func (n *Node) applyFrame(seq uint64, rec wal.Record, needResync map[string]bool, resp *replicateResponse) {
	sensor := rec.Sensor
	switch rec.Type {
	case wal.RecAddSensor:
		// Self-contained replace: the frame carries the owner's full
		// history at emission, so it is safe to apply regardless of any
		// gap before it.
		if n.sys.HasSensor(sensor) {
			_ = n.sys.RemoveSensor(sensor)
		}
		if err := n.sys.AddSensor(sensor, rec.History); err != nil {
			needResync[sensor] = true
			return
		}
		n.repl.setSeq(sensor, seq)
		n.srv.Pipeline().Invalidate(sensor)
		n.m.replApplied.Inc()
		resp.Applied++
	case wal.RecRemoveSensor:
		_ = n.sys.RemoveSensor(sensor) // unknown is fine: already gone
		n.repl.setSeq(sensor, seq)
		n.srv.Pipeline().Invalidate(sensor)
		n.m.replApplied.Inc()
		resp.Applied++
	case wal.RecObserve:
		cur := n.repl.seqOf(sensor)
		switch {
		case seq <= cur:
			n.m.replDupes.Inc()
			resp.Dupes++
		case seq == cur+1 && n.sys.HasSensor(sensor):
			if err := n.sys.Observe(sensor, rec.Value); err != nil {
				needResync[sensor] = true
				return
			}
			n.repl.setSeq(sensor, seq)
			n.srv.Pipeline().Invalidate(sensor)
			n.m.replApplied.Inc()
			resp.Applied++
		default:
			// Gap, or an observation for a sensor this follower has never
			// seen: ask for a snapshot.
			needResync[sensor] = true
		}
	default:
		needResync[sensor] = true
	}
}

// handleRestore is POST /cluster/restore: a sensor snapshot (the
// checkpoint envelope) covering every frame at or below the tagged
// sequence number. Restore replaces local state bit-exactly; frames
// above the tag then replay on top.
func (n *Node) handleRestore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	n.stampEpoch(w)
	if !n.authPeer(w, r) {
		return
	}
	n.repl.touch(r.Header.Get(fromHeader))
	seq, err := strconv.ParseUint(r.Header.Get(replSeqHeader), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad %s header: %v", replSeqHeader, err))
		return
	}
	start := time.Now()
	ids, err := n.sys.RestoreSensorsFrom(http.MaxBytesReader(w, r.Body, 256<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "restore failed: "+err.Error())
		return
	}
	tc, traced := obs.TraceFromContext(r.Context())
	for _, id := range ids {
		n.repl.setSeq(id, seq)
		n.srv.Pipeline().Invalidate(id)
		// Record the receiving side of the snapshot push under the
		// sender's trace id, as a "replicate" hop span.
		if store := n.sys.Traces(); store != nil && traced && tc.Valid() {
			tr := obs.NewTrace(id)
			tr.SetContext(tc)
			tr.AddSpan("replicate", "restore from "+r.Header.Get(fromHeader), 0, time.Since(start))
			tr.Finish(nil)
			store.Add(tr)
		}
	}
	n.sys.Events().Record(obs.Event{
		Type: "repl_restore", TraceID: tc.ID,
		Detail: fmt.Sprintf("restored %d sensor(s) from %s at seq %d", len(ids), r.Header.Get(fromHeader), seq),
	})
	writeJSON(w, http.StatusOK, map[string]any{"restored": ids, "seq": seq})
}
