package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file crash-atomically: the content is
// produced into a temp file in the target's directory, flushed and
// fsynced, renamed over the target, and the directory entry is fsynced
// too. A crash at any point leaves either the old file or the new one,
// never a torn mix — the contract checkpoint saves rely on.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if err := write(tmp); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("wal: fsync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: %w", err)
	}
	// Fsync the directory so the rename itself survives a crash.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}
