package smiler

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"smiler/internal/core"
	"smiler/internal/gp"
	"smiler/internal/timeseries"
)

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// cellCheckpoint serializes one ensemble cell's auto-tuning state plus
// its GP warm-start hyperparameters (zero for AR cells or untrained
// GPs).
type cellCheckpoint struct {
	State core.CellState
	Hyper gp.Hyper
}

// sensorCheckpoint serializes one sensor.
type sensorCheckpoint struct {
	ID string
	// History is the normalized history the index holds (raw history
	// when normalization is off).
	History []float64
	// Normalized records whether Norm is meaningful.
	Normalized bool
	Norm       timeseries.Stats
	Cells      []cellCheckpoint
}

// checkpoint is the gob payload.
type checkpoint struct {
	Version int
	Sensors []sensorCheckpoint
}

// SaveTo writes a checkpoint of the system — per-sensor histories,
// normalization statistics, ensemble auto-tuning state and GP
// warm-start hyperparameters — to w. Predictions still awaiting their
// truth (pending auto-tuning updates) are not persisted; after a
// restore, the first few updates are simply skipped.
func (s *System) SaveTo(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return errors.New("smiler: system closed")
	}
	cp := checkpoint{Version: checkpointVersion}
	for _, id := range s.sensorsLocked() {
		st := s.sensors[id]
		st.mu.Lock()
		sc := sensorCheckpoint{
			ID:      id,
			History: st.ix.History(),
		}
		if st.norm != nil {
			sc.Normalized = true
			sc.Norm = st.norm.Stats()
		}
		states := st.pipe.Ensemble().ExportState()
		cells := st.pipe.Ensemble().Cells()
		for i, state := range states {
			cc := cellCheckpoint{State: state}
			if gpp, ok := cells[i].Pred.(*core.GPPredictor); ok {
				cc.Hyper = gpp.Hyper()
			}
			sc.Cells = append(sc.Cells, cc)
		}
		st.mu.Unlock()
		cp.Sensors = append(cp.Sensors, sc)
	}
	return gob.NewEncoder(w).Encode(cp)
}

// sensorsLocked returns sorted ids; callers hold s.mu.
func (s *System) sensorsLocked() []string {
	out := make([]string, 0, len(s.sensors))
	for id := range s.sensors {
		out = append(out, id)
	}
	sortStrings(out)
	return out
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Load reconstructs a System from a checkpoint written by SaveTo,
// using cfg for everything structural (device shape, ensemble
// dimensions, predictor kind). The checkpoint must have been produced
// by a system with a compatible configuration: sensor histories are
// re-indexed from scratch, ensemble weights and GP hyperparameters are
// restored by (k, d) match.
func Load(r io.Reader, cfg Config) (*System, error) {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("smiler: decoding checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("smiler: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	sys, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for _, sc := range cp.Sensors {
		if err := sys.restoreSensor(sc); err != nil {
			sys.Close()
			return nil, fmt.Errorf("smiler: restoring sensor %q: %w", sc.ID, err)
		}
	}
	return sys, nil
}

// restoreSensor re-adds one sensor from its checkpoint. The history in
// the checkpoint is already normalized, so it bypasses AddSensor's
// normalization and reinstates the frozen statistics directly.
func (s *System) restoreSensor(sc sensorCheckpoint) error {
	if sc.Normalized != s.cfg.Normalize {
		return fmt.Errorf("normalization mismatch: checkpoint %v, config %v",
			sc.Normalized, s.cfg.Normalize)
	}
	if s.cfg.Normalize {
		// Temporarily disable normalization for the raw re-index, then
		// re-attach the frozen normalizer.
		raw := s.cfg.Normalize
		s.cfg.Normalize = false
		err := s.AddSensor(sc.ID, sc.History)
		s.cfg.Normalize = raw
		if err != nil {
			return err
		}
		st, err := s.sensor(sc.ID)
		if err != nil {
			return err
		}
		// Two points at mean ± std reproduce exactly the frozen
		// statistics when refit.
		norm, err := timeseries.NewNormalizer([]float64{sc.Norm.Mean - sc.Norm.Std, sc.Norm.Mean + sc.Norm.Std})
		if err != nil {
			return err
		}
		st.norm = norm
	} else {
		if err := s.AddSensor(sc.ID, sc.History); err != nil {
			return err
		}
	}
	st, err := s.sensor(sc.ID)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	states := make([]core.CellState, 0, len(sc.Cells))
	hyperByKD := make(map[[2]int]gp.Hyper, len(sc.Cells))
	for _, cc := range sc.Cells {
		states = append(states, cc.State)
		hyperByKD[[2]int{cc.State.K, cc.State.D}] = cc.Hyper
	}
	if err := st.pipe.Ensemble().ImportState(states); err != nil {
		return err
	}
	for _, c := range st.pipe.Ensemble().Cells() {
		if gpp, ok := c.Pred.(*core.GPPredictor); ok {
			gpp.SetHyper(hyperByKD[[2]int{c.K, c.D}])
		}
	}
	return nil
}
