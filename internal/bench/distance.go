package bench

import (
	"fmt"
	"math"
	"sort"

	"smiler/internal/dtw"
	"smiler/internal/gpusim"
	"smiler/internal/metrics"
	"smiler/internal/tsdist"
)

func defaultDeviceBytes() int64 { return gpusim.DefaultConfig().GlobalMemBytes }

// DistanceRow is one row of the distance-measure ablation: kNN
// prediction accuracy under one similarity measure.
type DistanceRow struct {
	Dataset string
	Measure string
	MAE     float64
	Samples int
}

// RunDistanceMeasureAblation reproduces the paper's motivating claim
// for DTW (Section 4, citing [30, 54, 60]): kNN prediction under
// banded DTW should match or beat the alternative measures (Euclidean,
// LCSS, ERP, EDR) on sensor data. For each measure it runs a kNN
// regression (inverse-distance weighting) with the same k, d and h
// over `steps` continuous steps.
func RunDistanceMeasureAblation(c *Corpus, steps, k, d, h int) ([]DistanceRow, error) {
	if steps <= 0 || k <= 0 || d <= 0 || h <= 0 {
		return nil, fmt.Errorf("bench: invalid ablation args steps=%d k=%d d=%d h=%d", steps, k, d, h)
	}
	const rho = 8
	scratch := dtw.NewCompressedScratch(rho)
	measures := []struct {
		name string
		fn   tsdist.Func
	}{
		{"DTW", func(q, cc []float64) (float64, error) {
			return dtw.DistanceCompressed(q, cc, rho, scratch)
		}},
		{"Euclidean", tsdist.EuclideanFunc()},
		{"LCSS", tsdist.LCSSFunc(0.5, rho)},
		{"ERP", tsdist.ERPFunc(0)},
		{"EDR", tsdist.EDRFunc(0.25)},
	}
	var rows []DistanceRow
	for _, m := range measures {
		var acc metrics.Accumulator
		for si, z := range c.Series {
			n := c.TestLen(z, h)
			if n > steps {
				n = steps
			}
			for t := 0; t < n; t++ {
				now := c.Spec.Warm + t
				hist := z[:now]
				pred, err := knnRegress(hist, d, k, h, m.fn)
				if err != nil {
					return nil, fmt.Errorf("bench: %s sensor %d: %w", m.name, si, err)
				}
				acc.Add(pred, z[now-1+h])
			}
		}
		mae, err := acc.MAE()
		if err != nil {
			return nil, err
		}
		rows = append(rows, DistanceRow{
			Dataset: c.Spec.Name, Measure: m.name, MAE: mae, Samples: acc.N(),
		})
	}
	return rows, nil
}

// knnRegress is a plain inverse-distance-weighted kNN regression under
// an arbitrary measure (no index — the ablation compares measures, not
// search speed).
func knnRegress(hist []float64, d, k, h int, fn tsdist.Func) (float64, error) {
	maxT := len(hist) - d - h
	if maxT < 0 {
		return 0, fmt.Errorf("history too short for d=%d h=%d", d, h)
	}
	query := hist[len(hist)-d:]
	type cand struct {
		dist  float64
		label float64
	}
	cands := make([]cand, 0, maxT+1)
	for t := 0; t <= maxT; t++ {
		dist, err := fn(query, hist[t:t+d])
		if err != nil {
			return 0, err
		}
		cands = append(cands, cand{dist: dist, label: hist[t+d-1+h]})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
	if len(cands) > k {
		cands = cands[:k]
	}
	const eps = 1e-6
	var wsum, mean float64
	for _, cd := range cands {
		w := 1 / (math.Sqrt(cd.dist) + eps)
		wsum += w
		mean += w * cd.label
	}
	return mean / wsum, nil
}

// FormatDistanceAblation renders the rows.
func FormatDistanceAblation(rows []DistanceRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Dataset, r.Measure, f3(r.MAE), fmt.Sprint(r.Samples)})
	}
	return "Ablation — kNN prediction accuracy by similarity measure\n" +
		table([]string{"dataset", "measure", "MAE", "samples"}, out)
}

// DownsampleRow is one point of the space/accuracy trade-off of
// Section 6.4.1: index only a fraction of the history and measure both
// the capacity gain and the accuracy cost.
type DownsampleRow struct {
	Dataset        string
	Fraction       float64 // of the warm history retained
	PerSensorBytes int64
	MaxSensors     int64
	MAE            float64
}

// RunDownsampleTradeoff evaluates SMiLer-AR at h=1 with progressively
// truncated histories, reporting per-sensor footprint, fleet capacity
// on the default device and prediction MAE.
func RunDownsampleTradeoff(c *Corpus, fractions []float64, steps int) ([]DownsampleRow, error) {
	if len(fractions) == 0 {
		return nil, fmt.Errorf("bench: empty fraction list")
	}
	if steps <= 0 {
		return nil, fmt.Errorf("bench: steps %d must be positive", steps)
	}
	p := searchParams()
	dmax := p.ELV[len(p.ELV)-1]
	var rows []DownsampleRow
	for _, frac := range fractions {
		if frac <= 0 || frac > 1 {
			return nil, fmt.Errorf("bench: fraction %v out of (0,1]", frac)
		}
		warm := int(float64(c.Spec.Warm) * frac)
		if warm < dmax+p.Omega {
			warm = dmax + p.Omega
		}
		sub := &Corpus{Spec: c.Spec, Series: nil, IDs: c.IDs}
		sub.Spec.Warm = warm
		for _, z := range c.Series {
			// Drop the oldest points so the test stream is unchanged.
			trimmed := z[c.Spec.Warm-warm:]
			sub.Series = append(sub.Series, trimmed)
		}
		sub.Spec.TestSteps = steps
		accs, _, _, err := runSMiLer(sub, MSMiLerAR, []int{1})
		if err != nil {
			return nil, err
		}
		mae, err := accs[1].MAE()
		if err != nil {
			return nil, err
		}
		n := len(sub.Series[0])
		nSW := dmax - p.Omega + 1
		nDW := n / p.Omega
		per := int64(8 * (n + 2*nSW*nDW))
		dev := defaultDeviceBytes()
		rows = append(rows, DownsampleRow{
			Dataset: c.Spec.Name, Fraction: frac,
			PerSensorBytes: per, MaxSensors: dev / per, MAE: mae,
		})
	}
	return rows, nil
}

// FormatDownsample renders the trade-off rows.
func FormatDownsample(rows []DownsampleRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, fmt.Sprintf("%.0f%%", r.Fraction*100),
			fmt.Sprint(r.PerSensorBytes), fmt.Sprint(r.MaxSensors), f3(r.MAE),
		})
	}
	return "Section 6.4.1 — history downsampling: capacity vs accuracy\n" +
		table([]string{"dataset", "history", "bytes/sensor", "max sensors", "MAE(h=1)"}, out)
}
