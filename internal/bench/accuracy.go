package bench

import (
	"fmt"

	"smiler/internal/baselines"
	"smiler/internal/core"
	"smiler/internal/gpusim"
	"smiler/internal/index"
	"smiler/internal/metrics"
)

// Method names for the prediction experiments (Figs. 9–11, Table 4).
const (
	MSMiLerGP   = "SMiLer-GP"
	MSMiLerAR   = "SMiLer-AR"
	MSMiLerNEGP = "SMiLerNE-GP" // no ensemble (single k=32, d=64 cell)
	MSMiLerNEAR = "SMiLerNE-AR"
	MSMiLerNSGP = "SMiLerNS-GP" // ensemble without self-adaptive weights
	MSMiLerNSAR = "SMiLerNS-AR"
	MPSGP       = "PSGP"
	MVLGP       = "VLGP"
	MNysSVR     = "NysSVR"
	MSgdSVR     = "SgdSVR"
	MSgdRR      = "SgdRR"
	MLazyKNN    = "LazyKNN"
	MFullHW     = "FullHW"
	MSegHW      = "SegHW"
	MOnlineSVR  = "OnlineSVR"
	MOnlineRR   = "OnlineRR"
)

// OfflineMethods are the eager-learning competitors of Fig. 9.
func OfflineMethods() []string {
	return []string{MSMiLerGP, MSMiLerAR, MPSGP, MVLGP, MNysSVR, MSgdSVR, MSgdRR}
}

// OnlineMethods are the streaming competitors of Fig. 10.
func OnlineMethods() []string {
	return []string{MSMiLerGP, MSMiLerAR, MLazyKNN, MFullHW, MSegHW, MOnlineSVR, MOnlineRR}
}

// AblationMethods are the auto-tuning variants of Fig. 11.
func AblationMethods() []string {
	return []string{MSMiLerGP, MSMiLerNEGP, MSMiLerNSGP, MSMiLerAR, MSMiLerNEAR, MSMiLerNSAR}
}

// AllMethods is the Table 4 method list.
func AllMethods() []string {
	return []string{
		MSMiLerGP, MSMiLerAR, MFullHW, MSegHW, MLazyKNN,
		MPSGP, MVLGP, MNysSVR, MSgdSVR, MSgdRR, MOnlineSVR, MOnlineRR,
	}
}

// segLen is the input window length the non-SMiLer competitors use
// (SMiLerNE's fixed d=64; Section 6.3.3).
const segLen = 64

// AccuracyRow is one point of Figs. 9–11: a method's MAE and MNLPD at
// one horizon on one dataset.
type AccuracyRow struct {
	Dataset string
	Method  string
	H       int
	MAE     float64
	MNLPD   float64
	// Coverage95 is the empirical coverage of the central 95%
	// predictive interval (≈0.95 when calibrated).
	Coverage95 float64
	Samples    int
}

// TimingRow is one row of Table 4: total training time and average
// per-query prediction time of a method on one dataset.
type TimingRow struct {
	Dataset   string
	Method    string
	TrainSec  float64 // total training wall time (0 for training-free)
	PredictMs float64 // average prediction time per sensor per query
}

// RunAccuracy evaluates the given methods on the corpus at the given
// horizons, returning accuracy rows (per method × horizon) and timing
// rows (per method).
func RunAccuracy(c *Corpus, methods []string, hs []int) ([]AccuracyRow, []TimingRow, error) {
	if len(hs) == 0 {
		return nil, nil, fmt.Errorf("bench: empty horizon list")
	}
	var rows []AccuracyRow
	var timings []TimingRow
	for _, m := range methods {
		accs, trainSec, predictMs, err := runMethod(c, m, hs)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: method %s: %w", m, err)
		}
		for _, h := range hs {
			acc := accs[h]
			mae, err := acc.MAE()
			if err != nil {
				return nil, nil, fmt.Errorf("bench: method %s h=%d: %w", m, h, err)
			}
			mnlpd, err := acc.MNLPD()
			if err != nil {
				return nil, nil, fmt.Errorf("bench: method %s h=%d: %w", m, h, err)
			}
			cov, err := acc.Coverage95()
			if err != nil {
				return nil, nil, fmt.Errorf("bench: method %s h=%d: %w", m, h, err)
			}
			rows = append(rows, AccuracyRow{
				Dataset: c.Spec.Name, Method: m, H: h,
				MAE: mae, MNLPD: mnlpd, Coverage95: cov, Samples: acc.N(),
			})
		}
		timings = append(timings, TimingRow{
			Dataset: c.Spec.Name, Method: m, TrainSec: trainSec, PredictMs: predictMs,
		})
	}
	return rows, timings, nil
}

func maxOf(hs []int) int {
	m := hs[0]
	for _, h := range hs {
		if h > m {
			m = h
		}
	}
	return m
}

func newAccs(hs []int) map[int]*metrics.Accumulator {
	accs := make(map[int]*metrics.Accumulator, len(hs))
	for _, h := range hs {
		accs[h] = &metrics.Accumulator{}
	}
	return accs
}

// runMethod dispatches one method over every sensor of the corpus.
func runMethod(c *Corpus, m string, hs []int) (map[int]*metrics.Accumulator, float64, float64, error) {
	switch m {
	case MSMiLerGP, MSMiLerAR, MSMiLerNEGP, MSMiLerNEAR, MSMiLerNSGP, MSMiLerNSAR:
		return runSMiLer(c, m, hs)
	case MPSGP, MVLGP, MNysSVR, MSgdSVR, MSgdRR:
		return runOffline(c, m, hs)
	case MLazyKNN:
		return runLazyKNN(c, hs)
	case MFullHW, MSegHW:
		return runHoltWinters(c, m, hs)
	case MOnlineSVR, MOnlineRR:
		return runOnlineLinear(c, m, hs)
	}
	return nil, 0, 0, fmt.Errorf("unknown method %q", m)
}

// smilerPipeline builds the pipeline for a SMiLer variant on one
// sensor history.
func smilerPipeline(dev *gpusim.Device, hist []float64, variant string) (*core.Pipeline, error) {
	p := index.DefaultParams()
	ekv := []int{8, 16, 32}
	ecfg := core.EnsembleConfig{}
	switch variant {
	case MSMiLerNEGP, MSMiLerNEAR:
		p.ELV = []int{segLen}
		ekv = []int{32}
	case MSMiLerNSGP, MSMiLerNSAR:
		ecfg = core.EnsembleConfig{DisableAdaptation: true, DisableSleep: true}
	}
	var factory core.PredictorFactory
	switch variant {
	case MSMiLerAR, MSMiLerNEAR, MSMiLerNSAR:
		factory = func() core.Predictor { return core.NewAR() }
	default:
		factory = func() core.Predictor { return core.NewGP() }
	}
	ix, err := index.New(dev, hist, p)
	if err != nil {
		return nil, err
	}
	return core.NewPipeline(ix, core.PipelineConfig{
		EKV: ekv, Index: p, Horizon: 1, Factory: factory, Ensemble: ecfg,
	})
}

func runSMiLer(c *Corpus, variant string, hs []int) (map[int]*metrics.Accumulator, float64, float64, error) {
	accs := newAccs(hs)
	maxH := maxOf(hs)
	dev := gpusim.MustNewDevice(gpusim.DefaultConfig())
	var predictSec float64
	var queries int
	for si, z := range c.Series {
		steps := c.TestLen(z, maxH)
		if steps == 0 {
			continue
		}
		pipe, err := smilerPipeline(dev, z[:c.Spec.Warm], variant)
		if err != nil {
			return nil, 0, 0, err
		}
		for t := 0; t < steps; t++ {
			now := c.Spec.Warm + t // next observation index
			timer := StartTimer()
			// One shared Search Step across all horizons (SearchMulti):
			// the same protocol as repeated Predict calls, minus the
			// redundant candidate verifications.
			preds, err := pipe.PredictMulti(hs)
			if err != nil {
				pipe.Index().Close()
				return nil, 0, 0, err
			}
			predictSec += timer.Seconds()
			queries += len(hs)
			for _, h := range hs {
				truth := z[now-1+h]
				if err := accs[h].AddProb(preds[h].Mean, preds[h].Variance, truth); err != nil {
					pipe.Index().Close()
					return nil, 0, 0, err
				}
			}
			if err := pipe.Observe(z[now]); err != nil {
				pipe.Index().Close()
				return nil, 0, 0, err
			}
		}
		pipe.Index().Close()
		_ = si
	}
	return accs, 0, predictMsPerQuery(predictSec, queries), nil
}

func predictMsPerQuery(sec float64, queries int) float64 {
	if queries == 0 {
		return 0
	}
	return sec / float64(queries) * 1e3
}

func offlineRegressor(m string) baselines.Regressor {
	switch m {
	case MPSGP:
		return baselines.NewPSGP(32)
	case MVLGP:
		return baselines.NewVLGP(32)
	case MNysSVR:
		return baselines.NewNysSVR(128)
	case MSgdSVR:
		return baselines.NewSgdSVR()
	default:
		return baselines.NewSgdRR()
	}
}

func runOffline(c *Corpus, m string, hs []int) (map[int]*metrics.Accumulator, float64, float64, error) {
	accs := newAccs(hs)
	maxH := maxOf(hs)
	var trainSec, predictSec float64
	var queries int
	for _, z := range c.Series {
		steps := c.TestLen(z, maxH)
		if steps == 0 {
			continue
		}
		warm := z[:c.Spec.Warm]
		models := make(map[int]baselines.Regressor, len(hs))
		for _, h := range hs {
			x, y, err := baselines.SegmentDataset(warm, segLen, h, 0)
			if err != nil {
				return nil, 0, 0, err
			}
			reg := offlineRegressor(m)
			timer := StartTimer()
			if err := reg.Train(x, y); err != nil {
				return nil, 0, 0, err
			}
			trainSec += timer.Seconds()
			models[h] = reg
		}
		for t := 0; t < steps; t++ {
			now := c.Spec.Warm + t
			probe := z[now-segLen : now]
			for _, h := range hs {
				timer := StartTimer()
				p, err := models[h].Predict(probe)
				if err != nil {
					return nil, 0, 0, err
				}
				predictSec += timer.Seconds()
				queries++
				if err := accs[h].AddProb(p.Mean, p.Variance, z[now-1+h]); err != nil {
					return nil, 0, 0, err
				}
			}
		}
	}
	return accs, trainSec, predictMsPerQuery(predictSec, queries), nil
}

func runLazyKNN(c *Corpus, hs []int) (map[int]*metrics.Accumulator, float64, float64, error) {
	accs := newAccs(hs)
	maxH := maxOf(hs)
	l := baselines.NewLazyKNN()
	var predictSec float64
	var queries int
	for _, z := range c.Series {
		steps := c.TestLen(z, maxH)
		for t := 0; t < steps; t++ {
			now := c.Spec.Warm + t
			hist := z[:now]
			for _, h := range hs {
				timer := StartTimer()
				p, err := l.Predict(hist, h)
				if err != nil {
					return nil, 0, 0, err
				}
				predictSec += timer.Seconds()
				queries++
				if err := accs[h].AddProb(p.Mean, p.Variance, z[now-1+h]); err != nil {
					return nil, 0, 0, err
				}
			}
		}
	}
	return accs, 0, predictMsPerQuery(predictSec, queries), nil
}

func runHoltWinters(c *Corpus, m string, hs []int) (map[int]*metrics.Accumulator, float64, float64, error) {
	accs := newAccs(hs)
	maxH := maxOf(hs)
	period := c.Spec.Gen.Kind.SamplesPerDay()
	var predictSec float64
	var queries int
	for _, z := range c.Series {
		steps := c.TestLen(z, maxH)
		for t := 0; t < steps; t++ {
			now := c.Spec.Warm + t
			var hw *baselines.HoltWinters
			if m == MFullHW {
				hw = baselines.NewFullHW(period)
			} else {
				hw = baselines.NewSegHW(period, 10)
			}
			timer := StartTimer()
			if err := hw.Fit(z[:now]); err != nil {
				return nil, 0, 0, err
			}
			for _, h := range hs {
				p, err := hw.Forecast(h)
				if err != nil {
					return nil, 0, 0, err
				}
				queries++
				if err := accs[h].AddProb(p.Mean, p.Variance, z[now-1+h]); err != nil {
					return nil, 0, 0, err
				}
			}
			predictSec += timer.Seconds()
		}
	}
	return accs, 0, predictMsPerQuery(predictSec, queries), nil
}

func runOnlineLinear(c *Corpus, m string, hs []int) (map[int]*metrics.Accumulator, float64, float64, error) {
	accs := newAccs(hs)
	maxH := maxOf(hs)
	var trainSec, predictSec float64
	var queries int
	for _, z := range c.Series {
		steps := c.TestLen(z, maxH)
		if steps == 0 {
			continue
		}
		warm := z[:c.Spec.Warm]
		models := make(map[int]baselines.OnlineRegressor, len(hs))
		timer := StartTimer()
		for _, h := range hs {
			var reg baselines.OnlineRegressor
			if m == MOnlineSVR {
				reg = baselines.NewOnlineSVR()
			} else {
				reg = baselines.NewOnlineRR()
			}
			x, y, err := baselines.SegmentDataset(warm, segLen, h, 0)
			if err != nil {
				return nil, 0, 0, err
			}
			for i := range x { // one-pass warm-up
				if err := reg.Update(x[i], y[i]); err != nil {
					return nil, 0, 0, err
				}
			}
			models[h] = reg
		}
		trainSec += timer.Seconds()
		for t := 0; t < steps; t++ {
			now := c.Spec.Warm + t
			probe := z[now-segLen : now]
			for _, h := range hs {
				timer := StartTimer()
				p, err := models[h].Predict(probe)
				if err != nil {
					return nil, 0, 0, err
				}
				predictSec += timer.Seconds()
				queries++
				if err := accs[h].AddProb(p.Mean, p.Variance, z[now-1+h]); err != nil {
					return nil, 0, 0, err
				}
				// The pair that matured with the latest observation
				// keeps the model adapting (one-pass online fashion).
				if lbl := now - 1; lbl-h-segLen+1 >= 0 {
					seg := z[lbl-h-segLen+1 : lbl-h+1]
					if err := models[h].Update(seg, z[lbl]); err != nil {
						return nil, 0, 0, err
					}
				}
			}
		}
	}
	return accs, trainSec, predictMsPerQuery(predictSec, queries), nil
}
