package ingest

import (
	"strings"
	"testing"
	"time"

	"smiler/internal/obs"
)

// TestRegisterMetricsExposition: the lazy bridge must surface the
// shard counters, queue gauges and coalescer counters with live
// values.
func TestRegisterMetricsExposition(t *testing.T) {
	sys := newFakeSystem()
	sys.observeDelay = time.Millisecond // force measurable apply latency
	p, err := New(sys, Config{Shards: 2, QueueSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	reg := obs.NewRegistry()
	p.RegisterMetrics(reg)

	for i := 0; i < 10; i++ {
		if _, err := p.Observe("a", float64(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Observe("b", float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Forecast("a", 1); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := p.Forecast("a", 1); err != nil { // hit
		t.Fatal(err)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"smiler_ingest_shards 2",
		"smiler_ingest_queue_capacity 16",
		`smiler_ingest_enqueued_total{shard="0"}`,
		`smiler_ingest_enqueued_total{shard="1"}`,
		`smiler_ingest_processed_total{shard="0"}`,
		`smiler_ingest_apply_latency_seconds_total{shard="0"}`,
		"smiler_forecast_cache_hits_total 1",
		"smiler_forecast_cache_misses_total 1",
		"smiler_forecast_cache_size 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}
	// 20 observations total across the two shards.
	st := p.Stats()
	if st.Totals.Processed != 20 {
		t.Fatalf("processed = %d, want 20", st.Totals.Processed)
	}
}

// TestRegisterMetricsNilRegistry: registering against a disabled
// system must be a no-op, not a panic.
func TestRegisterMetricsNilRegistry(t *testing.T) {
	p, err := New(newFakeSystem(), Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.RegisterMetrics(nil)
}

// TestPerShardLatencyPopulated: each shard that processed work must
// report its own AvgLatencyMicros, not just the aggregate row (the
// stat /pipeline/stats and the metrics bridge both derive from).
func TestPerShardLatencyPopulated(t *testing.T) {
	sys := newFakeSystem()
	sys.observeDelay = 2 * time.Millisecond
	p, err := New(sys, Config{Shards: 2, QueueSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Hit both shards: ids spread by FNV hash.
	ids := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, id := range ids {
		if _, err := p.Observe(id, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Totals.AvgLatencyMicros <= 0 {
		t.Fatalf("aggregate AvgLatencyMicros = %v, want > 0", st.Totals.AvgLatencyMicros)
	}
	for _, sh := range st.PerShard {
		if sh.Processed == 0 {
			continue
		}
		if sh.AvgLatencyMicros <= 0 {
			t.Errorf("shard %d processed %d but AvgLatencyMicros = %v",
				sh.Shard, sh.Processed, sh.AvgLatencyMicros)
		}
	}
}
