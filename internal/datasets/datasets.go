// Package datasets synthesizes the three sensor corpora the paper
// evaluates on. The real corpora (PEMS-SF road occupancy, Singapore
// dataMall car parks, a DataMarket backbone trace) are not bundled —
// this is an offline reproduction — so each generator is built to
// match the property of its original that drives the paper's results:
//
//   - ROAD: highly dynamic traffic occupancy — weekday double rush
//     peaks, random congestion events with exponential decay, strong
//     AR(1) noise and weak day-to-day regularity. This is the regime
//     where SMiLer-GP clearly beats SMiLer-AR (Fig. 10a).
//   - MALL: car-park availability with strong daily and weekly
//     seasonality, opening-hours structure and little noise — the
//     regime where AR ≈ GP (Fig. 10c). The paper duplicates each of
//     26 car parks 40×; Duplicates mirrors that.
//   - NET: smooth diurnal backbone traffic with log-normal bursts —
//     seasonal and smooth (Fig. 10e); the paper duplicates one trace
//     1024×.
//
// Generation is deterministic per (Config.Seed, sensor id).
package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"smiler/internal/timeseries"
)

// Kind identifies one of the paper's three corpora.
type Kind int

const (
	// Road mimics PEMS-SF freeway occupancy (10-minute samples).
	Road Kind = iota
	// Mall mimics dataMall car-park availability (10-minute samples).
	Mall
	// Net mimics backbone internet traffic (5-minute samples).
	Net
)

func (k Kind) String() string {
	switch k {
	case Road:
		return "ROAD"
	case Mall:
		return "MALL"
	case Net:
		return "NET"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// SamplesPerDay returns the sampling density of the corpus.
func (k Kind) SamplesPerDay() int {
	if k == Net {
		return 288 // 5-minute interval
	}
	return 144 // 10-minute interval
}

// Config describes a synthetic corpus.
type Config struct {
	Kind Kind
	// Sensors is the number of *distinct* generating processes.
	Sensors int
	// Duplicates repeats each distinct sensor this many times (the
	// paper's MALL ×40 and NET ×1024 duplication); 0 means 1.
	Duplicates int
	// Days is the length of each series in days.
	Days int
	// Seed makes generation deterministic.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Kind < Road || c.Kind > Net {
		return fmt.Errorf("datasets: unknown kind %d", int(c.Kind))
	}
	if c.Sensors <= 0 {
		return fmt.Errorf("datasets: sensors %d must be positive", c.Sensors)
	}
	if c.Days <= 0 {
		return fmt.Errorf("datasets: days %d must be positive", c.Days)
	}
	if c.Duplicates < 0 {
		return fmt.Errorf("datasets: negative duplicates %d", c.Duplicates)
	}
	return nil
}

// Generate builds the corpus. Series are named "<kind>-<sensor>" with
// a "#<dup>" suffix for duplicates.
func Generate(cfg Config) ([]*timeseries.Series, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dups := cfg.Duplicates
	if dups == 0 {
		dups = 1
	}
	out := make([]*timeseries.Series, 0, cfg.Sensors*dups)
	for s := 0; s < cfg.Sensors; s++ {
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(s)*0x9E3779B97F4A7C ^ int64(cfg.Kind)<<32))
		var points []float64
		switch cfg.Kind {
		case Road:
			points = genRoad(rng, cfg.Days)
		case Mall:
			points = genMall(rng, cfg.Days)
		case Net:
			points = genNet(rng, cfg.Days)
		}
		base := fmt.Sprintf("%s-%03d", cfg.Kind, s)
		for d := 0; d < dups; d++ {
			name := base
			if dups > 1 {
				name = fmt.Sprintf("%s#%03d", base, d)
			}
			out = append(out, timeseries.New(name, points))
		}
	}
	return out, nil
}

// A stepper produces one sensor's series one sample at a time. The
// three corpus generators are written as steppers so the eager
// Generate path and the lazy Stream path share one implementation:
// each stepper draws its per-sensor personality from the rng at
// construction and then consumes the rng identically per step, so a
// given (rng sequence, step count) always yields the same values.
type stepper interface {
	next() float64
}

// genRoad synthesizes freeway occupancy in [0,1] (see roadGen).
func genRoad(rng *rand.Rand, days int) []float64 {
	return materialize(newRoadGen(rng), days*Road.SamplesPerDay())
}

// genMall synthesizes available car-park lots (see mallGen).
func genMall(rng *rand.Rand, days int) []float64 {
	return materialize(newMallGen(rng), days*Mall.SamplesPerDay())
}

// genNet synthesizes backbone traffic volume (see netGen).
func genNet(rng *rand.Rand, days int) []float64 {
	return materialize(newNetGen(rng), days*Net.SamplesPerDay())
}

func materialize(g stepper, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.next()
	}
	return out
}

// roadGen steps freeway occupancy in [0,1]: a weekday-shaped double
// rush peak, stochastic congestion events that spike occupancy and
// decay exponentially, and strong AR(1) noise.
type roadGen struct {
	rng *rand.Rand
	// Per-sensor personality.
	amPeak     float64 // morning rush height
	pmPeak     float64 // evening rush height
	baseOcc    float64 // off-peak floor
	amAt, pmAt float64 // rush hours
	width      float64 // rush width (hours)
	noiseScale float64

	i          int
	ar         float64
	congestion float64
}

func newRoadGen(rng *rand.Rand) *roadGen {
	return &roadGen{
		rng:     rng,
		amPeak:  0.30 + 0.15*rng.Float64(),
		pmPeak:  0.35 + 0.15*rng.Float64(),
		baseOcc: 0.04 + 0.04*rng.Float64(),
		amAt:    8.0 + rng.NormFloat64()*0.5,
		pmAt:    17.5 + rng.NormFloat64()*0.5,
		width:   1.2 + 0.6*rng.Float64(),
		// Real 10-minute occupancy is rough at lag one (vehicles arrive
		// in platoons); keep the short-range noise strong and only weakly
		// autocorrelated so one-step persistence is not trivially optimal.
		noiseScale: 0.05 + 0.03*rng.Float64(),
	}
}

func (g *roadGen) next() float64 {
	spd := Road.SamplesPerDay()
	day := g.i / spd
	hour := 24 * float64(g.i%spd) / float64(spd)
	g.i++
	weekday := day%7 < 5
	level := g.baseOcc
	if weekday {
		level += g.amPeak*gauss(hour, g.amAt, g.width) + g.pmPeak*gauss(hour, g.pmAt, g.width)
	} else {
		// Weekends: one soft midday bump.
		level += 0.4 * g.pmPeak * gauss(hour, 14, 2.5)
	}
	// Congestion events: ~1.5 per weekday, decaying over ~an hour.
	if weekday && g.rng.Float64() < 1.5/float64(spd) {
		g.congestion += 0.2 + 0.3*g.rng.Float64()
	}
	g.congestion *= 0.9
	g.ar = 0.4*g.ar + g.rng.NormFloat64()*g.noiseScale
	return clamp(level+g.congestion+g.ar, 0, 1)
}

// mallGen steps available car-park lots: capacity minus a strongly
// seasonal occupancy with opening-hours structure.
type mallGen struct {
	rng          *rand.Rand
	capacity     float64
	peakFrac     float64 // fraction of lots taken at peak
	peakAt       float64 // early afternoon
	eveAt        float64
	weekendBoost float64
	noise        float64

	i  int
	ar float64
}

func newMallGen(rng *rand.Rand) *mallGen {
	return &mallGen{
		rng:          rng,
		capacity:     float64(300 + rng.Intn(900)),
		peakFrac:     0.6 + 0.3*rng.Float64(),
		peakAt:       13.0 + rng.NormFloat64(),
		eveAt:        19.0 + rng.NormFloat64()*0.5,
		weekendBoost: 1.15 + 0.2*rng.Float64(),
		noise:        4 + 6*rng.Float64(),
	}
}

func (g *mallGen) next() float64 {
	spd := Mall.SamplesPerDay()
	day := g.i / spd
	hour := 24 * float64(g.i%spd) / float64(spd)
	g.i++
	open := hour >= 7 && hour <= 23
	occ := 0.0
	if open {
		occ = g.peakFrac * (gauss(hour, g.peakAt, 2.5) + 0.7*gauss(hour, g.eveAt, 1.8))
		if day%7 >= 5 {
			occ *= g.weekendBoost
		}
	}
	g.ar = 0.7*g.ar + g.rng.NormFloat64()*g.noise
	avail := g.capacity*(1-clamp(occ, 0, 0.98)) + g.ar
	return clamp(avail, 0, g.capacity)
}

// netGen steps backbone traffic volume: smooth diurnal and weekly
// sinusoid mixture with occasional log-normal bursts.
type netGen struct {
	rng     *rand.Rand
	base    float64 // bits per interval scale
	diurnal float64
	weekly  float64
	phase   float64
	noise   float64

	i     int
	burst float64
	ar    float64
}

func newNetGen(rng *rand.Rand) *netGen {
	return &netGen{
		rng:     rng,
		base:    2e9 * (0.5 + rng.Float64()),
		diurnal: 0.45 + 0.15*rng.Float64(),
		weekly:  0.10 + 0.05*rng.Float64(),
		phase:   rng.Float64() * 2 * math.Pi,
		noise:   0.02 + 0.02*rng.Float64(),
	}
}

func (g *netGen) next() float64 {
	spd := Net.SamplesPerDay()
	tDay := 2 * math.Pi * float64(g.i%spd) / float64(spd)
	tWeek := 2 * math.Pi * float64(g.i%(7*spd)) / float64(7*spd)
	g.i++
	level := 1 + g.diurnal*math.Sin(tDay+g.phase) + 0.3*g.diurnal*math.Sin(2*tDay+g.phase) +
		g.weekly*math.Sin(tWeek)
	if g.rng.Float64() < 0.4/float64(spd) { // sparse bursts
		g.burst += math.Exp(g.rng.NormFloat64()*0.6) * 0.3
	}
	g.burst *= 0.85
	g.ar = 0.8*g.ar + g.rng.NormFloat64()*g.noise
	return g.base * math.Max(0.05, level+g.burst+g.ar)
}

func gauss(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return math.Exp(-0.5 * d * d)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
