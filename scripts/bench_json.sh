#!/usr/bin/env bash
# bench_json.sh — run the prediction-path benchmarks and emit
# BENCH_predict.json with ns/op, allocs and every custom metric
# (predict-step-ns/op, cell-fit-ns/op, search-ns/op, ...), plus a
# vs_baseline section with the B/op and allocs/op deltas against the
# previously committed file. No dependencies beyond go and awk; CI and
# `make bench-json` call this.
#
# Gates (both skippable with GATE=off for baseline regeneration):
#   - sanity: the ingest metrics=off row must not be slower than
#     metrics=on by >5% — that inversion means swapped labels or an
#     unstable run (the pair runs with INGEST_BENCHTIME=2000x because
#     at 1x a single ~7µs op is pure noise; see PR 8).
#   - regression: predict-path allocs_per_op must not exceed the
#     committed baseline by >10% (with a small absolute slack so the
#     1x CI smoke's unamortized pool misses don't flake the gate).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_predict.json}"
BASELINE="${BASELINE:-$OUT}"
BENCHTIME="${BENCHTIME:-1x}"
# 1x is the CI smoke setting; local runs use BENCHTIME=2s for stable
# numbers. The ingest on/off pair always gets enough iterations for a
# stable ordering — each op is microseconds, so 2000x stays cheap.
INGEST_BENCHTIME="${INGEST_BENCHTIME:-2000x}"
GATE="${GATE:-on}"

raw="$(mktemp)"
base="$(mktemp)"
trap 'rm -f "$raw" "$base"' EXIT
# Snapshot the committed baseline before OUT is overwritten.
if [ -f "$BASELINE" ]; then cp "$BASELINE" "$base"; else : >"$base"; fi

go test ./internal/core -run '^$' -bench 'Benchmark(Predict|PredictSequential|PredictSharedHyper|PredictMulti|Observe)$' \
    -benchmem -benchtime "$BENCHTIME" >>"$raw"
go test ./internal/ingest -run '^$' -bench 'BenchmarkIngestThroughput/direct' \
    -benchmem -benchtime "$INGEST_BENCHTIME" >>"$raw"

awk -v baseline="$base" '
function field(line, key,    m) {
    # Extract a numeric JSON field from one emitted benchmark line.
    if (match(line, "\"" key "\": [-0-9.e+]+")) {
        m = substr(line, RSTART, RLENGTH)
        sub(".*: ", "", m)
        return m
    }
    return ""
}
function bname(line,    m) {
    if (match(line, /"name": "[^"]*"/)) {
        m = substr(line, RSTART + 9, RLENGTH - 10)
        return m
    }
    return ""
}
BEGIN {
    # Only benchmark rows carry B_per_op/allocs_per_op; the baseline
    # file also holds vs_baseline rows, which must not clobber these.
    while ((getline bl < baseline) > 0) {
        bn = bname(bl)
        if (bn == "") continue
        bB = field(bl, "B_per_op")
        bA = field(bl, "allocs_per_op")
        if (bB != "") baseB[bn] = bB
        if (bA != "") baseA[bn] = bA
    }
    close(baseline)
    n = 0
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    out = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, $2)
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i
        unit = $(i + 1)
        key = unit
        gsub(/\//, "_per_", key)
        gsub(/[^A-Za-z0-9_]/, "_", key)
        out = out sprintf(", \"%s\": %s", key, val)
    }
    out = out "}"
    order[n] = name
    lines[n++] = out
}
END {
    print "{"
    print "  \"benchmarks\": ["
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n - 1 ? "," : "")
    print "  ],"
    print "  \"vs_baseline\": ["
    nd = 0
    for (i = 0; i < n; i++) {
        bn = order[i]
        if (!(bn in baseA) || baseA[bn] == "" || baseA[bn] + 0 == 0) continue
        curB = field(lines[i], "B_per_op")
        curA = field(lines[i], "allocs_per_op")
        if (curB == "" || curA == "") continue
        dB = 100 * (curB - baseB[bn]) / baseB[bn]
        dA = 100 * (curA - baseA[bn]) / baseA[bn]
        deltas[nd++] = sprintf("    {\"name\": \"%s\", \"B_per_op_delta_pct\": %.1f, \"allocs_per_op_delta_pct\": %.1f}", bn, dB, dA)
    }
    for (i = 0; i < nd; i++) printf "%s%s\n", deltas[i], (i < nd - 1 ? "," : "")
    print "  ]"
    print "}"
}
' "$raw" >"$OUT"

echo "wrote $OUT:"
cat "$OUT"

[ "$GATE" = "on" ] || { echo "gates skipped (GATE=$GATE)"; exit 0; }

# Sanity gate: the ingest pair must not report metrics=on faster than
# metrics=off beyond tolerance.
awk '
function field(line, key,    m) {
    if (match(line, "\"" key "\": [-0-9.e+]+")) {
        m = substr(line, RSTART, RLENGTH); sub(".*: ", "", m); return m
    }
    return ""
}
/"name": "BenchmarkIngestThroughput\/direct\/metrics=on"/  { v = field($0, "ns_per_op"); if (v != "") on = v }
/"name": "BenchmarkIngestThroughput\/direct\/metrics=off"/ { v = field($0, "ns_per_op"); if (v != "") off = v }
END {
    if (on == "" || off == "") { print "bench-json: ingest rows missing"; exit 1 }
    if (on + 0 < off * 0.95) {
        printf "bench-json: SANITY FAIL: metrics=on (%s ns/op) beats metrics=off (%s ns/op) by >5%% — swapped labels or unstable run\n", on, off
        exit 1
    }
    printf "bench-json: ingest sanity ok (on=%s off=%s ns/op)\n", on, off
}
' "$OUT"

# Regression gate: predict-path allocations must stay within 10% of
# the committed baseline (plus 64 allocs absolute slack for the 1x
# smoke, where first-iteration pool misses are unamortized).
awk -v baseline="$base" '
function field(line, key,    m) {
    if (match(line, "\"" key "\": [-0-9.e+]+")) {
        m = substr(line, RSTART, RLENGTH); sub(".*: ", "", m); return m
    }
    return ""
}
function bname(line,    m) {
    if (match(line, /"name": "[^"]*"/)) return substr(line, RSTART + 9, RLENGTH - 10)
    return ""
}
BEGIN {
    while ((getline bl < baseline) > 0) {
        bn = bname(bl)
        if (bn == "") continue
        bA = field(bl, "allocs_per_op")
        if (bA != "") baseA[bn] = bA
    }
    close(baseline)
    fail = 0
}
/"name": "BenchmarkPredict(Sequential|SharedHyper|Multi)?"/ {
    bn = bname($0)
    cur = field($0, "allocs_per_op")
    if (!(bn in baseA) || baseA[bn] == "" || cur == "") next
    if (cur + 0 > baseA[bn] * 1.10 && cur - baseA[bn] > 64) {
        printf "bench-json: ALLOC REGRESSION: %s %s allocs/op vs baseline %s (>10%%)\n", bn, cur, baseA[bn]
        fail = 1
    } else {
        printf "bench-json: %s allocs ok (%s vs baseline %s)\n", bn, cur, baseA[bn]
    }
}
END { exit fail }
' "$OUT"
