package ingest

import (
	"fmt"
	"math"
	"testing"

	"smiler"
)

// benchConfig keeps per-observation cost representative but small (AR
// cells, short segments) so the benchmark measures ingestion overhead
// and parallelism, not GP fitting.
func benchConfig() smiler.Config {
	cfg := smiler.DefaultConfig()
	cfg.Rho = 3
	cfg.Omega = 8
	cfg.ELV = []int{16, 24}
	cfg.EKV = []int{4}
	cfg.Predictor = smiler.PredictorAR
	return cfg
}

func newBenchSystem(b *testing.B, sensors int) (*smiler.System, []string) {
	return newBenchSystemMetrics(b, sensors, false)
}

func newBenchSystemMetrics(b *testing.B, sensors int, disableMetrics bool) (*smiler.System, []string) {
	b.Helper()
	cfg := benchConfig()
	cfg.DisableMetrics = disableMetrics
	sys, err := smiler.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sys.Close() })
	ids := make([]string, sensors)
	hist := make([]float64, 200)
	for i := range hist {
		hist[i] = 20 + 5*math.Sin(2*math.Pi*float64(i)/24)
	}
	for s := range ids {
		ids[s] = fmt.Sprintf("bench-%02d", s)
		if err := sys.AddSensor(ids[s], hist); err != nil {
			b.Fatal(err)
		}
	}
	return sys, ids
}

// BenchmarkIngestThroughput compares direct synchronous Observe
// against pipelined bulk ingest at 1, 4 and 16 shards, all over the
// same 16-sensor system. The recorded shape lives in EXPERIMENTS.md;
// regenerate with:
//
//	go test ./internal/ingest -bench Throughput -run '^$'
func BenchmarkIngestThroughput(b *testing.B) {
	const sensors = 16
	const bulkChunk = 64

	// metrics=on vs metrics=off isolates the instrumentation overhead
	// (the nil-instrument no-op sink); recorded in EXPERIMENTS.md.
	for _, tc := range []struct {
		name    string
		disable bool
	}{
		{"direct/metrics=on", false},
		{"direct/metrics=off", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			sys, ids := newBenchSystemMetrics(b, sensors, tc.disable)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sys.Observe(ids[i%sensors], 20+float64(i%7)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "obs/s")
		})
	}

	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("pipeline/shards=%d", shards), func(b *testing.B) {
			sys, ids := newBenchSystem(b, sensors)
			p, err := New(sys, Config{Shards: shards, QueueSize: 1024, MaxBatch: 64})
			if err != nil {
				b.Fatal(err)
			}
			batch := make([]Observation, 0, bulkChunk)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch = append(batch, Observation{Sensor: ids[i%sensors], Value: 20 + float64(i%7)})
				if len(batch) == bulkChunk || i == b.N-1 {
					if res := p.ObserveBulk(batch); len(res.Failed) > 0 {
						b.Fatal(res.Failed[0].Error)
					}
					batch = batch[:0]
				}
			}
			// Throughput means applied, not merely queued: the drain is
			// part of the measured work.
			if err := p.Drain(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "obs/s")
			p.Close()
		})
	}
}
