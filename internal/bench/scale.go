package bench

import (
	"fmt"

	"smiler/internal/baselines"
	"smiler/internal/gpusim"
	"smiler/internal/index"
)

// Fig12Row is one bar pair of Fig. 12(a)/(b): the total per-step time
// of all sensors, split into the Search Step and the Prediction Step.
type Fig12Row struct {
	Dataset    string
	Method     string // SMiLer-AR or SMiLer-GP
	SearchSec  float64
	PredictSec float64
}

// RunFig12Time measures the search/prediction split per step (summed
// over all sensors) for SMiLer-AR and SMiLer-GP.
func RunFig12Time(c *Corpus, steps int) ([]Fig12Row, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("bench: steps %d must be positive", steps)
	}
	var rows []Fig12Row
	for _, variant := range []string{MSMiLerAR, MSMiLerGP} {
		dev := gpusim.MustNewDevice(gpusim.DefaultConfig())
		var searchSec, predictSec float64
		for si, z := range c.Series {
			avail := len(z) - c.Spec.Warm - 1
			n := steps
			if n > avail {
				n = avail
			}
			pipe, err := smilerPipeline(dev, z[:c.Spec.Warm], variant)
			if err != nil {
				return nil, err
			}
			for t := 0; t < n; t++ {
				if _, err := pipe.Predict(1); err != nil {
					pipe.Index().Close()
					return nil, err
				}
				tm := pipe.Timing()
				searchSec += tm.SearchSec
				predictSec += tm.PredictSec
				if err := pipe.Observe(z[c.Spec.Warm+t]); err != nil {
					pipe.Index().Close()
					return nil, err
				}
			}
			pipe.Index().Close()
			_ = si
		}
		rows = append(rows, Fig12Row{
			Dataset:    c.Spec.Name,
			Method:     variant,
			SearchSec:  searchSec / float64(steps),
			PredictSec: predictSec / float64(steps),
		})
	}
	return rows, nil
}

// Fig12Capacity answers Fig. 12(c): how many sensors of this corpus'
// per-sensor footprint fit in the device's memory. The footprint is
// read off a real index over the first sensor (history plus the two
// posting-list planes).
func Fig12Capacity(c *Corpus, devCfg gpusim.Config) (perSensorBytes int64, maxSensors int64, err error) {
	if len(c.Series) == 0 {
		return 0, 0, fmt.Errorf("bench: empty corpus")
	}
	dev := gpusim.MustNewDevice(devCfg)
	ix, err := index.New(dev, c.Series[0], searchParams())
	if err != nil {
		return 0, 0, err
	}
	defer ix.Close()
	perSensorBytes = ix.MemoryFootprint().Total()
	if perSensorBytes <= 0 {
		return 0, 0, fmt.Errorf("bench: non-positive footprint")
	}
	maxSensors = devCfg.GlobalMemBytes / perSensorBytes
	return perSensorBytes, maxSensors, nil
}

// Fig13Row is one x-position of Fig. 13: PSGP with m active points —
// its per-sensor training time and MAE — against the SMiLer-GP MAE
// reference on the same sensors.
type Fig13Row struct {
	Dataset      string
	ActivePoints int
	TrainSecPer  float64 // average training seconds per sensor
	PSGPMae      float64
	SMiLerGPMae  float64
}

// RunFig13 sweeps the PSGP active-point count at h=1 and reports the
// accuracy/time trade-off with the SMiLer-GP reference line.
func RunFig13(c *Corpus, activePoints []int) ([]Fig13Row, error) {
	if len(activePoints) == 0 {
		return nil, fmt.Errorf("bench: empty active point list")
	}
	hs := []int{1}
	ref, _, err := RunAccuracy(c, []string{MSMiLerGP}, hs)
	if err != nil {
		return nil, err
	}
	refMAE := ref[0].MAE

	var rows []Fig13Row
	for _, m := range activePoints {
		accs := newAccs(hs)
		var trainSec float64
		sensors := 0
		for _, z := range c.Series {
			steps := c.TestLen(z, 1)
			if steps == 0 {
				continue
			}
			sensors++
			x, y, err := baselines.SegmentDataset(z[:c.Spec.Warm], segLen, 1, 0)
			if err != nil {
				return nil, err
			}
			reg := baselines.NewPSGP(m)
			timer := StartTimer()
			if err := reg.Train(x, y); err != nil {
				return nil, err
			}
			trainSec += timer.Seconds()
			for t := 0; t < steps; t++ {
				now := c.Spec.Warm + t
				p, err := reg.Predict(z[now-segLen : now])
				if err != nil {
					return nil, err
				}
				if err := accs[1].AddProb(p.Mean, p.Variance, z[now]); err != nil {
					return nil, err
				}
			}
		}
		mae, err := accs[1].MAE()
		if err != nil {
			return nil, err
		}
		if sensors == 0 {
			return nil, fmt.Errorf("bench: no usable sensors")
		}
		rows = append(rows, Fig13Row{
			Dataset:      c.Spec.Name,
			ActivePoints: m,
			TrainSecPer:  trainSec / float64(sensors),
			PSGPMae:      mae,
			SMiLerGPMae:  refMAE,
		})
	}
	return rows, nil
}

// AblationContinuousReuse compares the incremental window-level update
// (Remark 1) against rebuilding the index from scratch on every step —
// one of the DESIGN.md ablations.
func AblationContinuousReuse(c *Corpus, steps int) (reuseSec, rebuildSec float64, err error) {
	if steps <= 0 {
		return 0, 0, fmt.Errorf("bench: steps %d must be positive", steps)
	}
	p := searchParams()
	z := c.Series[0]
	if len(z) < c.Spec.Warm+steps {
		steps = len(z) - c.Spec.Warm
	}
	dev := gpusim.MustNewDevice(gpusim.DefaultConfig())

	ixA, err := index.New(dev, z[:c.Spec.Warm], p)
	if err != nil {
		return 0, 0, err
	}
	defer ixA.Close()
	t := StartTimer()
	for s := 0; s < steps; s++ {
		if err := ixA.Advance(z[c.Spec.Warm+s]); err != nil {
			return 0, 0, err
		}
	}
	reuseSec = t.Seconds()

	ixB, err := index.New(dev, z[:c.Spec.Warm], p)
	if err != nil {
		return 0, 0, err
	}
	defer ixB.Close()
	t = StartTimer()
	for s := 0; s < steps; s++ {
		if err := ixB.AdvanceRebuild(z[c.Spec.Warm+s]); err != nil {
			return 0, 0, err
		}
	}
	rebuildSec = t.Seconds()
	return reuseSec, rebuildSec, nil
}
