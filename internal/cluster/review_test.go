package cluster_test

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"smiler/internal/cluster"
	"smiler/internal/server"
)

// clusterSecretHeader is the wire name of the shared-secret header
// (cluster.Config.Secret); spelled out here because it is part of the
// HTTP contract, not the Go API.
const clusterSecretHeader = "X-Smiler-Cluster-Secret"

// TestClusterBulkIdempotentRetry: a keyed bulk POST retried through the
// SAME entry node replays from the idempotency cache, and retried
// through a DIFFERENT entry node still applies nothing twice — every
// partition (including each node's own local one) dedupes under its
// derived per-owner key.
func TestClusterBulkIdempotentRetry(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	rng := rand.New(rand.NewSource(8))

	sensors := make([]string, 6)
	owners := make(map[string]*testNode, len(sensors))
	cl, err := server.NewClient(nodes[0].ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sensors {
		sensors[i] = fmt.Sprintf("bulk-idem-%d", i)
		owners[sensors[i]] = ownerOf(t, nodes, sensors[i])
		if err := cl.AddSensor(sensors[i], seasonal(rng, 400)); err != nil {
			t.Fatal(err)
		}
	}

	var items []string
	for _, s := range sensors {
		items = append(items, `{"id":"`+s+`","value":50.5}`)
	}
	body := `{"observations":[` + strings.Join(items, ",") + `]}`
	send := func(entry *testNode) *http.Response {
		req, err := http.NewRequest(http.MethodPost, entry.ts.URL+"/observations", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(server.IdempotencyKeyHeader, "bulk-retry-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	check := func(resp *http.Response, what string) {
		t.Helper()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: HTTP %d", what, resp.StatusCode)
		}
		var res struct {
			Accepted int `json:"accepted"`
			Failed   []struct {
				Error string `json:"error"`
			} `json:"failed"`
		}
		if err := jsonDecode(resp.Body, &res); err != nil {
			t.Fatal(err)
		}
		if res.Accepted != len(sensors) || len(res.Failed) != 0 {
			t.Fatalf("%s: accepted=%d failed=%+v, want %d accepted", what, res.Accepted, res.Failed, len(sensors))
		}
	}

	check(send(nodes[0]), "first bulk")
	drainAll(t, nodes)

	// Retry through the same node: full-request replay.
	second := send(nodes[0])
	if second.Header.Get(server.IdempotentReplayHeader) != "1" {
		t.Fatal("same-node bulk retry must be served from the idempotency cache")
	}
	check(second, "same-node retry")

	// Retry through a different node: the outer key is new there, but
	// each partition — including that node's own, applied locally on the
	// first attempt's forward — dedupes under key+"/"+owner.
	check(send(nodes[1]), "cross-node retry")
	drainAll(t, nodes)

	for _, s := range sensors {
		if got, _ := owners[s].sys.HistoryLen(s); got != 401 {
			t.Fatalf("sensor %s history on its owner = %d, want 401 (bulk retries must not double-apply)", s, got)
		}
	}
}

// TestClusterPeerEndpointsRequireMembership: without a shared secret
// configured, the peer-to-peer /cluster/* mutation endpoints still
// refuse requests that do not name another cluster member as sender.
func TestClusterPeerEndpointsRequireMembership(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	for _, ep := range []string{"/cluster/replicate", "/cluster/restore", "/cluster/assign"} {
		resp, err := http.Post(nodes[0].ts.URL+ep, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("POST %s without a peer header: HTTP %d, want 403", ep, resp.StatusCode)
		}
	}

	// A sender claiming to be the receiving node itself is rejected too.
	req, err := http.NewRequest(http.MethodPost, nodes[0].ts.URL+"/cluster/assign", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Smiler-From", nodes[0].id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("self-named sender: HTTP %d, want 403", resp.StatusCode)
	}

	// A known peer id clears the membership gate (and then fails
	// validation, not authentication).
	req, err = http.NewRequest(http.MethodPost, nodes[0].ts.URL+"/cluster/assign", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Smiler-From", nodes[1].id)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("peer-named sender with empty body: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestClusterSharedSecret: with Config.Secret set, state-changing
// /cluster/* endpoints demand the secret (operator migrate included),
// and the cluster's own traffic — which attaches it — keeps working.
func TestClusterSharedSecret(t *testing.T) {
	nodes := newTestCluster(t, 3, func(c *cluster.Config) { c.Secret = "s3cret" })

	// Operator migrate without the secret: rejected before any parsing.
	resp, err := http.Post(nodes[0].ts.URL+"/cluster/migrate", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("migrate without secret: HTTP %d, want 403", resp.StatusCode)
	}

	// With the secret it reaches validation (400: empty request).
	req, err := http.NewRequest(http.MethodPost, nodes[0].ts.URL+"/cluster/migrate", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(clusterSecretHeader, "s3cret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("migrate with secret and empty body: HTTP %d, want 400", resp.StatusCode)
	}

	// A peer-named sender with the wrong secret is still rejected.
	req, err = http.NewRequest(http.MethodPost, nodes[0].ts.URL+"/cluster/restore", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Smiler-From", nodes[1].id)
	req.Header.Set(clusterSecretHeader, "wrong")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("restore with wrong secret: HTTP %d, want 403", resp.StatusCode)
	}

	// The cluster's own replication traffic carries the secret: a
	// registration through a non-owner reaches the owner and replicates
	// to the follower.
	const sensor = "secret-sensor"
	hist := seasonal(rand.New(rand.NewSource(9)), 400)
	owner := ownerOf(t, nodes, sensor)
	entry := nonOwnerOf(t, nodes, sensor)
	cl, err := server.NewClient(entry.ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.AddSensor(sensor, hist); err != nil {
		t.Fatal(err)
	}
	if !owner.sys.HasSensor(sensor) {
		t.Fatal("registration did not reach the owner")
	}
	var route struct {
		Preference []string `json:"preference"`
	}
	getJSON(t, owner.ts.URL+"/cluster/ring?sensor="+sensor, &route)
	follower := byID(t, nodes, route.Preference[1])
	waitFor(t, 5*time.Second, "registration to replicate under the secret", func() bool {
		return follower.sys.HasSensor(sensor)
	})
}

// TestClusterForwardEscapedPath: a percent-encoded sensor id survives
// forwarding byte-identical — the proxy must build the upstream URL
// from the escaped path, not the decoded one.
func TestClusterForwardEscapedPath(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	const sensor = "esc sensor" // "esc%20sensor" on the wire
	hist := seasonal(rand.New(rand.NewSource(10)), 400)

	escaped := url.PathEscape(sensor)
	owner := ownerOf(t, nodes, url.QueryEscape(sensor))
	entry := nonOwnerOf(t, nodes, url.QueryEscape(sensor))

	ownerCl, err := server.NewClient(owner.ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ownerCl.AddSensor(sensor, hist); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(entry.ts.URL + "/sensors/" + escaped + "/forecast?h=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded forecast for encoded id: HTTP %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(server.OwnerURLHeader); got != owner.ts.URL {
		t.Fatalf("owner URL hint = %q, want %q", got, owner.ts.URL)
	}
	var fc struct {
		ID string `json:"id"`
	}
	if err := jsonDecode(resp.Body, &fc); err != nil {
		t.Fatal(err)
	}
	if fc.ID != sensor {
		t.Fatalf("forecast id = %q, want %q", fc.ID, sensor)
	}
}
