package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Regularizer converts irregular (timestamp, value) readings into the
// fixed-rate samples the prediction system requires (the paper assumes
// a fixed sample rate and tells users to re-interpolate otherwise —
// Section 3.1 footnote; this is that re-interpolation as a streaming
// component). Readings may arrive slightly out of order within the
// current sampling interval; emitted samples are linear interpolations
// at exact grid instants, with gaps held at the last known value.
type Regularizer struct {
	start    time.Time
	interval time.Duration

	emitted  int // number of grid samples already produced
	readings []reading
	last     *reading
}

type reading struct {
	at time.Time
	v  float64
}

// NewRegularizer creates a regularizer with the first grid instant at
// start and one sample per interval.
func NewRegularizer(start time.Time, interval time.Duration) (*Regularizer, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("timeseries: non-positive interval %v", interval)
	}
	return &Regularizer{start: start, interval: interval}, nil
}

// ErrStale is returned for readings older than the last emitted grid
// instant; they can no longer influence any sample.
var ErrStale = errors.New("timeseries: reading older than the emitted grid")

// Add ingests one reading and returns the grid samples that became
// final because of it (possibly none, possibly several when the
// reading jumps multiple intervals ahead). NaN values are rejected.
func (r *Regularizer) Add(at time.Time, v float64) ([]float64, error) {
	if math.IsNaN(v) {
		return nil, errors.New("timeseries: NaN reading")
	}
	if r.emitted > 0 {
		// Instants up to (emitted−1) are final; a reading older than
		// the last of them can no longer influence any sample. A
		// reading after it is still a valid left anchor for the next
		// instant.
		lastDone := r.start.Add(time.Duration(r.emitted-1) * r.interval)
		if at.Before(lastDone) {
			return nil, fmt.Errorf("%w: %v < %v", ErrStale, at, lastDone)
		}
	}
	r.readings = append(r.readings, reading{at: at, v: v})
	sort.Slice(r.readings, func(i, j int) bool { return r.readings[i].at.Before(r.readings[j].at) })

	var out []float64
	for {
		instant := r.start.Add(time.Duration(r.emitted) * r.interval)
		s, ok := r.sampleAt(instant)
		if !ok {
			break
		}
		out = append(out, s)
		r.emitted++
		// Keep only readings that can still affect future instants.
		next := r.start.Add(time.Duration(r.emitted) * r.interval)
		kept := r.readings[:0]
		for _, rd := range r.readings {
			if !rd.at.Before(next) {
				kept = append(kept, rd)
				continue
			}
			// The newest reading before the next instant becomes the
			// left interpolation anchor.
			rdCopy := rd
			r.last = &rdCopy
		}
		r.readings = kept
	}
	return out, nil
}

// sampleAt interpolates the value at a grid instant once a reading at
// or after it exists (so the sample is final).
func (r *Regularizer) sampleAt(instant time.Time) (float64, bool) {
	var right *reading
	for i := range r.readings {
		if !r.readings[i].at.Before(instant) {
			right = &r.readings[i]
			break
		}
	}
	if right == nil {
		return 0, false // not final yet
	}
	var left *reading
	for i := range r.readings {
		if r.readings[i].at.Before(instant) {
			left = &r.readings[i]
		}
	}
	if left == nil {
		left = r.last
	}
	if left == nil || right.at.Equal(instant) {
		return right.v, true
	}
	span := right.at.Sub(left.at).Seconds()
	if span <= 0 {
		return right.v, true
	}
	frac := instant.Sub(left.at).Seconds() / span
	return left.v + (right.v-left.v)*frac, true
}

// Emitted returns how many grid samples have been produced so far.
func (r *Regularizer) Emitted() int { return r.emitted }

// Pending returns how many raw readings are buffered awaiting a later
// reading to finalize their interval.
func (r *Regularizer) Pending() int { return len(r.readings) }
