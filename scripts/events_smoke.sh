#!/usr/bin/env sh
# Flight-recorder smoke test: exercise the event ring across a full
# crash-recovery lifecycle. Boots smiler-server with a WAL and a
# checkpoint, asserts /debug/events serves the boot marker, then:
#
#   1. SIGTERM  -> the retained ring is dumped to stderr ("flight
#      recorder" block) and the shutdown checkpoint/wal_reset events
#      are recorded on the way out.
#   2. restart  -> /debug/events shows checkpoint_restore (state came
#      back from the shutdown checkpoint).
#   3. kill -9 after more writes, restart -> /debug/events shows
#      wal_replay (the uncovered WAL tail was replayed).
#
# Run via `make events-smoke`.
set -eu

DIR=$(mktemp -d)
BIN="$DIR/smiler-server"
ADDR=127.0.0.1:18081
LOG="$DIR/server.log"

go build -o "$BIN" ./cmd/smiler-server

start_server() {
    "$BIN" -addr "$ADDR" -predictor ar -log-level warn \
        -wal-dir "$DIR/wal" -checkpoint "$DIR/ckpt" 2>>"$LOG" &
    PID=$!
    i=0
    until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "events-smoke: server did not come up on $ADDR" >&2
            exit 1
        fi
        sleep 0.2
    done
}

cleanup() {
    kill "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

start_server

HIST=$(awk 'BEGIN{s="";for(i=0;i<300;i++){v=10+3*sin(2*3.14159265*i/24);s=s (i?",":"") v}print s}')
curl -sf -X POST "http://$ADDR/sensors" \
    -H 'Content-Type: application/json' \
    -d "{\"id\":\"smoke\",\"history\":[$HIST]}" >/dev/null
curl -sf -X POST "http://$ADDR/sensors/smoke/observe" \
    -H 'Content-Type: application/json' -d '{"value": 11.5}' >/dev/null

EVENTS=$(curl -sf "http://$ADDR/debug/events")
case "$EVENTS" in
*'"type":"startup"'*) ;;
*)
    echo "events-smoke: /debug/events missing the startup event: $EVENTS" >&2
    exit 1
    ;;
esac

# Graceful stop: the ring must land in the crash log.
kill -TERM "$PID"
wait "$PID" 2>/dev/null || true
if ! grep -q 'flight recorder (shutdown' "$LOG"; then
    echo "events-smoke: SIGTERM did not dump the flight recorder" >&2
    cat "$LOG" >&2
    exit 1
fi
if ! grep -q 'checkpoint' "$LOG"; then
    echo "events-smoke: dumped ring is missing the shutdown checkpoint event" >&2
    cat "$LOG" >&2
    exit 1
fi

# Clean restart: state restores from the shutdown checkpoint and the
# restore is an event.
start_server
EVENTS=$(curl -sf "http://$ADDR/debug/events")
case "$EVENTS" in
*'"type":"checkpoint_restore"'*) ;;
*)
    echo "events-smoke: restart missing checkpoint_restore event: $EVENTS" >&2
    exit 1
    ;;
esac

# Crash (no shutdown checkpoint): the WAL tail is uncovered, so the
# next boot replays it and records wal_replay.
curl -sf -X POST "http://$ADDR/sensors/smoke/observe" \
    -H 'Content-Type: application/json' -d '{"value": 12.5}' >/dev/null
curl -sf "http://$ADDR/sensors/smoke/forecast?h=1" >/dev/null
sleep 0.5 # let the ingestion pipeline drain to the WAL before the crash
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

start_server
EVENTS=$(curl -sf "http://$ADDR/debug/events")
case "$EVENTS" in
*'"type":"wal_replay"'*) ;;
*)
    echo "events-smoke: post-crash boot missing wal_replay event: $EVENTS" >&2
    exit 1
    ;;
esac

echo "events-smoke: OK (startup, shutdown dump, checkpoint_restore, wal_replay)"
