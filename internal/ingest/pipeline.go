// Package ingest is a sharded streaming ingestion and
// forecast-coalescing pipeline that sits between the transport layer
// (internal/server) and the prediction system (smiler.System).
//
// The paper frames SMiLer as a continuous-query system over many
// concurrent sensor streams (§3; §6.4.1 scales it out across GPUs).
// Serving that shape over HTTP needs a front-end that decouples
// request handling from the per-sensor locking of the core system:
//
//   - Write side: each observation is hashed (FNV-1a) onto one of N
//     shard workers. A shard is a bounded queue drained by a single
//     goroutine in micro-batches, so observations for one sensor are
//     applied in arrival order while distinct shards proceed in
//     parallel. When a queue fills, a configurable backpressure
//     policy decides whether the producer blocks, the observation is
//     dropped (with accounting), or the caller gets an error.
//   - Read side: identical concurrent forecast requests for one
//     (sensor, horizon) are collapsed into a single kNN search + GP
//     fit (single-flight), and the result is cached until that
//     sensor's next observation invalidates it.
//
// Close drains: every observation accepted before Close returns is
// applied to the system, which is what lets the server drain the
// pipeline before writing its shutdown checkpoint.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"smiler"
)

// System is the slice of *smiler.System the pipeline drives; narrowed
// to an interface so tests can inject instrumented fakes.
type System interface {
	Observe(id string, v float64) error
	Predict(id string, h int) (smiler.Forecast, error)
	HasSensor(id string) bool
}

// Backpressure selects what happens when a shard queue is full.
type Backpressure int

const (
	// Block makes the producer wait for queue space (lossless, the
	// default).
	Block Backpressure = iota
	// DropNewest rejects the incoming observation and counts it in
	// the shard's Dropped stat (load shedding).
	DropNewest
	// Error returns ErrQueueFull to the producer, which can surface
	// it as HTTP 503 and let the client retry.
	Error
)

func (b Backpressure) String() string {
	switch b {
	case Block:
		return "block"
	case DropNewest:
		return "drop-newest"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("Backpressure(%d)", int(b))
	}
}

// ParseBackpressure maps the flag spellings ("block", "drop-newest",
// "error") to policies.
func ParseBackpressure(s string) (Backpressure, error) {
	switch s {
	case "block":
		return Block, nil
	case "drop-newest":
		return DropNewest, nil
	case "error":
		return Error, nil
	default:
		return 0, fmt.Errorf("ingest: unknown backpressure policy %q (want block, drop-newest or error)", s)
	}
}

// Observation is one sensor reading entering the pipeline.
type Observation struct {
	Sensor string  `json:"id"`
	Value  float64 `json:"value"`
}

// Config configures a Pipeline; zero values take defaults.
type Config struct {
	// Shards is the number of shard workers (default GOMAXPROCS).
	Shards int
	// QueueSize is the per-shard queue capacity (default 256).
	QueueSize int
	// MaxBatch caps the micro-batch a worker drains per wakeup
	// (default 32).
	MaxBatch int
	// Backpressure is the full-queue policy (default Block).
	Backpressure Backpressure
	// OnError, when set, is called from shard workers for every
	// observation whose asynchronous apply failed (e.g. to log it).
	OnError func(Observation, error)
	// Journal, when set, is called from the shard worker immediately
	// before each observation is applied — the write-ahead-log hook.
	// Because the worker is the shard's single writer, journal order
	// exactly equals apply order. A journal failure counts in the
	// shard's JournalErrors stat and is reported through OnError, but
	// the observation is still applied: availability over durability
	// for the window until the next successful sync.
	Journal func(shard int, id string, v float64) error
	// OnApplied, when set, is called from the shard worker after each
	// observation has been successfully applied to the system and
	// before the forecast cache is invalidated — the replication hook.
	// Per-sensor call order equals apply order (single worker per
	// shard); failed applies never reach it. It can also be installed
	// after construction with SetOnApplied (the cluster layer is built
	// after the server that owns this pipeline).
	OnApplied func(Observation)
}

func (c *Config) applyDefaults() {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
}

var (
	// ErrClosed is returned by Observe/Drain after Close.
	ErrClosed = errors.New("ingest: pipeline closed")
	// ErrQueueFull is returned under the Error backpressure policy
	// when the target shard's queue is full.
	ErrQueueFull = errors.New("ingest: shard queue full")
)

// Pipeline is the sharded ingestion front-end. All methods are safe
// for concurrent use.
type Pipeline struct {
	cfg    Config
	sys    System
	shards []*shard
	co     *coalescer

	// onApplied is the live post-apply hook (Config.OnApplied or a
	// later SetOnApplied), read atomically by shard workers.
	onApplied atomic.Pointer[func(Observation)]

	// closeMu guards the closed flag against in-flight sends: Observe
	// holds it shared while sending, Close holds it exclusively while
	// closing the shard channels, so no send can race a close.
	closeMu sync.RWMutex
	closed  bool
	wg      sync.WaitGroup
	done    chan struct{}
}

// New builds a pipeline over sys and starts its shard workers.
func New(sys System, cfg Config) (*Pipeline, error) {
	if sys == nil {
		return nil, errors.New("ingest: nil system")
	}
	switch cfg.Backpressure {
	case Block, DropNewest, Error:
	default:
		return nil, fmt.Errorf("ingest: invalid backpressure policy %d", int(cfg.Backpressure))
	}
	cfg.applyDefaults()
	p := &Pipeline{
		cfg:    cfg,
		sys:    sys,
		shards: make([]*shard, cfg.Shards),
		co:     newCoalescer(sys),
		done:   make(chan struct{}),
	}
	if cfg.OnApplied != nil {
		p.onApplied.Store(&cfg.OnApplied)
	}
	for i := range p.shards {
		p.shards[i] = &shard{id: i, ch: make(chan item, cfg.QueueSize)}
		p.wg.Add(1)
		go p.worker(p.shards[i])
	}
	return p, nil
}

// ShardIndex maps a sensor id onto one of n shards (FNV-1a): one
// sensor always lands on one shard, which is what preserves its
// ordering. Exported so the write-ahead log can co-locate a sensor's
// registration records with its observations in the same shard log.
func ShardIndex(id string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(n))
}

// shardFor hashes the sensor id onto its shard.
func (p *Pipeline) shardFor(id string) *shard {
	return p.shards[ShardIndex(id, len(p.shards))]
}

// Observe enqueues one observation for asynchronous apply. It returns
// (true, nil) when accepted, (false, nil) when the DropNewest policy
// shed it, and (false, err) when rejected — ErrQueueFull under the
// Error policy, ErrClosed after Close, or an unknown-sensor error.
func (p *Pipeline) Observe(id string, v float64) (accepted bool, err error) {
	if !p.sys.HasSensor(id) {
		return false, fmt.Errorf("ingest: unknown sensor %q", id)
	}
	it := item{obs: Observation{Sensor: id, Value: v}, at: time.Now()}
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed {
		return false, ErrClosed
	}
	sh := p.shardFor(id)
	switch p.cfg.Backpressure {
	case Block:
		select {
		case sh.ch <- it:
		case <-p.done:
			return false, ErrClosed
		}
	default: // DropNewest, Error
		select {
		case sh.ch <- it:
		default:
			if p.cfg.Backpressure == DropNewest {
				sh.dropped.Add(1)
				return false, nil
			}
			return false, ErrQueueFull
		}
	}
	sh.enqueued.Add(1)
	return true, nil
}

// BulkFailure reports one rejected observation of a bulk request.
type BulkFailure struct {
	Index int    `json:"index"`
	ID    string `json:"id"`
	Error string `json:"error"`
}

// BulkResult accounts for a bulk enqueue.
type BulkResult struct {
	Accepted int           `json:"accepted"`
	Dropped  int           `json:"dropped"`
	Failed   []BulkFailure `json:"failed,omitempty"`
}

// ObserveBulk enqueues a batch of observations, possibly spanning many
// sensors, and reports per-item outcomes instead of failing the batch
// on the first bad item.
func (p *Pipeline) ObserveBulk(obs []Observation) BulkResult {
	var res BulkResult
	for i, o := range obs {
		accepted, err := p.Observe(o.Sensor, o.Value)
		switch {
		case accepted:
			res.Accepted++
		case err == nil:
			res.Dropped++
		default:
			res.Failed = append(res.Failed, BulkFailure{Index: i, ID: o.Sensor, Error: err.Error()})
		}
	}
	return res
}

// Forecast returns the sensor's h-step-ahead forecast through the
// coalescing layer: cached until the sensor's next observation, and
// computed at most once across concurrent identical requests.
func (p *Pipeline) Forecast(id string, h int) (smiler.Forecast, error) {
	return p.co.forecast(context.Background(), id, h)
}

// ForecastCtx is Forecast with a caller context: its values (notably
// the distributed trace context) reach the prediction when this call
// starts the computation. Cancellation semantics are the caller's
// choice — a coalesced flight outlives any single follower, so pass a
// context whose cancellation you are willing to share.
func (p *Pipeline) ForecastCtx(ctx context.Context, id string, h int) (smiler.Forecast, error) {
	return p.co.forecast(ctx, id, h)
}

// SetOnApplied installs (or clears, with nil) the post-apply hook at
// runtime — see Config.OnApplied for its contract. Safe to call while
// workers run; observations mid-apply may still see the old hook.
func (p *Pipeline) SetOnApplied(fn func(Observation)) {
	if fn == nil {
		p.onApplied.Store(nil)
		return
	}
	p.onApplied.Store(&fn)
}

// Invalidate flushes any cached forecasts for the sensor. Shard
// workers invalidate automatically after each applied observation;
// this is for out-of-band state changes (sensor removal).
func (p *Pipeline) Invalidate(id string) { p.co.invalidate(id) }

// Drain blocks until every observation enqueued before the call has
// been applied to the system. Observations enqueued concurrently with
// Drain may or may not be covered.
func (p *Pipeline) Drain() error {
	p.closeMu.RLock()
	if p.closed {
		p.closeMu.RUnlock()
		return ErrClosed
	}
	tokens := make([]chan struct{}, len(p.shards))
	for i, sh := range p.shards {
		tokens[i] = make(chan struct{})
		// Flush tokens always block for space: they are control flow,
		// not load, and must never be shed.
		select {
		case sh.ch <- item{flush: tokens[i]}:
		case <-p.done:
			p.closeMu.RUnlock()
			return ErrClosed
		}
	}
	p.closeMu.RUnlock()
	for _, tok := range tokens {
		<-tok
	}
	return nil
}

// Close drains and stops the pipeline: every accepted observation is
// applied before Close returns, after which Observe and Drain return
// ErrClosed. Forecast keeps working (reads do not need the workers).
// Close is idempotent.
func (p *Pipeline) Close() error {
	p.closeMu.Lock()
	if p.closed {
		p.closeMu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	for _, sh := range p.shards {
		close(sh.ch)
	}
	p.closeMu.Unlock()
	p.wg.Wait()
	return nil
}
