package ingest

// ShardStats is a point-in-time snapshot of one shard worker's
// counters. The same shape doubles as the all-shard aggregate (with
// Shard = -1).
type ShardStats struct {
	// Shard is the shard index, or -1 for the aggregate row.
	Shard int `json:"shard"`
	// QueueDepth is the number of observations currently waiting in
	// the shard's bounded queue.
	QueueDepth int `json:"queue_depth"`
	// Enqueued counts observations accepted into the queue.
	Enqueued uint64 `json:"enqueued"`
	// Processed counts observations applied to the system.
	Processed uint64 `json:"processed"`
	// Dropped counts observations rejected by the DropNewest policy.
	Dropped uint64 `json:"dropped"`
	// Errors counts observations whose asynchronous apply failed.
	Errors uint64 `json:"errors"`
	// Batches counts micro-batches drained from the queue; Processed /
	// Batches is the mean batch size.
	Batches uint64 `json:"batches"`
	// AvgBatch is the mean micro-batch size (0 before any batch).
	AvgBatch float64 `json:"avg_batch"`
	// AvgLatencyMicros is the mean enqueue-to-applied latency in
	// microseconds (0 before any observation).
	AvgLatencyMicros float64 `json:"avg_latency_us"`
	// JournalErrors counts observations whose write-ahead-log append
	// failed (the observation was still applied).
	JournalErrors uint64 `json:"journal_errors"`
	// Panics counts panics recovered inside the shard worker — each one
	// an errored observation instead of a dead worker.
	Panics uint64 `json:"panics"`
}

// CoalesceStats snapshots the forecast-coalescing layer.
type CoalesceStats struct {
	// CacheHits counts forecasts served straight from the per-sensor
	// cache.
	CacheHits uint64 `json:"cache_hits"`
	// CoalescedWaits counts forecast requests that piggybacked on an
	// identical in-flight computation (thundering-herd followers).
	CoalescedWaits uint64 `json:"coalesced_waits"`
	// Misses counts forecasts that actually ran a kNN search + GP fit.
	Misses uint64 `json:"misses"`
	// Invalidations counts per-sensor cache flushes triggered by a new
	// observation (or an explicit Invalidate).
	Invalidations uint64 `json:"invalidations"`
	// CacheSize is the number of (sensor, horizon) forecasts cached
	// right now.
	CacheSize int `json:"cache_size"`
	// Panics counts panics recovered inside forecast flights — each one
	// surfaced as an error to the callers of that flight instead of a
	// crashed process.
	Panics uint64 `json:"panics"`
}

// Stats is a point-in-time snapshot of the whole pipeline, served by
// GET /pipeline/stats.
type Stats struct {
	// Shards is the number of shard workers.
	Shards int `json:"shards"`
	// QueueSize is the per-shard queue capacity.
	QueueSize int `json:"queue_size"`
	// MaxBatch is the micro-batch size cap.
	MaxBatch int `json:"max_batch"`
	// Backpressure names the overflow policy.
	Backpressure string `json:"backpressure"`
	// PerShard holds one row per shard worker.
	PerShard []ShardStats `json:"per_shard"`
	// Totals aggregates PerShard (Shard = -1).
	Totals ShardStats `json:"totals"`
	// Coalesce snapshots the forecast cache / single-flight layer.
	Coalesce CoalesceStats `json:"coalesce"`
}

// Stats assembles a consistent-enough snapshot of all counters. Each
// counter is read atomically; the snapshot as a whole is not a
// transaction (counters advance while it is taken).
func (p *Pipeline) Stats() Stats {
	st := Stats{
		Shards:       len(p.shards),
		QueueSize:    p.cfg.QueueSize,
		MaxBatch:     p.cfg.MaxBatch,
		Backpressure: p.cfg.Backpressure.String(),
		PerShard:     make([]ShardStats, len(p.shards)),
		Totals:       ShardStats{Shard: -1},
	}
	var totalLatencyNs int64
	for i, sh := range p.shards {
		s := sh.snapshot()
		st.PerShard[i] = s
		t := &st.Totals
		t.QueueDepth += s.QueueDepth
		t.Enqueued += s.Enqueued
		t.Processed += s.Processed
		t.Dropped += s.Dropped
		t.Errors += s.Errors
		t.Batches += s.Batches
		t.JournalErrors += s.JournalErrors
		t.Panics += s.Panics
		totalLatencyNs += sh.latencyNs.Load()
	}
	if st.Totals.Batches > 0 {
		st.Totals.AvgBatch = float64(st.Totals.Processed) / float64(st.Totals.Batches)
	}
	if st.Totals.Processed > 0 {
		st.Totals.AvgLatencyMicros = float64(totalLatencyNs) / 1e3 / float64(st.Totals.Processed)
	}
	st.Coalesce = p.co.stats()
	return st
}
