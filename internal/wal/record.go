package wal

import (
	"encoding/binary"
	"fmt"
	"math"
)

// RecordType discriminates WAL record payloads.
type RecordType uint8

const (
	// RecObserve logs one streamed observation (Sensor, Value).
	RecObserve RecordType = 1
	// RecAddSensor logs a sensor registration (Sensor, History).
	RecAddSensor RecordType = 2
	// RecRemoveSensor logs a sensor removal (Sensor).
	RecRemoveSensor RecordType = 3
)

func (t RecordType) String() string {
	switch t {
	case RecObserve:
		return "observe"
	case RecAddSensor:
		return "add-sensor"
	case RecRemoveSensor:
		return "remove-sensor"
	default:
		return fmt.Sprintf("RecordType(%d)", int(t))
	}
}

// Record is one durable event. Which fields are meaningful depends on
// Type: Value for RecObserve, History for RecAddSensor.
type Record struct {
	Type    RecordType
	Sensor  string
	Value   float64
	History []float64
}

// maxPayload bounds one record's encoded payload; a frame header
// claiming more is treated as corruption, not an allocation request.
// Large enough for an add-sensor record carrying a multi-million-point
// history.
const maxPayload = 64 << 20

// appendPayload encodes the record payload (everything inside the
// frame) onto buf.
func appendPayload(buf []byte, r Record) ([]byte, error) {
	switch r.Type {
	case RecObserve, RecAddSensor, RecRemoveSensor:
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", int(r.Type))
	}
	buf = append(buf, byte(r.Type))
	buf = binary.AppendUvarint(buf, uint64(len(r.Sensor)))
	buf = append(buf, r.Sensor...)
	switch r.Type {
	case RecObserve:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Value))
	case RecAddSensor:
		buf = binary.AppendUvarint(buf, uint64(len(r.History)))
		for _, v := range r.History {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	if len(buf) > maxPayload {
		return nil, fmt.Errorf("wal: record payload %d bytes exceeds cap %d", len(buf), maxPayload)
	}
	return buf, nil
}

// decodePayload parses one record payload. Any structural mismatch is
// an error (the caller treats it as corruption).
func decodePayload(p []byte) (Record, error) {
	var r Record
	if len(p) < 1 {
		return r, fmt.Errorf("wal: empty payload")
	}
	r.Type = RecordType(p[0])
	p = p[1:]
	idLen, n := binary.Uvarint(p)
	if n <= 0 || idLen > uint64(len(p)-n) {
		return r, fmt.Errorf("wal: bad sensor-id length")
	}
	p = p[n:]
	r.Sensor = string(p[:idLen])
	p = p[idLen:]
	switch r.Type {
	case RecObserve:
		if len(p) != 8 {
			return r, fmt.Errorf("wal: observe payload has %d trailing bytes, want 8", len(p))
		}
		r.Value = math.Float64frombits(binary.LittleEndian.Uint64(p))
	case RecAddSensor:
		count, n := binary.Uvarint(p)
		if n <= 0 {
			return r, fmt.Errorf("wal: bad history length")
		}
		p = p[n:]
		if uint64(len(p)) != 8*count {
			return r, fmt.Errorf("wal: add-sensor history has %d bytes, want %d", len(p), 8*count)
		}
		r.History = make([]float64, count)
		for i := range r.History {
			r.History[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
		}
	case RecRemoveSensor:
		if len(p) != 0 {
			return r, fmt.Errorf("wal: remove-sensor payload has %d trailing bytes", len(p))
		}
	default:
		return r, fmt.Errorf("wal: unknown record type %d", int(r.Type))
	}
	return r, nil
}
