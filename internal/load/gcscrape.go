package load

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// GCWindow correlates one progress window of the steady phase with the
// GC activity each target reported over the same window: the delta of
// the node's smiler_runtime_gc_pause_seconds histogram (sum and count)
// next to the window's forecast latency percentiles and throughput.
// Lined up across windows, the series answers "do the latency spikes
// coincide with GC pauses?" directly from BENCH_cluster.json.
type GCWindow struct {
	// TS is the window's end offset from the run start, in seconds.
	TS     float64 `json:"t_s"`
	Target string  `json:"target"`
	// GCPauseS / GCPauses are the target's stop-the-world pause seconds
	// and pause count accumulated during this window.
	GCPauseS float64 `json:"gc_pause_s"`
	GCPauses uint64  `json:"gc_pauses"`
	// HeapLiveBytes / HeapGoalBytes are the target's heap gauges at the
	// window's end — live bytes after the last mark phase and the
	// pacer's goal. Read next to the pause columns they show whether
	// pause spikes track heap growth or pacer churn.
	HeapLiveBytes uint64 `json:"heap_live_bytes,omitempty"`
	HeapGoalBytes uint64 `json:"heap_goal_bytes,omitempty"`
	// Window-local latency and load, shared across the targets of one
	// window (the loader does not attribute ops to targets).
	ForecastP50Ms float64 `json:"forecast_p50_ms,omitempty"`
	ForecastP99Ms float64 `json:"forecast_p99_ms,omitempty"`
	// Per-window forecast quality-ladder counts (anytime engine): how
	// many of the window's forecasts came back exact, progressive
	// (deadline-truncated), or fallback. Read next to the GC columns
	// they show whether quality dips track pause spikes.
	ForecastExact       uint64  `json:"forecast_exact,omitempty"`
	ForecastProgressive uint64  `json:"forecast_progressive,omitempty"`
	ForecastFallback    uint64  `json:"forecast_fallback,omitempty"`
	OpsPerS             float64 `json:"ops_per_s"`
	// ScrapeError notes a failed or incomplete /metrics scrape; the
	// window is still recorded so gaps are visible, not silent.
	ScrapeError string `json:"scrape_error,omitempty"`
}

// gcSample is one target's cumulative GC-pause reading plus the heap
// gauges observed on the same scrape.
type gcSample struct {
	sum      float64
	count    uint64
	heapLive uint64
	heapGoal uint64
}

// gcScraper pulls smiler_runtime_gc_pause_seconds off each target's
// /metrics endpoint and differences consecutive readings into
// per-window deltas. Scrapes run on the progress reporter goroutine
// only, so the state needs no locking.
type gcScraper struct {
	hc     *http.Client
	prev   map[string]gcSample
	seeded map[string]bool
}

func newGCScraper() *gcScraper {
	return &gcScraper{
		hc:     &http.Client{Timeout: 3 * time.Second},
		prev:   make(map[string]gcSample),
		seeded: make(map[string]bool),
	}
}

// scrape reads the target's cumulative GC pause sum and count.
func (g *gcScraper) scrape(target string) (gcSample, error) {
	resp, err := g.hc.Get(strings.TrimSuffix(target, "/") + "/metrics")
	if err != nil {
		return gcSample{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return gcSample{}, fmt.Errorf("metrics answered HTTP %d", resp.StatusCode)
	}
	var s gcSample
	foundSum, foundCount := false, false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if v, ok := metricValue(line, "smiler_runtime_gc_pause_seconds_sum"); ok {
			s.sum = v
			foundSum = true
		} else if v, ok := metricValue(line, "smiler_runtime_gc_pause_seconds_count"); ok {
			s.count = uint64(v)
			foundCount = true
		} else if v, ok := metricValue(line, "smiler_runtime_heap_live_bytes"); ok {
			s.heapLive = uint64(v)
		} else if v, ok := metricValue(line, "smiler_runtime_heap_goal_bytes"); ok {
			s.heapGoal = uint64(v)
		}
	}
	if err := sc.Err(); err != nil {
		return gcSample{}, err
	}
	if !foundSum || !foundCount {
		return gcSample{}, fmt.Errorf("smiler_runtime_gc_pause_seconds not exposed")
	}
	return s, nil
}

// metricValue parses "name value" exposition lines for an unlabeled
// metric, rejecting prefixes of longer names ("..._sum" must not match
// "..._summary").
func metricValue(line, name string) (float64, bool) {
	rest, ok := strings.CutPrefix(line, name)
	if !ok || len(rest) == 0 || rest[0] != ' ' {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// window differences the target's current reading against the previous
// one. The heap gauges are point-in-time values, returned as read.
// The first reading only seeds the baseline (ok=false): there is no
// window to attribute its cumulative total to.
func (g *gcScraper) window(target string) (w GCWindow, err error, ok bool) {
	cur, err := g.scrape(target)
	if err != nil {
		// Drop the baseline: after a failed scrape the next delta would
		// span two windows, which is exactly the smearing this per-window
		// series exists to avoid.
		g.seeded[target] = false
		return GCWindow{}, err, true
	}
	w.HeapLiveBytes = cur.heapLive
	w.HeapGoalBytes = cur.heapGoal
	if !g.seeded[target] {
		g.prev[target] = cur
		g.seeded[target] = true
		return w, nil, false
	}
	prev := g.prev[target]
	g.prev[target] = cur
	w.GCPauseS = cur.sum - prev.sum
	if cur.count >= prev.count {
		w.GCPauses = cur.count - prev.count
	}
	if w.GCPauseS < 0 {
		w.GCPauseS = 0 // target restarted mid-run; counters reset
	}
	return w, nil, true
}
