package baselines

import (
	"fmt"
	"math"

	"smiler/internal/scan"
)

// LazyKNN is the classic lazy-learning baseline [4]: retrieve the k
// nearest historical segments of the query under banded DTW and
// average their h-step-ahead labels weighted by inverse DTW distance.
// The predictive variance is the weighted variance of the neighbour
// labels (Section 6.3.1).
type LazyKNN struct {
	// K is the neighbour count (paper Table 2 uses up to 32).
	K int
	// D is the query segment length.
	D int
	// Rho is the DTW warping width.
	Rho int
}

// NewLazyKNN builds the baseline with the paper's defaults (k=32,
// d=64, ρ=8).
func NewLazyKNN() *LazyKNN { return &LazyKNN{K: 32, D: 64, Rho: 8} }

// Name identifies the method.
func (*LazyKNN) Name() string { return "LazyKNN" }

// Predict forecasts the value h steps after the end of history: the
// query is the trailing D points, neighbours come from a pruned CPU
// scan, labels are read h steps after each neighbour segment.
func (l *LazyKNN) Predict(history []float64, h int) (Prediction, error) {
	if l.K <= 0 || l.D <= 0 || l.Rho < 0 {
		return Prediction{}, fmt.Errorf("baselines: invalid LazyKNN config %+v", *l)
	}
	if h <= 0 {
		return Prediction{}, fmt.Errorf("baselines: horizon %d must be positive", h)
	}
	if len(history) < l.D+l.Rho {
		return Prediction{}, fmt.Errorf("%w: history of %d points for d=%d", ErrNoData, len(history), l.D)
	}
	query := history[len(history)-l.D:]
	nbrs, _, err := scan.FastCPUScan(history, query, l.Rho, l.K, h)
	if err != nil {
		return Prediction{}, err
	}
	if len(nbrs) == 0 {
		return Prediction{}, fmt.Errorf("%w: no neighbours with valid labels", ErrNoData)
	}
	const eps = 1e-6
	var wsum, mean float64
	weights := make([]float64, len(nbrs))
	labels := make([]float64, len(nbrs))
	for i, nb := range nbrs {
		w := 1 / (math.Sqrt(nb.Dist) + eps)
		weights[i] = w
		labels[i] = history[nb.T+l.D-1+h]
		wsum += w
		mean += w * labels[i]
	}
	mean /= wsum
	var variance float64
	for i := range labels {
		d := labels[i] - mean
		variance += weights[i] * d * d
	}
	variance /= wsum
	if variance < varFloor {
		variance = varFloor
	}
	return Prediction{Mean: mean, Variance: variance}, nil
}
